package coolopt_test

import (
	"fmt"

	"coolopt"
)

// exampleProfile is a small, fixed machine-room model used by the
// runnable documentation examples (coefficients as a profiling run would
// fit them).
func exampleProfile() *coolopt.Profile {
	return &coolopt.Profile{
		W1:         50,
		W2:         35,
		CoolFactor: 70,
		SetPointC:  30,
		TMaxC:      58,
		TAcMinC:    8,
		TAcMaxC:    25,
		Machines: []coolopt.MachineProfile{
			{Alpha: 0.96, Beta: 0.44, Gamma: 1.2},
			{Alpha: 0.93, Beta: 0.45, Gamma: 2.1},
			{Alpha: 0.90, Beta: 0.45, Gamma: 3.0},
			{Alpha: 0.87, Beta: 0.46, Gamma: 3.9},
			{Alpha: 0.83, Beta: 0.47, Gamma: 5.1},
			{Alpha: 0.80, Beta: 0.48, Gamma: 6.0},
		},
	}
}

// ExampleProfile_Solve applies the paper's closed form (Eqs. 21–22) to a
// fixed on set: every powered-on CPU lands exactly on T_max, with the
// cooler machines carrying more load.
func ExampleProfile_Solve() {
	p := exampleProfile()
	plan, err := p.Solve([]int{0, 1, 2, 3, 4, 5}, 5.0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("supply %.2f °C\n", plan.TAcC)
	for _, i := range plan.On {
		fmt.Printf("machine %d: load %.3f, cpu %.1f °C\n",
			i, plan.Loads[i], p.CPUTemp(i, plan.Loads[i], plan.TAcC))
	}
	// Output:
	// supply 21.95 °C
	// machine 0: load 0.924, cpu 58.0 °C
	// machine 1: load 0.877, cpu 58.0 °C
	// machine 2: load 0.866, cpu 58.0 °C
	// machine 3: load 0.822, cpu 58.0 °C
	// machine 4: load 0.776, cpu 58.0 °C
	// machine 5: load 0.735, cpu 58.0 °C
}

// ExampleNewOptimizer plans with consolidation: the optimizer decides how
// many machines to power on as well as the split and the supply setting.
func ExampleNewOptimizer() {
	opt, err := coolopt.NewOptimizer(exampleProfile())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	plan, err := opt.Plan(2.0) // 2 machine-units of work
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("machines on: %v\n", plan.On)
	fmt.Printf("total load carried: %.1f\n", plan.TotalLoad())
	// Output:
	// machines on: [0 1 2]
	// total load carried: 2.0
}

// ExamplePreprocess runs consolidation Algorithm 1 once and answers a
// budget query with the paper's dual formulation maxL(A, P_b): the
// maximum load a power budget can serve.
func ExamplePreprocess() {
	p := exampleProfile()
	pre, err := coolopt.Preprocess(p.Reduce())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := pre.MaxLoad(1200) // Watts
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("a 1200 W budget serves %.2f machine-units on %d machines\n",
		res.Load, len(res.Subset))
	// Output:
	// a 1200 W budget serves 5.50 machine-units on 6 machines
}

// ExampleHeteroProfile_Solve shows the mixed-hardware extension: an
// inefficient old machine is parked at zero load while the efficient
// generation carries the work.
func ExampleHeteroProfile_Solve() {
	hp := &coolopt.HeteroProfile{
		CoolFactor: 70, SetPointC: 30,
		TMaxC: 58, TAcMinC: 8, TAcMaxC: 25,
		Machines: []coolopt.HeteroMachine{
			{W1: 50, W2: 35, Alpha: 0.96, Beta: 0.44, Gamma: 1.2},
			{W1: 50, W2: 35, Alpha: 0.90, Beta: 0.45, Gamma: 3.0},
			{W1: 300, W2: 55, Alpha: 0.93, Beta: 0.40, Gamma: 2.1}, // power hog
		},
	}
	plan, err := hp.Solve([]int{0, 1, 2}, 1.2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, i := range plan.On {
		fmt.Printf("machine %d: load %.2f\n", i, plan.Loads[i])
	}
	// Output:
	// machine 0: load 0.79
	// machine 1: load 0.41
	// machine 2: load 0.00
}
