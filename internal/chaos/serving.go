package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"coolopt/internal/core"
	"coolopt/internal/engine"
	"coolopt/internal/faults"
	"coolopt/internal/roomapi"
	"coolopt/internal/sim"
)

// This file is the degraded-serving chaos scenario: a pod-only engine
// behind the HTTP surface, hammered with avoid= planning requests —
// concentrated and spread failure bursts, stale inventories, demand
// past survivor capacity — while the engine is overloaded (bounded
// in-flight) and a slow snapshot install holds the install gate. The
// scenario passes only if the serving contract holds everywhere: every
// response is 200, 400, or 503; every 503 carries Retry-After; every
// degraded 200 comes from the hierarchical path with the avoided
// machines off; /v1/readyz flips during the install and recovers; and
// no request ever hangs past its client timeout.

// ServingOptions tunes RunDegradedServing. Zero values pick the CI
// smoke size; paperbench -degraded-chaos raises N to the paper-scale
// room.
type ServingOptions struct {
	// N is the room size; Pods the pod count (defaults 64 and 4).
	N    int
	Pods int
	// Seed drives the simulated control-plane room (default 1).
	Seed int64
	// Clients and Requests shape the hammer: Clients concurrent
	// goroutines each issuing Requests planning queries (defaults 8, 32).
	Clients  int
	Requests int
	// MaxInFlight bounds concurrent computations in the engine; the
	// hammer is wider than this on purpose (default 2).
	MaxInFlight int
}

// ServingReport is the scenario's outcome. The invariant violations are
// returned as an error by RunDegradedServing; the report carries the
// counts for rendering.
type ServingReport struct {
	Total        int `json:"total"`
	OK           int `json:"ok"`
	BadRequest   int `json:"badRequest"`
	Unavailable  int `json:"unavailable"`
	Degraded     int `json:"degraded"`
	Hierarchical int `json:"hierarchical"`
	ShedLoad     int `json:"shedLoad"`
	InstallSheds int `json:"installSheds"`
}

func (r *ServingReport) String() string {
	return fmt.Sprintf("%d requests: %d ok (%d degraded, %d hierarchical, %d shed load), %d rejected 400, %d shed 503 (%d during install)",
		r.Total, r.OK, r.Degraded, r.Hierarchical, r.ShedLoad, r.BadRequest, r.Unavailable, r.InstallSheds)
}

// RunDegradedServing runs the scenario and returns the report, or an
// error describing the first serving-contract violation.
func RunDegradedServing(opt ServingOptions) (*ServingReport, error) {
	if opt.N == 0 {
		opt.N = 64
	}
	if opt.Pods == 0 {
		opt.Pods = 4
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Clients == 0 {
		opt.Clients = 8
	}
	if opt.Requests == 0 {
		opt.Requests = 32
	}
	if opt.MaxInFlight == 0 {
		opt.MaxInFlight = 2
	}

	// A pod-only engine over a synthetic profile: the configuration for
	// rooms past the whole-room table cap, and the FromSnapshots hole the
	// degraded path must serve cleanly.
	machines := make([]core.MachineProfile, opt.N)
	for i := range machines {
		h := float64(i) / float64(opt.N)
		machines[i] = core.MachineProfile{Alpha: 1, Beta: 0.46 * (1 + 0.1*h), Gamma: 0.5 + 2.2*h}
	}
	profile := &core.Profile{
		W1: 52, W2: 34, CoolFactor: 150, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}
	pods, err := core.NewPodSnapshot(profile, 0, core.WithPodCount(opt.Pods))
	if err != nil {
		return nil, err
	}
	eng, err := engine.FromPodSnapshot(pods, engine.WithMaxInFlight(opt.MaxInFlight))
	if err != nil {
		return nil, err
	}
	room, err := sim.NewDefault(opt.Seed)
	if err != nil {
		return nil, err
	}
	api, err := roomapi.NewServer(room, roomapi.WithEngine(eng),
		roomapi.WithRequestTimeout(5*time.Second))
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: api, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()
	base := "http://" + ln.Addr().String()
	// The client timeout is the never-hangs backstop: any request the
	// server sits on past it fails the scenario.
	client := &http.Client{Timeout: 30 * time.Second}

	if err := expectReady(client, base, true); err != nil {
		return nil, fmt.Errorf("before hammer: %w", err)
	}

	rep := &ServingReport{}
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// Phase A: concurrent avoid= hammer against the healthy engine. The
	// hammer is wider than the in-flight bound, so overload sheds are
	// expected alongside successes — both must honor the contract.
	maxF := opt.N / 8
	if maxF < 2 {
		maxF = 2
	}
	var wg sync.WaitGroup
	for g := 0; g < opt.Clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for q := 0; q < opt.Requests; q++ {
				idx := g*opt.Requests + q
				outcome, err := oneDegradedQuery(client, base, opt.N, maxF, idx)
				if err != nil {
					fail(err)
					return
				}
				mu.Lock()
				rep.Total++
				rep.OK += outcome.ok
				rep.BadRequest += outcome.bad
				rep.Unavailable += outcome.shed
				rep.Degraded += outcome.degraded
				rep.Hierarchical += outcome.hier
				rep.ShedLoad += outcome.shedLoad
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if firstErr != nil {
		return rep, firstErr
	}

	// Phase B: a slow snapshot install holds the gate. Readiness must
	// flip, fresh misses must shed 503 + Retry-After, and a load cached
	// in phase A must keep serving from the cache.
	cachedLoad := fmt.Sprintf("%.4f", 0.4*float64(opt.N))
	if _, err := requireStatus(client, base+"/v1/plan?load="+cachedLoad, http.StatusOK, false); err != nil {
		return rep, fmt.Errorf("priming cache: %w", err)
	}
	release := faults.SlowInstall(eng)
	defer release()
	if err := expectReady(client, base, false); err != nil {
		return rep, fmt.Errorf("during install: %w", err)
	}
	for i := 0; i < 4; i++ {
		load := fmt.Sprintf("%.4f", 0.3*float64(opt.N)+float64(i)+0.123)
		if _, err := requireStatus(client, base+"/v1/plan?load="+load, http.StatusServiceUnavailable, true); err != nil {
			return rep, fmt.Errorf("install shed %d: %w", i, err)
		}
		rep.Total++
		rep.Unavailable++
		rep.InstallSheds++
	}
	body, err := requireStatus(client, base+"/v1/plan?load="+cachedLoad, http.StatusOK, false)
	if err != nil {
		return rep, fmt.Errorf("cached answer during install: %w", err)
	}
	var cached roomapi.PlanResult
	if err := json.Unmarshal(body, &cached); err != nil {
		return rep, err
	}
	if !cached.Cached {
		return rep, fmt.Errorf("install window answered a fresh computation instead of the cache")
	}
	rep.Total++
	rep.OK++
	release()
	if err := expectReady(client, base, true); err != nil {
		return rep, fmt.Errorf("after install: %w", err)
	}
	if _, err := requireStatus(client, base+"/v1/plan?load="+fmt.Sprintf("%.4f", 0.35*float64(opt.N)+0.321), http.StatusOK, false); err != nil {
		return rep, fmt.Errorf("after install: %w", err)
	}
	rep.Total++
	rep.OK++
	return rep, nil
}

// queryOutcome is one hammer request's classified result.
type queryOutcome struct {
	ok, bad, shed, degraded, hier, shedLoad int
}

// oneDegradedQuery issues one avoid= planning request and checks the
// serving contract on whatever came back.
func oneDegradedQuery(client *http.Client, base string, n, maxF, idx int) (*queryOutcome, error) {
	f := []int{1, 2, maxF / 2, maxF}[idx%4]
	if f < 1 {
		f = 1
	}
	var avoid []int
	if idx%2 == 0 {
		avoid = faults.ConcentratedBurst(n, f)
	} else {
		avoid = faults.SpreadBurst(n, f)
	}
	wantBad := idx%9 == 8
	if wantBad {
		avoid = append(append([]int(nil), avoid...), n+idx%3)
	}
	// Loads sweep the feasible range, with every 5th request pushed past
	// survivor capacity to exercise shedding.
	load := (0.25 + 0.5*float64(idx%17)/17) * float64(n-maxF)
	if idx%5 == 4 {
		load = float64(n-f) - 0.25
	}
	parts := make([]string, len(avoid))
	for i, id := range avoid {
		parts[i] = strconv.Itoa(id)
	}
	url := fmt.Sprintf("%s/v1/plan?load=%.4f&avoid=%s", base, load, strings.Join(parts, ","))
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("request %d hung or failed: %w", idx, err)
	}
	defer resp.Body.Close()

	out := &queryOutcome{}
	switch resp.StatusCode {
	case http.StatusOK:
		if wantBad {
			return nil, fmt.Errorf("request %d: invalid avoid answered 200", idx)
		}
		var plan roomapi.PlanResult
		if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
			return nil, err
		}
		if !plan.Degraded || !plan.Hierarchical {
			return nil, fmt.Errorf("request %d: degraded=%t hierarchical=%t, want both", idx, plan.Degraded, plan.Hierarchical)
		}
		blocked := make(map[int]bool, len(avoid))
		for _, id := range avoid {
			blocked[id] = true
		}
		for _, id := range plan.On {
			if blocked[id] {
				return nil, fmt.Errorf("request %d: avoided machine %d powered on", idx, id)
			}
		}
		out.ok, out.degraded, out.hier = 1, 1, 1
		if plan.ShedLoad > 0 {
			out.shedLoad = 1
		}
	case http.StatusBadRequest:
		if !wantBad {
			return nil, fmt.Errorf("request %d: valid avoid rejected 400", idx)
		}
		out.bad = 1
	case http.StatusServiceUnavailable:
		if resp.Header.Get("Retry-After") == "" {
			return nil, fmt.Errorf("request %d: 503 without Retry-After", idx)
		}
		out.shed = 1
	default:
		return nil, fmt.Errorf("request %d: unexpected status %d", idx, resp.StatusCode)
	}
	return out, nil
}

// requireStatus asserts one GET's status (and Retry-After presence when
// the status is 503) and returns the body.
func requireStatus(client *http.Client, url string, want int, retryAfter bool) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != want {
		return nil, fmt.Errorf("GET %s: status %d, want %d (%s)", url, resp.StatusCode, want, strings.TrimSpace(string(body)))
	}
	if retryAfter && resp.Header.Get("Retry-After") == "" {
		return nil, fmt.Errorf("GET %s: %d without Retry-After", url, want)
	}
	return body, nil
}

// expectReady asserts /v1/readyz agrees with want (503 + Retry-After
// when not ready).
func expectReady(client *http.Client, base string, want bool) error {
	resp, err := client.Get(base + "/v1/readyz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var ready roomapi.ReadyResult
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		return err
	}
	if want {
		if resp.StatusCode != http.StatusOK || !ready.Ready {
			return fmt.Errorf("readyz = %d ready=%t reason=%q, want ready", resp.StatusCode, ready.Ready, ready.Reason)
		}
		return nil
	}
	if resp.StatusCode != http.StatusServiceUnavailable || ready.Ready {
		return fmt.Errorf("readyz = %d ready=%t, want 503 not-ready", resp.StatusCode, ready.Ready)
	}
	if resp.Header.Get("Retry-After") == "" {
		return fmt.Errorf("not-ready readyz without Retry-After")
	}
	if ready.Reason == "" {
		return fmt.Errorf("not-ready readyz without a reason")
	}
	return nil
}
