package chaos

import "testing"

// TestIncrementalServingSmoke is the CI gate for the pipelined install
// path: a re-profiler trickles patch generations while planners hammer
// every serving flavor, race-enabled through make ci's race target. Any
// pipeline-contract violation — a backwards epoch, an answer mixing
// generations, readiness flapping across a commit, an overload shed, a
// generation that missed the patch path — fails it.
func TestIncrementalServingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent install/serve soak")
	}
	rep, err := RunIncrementalServing(IncrementalOptions{N: 64, Pods: 4, Installs: 12, MinQueries: 36})
	if err != nil {
		t.Fatalf("install pipeline contract violated: %v", err)
	}
	if rep.Verified == 0 {
		t.Fatalf("no answers were bit-verified against their recorded generation: %s", rep)
	}
	if rep.Degraded == 0 || rep.MaxLoads == 0 {
		t.Fatalf("hammer missed a serving flavor: %s", rep)
	}
	if rep.EpochsSeen < 2 {
		t.Fatalf("workers never observed an epoch change: %s", rep)
	}
	t.Logf("incremental serving: %s", rep)
}
