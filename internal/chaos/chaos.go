// Package chaos drives the fault-injection scenario suite behind
// `paperbench -chaos` and `traceplay -faults`. Each scenario replays a
// demand trace against the same profiled room three ways — a fault-free
// control run, the hardened controller under the scheduled faults, and
// the same controller with every hardening feature disabled (the
// pre-hardening baseline) — and reports time above T_max, steady-state
// violations, recovery time, and the energy cost of surviving.
//
// Everything is deterministic: scenarios carry fixed onsets, the three
// arms of a scenario clone the system from the same seed, and transport
// faults count requests rather than wall-clock time.
//
//coolopt:deterministic
package chaos

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"coolopt"
	"coolopt/internal/controller"
	"coolopt/internal/faults"
	"coolopt/internal/machineroom"
	"coolopt/internal/roomapi"
	"coolopt/internal/roomclient"
	"coolopt/internal/trace"
)

// MinDurationS is the shortest per-scenario replay that still covers
// every scheduled fault window plus its recovery.
const MinDurationS = 600

// Scenario is one reproducible fault story.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Detail is the one-line description.
	Detail string
	// Levels are the demand steps of the scenario trace, StepS apart.
	Levels []float64
	// StepS is the dwell time of each demand step.
	StepS float64
	// OnsetS is the earliest fault onset — the zero point for
	// recovery-time accounting.
	OnsetS float64
	// Build produces the fault schedule given the machines the initial
	// plan powers on; faults must target planned-on machines or they
	// degrade nothing.
	Build func(on []int) *faults.Schedule
}

// Suite returns the standard scenarios. The combined scenario is the
// acceptance case: one machine crash, one stuck sensor, and a network
// blackout in the same run.
func Suite() []Scenario {
	steady := []float64{0.5}
	return []Scenario{
		{
			Name:   "machine-crash",
			Detail: "a loaded machine crashes at t=120 s and refuses to power back on",
			Levels: steady, StepS: 1e9, OnsetS: 120,
			Build: func(on []int) *faults.Schedule {
				return &faults.Schedule{Events: []faults.Event{
					{Kind: faults.MachineCrash, AtS: 120, Machine: on[0]},
				}}
			},
		},
		{
			Name:   "stuck-sensor",
			Detail: "a CPU sensor freezes at a phantom-hot 85 °C for 400 s",
			Levels: steady, StepS: 1e9, OnsetS: 60,
			Build: func(on []int) *faults.Schedule {
				return &faults.Schedule{Events: []faults.Event{
					{Kind: faults.SensorStuck, AtS: 60, DurationS: 400,
						Machine: on[1%len(on)], StuckAtC: 85},
				}}
			},
		},
		{
			Name:   "crac-refusal",
			Detail: "the CRAC silently drops set-point commands for 250 s across a demand step",
			// The refusal window opens before the demand step at t=100 s,
			// so the step's new set-point command is silently dropped.
			Levels: []float64{0.4, 0.65}, StepS: 100, OnsetS: 80,
			Build: func([]int) *faults.Schedule {
				return &faults.Schedule{Events: []faults.Event{
					{Kind: faults.CRACRefuse, AtS: 80, DurationS: 250},
				}}
			},
		},
		{
			Name:   "net-blackout",
			Detail: "10 consecutive HTTP requests fail with status 500",
			Levels: steady, StepS: 1e9, OnsetS: 0,
			Build: func([]int) *faults.Schedule {
				return &faults.Schedule{Events: []faults.Event{
					{Kind: faults.NetError, FromRequest: 60, Requests: 10},
				}}
			},
		},
		{
			Name:   "combined",
			Detail: "machine crash + stuck-cold sensor + network blackout together",
			Levels: steady, StepS: 1e9, OnsetS: 60,
			Build: func(on []int) *faults.Schedule {
				return &faults.Schedule{Events: []faults.Event{
					{Kind: faults.MachineCrash, AtS: 120, Machine: on[0]},
					{Kind: faults.SensorStuck, AtS: 60, DurationS: 400,
						Machine: on[1%len(on)], StuckAtC: 25},
					{Kind: faults.NetError, FromRequest: 60, Requests: 10},
				}}
			},
		},
	}
}

// RandomScenario wraps a faults.Random schedule — one crash, one stuck
// sensor, one spike, a CRAC refusal window, and a network blackout at
// seed-derived onsets — into a soak scenario. The schedule's machine
// targets are remapped onto the machines the initial plan powers on, so
// every fault lands on a machine that is actually doing work. Two calls
// with the same arguments build identical scenarios.
func RandomScenario(soakSeed int64, n int, durationS float64) (Scenario, error) {
	sched, err := faults.Random(soakSeed, n, durationS)
	if err != nil {
		return Scenario{}, err
	}
	onset := durationS
	for _, e := range sched.Physical() {
		if e.AtS < onset {
			onset = e.AtS
		}
	}
	return Scenario{
		Name:   fmt.Sprintf("soak-%d", soakSeed),
		Detail: fmt.Sprintf("randomized fault schedule drawn from seed %d", soakSeed),
		Levels: []float64{0.5}, StepS: 1e9, OnsetS: onset,
		Build: func(on []int) *faults.Schedule {
			events := append([]faults.Event(nil), sched.Events...)
			for i := range events {
				if events[i].Physical() {
					events[i].Machine = on[events[i].Machine%len(on)]
				}
			}
			return &faults.Schedule{Events: events}
		},
	}, nil
}

// Options tunes a suite run.
type Options struct {
	// Seed derives each scenario's clone seed; the three arms of one
	// scenario share it, so they differ only in faults and hardening.
	Seed int64
	// DurationS is the per-scenario replay length (default 900,
	// minimum MinDurationS).
	DurationS float64
	// SoakSeed, when non-zero, appends a RandomScenario drawn from it to
	// the suite.
	SoakSeed int64
}

// Outcome is one scenario's three-arm comparison.
type Outcome struct {
	Scenario Scenario
	// Clean is the fault-free control run.
	Clean *controller.Result
	// Hardened ran under faults with full hardening; HardenedErr is
	// non-nil if it aborted (a suite failure).
	Hardened    *controller.Result
	HardenedErr error
	// Unhardened ran under the same faults with hardening disabled and
	// strict error handling — the pre-hardening controller.
	Unhardened    *controller.Result
	UnhardenedErr error
}

// RunSuite runs every scenario.
func RunSuite(sys *coolopt.System, opt Options) ([]Outcome, error) {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.DurationS == 0 {
		opt.DurationS = 900
	}
	if opt.DurationS < MinDurationS {
		return nil, fmt.Errorf("chaos: duration %.0f s shorter than the fault windows; need ≥ %d s",
			opt.DurationS, MinDurationS)
	}
	suite := Suite()
	if opt.SoakSeed != 0 {
		soak, err := RandomScenario(opt.SoakSeed, sys.Size(), opt.DurationS)
		if err != nil {
			return nil, err
		}
		suite = append(suite, soak)
	}
	var outs []Outcome
	for idx, sc := range suite {
		out, err := runScenario(sys, sc, opt.Seed+int64(idx)*101, opt.DurationS)
		if err != nil {
			return nil, fmt.Errorf("chaos: scenario %s: %w", sc.Name, err)
		}
		outs = append(outs, *out)
	}
	return outs, nil
}

func runScenario(sys *coolopt.System, sc Scenario, seed int64, durationS float64) (*Outcome, error) {
	tr, err := trace.Steps(sc.StepS, sc.Levels...)
	if err != nil {
		return nil, err
	}
	// Aim the faults at machines the initial plan actually powers on.
	plan, err := sys.Planner().Plan(coolopt.OptimalACCons, sc.Levels[0]*float64(sys.Size()))
	if err != nil {
		return nil, err
	}
	if len(plan.On) == 0 {
		return nil, fmt.Errorf("initial plan powers no machines on")
	}
	sched := sc.Build(plan.On)
	if err := sched.Validate(sys.Size()); err != nil {
		return nil, err
	}

	out := &Outcome{Scenario: sc}
	out.Clean, err = controller.Run(controller.Config{Sys: sys.Clone(seed)}, tr, durationS)
	if err != nil {
		return nil, fmt.Errorf("fault-free control run: %w", err)
	}
	out.Hardened, out.HardenedErr = runArm(sys, sched, tr, seed, durationS, false)
	out.Unhardened, out.UnhardenedErr = runArm(sys, sched, tr, seed, durationS, true)
	return out, nil
}

// runArm replays one faulted arm on its own clone.
func runArm(sys *coolopt.System, sched *faults.Schedule, tr *trace.Trace,
	seed int64, durationS float64, unhardened bool) (*controller.Result, error) {
	clone := sys.Clone(seed)
	retries := -1
	if unhardened {
		retries = 0 // the pre-hardening client never retried
	}
	// Scenario onsets are run-relative; the cloned room's clock carries
	// the whole profiling history.
	room, truth, cleanup, err := Wire(clone, sched.Rebase(clone.Sim().Time()), retries)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	cfg := controller.Config{Sys: clone, Room: room, Truth: truth}
	if unhardened {
		cfg.DisableSensorFilter = true
		cfg.DisableFailover = true
		cfg.DisableSafeMode = true
		cfg.StrictErrors = true
	}
	return controller.Run(cfg, tr, durationS)
}

// Wire builds the control-plane stack for a faulted run. Physical faults
// wrap the system's simulator in a faults.Room; when the schedule also
// carries transport faults, the stack is served over a loopback HTTP
// listener with faults.Middleware injecting the network failures, and the
// returned room is a roomclient talking to it. The truth source always
// reads ground truth from the faults.Room. retries < 0 keeps roomclient's
// default retry budget; retries == 0 disables retrying. cleanup releases
// the listener and is safe to call unconditionally.
func Wire(sys *coolopt.System, sched *faults.Schedule, retries int) (
	machineroom.Room, controller.TruthSource, func(), error) {
	froom, err := faults.NewRoom(sys.Sim(), sched)
	if err != nil {
		return nil, nil, nil, err
	}
	if !sched.HasNetwork() {
		return froom, froom, func() {}, nil
	}
	api, err := roomapi.NewServer(froom)
	if err != nil {
		return nil, nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	srv := &http.Server{
		Handler:           faults.Middleware(api, sched, time.Sleep),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }() // returns once cleanup closes the server
	opts := []roomclient.Option{
		roomclient.WithTimeout(5 * time.Second),
		roomclient.WithBackoff(5*time.Millisecond, 50*time.Millisecond),
		roomclient.WithRetrySeed(1),
	}
	if retries >= 0 {
		opts = append(opts, roomclient.WithRetries(retries))
	}
	client, err := roomclient.Dial("http://"+ln.Addr().String(), nil, opts...)
	if err != nil {
		_ = srv.Close()
		return nil, nil, nil, err
	}
	return client, froom, func() { _ = srv.Close() }, nil
}

// Render formats the suite outcomes as an aligned text report with a
// verdict block.
func Render(outs []Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %11s %8s %8s %9s  %-28s %s\n",
		"scenario", "ΔE vs clean", "T>Tmax", "steady", "recovery",
		"degradations", "unhardened controller")

	var steadyTotal float64
	hardenedAborted := 0
	unhardenedFailed := 0
	for i := range outs {
		o := &outs[i]
		if o.UnhardenedErr != nil ||
			(o.Unhardened != nil && o.Unhardened.ViolationOutsideRecoveryS > 0) {
			unhardenedFailed++
		}
		if o.HardenedErr != nil {
			hardenedAborted++
			fmt.Fprintf(&b, "%-14s hardened run ABORTED: %s\n",
				o.Scenario.Name, firstLine(o.HardenedErr.Error()))
			continue
		}
		h := o.Hardened
		steadyTotal += h.ViolationOutsideRecoveryS
		recovery := "-"
		if h.ViolationS > 0 {
			r := h.LastViolationTimeS - o.Scenario.OnsetS
			if r < 0 {
				r = h.LastViolationTimeS
			}
			recovery = fmt.Sprintf("%.0f s", r)
		}
		deg := fmt.Sprintf("fail=%d quar=%d safe=%d net=%d",
			h.MachineFailures, h.SensorsQuarantined,
			h.SafeModeActivations, h.TransportErrors)
		fmt.Fprintf(&b, "%-14s %10.1f%% %7.0fs %7.0fs %9s  %-28s %s\n",
			o.Scenario.Name,
			100*(h.EnergyJ-o.Clean.EnergyJ)/o.Clean.EnergyJ,
			h.ViolationS, h.ViolationOutsideRecoveryS, recovery,
			deg, unhardenedVerdict(o))
	}

	b.WriteString("\nnote: steady = violation seconds outside every recovery window; " +
		"recovery = last violation − fault onset;\n" +
		"note: degradations = machine failures / sensors quarantined / safe-mode entries / transport errors absorbed\n")
	if hardenedAborted == 0 && steadyTotal == 0 {
		b.WriteString("verdict: hardened controller finished every scenario with zero steady-state T_max violations\n")
	} else {
		fmt.Fprintf(&b, "verdict: HARDENED CONTROLLER FAILED — %d aborts, %.0f s steady-state violation\n",
			hardenedAborted, steadyTotal)
	}
	fmt.Fprintf(&b, "verdict: unhardened controller failed %d of %d scenarios outright "+
		"(aborted, violated T_max, burned energy, or dropped work)\n",
		unhardenedFailed+countSoftFailures(outs), len(outs))
	return b.String()
}

// countSoftFailures counts scenarios the unhardened controller finished
// without aborting or violating but still failed operationally — wasted
// energy chasing phantom readings or silently dropped committed work.
func countSoftFailures(outs []Outcome) int {
	n := 0
	for i := range outs {
		o := &outs[i]
		if o.UnhardenedErr != nil || o.Unhardened == nil ||
			o.Unhardened.ViolationOutsideRecoveryS > 0 {
			continue // already a hard failure (or aborted)
		}
		if v := unhardenedVerdict(o); v != "survived" {
			n++
		}
	}
	return n
}

// unhardenedVerdict summarizes how the pre-hardening controller fared,
// worst failure mode first.
func unhardenedVerdict(o *Outcome) string {
	if o.UnhardenedErr != nil {
		return "aborted: " + truncate(firstLine(o.UnhardenedErr.Error()), 52)
	}
	u := o.Unhardened
	if u.ViolationOutsideRecoveryS > 0 {
		return fmt.Sprintf("violated T_max for %.0f s", u.ViolationOutsideRecoveryS)
	}
	if o.Clean != nil && u.EnergyJ > 1.10*o.Clean.EnergyJ {
		return fmt.Sprintf("burned +%.0f%% energy",
			100*(u.EnergyJ-o.Clean.EnergyJ)/o.Clean.EnergyJ)
	}
	if o.Hardened != nil {
		if lost := o.Hardened.ServedLoadS - u.ServedLoadS; lost > 0.05*o.Hardened.ServedLoadS {
			return fmt.Sprintf("silently dropped %.0f unit·s of work", lost)
		}
	}
	return "survived"
}

func firstLine(s string) string {
	if k := strings.IndexByte(s, '\n'); k >= 0 {
		return s[:k]
	}
	return s
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
