package chaos

import (
	"strings"
	"sync"
	"testing"

	"coolopt"
	"coolopt/internal/controller"
	"coolopt/internal/faults"
	"coolopt/internal/trace"
)

var (
	sysOnce sync.Once
	sysVal  *coolopt.System
	sysErr  error
)

// testSystem profiles one small room for the whole package; every run
// clones it, so sharing is safe.
func testSystem(t *testing.T) *coolopt.System {
	t.Helper()
	sysOnce.Do(func() {
		sysVal, sysErr = coolopt.NewSystem(coolopt.WithSeed(3), coolopt.WithMachines(10))
	})
	if sysErr != nil {
		t.Fatalf("NewSystem: %v", sysErr)
	}
	return sysVal
}

func TestSuiteSchedulesValidate(t *testing.T) {
	on := []int{4, 7, 1}
	for _, sc := range Suite() {
		if sc.Name == "" || sc.Detail == "" || len(sc.Levels) == 0 || sc.StepS <= 0 {
			t.Errorf("scenario %+v missing fields", sc)
		}
		sched := sc.Build(on)
		if err := sched.Validate(8); err != nil {
			t.Errorf("scenario %s: %v", sc.Name, err)
		}
	}
}

func TestRandomScenarioIsDeterministic(t *testing.T) {
	a, err := RandomScenario(99, 10, 900)
	if err != nil {
		t.Fatalf("RandomScenario: %v", err)
	}
	b, err := RandomScenario(99, 10, 900)
	if err != nil {
		t.Fatalf("RandomScenario: %v", err)
	}
	on := []int{2, 5, 8}
	sa, sb := a.Build(on), b.Build(on)
	if len(sa.Events) != len(sb.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(sa.Events), len(sb.Events))
	}
	for i := range sa.Events {
		if sa.Events[i] != sb.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, sa.Events[i], sb.Events[i])
		}
	}
	if a.Name != b.Name || a.OnsetS != b.OnsetS {
		t.Fatalf("scenario metadata differs: %+v vs %+v", a, b)
	}
}

func TestRandomScenarioTargetsPlannedMachines(t *testing.T) {
	sc, err := RandomScenario(7, 20, 900)
	if err != nil {
		t.Fatalf("RandomScenario: %v", err)
	}
	on := []int{3, 9, 14}
	sched := sc.Build(on)
	if err := sched.Validate(20); err != nil {
		t.Fatalf("soak schedule invalid: %v", err)
	}
	allowed := map[int]bool{3: true, 9: true, 14: true}
	for _, e := range sched.Physical() {
		if !allowed[e.Machine] {
			t.Fatalf("event %+v targets machine %d outside the on set %v", e, e.Machine, on)
		}
	}
	if !sched.HasNetwork() {
		t.Fatal("soak schedule lost its network fault")
	}
}

func TestRandomScenarioRejectsShortDuration(t *testing.T) {
	if _, err := RandomScenario(1, 10, 120); err == nil {
		t.Fatal("short soak duration accepted")
	}
}

func TestRunSuiteRejectsShortDuration(t *testing.T) {
	if _, err := RunSuite(testSystem(t), Options{DurationS: 120}); err == nil {
		t.Fatal("duration shorter than the fault windows accepted")
	}
}

// TestRunSuiteSmoke is the chaos smoke test of the tier-1 gate: the full
// scenario suite on a small room, asserting the acceptance criteria — the
// hardened controller finishes every scenario without steady-state
// violations while the unhardened controller demonstrably fails the
// combined scenario.
func TestRunSuiteSmoke(t *testing.T) {
	outs, err := RunSuite(testSystem(t), Options{Seed: 11, DurationS: MinDurationS})
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	if len(outs) != len(Suite()) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(Suite()))
	}
	var combined *Outcome
	for i := range outs {
		o := &outs[i]
		if o.HardenedErr != nil {
			t.Errorf("%s: hardened run aborted: %v", o.Scenario.Name, o.HardenedErr)
			continue
		}
		if v := o.Hardened.ViolationOutsideRecoveryS; v > 0 {
			t.Errorf("%s: hardened run violated T_max for %.0f s outside recovery windows",
				o.Scenario.Name, v)
		}
		if o.Scenario.Name == "combined" {
			combined = o
		}
	}
	if combined == nil {
		t.Fatal("combined scenario missing from the suite")
	}
	if combined.Hardened.MachineFailures == 0 {
		t.Error("combined: hardened run detected no machine failure")
	}
	if combined.Hardened.SensorRejects == 0 {
		t.Error("combined: hardened run rejected no sensor readings")
	}
	if combined.UnhardenedErr == nil &&
		(combined.Unhardened == nil || combined.Unhardened.ViolationOutsideRecoveryS == 0) {
		t.Error("combined: unhardened controller neither aborted nor violated T_max")
	}

	report := Render(outs)
	for _, want := range []string{
		"machine-crash", "stuck-sensor", "crac-refusal", "net-blackout", "combined",
		"zero steady-state T_max violations", "unhardened controller failed",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestScenarioIsDeterministic(t *testing.T) {
	sys := testSystem(t)
	sc := Suite()[0] // machine-crash: in-process, no HTTP timing in play
	a, err := runScenario(sys, sc, 21, MinDurationS)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := runScenario(sys, sc, 21, MinDurationS)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Hardened.EnergyJ != b.Hardened.EnergyJ ||
		a.Hardened.ViolationS != b.Hardened.ViolationS ||
		a.Hardened.Replans != b.Hardened.Replans {
		t.Fatalf("hardened arm diverged: %+v vs %+v", a.Hardened, b.Hardened)
	}
	if a.Clean.EnergyJ != b.Clean.EnergyJ {
		t.Fatalf("clean arm diverged: %v vs %v", a.Clean.EnergyJ, b.Clean.EnergyJ)
	}
}

func TestWirePhysicalOnly(t *testing.T) {
	sys := testSystem(t).Clone(31)
	plan, err := sys.Planner().Plan(coolopt.OptimalACCons, 0.4*float64(sys.Size()))
	if err != nil {
		t.Fatal(err)
	}
	sched := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.SensorDropout, AtS: 50, DurationS: 100, Machine: plan.On[0]},
	}}
	room, truth, cleanup, err := Wire(sys, sched.Rebase(sys.Sim().Time()), -1)
	defer cleanup()
	if err != nil {
		t.Fatalf("Wire: %v", err)
	}
	if room == nil || truth == nil {
		t.Fatal("Wire returned nil room or truth")
	}
	if _, ok := room.(*faults.Room); !ok {
		t.Fatalf("physical-only schedule should wire an in-process faults.Room, got %T", room)
	}
	tr, err := trace.Steps(1e9, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := controller.Run(controller.Config{Sys: sys, Room: room, Truth: truth}, tr, 200)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SensorRejects == 0 {
		t.Error("dropout produced no sensor rejects")
	}
}
