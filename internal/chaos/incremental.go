package chaos

import (
	"context"
	"fmt"
	"math"
	"sync"

	"coolopt/internal/core"
	"coolopt/internal/engine"
	"coolopt/internal/faults"
	"coolopt/internal/mathx"
)

// This file is the incremental-install chaos scenario: a dual-table
// engine (exact tables with retained crossings plus pod tables) with a
// re-profiler trickling drift batches through the pipelined
// PreparePatch/CommitInstall path while planner goroutines hammer every
// serving flavor — exact plans, hierarchical degraded plans around
// failure bursts, and dual budget queries. The scenario passes only if
// the install pipeline's contract holds everywhere: every worker
// observes a monotonically non-decreasing epoch, every sampled answer is
// bit-identical to a recomputation against that epoch's recorded tables
// (no plan ever mixes generations), readiness never flaps across any of
// the commits, nothing is shed, and every trickled generation lands
// exactly once through the patch path.

// IncrementalOptions tunes RunIncrementalServing. Zero values pick the
// CI smoke size; paperbench -incremental-chaos raises the room.
type IncrementalOptions struct {
	// N is the room size; Pods the pod count (defaults 64 and 4).
	N    int
	Pods int
	// Seed drives the drift batches and query loads (default 1).
	Seed int64
	// Workers is the number of planner goroutines per serving flavor
	// (exact, degraded-hierarchical, budget; default 1 each).
	Workers int
	// Installs is the number of drift generations the installer trickles
	// through the pipeline (default 16).
	Installs int
	// MinQueries is the floor each worker must issue before it may stop,
	// so the hammer outlives the install trickle (default 48).
	MinQueries int
}

// IncrementalReport is the scenario's outcome; invariant violations are
// returned as an error by RunIncrementalServing.
type IncrementalReport struct {
	Installs   uint64 `json:"installs"`
	Queries    int    `json:"queries"`
	Verified   int    `json:"verified"`
	Degraded   int    `json:"degraded"`
	MaxLoads   int    `json:"maxLoads"`
	EpochsSeen int    `json:"epochsSeen"`
}

func (r *IncrementalReport) String() string {
	return fmt.Sprintf("%d pipelined installs under %d queries (%d bit-verified, %d degraded, %d budget); %d distinct epochs served",
		r.Installs, r.Queries, r.Verified, r.Degraded, r.MaxLoads, r.EpochsSeen)
}

// generation records the tables published at one epoch, captured BEFORE
// the commit so workers can replay any answer against the exact state it
// claims to come from.
type generation struct {
	snap *core.Snapshot
	pods *core.PodSnapshot
}

// RunIncrementalServing runs the scenario and returns the report, or an
// error describing the first pipeline-contract violation.
func RunIncrementalServing(opt IncrementalOptions) (*IncrementalReport, error) {
	if opt.N == 0 {
		opt.N = 64
	}
	if opt.Pods == 0 {
		opt.Pods = 4
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Workers == 0 {
		opt.Workers = 1
	}
	if opt.Installs == 0 {
		opt.Installs = 16
	}
	if opt.MinQueries == 0 {
		opt.MinQueries = 48
	}

	machines := make([]core.MachineProfile, opt.N)
	for i := range machines {
		h := float64(i) / float64(opt.N)
		machines[i] = core.MachineProfile{Alpha: 1, Beta: 0.46 * (1 + 0.1*h), Gamma: 0.5 + 2.2*h}
	}
	profile := &core.Profile{
		W1: 52, W2: 34, CoolFactor: 150, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}
	snap, err := core.NewSnapshot(profile, 0, core.WithPatchSupport())
	if err != nil {
		return nil, err
	}
	pods, err := core.NewPodSnapshot(profile, 0, core.WithPodCount(opt.Pods))
	if err != nil {
		return nil, err
	}
	// Exact cache keys so a cached answer is bit-identical to the
	// computation it memoized — the bit-verification below relies on it.
	eng, err := engine.FromSnapshots(snap, pods, engine.WithExactCacheKeys())
	if err != nil {
		return nil, err
	}

	var gens sync.Map // epoch uint64 → *generation
	gens.Store(uint64(0), &generation{snap: snap, pods: pods})

	rep := &IncrementalReport{}
	var (
		mu       sync.Mutex
		firstErr error
		epochs   = map[uint64]bool{}
		total    int // queries issued across all workers, guarded by mu
	)
	paced := sync.NewCond(&mu)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		paced.Broadcast()
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	bump := func() {
		mu.Lock()
		total++
		paced.Broadcast()
		mu.Unlock()
	}
	// waitQueries pauses the installer until the workers have issued at
	// least want queries (or the scenario failed). Pacing the trickle by
	// worker progress — not wall time, which the determinism contract
	// forbids anyway — keeps installs interleaved with serving no matter
	// how the scheduler slices a single core: workers are guaranteed to
	// observe several distinct generations, which the epoch-mix replay
	// below depends on. The installer re-anchors its target on the count
	// at each commit — a target fixed up front would be satisfied
	// instantly whenever the scheduler lets the workers sprint ahead,
	// letting every install then land back-to-back with no query in
	// between.
	waitQueries := func(want int) {
		mu.Lock()
		defer mu.Unlock()
		for total < want && firstErr == nil {
			paced.Wait()
		}
	}
	// installStride is how many worker queries must land between
	// consecutive installs.
	const installStride = 4

	// The installer trickles drift generations through the pipeline. Each
	// prepared state is recorded under its epoch before the commit, so no
	// worker can ever observe an epoch whose tables are unknown.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		rng := mathx.NewRand(opt.Seed + 1000)
		target := installStride
		for g := 0; g < opt.Installs; g++ {
			waitQueries(target)
			if failed() {
				return
			}
			k := []int{1, 2, 4}[g%3]
			batch := driftBatch(rng, eng.Snapshot().Profile(), k)
			prep, err := eng.PreparePatch(batch)
			if err != nil {
				fail(fmt.Errorf("install %d: prepare: %w", g, err))
				return
			}
			if !prep.Patched() {
				fail(fmt.Errorf("install %d fell off the patch path", g))
				return
			}
			gens.Store(prep.Epoch(), &generation{snap: prep.Snapshot(), pods: prep.Pods()})
			if err := eng.CommitInstall(prep); err != nil {
				fail(fmt.Errorf("install %d: commit: %w", g, err))
				return
			}
			// Re-anchor the pace on the progress at commit time, so the
			// next generation cannot land until the workers have served
			// queries against this one.
			mu.Lock()
			target = total + installStride
			mu.Unlock()
		}
	}()

	for w := 0; w < 3*opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := mathx.NewRand(opt.Seed + 17*int64(w) + 3)
			var last uint64
			seen := map[uint64]bool{}
			queries, verified, degraded, budgets := 0, 0, 0, 0
			for q := 0; ; q++ {
				select {
				case <-stop:
					if q >= opt.MinQueries {
						mu.Lock()
						rep.Queries += queries
						rep.Verified += verified
						rep.Degraded += degraded
						rep.MaxLoads += budgets
						for e := range seen {
							epochs[e] = true
						}
						mu.Unlock()
						return
					}
				default:
				}
				if failed() {
					return
				}
				// Readiness must hold at every sample: the pipelined
				// commit has no build window, so there is nothing to shed
				// around and nothing that may flap /v1/readyz.
				if ok, why := eng.Ready(); !ok {
					fail(fmt.Errorf("worker %d: readiness flapped mid-trickle: %s", w, why))
					return
				}
				epoch, v, d, b, err := oneIncrementalQuery(&gens, eng, rng, opt.N, w%3, q)
				if err != nil {
					fail(fmt.Errorf("worker %d query %d: %w", w, q, err))
					return
				}
				if epoch < last {
					fail(fmt.Errorf("worker %d: epoch went backwards: %d after %d", w, epoch, last))
					return
				}
				last = epoch
				seen[epoch] = true
				queries++
				verified += v
				degraded += d
				budgets += b
				bump()
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return rep, firstErr
	}
	rep.EpochsSeen = len(epochs)

	if got := eng.Epoch(); got != uint64(opt.Installs) {
		return rep, fmt.Errorf("final epoch %d, want %d", got, opt.Installs)
	}
	s := eng.Stats()
	rep.Installs = s.PipelinedInstalls
	if s.PipelinedInstalls != uint64(opt.Installs) || s.PatchInstalls != uint64(opt.Installs) {
		return rep, fmt.Errorf("install accounting: %d pipelined / %d patched, want %d of both",
			s.PipelinedInstalls, s.PatchInstalls, opt.Installs)
	}
	if s.StaleInstalls != 0 {
		return rep, fmt.Errorf("single installer lost %d epoch races", s.StaleInstalls)
	}
	if s.ShedOverload != 0 {
		return rep, fmt.Errorf("%d queries shed during the trickle", s.ShedOverload)
	}
	return rep, nil
}

// driftBatch builds one valid drift batch of k machines against the live
// profile: multiplicative α/β jitter (sign-preserving, so Validate always
// passes) plus a small additive γ walk.
func driftBatch(rng *mathx.Rand, p *core.Profile, k int) []core.MachineDelta {
	ids := rng.Perm(p.Size())[:k]
	batch := make([]core.MachineDelta, k)
	for i, id := range ids {
		m := p.Machines[id]
		m.Alpha *= rng.Uniform(0.99, 1.01)
		m.Beta *= rng.Uniform(0.97, 1.03)
		m.Gamma += rng.Uniform(-0.1, 0.1)
		batch[i] = core.MachineDelta{ID: id, Machine: m}
	}
	return batch
}

// oneIncrementalQuery issues one planning query of the worker's flavor
// and replays sampled answers against the recorded generation they claim
// to come from. Returns the served epoch and how the query counted
// (verified / degraded / budget).
func oneIncrementalQuery(gens *sync.Map, eng *engine.Engine, rng *mathx.Rand, n, flavor, q int) (uint64, int, int, int, error) {
	ctx := context.Background()
	switch flavor {
	case 1: // hierarchical degraded plans around failure bursts
		f := 1 + rng.Intn(4)
		var avoid []int
		if q%2 == 0 {
			avoid = faults.ConcentratedBurst(n, f)
		} else {
			avoid = faults.SpreadBurst(n, f)
		}
		load := rng.Uniform(0.2, 0.6) * float64(n-f)
		resp, err := eng.Plan(ctx, engine.Request{Load: load, Avoid: avoid, Mode: engine.ModeHier})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if !resp.Degraded || !resp.Hierarchical {
			return 0, 0, 0, 0, fmt.Errorf("degraded=%t hierarchical=%t, want both", resp.Degraded, resp.Hierarchical)
		}
		blocked := make(map[int]bool, len(avoid))
		for _, id := range avoid {
			blocked[id] = true
		}
		for _, id := range resp.Plan.On {
			if blocked[id] {
				return 0, 0, 0, 0, fmt.Errorf("avoided machine %d powered on at epoch %d", id, resp.Epoch)
			}
		}
		verified := 0
		if q%4 == 0 && resp.ShedLoad == 0 {
			g, err := recorded(gens, resp.Epoch)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			want, err := g.pods.PlanAvoiding(load, avoid)
			if err != nil {
				return 0, 0, 0, 0, fmt.Errorf("replay at epoch %d: %w", resp.Epoch, err)
			}
			if err := samePlan(resp.Plan, want); err != nil {
				return 0, 0, 0, 0, fmt.Errorf("epoch-%d degraded answer mixed generations: %w", resp.Epoch, err)
			}
			verified = 1
		}
		return resp.Epoch, verified, 1, 0, nil

	case 2: // dual budget queries plus hierarchical plans
		if q%2 == 0 {
			budget := rng.Uniform(0.3, 0.9) * float64(n) * 86
			if _, err := eng.MaxLoad(budget); err != nil {
				return 0, 0, 0, 0, fmt.Errorf("MaxLoad(%.0f W): %w", budget, err)
			}
			return eng.Epoch(), 0, 0, 1, nil
		}
		load := rng.Uniform(0.1, 0.7) * float64(n)
		resp, err := eng.Plan(ctx, engine.Request{Load: load, Mode: engine.ModeHier})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		verified := 0
		if q%4 == 1 {
			g, err := recorded(gens, resp.Epoch)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			want, err := g.pods.Plan(load)
			if err != nil {
				return 0, 0, 0, 0, fmt.Errorf("replay at epoch %d: %w", resp.Epoch, err)
			}
			if err := samePlan(resp.Plan, want); err != nil {
				return 0, 0, 0, 0, fmt.Errorf("epoch-%d hierarchical answer mixed generations: %w", resp.Epoch, err)
			}
			verified = 1
		}
		return resp.Epoch, verified, 0, 0, nil

	default: // exact whole-room plans
		load := rng.Uniform(0.1, 0.8) * float64(n)
		resp, err := eng.Plan(ctx, engine.Request{Load: load, Mode: engine.ModeExact})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		verified := 0
		if q%4 == 0 {
			g, err := recorded(gens, resp.Epoch)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			want, err := g.snap.Plan(load)
			if err != nil {
				return 0, 0, 0, 0, fmt.Errorf("replay at epoch %d: %w", resp.Epoch, err)
			}
			if err := samePlan(resp.Plan, want); err != nil {
				return 0, 0, 0, 0, fmt.Errorf("epoch-%d exact answer mixed generations: %w", resp.Epoch, err)
			}
			verified = 1
		}
		return resp.Epoch, verified, 0, 0, nil
	}
}

// recorded looks up the generation published at the given epoch; a miss
// means a worker saw an epoch that was never prepared.
func recorded(gens *sync.Map, epoch uint64) (*generation, error) {
	v, ok := gens.Load(epoch)
	if !ok {
		return nil, fmt.Errorf("served epoch %d has no recorded generation", epoch)
	}
	return v.(*generation), nil
}

// samePlan asserts two plans are bit-identical: same machine set, same
// per-machine loads and supply command to the last bit.
func samePlan(got, want *core.Plan) error {
	if len(got.On) != len(want.On) {
		return fmt.Errorf("|On| = %d vs %d", len(got.On), len(want.On))
	}
	for i := range got.On {
		if got.On[i] != want.On[i] {
			return fmt.Errorf("On[%d] = %d vs %d", i, got.On[i], want.On[i])
		}
	}
	if len(got.Loads) != len(want.Loads) {
		return fmt.Errorf("|Loads| = %d vs %d", len(got.Loads), len(want.Loads))
	}
	for i := range got.Loads {
		if math.Float64bits(got.Loads[i]) != math.Float64bits(want.Loads[i]) {
			return fmt.Errorf("Loads[%d] = %v vs %v", i, got.Loads[i], want.Loads[i])
		}
	}
	if math.Float64bits(float64(got.TAcC)) != math.Float64bits(float64(want.TAcC)) {
		return fmt.Errorf("TAcC = %v vs %v", got.TAcC, want.TAcC)
	}
	return nil
}
