package chaos

import "testing"

// TestDegradedServingSmoke is the CI chaos gate: the full scenario at a
// small room size, race-enabled through make ci's race target. Any
// serving-contract violation — a hung request, a 500, a 503 without
// Retry-After, a degraded plan powering an avoided machine, readiness
// failing to flip across the install — fails it.
func TestDegradedServingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback HTTP hammer")
	}
	rep, err := RunDegradedServing(ServingOptions{N: 64, Pods: 4, Clients: 6, Requests: 18})
	if err != nil {
		t.Fatalf("serving contract violated: %v", err)
	}
	if rep.OK == 0 {
		t.Fatalf("no successful degraded answers: %s", rep)
	}
	if rep.Degraded == 0 || rep.Hierarchical != rep.Degraded {
		t.Fatalf("degraded answers did not route through the pod planner: %s", rep)
	}
	if rep.BadRequest == 0 {
		t.Fatalf("stale-inventory requests never rejected: %s", rep)
	}
	if rep.InstallSheds == 0 {
		t.Fatalf("install window shed nothing: %s", rep)
	}
	t.Logf("degraded serving: %s", rep)
}
