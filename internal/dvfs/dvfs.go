// Package dvfs reproduces the paper's §V design argument as an
// experiment. The paper deliberately does not use dynamic voltage and
// frequency scaling: "the increasing percentage of leakage energy in
// modern architectures makes it less economic to keep machines on, even
// at the lowest frequency", so energy proportionality is better achieved
// "simply by turning off the right number of machines."
//
// This package gives DVFS its fair shot under the same fitted room model:
// a DVFS-only strategy keeps every machine on and picks the lowest
// frequency level that still serves the demand, with load spread evenly
// and the supply temperature raised as far as that (cooler) configuration
// allows. It is compared against the paper's consolidation optimum (#8)
// at full frequency.
//
// The frequency-dependent power model splits the fitted coefficients into
// a voltage-scalable CPU-dynamic part and frequency-insensitive parts
// (memory, disks, fans, VRM losses, leakage):
//
//	P(f, u) = pStatic + pClock·f + (pCPU·f² + pFixed)·u,  capacity = f
//
// calibrated so that f = 1 recovers the profiled P = w1·u + w2 exactly.
// Serving one unit of work at frequency f costs pCPU·f² + pFixed of
// dynamic power — the classic cubic-in-f dynamic energy per time, squared
// per unit of work — while the static floor never goes away; that floor
// is exactly what consolidation eliminates.
package dvfs

import (
	"fmt"

	"coolopt"
	"coolopt/internal/figures"
	"coolopt/internal/units"
)

// Split describes how the profiled coefficients divide into
// frequency-scalable and insensitive parts, as fractions in [0, 1].
type Split struct {
	// CPUDynamicShare is the share of w1 that scales with f² (CPU core
	// dynamic power); the rest is frequency-insensitive per-work cost.
	CPUDynamicShare float64
	// ClockedIdleShare is the share of w2 that scales linearly with f
	// (clock distribution, uncore); the rest is static leakage and
	// peripherals.
	ClockedIdleShare float64
}

// DefaultSplit reflects a 2010s 1U server: under half of the active power
// is voltage-scalable and most of the idle power is not.
func DefaultSplit() Split {
	return Split{CPUDynamicShare: 0.4, ClockedIdleShare: 0.3}
}

// Validate checks the split.
func (s Split) Validate() error {
	if s.CPUDynamicShare < 0 || s.CPUDynamicShare > 1 {
		return fmt.Errorf("dvfs: CPU dynamic share %v outside [0, 1]", s.CPUDynamicShare)
	}
	if s.ClockedIdleShare < 0 || s.ClockedIdleShare > 1 {
		return fmt.Errorf("dvfs: clocked idle share %v outside [0, 1]", s.ClockedIdleShare)
	}
	return nil
}

// DefaultLevels is a typical discrete P-state ladder (relative frequency).
var DefaultLevels = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// ServerPower returns one machine's power at frequency level f and
// utilization u (relative to the capacity f), under the split model
// calibrated to the profile's w1/w2.
func ServerPower(p *coolopt.Profile, s Split, f, u float64) float64 {
	pCPU := p.W1 * s.CPUDynamicShare
	pFixed := p.W1 * (1 - s.CPUDynamicShare)
	pClock := p.W2 * s.ClockedIdleShare
	pStatic := p.W2 * (1 - s.ClockedIdleShare)
	return pStatic + pClock*f + (pCPU*f*f+pFixed)*u
}

// EvalDVFS computes the model power of the DVFS-only strategy at the
// given total work (machine-units): every machine on, the lowest level
// that serves the work, load spread evenly, supply raised to the highest
// safe value.
func EvalDVFS(p *coolopt.Profile, s Split, levels []float64, work float64) (powerW, level float64, err error) {
	if err := s.Validate(); err != nil {
		return 0, 0, err
	}
	if len(levels) == 0 {
		return 0, 0, fmt.Errorf("dvfs: no frequency levels")
	}
	n := float64(p.Size())
	if work < 0 || work > n {
		return 0, 0, fmt.Errorf("dvfs: work %v outside [0, %v]", work, n)
	}
	level = -1
	for _, f := range levels {
		if f*n >= work-1e-12 {
			level = f
			break
		}
	}
	if level < 0 {
		return 0, 0, fmt.Errorf("dvfs: no level serves work %v", work)
	}
	u := 0.0
	if level > 0 {
		u = work / (n * level)
	}

	// Highest safe supply temperature for this uniform configuration:
	// T_max ≥ α_i·T_ac + β_i·P + γ_i for every machine.
	perServer := ServerPower(p, s, level, u)
	tAc := p.TAcMaxC
	for i := 0; i < p.Size(); i++ {
		m := p.Machines[i]
		limit := (p.TMaxC - m.Beta*perServer - m.Gamma) / m.Alpha
		if limit < tAc {
			tAc = limit
		}
	}
	if tAc < p.TAcMinC {
		return 0, 0, fmt.Errorf("dvfs: configuration needs supply below %v °C", p.TAcMinC)
	}
	return float64(p.CoolingPower(units.Celsius(tAc))) + n*perServer, level, nil
}

// Compare evaluates DVFS-only energy proportionality against the paper's
// consolidation optimum across a load sweep and returns the figure.
// loads are fractions of cluster capacity at full frequency.
func Compare(p *coolopt.Profile, s Split, loads []float64) (*figures.Figure, error) {
	opt, err := coolopt.NewOptimizer(p)
	if err != nil {
		return nil, err
	}
	dvfsSeries := figures.Series{Name: "DVFS-only (all on)"}
	consSeries := figures.Series{Name: "Consolidation (#8)"}
	levelSeries := figures.Series{Name: "chosen level (×1000)"}
	n := float64(p.Size())
	for _, lf := range loads {
		work := lf * n
		dp, level, err := EvalDVFS(p, s, DefaultLevels, work)
		if err != nil {
			return nil, fmt.Errorf("dvfs: load %.0f%%: %w", lf*100, err)
		}
		plan, err := opt.Plan(work)
		if err != nil {
			return nil, fmt.Errorf("dvfs: optimizer at %.0f%%: %w", lf*100, err)
		}
		x := lf * 100
		dvfsSeries.X = append(dvfsSeries.X, x)
		dvfsSeries.Y = append(dvfsSeries.Y, dp)
		consSeries.X = append(consSeries.X, x)
		consSeries.Y = append(consSeries.Y, float64(p.PlanPower(plan)))
		levelSeries.X = append(levelSeries.X, x)
		levelSeries.Y = append(levelSeries.Y, level*1000)
	}
	return &figures.Figure{
		ID:     "Extension E",
		Title:  "DVFS-only energy proportionality vs consolidation (model power)",
		XLabel: "Load (%)",
		YLabel: "Power (W)",
		Series: []figures.Series{dvfsSeries, consSeries, levelSeries},
		Notes: []string{
			"reproduces the paper's §V argument: the static power floor keeps DVFS-only above consolidation",
			fmt.Sprintf("split: %.0f%% of w1 voltage-scalable, %.0f%% of w2 clock-scalable",
				DefaultSplit().CPUDynamicShare*100, DefaultSplit().ClockedIdleShare*100),
		},
	}, nil
}
