package dvfs

import (
	"testing"

	"coolopt"
	"coolopt/internal/mathx"
)

func testProfile() *coolopt.Profile {
	machines := make([]coolopt.MachineProfile, 12)
	for i := range machines {
		h := float64(i) / 11
		machines[i] = coolopt.MachineProfile{
			Alpha: 1.0,
			Beta:  0.46 + 0.03*h,
			Gamma: 0.7 + 1.3*h,
		}
	}
	return &coolopt.Profile{
		W1: 52, W2: 34, CoolFactor: 150, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}
}

func TestSplitValidate(t *testing.T) {
	if err := DefaultSplit().Validate(); err != nil {
		t.Fatalf("default split invalid: %v", err)
	}
	if err := (Split{CPUDynamicShare: -0.1}).Validate(); err == nil {
		t.Fatal("negative share accepted")
	}
	if err := (Split{ClockedIdleShare: 1.5}).Validate(); err == nil {
		t.Fatal("share above 1 accepted")
	}
}

func TestServerPowerCalibratedAtFullFrequency(t *testing.T) {
	p := testProfile()
	s := DefaultSplit()
	for _, u := range []float64{0, 0.4, 1} {
		want := float64(p.ServerPower(u))
		if got := ServerPower(p, s, 1, u); !mathx.ApproxEqual(got, want, 1e-9) {
			t.Fatalf("f=1 u=%v: %v, want profiled %v", u, got, want)
		}
	}
}

func TestServerPowerFallsWithFrequency(t *testing.T) {
	p := testProfile()
	s := DefaultSplit()
	full := ServerPower(p, s, 1.0, 0.8)
	half := ServerPower(p, s, 0.5, 0.8)
	if half >= full {
		t.Fatalf("half frequency %v not below full %v", half, full)
	}
	// But the static floor means it cannot fall to zero at idle.
	if idle := ServerPower(p, s, 0.5, 0); idle < p.W2*(1-s.ClockedIdleShare) {
		t.Fatalf("idle at half frequency %v below the static floor", idle)
	}
}

func TestEvalDVFSPicksLowestFeasibleLevel(t *testing.T) {
	p := testProfile()
	s := DefaultSplit()
	// Work 6 on 12 machines: level 0.5 is exactly feasible.
	_, level, err := EvalDVFS(p, s, DefaultLevels, 6)
	if err != nil {
		t.Fatal(err)
	}
	if level != 0.5 {
		t.Fatalf("level = %v, want 0.5", level)
	}
	// Work 9: needs f ≥ 0.75 → level 0.8.
	_, level, err = EvalDVFS(p, s, DefaultLevels, 9)
	if err != nil {
		t.Fatal(err)
	}
	if level != 0.8 {
		t.Fatalf("level = %v, want 0.8", level)
	}
}

func TestEvalDVFSErrors(t *testing.T) {
	p := testProfile()
	s := DefaultSplit()
	if _, _, err := EvalDVFS(p, s, nil, 5); err == nil {
		t.Fatal("no levels accepted")
	}
	if _, _, err := EvalDVFS(p, s, DefaultLevels, -1); err == nil {
		t.Fatal("negative work accepted")
	}
	if _, _, err := EvalDVFS(p, s, DefaultLevels, 100); err == nil {
		t.Fatal("impossible work accepted")
	}
	if _, _, err := EvalDVFS(p, Split{CPUDynamicShare: 2}, DefaultLevels, 5); err == nil {
		t.Fatal("bad split accepted")
	}
	if _, _, err := EvalDVFS(p, s, []float64{0.3}, 6); err == nil {
		t.Fatal("infeasible ladder accepted")
	}
}

func TestConsolidationBeatsDVFSOnly(t *testing.T) {
	// The paper's §V claim, quantified: at low and mid loads the
	// consolidation optimum undercuts DVFS-only energy proportionality
	// because the static power floor of 12 powered-on machines never
	// goes away.
	fig, err := Compare(testProfile(), DefaultSplit(), []float64{0.2, 0.4, 0.6, 0.8})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	dvfsY, consY := fig.Series[0].Y, fig.Series[1].Y
	for i := range dvfsY {
		if consY[i] > dvfsY[i]+1e-9 {
			t.Fatalf("load point %d: consolidation %v W above DVFS-only %v W",
				i, consY[i], dvfsY[i])
		}
	}
	// And the gap must be material at low load.
	if gap := (dvfsY[0] - consY[0]) / dvfsY[0]; gap < 0.10 {
		t.Fatalf("low-load gap only %.1f%%, expected the static floor to dominate", gap*100)
	}
}

func TestDVFSRaceToIdleEffect(t *testing.T) {
	// With the realistic split, lowering the frequency barely helps:
	// the machine stays active longer per unit of work, so the
	// frequency-insensitive active power cancels the voltage-scaling
	// gain (the race-to-idle effect — one reason the paper skips DVFS).
	p := testProfile()
	const work = 3.0
	dvfsPower, _, err := EvalDVFS(p, DefaultSplit(), DefaultLevels, work)
	if err != nil {
		t.Fatal(err)
	}
	fullPower, _, err := EvalDVFS(p, DefaultSplit(), []float64{1.0}, work)
	if err != nil {
		t.Fatal(err)
	}
	if diff := (dvfsPower - fullPower) / fullPower; diff > 0.05 || diff < -0.05 {
		t.Fatalf("DVFS %v W vs full-frequency %v W: expected a near-wash (%.1f%%)",
			dvfsPower, fullPower, diff*100)
	}

	// Only for a hypothetical workload whose active power is almost all
	// CPU-dynamic does frequency scaling pay.
	cpuBound := Split{CPUDynamicShare: 0.95, ClockedIdleShare: 0.3}
	dvfsCPU, _, err := EvalDVFS(p, cpuBound, DefaultLevels, work)
	if err != nil {
		t.Fatal(err)
	}
	fullCPU, _, err := EvalDVFS(p, cpuBound, []float64{1.0}, work)
	if err != nil {
		t.Fatal(err)
	}
	if dvfsCPU >= fullCPU {
		t.Fatalf("CPU-bound split: DVFS %v W not below full frequency %v W", dvfsCPU, fullCPU)
	}
}
