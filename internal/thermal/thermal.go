// Package thermal implements the lumped-RC thermal model of a single
// computing unit from paper §II-A.
//
// A unit is a heat source (the CPU) inside an air volume with an intake and
// an outtake flow. With perfect, immediate mixing the outlet temperature
// equals the box air temperature, giving the paper's two coupled ODEs:
//
//	ν_cpu · dT_cpu/dt = P − (T_cpu − T_box)·ϑ            (Eq. 1)
//	ν_box · dT_box/dt = (T_cpu − T_box)·ϑ + F·c_air·(T_in − T_box)   (Eq. 2)
//
// Physical variables and units (paper Table I):
//
//	T, T_box, T_in   temperature            °C (the paper uses K; the model
//	                                        is affine so either works — we
//	                                        use °C throughout the repo)
//	ν_cpu, ν_box     heat capacity          J/K
//	ϑ                heat exchange rate     W/K (J·K⁻¹·s⁻¹)
//	F                air flow               m³/s
//	c_air            volumetric heat cap.   J/(K·m³)
//	P                heat producing rate    W (J/s)
//
// At steady state the model collapses to the affine relations the paper
// optimizes over: T_box = T_in + P/(F·c_air) and T_cpu = T_box + P/ϑ, i.e.
// T_cpu = T_in + β·P with β = 1/(F·c_air) + 1/ϑ (Eq. 5–6).
package thermal

import "fmt"

// CAirDefault is the volumetric heat capacity of air in J/(K·m³) at
// machine-room conditions (≈1.2 kg/m³ × 1005 J/(kg·K)).
const CAirDefault = 1200.0

// Params holds the physical constants of one computing unit.
type Params struct {
	// NuCPU is the heat capacity of the CPU package in J/K.
	NuCPU float64
	// NuBox is the heat capacity of the air volume inside the unit in J/K.
	NuBox float64
	// Theta is the CPU↔box heat exchange rate ϑ in W/K.
	Theta float64
	// Flow is the air flow through the unit in m³/s (intake = outtake).
	Flow float64
	// CAir is the volumetric heat capacity of air in J/(K·m³).
	CAir float64
}

// Validate checks that the parameters are physically plausible.
func (p Params) Validate() error {
	switch {
	case p.NuCPU <= 0:
		return fmt.Errorf("thermal: NuCPU = %v, must be positive", p.NuCPU)
	case p.NuBox <= 0:
		return fmt.Errorf("thermal: NuBox = %v, must be positive", p.NuBox)
	case p.Theta <= 0:
		return fmt.Errorf("thermal: Theta = %v, must be positive", p.Theta)
	case p.Flow <= 0:
		return fmt.Errorf("thermal: Flow = %v, must be positive", p.Flow)
	case p.CAir <= 0:
		return fmt.Errorf("thermal: CAir = %v, must be positive", p.CAir)
	}
	return nil
}

// Beta returns the steady-state coefficient of power in the CPU temperature
// relation, β = 1/(F·c_air) + 1/ϑ (paper Eq. 6), in K/W.
func (p Params) Beta() float64 {
	return 1/(p.Flow*p.CAir) + 1/p.Theta
}

// State is the thermal state of one unit.
type State struct {
	// TCPU is the CPU temperature in °C.
	TCPU float64
	// TBox is the box (outlet) air temperature in °C.
	TBox float64
}

// SteadyState returns the equilibrium state for a constant heat input
// powerW (Watts) and inlet temperature tInC (°C), from paper Eqs. 3–5.
func (p Params) SteadyState(powerW, tInC float64) State {
	tBox := tInC + powerW/(p.Flow*p.CAir)
	return State{
		TCPU: tBox + powerW/p.Theta,
		TBox: tBox,
	}
}

// Step advances the state by dt seconds under heat input powerW and inlet
// temperature tInC using RK4 integration of Eqs. 1–2. dt must be positive;
// the per-unit time constants are tens of seconds, so dt ≤ 1 s is accurate.
func (p Params) Step(s State, powerW, tInC, dt float64) State {
	k1 := p.deriv(s, powerW, tInC)
	k2 := p.deriv(s.add(k1, dt/2), powerW, tInC)
	k3 := p.deriv(s.add(k2, dt/2), powerW, tInC)
	k4 := p.deriv(s.add(k3, dt), powerW, tInC)
	return State{
		TCPU: s.TCPU + dt/6*(k1.TCPU+2*k2.TCPU+2*k3.TCPU+k4.TCPU),
		TBox: s.TBox + dt/6*(k1.TBox+2*k2.TBox+2*k3.TBox+k4.TBox),
	}
}

// deriv evaluates the right-hand side of Eqs. 1–2; the returned State holds
// temperature derivatives in K/s.
func (p Params) deriv(s State, powerW, tInC float64) State {
	exchange := (s.TCPU - s.TBox) * p.Theta
	return State{
		TCPU: (powerW - exchange) / p.NuCPU,
		TBox: (exchange + p.Flow*p.CAir*(tInC-s.TBox)) / p.NuBox,
	}
}

func (s State) add(d State, scale float64) State {
	return State{TCPU: s.TCPU + d.TCPU*scale, TBox: s.TBox + d.TBox*scale}
}
