package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"coolopt/internal/mathx"
)

// testParams is a plausible rack server: ~12 W/K of air-side conductance,
// ~2.5 W/K sink conductance, small thermal masses.
func testParams() Params {
	return Params{
		NuCPU: 120,
		NuBox: 60,
		Theta: 2.5,
		Flow:  0.01,
		CAir:  CAirDefault,
	}
}

func TestParamsValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{name: "NuCPU", mutate: func(p *Params) { p.NuCPU = 0 }},
		{name: "NuBox", mutate: func(p *Params) { p.NuBox = -1 }},
		{name: "Theta", mutate: func(p *Params) { p.Theta = 0 }},
		{name: "Flow", mutate: func(p *Params) { p.Flow = 0 }},
		{name: "CAir", mutate: func(p *Params) { p.CAir = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := testParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("invalid params accepted")
			}
		})
	}
}

func TestBeta(t *testing.T) {
	p := testParams()
	want := 1/(p.Flow*p.CAir) + 1/p.Theta
	if got := p.Beta(); !mathx.ApproxEqual(got, want, 1e-12) {
		t.Fatalf("Beta = %v, want %v", got, want)
	}
}

func TestSteadyStateZeroPower(t *testing.T) {
	s := testParams().SteadyState(0, 21)
	if !mathx.ApproxEqual(s.TCPU, 21, 1e-12) || !mathx.ApproxEqual(s.TBox, 21, 1e-12) {
		t.Fatalf("zero-power steady state = %+v, want inlet temperature", s)
	}
}

func TestSteadyStateMatchesBetaRelation(t *testing.T) {
	p := testParams()
	const (
		powerW = 80.0
		tIn    = 18.0
	)
	s := p.SteadyState(powerW, tIn)
	// Paper Eq. 5: T_cpu = T_in + β·P.
	want := tIn + p.Beta()*powerW
	if !mathx.ApproxEqual(s.TCPU, want, 1e-9) {
		t.Fatalf("TCPU = %v, want %v", s.TCPU, want)
	}
	if s.TBox <= tIn || s.TBox >= s.TCPU {
		t.Fatalf("TBox = %v not between inlet %v and CPU %v", s.TBox, tIn, s.TCPU)
	}
}

func TestStepConvergesToSteadyState(t *testing.T) {
	p := testParams()
	const (
		powerW = 70.0
		tIn    = 19.0
		dt     = 0.5
	)
	want := p.SteadyState(powerW, tIn)
	s := State{TCPU: tIn, TBox: tIn}
	for i := 0; i < 4000; i++ { // 2000 simulated seconds
		s = p.Step(s, powerW, tIn, dt)
	}
	if !mathx.ApproxEqual(s.TCPU, want.TCPU, 1e-6) {
		t.Fatalf("TCPU settled at %v, want %v", s.TCPU, want.TCPU)
	}
	if !mathx.ApproxEqual(s.TBox, want.TBox, 1e-6) {
		t.Fatalf("TBox settled at %v, want %v", s.TBox, want.TBox)
	}
}

func TestStepSteadyStateIsFixedPoint(t *testing.T) {
	p := testParams()
	s := p.SteadyState(50, 20)
	next := p.Step(s, 50, 20, 1)
	if !mathx.ApproxEqual(next.TCPU, s.TCPU, 1e-9) || !mathx.ApproxEqual(next.TBox, s.TBox, 1e-9) {
		t.Fatalf("steady state drifted: %+v → %+v", s, next)
	}
}

func TestStepSettlesWithinPaperTimescale(t *testing.T) {
	// Paper §IV-A: a stable CPU temperature is reached in about 200 s.
	p := testParams()
	const (
		powerW = 85.0
		tIn    = 18.0
	)
	want := p.SteadyState(powerW, tIn)
	s := p.SteadyState(35, tIn) // start from idle equilibrium
	for i := 0; i < 300; i++ {
		s = p.Step(s, powerW, tIn, 1)
	}
	if math.Abs(s.TCPU-want.TCPU) > 0.5 {
		t.Fatalf("after 300 s TCPU = %v, steady %v: settles too slowly for the paper's 200 s protocol", s.TCPU, want.TCPU)
	}
}

func TestStepRespondsToInletChange(t *testing.T) {
	p := testParams()
	s := p.SteadyState(60, 18)
	for i := 0; i < 2000; i++ {
		s = p.Step(s, 60, 22, 1)
	}
	want := p.SteadyState(60, 22)
	if !mathx.ApproxEqual(s.TCPU, want.TCPU, 1e-3) {
		t.Fatalf("TCPU after inlet step = %v, want %v", s.TCPU, want.TCPU)
	}
	// A 4 K inlet rise shifts steady CPU temperature by exactly 4 K.
	if !mathx.ApproxEqual(want.TCPU-p.SteadyState(60, 18).TCPU, 4, 1e-9) {
		t.Fatal("inlet shift must translate one-for-one at steady state")
	}
}

// Property: for random valid parameters, integrating long enough converges
// to the closed-form steady state.
func TestStepConvergenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mathx.NewRand(seed)
		p := Params{
			NuCPU: rng.Uniform(50, 300),
			NuBox: rng.Uniform(20, 150),
			Theta: rng.Uniform(1, 5),
			Flow:  rng.Uniform(0.005, 0.03),
			CAir:  CAirDefault,
		}
		powerW := rng.Uniform(20, 120)
		tIn := rng.Uniform(15, 30)
		want := p.SteadyState(powerW, tIn)
		s := State{TCPU: tIn, TBox: tIn}
		for i := 0; i < 30000; i++ {
			s = p.Step(s, powerW, tIn, 0.25)
		}
		return mathx.ApproxEqual(s.TCPU, want.TCPU, 1e-4) &&
			mathx.ApproxEqual(s.TBox, want.TBox, 1e-4)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: steady CPU temperature is increasing in power and in inlet
// temperature (the physical monotonicity the optimizer relies on).
func TestSteadyStateMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mathx.NewRand(seed)
		p := Params{
			NuCPU: rng.Uniform(50, 300),
			NuBox: rng.Uniform(20, 150),
			Theta: rng.Uniform(1, 5),
			Flow:  rng.Uniform(0.005, 0.03),
			CAir:  CAirDefault,
		}
		p1, p2 := rng.Uniform(10, 60), rng.Uniform(61, 120)
		t1, t2 := rng.Uniform(10, 20), rng.Uniform(21, 35)
		if p.SteadyState(p2, t1).TCPU <= p.SteadyState(p1, t1).TCPU {
			return false
		}
		return p.SteadyState(p1, t2).TCPU > p.SteadyState(p1, t1).TCPU
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
