package thermal

import "testing"

// BenchmarkStepRK4 measures one RK4 step of the per-server thermal ODEs.
func BenchmarkStepRK4(b *testing.B) {
	p := Params{NuCPU: 120, NuBox: 60, Theta: 2.5, Flow: 0.01, CAir: CAirDefault}
	s := p.SteadyState(50, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = p.Step(s, 70, 19, 1)
	}
	_ = s
}
