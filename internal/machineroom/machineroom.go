// Package machineroom defines the operator-facing surface of a machine
// room: everything the paper's methodology needs to profile and control
// one — per-machine load and power switches, the CRAC set point, sensor
// readouts, and a way to let (simulated) time pass.
//
// Two implementations exist: the in-process simulator (internal/sim) and
// an HTTP client for a room served remotely (internal/roomclient, talking
// to the internal/roomapi server). The profiling pipeline and controllers
// work against this interface, so they run unchanged against either.
package machineroom

// Room is one controllable machine room.
type Room interface {
	// Size returns the number of machines.
	Size() int
	// Time returns the room clock in seconds.
	Time() float64

	// SetLoad assigns a utilization in [0, 1] to a powered-on machine.
	SetLoad(i int, util float64) error
	// SetPower turns machine i on or off; powering off drops its load.
	SetPower(i int, on bool) error
	// IsOn reports machine i's power state.
	IsOn(i int) bool

	// SetSetPoint moves the CRAC exhaust set point in °C.
	SetSetPoint(tSPC float64)
	// SetPoint returns the CRAC exhaust set point in °C.
	SetPoint() float64
	// Supply returns the CRAC supply temperature T_ac in °C.
	Supply() float64
	// ReturnTemp returns the exhaust (return) air temperature in °C.
	ReturnTemp() float64

	// MeasuredCPUTemp returns machine i's CPU temperature reading in °C.
	MeasuredCPUTemp(i int) float64
	// MeasuredServerPower returns machine i's power-meter reading in W.
	MeasuredServerPower(i int) float64
	// MeasuredCRACPower returns the cooling unit's metered power in W.
	MeasuredCRACPower() float64

	// Step advances the room by one second.
	Step()
	// Run advances the room by the given number of seconds.
	Run(seconds float64)
}
