package machineroom

import (
	"testing"

	"coolopt/internal/sim"
)

// The in-process simulator must satisfy the Room interface — this is the
// compile-time contract the profiling pipeline relies on.
var _ Room = (*sim.Simulator)(nil)

func TestSimulatorImplementsRoom(t *testing.T) {
	s, err := sim.NewDefault(1)
	if err != nil {
		t.Fatal(err)
	}
	var room Room = s
	if room.Size() != 20 {
		t.Fatalf("Size = %d", room.Size())
	}
	room.Run(10)
	if room.Time() < 10 {
		t.Fatalf("Time = %v", room.Time())
	}
}
