// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that cooloptlint needs. The repo
// builds offline with a zero-dependency go.mod, so rather than pinning
// x/tools we load packages with `go list -deps -export` and type-check
// them against the gc export data the build cache already holds. The
// analyzers themselves are written against the same Analyzer/Pass shape as
// upstream, so porting them onto x/tools later is mechanical.
//
// Two comment directives drive the suite:
//
//	//coolopt:deterministic
//	    Package marker. Analyzers that only make sense for reproducible
//	    code (the determinism checker) run solely on marked packages.
//
//	//coolopt:ignore <analyzer> [reason]
//	    Suppresses diagnostics from the named analyzer on the same line
//	    or the line directly below the directive.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects a single package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path ("coolopt/internal/core").
	PkgPath string
	// markers holds the //coolopt: package markers ("deterministic").
	markers map[string]bool

	diags []Diagnostic
}

// Diagnostic is a single finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// HasMarker reports whether the package carries //coolopt:<name>.
func (p *Pass) HasMarker(name string) bool { return p.markers[name] }

// Finding is a resolved diagnostic with its position and analyzer.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// markerDirectives extracts //coolopt:<word> markers from a package's
// files. Only bare markers (no arguments) count; ignore directives are
// handled separately.
func markerDirectives(files []*ast.File) map[string]bool {
	markers := make(map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, "//coolopt:")
				if !ok {
					continue
				}
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					continue // has arguments: not a package marker
				}
				if rest != "" && rest != "ignore" {
					markers[rest] = true
				}
			}
		}
	}
	return markers
}

// ignoreIndex maps file → line → analyzer names suppressed on that line.
type ignoreIndex map[string]map[int]map[string]bool

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, "//coolopt:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					idx[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					byLine[pos.Line] = names
				}
				names[fields[0]] = true
			}
		}
	}
	return idx
}

// suppressed reports whether a finding from analyzer name at position pos
// is covered by an ignore directive on the same or the preceding line.
func (idx ignoreIndex) suppressed(name string, pos token.Position) bool {
	byLine := idx[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names := byLine[line]; names != nil && names[name] {
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		markers := markerDirectives(pkg.Files)
		ignores := buildIgnoreIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.Path,
				markers:  markers,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				pos := pkg.Fset.Position(d.Pos)
				if ignores.suppressed(a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
