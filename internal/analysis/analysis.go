// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that cooloptlint needs. The repo
// builds offline with a zero-dependency go.mod, so rather than pinning
// x/tools we load packages with `go list -deps -export` and type-check
// them against the gc export data the build cache already holds. The
// analyzers themselves are written against the same Analyzer/Pass shape as
// upstream, so porting them onto x/tools later is mechanical.
//
// Two comment directives drive the suite:
//
//	//coolopt:deterministic
//	    Package marker. Analyzers that only make sense for reproducible
//	    code (the determinism checker) run solely on marked packages.
//
//	//coolopt:ignore <analyzer> [reason]
//	    Suppresses diagnostics from the named analyzer on the same line
//	    or the line directly below the directive.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects a single package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path ("coolopt/internal/core").
	PkgPath string
	// markers holds the //coolopt: package markers ("deterministic").
	markers map[string]bool

	diags []Diagnostic
}

// Diagnostic is a single finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// HasMarker reports whether the package carries //coolopt:<name>.
func (p *Pass) HasMarker(name string) bool { return p.markers[name] }

// Finding is a resolved diagnostic with its position and analyzer.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Analyzer, f.Message)
}

// markerDirectives extracts //coolopt:<word> markers from a package's
// files. Only bare markers (no arguments) count; ignore directives are
// handled separately.
func markerDirectives(files []*ast.File) map[string]bool {
	markers := make(map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, "//coolopt:")
				if !ok {
					continue
				}
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					continue // has arguments: not a package marker
				}
				if rest != "" && rest != "ignore" {
					markers[rest] = true
				}
			}
		}
	}
	return markers
}

// ignoreIndex maps file → line → analyzer names suppressed on that line.
type ignoreIndex map[string]map[int]map[string]bool

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, "//coolopt:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					idx[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					byLine[pos.Line] = names
				}
				names[fields[0]] = true
			}
		}
	}
	return idx
}

// suppressed reports whether a finding from analyzer name at position pos
// is covered by an ignore directive on the same or the preceding line.
func (idx ignoreIndex) suppressed(name string, pos token.Position) bool {
	byLine := idx[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names := byLine[line]; names != nil && names[name] {
			return true
		}
	}
	return false
}

// Result is one full suite run: the surviving findings plus the wall
// time each analyzer spent, summed across packages.
type Result struct {
	Findings []Finding
	// Elapsed maps analyzer name to its cumulative run time across all
	// packages. With parallel packages the sum exceeds the run's wall
	// clock — it is the per-analyzer cost ranking, not a stopwatch.
	Elapsed map[string]time.Duration
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. Packages are analyzed in parallel.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Finding, error) {
	res, err := RunTimed(analyzers, pkgs, 0)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// RunTimed applies every analyzer to every package with up to workers
// packages in flight at once (workers <= 0 means GOMAXPROCS) and
// returns sorted findings plus per-analyzer timing. Each analyzer pass
// touches only its own package, so package-level parallelism is safe;
// output is position-sorted and therefore independent of scheduling.
func RunTimed(analyzers []*Analyzer, pkgs []*Package, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}

	perPkg := make([][]Finding, len(pkgs))
	errs := make([]error, len(pkgs))
	elapsed := make(map[string]time.Duration, len(analyzers))
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		jobs = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				perPkg[i], errs[i] = runPackage(analyzers, pkgs[i], &mu, elapsed)
			}
		}()
	}
	for i := range pkgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	res := &Result{Elapsed: elapsed}
	for i := range pkgs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res.Findings = append(res.Findings, perPkg[i]...)
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i].Position, res.Findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return res.Findings[i].Analyzer < res.Findings[j].Analyzer
	})
	return res, nil
}

// runPackage applies the analyzers to one package, folding each
// analyzer's elapsed time into the shared map under mu.
func runPackage(analyzers []*Analyzer, pkg *Package, mu *sync.Mutex, elapsed map[string]time.Duration) ([]Finding, error) {
	var findings []Finding
	markers := markerDirectives(pkg.Files)
	ignores := buildIgnoreIndex(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.Path,
			markers:  markers,
		}
		start := time.Now()
		err := a.Run(pass)
		d := time.Since(start)
		mu.Lock()
		elapsed[a.Name] += d
		mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, diag := range pass.diags {
			pos := pkg.Fset.Position(diag.Pos)
			if ignores.suppressed(a.Name, pos) {
				continue
			}
			findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Message: diag.Message})
		}
	}
	return findings, nil
}
