package analysis

// Suite returns the full cooloptlint analyzer suite in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		CloneSafety,
		CtxHTTP,
		Determinism,
		FloatCmp,
		Units,
	}
}
