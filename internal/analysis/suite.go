package analysis

// Suite returns the full cooloptlint analyzer suite in reporting order.
// The first five guard the paper reproduction's invariants (PR 3); the
// last four guard the concurrent engine/serving layer: atomic-field
// discipline and RCU publication (lockatomic), the typed-error contract
// behind the HTTP status mapping (errcontract), goroutine/timer leaks
// under sustained serving (goroleak), and the snapshot deep-freeze
// contract (snapshotmut).
func Suite() []*Analyzer {
	return []*Analyzer{
		CloneSafety,
		CtxHTTP,
		Determinism,
		ErrContract,
		FloatCmp,
		GoroLeak,
		LockAtomic,
		SnapshotMut,
		Units,
	}
}

// Select filters the suite by name: only narrows to the named analyzers
// when non-empty, skip removes names. Unknown names are returned so the
// driver can fail fast instead of silently linting with a typo.
func Select(suite []*Analyzer, only, skip []string) (selected []*Analyzer, unknown []string) {
	byName := make(map[string]*Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	for _, name := range append(append([]string(nil), only...), skip...) {
		if byName[name] == nil {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		return nil, unknown
	}
	skipped := make(map[string]bool, len(skip))
	for _, name := range skip {
		skipped[name] = true
	}
	for _, a := range suite {
		if skipped[a.Name] {
			continue
		}
		if len(only) > 0 {
			keep := false
			for _, name := range only {
				if a.Name == name {
					keep = true
					break
				}
			}
			if !keep {
				continue
			}
		}
		selected = append(selected, a)
	}
	return selected, nil
}
