package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between two non-constant floating-point
// operands. Exact float equality is almost always a latent tolerance bug
// in this codebase — plan powers and temperatures come out of iterative
// solvers — so comparisons must go through mathx.ApproxEqual, or
// mathx.Same for the rare deliberate bit-exact check (deterministic
// tie-breaking). Comparisons against constants (`cfg.DT == 0` sentinels,
// `load != 1`) are exempt: they test for exact sentinel values that were
// assigned, not computed. Package mathx itself is exempt — it is where the
// sanctioned comparisons live.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "forbid ==/!= between computed floats outside mathx; use " +
		"mathx.ApproxEqual or mathx.Same",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	if pass.PkgPath == "coolopt/internal/mathx" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			x, y := pass.Info.Types[bin.X], pass.Info.Types[bin.Y]
			if !isFloat(x.Type) || !isFloat(y.Type) {
				return true
			}
			if x.Value != nil || y.Value != nil {
				return true // sentinel comparison against a constant
			}
			pass.Reportf(bin.Pos(), "exact %s between computed floats; use mathx.ApproxEqual, or mathx.Same if bit-exact comparison is intended", bin.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
