package analysis

import (
	"go/ast"
	"go/types"
)

// CtxHTTP enforces context propagation and bounded timeouts on HTTP
// client code. The room control loop talks to remote rooms over HTTP; a
// request without a context cannot be cancelled when the controller falls
// back to the safe plan, and a client without a timeout can wedge the
// loop behind a dead CRAC endpoint indefinitely. Flagged: the package
// convenience helpers (http.Get and friends), http.NewRequest (use
// NewRequestWithContext), http.DefaultClient, and http.Client composite
// literals that do not set Timeout.
var CtxHTTP = &Analyzer{
	Name: "ctxhttp",
	Doc: "require context propagation (NewRequestWithContext) and explicit " +
		"timeouts on HTTP clients",
	Run: runCtxHTTP,
}

func runCtxHTTP(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkHTTPSelector(pass, n)
			case *ast.CompositeLit:
				checkClientLiteral(pass, n)
			}
			return true
		})
	}
	return nil
}

// httpPkgObject resolves sel to an object in net/http accessed through the
// package name, returning "" otherwise.
func httpPkgObject(pass *Pass, sel *ast.SelectorExpr) string {
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "net/http" {
		return ""
	}
	return sel.Sel.Name
}

func checkHTTPSelector(pass *Pass, sel *ast.SelectorExpr) {
	switch httpPkgObject(pass, sel) {
	case "Get", "Post", "PostForm", "Head":
		pass.Reportf(sel.Pos(), "http.%s ignores context and uses the timeout-less DefaultClient; build the request with http.NewRequestWithContext and send it through a client with a Timeout", sel.Sel.Name)
	case "NewRequest":
		pass.Reportf(sel.Pos(), "http.NewRequest drops the caller's context; use http.NewRequestWithContext")
	case "DefaultClient":
		pass.Reportf(sel.Pos(), "http.DefaultClient has no timeout; use a client with an explicit Timeout")
	}
}

// checkClientLiteral flags http.Client{...} literals without a Timeout
// field.
func checkClientLiteral(pass *Pass, lit *ast.CompositeLit) {
	t := pass.Info.Types[lit].Type
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "net/http" || obj.Name() != "Client" {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Timeout" {
			return
		}
	}
	pass.Reportf(lit.Pos(), "http.Client literal without Timeout; a hung room endpoint would block forever")
}
