package analysis

import (
	"testing"
)

func TestDeterminismFixture(t *testing.T) { RunFixture(t, Determinism, "determinism") }
func TestUnitsFixture(t *testing.T)       { RunFixture(t, Units, "units") }
func TestCloneSafetyFixture(t *testing.T) { RunFixture(t, CloneSafety, "clonesafety") }
func TestFloatCmpFixture(t *testing.T)    { RunFixture(t, FloatCmp, "floatcmp") }
func TestCtxHTTPFixture(t *testing.T)     { RunFixture(t, CtxHTTP, "ctxhttp") }

// TestSuiteNamesAreUnique guards the ignore-directive namespace: two
// analyzers sharing a name would make //coolopt:ignore ambiguous.
func TestSuiteNamesAreUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incompletely declared", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestRepoIsLintClean runs the full suite over every package in the
// module — the same invocation as `make lint` — and requires zero
// findings. A regression here means a change introduced a violation
// without either fixing it or adding a justified ignore directive.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	program, err := fixtureProgram()
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	findings, err := Run(Suite(), program.Packages)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
