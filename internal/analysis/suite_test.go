package analysis

import (
	"path/filepath"
	"testing"
)

func TestDeterminismFixture(t *testing.T) { RunFixture(t, Determinism, "determinism") }
func TestUnitsFixture(t *testing.T)       { RunFixture(t, Units, "units") }
func TestCloneSafetyFixture(t *testing.T) { RunFixture(t, CloneSafety, "clonesafety") }
func TestFloatCmpFixture(t *testing.T)    { RunFixture(t, FloatCmp, "floatcmp") }
func TestCtxHTTPFixture(t *testing.T)     { RunFixture(t, CtxHTTP, "ctxhttp") }
func TestLockAtomicFixture(t *testing.T)  { RunFixture(t, LockAtomic, "lockatomic") }
func TestErrContractFixture(t *testing.T) { RunFixture(t, ErrContract, "errcontract") }
func TestGoroLeakFixture(t *testing.T)    { RunFixture(t, GoroLeak, "goroleak") }
func TestSnapshotMutFixture(t *testing.T) { RunFixture(t, SnapshotMut, "snapshotmut") }

// TestSuiteNamesAreUnique guards the ignore-directive namespace: two
// analyzers sharing a name would make //coolopt:ignore ambiguous.
func TestSuiteNamesAreUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incompletely declared", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 9 {
		t.Fatalf("suite has %d analyzers, want 9 (clonesafety ctxhttp determinism errcontract floatcmp goroleak lockatomic snapshotmut units)", len(seen))
	}
}

func TestSelect(t *testing.T) {
	suite := Suite()

	sel, unknown := Select(suite, nil, nil)
	if len(sel) != len(suite) || len(unknown) != 0 {
		t.Fatalf("no filters: got %d analyzers, unknown %v", len(sel), unknown)
	}

	sel, unknown = Select(suite, []string{"goroleak", "errcontract"}, nil)
	if len(sel) != 2 || len(unknown) != 0 {
		t.Fatalf("-only: got %d analyzers, unknown %v", len(sel), unknown)
	}

	sel, unknown = Select(suite, nil, []string{"units"})
	if len(sel) != len(suite)-1 || len(unknown) != 0 {
		t.Fatalf("-skip: got %d analyzers, unknown %v", len(sel), unknown)
	}

	_, unknown = Select(suite, []string{"gorleak"}, []string{"untis"})
	if len(unknown) != 2 {
		t.Fatalf("typos should be reported, got unknown %v", unknown)
	}
}

// TestRepoIsLintClean runs the full nine-analyzer suite over every
// package in the module — the same invocation as `make lint` — and
// requires zero findings beyond the committed baseline, which must
// itself stay empty: new violations are fixed or carry a justified
// ignore directive, never parked in the baseline.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	program, err := fixtureProgram()
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := LoadBaseline(filepath.Join(root, "lint_baseline.json"))
	if err != nil {
		t.Fatalf("loading committed baseline: %v", err)
	}
	if n := len(baseline.Findings); n != 0 {
		t.Errorf("committed lint_baseline.json carries %d findings; burn them down to zero", n)
	}
	findings, err := Run(Suite(), program.Packages)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range baseline.Filter(findings, root) {
		t.Errorf("%s", f)
	}
}
