package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrContract enforces the typed error contract the serving layer's HTTP
// mapping depends on (DESIGN.md §8). The engine returns wrapped typed
// sentinels — fmt.Errorf("...: %w", ErrOverloaded) — and roomapi picks
// the status code with errors.Is; both halves of that bargain are easy
// to break silently:
//
//   - comparing a sentinel with == / != (everywhere): a wrapped
//     ErrOverloaded never compares equal to the sentinel, so the 503
//     mapping quietly degrades to a 422. errors.Is is mandatory.
//
//   - in packages marked //coolopt:errcontract (engine, roomapi,
//     roomclient — the error-contract surface):
//     fmt.Errorf with an error argument but no %w verb severs the chain
//     that errors.Is walks, and a call statement that drops an error
//     result swallows a failure the caller was owed. Deliberate
//     discards stay visible as `_ = f()`.
var ErrContract = &Analyzer{
	Name: "errcontract",
	Doc: "compare sentinel errors with errors.Is, wrap causes with %w, " +
		"and never silently drop error returns in //coolopt:errcontract packages",
	Run: runErrContract,
}

func runErrContract(pass *Pass) error {
	strict := pass.HasMarker("errcontract")
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			case *ast.CallExpr:
				if strict {
					checkErrorfWrap(pass, n)
				}
			case *ast.ExprStmt:
				if strict {
					checkDiscardedError(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkSentinelCompare flags ==/!= where an operand is a package-level
// error variable (a sentinel): ErrOverloaded, io.EOF, context.Canceled.
// Identity comparison sees only the outermost error; one fmt.Errorf
// wrap on the producer side and the comparison goes permanently false.
func checkSentinelCompare(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	for _, operand := range []ast.Expr{bin.X, bin.Y} {
		name, ok := sentinelErrorVar(pass, operand)
		if !ok {
			continue
		}
		pass.Reportf(bin.Pos(), "sentinel error %s compared with %s; a wrapped error never matches — use errors.Is", name, bin.Op)
		return
	}
}

// sentinelErrorVar reports whether expr resolves to a package-level
// variable whose type implements error.
func sentinelErrorVar(pass *Pass, expr ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return "", false
	}
	if v.Parent() != v.Pkg().Scope() {
		return "", false // local variable, not a sentinel
	}
	if !implementsError(v.Type()) {
		return "", false
	}
	return v.Name(), true
}

func implementsError(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	iface, ok := errType.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface) || types.Identical(t, errType)
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error argument
// without a %w verb in the (constant) format string: the resulting error
// formats fine but unwraps to nothing, so the HTTP mapping and the
// breaker's errors.Is checks stop seeing the cause.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format: cannot decide statically
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.Info.Types[arg].Type
		if t == nil || !implementsError(t) {
			continue
		}
		pass.Reportf(call.Pos(), "fmt.Errorf formats an error cause without %%w; the wrap chain breaks and errors.Is stops matching downstream")
		return
	}
}

// checkDiscardedError flags a bare call statement whose result set
// includes an error. `defer f()` and `go f()` are different statements
// and stay legal; an explicit `_ = f()` stays legal because the discard
// is visible in review. fmt.Fprint* into a strings.Builder or
// bytes.Buffer is exempt: their Write methods are documented to never
// return an error, so the discard is the idiom, not a swallowed failure.
func checkDiscardedError(pass *Pass, stmt *ast.ExprStmt) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	if isInfallibleFprint(pass, call) {
		return
	}
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if implementsError(t.At(i).Type()) {
				pass.Reportf(stmt.Pos(), "call discards an error result; handle it or discard explicitly with _ =")
				return
			}
		}
	default:
		if implementsError(t) {
			pass.Reportf(stmt.Pos(), "call discards an error result; handle it or discard explicitly with _ =")
		}
	}
}

// isInfallibleFprint reports whether call is fmt.Fprint/Fprintf/Fprintln
// writing to a *strings.Builder or *bytes.Buffer, whose Write never
// returns a non-nil error.
func isInfallibleFprint(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Fprint", "Fprintf", "Fprintln":
	default:
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "fmt" || len(call.Args) == 0 {
		return false
	}
	t := pass.Info.Types[call.Args[0]].Type
	if t == nil {
		return false
	}
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
