package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program holds the loaded target packages plus the export data of every
// dependency, so further code (fixtures) can be type-checked against it.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	exports  map[string]string // import path → gc export file
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Load runs `go list -deps -export` in dir for the given patterns, parses
// the matched (non-dependency) packages with comments, and type-checks
// them against the gc export data of their dependencies. It needs no
// network and no installed tools beyond the go toolchain itself.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	prog := &Program{Fset: token.NewFileSet(), exports: make(map[string]string)}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Export != "" {
			prog.exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	// Every target type-checks against gc export data alone (never
	// against another target's checked form), so targets are independent
	// and parse+check runs in parallel. The shared FileSet synchronizes
	// internally; each check builds its own importer. Results keep the
	// sorted target order, so output stays deterministic.
	pkgs := make([]*Package, len(targets))
	errs := make([]error, len(targets))
	var (
		wg   sync.WaitGroup
		jobs = make(chan int)
	)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				t := targets[i]
				if len(t.GoFiles) == 0 {
					continue
				}
				var files []string
				for _, f := range t.GoFiles {
					files = append(files, filepath.Join(t.Dir, f))
				}
				pkgs[i], errs[i] = prog.check(t.ImportPath, t.Dir, files)
			}
		}()
	}
	for i := range targets {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i := range targets {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if pkgs[i] != nil {
			prog.Packages = append(prog.Packages, pkgs[i])
		}
	}
	return prog, nil
}

// CheckDir parses and type-checks every .go file in dir as one standalone
// package against the program's export data. It is how fixture packages
// under testdata (invisible to `go list ./...`) are brought under the same
// analyzers as real code.
func (prog *Program) CheckDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	return prog.check("fixture/"+filepath.Base(dir), dir, files)
}

func (prog *Program) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(prog.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	lookup := func(importPath string) (io.ReadCloser, error) {
		exportFile, ok := prog.exports[importPath]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", importPath)
		}
		return os.Open(exportFile)
	}
	conf := types.Config{Importer: importer.ForCompiler(prog.Fset, "gc", lookup)}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(path, prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: prog.Fset, Files: files, Types: tpkg, Info: info}, nil
}
