package analysis

import (
	"go/ast"
	"go/types"
)

// SnapshotMut is the static complement of the deep-freeze contract:
// core.Snapshot, core.PodSnapshot, and the recursive planner tree they
// expose through Root() (core.Unit) are immutable after construction —
// that is the entire safety argument for sharing them lock-free across
// the RCU engine's readers (DESIGN.md §6). The compiler cannot enforce
// it because the frozen model hands out interior pointers on purpose:
// Snapshot.Profile() returns the *Profile the tables were built from,
// Root() the planner tree the queries walk, and a write through either
// corrupts tables that no longer match.
//
// The analyzer flags any assignment, increment, or copy() whose
// destination is reached through an expression of type core.Snapshot or
// core.PodSnapshot — snap.Profile().Machines[i].Alpha = x,
// pods.Profile().W1 += y, copy(snap.Profile().Machines, src), or
// *snapPtr = other. Rebinding a snapshot variable (snap = newSnap) is
// fine: that is how RCU publishes. The core package itself is exempt —
// the constructors and the kinetic builders must write the state they
// are freezing.
//
// Known limitation: the check is syntactic per-expression — aliasing the
// profile first (p := snap.Profile(); p.W1 = 0) escapes it. The -race
// hammer tests and the frozen crosscheck property tests stay the
// backstop for that.
var SnapshotMut = &Analyzer{
	Name: "snapshotmut",
	Doc: "forbid writes to state reachable from core.Snapshot/PodSnapshot/Unit " +
		"outside their constructor package",
	Run: runSnapshotMut,
}

func runSnapshotMut(pass *Pass) error {
	if pass.PkgPath == "coolopt/internal/core" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkWriteDest(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkWriteDest(pass, n.X)
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
					if _, builtin := pass.Info.Uses[id].(*types.Builtin); builtin { // not shadowed
						checkCopyDest(pass, n.Args[0])
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkWriteDest flags a write destination whose access path passes
// through a snapshot. The destination itself being snapshot-typed is not
// enough — `snap = other` rebins a variable — so only the base chain
// below a selector, index, or dereference counts.
func checkWriteDest(pass *Pass, lhs ast.Expr) {
	var base ast.Expr
	switch e := lhs.(type) {
	case *ast.SelectorExpr:
		base = e.X
	case *ast.IndexExpr:
		base = e.X
	case *ast.StarExpr:
		base = e.X
	case *ast.ParenExpr:
		checkWriteDest(pass, e.X)
		return
	default:
		return
	}
	// reachesSnapshot walks the whole base subtree, so a snapshot
	// anywhere along a compound path (snap.Profile().Machines[i].Alpha)
	// is found from the outermost destination alone.
	if name, ok := reachesSnapshot(pass, base); ok {
		pass.Reportf(lhs.Pos(), "write to state reachable from core.%s; snapshots are frozen at construction and shared lock-free — build a new snapshot and Install it instead", name)
	}
}

// checkCopyDest flags copy() into memory reached through a snapshot.
func checkCopyDest(pass *Pass, dst ast.Expr) {
	if name, ok := reachesSnapshot(pass, dst); ok {
		pass.Reportf(dst.Pos(), "copy into memory reachable from core.%s; snapshots are frozen at construction — build a new snapshot and Install it instead", name)
	}
}

// reachesSnapshot reports whether any subexpression of expr has type
// (pointer to) core.Snapshot or core.PodSnapshot, returning the type
// name found.
func reachesSnapshot(pass *Pass, expr ast.Expr) (string, bool) {
	found := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return true
		}
		if name, ok := snapshotTypeName(tv.Type); ok {
			found = name
			return false
		}
		return true
	})
	return found, found != ""
}

// snapshotTypeName matches (pointers to) the frozen model types.
func snapshotTypeName(t types.Type) (string, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "coolopt/internal/core" {
		return "", false
	}
	switch obj.Name() {
	case "Snapshot", "PodSnapshot", "Unit":
		return obj.Name(), true
	}
	return "", false
}
