package analysis

import (
	"go/ast"
	"go/types"
)

// LockAtomic enforces a single synchronization discipline per field, the
// static half of what `go test -race` checks dynamically. The engine's
// RCU design (DESIGN.md §6) leans on two conventions this analyzer pins
// down:
//
//  1. A variable or struct field accessed through the sync/atomic
//     free functions (atomic.LoadUint64(&x.f), atomic.AddInt64(&x.f, 1),
//     ...) anywhere in a package must be accessed atomically everywhere
//     in that package. A plain read races every atomic write, and a
//     plain write under a mutex is still a race against lock-free atomic
//     readers — mixing mutex and atomic discipline on one field is the
//     classic reviewer-only bug this makes mechanical.
//
//  2. atomic.Pointer / atomic.Value struct fields are publication
//     points: in this repo they hold the engine's RCU snapshot state and
//     the serving layer's read views. Store/Swap on such a field is only
//     legal in the file that declares the owning struct — the blessed
//     install paths (Engine.Install/InstallHierarchical, the Server view
//     rebuild) live next to the type they publish for. A swap from
//     anywhere else bypasses the install gate, the epoch stamping, and
//     the cache drop that make the swap safe.
//
// Load/CompareAndSwap on atomic.Pointer fields are unrestricted: reading
// the current generation from anywhere is the whole point of RCU.
var LockAtomic = &Analyzer{
	Name: "lockatomic",
	Doc: "a field accessed via sync/atomic must be accessed atomically " +
		"everywhere; atomic.Pointer/Value snapshot fields may be " +
		"stored/swapped only from the file declaring their struct",
	Run: runLockAtomic,
}

// atomicAccessFuncs is the sync/atomic free-function surface taking
// &addr as the first argument.
var atomicAccessFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runLockAtomic(pass *Pass) error {
	atomicObjs := make(map[types.Object]bool) // objects accessed via atomic free functions
	sanctioned := make(map[*ast.Ident]bool)   // idents inside an atomic call's &addr argument

	// Pass 1: record every object whose address feeds a sync/atomic free
	// function, and remember the idents inside those arguments so pass 2
	// does not flag the sanctioned accesses themselves.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isAtomicFreeFunc(pass, call) {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok {
				return true
			}
			if obj := addressedObject(pass, addr.X); obj != nil {
				atomicObjs[obj] = true
			}
			ast.Inspect(call.Args[0], func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					sanctioned[id] = true
				}
				return true
			})
			return true
		})
	}

	// Pass 2: every other access to an atomically-managed object is a
	// mixed-discipline race — a plain read, a plain write, or a
	// mutex-guarded access that atomic readers do not see.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || !atomicObjs[obj] {
				return true
			}
			pass.Reportf(id.Pos(), "%s is accessed with sync/atomic elsewhere in this package; this plain access races the atomic ones — use the atomic functions everywhere (a mutex does not help: atomic readers do not take it)", id.Name)
			return true
		})
	}

	// Publication discipline: Store/Swap on atomic.Pointer / atomic.Value
	// struct fields only from the file declaring the owning struct.
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Store" && sel.Sel.Name != "Swap") {
				return true
			}
			field := fieldSelection(pass, sel.X)
			if field == nil || !isAtomicPublication(field.Type()) {
				return true
			}
			declFile := pass.Fset.Position(field.Pos()).Filename
			if declFile == filename {
				return true
			}
			pass.Reportf(sel.Pos(), "%s on atomic snapshot field %s outside %s, the file that declares it; publish through the owner's install methods so epoch stamping and cache invalidation stay with the swap", sel.Sel.Name, field.Name(), shortFile(declFile))
			return true
		})
	}
	return nil
}

// isAtomicFreeFunc reports whether call is sync/atomic.<Load|Store|...>.
func isAtomicFreeFunc(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !atomicAccessFuncs[sel.Sel.Name] {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "sync/atomic"
}

// addressedObject resolves &expr's operand to the variable or field
// object being accessed atomically: a plain identifier or the terminal
// field of a selector chain.
func addressedObject(pass *Pass, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		if v, ok := pass.Info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := pass.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// fieldSelection resolves expr to a struct-field object when expr is a
// selector chain ending in a field (x.f, x.y.f); nil otherwise.
func fieldSelection(pass *Pass, expr ast.Expr) *types.Var {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// isAtomicPublication reports whether t is sync/atomic.Pointer[T] or
// sync/atomic.Value — the types that publish snapshot state. The scalar
// atomics (Int32, Uint64, Bool, ...) are counters and gates, freely
// stored from anywhere.
func isAtomicPublication(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	return obj.Name() == "Pointer" || obj.Name() == "Value"
}

// shortFile trims a path to its final element for readable diagnostics.
func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
