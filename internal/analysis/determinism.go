package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism flags nondeterminism in packages marked
// //coolopt:deterministic: wall-clock reads (time.Now, time.Since), the
// global math/rand generator, and map iteration whose order leaks into
// appends or formatted output. The repo's experiments must replay
// bit-identically from a seed — the paper's eight-scenario comparison is
// only meaningful if reruns produce the same plans — so randomness must
// flow through mathx.Rand and time through an injected clock.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand, and order-dependent " +
		"map iteration in //coolopt:deterministic packages",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !pass.HasMarker("deterministic") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkDeterministicSelector(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, file)
			}
			return true
		})
	}
	return nil
}

// checkDeterministicSelector flags pkg.Func selections on time and
// math/rand. Only package-level function references count: methods on an
// explicit *rand.Rand (the mathx.NewRand path) and type names are fine.
func checkDeterministicSelector(pass *Pass, sel *ast.SelectorExpr) {
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
	if !ok {
		return
	}
	if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		switch sel.Sel.Name {
		case "Now", "Since", "Until":
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a deterministic package; inject a clock instead", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		switch sel.Sel.Name {
		case "New", "NewSource", "NewPCG", "NewChaCha8":
			// Constructing an explicitly-seeded generator is the sanctioned path.
		default:
			pass.Reportf(sel.Pos(), "rand.%s uses the global generator in a deterministic package; use mathx.Rand (seeded) instead", sel.Sel.Name)
		}
	}
}

// checkMapRange flags `for k := range m` loops whose body appends to a
// slice or emits formatted output: both observe Go's randomized map order.
// The common collect-then-sort idiom is exempt — if every slice appended
// to inside the loop is passed to a sort function later in the enclosing
// block, iteration order no longer matters.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, file *ast.File) {
	t := pass.Info.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}

	var appendTargets []types.Object
	var orderSinks []ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
			if obj := appendTarget(pass, call); obj != nil {
				appendTargets = append(appendTargets, obj)
			}
			return true
		}
		if isOutputCall(pass, call) {
			orderSinks = append(orderSinks, call)
		}
		return true
	})

	for _, obj := range appendTargets {
		if !sortedAfter(pass, file, rng, obj) {
			pass.Reportf(rng.Pos(), "map iteration order leaks into %s; sort after collecting or iterate sorted keys", obj.Name())
			break
		}
	}
	if len(orderSinks) > 0 {
		pass.Reportf(rng.Pos(), "map iteration order leaks into output; iterate sorted keys instead")
	}
}

// appendTarget returns the variable receiving `x = append(x, ...)`, if the
// append's first argument is a plain identifier.
func appendTarget(pass *Pass, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	ident, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info.Uses[ident]
}

// isOutputCall reports whether the call formats or encodes data (fmt
// printing, or an Encode/Write/Fprint-style method).
func isOutputCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if ident, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := pass.Info.Uses[ident].(*types.PkgName); ok {
			if pkgName.Imported().Path() == "fmt" {
				switch sel.Sel.Name {
				case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
					return true
				}
			}
			return false
		}
	}
	// Method sinks: encoder.Encode(v), w.Write(b), buf.WriteString(s).
	switch sel.Sel.Name {
	case "Encode", "Write", "WriteString":
		return pass.Info.Selections[sel] != nil
	}
	return false
}

// sortedAfter reports whether obj appears as an argument to a sort call
// (sort.* or slices.Sort*) in a statement after the range loop inside the
// same enclosing block.
func sortedAfter(pass *Pass, file *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(file, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if usesObject(pass, arg, obj) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func usesObject(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && pass.Info.Uses[ident] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
