// Package unitsfix exercises the units analyzer.
package unitsfix

import "coolopt/internal/units"

func consume(t units.Celsius) units.Celsius { return t }

func consumeWatts(w units.Watts) units.Watts { return w }

func conversions(c units.Celsius, q units.JoulesPerSec) {
	_ = units.Watts(c)          // want `direct conversion from units.Celsius to units.Watts`
	_ = units.Watts(float64(c)) // explicit float64 escape hatch: allowed
	_ = q.Watts()               // named bridge method: allowed
	_ = units.Celsius(22)       // conversion from an untyped constant: allowed
}

func literals() {
	_ = consume(21.5) // want `raw literal passed as units.Celsius`
	_ = consume(units.Celsius(21.5))
	const ambient = 22.0
	_ = consume(ambient) // named constant: allowed
	_ = consumeWatts(-5) // want `raw literal passed as units.Watts`
}

func suppressedConversion(c units.Celsius) units.Watts {
	return units.Watts(c) //coolopt:ignore units calibration table treats the column as dimensionless
}
