// Package snapshotmutfix exercises the snapshotmut analyzer.
package snapshotmutfix

import "coolopt/internal/core"

func mutateMachine(s *core.Snapshot) {
	s.Profile().Machines[0].Alpha = 1 // want `write to state reachable from core.Snapshot`
}

func bumpWeight(s *core.Snapshot) {
	s.Profile().W1++ // want `write to state reachable from core.Snapshot`
}

func compoundAssign(s *core.Snapshot) {
	s.Profile().W2 += 0.5 // want `write to state reachable from core.Snapshot`
}

func podWrite(ps *core.PodSnapshot) {
	ps.Profile().CoolFactor = 0 // want `write to state reachable from core.PodSnapshot`
}

func clobberThroughPointer(s *core.Snapshot) {
	*s = core.Snapshot{} // want `write to state reachable from core.Snapshot`
}

func pruneTree(u *core.Unit) {
	u.Children()[0] = nil // want `write to state reachable from core.Unit`
}

func clobberUnit(ps *core.PodSnapshot) {
	*ps.Root() = core.Unit{} // want `write to state reachable from core.Unit`
}

func walkTree(u *core.Unit) int {
	total := 0
	for _, c := range u.Children() { // traversal is read-only: allowed
		total += c.Machines()
	}
	return total
}

func overwriteMachines(s *core.Snapshot, src []core.MachineProfile) {
	copy(s.Profile().Machines, src) // want `copy into memory reachable from core.Snapshot`
}

func rebind(s *core.Snapshot, fresh *core.Snapshot) *core.Snapshot {
	s = fresh // rebinding is how RCU publishes: allowed
	return s
}

func readOnly(s *core.Snapshot) float64 {
	return s.Profile().W1 + s.Profile().W2 // reads are the whole point: allowed
}

func sanctionedCopy(s *core.Snapshot) core.Profile {
	p := *s.Profile() // copy the value out first ...
	p.W1 = 0          // ... then mutate the private copy: allowed
	return p
}

func suppressed(s *core.Snapshot) {
	s.Profile().SetPointC = 20 //coolopt:ignore snapshotmut test fixture rewrites a throwaway snapshot
}
