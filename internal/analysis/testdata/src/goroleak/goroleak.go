// Package goroleakfix exercises the goroleak analyzer.
package goroleakfix

import (
	"context"
	"time"
)

func unstoppable(work func()) {
	go func() {
		for { // want `goroutine loops forever with no exit signal`
			work()
		}
	}()
}

func stopChannel(work func(), stop chan struct{}) {
	go func() {
		for { // select on the stop channel: allowed
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

func workerPool(jobs chan int, handle func(int)) {
	go func() {
		for j := range jobs { // range over a closable channel: allowed
			handle(j)
		}
	}()
}

func ctxLoop(ctx context.Context, work func()) {
	go func() {
		for { // checks the context each lap: allowed
			if ctx.Err() != nil {
				return
			}
			work()
		}
	}()
}

func boundedLoop(work func()) {
	go func() {
		for i := 0; i < 10; i++ { // conditional loop: allowed
			work()
		}
	}()
}

func suppressedLoop(work func()) {
	go func() {
		//coolopt:ignore goroleak process-lifetime pump, killed with the process
		for {
			work()
		}
	}()
}

func afterInLoop(pings chan int) {
	for range pings {
		select {
		case <-time.After(time.Second): // want `time.After in a loop leaks one timer per iteration`
		case p := <-pings:
			_ = p
		}
	}
}

func afterOutsideLoop(pings chan int) {
	select {
	case <-time.After(time.Second): // not in a loop: allowed
	case p := <-pings:
		_ = p
	}
}

func suppressedAfter(pings chan int) {
	for range pings {
		select {
		//coolopt:ignore goroleak 50ms poll timer, fires before the next lap
		case <-time.After(50 * time.Millisecond):
		case p := <-pings:
			_ = p
		}
	}
}

func tickerNoStop(work func()) {
	t := time.NewTicker(time.Second) // want `time.NewTicker without a matching t.Stop`
	for range t.C {
		work()
	}
}

func tickerStopped(work func(), done chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			work()
		case <-done:
			return
		}
	}
}

func timerNoStop(fire func()) {
	tm := time.NewTimer(time.Minute) // want `time.NewTimer without a matching tm.Stop`
	<-tm.C
	fire()
}

func suppressedTicker(work func()) {
	//coolopt:ignore goroleak ticker lives exactly as long as the process
	t := time.NewTicker(time.Second)
	for range t.C {
		work()
	}
}
