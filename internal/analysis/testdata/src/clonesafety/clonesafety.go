// Package clonefix exercises the clonesafety analyzer.
package clonefix

import (
	"coolopt"
	"coolopt/internal/sim"
)

func shared(sys *coolopt.System) {
	go func() {
		_ = sys // want `goroutine captures sys`
	}()
}

func sharedAsArg(s *sim.Simulator) {
	go stepLoop(s) // want `goroutine captures s`
}

func stepLoop(s *sim.Simulator) { _ = s }

func clonedBeforeLaunch(sys *coolopt.System) {
	dup := sys.Clone(42)
	go func() {
		_ = dup // cloned before launch: allowed
	}()
}

func clonesFirstThing(sys *coolopt.System) {
	go func() {
		own := sys.Clone(7) // a goroutine taking its own copy: allowed
		_ = own
	}()
}

func snapshotOnly(sys *coolopt.System) {
	go func() {
		snap := sys.Snapshot() // immutable snapshot: allowed
		_ = snap
	}()
}

func engineOnly(sys *coolopt.System) {
	go func() {
		_ = sys.Engine() // concurrent plan engine: allowed
	}()
}

func podsOnly(sys *coolopt.System) {
	go func() {
		_ = sys.Pods() // immutable pod tables: allowed
	}()
}

func rootOnly(sys *coolopt.System) {
	go func() {
		_ = sys.Snapshot().Root() // immutable planner tree: allowed
	}()
}

func snapshotThenRawUse(sys *coolopt.System) {
	go func() {
		_ = sys.Snapshot() // want `goroutine captures sys`
		_ = sys            // ...because this raw use races the control loop
	}()
}

func suppressed(sys *coolopt.System) {
	go func() {
		//coolopt:ignore clonesafety read-only telemetry snapshot
		_ = sys
	}()
}
