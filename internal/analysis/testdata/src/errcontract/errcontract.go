// Package errcontractfix exercises the errcontract analyzer. The
// package is marked, so the strict wrap/discard checks apply exactly as
// they do to engine, roomapi, and roomclient.
//
//coolopt:errcontract
package errcontractfix

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrOverflow is a typed sentinel like the engine's ErrOverloaded.
var ErrOverflow = errors.New("errcontractfix: overflow")

func identityCompare(err error) bool {
	if err == ErrOverflow { // want `sentinel error ErrOverflow compared with ==`
		return true
	}
	return err != io.EOF // want `sentinel error EOF compared with !=`
}

func wrappedCompare(err error) bool {
	return errors.Is(err, ErrOverflow) // the sanctioned form: allowed
}

func nilChecks(err error) bool {
	return err == nil || err != nil // nil tests are not sentinel compares: allowed
}

func localCompare() bool {
	myErr := errors.New("local")
	other := error(nil)
	return other == myErr // local variables, not sentinels: allowed
}

func suppressedCompare(err error) bool {
	return err == io.EOF //coolopt:ignore errcontract bufio guarantees an unwrapped EOF here
}

func badWrap(err error) error {
	return fmt.Errorf("solve failed: %v", err) // want `fmt.Errorf formats an error cause without %w`
}

func goodWrap(err error) error {
	return fmt.Errorf("solve failed: %w", err) // allowed
}

func noErrorArgs(n int) error {
	return fmt.Errorf("bad load %d", n) // no error argument: allowed
}

func suppressedWrap(err error) error {
	//coolopt:ignore errcontract boundary error is terminal, chain ends here on purpose
	return fmt.Errorf("giving up: %v", err)
}

func mayFail() error { return nil }

func twoResults() (int, error) { return 0, nil }

func discards() {
	mayFail()     // want `call discards an error result`
	twoResults()  // want `call discards an error result`
	_ = mayFail() // explicit discard stays visible: allowed
	_, _ = twoResults()
	defer mayFail() // defer is a different statement: allowed
}

func suppressedDiscard() {
	mayFail() //coolopt:ignore errcontract best-effort cache warm, failure is benign
}

func builderWrite(n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "load %d", n) // strings.Builder never errors: allowed
	return sb.String()
}
