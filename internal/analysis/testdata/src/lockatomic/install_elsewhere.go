package lockatomicfix

// A swap from outside the declaring file bypasses the blessed install
// path (epoch stamping, cache invalidation live next to the type).
func rogueInstall(h *holder, v *int) {
	h.state.Store(v) // want `Store on atomic snapshot field state outside lockatomic.go`
}

func rogueSwap(h *holder, v *int) {
	old := h.state.Swap(v) // want `Swap on atomic snapshot field state outside lockatomic.go`
	_ = old
}

func sanctionedRead(h *holder) *int {
	return h.state.Load() // reading the current generation from anywhere is fine
}

func suppressedInstall(h *holder, v *int) {
	//coolopt:ignore lockatomic test harness resets the holder between cases
	h.state.Store(v)
}
