// Package lockatomicfix exercises the lockatomic analyzer.
package lockatomicfix

import (
	"sync"
	"sync/atomic"
)

// counters mixes disciplines on purpose: hits is managed atomically,
// misses through the mutex.
type counters struct {
	mu     sync.Mutex
	hits   uint64
	misses uint64
}

func (c *counters) recordHit() {
	atomic.AddUint64(&c.hits, 1) // blesses hits as an atomic field
}

func (c *counters) mixedRead() uint64 {
	return c.hits // want `hits is accessed with sync/atomic elsewhere`
}

func (c *counters) mixedWriteUnderMutex() {
	c.mu.Lock()
	c.hits++ // want `hits is accessed with sync/atomic elsewhere`
	c.mu.Unlock()
}

func (c *counters) consistentAtomic() uint64 {
	return atomic.LoadUint64(&c.hits) // atomic everywhere: allowed
}

func (c *counters) mutexOnly() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.misses++ // misses never touches sync/atomic: allowed
	return c.misses
}

func (c *counters) suppressed() uint64 {
	return c.hits //coolopt:ignore lockatomic torn read tolerated in the stats dump
}

// holder publishes a snapshot through an atomic pointer; installs must
// stay in this file (where holder is declared).
type holder struct {
	state atomic.Pointer[int]
	gauge atomic.Int64
}

func (h *holder) install(v *int) {
	h.state.Store(v) // same file as the holder declaration: allowed
}

func (h *holder) read() *int {
	return h.state.Load() // Load is unrestricted: allowed
}

func (h *holder) count() {
	h.gauge.Store(3) // scalar atomics are not publication points: allowed
}
