// Package determfix exercises the determinism analyzer.
//
//coolopt:deterministic
package determfix

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func clocks() {
	t0 := time.Now()    // want `time.Now reads the wall clock`
	_ = time.Since(t0)  // want `time.Since reads the wall clock`
	_ = time.Unix(0, 0) // constructing times from data is fine
}

func globalRand() float64 {
	rng := rand.New(rand.NewSource(7)) // explicitly seeded generator: allowed
	_ = rng.Float64()
	return rand.Float64() // want `rand.Float64 uses the global generator`
}

func mapCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // collect-then-sort: allowed
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var vals []int
	for _, v := range m { // want `map iteration order leaks into vals`
		vals = append(vals, v)
	}
	_ = vals
	return keys
}

func mapPrint(m map[string]int) {
	for k, v := range m { // want `map iteration order leaks into output`
		fmt.Println(k, v)
	}
}

func suppressed() {
	//coolopt:ignore determinism startup banner timestamp is display-only
	_ = time.Now()
}
