// Package httpfix exercises the ctxhttp analyzer.
package httpfix

import (
	"context"
	"net/http"
	"time"
)

func convenience() {
	_, _ = http.Get("http://room.local/state")  // want `http.Get ignores context`
	_, _ = http.Head("http://room.local/state") // want `http.Head ignores context`
}

func requests(ctx context.Context) {
	_, _ = http.NewRequest("GET", "http://room.local", nil) // want `http.NewRequest drops the caller's context`
	_, _ = http.NewRequestWithContext(ctx, "GET", "http://room.local", nil)
}

func clients() {
	_ = http.DefaultClient // want `http.DefaultClient has no timeout`
	_ = &http.Client{}     // want `http.Client literal without Timeout`
	_ = &http.Client{Timeout: 5 * time.Second}
}

func suppressed() *http.Client {
	return &http.Client{} //coolopt:ignore ctxhttp timeout injected by the caller
}
