// Package floatfix exercises the floatcmp analyzer.
package floatfix

import "coolopt/internal/mathx"

func computed(a, b float64) bool {
	if a/2 == b/2 { // want `exact == between computed floats`
		return true
	}
	return a != b // want `exact != between computed floats`
}

func sentinels(dt float64) bool {
	if dt == 0 { // comparison against a constant: allowed
		return true
	}
	const eps = 1e-9
	return dt != eps // named constant: allowed
}

func integers(i, j int) bool {
	return i == j // integer comparison: allowed
}

func sanctioned(a, b float64) bool {
	return mathx.ApproxEqual(a, b, 1e-9) || mathx.Same(a, b)
}

func suppressed(a, b float64) bool {
	return a == b //coolopt:ignore floatcmp exact repeat detection
}
