package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The fixture runner mirrors x/tools' analysistest: fixture packages live
// under testdata/src/<name>, and every line expected to be flagged carries
// a trailing `// want "regex"` comment. Fixtures are real, compiling Go —
// they are type-checked against the module's own export data, so they may
// import coolopt packages as well as the standard library.

var (
	progOnce sync.Once
	prog     *Program
	progErr  error
)

// fixtureProgram loads the module's packages once per test binary so every
// fixture shares the export data (go list is the slow part).
func fixtureProgram() (*Program, error) {
	progOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			progErr = err
			return
		}
		prog, progErr = Load(root, "./...")
	})
	return prog, progErr
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// RunFixture checks analyzer a against testdata/src/<name> (relative to the
// calling test's directory) and fails t on any mismatch between produced
// diagnostics and `// want` expectations.
func RunFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	program, err := fixtureProgram()
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	dir := filepath.Join("testdata", "src", name)
	pkg, err := program.CheckDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	findings, err := Run([]*Analyzer{a}, []*Package{pkg})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, name, err)
	}

	wants := collectWants(t, pkg)
	for _, f := range findings {
		key := posKey{file: f.Position.Filename, line: f.Position.Line}
		matched := false
		for i, w := range wants[key] {
			if !w.used && w.re.MatchString(f.Message) {
				wants[key][i].used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", f.Position, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile("// want (\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

func collectWants(t *testing.T, pkg *Package) map[posKey][]want {
	t.Helper()
	wants := make(map[posKey][]want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pattern := m[1]
					if strings.HasPrefix(pattern, "`") {
						pattern = strings.Trim(pattern, "`")
					} else {
						unquoted, err := strconv.Unquote(pattern)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pkg.Fset.Position(c.Pos()), pattern, err)
						}
						pattern = unquoted
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), pattern, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					key := posKey{file: pos.Filename, line: pos.Line}
					wants[key] = append(wants[key], want{re: re})
				}
			}
		}
	}
	return wants
}
