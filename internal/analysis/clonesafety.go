package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// cloneGuarded lists the types whose instances must not be shared with a
// goroutine directly: their methods mutate internal state that is not
// synchronized for concurrent writers. Each of them exposes Clone()
// precisely so call sites can hand a private copy to the goroutine.
var cloneGuarded = map[string]bool{
	"coolopt.System":                    true,
	"coolopt/internal/sim.Simulator":    true,
	"coolopt/internal/machineroom.Room": true,
}

// sanctionedCalls lists the guarded-type methods a goroutine may call on
// a captured value without cloning first: each hands back a value that is
// safe to share. Clone returns a private copy; Snapshot returns the
// immutable frozen model (internal/core.Snapshot), Pods the immutable
// pod-sharded tables (internal/core.PodSnapshot), Root the immutable
// recursive planner tree (internal/core.Unit), and Engine the RCU-style
// plan server (internal/engine.Engine), all of which are goroutine-safe
// by construction and exist precisely so concurrent readers never need a
// clone.
var sanctionedCalls = map[string]bool{
	"Clone":    true,
	"Snapshot": true,
	"Pods":     true,
	"Root":     true,
	"Engine":   true,
}

// CloneSafety flags goroutines that capture a *coolopt.System,
// *sim.Simulator, or machineroom.Room from the enclosing scope without the
// variable having come from a Clone() call. Sharing a live system with a
// goroutine races the control loop's Step/Apply cycle; the soak and chaos
// drivers clone before fanning out and everything else should too.
// Goroutines whose only uses of the captured value are Clone, Snapshot,
// or Engine calls are allowed: those methods return values that are safe
// to share (a private copy, the immutable model snapshot, the concurrent
// plan engine).
var CloneSafety = &Analyzer{
	Name: "clonesafety",
	Doc: "forbid goroutines capturing shared System/Simulator/Room values " +
		"unless the value was cloned first or only its immutable " +
		"snapshot/engine is used",
	Run: runCloneSafety,
}

func runCloneSafety(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			goStmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, file, goStmt)
			return true
		})
	}
	return nil
}

func checkGoStmt(pass *Pass, file *ast.File, goStmt *ast.GoStmt) {
	// The goroutine's code: a func literal launched directly, func
	// literals passed as arguments, or — for `go f(x)` — the argument
	// expressions themselves, which are evaluated per call but hand the
	// pointed-to value across the goroutine boundary.
	var bodies []ast.Node
	call := goStmt.Call
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		bodies = append(bodies, lit)
	}
	for _, arg := range call.Args {
		bodies = append(bodies, arg)
	}

	reported := map[types.Object]bool{}
	for _, body := range bodies {
		lo, hi := body.Pos(), body.End()
		ast.Inspect(body, func(n ast.Node) bool {
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[ident].(*types.Var)
			if !ok || reported[obj] {
				return true
			}
			// Only free variables: declared outside the goroutine body.
			if obj.Pos() >= lo && obj.Pos() < hi {
				return true
			}
			if !guardedType(obj.Type()) {
				return true
			}
			if assignedFromClone(pass, file, obj, goStmt.Pos()) {
				return true
			}
			if onlySanctionedInside(pass, bodies, obj) {
				return true
			}
			reported[obj] = true
			pass.Reportf(ident.Pos(), "goroutine captures %s (%s) without cloning; call Clone() and hand the copy to the goroutine", obj.Name(), obj.Type())
			return true
		})
	}
}

// guardedType reports whether t (possibly behind a pointer) is one of the
// clone-guarded types.
func guardedType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return cloneGuarded[obj.Pkg().Path()+"."+obj.Name()]
}

// assignedFromClone reports whether obj was assigned from a .Clone(...)
// call somewhere before the goroutine launch.
func assignedFromClone(pass *Pass, file *ast.File, obj types.Object, before token.Pos) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Pos() >= before {
				return true
			}
			for i, lhs := range n.Lhs {
				ident, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				lhsObj := pass.Info.Defs[ident]
				if lhsObj == nil {
					lhsObj = pass.Info.Uses[ident]
				}
				if lhsObj == obj && isCloneCall(n.Rhs[i]) {
					found = true
					return false
				}
			}
		case *ast.ValueSpec:
			if n.Pos() >= before {
				return true
			}
			for i, name := range n.Names {
				if pass.Info.Defs[name] == obj && i < len(n.Values) && isCloneCall(n.Values[i]) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func isCloneCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Clone"
}

// isSanctionedCall reports whether expr is a method call whose result is
// safe to share with the goroutine: Clone (private copy), Snapshot
// (immutable model), or Engine (concurrent plan server).
func isSanctionedCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sanctionedCalls[sel.Sel.Name]
}

// onlySanctionedInside reports whether every use of obj within the
// goroutine is as the receiver of a sanctioned call — the goroutine takes
// its own copy (Clone) or reads only through the immutable snapshot or
// the concurrent engine, which is safe.
func onlySanctionedInside(pass *Pass, bodies []ast.Node, obj types.Object) bool {
	sawUse := false
	allSanctioned := true
	for _, body := range bodies {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok && isSanctionedCall(call) {
				if sel := call.Fun.(*ast.SelectorExpr); usesObject(pass, sel.X, obj) {
					sawUse = true
					return false // receiver use is sanctioned; skip subtree
				}
			}
			if ident, ok := n.(*ast.Ident); ok && pass.Info.Uses[ident] == obj {
				sawUse = true
				allSanctioned = false
			}
			return true
		})
	}
	return sawUse && allSanctioned
}
