package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak flags goroutine and timer patterns that leak under sustained
// serving load. The serving layer holds goroutines for the life of the
// process; the chaos hammer spawns thousands per scenario — a leak that
// is invisible in a unit test empties the heap in production.
//
// Three patterns are flagged:
//
//   - a goroutine launched as `go func(){ ... }()` whose body contains
//     an unconditional `for { ... }` with no way out: no channel
//     receive or select (a done/stop channel), no context use, no
//     break/return. Such a goroutine can never be stopped — every
//     worker loop in this repo selects on a stop channel or ranges
//     over a closable work channel.
//
//   - time.After inside a loop: each iteration allocates a timer that
//     stays live until it fires even after the select moves on. In a
//     poll loop this is one orphaned timer per tick; use a single
//     time.NewTimer/Ticker outside the loop.
//
//   - time.NewTicker / time.NewTimer assigned in a function that never
//     calls Stop on it: the runtime holds an active timer (and its
//     callback) until Stop. The idiomatic fix is `defer t.Stop()` on
//     the line after construction.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "forbid unstoppable goroutine loops, time.After in loops, and " +
		"tickers/timers without Stop",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineLoop(pass, lit)
				}
			case *ast.ForStmt:
				checkTimeAfterInLoop(pass, n.Body)
			case *ast.RangeStmt:
				checkTimeAfterInLoop(pass, n.Body)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkTimerStop(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// checkGoroutineLoop flags unconditional for-loops inside a goroutine
// literal that have no exit signal in their body.
func checkGoroutineLoop(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if loopHasExit(pass, loop.Body) {
			return true
		}
		pass.Reportf(loop.Pos(), "goroutine loops forever with no exit signal; select on a ctx.Done()/stop channel or range over a closable work channel")
		return true
	})
}

// loopHasExit reports whether the loop body contains anything that can
// end or pace the loop from outside: a select, a channel receive or
// range-over-channel, a context method call, a break, or a return.
func loopHasExit(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.Info.Types[n.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if t := pass.Info.Types[sel.X].Type; t != nil && isContextType(t) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkTimeAfterInLoop flags time.After calls anywhere in a loop body.
func checkTimeAfterInLoop(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isTimeFunc(pass, call, "After") {
			return true
		}
		pass.Reportf(call.Pos(), "time.After in a loop leaks one timer per iteration until it fires; hoist a time.NewTimer/NewTicker out of the loop")
		return true
	})
}

// checkTimerStop flags `t := time.NewTicker(...)` / NewTimer assignments
// with no t.Stop() anywhere in the same top-level function.
func checkTimerStop(pass *Pass, body *ast.BlockStmt) {
	stopped := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Stop" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				stopped[obj] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || i >= len(assign.Lhs) {
				continue
			}
			var which string
			switch {
			case isTimeFunc(pass, call, "NewTicker"):
				which = "NewTicker"
			case isTimeFunc(pass, call, "NewTimer"):
				which = "NewTimer"
			default:
				continue
			}
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil || stopped[obj] {
				continue
			}
			pass.Reportf(call.Pos(), "time.%s without a matching %s.Stop(); the runtime holds the timer until Stop — defer %s.Stop() after construction", which, id.Name, id.Name)
		}
		return true
	})
}

// isTimeFunc reports whether call is time.<name>(...).
func isTimeFunc(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "time"
}
