package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Baseline is the committed set of known findings a new analyzer is
// allowed to land with. Burning a baseline down incrementally beats the
// alternatives — blocking the analyzer until the repo is perfect, or
// spraying //coolopt:ignore over code that should eventually be fixed.
// Entries match on (analyzer, root-relative file, message), not line
// numbers, so unrelated edits to a file do not invalidate the baseline.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry identifies one tolerated finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	// File is the path relative to the module root (the lint run's -C
	// directory), so the baseline is stable across checkouts.
	File    string `json:"file"`
	Message string `json:"message"`
}

// LoadBaseline reads a baseline file. A missing file is not an error —
// it is the empty baseline, so `-baseline lint_baseline.json` works
// before the file first exists.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %w", path, err)
	}
	return &b, nil
}

// Filter returns the findings not covered by the baseline. Each baseline
// entry absorbs any number of matching findings (the same message can
// recur when a flagged pattern is copy-pasted); matching is exact on
// analyzer, root-relative file, and message.
func (b *Baseline) Filter(findings []Finding, root string) []Finding {
	if len(b.Findings) == 0 {
		return findings
	}
	allowed := make(map[BaselineEntry]bool, len(b.Findings))
	for _, e := range b.Findings {
		allowed[e] = true
	}
	var kept []Finding
	for _, f := range findings {
		key := BaselineEntry{
			Analyzer: f.Analyzer,
			File:     relPath(root, f.Position.Filename),
			Message:  f.Message,
		}
		if allowed[key] {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// WriteBaseline writes the findings as a fresh baseline, sorted and
// deduplicated, ready to commit.
func WriteBaseline(path, root string, findings []Finding) error {
	b := Baseline{Findings: []BaselineEntry{}}
	seen := make(map[BaselineEntry]bool)
	for _, f := range findings {
		e := BaselineEntry{
			Analyzer: f.Analyzer,
			File:     relPath(root, f.Position.Filename),
			Message:  f.Message,
		}
		if seen[e] {
			continue
		}
		seen[e] = true
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		x, y := b.Findings[i], b.Findings[j]
		if x.File != y.File {
			return x.File < y.File
		}
		if x.Analyzer != y.Analyzer {
			return x.Analyzer < y.Analyzer
		}
		return x.Message < y.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return fmt.Errorf("analysis: baseline: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// relPath maps an absolute finding path under root to its root-relative
// form; paths outside root (or un-relativizable) pass through unchanged.
func relPath(root, path string) string {
	if root == "" {
		return path
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(absRoot, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}
