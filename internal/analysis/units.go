package analysis

import (
	"go/ast"
	"go/types"
)

// unitsPkgPath is the package declaring the physical quantity types the
// analyzer protects.
const unitsPkgPath = "coolopt/internal/units"

// Units flags silent cross-unit conversions (units.Watts(x) where x is
// already a units.Celsius) and raw numeric literals passed where a unit
// type is declared. Both compile fine — every unit type is a float64 under
// the hood — which is exactly why a mix-up survives until a figure looks
// wrong. Conversions through float64 (`units.Watts(float64(c))`) remain
// available as the explicit, greppable escape hatch, and package units
// itself is exempt so it can define the sanctioned bridges (JoulesPerSec →
// Watts, α·T products).
var Units = &Analyzer{
	Name: "units",
	Doc: "forbid direct conversions between distinct unit types and raw " +
		"literals where a unit type is declared",
	Run: runUnits,
}

func runUnits(pass *Pass) error {
	if pass.PkgPath == unitsPkgPath {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
				checkUnitConversion(pass, call, tv.Type)
				return true
			}
			checkUnitArgs(pass, call)
			return true
		})
	}
	return nil
}

// unitType returns the named unit type behind t, or nil.
func unitType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != unitsPkgPath {
		return nil
	}
	return named
}

// checkUnitConversion flags T1(x) where T1 and x's type are two different
// unit types. Converting via float64 is the explicit escape hatch.
func checkUnitConversion(pass *Pass, call *ast.CallExpr, to types.Type) {
	toUnit := unitType(to)
	if toUnit == nil || len(call.Args) != 1 {
		return
	}
	argType := pass.Info.Types[call.Args[0]].Type
	if argType == nil {
		return
	}
	fromUnit := unitType(argType)
	if fromUnit == nil || types.Identical(fromUnit, toUnit) {
		return
	}
	pass.Reportf(call.Pos(), "direct conversion from units.%s to units.%s; convert through float64 or a named bridge method to make the unit change explicit",
		fromUnit.Obj().Name(), toUnit.Obj().Name())
}

// checkUnitArgs flags untyped numeric literals passed to parameters whose
// declared type is a unit type: the caller should write the unit out
// (units.Celsius(22)) so the quantity's meaning is visible at the call
// site.
func checkUnitArgs(pass *Pass, call *ast.CallExpr) {
	sig, ok := pass.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() && !sig.Variadic() {
			break
		}
		var paramType types.Type
		if i < params.Len() {
			paramType = params.At(i).Type()
		} else {
			paramType = params.At(params.Len() - 1).Type()
			if slice, ok := paramType.(*types.Slice); ok {
				paramType = slice.Elem()
			}
		}
		named := unitType(paramType)
		if named == nil {
			continue
		}
		if lit := numericLiteral(arg); lit != nil {
			pass.Reportf(arg.Pos(), "raw literal passed as units.%s; write units.%s(%s) at the call site",
				named.Obj().Name(), named.Obj().Name(), lit.Value)
		}
	}
}

// numericLiteral unwraps `42`, `-42`, `4.2` literals (possibly behind a
// unary sign); anything already carrying a conversion or a named constant
// is fine.
func numericLiteral(expr ast.Expr) *ast.BasicLit {
	switch e := expr.(type) {
	case *ast.BasicLit:
		return e
	case *ast.UnaryExpr:
		if lit, ok := e.X.(*ast.BasicLit); ok {
			return lit
		}
	}
	return nil
}
