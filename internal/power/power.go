// Package power models the electrical draw of a single computing unit.
//
// The paper's model (Eq. 9) is affine in load: P = w1·L + w2, with L the
// CPU utilization in [0, 1]. The simulator's ground truth adds two effects
// real servers exhibit and the paper's model deliberately ignores: a mild
// curvature in the load term and a temperature-dependent leakage/fan term.
// Those imperfections are what make the profiling regression in Fig. 2
// "quite accurate" rather than exact, just as on the physical testbed.
package power

import (
	"errors"
	"fmt"
)

// Model is the affine power model of paper Eq. 9 with load expressed as a
// utilization fraction: Watts = W1·load + W2.
type Model struct {
	// W1 is the load-dependent power coefficient in Watts per unit
	// utilization.
	W1 float64
	// W2 is the load-independent (idle) power in Watts.
	W2 float64
}

// Validate checks that the model is physically plausible.
func (m Model) Validate() error {
	if m.W1 <= 0 {
		return fmt.Errorf("power: W1 = %v, must be positive", m.W1)
	}
	if m.W2 < 0 {
		return fmt.Errorf("power: W2 = %v, must be non-negative", m.W2)
	}
	return nil
}

// Draw returns the modeled power draw in Watts for a utilization in [0, 1].
func (m Model) Draw(load float64) float64 {
	return m.W1*load + m.W2
}

// LoadFor inverts the model: the utilization that draws the given Watts.
func (m Model) LoadFor(watts float64) float64 {
	return (watts - m.W2) / m.W1
}

// Truth is the simulator's ground-truth power behaviour for one server.
// It reduces to Model when Curve and LeakPerK are zero.
type Truth struct {
	// Base is the dominant affine component.
	Base Model
	// Curve adds Curve·load² Watts, a small convexity from
	// frequency/voltage behaviour under load.
	Curve float64
	// LeakPerK adds LeakPerK·(T_cpu − LeakRefC) Watts of
	// temperature-dependent leakage and fan power.
	LeakPerK float64
	// LeakRefC is the CPU temperature in °C at which the leakage term is
	// zero.
	LeakRefC float64
	// StandbyW is the residual draw in Watts when the machine is powered
	// off (0 for a hard off).
	StandbyW float64
}

// Validate checks the ground-truth parameters.
func (t Truth) Validate() error {
	if err := t.Base.Validate(); err != nil {
		return err
	}
	if t.Curve < 0 {
		return errors.New("power: Curve must be non-negative")
	}
	if t.LeakPerK < 0 {
		return errors.New("power: LeakPerK must be non-negative")
	}
	if t.StandbyW < 0 {
		return errors.New("power: StandbyW must be non-negative")
	}
	return nil
}

// Draw returns the true power draw in Watts for a server running at the
// given utilization with the given CPU temperature in °C. A powered-off
// server draws StandbyW regardless of temperature.
func (t Truth) Draw(load, cpuTempC float64, on bool) float64 {
	if !on {
		return t.StandbyW
	}
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	p := t.Base.Draw(load) + t.Curve*load*load
	if t.LeakPerK > 0 {
		p += t.LeakPerK * (cpuTempC - t.LeakRefC)
	}
	if p < 0 {
		p = 0
	}
	return p
}
