package power

import (
	"testing"
	"testing/quick"

	"coolopt/internal/mathx"
)

func TestModelDraw(t *testing.T) {
	m := Model{W1: 50, W2: 35}
	tests := []struct {
		name string
		load float64
		want float64
	}{
		{name: "idle", load: 0, want: 35},
		{name: "half", load: 0.5, want: 60},
		{name: "full", load: 1, want: 85},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.Draw(tt.load); !mathx.ApproxEqual(got, tt.want, 1e-12) {
				t.Fatalf("Draw(%v) = %v, want %v", tt.load, got, tt.want)
			}
		})
	}
}

func TestModelLoadForInvertsDraw(t *testing.T) {
	m := Model{W1: 48.5, W2: 33.1}
	for _, load := range []float64{0, 0.2, 0.77, 1} {
		if got := m.LoadFor(m.Draw(load)); !mathx.ApproxEqual(got, load, 1e-9) {
			t.Fatalf("LoadFor(Draw(%v)) = %v", load, got)
		}
	}
}

func TestModelValidate(t *testing.T) {
	if err := (Model{W1: 50, W2: 35}).Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	if err := (Model{W1: 0, W2: 35}).Validate(); err == nil {
		t.Fatal("zero W1 should be rejected")
	}
	if err := (Model{W1: 50, W2: -1}).Validate(); err == nil {
		t.Fatal("negative W2 should be rejected")
	}
}

func TestTruthReducesToModel(t *testing.T) {
	tr := Truth{Base: Model{W1: 50, W2: 35}}
	for _, load := range []float64{0, 0.3, 1} {
		want := tr.Base.Draw(load)
		if got := tr.Draw(load, 60, true); !mathx.ApproxEqual(got, want, 1e-12) {
			t.Fatalf("Draw(%v) = %v, want %v", load, got, want)
		}
	}
}

func TestTruthOffDrawsStandby(t *testing.T) {
	tr := Truth{Base: Model{W1: 50, W2: 35}, StandbyW: 2}
	if got := tr.Draw(1, 90, false); got != 2 {
		t.Fatalf("off draw = %v, want 2", got)
	}
}

func TestTruthLeakageIncreasesWithTemperature(t *testing.T) {
	tr := Truth{Base: Model{W1: 50, W2: 35}, LeakPerK: 0.2, LeakRefC: 40}
	cold := tr.Draw(0.5, 40, true)
	hot := tr.Draw(0.5, 60, true)
	if !mathx.ApproxEqual(hot-cold, 4, 1e-12) {
		t.Fatalf("leakage delta = %v, want 4", hot-cold)
	}
}

func TestTruthClampsLoad(t *testing.T) {
	tr := Truth{Base: Model{W1: 50, W2: 35}}
	if got := tr.Draw(-0.5, 50, true); !mathx.ApproxEqual(got, 35, 1e-12) {
		t.Fatalf("negative load draw = %v, want idle", got)
	}
	if got := tr.Draw(1.5, 50, true); !mathx.ApproxEqual(got, 85, 1e-12) {
		t.Fatalf("overload draw = %v, want full", got)
	}
}

func TestTruthValidate(t *testing.T) {
	valid := Truth{Base: Model{W1: 50, W2: 35}, Curve: 3, LeakPerK: 0.1, StandbyW: 2}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid truth rejected: %v", err)
	}
	tests := []struct {
		name string
		give Truth
	}{
		{name: "bad base", give: Truth{Base: Model{W1: -1, W2: 0}}},
		{name: "negative curve", give: Truth{Base: Model{W1: 50, W2: 35}, Curve: -1}},
		{name: "negative leak", give: Truth{Base: Model{W1: 50, W2: 35}, LeakPerK: -1}},
		{name: "negative standby", give: Truth{Base: Model{W1: 50, W2: 35}, StandbyW: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.give.Validate(); err == nil {
				t.Fatal("invalid truth accepted")
			}
		})
	}
}

// Property: true power draw is monotone non-decreasing in load for any
// physically valid parameterization.
func TestTruthMonotoneInLoadProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mathx.NewRand(seed)
		tr := Truth{
			Base:     Model{W1: rng.Uniform(10, 100), W2: rng.Uniform(0, 60)},
			Curve:    rng.Uniform(0, 10),
			LeakPerK: rng.Uniform(0, 0.5),
			LeakRefC: 40,
		}
		prev := -1.0
		for load := 0.0; load <= 1.0; load += 0.05 {
			p := tr.Draw(load, 55, true)
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
