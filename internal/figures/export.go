package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// WriteCSV writes the figure as a CSV table: one x column followed by one
// column per series, ready for any plotting tool.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	if len(f.Series) > 0 {
		for i := range f.Series[0].X {
			row := []string{formatFloat(f.Series[0].X[i])}
			for _, s := range f.Series {
				if i < len(s.Y) {
					row = append(row, formatFloat(s.Y[i]))
				} else {
					row = append(row, "")
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the figure under dir using a filename derived from its
// ID ("Fig. 9" → fig_9.csv) and returns the path.
func (f *Figure) SaveCSV(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := strings.ToLower(f.ID)
	name = strings.NewReplacer(". ", "_", " ", "_", ".", "_").Replace(name)
	path := filepath.Join(dir, name+".csv")
	file, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer file.Close()
	if err := f.WriteCSV(file); err != nil {
		return "", fmt.Errorf("figures: write %s: %w", path, err)
	}
	return path, nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}
