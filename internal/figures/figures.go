// Package figures regenerates every table and figure of the paper's
// evaluation section (§IV) from a profiled, simulated machine room. Each
// FigN function returns the same series the paper plots; Render produces
// an aligned text table suitable for terminals and EXPERIMENTS.md.
//
//coolopt:deterministic
package figures

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"coolopt"
)

// DefaultLoads is the evaluation grid: 10 %–100 % of cluster capacity, as
// in the paper's x-axes.
var DefaultLoads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Series is one labeled curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a regenerated table/figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render formats the figure as an aligned text table.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%18s", s.Name)
	}
	b.WriteByte('\n')
	if len(f.Series) > 0 {
		for i, x := range f.Series[0].X {
			fmt.Fprintf(&b, "%-14.4g", x)
			for _, s := range f.Series {
				if i < len(s.Y) {
					fmt.Fprintf(&b, "%18.1f", s.Y[i])
				} else {
					fmt.Fprintf(&b, "%18s", "-")
				}
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Dataset caches one full scenario sweep so the per-figure functions do
// not re-run the room.
type Dataset struct {
	sys   *coolopt.System
	loads []float64
	byKey map[key]coolopt.Measurement
}

type key struct {
	m    coolopt.Method
	load float64
}

// Collect runs every scenario at every load once. With nil loads it uses
// DefaultLoads.
//
// The sweep runs on a bounded worker pool (one worker per available CPU).
// Every cell evaluates on its own clone of the system, with the clone's
// sensor-noise streams seeded by the cell index — so each cell starts
// from the same room state and reads the same noise regardless of worker
// count or scheduling, and the collected dataset is deterministic. The
// passed system itself is never stepped.
func Collect(sys *coolopt.System, loads []float64) (*Dataset, error) {
	if len(loads) == 0 {
		loads = DefaultLoads
	}
	cells := make([]key, 0, len(coolopt.AllMethods)*len(loads))
	for _, m := range coolopt.AllMethods {
		for _, lf := range loads {
			cells = append(cells, key{m, lf})
		}
	}

	results := make([]coolopt.Measurement, len(cells))
	errs := make([]error, len(cells))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cells) {
		workers = len(cells)
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				c := cells[i]
				meas, err := sys.Clone(int64(i)+1).Evaluate(c.m, c.load)
				if err != nil {
					errs[i] = fmt.Errorf("figures: %v at %.0f%%: %w", c.m, c.load*100, err)
					continue
				}
				results[i] = *meas
			}
		}()
	}
	for i := range cells {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	ds := &Dataset{sys: sys, loads: loads, byKey: make(map[key]coolopt.Measurement, len(cells))}
	for i, c := range cells {
		ds.byKey[c] = results[i]
	}
	return ds, nil
}

// System returns the underlying system.
func (ds *Dataset) System() *coolopt.System { return ds.sys }

// Loads returns the evaluation grid.
func (ds *Dataset) Loads() []float64 { return append([]float64(nil), ds.loads...) }

// Measurement returns the cached measurement for a scenario/load pair.
func (ds *Dataset) Measurement(m coolopt.Method, load float64) (coolopt.Measurement, bool) {
	meas, ok := ds.byKey[key{m, load}]
	return meas, ok
}

// shortName is the column label for a method ("#7"); the full names go
// into the figure legend note.
func shortName(m coolopt.Method) string { return fmt.Sprintf("#%d", int(m)) }

func (ds *Dataset) series(m coolopt.Method) Series {
	s := Series{Name: shortName(m)}
	for _, lf := range ds.loads {
		meas := ds.byKey[key{m, lf}]
		s.X = append(s.X, lf*100)
		s.Y = append(s.Y, float64(meas.TotalW))
	}
	return s
}

func (ds *Dataset) methodFigure(id, title string, methods []coolopt.Method, notes ...string) *Figure {
	f := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "Load (%)",
		YLabel: "Power (W)",
	}
	var legend []string
	for _, m := range methods {
		f.Series = append(f.Series, ds.series(m))
		legend = append(legend, m.String())
	}
	f.Notes = append(f.Notes, "legend: "+strings.Join(legend, "; "))
	f.Notes = append(f.Notes, notes...)
	return f
}

// Fig2 is the measured-vs-predicted power trace of the profiling power
// experiment (paper Fig. 2). Samples are decimated to at most maxPoints.
func Fig2(sys *coolopt.System, maxPoints int) *Figure {
	fit := sys.Profiling().PowerFit
	if maxPoints <= 0 {
		maxPoints = 60
	}
	stride := len(fit.Measured) / maxPoints
	if stride < 1 {
		stride = 1
	}
	meas := Series{Name: "Measured"}
	pred := Series{Name: "Predicted"}
	for i := 0; i < len(fit.Measured); i += stride {
		x := float64(i)
		meas.X = append(meas.X, x)
		meas.Y = append(meas.Y, fit.Measured[i])
		pred.X = append(pred.X, x)
		pred.Y = append(pred.Y, fit.Predicted[i])
	}
	return &Figure{
		ID:     "Fig. 2",
		Title:  "Measured vs predicted server power (w1/w2 regression)",
		XLabel: "Sample",
		YLabel: "Power (W)",
		Series: []Series{meas, pred},
		Notes: []string{
			fmt.Sprintf("fit over all 1 Hz samples: RMSE %.2f W, R² %.4f (w1=%.1f W/load, w2=%.1f W)",
				fit.RMSE, fit.R2, sys.Profile().W1, sys.Profile().W2),
		},
	}
}

// Fig3 is the measured-vs-predicted stable CPU temperature for one
// machine over the thermal sweep (paper Fig. 3).
func Fig3(sys *coolopt.System, machine int) (*Figure, error) {
	fits := sys.Profiling().ThermalFits
	if machine < 0 || machine >= len(fits) {
		return nil, fmt.Errorf("figures: machine %d out of range [0, %d)", machine, len(fits))
	}
	fit := fits[machine]
	meas := Series{Name: "Measured"}
	pred := Series{Name: "Predicted"}
	for i := range fit.Measured {
		x := float64(i)
		meas.X = append(meas.X, x)
		meas.Y = append(meas.Y, fit.Measured[i])
		pred.X = append(pred.X, x)
		pred.Y = append(pred.Y, fit.Predicted[i])
	}
	mp := sys.Profile().Machines[machine]
	return &Figure{
		ID:     "Fig. 3",
		Title:  fmt.Sprintf("Stable CPU temperature prediction vs measurement (machine %d)", machine),
		XLabel: "Operating point",
		YLabel: "CPU temp (°C)",
		Series: []Series{meas, pred},
		Notes: []string{
			fmt.Sprintf("fit: RMSE %.2f °C, R² %.4f (α=%.3f, β=%.4f K/W, γ=%.2f °C)",
				fit.RMSE, fit.R2, mp.Alpha, mp.Beta, mp.Gamma),
		},
	}, nil
}

// Fig5 compares similar methods with and without consolidation (paper
// Fig. 5): #2 vs #3, #5/#6 vs #7/#8.
func (ds *Dataset) Fig5() *Figure {
	return ds.methodFigure("Fig. 5",
		"Comparison of similar methods with and without consolidation",
		[]coolopt.Method{
			coolopt.BottomUpNoACNoCons, coolopt.BottomUpNoACCons,
			coolopt.BottomUpACNoCons, coolopt.OptimalACNoCons,
			coolopt.BottomUpACCons, coolopt.OptimalACCons,
		})
}

// Fig6 is the power of all eight methods versus total load (paper Fig. 6).
func (ds *Dataset) Fig6() *Figure {
	return ds.methodFigure("Fig. 6", "Power consumption of all methods vs total load",
		coolopt.AllMethods)
}

// Fig7 compares load-distribution strategies under AC control without
// consolidation (paper Fig. 7): Even (#4), Bottom-up (#5), Optimal (#6).
func (ds *Dataset) Fig7() *Figure {
	return ds.methodFigure("Fig. 7",
		"AC control, no consolidation: Even vs Bottom-up vs Optimal",
		[]coolopt.Method{coolopt.EvenACNoCons, coolopt.BottomUpACNoCons, coolopt.OptimalACNoCons})
}

// Fig8 compares load-distribution strategies under AC control with
// consolidation (paper Fig. 8): Bottom-up (#7) vs Optimal (#8).
func (ds *Dataset) Fig8() *Figure {
	return ds.methodFigure("Fig. 8",
		"AC control, consolidation: Bottom-up vs Optimal",
		[]coolopt.Method{coolopt.BottomUpACCons, coolopt.OptimalACCons},
		"the paper's Fig. 4 scenario tree has no Even+consolidation variant, so the figure carries the two consolidated strategies")
}

// Fig9 summarizes the holistic win (paper Fig. 9): the percentage saving
// of Optimal (#8) over the best prior art, cool job allocation (#7), per
// load point.
func (ds *Dataset) Fig9() *Figure {
	s := Series{Name: "Saving of #8 vs #7 (%)"}
	best, avg := 0.0, 0.0
	for _, lf := range ds.loads {
		b7 := float64(ds.byKey[key{coolopt.BottomUpACCons, lf}].TotalW)
		b8 := float64(ds.byKey[key{coolopt.OptimalACCons, lf}].TotalW)
		saving := (b7 - b8) / b7 * 100
		s.X = append(s.X, lf*100)
		s.Y = append(s.Y, saving)
		if saving > best {
			best = saving
		}
		avg += saving
	}
	avg /= float64(len(ds.loads))
	return &Figure{
		ID:     "Fig. 9",
		Title:  "Bottom-up vs Optimal with consolidation: energy saving",
		XLabel: "Load (%)",
		YLabel: "Saving (%)",
		Series: []Series{s},
		Notes: []string{
			fmt.Sprintf("average saving %.1f%%, best case %.1f%% (paper: 7%% average, up to 18%%)", avg, best),
		},
	}
}

// Fig10 is the average power of every method across the load sweep
// (paper Fig. 10).
func (ds *Dataset) Fig10() *Figure {
	s := Series{Name: "Average power (W)"}
	for _, m := range coolopt.AllMethods {
		sum := 0.0
		for _, lf := range ds.loads {
			sum += float64(ds.byKey[key{m, lf}].TotalW)
		}
		s.X = append(s.X, float64(int(m)))
		s.Y = append(s.Y, sum/float64(len(ds.loads)))
	}
	return &Figure{
		ID:     "Fig. 10",
		Title:  "Average power of all methods over the load sweep",
		XLabel: "Method #",
		YLabel: "Power (W)",
		Series: []Series{s},
	}
}

// VerifyConstraints reproduces the §IV-B verification: for every scenario
// and load, the hottest CPU stays at or below T_max and the carried load
// matches the demand. It returns a rendered report and an error listing
// any violations.
func (ds *Dataset) VerifyConstraints() (string, error) {
	var b strings.Builder
	var problems []string
	fmt.Fprintf(&b, "Constraint verification (T_max = %.1f °C)\n", ds.sys.Profile().TMaxC)
	fmt.Fprintf(&b, "%-46s%10s%12s%12s\n", "method", "load %", "max CPU °C", "carried")
	keys := make([]key, 0, len(ds.byKey))
	for k := range ds.byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].m != keys[j].m {
			return keys[i].m < keys[j].m
		}
		return keys[i].load < keys[j].load
	})
	for _, k := range keys {
		meas := ds.byKey[k]
		fmt.Fprintf(&b, "%-46s%10.0f%12.2f%12.2f\n", k.m, k.load*100, meas.MaxCPUC, meas.CarriedLoad)
		if meas.Violated {
			problems = append(problems, fmt.Sprintf("%v at %.0f%%: %.2f °C", k.m, k.load*100, meas.MaxCPUC))
		}
		want := k.load * float64(ds.sys.Size())
		if diff := meas.CarriedLoad - want; diff > 1e-6 || diff < -1e-6 {
			problems = append(problems, fmt.Sprintf("%v at %.0f%%: carried %.3f ≠ %.3f", k.m, k.load*100, meas.CarriedLoad, want))
		}
	}
	if len(problems) > 0 {
		return b.String(), fmt.Errorf("figures: %d constraint violations: %s", len(problems), strings.Join(problems, "; "))
	}
	return b.String(), nil
}

// Table1 renders the paper's Table I: physical variables and units.
func Table1() *Figure {
	return &Figure{
		ID:    "Table I",
		Title: "Physical variables and their units",
		Notes: []string{
			"T, T_box, T_in — Temperature — K (°C in this implementation; the model is affine either way)",
			"ν_cpu, ν_box — Heat capacity — J/K",
			"ϑ_cpu,box — Heat exchange rate — J·K⁻¹·s⁻¹ (W/K)",
			"F_in, F_out — Air flow — m³/s",
			"c_air — Heat capacity density — J·K⁻¹·m⁻³",
			"P_cpu — Heat producing rate — J/s (W)",
		},
	}
}

// ModelValidation compares the fitted model's power prediction against
// the metered outcome for every scenario cell of the sweep — the
// system-level version of the paper's "our simple model adequately
// captures the thermal behavior and energy consumption" claim.
func (ds *Dataset) ModelValidation() *Figure {
	pred := Series{Name: "Predicted (model)"}
	meas := Series{Name: "Measured (meters)"}
	var worst, sum float64
	idx := 0.0
	for _, m := range coolopt.AllMethods {
		for _, lf := range ds.loads {
			cell := ds.byKey[key{m, lf}]
			pred.X = append(pred.X, idx)
			pred.Y = append(pred.Y, float64(cell.PredictedW))
			meas.X = append(meas.X, idx)
			meas.Y = append(meas.Y, float64(cell.TotalW))
			if cell.PredictedW > 0 {
				rel := float64(cell.TotalW-cell.PredictedW) / float64(cell.PredictedW)
				if rel < 0 {
					rel = -rel
				}
				sum += rel
				if rel > worst {
					worst = rel
				}
			}
			idx++
		}
	}
	return &Figure{
		ID:     "Validation",
		Title:  "Model-predicted vs metered total power over all scenario cells",
		XLabel: "Cell",
		YLabel: "Power (W)",
		Series: []Series{pred, meas},
		Notes: []string{
			fmt.Sprintf("relative model error across %d cells: mean %.1f%%, worst %.1f%%",
				int(idx), sum/idx*100, worst*100),
			"cells are ordered method-major (#1 … #8) and load-minor",
			"the worst cells are the fixed-cold-supply, low-heat corners (#1–#3 at low load) where the paper's affine cooling model (Eq. 10) extrapolates far from its calibration region",
		},
	}
}
