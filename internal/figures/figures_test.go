package figures

import (
	"strings"
	"sync"
	"testing"

	"coolopt"
)

// The dataset collection replays 8 scenarios × 4 loads on the simulated
// room; share it across tests.
var (
	dsOnce sync.Once
	dsInst *Dataset
	dsErr  error
)

func sharedDataset(t *testing.T) *Dataset {
	t.Helper()
	dsOnce.Do(func() {
		sys, err := coolopt.NewSystem()
		if err != nil {
			dsErr = err
			return
		}
		dsInst, dsErr = Collect(sys, []float64{0.2, 0.4, 0.6, 0.8})
	})
	if dsErr != nil {
		t.Fatalf("collect: %v", dsErr)
	}
	return dsInst
}

func TestCollectCoversGrid(t *testing.T) {
	ds := sharedDataset(t)
	if got := len(ds.Loads()); got != 4 {
		t.Fatalf("loads = %d, want 4", got)
	}
	for _, m := range coolopt.AllMethods {
		for _, lf := range ds.Loads() {
			if _, ok := ds.Measurement(m, lf); !ok {
				t.Fatalf("missing measurement %v at %v", m, lf)
			}
		}
	}
}

func TestFigureSeriesShapes(t *testing.T) {
	ds := sharedDataset(t)
	tests := []struct {
		fig        *Figure
		wantSeries int
	}{
		{fig: ds.Fig5(), wantSeries: 6},
		{fig: ds.Fig6(), wantSeries: 8},
		{fig: ds.Fig7(), wantSeries: 3},
		{fig: ds.Fig8(), wantSeries: 2},
		{fig: ds.Fig9(), wantSeries: 1},
		{fig: ds.Fig10(), wantSeries: 1},
	}
	for _, tt := range tests {
		if len(tt.fig.Series) != tt.wantSeries {
			t.Fatalf("%s has %d series, want %d", tt.fig.ID, len(tt.fig.Series), tt.wantSeries)
		}
		for _, s := range tt.fig.Series {
			if len(s.X) == 0 || len(s.X) != len(s.Y) {
				t.Fatalf("%s series %q misshapen: %d/%d", tt.fig.ID, s.Name, len(s.X), len(s.Y))
			}
		}
	}
}

func TestCollectDeterministic(t *testing.T) {
	// The parallel sweep seeds every cell's clone from the cell index, so
	// two sweeps over the same system must agree bit for bit no matter
	// how the workers interleave.
	sys, err := coolopt.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	loads := []float64{0.3, 0.7}
	a, err := Collect(sys, loads)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(sys, loads)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range coolopt.AllMethods {
		for _, lf := range loads {
			ma, _ := a.Measurement(m, lf)
			mb, _ := b.Measurement(m, lf)
			if ma != mb {
				t.Fatalf("%v at %v: %+v vs %+v", m, lf, ma, mb)
			}
		}
	}
}

func TestFig6PowerRisesWithLoad(t *testing.T) {
	ds := sharedDataset(t)
	for _, s := range ds.Fig6().Series {
		if s.Y[len(s.Y)-1] <= s.Y[0] {
			t.Fatalf("%q power does not rise with load: %v", s.Name, s.Y)
		}
	}
}

func TestFig9ReportsPositiveAverageSaving(t *testing.T) {
	ds := sharedDataset(t)
	fig := ds.Fig9()
	sum := 0.0
	for _, v := range fig.Series[0].Y {
		sum += v
	}
	if avg := sum / float64(len(fig.Series[0].Y)); avg <= 0 {
		t.Fatalf("average saving %.2f%% not positive", avg)
	}
}

func TestFig2AndFig3(t *testing.T) {
	ds := sharedDataset(t)
	f2 := Fig2(ds.System(), 50)
	if len(f2.Series) != 2 || len(f2.Series[0].X) == 0 {
		t.Fatalf("Fig2 malformed: %+v", f2)
	}
	if len(f2.Series[0].X) > 60 {
		t.Fatalf("Fig2 not decimated: %d points", len(f2.Series[0].X))
	}
	f3, err := Fig3(ds.System(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Series) != 2 {
		t.Fatalf("Fig3 malformed")
	}
	if _, err := Fig3(ds.System(), 99); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
}

func TestVerifyConstraintsPasses(t *testing.T) {
	ds := sharedDataset(t)
	report, err := ds.VerifyConstraints()
	if err != nil {
		t.Fatalf("constraints violated:\n%s\n%v", report, err)
	}
	if !strings.Contains(report, "T_max") {
		t.Fatal("report missing header")
	}
}

func TestRenderContainsSeriesNames(t *testing.T) {
	ds := sharedDataset(t)
	out := ds.Fig7().Render()
	for _, want := range []string{"Fig. 7", "#4", "#5", "#6", "Load (%)", "legend:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable1(t *testing.T) {
	tab := Table1()
	if len(tab.Notes) != 6 {
		t.Fatalf("Table I lists %d variables, want 6", len(tab.Notes))
	}
	if !strings.Contains(tab.Render(), "Heat capacity") {
		t.Fatal("Table I render missing content")
	}
}

func TestModelValidationAccuracy(t *testing.T) {
	// The paper's adequacy claim at system level: the fitted model's
	// power prediction tracks the metered outcome across every
	// scenario cell.
	ds := sharedDataset(t)
	fig := ds.ModelValidation()
	pred, meas := fig.Series[0].Y, fig.Series[1].Y
	if len(pred) != len(meas) || len(pred) == 0 {
		t.Fatal("validation series malformed")
	}
	var sum, worst float64
	for i := range pred {
		if pred[i] <= 0 {
			t.Fatalf("cell %d has non-positive prediction %v", i, pred[i])
		}
		rel := (meas[i] - pred[i]) / pred[i]
		if rel < 0 {
			rel = -rel
		}
		sum += rel
		if rel > worst {
			worst = rel
		}
	}
	mean := sum / float64(len(pred))
	// Mean error must be small; the worst cells are the
	// fixed-cold-supply, low-heat corners where the affine cooling
	// model extrapolates (a limitation shared with the paper's Eq. 10).
	if mean > 0.12 {
		t.Fatalf("mean model error %.1f%% too large", mean*100)
	}
	if worst > 0.35 {
		t.Fatalf("worst model error %.1f%% too large", worst*100)
	}
	// Note: Eq. 10 carries no heat-load term, so consolidated methods
	// at low load (small Q) inherit a structural over-prediction of
	// cooling power — a limitation shared with the paper's model. The
	// method comparisons in Figs. 5–10 are unaffected: they compare
	// metered power, not predictions.
}
