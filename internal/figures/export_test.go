package figures

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	fig := &Figure{
		ID:     "Fig. X",
		XLabel: "Load (%)",
		Series: []Series{
			{Name: "#7", X: []float64{10, 20}, Y: []float64{100.5, 200}},
			{Name: "#8", X: []float64{10, 20}, Y: []float64{90}},
		},
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "Load (%),#7,#8" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "10,100.5,90" {
		t.Fatalf("row = %q", lines[1])
	}
	// Short series pad with empty cells.
	if lines[2] != "20,200," {
		t.Fatalf("padded row = %q", lines[2])
	}
}

func TestSaveCSV(t *testing.T) {
	dir := t.TempDir()
	fig := &Figure{
		ID:     "Fig. 9",
		XLabel: "x",
		Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{2}}},
	}
	path, err := fig.SaveCSV(dir)
	if err != nil {
		t.Fatalf("SaveCSV: %v", err)
	}
	if filepath.Base(path) != "fig_9.csv" {
		t.Fatalf("filename = %s", filepath.Base(path))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "x,s") {
		t.Fatalf("file content %q", data)
	}
}
