// Package clock is the injectable time source behind every wall-clock
// read in the experiment pipeline. The determinism analyzer bans bare
// time.Now/time.Since in //coolopt:deterministic packages; code that
// genuinely needs elapsed time (capacity calibration, benchmark
// trajectories) takes a Clock instead, so tests and replays can substitute
// a Fake and get identical output on every run.
package clock

import (
	"sync"
	"time"
)

// Clock is a minimal time source.
type Clock interface {
	Now() time.Time
}

// Since returns the time elapsed on c since t.
func Since(c Clock, t time.Time) time.Duration {
	return c.Now().Sub(t)
}

type wall struct{}

func (wall) Now() time.Time { return time.Now() }

// Wall reads the system clock.
var Wall Clock = wall{}

// Fake is a manually controlled clock. Each Now call first advances the
// clock by Tick (which may be zero), so a busy-wait loop measured against
// a Fake terminates deterministically.
type Fake struct {
	mu   sync.Mutex
	now  time.Time
	tick time.Duration
}

// NewFake returns a Fake starting at start that advances by tick on every
// Now call.
func NewFake(start time.Time, tick time.Duration) *Fake {
	return &Fake{now: start, tick: tick}
}

// Now advances the fake clock by its tick and returns the new time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(f.tick)
	return f.now
}

// Advance moves the clock forward by d without a Now call.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}
