package clock

import (
	"testing"
	"time"
)

func TestWallIsMonotonicNonDecreasing(t *testing.T) {
	a := Wall.Now()
	b := Wall.Now()
	if b.Before(a) {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
}

func TestFakeTicksPerNow(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start, time.Second)
	if got := f.Now(); !got.Equal(start.Add(time.Second)) {
		t.Fatalf("first Now = %v, want %v", got, start.Add(time.Second))
	}
	if got := f.Now(); !got.Equal(start.Add(2 * time.Second)) {
		t.Fatalf("second Now = %v, want %v", got, start.Add(2*time.Second))
	}
}

func TestFakeAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0), 0)
	f.Advance(time.Minute)
	if got := f.Now(); !got.Equal(time.Unix(60, 0)) {
		t.Fatalf("Now after Advance = %v, want t+60s", got)
	}
}

func TestSince(t *testing.T) {
	f := NewFake(time.Unix(0, 0), 0)
	t0 := f.Now()
	f.Advance(3 * time.Second)
	if got := Since(f, t0); got != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", got)
	}
}

func TestFakeTerminatesTimedLoop(t *testing.T) {
	// The pattern MeasureCapacityClock relies on: a loop bounded by
	// elapsed fake time must finish in a bounded number of iterations.
	f := NewFake(time.Unix(0, 0), 10*time.Millisecond)
	start := f.Now()
	iters := 0
	for Since(f, start) < time.Second {
		iters++
		if iters > 1000 {
			t.Fatal("timed loop did not terminate against fake clock")
		}
	}
	if iters == 0 {
		t.Fatal("loop never ran")
	}
}
