package trace

import (
	"strings"
	"testing"
)

// FuzzParseCSV hardens the trace parser against arbitrary files.
func FuzzParseCSV(f *testing.F) {
	for _, seed := range []string{
		"",
		"# comment\n0,0.5\n",
		"0,0.2\n100,0.8\n",
		"x,y\n",
		"1,2,3\n",
		"0,-1\n",
		"nan,0.5\n",
		"0,0.5\r\n10,0.6\r\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseCSV(strings.NewReader(input))
		if err != nil {
			return // rejecting is always fine
		}
		// Accepted traces must satisfy the invariants New enforces.
		points := tr.Points()
		if len(points) == 0 {
			t.Fatal("accepted trace has no points")
		}
		for i, p := range points {
			if p.LoadFrac < 0 || p.LoadFrac > 1 || p.TimeS < 0 {
				t.Fatalf("accepted invalid point %+v", p)
			}
			if i > 0 && p.TimeS <= points[i-1].TimeS {
				t.Fatalf("accepted non-increasing times: %v", points)
			}
		}
		// At must work across the whole domain without panicking.
		for _, q := range []float64{-1, 0, points[len(points)-1].TimeS + 100} {
			v := tr.At(q)
			if v < 0 || v > 1 {
				t.Fatalf("At(%v) = %v out of range", q, v)
			}
		}
	})
}
