// Package trace provides demand traces for the machine room: time series
// of total offered load (as a fraction of cluster capacity). The paper's
// analysis is steady-state and assumes long-lived batch load; traces feed
// the re-planning controller (internal/controller) that extends the
// paper's solution to slowly varying demand.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Point is one demand sample.
type Point struct {
	// TimeS is seconds since trace start.
	TimeS float64
	// LoadFrac is offered load as a fraction of cluster capacity.
	LoadFrac float64
}

// Trace is a piecewise-constant demand series: the load at time t is the
// value of the latest point at or before t.
type Trace struct {
	points []Point
}

// New builds a trace from points, which must start at or after time 0,
// be strictly increasing in time, and carry loads in [0, 1].
func New(points []Point) (*Trace, error) {
	if len(points) == 0 {
		return nil, errors.New("trace: empty trace")
	}
	for i, p := range points {
		if p.TimeS < 0 {
			return nil, fmt.Errorf("trace: point %d at negative time %v", i, p.TimeS)
		}
		if i > 0 && p.TimeS <= points[i-1].TimeS {
			return nil, fmt.Errorf("trace: point %d time %v not increasing", i, p.TimeS)
		}
		if p.LoadFrac < 0 || p.LoadFrac > 1 {
			return nil, fmt.Errorf("trace: point %d load %v outside [0, 1]", i, p.LoadFrac)
		}
	}
	return &Trace{points: append([]Point(nil), points...)}, nil
}

// At returns the offered load at time t; before the first point it
// returns the first point's load.
func (tr *Trace) At(t float64) float64 {
	idx := sort.Search(len(tr.points), func(i int) bool {
		return tr.points[i].TimeS > t
	})
	if idx == 0 {
		return tr.points[0].LoadFrac
	}
	return tr.points[idx-1].LoadFrac
}

// Duration returns the time of the last point.
func (tr *Trace) Duration() float64 {
	return tr.points[len(tr.points)-1].TimeS
}

// Points returns a copy of the trace points.
func (tr *Trace) Points() []Point {
	return append([]Point(nil), tr.points...)
}

// Diurnal synthesizes a day-like demand curve: base + swing·sin over the
// period, sampled every stepS seconds and clamped to [0.02, 1]. A typical
// batch cluster runs base 0.5 with swing 0.35.
func Diurnal(periodS, stepS, base, swing float64) (*Trace, error) {
	if periodS <= 0 || stepS <= 0 || stepS > periodS {
		return nil, fmt.Errorf("trace: invalid period %v / step %v", periodS, stepS)
	}
	var points []Point
	for t := 0.0; t <= periodS; t += stepS {
		load := base + swing*math.Sin(2*math.Pi*t/periodS)
		if load < 0.02 {
			load = 0.02
		}
		if load > 1 {
			load = 1
		}
		points = append(points, Point{TimeS: t, LoadFrac: load})
	}
	return New(points)
}

// Steps builds a trace from (duration, load) pairs laid end to end.
func Steps(stepDurS float64, loads ...float64) (*Trace, error) {
	if stepDurS <= 0 {
		return nil, fmt.Errorf("trace: step duration %v must be positive", stepDurS)
	}
	if len(loads) == 0 {
		return nil, errors.New("trace: no steps")
	}
	points := make([]Point, len(loads))
	for i, l := range loads {
		points[i] = Point{TimeS: float64(i) * stepDurS, LoadFrac: l}
	}
	return New(points)
}

// ParseCSV reads "time_s,load_frac" lines (comments with #, blank lines
// ignored) into a trace.
func ParseCSV(r io.Reader) (*Trace, error) {
	var points []Point
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: line %d: want time,load", line)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		l, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		points = append(points, Point{TimeS: t, LoadFrac: l})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(points)
}

// WriteCSV writes the trace in the ParseCSV format.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# time_s,load_frac"); err != nil {
		return err
	}
	for _, p := range tr.points {
		if _, err := fmt.Fprintf(bw, "%g,%g\n", p.TimeS, p.LoadFrac); err != nil {
			return err
		}
	}
	return bw.Flush()
}
