package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"coolopt/internal/mathx"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		give []Point
	}{
		{name: "empty", give: nil},
		{name: "negative time", give: []Point{{TimeS: -1, LoadFrac: 0.5}}},
		{name: "non-increasing", give: []Point{{TimeS: 0, LoadFrac: 0.5}, {TimeS: 0, LoadFrac: 0.6}}},
		{name: "load above 1", give: []Point{{TimeS: 0, LoadFrac: 1.5}}},
		{name: "negative load", give: []Point{{TimeS: 0, LoadFrac: -0.1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.give); err == nil {
				t.Fatal("invalid trace accepted")
			}
		})
	}
}

func TestAtPiecewiseConstant(t *testing.T) {
	tr, err := New([]Point{{TimeS: 0, LoadFrac: 0.2}, {TimeS: 100, LoadFrac: 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		at   float64
		want float64
	}{
		{at: -5, want: 0.2}, // before start: first value
		{at: 0, want: 0.2},
		{at: 99.9, want: 0.2},
		{at: 100, want: 0.8},
		{at: 1e6, want: 0.8},
	}
	for _, tt := range tests {
		if got := tr.At(tt.at); got != tt.want {
			t.Fatalf("At(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
	if tr.Duration() != 100 {
		t.Fatalf("Duration = %v", tr.Duration())
	}
}

func TestDiurnalBounds(t *testing.T) {
	tr, err := Diurnal(86400, 600, 0.5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Points() {
		if p.LoadFrac < 0.02 || p.LoadFrac > 1 {
			t.Fatalf("diurnal load %v at %v out of bounds", p.LoadFrac, p.TimeS)
		}
	}
	// Peak above base, trough below.
	if tr.At(86400/4) <= 0.5 {
		t.Fatal("no peak at quarter period")
	}
	if tr.At(3*86400/4) >= 0.5 {
		t.Fatal("no trough at three-quarter period")
	}
	if _, err := Diurnal(0, 1, 0.5, 0.1); err == nil {
		t.Fatal("invalid period accepted")
	}
}

func TestSteps(t *testing.T) {
	tr, err := Steps(60, 0.2, 0.9, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.At(30); got != 0.2 {
		t.Fatalf("At(30) = %v", got)
	}
	if got := tr.At(61); got != 0.9 {
		t.Fatalf("At(61) = %v", got)
	}
	if got := tr.At(121); got != 0.4 {
		t.Fatalf("At(121) = %v", got)
	}
	if _, err := Steps(0, 0.5); err == nil {
		t.Fatal("zero step duration accepted")
	}
	if _, err := Steps(60); err == nil {
		t.Fatal("no steps accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := Steps(120, 0.1, 0.6, 0.3, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	op, pp := orig.Points(), parsed.Points()
	if len(op) != len(pp) {
		t.Fatalf("round trip length %d → %d", len(op), len(pp))
	}
	for i := range op {
		if op[i] != pp[i] {
			t.Fatalf("point %d: %v → %v", i, op[i], pp[i])
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "empty", give: "# only a comment\n"},
		{name: "bad fields", give: "1,2,3\n"},
		{name: "bad time", give: "x,0.5\n"},
		{name: "bad load", give: "1,x\n"},
		{name: "out of range", give: "0,7\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseCSV(strings.NewReader(tt.give)); err == nil {
				t.Fatal("invalid csv accepted")
			}
		})
	}
}

// Property: At always returns a value present in the trace.
func TestAtReturnsTraceValueProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mathx.NewRand(seed)
		n := 1 + rng.Intn(10)
		points := make([]Point, n)
		for i := range points {
			points[i] = Point{TimeS: float64(i) * 10, LoadFrac: rng.Float64()}
		}
		tr, err := New(points)
		if err != nil {
			return false
		}
		for k := 0; k < 20; k++ {
			v := tr.At(rng.Uniform(-10, float64(n)*10+20))
			found := false
			for _, p := range points {
				if p.LoadFrac == v {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
