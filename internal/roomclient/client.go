// Package roomclient is the HTTP client for a machine room served by
// internal/roomapi. It implements machineroom.Room, so the profiling
// pipeline and controllers run against a remote room exactly as against
// the in-process simulator.
//
// The client is built for rooms that misbehave. Every request carries a
// per-attempt timeout and is retried a bounded number of times with
// exponential backoff and deterministic jitter (seeded, so a run is
// reproducible). GETs are always safe to retry; mutating POSTs carry a
// sequence token (roomapi.SeqHeader) that the server uses to deduplicate,
// so a retried advance or power command cannot execute twice.
//
// The machineroom.Room interface is deliberately error-free on its read
// path (it mirrors how operators poll sensors), so transport failures are
// latched instead of returned: the first error since the last Err call is
// retained as a *TransportError, reads return zero values while the room
// is unreachable, and callers check Err after a control sequence — or
// call ResetErr to acknowledge a failure and keep controlling. Sensor
// reads are served from a bulk snapshot fetched once per room timestamp —
// one GET per simulated second rather than one per machine — which
// matches the 1 Hz sampling the paper's meters provide anyway.
//
//coolopt:errcontract
package roomclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"coolopt/internal/machineroom"
	"coolopt/internal/mathx"
	"coolopt/internal/roomapi"
)

// Default retry policy: 3 retries (4 attempts), 100 ms → 2 s backoff,
// 30 s per attempt.
const (
	defaultRetries     = 3
	defaultBackoffBase = 100 * time.Millisecond
	defaultBackoffMax  = 2 * time.Second
	defaultTimeout     = 30 * time.Second
)

// TransportError is a request that failed at the transport level — the
// network broke, the server answered 5xx, or every retry was exhausted.
// It unwraps to the last underlying error. API-level rejections (4xx)
// are returned as plain errors, not TransportErrors: retrying them is
// pointless and they indicate a caller bug, not a flaky room.
type TransportError struct {
	// Op and Path identify the request ("POST", "/v1/advance").
	Op   string
	Path string
	// Status is the last HTTP status seen, or 0 if no response arrived.
	Status int
	// Attempts is how many tries were made before giving up.
	Attempts int
	// Err is the last underlying error.
	Err error
}

// Error formats the failure.
func (e *TransportError) Error() string {
	return fmt.Sprintf("roomclient: %s %s failed after %d attempt(s): %v", e.Op, e.Path, e.Attempts, e.Err)
}

// Unwrap returns the last underlying error.
func (e *TransportError) Unwrap() error { return e.Err }

// Temporary marks the failure as an outage rather than a rejection:
// retrying the same command later may succeed. Callers can test for it
// structurally (errors.As against an interface with Temporary() bool)
// without depending on this package.
func (e *TransportError) Temporary() bool { return true }

// Option configures Dial.
type Option func(*Room)

// WithTimeout sets the per-attempt request timeout (default 30 s).
func WithTimeout(d time.Duration) Option {
	return func(r *Room) { r.timeout = d }
}

// WithRetries sets how many times a failed request is retried after the
// first attempt (default 3). Zero disables retrying — the pre-hardening
// behavior, kept for A/B robustness experiments.
func WithRetries(n int) Option {
	return func(r *Room) { r.retries = n }
}

// WithBackoff sets the exponential-backoff base and cap (defaults 100 ms
// and 2 s). The k-th retry waits base·2^k, capped, times a jitter factor.
func WithBackoff(base, max time.Duration) Option {
	return func(r *Room) { r.backoffBase, r.backoffMax = base, max }
}

// WithRetrySeed seeds the deterministic backoff jitter (default 1). Two
// clients with equal seeds issuing equal request sequences sleep for
// identical durations.
func WithRetrySeed(seed int64) Option {
	return func(r *Room) { r.rng = mathx.NewRand(seed) }
}

// Room is a remote machine room. Build with Dial.
type Room struct {
	base string
	hc   *http.Client

	size    int
	lastErr error

	snap      roomapi.Sensors
	snapValid bool

	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	timeout     time.Duration
	rng         *mathx.Rand
	sleep       func(time.Duration) // swapped out by tests
	clientID    string              // scopes idempotency tokens to this client
	seq         uint64              // idempotency-token counter
}

// clientCounter disambiguates clients dialed from the same process; the
// PID separates processes. Together they scope idempotency tokens so a
// freshly dialed client never collides with a predecessor's counter.
var clientCounter atomic.Uint64

var _ machineroom.Room = (*Room)(nil)

// Dial connects to a roomapi server and fetches the room metadata.
func Dial(baseURL string, client *http.Client, opts ...Option) (*Room, error) {
	if client == nil {
		// The per-attempt context deadline is the effective limit; the
		// client-level timeout is a backstop against body reads that
		// outlive the request context.
		client = &http.Client{Timeout: defaultTimeout}
	}
	parsed, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("roomclient: parse %q: %w", baseURL, err)
	}
	if parsed.Scheme == "" || parsed.Host == "" {
		return nil, fmt.Errorf("roomclient: base URL %q needs scheme and host", baseURL)
	}
	r := &Room{
		base:        strings.TrimRight(baseURL, "/"),
		hc:          client,
		retries:     defaultRetries,
		backoffBase: defaultBackoffBase,
		backoffMax:  defaultBackoffMax,
		timeout:     defaultTimeout,
		sleep:       time.Sleep,
		clientID:    fmt.Sprintf("%d-%d", os.Getpid(), clientCounter.Add(1)),
	}
	for _, opt := range opts {
		opt(r)
	}
	if r.rng == nil {
		r.rng = mathx.NewRand(1)
	}
	if r.retries < 0 || r.timeout <= 0 || r.backoffBase <= 0 || r.backoffMax < r.backoffBase {
		return nil, fmt.Errorf("roomclient: invalid retry policy (retries %d, timeout %v, backoff %v–%v)",
			r.retries, r.timeout, r.backoffBase, r.backoffMax)
	}
	var info roomapi.RoomInfo
	if err := r.get("/v1/room", &info); err != nil {
		return nil, err
	}
	if info.Machines <= 0 {
		return nil, fmt.Errorf("roomclient: server reports %d machines", info.Machines)
	}
	r.size = info.Machines
	return r, nil
}

// Err returns the first transport or API error since the previous Err
// call, and clears it. Transport failures satisfy
// errors.As(err, *(*TransportError)).
func (r *Room) Err() error {
	err := r.lastErr
	r.lastErr = nil
	return err
}

// ResetErr discards any latched error and forgets the cached sensor
// snapshot, so a controller that has decided to ride out a transport
// failure resumes with a clean slate instead of a poisoned run.
func (r *Room) ResetErr() {
	r.lastErr = nil
	r.invalidate()
}

// Size returns the number of machines.
func (r *Room) Size() int { return r.size }

// Time returns the room clock in seconds.
func (r *Room) Time() float64 {
	return r.sensors().TimeS
}

// SetLoad assigns a utilization to a machine.
func (r *Room) SetLoad(i int, util float64) error {
	r.invalidate()
	return r.post(fmt.Sprintf("/v1/machines/%d/load", i), roomapi.SetLoadRequest{Utilization: util}, nil)
}

// SetPower switches a machine on or off.
func (r *Room) SetPower(i int, on bool) error {
	r.invalidate()
	return r.post(fmt.Sprintf("/v1/machines/%d/power", i), roomapi.SetPowerRequest{On: on}, nil)
}

// IsOn reports a machine's power state.
func (r *Room) IsOn(i int) bool {
	snap := r.sensors()
	if i < 0 || i >= len(snap.Machines) {
		return false
	}
	return snap.Machines[i].On
}

// SetSetPoint moves the CRAC exhaust set point.
func (r *Room) SetSetPoint(tSPC float64) {
	r.invalidate()
	r.latch(r.post("/v1/crac/setpoint", roomapi.SetPointRequest{SetPointC: tSPC}, nil))
}

// SetPoint returns the CRAC exhaust set point.
func (r *Room) SetPoint() float64 { return r.sensors().CRAC.SetPointC }

// Supply returns the CRAC supply temperature.
func (r *Room) Supply() float64 { return r.sensors().CRAC.SupplyC }

// ReturnTemp returns the exhaust air temperature.
func (r *Room) ReturnTemp() float64 { return r.sensors().CRAC.ReturnC }

// MeasuredCPUTemp returns machine i's CPU temperature reading.
func (r *Room) MeasuredCPUTemp(i int) float64 {
	snap := r.sensors()
	if i < 0 || i >= len(snap.Machines) {
		return 0
	}
	return snap.Machines[i].CPUTempC
}

// MeasuredServerPower returns machine i's power-meter reading.
func (r *Room) MeasuredServerPower(i int) float64 {
	snap := r.sensors()
	if i < 0 || i >= len(snap.Machines) {
		return 0
	}
	return snap.Machines[i].PowerW
}

// MeasuredCRACPower returns the cooling unit's metered power.
func (r *Room) MeasuredCRACPower() float64 { return r.sensors().CRAC.PowerW }

// Step advances the room by one second.
func (r *Room) Step() { r.Run(1) }

// Run advances the room by the given number of seconds.
func (r *Room) Run(seconds float64) {
	if seconds <= 0 {
		return
	}
	r.invalidate()
	r.latch(r.post("/v1/advance", roomapi.AdvanceRequest{Seconds: seconds}, nil))
}

// sensors returns the current snapshot, fetching it if invalidated.
func (r *Room) sensors() roomapi.Sensors {
	if r.snapValid {
		return r.snap
	}
	var snap roomapi.Sensors
	if err := r.get("/v1/sensors", &snap); err != nil {
		r.latch(err)
		return roomapi.Sensors{Machines: make([]roomapi.MachineSensors, r.size)}
	}
	r.snap = snap
	r.snapValid = true
	return snap
}

func (r *Room) invalidate() { r.snapValid = false }

func (r *Room) latch(err error) {
	if err != nil && r.lastErr == nil {
		r.lastErr = err
	}
}

func (r *Room) get(path string, dst any) error {
	return r.do(http.MethodGet, path, nil, dst, 0)
}

func (r *Room) post(path string, body, dst any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("roomclient: encode %s: %w", path, err)
	}
	// One idempotency token per logical command, shared by its retries,
	// so a duplicate delivery replays instead of re-executing.
	r.seq++
	return r.do(http.MethodPost, path, payload, dst, r.seq)
}

// do issues one request with the retry policy: transport errors and 5xx
// responses retry with capped exponential backoff and deterministic
// jitter; 4xx responses fail immediately.
func (r *Room) do(method, path string, payload []byte, dst any, seq uint64) error {
	attempts := r.retries + 1
	var (
		lastErr    error
		lastStatus int
	)
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			r.sleep(r.backoffDelay(attempt))
		}
		status, retryable, err := r.attempt(method, path, payload, dst, seq)
		if err == nil {
			return nil
		}
		if !retryable {
			return fmt.Errorf("roomclient: %s: %w", path, err)
		}
		lastErr, lastStatus = err, status
	}
	return &TransportError{Op: method, Path: path, Status: lastStatus, Attempts: attempts, Err: lastErr}
}

// backoffDelay returns the pause before retry k (k ≥ 1): base·2^(k−1),
// capped, scaled by a jitter factor in [0.5, 1.5) drawn from the seeded
// stream.
func (r *Room) backoffDelay(k int) time.Duration {
	d := r.backoffBase << (k - 1)
	if d > r.backoffMax || d <= 0 {
		d = r.backoffMax
	}
	return time.Duration(float64(d) * r.rng.Uniform(0.5, 1.5))
}

// attempt performs a single HTTP exchange. Transport failures and 5xx
// responses are retryable; API rejections (4xx) are not.
func (r *Room) attempt(method, path string, payload []byte, dst any, seq uint64) (status int, retryable bool, _ error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, r.base+path, bytes.NewReader(payload))
	if err != nil {
		return 0, false, err
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(roomapi.SeqHeader, r.clientID+":"+strconv.FormatUint(seq, 10))
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return 0, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		return resp.StatusCode, true, fmt.Errorf("HTTP %d: %s", resp.StatusCode, apiErrorText(resp))
	}
	if resp.StatusCode >= 400 {
		return resp.StatusCode, false, fmt.Errorf("HTTP %d: %s", resp.StatusCode, apiErrorText(resp))
	}
	if dst == nil {
		return resp.StatusCode, false, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		// A truncated success body usually means the connection broke
		// mid-response; the request is safe to replay.
		return resp.StatusCode, true, fmt.Errorf("decode: %w", err)
	}
	return resp.StatusCode, false, nil
}

// apiErrorText extracts the server's error message, if any.
func apiErrorText(resp *http.Response) string {
	var apiErr roomapi.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Error != "" {
		return apiErr.Error
	}
	return "no error body"
}
