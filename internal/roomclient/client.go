// Package roomclient is the HTTP client for a machine room served by
// internal/roomapi. It implements machineroom.Room, so the profiling
// pipeline and controllers run against a remote room exactly as against
// the in-process simulator.
//
// The machineroom.Room interface is deliberately error-free on its read
// path (it mirrors how operators poll sensors), so transport failures are
// latched instead of returned: the first error since the last Err call is
// retained, reads return zero values after a failure, and callers must
// check Err after a control sequence. Sensor reads are served from a
// bulk snapshot fetched once per room timestamp — one GET per simulated
// second rather than one per machine — which matches the 1 Hz sampling
// the paper's meters provide anyway.
package roomclient

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"coolopt/internal/machineroom"
	"coolopt/internal/roomapi"
)

// Room is a remote machine room. Build with Dial.
type Room struct {
	base string
	hc   *http.Client

	size    int
	lastErr error

	snap      roomapi.Sensors
	snapValid bool
}

var _ machineroom.Room = (*Room)(nil)

// Dial connects to a roomapi server and fetches the room metadata.
func Dial(baseURL string, client *http.Client) (*Room, error) {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	parsed, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("roomclient: parse %q: %w", baseURL, err)
	}
	if parsed.Scheme == "" || parsed.Host == "" {
		return nil, fmt.Errorf("roomclient: base URL %q needs scheme and host", baseURL)
	}
	r := &Room{base: strings.TrimRight(baseURL, "/"), hc: client}
	var info roomapi.RoomInfo
	if err := r.get("/v1/room", &info); err != nil {
		return nil, err
	}
	if info.Machines <= 0 {
		return nil, fmt.Errorf("roomclient: server reports %d machines", info.Machines)
	}
	r.size = info.Machines
	return r, nil
}

// Err returns the first transport or API error since the previous Err
// call, and clears it.
func (r *Room) Err() error {
	err := r.lastErr
	r.lastErr = nil
	return err
}

// Size returns the number of machines.
func (r *Room) Size() int { return r.size }

// Time returns the room clock in seconds.
func (r *Room) Time() float64 {
	return r.sensors().TimeS
}

// SetLoad assigns a utilization to a machine.
func (r *Room) SetLoad(i int, util float64) error {
	r.invalidate()
	return r.post(fmt.Sprintf("/v1/machines/%d/load", i), roomapi.SetLoadRequest{Utilization: util}, nil)
}

// SetPower switches a machine on or off.
func (r *Room) SetPower(i int, on bool) error {
	r.invalidate()
	return r.post(fmt.Sprintf("/v1/machines/%d/power", i), roomapi.SetPowerRequest{On: on}, nil)
}

// IsOn reports a machine's power state.
func (r *Room) IsOn(i int) bool {
	snap := r.sensors()
	if i < 0 || i >= len(snap.Machines) {
		return false
	}
	return snap.Machines[i].On
}

// SetSetPoint moves the CRAC exhaust set point.
func (r *Room) SetSetPoint(tSPC float64) {
	r.invalidate()
	r.latch(r.post("/v1/crac/setpoint", roomapi.SetPointRequest{SetPointC: tSPC}, nil))
}

// SetPoint returns the CRAC exhaust set point.
func (r *Room) SetPoint() float64 { return r.sensors().CRAC.SetPointC }

// Supply returns the CRAC supply temperature.
func (r *Room) Supply() float64 { return r.sensors().CRAC.SupplyC }

// ReturnTemp returns the exhaust air temperature.
func (r *Room) ReturnTemp() float64 { return r.sensors().CRAC.ReturnC }

// MeasuredCPUTemp returns machine i's CPU temperature reading.
func (r *Room) MeasuredCPUTemp(i int) float64 {
	snap := r.sensors()
	if i < 0 || i >= len(snap.Machines) {
		return 0
	}
	return snap.Machines[i].CPUTempC
}

// MeasuredServerPower returns machine i's power-meter reading.
func (r *Room) MeasuredServerPower(i int) float64 {
	snap := r.sensors()
	if i < 0 || i >= len(snap.Machines) {
		return 0
	}
	return snap.Machines[i].PowerW
}

// MeasuredCRACPower returns the cooling unit's metered power.
func (r *Room) MeasuredCRACPower() float64 { return r.sensors().CRAC.PowerW }

// Step advances the room by one second.
func (r *Room) Step() { r.Run(1) }

// Run advances the room by the given number of seconds.
func (r *Room) Run(seconds float64) {
	if seconds <= 0 {
		return
	}
	r.invalidate()
	r.latch(r.post("/v1/advance", roomapi.AdvanceRequest{Seconds: seconds}, nil))
}

// sensors returns the current snapshot, fetching it if invalidated.
func (r *Room) sensors() roomapi.Sensors {
	if r.snapValid {
		return r.snap
	}
	var snap roomapi.Sensors
	if err := r.get("/v1/sensors", &snap); err != nil {
		r.latch(err)
		return roomapi.Sensors{Machines: make([]roomapi.MachineSensors, r.size)}
	}
	r.snap = snap
	r.snapValid = true
	return snap
}

func (r *Room) invalidate() { r.snapValid = false }

func (r *Room) latch(err error) {
	if err != nil && r.lastErr == nil {
		r.lastErr = err
	}
}

func (r *Room) get(path string, dst any) error {
	resp, err := r.hc.Get(r.base + path)
	if err != nil {
		return fmt.Errorf("roomclient: GET %s: %w", path, err)
	}
	return decodeResponse(path, resp, dst)
}

func (r *Room) post(path string, body, dst any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("roomclient: encode %s: %w", path, err)
	}
	resp, err := r.hc.Post(r.base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("roomclient: POST %s: %w", path, err)
	}
	return decodeResponse(path, resp, dst)
}

func decodeResponse(path string, resp *http.Response, dst any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var apiErr roomapi.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Error != "" {
			return fmt.Errorf("roomclient: %s: %s", path, apiErr.Error)
		}
		return fmt.Errorf("roomclient: %s: HTTP %d", path, resp.StatusCode)
	}
	if dst == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		return fmt.Errorf("roomclient: decode %s: %w", path, err)
	}
	return nil
}
