package roomclient

import (
	"math"
	"net/http/httptest"
	"testing"

	"coolopt/internal/profiling"
	"coolopt/internal/roomapi"
	"coolopt/internal/sim"
)

func newRemoteRoom(t *testing.T, seed int64) *Room {
	t.Helper()
	simRoom, err := sim.NewDefault(seed)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := roomapi.NewServer(simRoom)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	room, err := Dial(ts.URL, nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return room
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial("://bad", nil); err == nil {
		t.Fatal("bad URL accepted")
	}
	if _, err := Dial("relative/path", nil); err == nil {
		t.Fatal("relative URL accepted")
	}
	if _, err := Dial("http://127.0.0.1:1", nil); err == nil {
		t.Fatal("dead endpoint accepted")
	}
}

func TestRemoteRoomBasics(t *testing.T) {
	room := newRemoteRoom(t, 1)
	if room.Size() != 20 {
		t.Fatalf("Size = %d", room.Size())
	}
	if !room.IsOn(0) {
		t.Fatal("machine 0 off at boot")
	}
	start := room.Time()
	room.Run(30)
	if room.Time() < start+30 {
		t.Fatalf("Time = %v after Run(30) from %v", room.Time(), start)
	}
	if err := room.Err(); err != nil {
		t.Fatalf("latched error: %v", err)
	}
}

func TestRemoteControlAndSense(t *testing.T) {
	room := newRemoteRoom(t, 1)
	for i := 0; i < room.Size(); i++ {
		if err := room.SetLoad(i, 0.7); err != nil {
			t.Fatalf("SetLoad(%d): %v", i, err)
		}
	}
	room.SetSetPoint(25)
	room.Run(2500)
	if got := room.SetPoint(); got != 25 {
		t.Fatalf("SetPoint = %v", got)
	}
	if math.Abs(room.ReturnTemp()-25) > 0.5 {
		t.Fatalf("return %v far from set point", room.ReturnTemp())
	}
	// Loaded machines must read warm and draw realistic power.
	if temp := room.MeasuredCPUTemp(5); temp < 35 {
		t.Fatalf("CPU temp %v suspiciously cold", temp)
	}
	if p := room.MeasuredServerPower(5); p < 50 || p > 110 {
		t.Fatalf("server power %v outside sanity band", p)
	}
	if p := room.MeasuredCRACPower(); p <= 0 {
		t.Fatalf("CRAC power %v", p)
	}
	if err := room.Err(); err != nil {
		t.Fatalf("latched error: %v", err)
	}
}

func TestRemoteErrorsSurface(t *testing.T) {
	room := newRemoteRoom(t, 1)
	if err := room.SetLoad(99, 0.5); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
	if err := room.SetLoad(0, 7); err == nil {
		t.Fatal("overload accepted")
	}
	room.SetSetPoint(500) // rejected by the API → latched
	if err := room.Err(); err == nil {
		t.Fatal("insane set point did not latch an error")
	}
	if err := room.Err(); err != nil {
		t.Fatalf("Err did not clear: %v", err)
	}
}

// TestRemoteProfilingParity is the headline integration test: the full
// §IV-A profiling protocol executed over HTTP must produce essentially
// the same fitted model as the same protocol against the same room run
// locally.
func TestRemoteProfilingParity(t *testing.T) {
	remote := newRemoteRoom(t, 7)
	remoteRes, err := profiling.Run(profiling.Config{Sim: remote})
	if err != nil {
		t.Fatalf("remote profiling: %v", err)
	}
	if err := remote.Err(); err != nil {
		t.Fatalf("transport errors during profiling: %v", err)
	}

	local, err := sim.NewDefault(7)
	if err != nil {
		t.Fatal(err)
	}
	localRes, err := profiling.Run(profiling.Config{Sim: local})
	if err != nil {
		t.Fatalf("local profiling: %v", err)
	}

	rp, lp := remoteRes.Profile, localRes.Profile
	if relDiff(rp.W1, lp.W1) > 0.02 || relDiff(rp.W2, lp.W2) > 0.02 {
		t.Fatalf("power model diverged: remote (%v, %v) vs local (%v, %v)", rp.W1, rp.W2, lp.W1, lp.W2)
	}
	if relDiff(rp.CoolFactor, lp.CoolFactor) > 0.10 {
		t.Fatalf("cool factor diverged: %v vs %v", rp.CoolFactor, lp.CoolFactor)
	}
	for i := range rp.Machines {
		if relDiff(rp.Machines[i].Beta, lp.Machines[i].Beta) > 0.05 {
			t.Fatalf("machine %d β diverged: %v vs %v", i, rp.Machines[i].Beta, lp.Machines[i].Beta)
		}
	}
	if remoteRes.PowerFit.R2 < 0.99 {
		t.Fatalf("remote power fit R² = %v", remoteRes.PowerFit.R2)
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}
