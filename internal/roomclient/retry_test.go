package roomclient

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"coolopt/internal/roomapi"
	"coolopt/internal/sim"
)

// flakyHandler wraps a roomapi server and misbehaves according to a
// per-request script: "500" answers an injected error, "drop" executes
// the request but aborts the connection before the response lands
// (modeling a response lost in flight), "slow" stalls past the client
// timeout, and "" passes through. Requests beyond the script pass
// through.
type flakyHandler struct {
	mu     sync.Mutex
	inner  http.Handler
	script []string
	hits   int
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	mode := ""
	if f.hits < len(f.script) {
		mode = f.script[f.hits]
	}
	f.hits++
	f.mu.Unlock()

	switch mode {
	case "500":
		http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
	case "slow":
		time.Sleep(200 * time.Millisecond)
		http.Error(w, `{"error":"slow"}`, http.StatusServiceUnavailable)
	case "drop":
		rec := httptest.NewRecorder()
		f.inner.ServeHTTP(rec, r) // the room DID execute the command
		panic(http.ErrAbortHandler)
	default:
		f.inner.ServeHTTP(w, r)
	}
}

func (f *flakyHandler) hitCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits
}

// dialFlaky serves a simulated room behind the given fault script and
// dials it with fast test-friendly retries, recording backoff sleeps.
func dialFlaky(t *testing.T, script []string, opts ...Option) (*Room, *flakyHandler, *[]time.Duration) {
	t.Helper()
	simRoom, err := sim.NewDefault(1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := roomapi.NewServer(simRoom)
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyHandler{inner: srv, script: script}
	ts := httptest.NewServer(flaky)
	t.Cleanup(ts.Close)

	all := append([]Option{
		WithTimeout(100 * time.Millisecond),
		WithBackoff(time.Millisecond, 8*time.Millisecond),
	}, opts...)
	room, err := Dial(ts.URL, nil, all...)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	var sleeps []time.Duration
	room.sleep = func(d time.Duration) { sleeps = append(sleeps, d) }
	return room, flaky, &sleeps
}

func TestRetriesRecoverFrom500s(t *testing.T) {
	// Dial's GET /v1/room is request 1; the next read hits two 500s.
	room, flaky, sleeps := dialFlaky(t, []string{"", "500", "500"})
	if got := room.Time(); got != 0 {
		t.Fatalf("Time = %v", got)
	}
	if err := room.Err(); err != nil {
		t.Fatalf("latched error after recovered retries: %v", err)
	}
	if got := flaky.hitCount(); got != 4 { // dial + 2 failures + success
		t.Fatalf("server saw %d requests, want 4", got)
	}
	if len(*sleeps) != 2 {
		t.Fatalf("recorded %d backoff sleeps, want 2", len(*sleeps))
	}
}

func TestRetriesRecoverFromTimeout(t *testing.T) {
	room, _, _ := dialFlaky(t, []string{"", "slow"})
	room.Run(30)
	if err := room.Err(); err != nil {
		t.Fatalf("latched error after timeout+retry: %v", err)
	}
	if got := room.Time(); got < 30 {
		t.Fatalf("Time = %v after Run(30)", got)
	}
}

func TestBoundedRetriesAndTypedError(t *testing.T) {
	room, flaky, _ := dialFlaky(t, []string{"", "500", "500", "500", "500", "500", "500"},
		WithRetries(2))
	before := flaky.hitCount()
	room.Run(10)
	err := room.Err()
	if err == nil {
		t.Fatal("no error after exhausted retries")
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("error %T is not a TransportError: %v", err, err)
	}
	if te.Attempts != 3 || te.Status != 500 || te.Op != "POST" || te.Path != "/v1/advance" {
		t.Fatalf("TransportError = %+v", te)
	}
	if got := flaky.hitCount() - before; got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestNoRetriesOptionKeepsLegacyBehavior(t *testing.T) {
	room, flaky, _ := dialFlaky(t, []string{"", "500"}, WithRetries(0))
	before := flaky.hitCount()
	room.Run(10)
	if err := room.Err(); err == nil {
		t.Fatal("single 500 did not surface with retries disabled")
	}
	if got := flaky.hitCount() - before; got != 1 {
		t.Fatalf("server saw %d attempts, want 1", got)
	}
}

func TestAPIErrorsAreNotRetried(t *testing.T) {
	room, flaky, _ := dialFlaky(t, nil)
	before := flaky.hitCount()
	err := room.SetLoad(99, 0.5) // out of range: a 4xx, caller bug
	if err == nil {
		t.Fatal("bad machine id accepted")
	}
	var te *TransportError
	if errors.As(err, &te) {
		t.Fatalf("API rejection surfaced as TransportError: %v", err)
	}
	if got := flaky.hitCount() - before; got != 1 {
		t.Fatalf("server saw %d attempts for a 4xx, want 1", got)
	}
}

func TestResetErrRecoversMidRun(t *testing.T) {
	room, _, _ := dialFlaky(t, []string{"", "500"}, WithRetries(0))
	room.Run(10) // fails and latches; the latch would poison the run
	room.ResetErr()
	room.Run(10) // server healthy again
	if err := room.Err(); err != nil {
		t.Fatalf("error after ResetErr and healthy traffic: %v", err)
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	script := []string{"", "500", "500", "500", "500", "500", "500"}
	var runs [2][]time.Duration
	for i := range runs {
		room, _, sleeps := dialFlaky(t, script, WithRetrySeed(42))
		room.Run(10)
		if err := room.Err(); err == nil {
			t.Fatal("expected exhausted retries")
		}
		runs[i] = *sleeps
	}
	if len(runs[0]) != 3 {
		t.Fatalf("recorded %d sleeps, want 3", len(runs[0]))
	}
	for k := range runs[0] {
		if runs[0][k] != runs[1][k] {
			t.Fatalf("sleep %d differs across identical runs: %v vs %v", k, runs[0][k], runs[1][k])
		}
	}
	// Exponential envelope with jitter in [0.5, 1.5): delay k sits in
	// [0.5, 1.5)·min(base·2^k, cap).
	base := time.Millisecond
	for k, d := range runs[0] {
		lo := time.Duration(float64(base<<k) * 0.5)
		hi := time.Duration(float64(base<<k) * 1.5)
		if d < lo || d >= hi {
			t.Fatalf("sleep %d = %v outside [%v, %v)", k, d, lo, hi)
		}
	}
}

func TestRetriedAdvanceIsIdempotent(t *testing.T) {
	// The response to the first advance is lost in flight AFTER the
	// room executed it; the retried POST re-presents the same sequence
	// token and must not advance the room again.
	room, _, _ := dialFlaky(t, []string{"", "drop"})
	room.Run(30)
	if err := room.Err(); err != nil {
		t.Fatalf("latched error: %v", err)
	}
	got := room.Time()
	if got != 30 {
		t.Fatalf("room advanced to %v s after a retried 30 s advance, want exactly 30", got)
	}
}

func TestRetriedPowerCommandIsIdempotent(t *testing.T) {
	room, _, _ := dialFlaky(t, []string{"", "drop"})
	if err := room.SetPower(3, false); err != nil {
		t.Fatalf("SetPower through a dropped response: %v", err)
	}
	if room.IsOn(3) {
		t.Fatal("machine 3 still on")
	}
	if err := room.Err(); err != nil {
		t.Fatalf("latched error: %v", err)
	}
}
