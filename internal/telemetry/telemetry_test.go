package telemetry

import (
	"math"
	"testing"

	"coolopt/internal/mathx"
)

func TestTempSensorValidation(t *testing.T) {
	rng := mathx.NewRand(1)
	if _, err := NewTempSensor(nil, 0.1, 1); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := NewTempSensor(rng, -1, 1); err == nil {
		t.Fatal("negative noise accepted")
	}
	if _, err := NewTempSensor(rng, 0.1, -1); err == nil {
		t.Fatal("negative resolution accepted")
	}
}

func TestTempSensorNoiseless(t *testing.T) {
	s, err := NewTempSensor(mathx.NewRand(1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Read(55.37); got != 55.37 {
		t.Fatalf("noiseless read = %v, want 55.37", got)
	}
}

func TestTempSensorQuantizes(t *testing.T) {
	s, err := NewTempSensor(mathx.NewRand(1), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Read(55.4); got != 55 {
		t.Fatalf("quantized read = %v, want 55", got)
	}
	if got := s.Read(55.6); got != 56 {
		t.Fatalf("quantized read = %v, want 56", got)
	}
	if got := s.Read(-2.7); got != -3 {
		t.Fatalf("quantized negative read = %v, want -3", got)
	}
}

func TestTempSensorNoiseIsUnbiased(t *testing.T) {
	s, err := NewTempSensor(mathx.NewRand(3), 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	const trueC = 60.0
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.Read(trueC)
	}
	if mean := sum / n; math.Abs(mean-trueC) > 0.05 {
		t.Fatalf("mean reading %v deviates from %v", mean, trueC)
	}
}

func TestPowerMeterValidation(t *testing.T) {
	rng := mathx.NewRand(1)
	if _, err := NewPowerMeter(nil, 0, 0.1, 0.1); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := NewPowerMeter(rng, -1.5, 0.1, 0.1); err == nil {
		t.Fatal("gain ≤ -1 accepted")
	}
	if _, err := NewPowerMeter(rng, 0, -0.1, 0.1); err == nil {
		t.Fatal("negative noise accepted")
	}
	if _, err := NewPowerMeter(rng, 0, 0.1, -0.1); err == nil {
		t.Fatal("negative resolution accepted")
	}
}

func TestPowerMeterGain(t *testing.T) {
	m, err := NewPowerMeter(mathx.NewRand(1), 0.02, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Read(100); !mathx.ApproxEqual(got, 102, 1e-9) {
		t.Fatalf("read = %v, want 102", got)
	}
}

func TestPowerMeterNeverNegative(t *testing.T) {
	m, err := NewPowerMeter(mathx.NewRand(1), 0, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if got := m.Read(0.1); got < 0 {
			t.Fatalf("negative power reading %v", got)
		}
	}
}

func TestTraceAppendAndValues(t *testing.T) {
	var tr Trace
	tr.Append(0, 1)
	tr.Append(1, 2)
	tr.Append(2, 3)
	got := tr.Values()
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
}

func TestTraceTail(t *testing.T) {
	var tr Trace
	if got := tr.Tail(5); got != 0 {
		t.Fatalf("empty Tail = %v, want 0", got)
	}
	for i := 0; i < 10; i++ {
		tr.Append(float64(i), float64(i))
	}
	if got := tr.Tail(2); !mathx.ApproxEqual(got, 8.5, 1e-12) {
		t.Fatalf("Tail(2) = %v, want 8.5", got)
	}
	if got := tr.Tail(100); !mathx.ApproxEqual(got, 4.5, 1e-12) {
		t.Fatalf("Tail(100) = %v, want 4.5", got)
	}
}

func TestTraceSmoothed(t *testing.T) {
	var tr Trace
	tr.Append(0, 0)
	tr.Append(1, 10)
	out, err := tr.Smoothed(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || !mathx.ApproxEqual(out[1], 5, 1e-12) {
		t.Fatalf("Smoothed = %v, want [0 5]", out)
	}
	if _, err := tr.Smoothed(0); err == nil {
		t.Fatal("invalid alpha accepted")
	}
}
