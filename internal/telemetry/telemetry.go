// Package telemetry models the measurement chain of the paper's testbed:
// Watts up Pro power meters sampled at 1 Hz and lm-sensors CPU temperature
// readings. Both add noise and quantization to the simulator's ground
// truth, so the profiling pipeline has to work from realistic data — the
// paper smooths both signals with a low-pass filter before fitting and
// plotting (Figs. 2–3).
package telemetry

import (
	"fmt"

	"coolopt/internal/mathx"
)

// TempSensor models an lm-sensors CPU temperature readout: additive
// Gaussian noise followed by quantization to the sensor's resolution.
type TempSensor struct {
	rng *mathx.Rand
	// NoiseStdDev is the Gaussian noise standard deviation in °C.
	noise float64
	// resolution is the quantization step in °C (lm-sensors typically
	// reports whole degrees).
	resolution float64
}

// NewTempSensor builds a sensor; resolution 0 disables quantization.
func NewTempSensor(rng *mathx.Rand, noiseStdDev, resolution float64) (*TempSensor, error) {
	if rng == nil {
		return nil, fmt.Errorf("telemetry: nil rng")
	}
	if noiseStdDev < 0 {
		return nil, fmt.Errorf("telemetry: noise stddev %v must be non-negative", noiseStdDev)
	}
	if resolution < 0 {
		return nil, fmt.Errorf("telemetry: resolution %v must be non-negative", resolution)
	}
	return &TempSensor{rng: rng, noise: noiseStdDev, resolution: resolution}, nil
}

// Clone returns a sensor with identical calibration (noise level and
// resolution) driven by its own random stream.
func (s *TempSensor) Clone(rng *mathx.Rand) *TempSensor {
	return &TempSensor{rng: rng, noise: s.noise, resolution: s.resolution}
}

// Read returns a noisy, quantized measurement of the true temperature.
func (s *TempSensor) Read(trueC float64) float64 {
	v := trueC
	if s.noise > 0 {
		v += s.rng.Normal(0, s.noise)
	}
	return quantize(v, s.resolution)
}

// PowerMeter models a Watts up Pro: a small proportional error plus
// additive noise, sampled once per second by the experiment drivers.
type PowerMeter struct {
	rng *mathx.Rand
	// gainErr is the fixed per-meter calibration gain (for example
	// 1.01 for a meter reading 1 % high).
	gainErr float64
	// noise is the additive Gaussian noise standard deviation in Watts.
	noise float64
	// resolution is the quantization step in Watts (the Watts up Pro
	// reports tenths of a Watt).
	resolution float64
}

// NewPowerMeter builds a meter with the given calibration gain error (0.01
// means reads 1 % high on average; each meter should get its own small
// draw), additive noise, and resolution.
func NewPowerMeter(rng *mathx.Rand, gainErr, noiseStdDev, resolution float64) (*PowerMeter, error) {
	if rng == nil {
		return nil, fmt.Errorf("telemetry: nil rng")
	}
	if gainErr <= -1 {
		return nil, fmt.Errorf("telemetry: gain error %v must exceed -1", gainErr)
	}
	if noiseStdDev < 0 {
		return nil, fmt.Errorf("telemetry: noise stddev %v must be non-negative", noiseStdDev)
	}
	if resolution < 0 {
		return nil, fmt.Errorf("telemetry: resolution %v must be non-negative", resolution)
	}
	return &PowerMeter{rng: rng, gainErr: gainErr, noise: noiseStdDev, resolution: resolution}, nil
}

// Clone returns a meter with identical calibration (gain error, noise
// level, resolution) driven by its own random stream.
func (m *PowerMeter) Clone(rng *mathx.Rand) *PowerMeter {
	return &PowerMeter{rng: rng, gainErr: m.gainErr, noise: m.noise, resolution: m.resolution}
}

// Read returns a noisy measurement of the true power in Watts.
func (m *PowerMeter) Read(trueW float64) float64 {
	v := trueW * (1 + m.gainErr)
	if m.noise > 0 {
		v += m.rng.Normal(0, m.noise)
	}
	if v < 0 {
		v = 0
	}
	return quantize(v, m.resolution)
}

func quantize(v, step float64) float64 {
	if step <= 0 {
		return v
	}
	n := v / step
	if n >= 0 {
		return step * float64(int64(n+0.5))
	}
	return step * float64(int64(n-0.5))
}

// Sample is one timestamped measurement.
type Sample struct {
	// TimeS is the simulation time in seconds.
	TimeS float64
	// Value is the measured quantity.
	Value float64
}

// Trace records a time series of samples.
type Trace struct {
	Name    string
	Samples []Sample
}

// Append records one sample.
func (t *Trace) Append(timeS, value float64) {
	t.Samples = append(t.Samples, Sample{TimeS: timeS, Value: value})
}

// Values returns the sample values in order.
func (t *Trace) Values() []float64 {
	out := make([]float64, len(t.Samples))
	for i, s := range t.Samples {
		out[i] = s.Value
	}
	return out
}

// Tail returns the mean of the last n samples (or of all samples when
// fewer exist); experiment drivers use it as the steady-state estimate.
func (t *Trace) Tail(n int) float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	if n > len(t.Samples) {
		n = len(t.Samples)
	}
	vals := make([]float64, 0, n)
	for _, s := range t.Samples[len(t.Samples)-n:] {
		vals = append(vals, s.Value)
	}
	return mathx.Mean(vals)
}

// Smoothed returns a low-pass filtered copy of the trace values (the
// paper's plotting pipeline).
func (t *Trace) Smoothed(alpha float64) ([]float64, error) {
	return mathx.Smooth(t.Values(), alpha)
}
