package controller

import (
	"sync"
	"testing"

	"coolopt"
	"coolopt/internal/mathx"
	"coolopt/internal/trace"
)

var (
	sysOnce sync.Once
	sysInst *coolopt.System
	sysErr  error
)

func sharedSystem(t *testing.T) *coolopt.System {
	t.Helper()
	sysOnce.Do(func() {
		sysInst, sysErr = coolopt.NewSystem()
	})
	if sysErr != nil {
		t.Fatalf("NewSystem: %v", sysErr)
	}
	return sysInst
}

func steadyTrace(t *testing.T, load float64) *trace.Trace {
	t.Helper()
	tr, err := trace.Steps(1e6, load)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunValidation(t *testing.T) {
	sys := sharedSystem(t)
	tr := steadyTrace(t, 0.5)
	if _, err := Run(Config{}, tr, 100); err == nil {
		t.Fatal("nil system accepted")
	}
	if _, err := Run(Config{Sys: sys}, nil, 100); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := Run(Config{Sys: sys}, tr, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := Run(Config{Sys: sys, Hysteresis: 2}, tr, 100); err == nil {
		t.Fatal("bad hysteresis accepted")
	}
	if _, err := Run(Config{Sys: sys, ReplanIntervalS: 0.5}, tr, 100); err == nil {
		t.Fatal("sub-second replan interval accepted")
	}
	if _, err := Run(Config{Sys: sys, GuardBandC: -1}, tr, 100); err == nil {
		t.Fatal("negative guard band accepted")
	}
}

func TestSteadyDemandPlansOnceAndCarriesLoad(t *testing.T) {
	sys := sharedSystem(t)
	tr := steadyTrace(t, 0.5)
	res, err := Run(Config{Sys: sys, ReplanIntervalS: 1e9}, tr, 600)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Replans != 1 {
		t.Fatalf("replans = %d, want 1 for steady demand", res.Replans)
	}
	if !mathx.ApproxEqual(res.CarriedLoadS, res.DemandLoadS, 1e-6) {
		t.Fatalf("carried %.6f ≠ demanded %.6f unit·s", res.CarriedLoadS, res.DemandLoadS)
	}
	if res.EnergyJ <= 0 || res.AvgPowerW <= 0 {
		t.Fatalf("no energy recorded: %+v", res)
	}
}

func TestStepDemandTriggersReplan(t *testing.T) {
	sys := sharedSystem(t)
	tr, err := trace.Steps(300, 0.3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Sys: sys, ReplanIntervalS: 1e9}, tr, 600)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Replans != 2 {
		t.Fatalf("replans = %d, want 2 (initial + step)", res.Replans)
	}
}

func TestHysteresisSuppressesSmallMoves(t *testing.T) {
	sys := sharedSystem(t)
	tr, err := trace.Steps(100, 0.50, 0.51, 0.50, 0.515, 0.505)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Sys: sys, ReplanIntervalS: 1e9, Hysteresis: 0.05}, tr, 500)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Replans != 1 {
		t.Fatalf("replans = %d, want 1 with wide hysteresis", res.Replans)
	}
}

func TestPeriodicReplanInterval(t *testing.T) {
	sys := sharedSystem(t)
	tr := steadyTrace(t, 0.4)
	res, err := Run(Config{Sys: sys, ReplanIntervalS: 100}, tr, 450)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Initial plan + re-plans at ~100, 200, 300, 400 s.
	if res.Replans < 4 || res.Replans > 6 {
		t.Fatalf("replans = %d, want ≈5", res.Replans)
	}
}

func TestDiurnalTraceStaysWithinConstraints(t *testing.T) {
	sys := sharedSystem(t)
	tr, err := trace.Diurnal(4000, 200, 0.55, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Sys: sys}, tr, 4000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The transient regime allows brief excursions (the paper's steady
	// analysis does not cover them); the guard must keep them rare.
	if res.ViolationS > 0.02*res.DurationS {
		t.Fatalf("CPU above T_max for %.0f s of %.0f s", res.ViolationS, res.DurationS)
	}
	if !mathx.ApproxEqual(res.CarriedLoadS, res.DemandLoadS, 1e-6) {
		t.Fatalf("carried %.6f ≠ demanded %.6f unit·s", res.CarriedLoadS, res.DemandLoadS)
	}
	if res.Replans < 10 {
		t.Fatalf("replans = %d, expected the diurnal swing to force many", res.Replans)
	}
}

func TestOptimalPolicyBeatsStaticPeakProvisioning(t *testing.T) {
	// Compare the re-planning optimizer against the naive operator that
	// provisions once for the peak (even allocation, fixed cold supply)
	// and never touches anything.
	sys := sharedSystem(t)
	tr, err := trace.Diurnal(3000, 150, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	optimal, err := Run(Config{Sys: sys}, tr, 3000)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run(Config{
		Sys:             sys,
		Method:          coolopt.EvenNoACNoCons,
		ReplanIntervalS: 1e9,
		Hysteresis:      1, // never re-plan on demand moves
	}, steadyTrace(t, 0.8 /* provisioned for peak */), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if optimal.AvgPowerW >= static.AvgPowerW {
		t.Fatalf("re-planning optimal %.0f W not below static peak provisioning %.0f W",
			optimal.AvgPowerW, static.AvgPowerW)
	}
}

func TestServedLoadTrailsByBootTransients(t *testing.T) {
	// A demand step that powers extra machines on must show a served
	// deficit bounded by the boot time, never a surplus.
	sys := sharedSystem(t)
	tr, err := trace.Steps(400, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Sys: sys, ReplanIntervalS: 1e9}, tr, 800)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedLoadS > res.CarriedLoadS+1e-6 {
		t.Fatalf("served %.1f exceeds planned %.1f", res.ServedLoadS, res.CarriedLoadS)
	}
	deficit := res.CarriedLoadS - res.ServedLoadS
	// At most ~16 machines booting for 60 s each.
	if deficit > 16*60 {
		t.Fatalf("served deficit %.0f unit·s implausibly large", deficit)
	}
	if deficit <= 0 {
		t.Fatal("expected a boot-transient deficit after the demand step")
	}
}
