package controller

import (
	"context"
	"errors"
	"fmt"
	"math"

	"coolopt"
	"coolopt/internal/machineroom"
	"coolopt/internal/mathx"
	"coolopt/internal/trace"
	"coolopt/internal/units"
)

// errTracker is the optional transport-health surface of a room client:
// internal/roomclient implements it. The controller polls Err after each
// command batch and, unless StrictErrors is set, absorbs the failure and
// clears the latch so the next tick gets a fresh try.
type errTracker interface {
	Err() error
	ResetErr()
}

// transient reports whether an actuation error is a transport outage
// (structurally: it carries Temporary() bool, as roomclient's
// TransportError does) rather than the room refusing the command.
func transient(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

// dropoutFloorC is the reading below which a CPU sensor on a powered-on
// machine is physically implausible (machine-room air never gets close).
const dropoutFloorC = 5.0

// setPointToleranceC is the command/read-back mismatch beyond which the
// CRAC is considered to not have taken a set-point command.
const setPointToleranceC = 0.3

// harness carries one controller run's mutable state.
type harness struct {
	cfg     Config
	sys     *coolopt.System
	room    machineroom.Room
	truth   TruthSource
	eng     *coolopt.Engine
	profile *coolopt.Profile
	res     *Result

	start        float64 // room clock at run start
	currentPlan  *coolopt.Plan
	plannedLoad  []float64 // per-machine load of the current plan
	demand       float64   // demand level the current plan was built for
	sinceReplanS float64
	replanIndex  int
	guardActive  bool
	stallS       int

	// Sensor plausibility state, indexed by machine.
	lastRaw     []float64
	lastGood    []float64
	haveGood    []bool
	repeats     []int
	rejects     []int
	quarantined []bool

	// Machine-failure state.
	failed    []bool
	offStreak []int

	// CRAC watchdog state.
	cmdSetPoint    float64
	cmdValid       bool
	mismatchStreak int
	matchStreak    int
	safeMode       bool
	safeFloorSP    float64
	cracSuspect    bool

	// reapply asks the next loop iteration to push the current plan
	// again: the last apply was cut short by a transport outage.
	reapply bool

	// recoveryUntil is the absolute room-clock time until which thermal
	// violations are attributed to fault recovery.
	recoveryUntil float64

	// hotspot caches this tick's filtered hottest reading so the filter
	// state machines advance exactly once per tick.
	hotspot float64
}

func newHarness(cfg Config) *harness {
	n := cfg.Sys.Size()
	return &harness{
		cfg:     cfg,
		sys:     cfg.Sys,
		room:    cfg.Room,
		truth:   cfg.Truth,
		eng:     cfg.Engine,
		profile: cfg.Sys.Profile(),
		res:     &Result{LastViolationTimeS: -1},
		demand:  -1, // force an initial plan

		plannedLoad: make([]float64, n),
		lastRaw:     make([]float64, n),
		lastGood:    make([]float64, n),
		haveGood:    make([]bool, n),
		repeats:     make([]int, n),
		rejects:     make([]int, n),
		quarantined: make([]bool, n),
		failed:      make([]bool, n),
		offStreak:   make([]int, n),
	}
}

func (h *harness) event(kind string, machine int, detail string) {
	h.res.Events = append(h.res.Events, Event{
		TimeS:   h.room.Time(),
		Kind:    kind,
		Machine: machine,
		Detail:  detail,
	})
}

// degrade records a degradation event and opens the recovery window.
func (h *harness) degrade(kind string, machine int, detail string) {
	h.event(kind, machine, detail)
	if until := h.room.Time() + h.cfg.RecoveryWindowS; until > h.recoveryUntil {
		h.recoveryUntil = until
	}
}

func (h *harness) run(tr *trace.Trace, durationS float64) (*Result, error) {
	h.start = h.room.Time()
	h.res.DurationS = durationS
	n := float64(h.sys.Size())

	for h.room.Time()-h.start < durationS {
		now := h.room.Time() - h.start
		demand := tr.At(now)
		moved := demand > h.demand+h.cfg.Hysteresis || demand < h.demand-h.cfg.Hysteresis
		if h.currentPlan == nil || moved || h.reapply || h.sinceReplanS >= h.cfg.ReplanIntervalS {
			periodic := h.currentPlan != nil && !moved && !h.reapply
			if err := h.replan(demand, periodic); err != nil {
				return nil, err
			}
		}

		before := h.room.Time()
		h.room.Step()
		if err := h.pollTransport(); err != nil {
			return nil, err
		}
		dt := h.room.Time() - before
		if dt <= 0 {
			// The clock refused to advance — a remote room that stayed
			// unreachable through all retries. Burn a stall tick and try
			// again rather than spinning forever.
			h.stallS++
			if h.stallS > h.cfg.MaxStallS {
				return nil, fmt.Errorf("%w after %d attempts at t=%.0f s",
					ErrStalled, h.stallS, h.room.Time())
			}
			continue
		}
		h.stallS = 0
		if dt > 10 {
			// A transport outage can make a remote room briefly report a
			// zero clock; when it heals the delta looks enormous. A 1 s
			// Step cannot legitimately advance the room that far, so
			// integrate the tick as one second instead of trusting the
			// glitched delta.
			dt = 1
		}
		h.sinceReplanS += dt

		h.account(demand, n, dt)
		h.hotspot = h.filteredHottest()
		h.observe(dt)

		if err := h.detectFailures(demand); err != nil {
			return nil, err
		}
		if err := h.watchCRAC(demand); err != nil {
			return nil, err
		}
		h.thermalGuard()
	}

	h.res.AvgPowerW = h.res.EnergyJ / durationS
	return h.res, nil
}

// account integrates energy and load bookkeeping over one tick.
func (h *harness) account(demand, n, dt float64) {
	if h.truth != nil {
		h.res.EnergyJ += h.truth.TrueTotalPower() * dt
	} else {
		var total float64
		for i := 0; i < h.sys.Size(); i++ {
			total += h.room.MeasuredServerPower(i)
		}
		h.res.EnergyJ += (total + h.room.MeasuredCRACPower()) * dt
	}
	h.res.CarriedLoadS += h.currentPlan.TotalLoad() * dt
	h.res.DemandLoadS += demand * n * dt
	if h.truth != nil {
		for i := 0; i < h.sys.Size(); i++ {
			h.res.ServedLoadS += h.truth.Load(i) * dt
		}
	} else {
		// No ground truth: credit the planned share of machines that
		// report powered on.
		for _, i := range h.currentPlan.On {
			if h.room.IsOn(i) {
				h.res.ServedLoadS += h.plannedLoad[i] * dt
			}
		}
	}
	if h.safeMode {
		h.res.SafeModeS += dt
	}
}

// observe updates thermal maxima and violation clocks from ground truth
// when available, else from the filtered measurements.
func (h *harness) observe(dt float64) {
	hottest := h.hotspot
	if h.truth != nil {
		hottest = h.truth.MaxTrueCPUTemp()
	}
	if hottest > h.res.MaxCPUC {
		h.res.MaxCPUC = hottest
	}
	if hottest > h.profile.TMaxC {
		h.res.ViolationS += dt
		h.res.LastViolationTimeS = h.room.Time() - h.start
		if h.room.Time() > h.recoveryUntil {
			h.res.ViolationOutsideRecoveryS += dt
		}
	}
}

// filteredHottest returns the hottest plausible CPU reading across
// powered-on machines, substituting the model's prediction for readings
// the plausibility filter rejects.
func (h *harness) filteredHottest() float64 {
	supply := h.room.Supply()
	maxT := -1e9
	for i := 0; i < h.sys.Size(); i++ {
		if h.failed[i] || !h.room.IsOn(i) {
			continue
		}
		pred := float64(h.profile.CPUTemp(i, h.plannedLoad[i], units.Celsius(supply)))
		raw := h.room.MeasuredCPUTemp(i)
		value := raw
		if !h.cfg.DisableSensorFilter {
			value = h.filterReading(i, raw, pred)
		}
		if value > maxT {
			maxT = value
		}
	}
	return maxT
}

// filterReading applies the plausibility filter to one sensor sample and
// returns the value the controller should act on.
func (h *harness) filterReading(i int, raw, pred float64) float64 {
	// Track exact repeats. The sensors quantize, so repeats alone are
	// normal at steady state; a stuck verdict additionally requires the
	// frozen value to disagree with the model.
	if mathx.Same(raw, h.lastRaw[i]) {
		h.repeats[i]++
	} else {
		h.repeats[i] = 0
		h.lastRaw[i] = raw
	}

	if h.quarantined[i] {
		// A quarantined sensor earns its way back by agreeing with the
		// model — not with its own last good reading, which may predate
		// the fault by minutes.
		if raw >= dropoutFloorC && math.Abs(raw-pred) <= h.cfg.PlausibilityBandC {
			h.quarantined[i] = false
			h.rejects[i] = 0
			h.lastGood[i] = raw
			h.haveGood[i] = true
			h.event("sensor_recovered", i, fmt.Sprintf("reading %.1f °C plausible again", raw))
			return raw
		}
		h.res.SensorRejects++
		return pred
	}

	reject := ""
	switch {
	case raw < dropoutFloorC:
		reject = "dropout"
	case h.haveGood[i] && raw-h.lastGood[i] > h.cfg.SpikeStepC:
		// Upward only: thermal mass bounds how fast a CPU can heat in
		// one second, but a crash or power-off can cool a reading fast.
		reject = "spike"
	case h.repeats[i] >= h.cfg.StuckTicks && math.Abs(raw-pred) > h.cfg.PlausibilityBandC:
		reject = "stuck"
	}

	if reject == "" {
		h.rejects[i] = 0
		h.lastGood[i] = raw
		h.haveGood[i] = true
		return raw
	}

	h.res.SensorRejects++
	h.rejects[i]++
	if h.rejects[i] >= h.cfg.QuarantineAfter && !h.quarantined[i] {
		h.quarantined[i] = true
		h.res.SensorsQuarantined++
		h.degrade("sensor_quarantined", i,
			fmt.Sprintf("%s: reading %.1f °C vs model %.1f °C", reject, raw, pred))
	}
	return pred
}

// detectFailures watches planned-on machines for power-state loss and
// re-plans around machines that stay down.
func (h *harness) detectFailures(demand float64) error {
	if h.cfg.DisableFailover {
		return nil
	}
	newlyFailed := false
	for _, i := range h.currentPlan.On {
		if h.failed[i] {
			continue
		}
		if h.room.IsOn(i) {
			h.offStreak[i] = 0
			continue
		}
		h.offStreak[i]++
		if h.offStreak[i] >= h.cfg.FailAfter {
			h.markFailed(i, fmt.Sprintf("off for %d consecutive reads", h.offStreak[i]))
			newlyFailed = true
		}
	}
	if !newlyFailed {
		return nil
	}
	return h.replan(demand, false)
}

// probeFailed quietly offers failed machines a power-on. A machine whose
// fault cleared accepts and rejoins the planning pool; one still dead
// refuses without generating a fresh failure event or recovery window.
func (h *harness) probeFailed() {
	for i := range h.failed {
		if !h.failed[i] {
			continue
		}
		if err := h.room.SetPower(i, true); err == nil {
			h.failed[i] = false
			h.event("machine_recovered", i, "accepted power-on probe")
		}
	}
}

func (h *harness) markFailed(i int, detail string) {
	h.failed[i] = true
	h.offStreak[i] = 0
	h.res.MachineFailures++
	h.degrade("machine_failed", i, detail)
}

// watchCRAC compares the commanded set point against the read-back and
// trips safe mode when the CRAC stops answering.
func (h *harness) watchCRAC(demand float64) error {
	if h.cfg.DisableSafeMode || !h.cmdValid {
		return nil
	}
	if math.Abs(h.room.SetPoint()-h.cmdSetPoint) > setPointToleranceC {
		h.mismatchStreak++
		h.matchStreak = 0
	} else {
		h.mismatchStreak = 0
		h.matchStreak++
		h.cracSuspect = false
	}

	// A few seconds of mismatch already makes the CRAC suspect. Open the
	// recovery window now, before the full trip: thermal drift between
	// the first ignored command and the safe-mode entry is part of the
	// fault's recovery story, not a steady-state violation.
	if !h.cracSuspect && h.mismatchStreak >= 3 {
		h.cracSuspect = true
		h.degrade("crac_suspect", -1, fmt.Sprintf(
			"set point read-back %.1f °C vs command %.1f °C", h.room.SetPoint(), h.cmdSetPoint))
	}

	if !h.safeMode && h.mismatchStreak >= h.cfg.CRACFailAfter {
		h.safeMode = true
		h.res.SafeModeActivations++
		h.degrade("safe_mode_enter", -1, fmt.Sprintf(
			"set point read-back %.1f °C ignored command %.1f °C for %d s",
			h.room.SetPoint(), h.cmdSetPoint, h.mismatchStreak))
		return h.replan(demand, false)
	}
	if h.safeMode {
		if h.matchStreak >= h.cfg.CRACFailAfter {
			h.safeMode = false
			h.event("safe_mode_exit", -1, "set point commands answered again")
			return h.replan(demand, false)
		}
		// Keep asking for the floor in case the CRAC comes back.
		h.room.SetSetPoint(h.safeFloorSP)
		h.cmdSetPoint = h.safeFloorSP
	}
	return nil
}

// thermalGuard steps the commanded supply down while a hotspot sits
// inside the guard band. In safe mode the watchdog already commands the
// floor, so the guard stands down.
func (h *harness) thermalGuard() {
	if h.safeMode {
		return
	}
	hotspot := h.hotspot
	if hotspot > h.profile.TMaxC-h.cfg.GuardBandC {
		if !h.guardActive {
			h.res.GuardActivations++
			h.guardActive = true
		}
		h.command(h.cmdSetPoint - 0.5)
	} else if h.guardActive && hotspot < h.profile.TMaxC-2*h.cfg.GuardBandC {
		h.guardActive = false
	}
}

// command pushes a set point through the room and remembers it for the
// CRAC watchdog. Commands are tracked against read-back, not assumed.
func (h *harness) command(sp float64) {
	h.room.SetSetPoint(sp)
	h.cmdSetPoint = sp
	h.cmdValid = true
}

// pollTransport drains a latched transport error from a remote room.
func (h *harness) pollTransport() error {
	et, ok := h.room.(errTracker)
	if !ok {
		return nil
	}
	err := et.Err()
	if err == nil {
		return nil
	}
	return h.absorbOutage(err)
}

// absorbOutage accounts one observed transport failure — latched or
// returned directly by a command — clears any latch so the next attempt
// starts fresh, and under StrictErrors turns it fatal.
func (h *harness) absorbOutage(err error) error {
	if et, ok := h.room.(errTracker); ok {
		et.ResetErr()
	}
	if h.cfg.StrictErrors {
		return fmt.Errorf("controller: transport: %w", err)
	}
	h.res.TransportErrors++
	// One event per outage, not per failed request: errors arriving
	// back-to-back extend the existing event.
	if k := len(h.res.Events); k == 0 || h.res.Events[k-1].Kind != "transport_error" ||
		h.room.Time()-h.res.Events[k-1].TimeS > 30 {
		h.degrade("transport_error", -1, err.Error())
	}
	return nil
}

// replan builds and applies a plan for the given demand level. periodic
// re-plans additionally probe machines previously marked failed, giving
// crashed machines that came back a way home.
func (h *harness) replan(demand float64, periodic bool) error {
	if periodic && !h.cfg.DisableFailover {
		h.probeFailed()
	}

	// Re-planning around failures may uncover more dead machines when the
	// plan is pushed (power-on refused); re-solve over the shrunken set.
	for attempt := 0; attempt <= h.sys.Size(); attempt++ {
		plan, err := h.makePlan(demand)
		if err != nil {
			return err
		}
		outcome, err := h.apply(plan)
		if err != nil {
			return err
		}
		if outcome == applyRefused {
			continue
		}
		// Commit the plan even when an outage cut the push short: it is
		// the controller's intent, and reapply pushes it again as soon
		// as the room answers.
		h.currentPlan = plan
		copy(h.plannedLoad, plan.Loads)
		h.demand = demand
		h.sinceReplanS = 0
		h.guardActive = false
		h.res.Replans++
		h.replanIndex++
		h.reapply = outcome == applyOutage
		return nil
	}
	return fmt.Errorf("controller: replan at demand %.2f could not settle on a live machine set", demand)
}

// makePlan produces the plan for one re-plan through the engine: the
// configured planning method in the healthy case, the degraded planner
// over the surviving set when machines are down, and a slack-weighted
// capacity-derated plan in safe mode. Shed load reported by the engine
// becomes a load_shed degradation event.
func (h *harness) makePlan(demand float64) (*coolopt.Plan, error) {
	totalLoad := demand * float64(h.sys.Size())

	if h.safeMode && !h.cfg.DisableSafeMode {
		return h.safePlan(totalLoad)
	}
	if h.anyFailed() && !h.cfg.DisableFailover {
		return h.degradedPlan(totalLoad)
	}
	if len(h.cfg.CandidateMethods) >= 2 {
		return h.tournamentPlan(totalLoad)
	}
	resp, err := h.eng.Plan(context.Background(), coolopt.PlanRequest{
		Method: h.cfg.Method,
		Load:   totalLoad,
	})
	if err != nil {
		return nil, fmt.Errorf("controller: replan at demand %.2f: %w", demand, err)
	}
	return resp.Plan, nil
}

func (h *harness) anyFailed() bool {
	for _, f := range h.failed {
		if f {
			return true
		}
	}
	return false
}

// failedList returns the machine IDs currently marked failed — the
// engine's avoid list.
func (h *harness) failedList() []int {
	var out []int
	for i, f := range h.failed {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// degradedPlan asks the engine to plan around the failed machines: the
// paper's closed form (Eqs. 21–22, box-bounded) over the surviving set,
// consolidating as in method #8. If even the full surviving set cannot
// carry the demand, the engine sheds the excess to the Eq. 20 capacity
// at the coldest supply (with the thermal cushion).
func (h *harness) degradedPlan(totalLoad float64) (*coolopt.Plan, error) {
	resp, err := h.eng.Plan(context.Background(), coolopt.PlanRequest{
		Load:    totalLoad,
		Avoid:   h.failedList(),
		MarginC: float64(h.sys.SafetyMargin()),
	})
	if err != nil {
		return nil, fmt.Errorf("controller: degraded replan: %w", err)
	}
	if resp.ShedLoad > 0 {
		h.degrade("load_shed", -1, fmt.Sprintf(
			"demand %.2f exceeds surviving capacity %.2f; shedding %.2f machine-units",
			totalLoad, resp.Capacity, resp.ShedLoad))
	}
	return resp.Plan, nil
}

// safePlan asks the engine for a CRAC-safe-mode plan: no consolidation,
// loads shed in proportion to each machine's thermal slack (Eq. 20 caps)
// at the supply temperature actually achieved, with a cushion.
func (h *harness) safePlan(totalLoad float64) (*coolopt.Plan, error) {
	achieved := h.room.Supply()
	resp, err := h.eng.Plan(context.Background(), coolopt.PlanRequest{
		Load:            totalLoad,
		Avoid:           h.failedList(),
		Safe:            true,
		AchievedSupplyC: achieved,
		MarginC:         float64(h.sys.SafetyMargin()),
	})
	if err != nil {
		return nil, fmt.Errorf("controller: safe-mode replan: %w", err)
	}
	if resp.ShedLoad > 0 {
		h.degrade("load_shed", -1, fmt.Sprintf(
			"safe mode: demand %.2f exceeds capacity %.2f at achieved supply %.1f °C",
			totalLoad, resp.Capacity, achieved))
	}
	return resp.Plan, nil
}

// applyOutcome reports how pushing a plan onto the room went.
type applyOutcome int

const (
	// applyOK: every command landed.
	applyOK applyOutcome = iota
	// applyRefused: the room rejected a command (a machine would not
	// power on or take load); the offender is marked failed and the
	// caller should re-plan over the shrunken set.
	applyRefused
	// applyOutage: a transport failure cut the push short; the plan is
	// partially applied and should be pushed again once the room answers.
	applyOutage
)

// apply pushes a plan through the room interface, mirroring System.Apply
// but per-command so actuation failures are survivable rather than fatal.
func (h *harness) apply(plan *coolopt.Plan) (applyOutcome, error) {
	refused := false
	for _, i := range plan.On {
		if err := h.room.SetPower(i, true); err != nil {
			if transient(err) {
				return applyOutage, h.absorbOutage(err)
			}
			if h.cfg.StrictErrors || h.cfg.DisableFailover {
				return applyOK, fmt.Errorf("controller: power on machine %d: %w", i, err)
			}
			h.markFailed(i, fmt.Sprintf("refused power-on: %v", err))
			refused = true
		}
	}
	if refused {
		return applyRefused, nil
	}
	for _, i := range plan.On {
		load := mathx.Clamp(plan.Loads[i], 0, 1)
		if err := h.room.SetLoad(i, load); err != nil {
			if transient(err) {
				return applyOutage, h.absorbOutage(err)
			}
			if h.cfg.StrictErrors || h.cfg.DisableFailover {
				return applyOK, fmt.Errorf("controller: load machine %d: %w", i, err)
			}
			h.markFailed(i, fmt.Sprintf("refused load: %v", err))
			refused = true
		}
	}
	if refused {
		return applyRefused, nil
	}
	onSet := make(map[int]bool, len(plan.On))
	for _, i := range plan.On {
		onSet[i] = true
	}
	for i := 0; i < h.sys.Size(); i++ {
		if onSet[i] {
			continue
		}
		if err := h.room.SetPower(i, false); err != nil {
			if transient(err) {
				return applyOutage, h.absorbOutage(err)
			}
			if h.cfg.StrictErrors || h.cfg.DisableFailover {
				return applyOK, fmt.Errorf("controller: power off machine %d: %w", i, err)
			}
		}
	}

	var predictedW units.Watts
	for _, i := range plan.On {
		predictedW += h.profile.ServerPower(plan.Loads[i])
	}
	desired := plan.TAcC - h.sys.SafetyMargin()
	if desired < units.Celsius(h.profile.TAcMinC) {
		desired = units.Celsius(h.profile.TAcMinC)
	}
	sp := h.sys.Profiling().Calibration.SetPointFor(desired, predictedW)
	if h.safeMode {
		h.safeFloorSP = float64(sp)
	}
	h.command(float64(sp))
	if perr := h.pollTransport(); perr != nil {
		return applyOK, perr
	}
	return applyOK, nil
}
