package controller

import (
	"context"
	"fmt"
	"sync"

	"coolopt"
)

// candidateOutcome is one candidate plan's lookahead replay result.
type candidateOutcome struct {
	plan       *coolopt.Plan
	energyJ    float64
	violationS float64
	ok         bool
}

// tournamentPlan evaluates every CandidateMethods plan by replaying it
// for LookaheadS simulated seconds on its own System.Clone, in parallel,
// and returns the lowest-cost violation-free candidate. The outcome is
// deterministic: plans are solved through the engine (concurrently — it
// serves off the shared immutable snapshot), each clone's sensor-noise
// stream is seeded from CandidateSeed, the re-plan index, and the
// candidate index, and the winner is chosen by an index-ordered scan
// with ties breaking toward the earlier entry.
func (h *harness) tournamentPlan(totalLoad float64) (*coolopt.Plan, error) {
	methods := h.cfg.CandidateMethods
	outcomes := make([]candidateOutcome, len(methods))

	var solve sync.WaitGroup
	for c, m := range methods {
		solve.Add(1)
		go func(c int, m coolopt.Method) {
			defer solve.Done()
			resp, err := h.eng.Plan(context.Background(), coolopt.PlanRequest{Method: m, Load: totalLoad})
			if err != nil {
				return // infeasible for this method; the others still race
			}
			outcomes[c] = candidateOutcome{plan: resp.Plan, ok: true}
		}(c, m)
	}
	solve.Wait()

	var wg sync.WaitGroup
	for c := range outcomes {
		if !outcomes[c].ok {
			continue
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			seed := h.cfg.CandidateSeed + int64(h.replanIndex)*997 + int64(c)
			energyJ, violationS, err := h.replayCandidate(outcomes[c].plan, seed)
			if err != nil {
				outcomes[c].ok = false
				return
			}
			outcomes[c].energyJ = energyJ
			outcomes[c].violationS = violationS
		}(c)
	}
	wg.Wait()

	best := -1
	var bestScore float64
	for c, out := range outcomes {
		if !out.ok {
			continue
		}
		// A second of constraint violation outweighs any plausible
		// energy difference; among clean plans, cheapest wins.
		score := out.energyJ + 1e9*out.violationS
		if best < 0 || score < bestScore {
			best, bestScore = c, score
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("controller: no candidate method produced a feasible plan for load %.2f", totalLoad)
	}
	return outcomes[best].plan, nil
}

// replayCandidate applies a plan to a fresh clone of the system's room
// and integrates ground-truth energy and violation time over the
// lookahead horizon.
func (h *harness) replayCandidate(plan *coolopt.Plan, seed int64) (energyJ, violationS float64, err error) {
	clone := h.sys.Clone(seed)
	if err := clone.Apply(plan); err != nil {
		return 0, 0, err
	}
	s := clone.Sim()
	steps := int(h.cfg.LookaheadS)
	for k := 0; k < steps; k++ {
		s.Step()
		energyJ += s.TrueTotalPower() // dt = 1 s
		if s.MaxTrueCPUTemp() > h.profile.TMaxC {
			violationS++
		}
	}
	return energyJ, violationS, nil
}
