// Package controller extends the paper's steady-state solution to slowly
// varying demand — the gap §I explicitly leaves open ("servers are never
// at steady state" under dynamic workloads, so the closed form alone does
// not apply). The controller re-plans with the paper's optimizer whenever
// demand moves materially or a re-plan interval elapses, applies plans
// through the calibrated set-point path, and adds a reactive thermal
// guard: if any measured CPU approaches T_max before the room has
// settled, the supply temperature is stepped down until the hotspot
// clears.
//
// This is an extension beyond the paper, evaluated in cmd/traceplay; the
// steady-state claims in EXPERIMENTS.md do not depend on it.
package controller

import (
	"errors"
	"fmt"

	"coolopt"
	"coolopt/internal/trace"
)

// Config drives a controller run.
type Config struct {
	// Sys is the profiled room under control.
	Sys *coolopt.System
	// Method selects the planning policy (default #8, the paper's).
	Method coolopt.Method
	// ReplanIntervalS forces a re-plan at least this often (default 300).
	ReplanIntervalS float64
	// Hysteresis is the minimum demand change (fraction of capacity)
	// that triggers an immediate re-plan (default 0.02).
	Hysteresis float64
	// GuardBandC triggers the thermal guard when a measured CPU comes
	// within this many °C of T_max (default 1.0).
	GuardBandC float64
}

func (c *Config) applyDefaults() error {
	if c.Sys == nil {
		return errors.New("controller: nil system")
	}
	if c.Method == 0 {
		c.Method = coolopt.OptimalACCons
	}
	if c.ReplanIntervalS == 0 {
		c.ReplanIntervalS = 300
	}
	if c.ReplanIntervalS < 1 {
		return fmt.Errorf("controller: replan interval %v s too small", c.ReplanIntervalS)
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 0.02
	}
	if c.Hysteresis < 0 || c.Hysteresis > 1 {
		return fmt.Errorf("controller: hysteresis %v outside [0, 1]", c.Hysteresis)
	}
	if c.GuardBandC == 0 {
		c.GuardBandC = 1.0
	}
	if c.GuardBandC < 0 {
		return fmt.Errorf("controller: guard band %v must be non-negative", c.GuardBandC)
	}
	return nil
}

// Result summarizes one trace replay.
type Result struct {
	// EnergyJ is the integrated ground-truth total power.
	EnergyJ float64
	// AvgPowerW is EnergyJ divided by the run duration.
	AvgPowerW float64
	// DurationS is the simulated time covered.
	DurationS float64
	// Replans counts optimizer invocations.
	Replans int
	// GuardActivations counts thermal-guard interventions.
	GuardActivations int
	// ViolationS is the number of simulated seconds any ground-truth
	// CPU spent above T_max.
	ViolationS float64
	// MaxCPUC is the hottest ground-truth CPU temperature seen.
	MaxCPUC float64
	// CarriedLoadS integrates the planned load over time (unit·s); the
	// demand integral is DemandLoadS. Equal values mean no shed load.
	CarriedLoadS float64
	DemandLoadS  float64
	// ServedLoadS integrates the load the machines actually ran
	// (unit·s). It trails CarriedLoadS by the boot transients: a
	// machine powered on by a re-plan queues its share until it is up.
	ServedLoadS float64
}

// Run replays a demand trace for durationS simulated seconds under the
// configured policy.
func Run(cfg Config, tr *trace.Trace, durationS float64) (*Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if tr == nil {
		return nil, errors.New("controller: nil trace")
	}
	if durationS <= 0 {
		return nil, fmt.Errorf("controller: duration %v must be positive", durationS)
	}

	sys := cfg.Sys
	s := sys.Sim()
	profile := sys.Profile()
	n := float64(sys.Size())

	res := &Result{DurationS: durationS}
	start := s.Time()
	var (
		currentDemand = -1.0 // force an initial plan
		sinceReplanS  = 0.0
		currentPlan   *coolopt.Plan
		guardActive   = false
	)

	replan := func(demand float64) error {
		plan, err := sys.Planner().Plan(cfg.Method, demand*n)
		if err != nil {
			return fmt.Errorf("controller: replan at demand %.2f: %w", demand, err)
		}
		if err := sys.Apply(plan); err != nil {
			return err
		}
		currentPlan = plan
		currentDemand = demand
		sinceReplanS = 0
		guardActive = false
		res.Replans++
		return nil
	}

	for s.Time()-start < durationS {
		demand := tr.At(s.Time() - start)
		moved := demand > currentDemand+cfg.Hysteresis || demand < currentDemand-cfg.Hysteresis
		if currentPlan == nil || moved || sinceReplanS >= cfg.ReplanIntervalS {
			if err := replan(demand); err != nil {
				return nil, err
			}
		}

		s.Step()
		sinceReplanS++
		res.EnergyJ += s.TrueTotalPower() // dt = 1 s
		res.CarriedLoadS += currentPlan.TotalLoad()
		res.DemandLoadS += demand * n
		for i := 0; i < sys.Size(); i++ {
			res.ServedLoadS += s.Load(i)
		}

		maxCPU := measuredHottest(sys)
		if trueMax := s.MaxTrueCPUTemp(); trueMax > res.MaxCPUC {
			res.MaxCPUC = trueMax
		}
		if s.MaxTrueCPUTemp() > profile.TMaxC {
			res.ViolationS++
		}

		// Thermal guard: step the commanded supply down while a
		// measured hotspot sits inside the guard band.
		if maxCPU > profile.TMaxC-cfg.GuardBandC {
			if !guardActive {
				res.GuardActivations++
				guardActive = true
			}
			s.SetSetPoint(s.SetPoint() - 0.5)
		} else if guardActive && maxCPU < profile.TMaxC-2*cfg.GuardBandC {
			guardActive = false
		}
	}

	res.AvgPowerW = res.EnergyJ / durationS
	return res, nil
}

// measuredHottest returns the hottest measured CPU temperature across
// powered-on machines.
func measuredHottest(sys *coolopt.System) float64 {
	s := sys.Sim()
	maxT := -1e9
	for i := 0; i < sys.Size(); i++ {
		if !s.IsOn(i) {
			continue
		}
		if t := s.MeasuredCPUTemp(i); t > maxT {
			maxT = t
		}
	}
	return maxT
}
