// Package controller extends the paper's steady-state solution to slowly
// varying demand — the gap §I explicitly leaves open ("servers are never
// at steady state" under dynamic workloads, so the closed form alone does
// not apply). The controller re-plans with the paper's optimizer whenever
// demand moves materially or a re-plan interval elapses, applies plans
// through the calibrated set-point path, and adds a reactive thermal
// guard: if any measured CPU approaches T_max before the room has
// settled, the supply temperature is stepped down until the hotspot
// clears.
//
// Because the paper's optimum pins every machine exactly at T_max, the
// controller also has to survive operation on the constraint boundary
// when the room misbehaves. It degrades gracefully instead of falling
// over: implausible sensor readings (stuck, spiked, dropped out) are
// rejected in favor of the fitted model's estimate, machines that crash
// are detected and planned around with the paper's closed form over the
// surviving set, a CRAC that stops answering set-point commands trips a
// safe mode that floors the supply command and sheds load to what the
// achieved supply can carry, and transport errors from a remote room are
// absorbed rather than poisoning the run. Every degradation is recorded
// in Result.Events.
//
// This is an extension beyond the paper, evaluated in cmd/traceplay and
// the chaos suite of cmd/paperbench; the steady-state claims in
// EXPERIMENTS.md do not depend on it.
package controller

import (
	"errors"
	"fmt"

	"coolopt"
	"coolopt/internal/machineroom"
	"coolopt/internal/trace"
)

// TruthSource supplies ground-truth metrics for Result accounting. The
// in-process simulator and faults.Room implement it; a purely remote room
// does not, in which case the controller accounts with measured values.
type TruthSource interface {
	// MaxTrueCPUTemp returns the hottest ground-truth CPU temperature.
	MaxTrueCPUTemp() float64
	// TrueTotalPower returns the room's ground-truth total draw in Watts.
	TrueTotalPower() float64
	// Load returns machine i's true current utilization.
	Load(i int) float64
}

// ErrStalled reports a room whose clock stopped advancing — a remote room
// that stayed unreachable past the stall budget.
var ErrStalled = errors.New("controller: room clock stalled")

// Config drives a controller run.
type Config struct {
	// Sys is the profiled room under control: it provides the planner,
	// the fitted profile, and the set-point calibration.
	Sys *coolopt.System
	// Room is the control-plane view of the room (default: the system's
	// own simulator). Point it at a faults.Room to inject physical
	// faults, or at a roomclient.Room to control a room served over
	// HTTP; the controller only ever touches the machineroom.Room
	// surface.
	Room machineroom.Room
	// Truth overrides the ground-truth source for Result accounting
	// (default: Room when it implements TruthSource, else the system's
	// simulator when Room is nil, else measured values).
	Truth TruthSource
	// Engine overrides the plan-serving engine (default: the system's
	// own). All planning — healthy, degraded, safe-mode, and tournament
	// candidates — goes through it.
	Engine *coolopt.Engine

	// Method selects the planning policy (default #8, the paper's).
	Method coolopt.Method
	// ReplanIntervalS forces a re-plan at least this often (default 300).
	ReplanIntervalS float64
	// Hysteresis is the minimum demand change (fraction of capacity)
	// that triggers an immediate re-plan (default 0.02).
	Hysteresis float64
	// GuardBandC triggers the thermal guard when a measured CPU comes
	// within this many °C of T_max (default 1.0).
	GuardBandC float64

	// CandidateMethods, when it lists two or more methods, makes every
	// re-plan a tournament: each candidate's plan is replayed for
	// LookaheadS simulated seconds on its own System.Clone worker, in
	// parallel, and the lowest-energy violation-free candidate wins.
	// Selection is deterministic: clone seeds derive from CandidateSeed
	// and the re-plan index, and ties break toward the earlier entry.
	CandidateMethods []coolopt.Method
	// LookaheadS is the candidate-replay horizon (default 240).
	LookaheadS float64
	// CandidateSeed seeds the clones' sensor-noise streams (default 1).
	CandidateSeed int64

	// PlausibilityBandC is how far a reading may sit from the model's
	// prediction before a frozen sensor is declared stuck (default 8).
	PlausibilityBandC float64
	// SpikeStepC is the largest per-second upward jump a reading may
	// make before it is rejected as a spike (default 12 — real thermal
	// mass cannot move that fast).
	SpikeStepC float64
	// StuckTicks is how many identical consecutive readings, combined
	// with implausibility, mark a sensor stuck (default 45).
	StuckTicks int
	// QuarantineAfter is how many consecutive rejected readings
	// quarantine a sensor (default 20).
	QuarantineAfter int
	// FailAfter is how many consecutive off-readings of a planned-on
	// machine declare it failed (default 3).
	FailAfter int
	// CRACFailAfter is how many consecutive seconds of set-point
	// command/read-back mismatch trip safe mode (default 20 — longer
	// than any plausible actuation lag).
	CRACFailAfter int
	// RecoveryWindowS is the grace period after a degradation event
	// within which thermal violations count as recovery, not failure
	// (default 300).
	RecoveryWindowS float64
	// MaxStallS is how many consecutive seconds the room clock may
	// refuse to advance before the run aborts with ErrStalled
	// (default 120).
	MaxStallS int

	// DisableSensorFilter, DisableFailover, and DisableSafeMode switch
	// off the corresponding degradation machinery — the pre-hardening
	// controller, kept for A/B robustness experiments.
	DisableSensorFilter bool
	DisableFailover     bool
	DisableSafeMode     bool
	// StrictErrors aborts the run on the first actuation or transport
	// error instead of riding it out (the pre-hardening behavior).
	StrictErrors bool
}

func (c *Config) applyDefaults() error {
	if c.Sys == nil {
		return errors.New("controller: nil system")
	}
	if c.Room == nil {
		c.Room = c.Sys.Sim()
	}
	if c.Engine == nil {
		c.Engine = c.Sys.Engine()
	}
	if c.Truth == nil {
		if t, ok := c.Room.(TruthSource); ok {
			c.Truth = t
		}
	}
	if c.Method == 0 {
		c.Method = coolopt.OptimalACCons
	}
	if c.ReplanIntervalS == 0 {
		c.ReplanIntervalS = 300
	}
	if c.ReplanIntervalS < 1 {
		return fmt.Errorf("controller: replan interval %v s too small", c.ReplanIntervalS)
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 0.02
	}
	if c.Hysteresis < 0 || c.Hysteresis > 1 {
		return fmt.Errorf("controller: hysteresis %v outside [0, 1]", c.Hysteresis)
	}
	if c.GuardBandC == 0 {
		c.GuardBandC = 1.0
	}
	if c.GuardBandC < 0 {
		return fmt.Errorf("controller: guard band %v must be non-negative", c.GuardBandC)
	}
	if c.LookaheadS == 0 {
		c.LookaheadS = 240
	}
	if c.LookaheadS < 1 {
		return fmt.Errorf("controller: lookahead %v s too small", c.LookaheadS)
	}
	if c.CandidateSeed == 0 {
		c.CandidateSeed = 1
	}
	if c.PlausibilityBandC == 0 {
		c.PlausibilityBandC = 8
	}
	if c.SpikeStepC == 0 {
		c.SpikeStepC = 12
	}
	if c.StuckTicks == 0 {
		c.StuckTicks = 45
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = 20
	}
	if c.FailAfter == 0 {
		c.FailAfter = 3
	}
	if c.CRACFailAfter == 0 {
		c.CRACFailAfter = 20
	}
	if c.RecoveryWindowS == 0 {
		c.RecoveryWindowS = 300
	}
	if c.MaxStallS == 0 {
		c.MaxStallS = 120
	}
	if c.PlausibilityBandC < 0 || c.SpikeStepC < 0 || c.StuckTicks < 0 ||
		c.QuarantineAfter < 0 || c.FailAfter < 0 || c.CRACFailAfter < 0 ||
		c.RecoveryWindowS < 0 || c.MaxStallS < 0 {
		return errors.New("controller: negative hardening threshold")
	}
	return nil
}

// Event is one recorded degradation.
type Event struct {
	// TimeS is the room clock at the event.
	TimeS float64
	// Kind classifies the event: machine_failed, sensor_quarantined,
	// sensor_recovered, safe_mode_enter, safe_mode_exit,
	// transport_error, load_shed, replan_degraded.
	Kind string
	// Machine is the affected machine, or -1.
	Machine int
	// Detail is a human-readable elaboration.
	Detail string
}

// Result summarizes one trace replay.
type Result struct {
	// EnergyJ is the integrated ground-truth total power.
	EnergyJ float64
	// AvgPowerW is EnergyJ divided by the run duration.
	AvgPowerW float64
	// DurationS is the simulated time covered.
	DurationS float64
	// Replans counts optimizer invocations.
	Replans int
	// GuardActivations counts thermal-guard interventions.
	GuardActivations int
	// ViolationS is the number of simulated seconds any ground-truth
	// CPU spent above T_max.
	ViolationS float64
	// ViolationOutsideRecoveryS is the subset of ViolationS that falls
	// outside every recovery window — steady-state violations the
	// hardened controller should never allow.
	ViolationOutsideRecoveryS float64
	// MaxCPUC is the hottest ground-truth CPU temperature seen.
	MaxCPUC float64
	// LastViolationTimeS is the run-relative time of the last observed
	// violation second, or -1 when the run stayed under T_max. Paired
	// with a fault's onset it bounds the recovery time.
	LastViolationTimeS float64
	// CarriedLoadS integrates the planned load over time (unit·s); the
	// demand integral is DemandLoadS. Equal values mean no shed load.
	CarriedLoadS float64
	DemandLoadS  float64
	// ServedLoadS integrates the load the machines actually ran
	// (unit·s). It trails CarriedLoadS by the boot transients: a
	// machine powered on by a re-plan queues its share until it is up.
	ServedLoadS float64

	// MachineFailures counts machines declared failed.
	MachineFailures int
	// SensorRejects counts readings the plausibility filter discarded.
	SensorRejects int
	// SensorsQuarantined counts sensors taken out of service.
	SensorsQuarantined int
	// SafeModeActivations counts safe-mode entries; SafeModeS is the
	// time spent in safe mode.
	SafeModeActivations int
	SafeModeS           float64
	// TransportErrors counts absorbed transport failures.
	TransportErrors int
	// Events is the degradation log, in room-clock order.
	Events []Event
}

// Run replays a demand trace for durationS simulated seconds under the
// configured policy.
func Run(cfg Config, tr *trace.Trace, durationS float64) (*Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if tr == nil {
		return nil, errors.New("controller: nil trace")
	}
	if durationS <= 0 {
		return nil, fmt.Errorf("controller: duration %v must be positive", durationS)
	}
	h := newHarness(cfg)
	return h.run(tr, durationS)
}
