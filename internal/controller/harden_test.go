package controller

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"coolopt"
	"coolopt/internal/faults"
	"coolopt/internal/roomapi"
	"coolopt/internal/roomclient"
	"coolopt/internal/trace"
)

// chaosSystem clones the shared profiled system so fault injection never
// perturbs the room the other tests control.
func chaosSystem(t *testing.T, seed int64) *coolopt.System {
	t.Helper()
	return sharedSystem(t).Clone(seed)
}

// faultedRoom wraps a system's simulator in a fault-injecting room.
func faultedRoom(t *testing.T, sys *coolopt.System, sched *faults.Schedule) *faults.Room {
	t.Helper()
	if err := sched.Validate(sys.Size()); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	room, err := faults.NewRoom(sys.Sim(), sched)
	if err != nil {
		t.Fatalf("faults.NewRoom: %v", err)
	}
	return room
}

// plannedOn returns the k-th machine the paper's planner would power on
// at the given demand — a deterministic pick of a machine that is
// actually in service, so a fault aimed at it cannot miss.
func plannedOn(t *testing.T, sys *coolopt.System, demand float64, k int) int {
	t.Helper()
	plan, err := sys.Planner().Plan(coolopt.OptimalACCons, demand*float64(sys.Size()))
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if k >= len(plan.On) {
		t.Fatalf("plan has only %d machines on", len(plan.On))
	}
	return plan.On[k]
}

func countEvents(res *Result, kind string) int {
	n := 0
	for _, e := range res.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

func TestMachineCrashFailsOverToSurvivors(t *testing.T) {
	sys := chaosSystem(t, 301)
	start := sys.Sim().Time()
	victim := plannedOn(t, sys, 0.5, 0)
	room := faultedRoom(t, sys, &faults.Schedule{Events: []faults.Event{
		{Kind: faults.MachineCrash, AtS: start + 100, DurationS: 1e9, Machine: victim},
	}})
	res, err := Run(Config{Sys: sys, Room: room, ReplanIntervalS: 120}, steadyTrace(t, 0.5), 700)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.MachineFailures != 1 {
		t.Fatalf("MachineFailures = %d, want exactly 1 (probes must not re-count)", res.MachineFailures)
	}
	if countEvents(res, "machine_failed") != 1 {
		t.Fatalf("events: %+v, want one machine_failed", res.Events)
	}
	if res.ViolationOutsideRecoveryS != 0 {
		t.Fatalf("%.0f s of steady-state thermal violation after failover", res.ViolationOutsideRecoveryS)
	}
	// The survivors must absorb the failed machine's share: post-failover
	// plans carry the full demand, so the carried integral stays close to
	// the demand integral (small deficit during detection + re-plan).
	if deficit := res.DemandLoadS - res.CarriedLoadS; deficit > 8*0.6 {
		t.Fatalf("carried load deficit %.1f unit·s — survivors did not absorb the failed share", deficit)
	}
}

func TestCrashedMachineRecoversViaProbe(t *testing.T) {
	sys := chaosSystem(t, 302)
	start := sys.Sim().Time()
	victim := plannedOn(t, sys, 0.5, 1)
	room := faultedRoom(t, sys, &faults.Schedule{Events: []faults.Event{
		{Kind: faults.MachineCrash, AtS: start + 50, DurationS: 100, Machine: victim},
	}})
	res, err := Run(Config{Sys: sys, Room: room, ReplanIntervalS: 120}, steadyTrace(t, 0.5), 600)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if countEvents(res, "machine_recovered") != 1 {
		t.Fatalf("events: %+v, want one machine_recovered after the crash window", res.Events)
	}
}

func TestStuckSensorIsQuarantinedNotTrusted(t *testing.T) {
	sys := chaosSystem(t, 303)
	start := sys.Sim().Time()
	// Freeze a busy machine's sensor at an implausibly low value — the
	// dangerous direction, masking real heat.
	victim := plannedOn(t, sys, 0.6, 0)
	room := faultedRoom(t, sys, &faults.Schedule{Events: []faults.Event{
		{Kind: faults.SensorStuck, AtS: start + 60, DurationS: 300, Machine: victim, StuckAtC: 20},
	}})
	res, err := Run(Config{Sys: sys, Room: room}, steadyTrace(t, 0.6), 600)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SensorRejects == 0 {
		t.Fatal("plausibility filter never rejected the frozen reading")
	}
	if res.SensorsQuarantined != 1 {
		t.Fatalf("SensorsQuarantined = %d, want 1", res.SensorsQuarantined)
	}
	if countEvents(res, "sensor_recovered") != 1 {
		t.Fatalf("events: %+v, want the sensor back after the fault window", res.Events)
	}
	if res.ViolationOutsideRecoveryS != 0 {
		t.Fatalf("%.0f s of steady-state violation with a masked sensor", res.ViolationOutsideRecoveryS)
	}
}

func TestHealthySensorsAreNotQuarantined(t *testing.T) {
	// Quantized sensors repeat readings at steady state; the filter must
	// not mistake that for a stuck fault.
	sys := chaosSystem(t, 304)
	res, err := Run(Config{Sys: sys}, steadyTrace(t, 0.5), 600)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SensorsQuarantined != 0 {
		t.Fatalf("quarantined %d healthy sensors: %+v", res.SensorsQuarantined, res.Events)
	}
}

func TestCRACRefusalTripsSafeModeAndRecovers(t *testing.T) {
	sys := chaosSystem(t, 305)
	start := sys.Sim().Time()
	room := faultedRoom(t, sys, &faults.Schedule{Events: []faults.Event{
		{Kind: faults.CRACRefuse, AtS: start + 30, DurationS: 300},
	}})
	// The demand step at t = 100 s lands a set-point command inside the
	// refusal window; under steady demand a dropped command is invisible
	// (and harmless) because the read-back already matches.
	tr, err := trace.Steps(100, 0.4, 0.65)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Sys: sys, Room: room, ReplanIntervalS: 120}, tr, 700)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SafeModeActivations != 1 {
		t.Fatalf("SafeModeActivations = %d, want 1 (events: %+v)", res.SafeModeActivations, res.Events)
	}
	if res.SafeModeS <= 0 {
		t.Fatal("no time attributed to safe mode")
	}
	if countEvents(res, "safe_mode_exit") != 1 {
		t.Fatalf("events: %+v, want safe mode exited after the CRAC recovered", res.Events)
	}
	if res.ViolationOutsideRecoveryS != 0 {
		t.Fatalf("%.0f s of steady-state violation under CRAC refusal", res.ViolationOutsideRecoveryS)
	}
}

func TestCRACLagDoesNotTripSafeMode(t *testing.T) {
	sys := chaosSystem(t, 306)
	start := sys.Sim().Time()
	room := faultedRoom(t, sys, &faults.Schedule{Events: []faults.Event{
		{Kind: faults.CRACLag, AtS: start + 30, DurationS: 300, LagS: 10},
	}})
	res, err := Run(Config{Sys: sys, Room: room, ReplanIntervalS: 60}, steadyTrace(t, 0.5), 500)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 10 s of actuation lag is within the watchdog's tolerance (20 s);
	// safe mode is for a dead CRAC, not a slow one.
	if res.SafeModeActivations != 0 {
		t.Fatalf("safe mode tripped on benign lag: %+v", res.Events)
	}
}

// chaosAcceptanceSchedule is the ISSUE's acceptance scenario: one machine
// crash, one stuck sensor, and a 10-request network blackout, aimed at
// machines the plan actually uses.
func chaosAcceptanceSchedule(t *testing.T, sys *coolopt.System) *faults.Schedule {
	start := sys.Sim().Time()
	return &faults.Schedule{Events: []faults.Event{
		{Kind: faults.MachineCrash, AtS: start + 120, DurationS: 1e9, Machine: plannedOn(t, sys, 0.5, 0)},
		{Kind: faults.SensorStuck, AtS: start + 60, DurationS: 400, Machine: plannedOn(t, sys, 0.5, 1), StuckAtC: 25},
		{Kind: faults.NetError, FromRequest: 60, Requests: 10},
	}}
}

// dialChaos serves a faulted room over HTTP (with transport faults in the
// middleware) and dials it.
func dialChaos(t *testing.T, room *faults.Room, sched *faults.Schedule, opts ...roomclient.Option) *roomclient.Room {
	t.Helper()
	srv, err := roomapi.NewServer(room)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(faults.Middleware(srv, sched, func(time.Duration) {}))
	t.Cleanup(ts.Close)
	all := append([]roomclient.Option{
		roomclient.WithTimeout(2 * time.Second),
		roomclient.WithBackoff(time.Millisecond, 4*time.Millisecond),
		roomclient.WithRetrySeed(7),
	}, opts...)
	client, err := roomclient.Dial(ts.URL, nil, all...)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return client
}

func TestChaosAcceptanceHardenedSurvives(t *testing.T) {
	sys := chaosSystem(t, 307)
	sched := chaosAcceptanceSchedule(t, sys)
	room := faultedRoom(t, sys, sched)
	client := dialChaos(t, room, sched)

	res, err := Run(Config{
		Sys: sys, Room: client, Truth: room, ReplanIntervalS: 120,
	}, steadyTrace(t, 0.5), 900)
	if err != nil {
		t.Fatalf("hardened controller aborted under the acceptance scenario: %v", err)
	}
	if res.ViolationOutsideRecoveryS != 0 {
		t.Fatalf("hardened controller: %.0f s of thermal violation outside recovery windows",
			res.ViolationOutsideRecoveryS)
	}
	if res.MachineFailures == 0 {
		t.Fatal("crash not detected")
	}
	if res.SensorRejects == 0 {
		t.Fatal("stuck sensor never rejected")
	}
	if res.TransportErrors == 0 && res.ViolationS == 0 {
		// The blackout spans 10 requests; with 3 retries per command the
		// controller may ride it out entirely inside retries (zero
		// latched errors) — that is success, not a missed fault. But the
		// middleware must actually have fired.
		t.Log("blackout absorbed entirely by retries")
	}
}

func TestChaosAcceptancePrePRControllerFails(t *testing.T) {
	// The pre-hardening controller — no retries, no sensor filter, no
	// failover, no safe mode, strict errors — must demonstrably abort or
	// violate under the same scenario.
	sys := chaosSystem(t, 308)
	sched := chaosAcceptanceSchedule(t, sys)
	room := faultedRoom(t, sys, sched)
	client := dialChaos(t, room, sched, roomclient.WithRetries(0))

	res, err := Run(Config{
		Sys: sys, Room: client, Truth: room, ReplanIntervalS: 120,
		DisableSensorFilter: true, DisableFailover: true, DisableSafeMode: true,
		StrictErrors: true,
	}, steadyTrace(t, 0.5), 900)
	if err == nil && res.ViolationOutsideRecoveryS == 0 {
		t.Fatalf("pre-PR controller neither aborted nor violated: %+v", res)
	}
	if err != nil {
		var te *roomclient.TransportError
		if !errors.As(err, &te) {
			t.Logf("aborted with non-transport error (acceptable): %v", err)
		}
	}
}

func TestStalledRoomAborts(t *testing.T) {
	sys := chaosSystem(t, 309)
	// Blackout far longer than the retry budget and the stall budget.
	sched := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.NetError, FromRequest: 10, Requests: 100000},
	}}
	room := faultedRoom(t, sys, &faults.Schedule{})
	client := dialChaos(t, room, sched, roomclient.WithRetries(1))

	_, err := Run(Config{
		Sys: sys, Room: client, MaxStallS: 25, ReplanIntervalS: 120,
	}, steadyTrace(t, 0.5), 600)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

func TestCandidateTournamentIsDeterministic(t *testing.T) {
	run := func() *Result {
		sys := chaosSystem(t, 310)
		res, err := Run(Config{
			Sys: sys,
			CandidateMethods: []coolopt.Method{
				coolopt.OptimalACCons, coolopt.OptimalACNoCons, coolopt.EvenACNoCons,
			},
			LookaheadS: 120, CandidateSeed: 5, ReplanIntervalS: 200,
		}, steadyTrace(t, 0.5), 500)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.EnergyJ != b.EnergyJ || a.Replans != b.Replans || a.ViolationS != b.ViolationS {
		t.Fatalf("tournament runs diverged: %+v vs %+v", a, b)
	}
	if a.EnergyJ <= 0 {
		t.Fatal("no energy recorded")
	}
}

func TestTournamentNotWorseThanSingleMethod(t *testing.T) {
	single, err := Run(Config{Sys: chaosSystem(t, 311), ReplanIntervalS: 200},
		steadyTrace(t, 0.5), 500)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(Config{
		Sys: chaosSystem(t, 311),
		CandidateMethods: []coolopt.Method{
			coolopt.OptimalACCons, coolopt.EvenNoACNoCons,
		},
		LookaheadS: 120, ReplanIntervalS: 200,
	}, steadyTrace(t, 0.5), 500)
	if err != nil {
		t.Fatal(err)
	}
	// The tournament includes the paper's method, so it can only match
	// or beat it (modulo sensor-noise wiggle; allow 2 %).
	if multi.EnergyJ > single.EnergyJ*1.02 {
		t.Fatalf("tournament energy %.0f J worse than single-method %.0f J",
			multi.EnergyJ, single.EnergyJ)
	}
}
