package batch

import (
	"encoding/json"
	"fmt"
	"io"
)

// jobsDocument is the on-disk job set format:
//
//	{"jobs": [
//	  {"id": "nightly", "work": 24000, "submitS": 0, "deadlineS": 5800},
//	  …
//	]}
type jobsDocument struct {
	Jobs []jobEntry `json:"jobs"`
}

type jobEntry struct {
	ID        string  `json:"id"`
	Work      float64 `json:"work"`
	SubmitS   float64 `json:"submitS"`
	DeadlineS float64 `json:"deadlineS"`
}

// ReadJobs parses and validates a JSON job set.
func ReadJobs(r io.Reader) ([]Job, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc jobsDocument
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("batch: decode jobs: %w", err)
	}
	jobs := make([]Job, len(doc.Jobs))
	for i, e := range doc.Jobs {
		jobs[i] = Job{ID: e.ID, Work: e.Work, SubmitS: e.SubmitS, DeadlineS: e.DeadlineS}
	}
	if err := ValidateJobs(jobs); err != nil {
		return nil, err
	}
	return jobs, nil
}

// WriteJobs writes a job set in the ReadJobs format.
func WriteJobs(w io.Writer, jobs []Job) error {
	if err := ValidateJobs(jobs); err != nil {
		return err
	}
	doc := jobsDocument{Jobs: make([]jobEntry, len(jobs))}
	for i, j := range jobs {
		doc.Jobs[i] = jobEntry{ID: j.ID, Work: j.Work, SubmitS: j.SubmitS, DeadlineS: j.DeadlineS}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
