// Package batch provides the job-level front end the paper's workload
// motivates: long-running batch jobs (click-stream processing and the
// like) submitted to a central scheduler, which must pick the cluster's
// offered load over time. Because energy falls when the room runs slower
// (fewer machines on, warmer supply air), the scheduler computes the
// *minimum* aggregate demand that still meets every job's deadline — the
// classic max-density argument of minimum-speed deadline scheduling — and
// hands that demand curve to the thermal-aware optimizer as a trace.
package batch

import (
	"coolopt/internal/mathx"
	"errors"
	"fmt"
	"math"
	"sort"

	"coolopt/internal/trace"
)

// Job is one batch job.
type Job struct {
	// ID identifies the job.
	ID string
	// Work is the job's total compute demand in unit-seconds (one unit
	// = one machine fully busy for one second).
	Work float64
	// SubmitS and DeadlineS bound the job's execution window, in
	// seconds of cluster time.
	SubmitS   float64
	DeadlineS float64
}

// Validate checks one job.
func (j Job) Validate() error {
	if j.Work <= 0 {
		return fmt.Errorf("batch: job %q work %v must be positive", j.ID, j.Work)
	}
	if j.SubmitS < 0 {
		return fmt.Errorf("batch: job %q submitted at negative time %v", j.ID, j.SubmitS)
	}
	if j.DeadlineS <= j.SubmitS {
		return fmt.Errorf("batch: job %q deadline %v not after submit %v", j.ID, j.DeadlineS, j.SubmitS)
	}
	return nil
}

// ValidateJobs checks a job set.
func ValidateJobs(jobs []Job) error {
	if len(jobs) == 0 {
		return errors.New("batch: no jobs")
	}
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("batch: duplicate job id %q", j.ID)
		}
		seen[j.ID] = true
	}
	return nil
}

// ErrInfeasible is returned when no demand profile within the cluster's
// capacity can meet every deadline.
var ErrInfeasible = errors.New("batch: deadlines infeasible")

// MinDemand returns the minimum constant cluster demand (units of work
// per second) over [from, to) that keeps every job with a deadline in
// that horizon on schedule, assuming work before `from` has been served.
// It is the max-density computation: for every deadline d, all work that
// must finish by d divided by the time available.
func MinDemand(jobs []Job, now float64, remaining map[string]float64) (float64, error) {
	maxDensity := 0.0
	for _, j := range jobs {
		if j.DeadlineS <= now {
			if remaining[j.ID] > 1e-9 {
				return 0, fmt.Errorf("%w: job %q already past deadline with %v work left",
					ErrInfeasible, j.ID, remaining[j.ID])
			}
			continue
		}
		// Work due by this job's deadline: every not-yet-finished job
		// with an earlier-or-equal deadline whose window has opened.
		var due float64
		for _, k := range jobs {
			if k.DeadlineS <= j.DeadlineS && k.SubmitS <= now {
				due += remaining[k.ID]
			}
		}
		if density := due / (j.DeadlineS - now); density > maxDensity {
			maxDensity = density
		}
	}
	return maxDensity, nil
}

// Plan computes a piecewise-constant minimum-demand profile for the job
// set on a cluster of capacityUnits (machines), re-evaluating the density
// every stepS seconds and serving jobs earliest-deadline-first. It
// returns the demand trace (as a fraction of capacity, ready for the
// room controller) and the per-job completion times.
func Plan(jobs []Job, capacityUnits, horizonS, stepS float64) (*trace.Trace, map[string]float64, error) {
	if err := ValidateJobs(jobs); err != nil {
		return nil, nil, err
	}
	if capacityUnits <= 0 || horizonS <= 0 || stepS <= 0 || stepS > horizonS {
		return nil, nil, fmt.Errorf("batch: bad plan parameters (capacity %v, horizon %v, step %v)",
			capacityUnits, horizonS, stepS)
	}

	remaining := make(map[string]float64, len(jobs))
	for _, j := range jobs {
		remaining[j.ID] = j.Work
	}
	completion := make(map[string]float64, len(jobs))

	// EDF service order.
	order := append([]Job(nil), jobs...)
	sort.Slice(order, func(a, b int) bool {
		if !mathx.Same(order[a].DeadlineS, order[b].DeadlineS) {
			return order[a].DeadlineS < order[b].DeadlineS
		}
		return order[a].ID < order[b].ID
	})

	var points []trace.Point
	lastFrac := -1.0
	for now := 0.0; now < horizonS; now += stepS {
		demand, err := MinDemand(jobs, now, remaining)
		if err != nil {
			return nil, nil, err
		}
		if demand > capacityUnits*(1+1e-9) {
			return nil, nil, fmt.Errorf("%w: density %v exceeds capacity %v at t=%v",
				ErrInfeasible, demand, capacityUnits, now)
		}
		frac := math.Min(demand/capacityUnits, 1)
		if !mathx.Same(frac, lastFrac) {
			points = append(points, trace.Point{TimeS: now, LoadFrac: frac})
			lastFrac = frac
		}

		// Serve this step's work earliest-deadline-first.
		served := frac * capacityUnits * stepS
		for i := range order {
			j := order[i]
			if j.SubmitS > now || remaining[j.ID] <= 0 {
				continue
			}
			take := math.Min(served, remaining[j.ID])
			remaining[j.ID] -= take
			served -= take
			if remaining[j.ID] <= 1e-9 {
				remaining[j.ID] = 0
				if _, done := completion[j.ID]; !done {
					completion[j.ID] = now + stepS
				}
			}
			if served <= 0 {
				break
			}
		}
	}

	for _, j := range jobs {
		if remaining[j.ID] > 1e-6 {
			return nil, nil, fmt.Errorf("%w: job %q unfinished at horizon (%v left)",
				ErrInfeasible, j.ID, remaining[j.ID])
		}
	}
	if len(points) == 0 || points[0].TimeS != 0 {
		points = append([]trace.Point{{TimeS: 0, LoadFrac: 0}}, points...)
	}
	tr, err := trace.New(points)
	if err != nil {
		return nil, nil, err
	}
	return tr, completion, nil
}

// DeadlinesMet reports whether every job completed by its deadline
// (allowing one scheduling step of quantization slack).
func DeadlinesMet(jobs []Job, completion map[string]float64, stepS float64) error {
	for _, j := range jobs {
		done, ok := completion[j.ID]
		if !ok {
			return fmt.Errorf("batch: job %q never completed", j.ID)
		}
		if done > j.DeadlineS+stepS {
			return fmt.Errorf("batch: job %q finished at %v, deadline %v", j.ID, done, j.DeadlineS)
		}
	}
	return nil
}
