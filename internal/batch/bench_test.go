package batch

import "testing"

// BenchmarkPlan measures compiling a day of jobs into a minimum-demand
// trace.
func BenchmarkPlan(b *testing.B) {
	jobs := []Job{
		{ID: "nightly", Work: 24000, SubmitS: 0, DeadlineS: 5800},
		{ID: "rebuild", Work: 9000, SubmitS: 400, DeadlineS: 3000},
		{ID: "hourly1", Work: 1500, SubmitS: 800, DeadlineS: 1600},
		{ID: "hourly2", Work: 1500, SubmitS: 2600, DeadlineS: 3400},
		{ID: "retrain", Work: 6000, SubmitS: 1200, DeadlineS: 5600},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Plan(jobs, 20, 6000, 50); err != nil {
			b.Fatal(err)
		}
	}
}
