package batch

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"coolopt/internal/mathx"
)

func TestJobValidate(t *testing.T) {
	tests := []struct {
		name string
		give Job
	}{
		{name: "zero work", give: Job{ID: "a", Work: 0, DeadlineS: 10}},
		{name: "negative submit", give: Job{ID: "a", Work: 1, SubmitS: -1, DeadlineS: 10}},
		{name: "deadline before submit", give: Job{ID: "a", Work: 1, SubmitS: 10, DeadlineS: 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.give.Validate(); err == nil {
				t.Fatal("invalid job accepted")
			}
		})
	}
	ok := Job{ID: "a", Work: 100, SubmitS: 0, DeadlineS: 50}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
}

func TestValidateJobs(t *testing.T) {
	if err := ValidateJobs(nil); err == nil {
		t.Fatal("empty set accepted")
	}
	dup := []Job{
		{ID: "a", Work: 1, DeadlineS: 10},
		{ID: "a", Work: 1, DeadlineS: 20},
	}
	if err := ValidateJobs(dup); err == nil {
		t.Fatal("duplicate ids accepted")
	}
}

func TestMinDemandSingleJob(t *testing.T) {
	jobs := []Job{{ID: "a", Work: 100, SubmitS: 0, DeadlineS: 50}}
	remaining := map[string]float64{"a": 100}
	demand, err := MinDemand(jobs, 0, remaining)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(demand, 2, 1e-12) { // 100 units over 50 s
		t.Fatalf("demand = %v, want 2", demand)
	}
	// Halfway through, with half the work done, demand holds steady.
	remaining["a"] = 50
	demand, err = MinDemand(jobs, 25, remaining)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(demand, 2, 1e-12) {
		t.Fatalf("mid-flight demand = %v, want 2", demand)
	}
}

func TestMinDemandTightestDeadlineDominates(t *testing.T) {
	jobs := []Job{
		{ID: "urgent", Work: 30, SubmitS: 0, DeadlineS: 10},
		{ID: "lazy", Work: 10, SubmitS: 0, DeadlineS: 1000},
	}
	remaining := map[string]float64{"urgent": 30, "lazy": 10}
	demand, err := MinDemand(jobs, 0, remaining)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(demand, 3, 1e-12) { // urgent: 30/10
		t.Fatalf("demand = %v, want 3 (urgent job dominates)", demand)
	}
}

func TestMinDemandPastDeadline(t *testing.T) {
	jobs := []Job{{ID: "a", Work: 10, SubmitS: 0, DeadlineS: 5}}
	if _, err := MinDemand(jobs, 6, map[string]float64{"a": 1}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// Finished job past deadline is fine.
	if _, err := MinDemand(jobs, 6, map[string]float64{"a": 0}); err != nil {
		t.Fatalf("finished job flagged: %v", err)
	}
}

func TestPlanMeetsDeadlines(t *testing.T) {
	jobs := []Job{
		{ID: "overnight", Work: 2000, SubmitS: 0, DeadlineS: 3000},
		{ID: "hourly", Work: 300, SubmitS: 500, DeadlineS: 1100},
		{ID: "rush", Work: 120, SubmitS: 1500, DeadlineS: 1700},
	}
	const (
		capacity = 10.0
		horizon  = 3000.0
		step     = 50.0
	)
	tr, completion, err := Plan(jobs, capacity, horizon, step)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if err := DeadlinesMet(jobs, completion, step); err != nil {
		t.Fatal(err)
	}
	// The demand trace stays within [0, 1].
	for _, p := range tr.Points() {
		if p.LoadFrac < 0 || p.LoadFrac > 1 {
			t.Fatalf("trace point %v out of range", p)
		}
	}
}

func TestPlanServedWorkMatchesDemand(t *testing.T) {
	jobs := []Job{{ID: "a", Work: 600, SubmitS: 0, DeadlineS: 1000}}
	const (
		capacity = 5.0
		horizon  = 1000.0
		step     = 10.0
	)
	tr, completion, err := Plan(jobs, capacity, horizon, step)
	if err != nil {
		t.Fatal(err)
	}
	// Integrate the trace: total served work must equal the job's work
	// by its completion time.
	var served float64
	for now := 0.0; now < completion["a"]; now += step {
		served += tr.At(now) * capacity * step
	}
	if !mathx.ApproxEqual(served, 600, 1e-6) {
		t.Fatalf("served %v unit·s, want 600", served)
	}
	// Minimum-demand property: the job runs at 0.6 units/s (600/1000),
	// i.e. 12 % of a 5-unit cluster — not in a full-speed burst.
	if frac := tr.At(100); !mathx.ApproxEqual(frac, 0.12, 1e-9) {
		t.Fatalf("demand fraction %v, want 0.12 (minimum-speed schedule)", frac)
	}
}

func TestPlanInfeasible(t *testing.T) {
	jobs := []Job{{ID: "a", Work: 1000, SubmitS: 0, DeadlineS: 10}}
	if _, _, err := Plan(jobs, 5, 100, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPlanParameterValidation(t *testing.T) {
	jobs := []Job{{ID: "a", Work: 10, SubmitS: 0, DeadlineS: 100}}
	if _, _, err := Plan(jobs, 0, 100, 1); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, _, err := Plan(jobs, 5, 0, 1); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, _, err := Plan(jobs, 5, 100, 200); err == nil {
		t.Fatal("step beyond horizon accepted")
	}
}

// Property: for random feasible job sets, Plan meets every deadline and
// never exceeds the capacity.
func TestPlanFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mathx.NewRand(seed)
		const (
			capacity = 8.0
			horizon  = 2000.0
			step     = 20.0
		)
		n := 1 + rng.Intn(5)
		jobs := make([]Job, n)
		for i := range jobs {
			submit := rng.Uniform(0, horizon/2)
			window := rng.Uniform(200, horizon-submit)
			// Keep each job individually well under capacity; the
			// aggregate may still be infeasible, which Plan must
			// detect rather than mis-schedule.
			work := rng.Uniform(1, window*capacity/4)
			jobs[i] = Job{
				ID:        string(rune('a' + i)),
				Work:      work,
				SubmitS:   submit,
				DeadlineS: submit + window,
			}
		}
		tr, completion, err := Plan(jobs, capacity, horizon, step)
		if errors.Is(err, ErrInfeasible) {
			return true // correctly detected
		}
		if err != nil {
			return false
		}
		if err := DeadlinesMet(jobs, completion, step); err != nil {
			return false
		}
		for _, p := range tr.Points() {
			if p.LoadFrac < 0 || p.LoadFrac > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestJobsFileRoundTrip(t *testing.T) {
	jobs := []Job{
		{ID: "a", Work: 100, SubmitS: 0, DeadlineS: 500},
		{ID: "b", Work: 50, SubmitS: 100, DeadlineS: 900},
	}
	var buf bytes.Buffer
	if err := WriteJobs(&buf, jobs); err != nil {
		t.Fatalf("WriteJobs: %v", err)
	}
	got, err := ReadJobs(&buf)
	if err != nil {
		t.Fatalf("ReadJobs: %v", err)
	}
	if len(got) != 2 || got[0] != jobs[0] || got[1] != jobs[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadJobsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not json",
		`{"jobs":[{"id":"a","work":-1,"deadlineS":10}]}`,
		`{"jobs":[],"extra":1}`,
		`{"jobs":[]}`,
	} {
		if _, err := ReadJobs(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestWriteJobsRejectsInvalid(t *testing.T) {
	if err := WriteJobs(&bytes.Buffer{}, []Job{{ID: "a"}}); err == nil {
		t.Fatal("invalid job written")
	}
}
