// Package report renders a complete reproduction report — profiling fit
// quality, every evaluation figure, the constraint verification, and the
// paper-vs-measured headline — as a single markdown document, so one
// `paperbench -report` run produces an EXPERIMENTS-style record of the
// exact numbers a given seed and room configuration yield.
package report

import (
	"fmt"
	"io"
	"strings"

	"coolopt/internal/figures"
)

// Options configures Generate.
type Options struct {
	// Title heads the document (default "coolopt reproduction report").
	Title string
	// Fig3Machine selects the machine for the thermal-fit section
	// (default 10, clamped into range).
	Fig3Machine int
}

// Generate writes the full report for a collected dataset.
func Generate(w io.Writer, ds *figures.Dataset, opts Options) error {
	if ds == nil {
		return fmt.Errorf("report: nil dataset")
	}
	if opts.Title == "" {
		opts.Title = "coolopt reproduction report"
	}
	sys := ds.System()
	profile := sys.Profile()
	if opts.Fig3Machine < 0 || opts.Fig3Machine >= profile.Size() {
		opts.Fig3Machine = profile.Size() / 2
	}

	bw := &errWriter{w: w}
	bw.printf("# %s\n\n", opts.Title)
	bw.printf("Room: %d machines, T_max %.1f °C, supply range [%.1f, %.1f] °C.\n\n",
		profile.Size(), profile.TMaxC, profile.TAcMinC, profile.TAcMaxC)

	// --- profiling ---------------------------------------------------
	res := sys.Profiling()
	bw.printf("## Profiling (paper §IV-A)\n\n")
	bw.printf("- Power model: `P = %.2f·L + %.2f W` — fit RMSE %.2f W, R² %.4f (Fig. 2).\n",
		profile.W1, profile.W2, res.PowerFit.RMSE, res.PowerFit.R2)
	worstR2, worstIdx := 1.0, 0
	for i, fit := range res.ThermalFits {
		if fit.R2 < worstR2 {
			worstR2, worstIdx = fit.R2, i
		}
	}
	bw.printf("- Thermal model: per-machine fits all R² ≥ %.4f (worst: machine %d) (Fig. 3).\n",
		worstR2, worstIdx)
	bw.printf("- Cooling model: `P_ac = %.1f·(%.2f − T_ac) W` — fit R² %.4f.\n",
		profile.CoolFactor, profile.SetPointC, res.CoolingFit.R2)
	bw.printf("- Set-point calibration: `T_SP = T_ac + %.5f·Q + %.3f`.\n\n",
		res.Calibration.OffsetPerWatt, res.Calibration.OffsetBase)

	// --- figures ------------------------------------------------------
	bw.printf("## Evaluation figures\n\n")
	for _, fig := range []*figures.Figure{
		ds.Fig5(), ds.Fig6(), ds.Fig7(), ds.Fig8(), ds.Fig9(), ds.Fig10(), ds.ModelValidation(),
	} {
		writeFigure(bw, fig)
	}

	// --- verification --------------------------------------------------
	bw.printf("## Constraint verification (paper §IV-B)\n\n")
	if _, err := ds.VerifyConstraints(); err != nil {
		bw.printf("**VIOLATIONS DETECTED**: %v\n\n", err)
	} else {
		bw.printf("No CPU exceeded T_max and every scenario carried its full load across the sweep.\n\n")
	}

	// --- headline -------------------------------------------------------
	fig9 := ds.Fig9()
	var sum, best float64
	for _, v := range fig9.Series[0].Y {
		sum += v
		if v > best {
			best = v
		}
	}
	avg := sum / float64(len(fig9.Series[0].Y))
	bw.printf("## Headline\n\n")
	bw.printf("Holistic optimal (#8) vs cool job allocation with consolidation (#7): ")
	bw.printf("**average saving %.1f %%, best case %.1f %%** (paper: 7 %% average, up to 18 %%).\n", avg, best)
	return bw.err
}

// writeFigure renders one figure as a markdown table.
func writeFigure(bw *errWriter, fig *figures.Figure) {
	bw.printf("### %s — %s\n\n", fig.ID, fig.Title)
	if len(fig.Series) > 0 && len(fig.Series[0].X) > 0 {
		header := []string{fig.XLabel}
		for _, s := range fig.Series {
			header = append(header, s.Name)
		}
		bw.printf("| %s |\n", strings.Join(header, " | "))
		bw.printf("|%s\n", strings.Repeat("---|", len(header)))
		for i, x := range fig.Series[0].X {
			row := []string{fmt.Sprintf("%.4g", x)}
			for _, s := range fig.Series {
				if i < len(s.Y) {
					row = append(row, fmt.Sprintf("%.1f", s.Y[i]))
				} else {
					row = append(row, "")
				}
			}
			bw.printf("| %s |\n", strings.Join(row, " | "))
		}
	}
	for _, n := range fig.Notes {
		bw.printf("\n*%s*\n", n)
	}
	bw.printf("\n")
}

// Headline returns the (avg, best) #8-vs-#7 saving of a dataset, for
// callers that only need the summary numbers.
func Headline(ds *figures.Dataset) (avgPct, bestPct float64) {
	fig9 := ds.Fig9()
	var sum float64
	for _, v := range fig9.Series[0].Y {
		sum += v
		if v > bestPct {
			bestPct = v
		}
	}
	return sum / float64(len(fig9.Series[0].Y)), bestPct
}

// errWriter latches the first write error so formatting code stays clean.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
