package report

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"coolopt"
	"coolopt/internal/figures"
)

var (
	dsOnce sync.Once
	dsInst *figures.Dataset
	dsErr  error
)

func sharedDataset(t *testing.T) *figures.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		sys, err := coolopt.NewSystem()
		if err != nil {
			dsErr = err
			return
		}
		dsInst, dsErr = figures.Collect(sys, []float64{0.3, 0.6, 0.9})
	})
	if dsErr != nil {
		t.Fatalf("collect: %v", dsErr)
	}
	return dsInst
}

func TestGenerateFullReport(t *testing.T) {
	ds := sharedDataset(t)
	var buf bytes.Buffer
	if err := Generate(&buf, ds, Options{}); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# coolopt reproduction report",
		"## Profiling (paper §IV-A)",
		"Power model:",
		"### Fig. 6",
		"### Fig. 9",
		"### Validation",
		"## Constraint verification",
		"No CPU exceeded T_max",
		"## Headline",
		"average saving",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Markdown tables must be present and aligned-ish.
	if !strings.Contains(out, "|---|") {
		t.Fatal("report has no markdown tables")
	}
}

func TestGenerateValidation(t *testing.T) {
	if err := Generate(&bytes.Buffer{}, nil, Options{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestGenerateCustomTitleAndMachineClamp(t *testing.T) {
	ds := sharedDataset(t)
	var buf bytes.Buffer
	if err := Generate(&buf, ds, Options{Title: "my run", Fig3Machine: 999}); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "# my run") {
		t.Fatal("custom title not used")
	}
}

func TestGeneratePropagatesWriteErrors(t *testing.T) {
	ds := sharedDataset(t)
	if err := Generate(failWriter{}, ds, Options{}); err == nil {
		t.Fatal("write error swallowed")
	}
}

func TestHeadline(t *testing.T) {
	ds := sharedDataset(t)
	avg, best := Headline(ds)
	if avg <= 0 || best < avg {
		t.Fatalf("headline avg %.2f best %.2f implausible", avg, best)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink closed" }
