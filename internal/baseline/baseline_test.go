package baseline

import (
	"math"
	"testing"

	"coolopt/internal/core"
	"coolopt/internal/mathx"
)

// testProfile mirrors the heterogeneous profile used by core's tests.
func testProfile() *core.Profile {
	return &core.Profile{
		W1:         50,
		W2:         35,
		CoolFactor: 70,
		SetPointC:  30,
		TMaxC:      58,
		TAcMinC:    8,
		TAcMaxC:    25,
		Machines: []core.MachineProfile{
			{Alpha: 0.96, Beta: 0.44, Gamma: 1.2},
			{Alpha: 0.93, Beta: 0.45, Gamma: 2.1},
			{Alpha: 0.90, Beta: 0.45, Gamma: 3.0},
			{Alpha: 0.87, Beta: 0.46, Gamma: 3.9},
			{Alpha: 0.83, Beta: 0.47, Gamma: 5.1},
			{Alpha: 0.80, Beta: 0.48, Gamma: 6.0},
		},
	}
}

func newTestPlanner(t *testing.T) *Planner {
	t.Helper()
	pl, err := NewPlanner(testProfile())
	if err != nil {
		t.Fatalf("NewPlanner: %v", err)
	}
	return pl
}

func TestMethodMetadata(t *testing.T) {
	tests := []struct {
		m        Method
		ac       bool
		cons     bool
		contains string
	}{
		{m: EvenNoACNoCons, ac: false, cons: false, contains: "#1"},
		{m: BottomUpNoACNoCons, ac: false, cons: false, contains: "#2"},
		{m: BottomUpNoACCons, ac: false, cons: true, contains: "#3"},
		{m: EvenACNoCons, ac: true, cons: false, contains: "#4"},
		{m: BottomUpACNoCons, ac: true, cons: false, contains: "#5"},
		{m: OptimalACNoCons, ac: true, cons: false, contains: "#6"},
		{m: BottomUpACCons, ac: true, cons: true, contains: "#7"},
		{m: OptimalACCons, ac: true, cons: true, contains: "#8"},
	}
	if len(AllMethods) != 8 {
		t.Fatalf("AllMethods has %d entries", len(AllMethods))
	}
	for _, tt := range tests {
		if tt.m.ACControl() != tt.ac {
			t.Fatalf("%v ACControl = %v", tt.m, tt.m.ACControl())
		}
		if tt.m.Consolidates() != tt.cons {
			t.Fatalf("%v Consolidates = %v", tt.m, tt.m.Consolidates())
		}
		if got := tt.m.String(); len(got) < 2 || got[:2] != tt.contains {
			t.Fatalf("%d String = %q, want prefix %q", int(tt.m), got, tt.contains)
		}
	}
	if got := Method(42).String(); got != "Method(42)" {
		t.Fatalf("unknown method String = %q", got)
	}
}

func TestCoolOrderStartsAtBottom(t *testing.T) {
	pl := newTestPlanner(t)
	order := pl.CoolOrder()
	if order[0] != 0 {
		t.Fatalf("coolest machine = %d, want 0 (bottom)", order[0])
	}
	if order[len(order)-1] != 5 {
		t.Fatalf("warmest machine = %d, want 5 (top)", order[len(order)-1])
	}
}

func TestFixedTAcSafeAtFullLoad(t *testing.T) {
	pl := newTestPlanner(t)
	p := pl.Profile()
	for i := 0; i < p.Size(); i++ {
		if temp := float64(p.CPUTemp(i, 1, pl.FixedTAc())); temp > p.TMaxC+1e-9 {
			t.Fatalf("machine %d at %v °C under fixed supply", i, temp)
		}
	}
}

func TestEvenPlanSplitsUniformly(t *testing.T) {
	pl := newTestPlanner(t)
	plan, err := pl.Plan(EvenACNoCons, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range plan.Loads {
		if !mathx.ApproxEqual(l, 0.5, 1e-12) {
			t.Fatalf("load[%d] = %v, want 0.5", i, l)
		}
	}
	if len(plan.On) != 6 {
		t.Fatalf("even plan powers %d machines", len(plan.On))
	}
}

func TestBottomUpFillsCoolestFirst(t *testing.T) {
	pl := newTestPlanner(t)
	plan, err := pl.Plan(BottomUpACNoCons, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	// Coolest two machines full, third partially, rest idle but on.
	if !mathx.ApproxEqual(plan.Loads[0], 1, 1e-12) || !mathx.ApproxEqual(plan.Loads[1], 1, 1e-12) {
		t.Fatalf("coolest machines not filled: %v", plan.Loads)
	}
	if !mathx.ApproxEqual(plan.Loads[2], 0.5, 1e-12) {
		t.Fatalf("third machine load = %v, want 0.5", plan.Loads[2])
	}
	if plan.Loads[4] != 0 || plan.Loads[5] != 0 {
		t.Fatalf("warm machines loaded: %v", plan.Loads)
	}
	if len(plan.On) != 6 {
		t.Fatalf("no-consolidation plan powers %d machines", len(plan.On))
	}
}

func TestBottomUpConsolidationPowersOffIdle(t *testing.T) {
	pl := newTestPlanner(t)
	plan, err := pl.Plan(BottomUpACCons, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.On) != 3 {
		t.Fatalf("consolidated plan powers %d machines, want 3", len(plan.On))
	}
	if got := plan.TotalLoad(); !mathx.ApproxEqual(got, 2.5, 1e-9) {
		t.Fatalf("total load = %v", got)
	}
}

func TestConsolidatedZeroLoadPowersEverythingOff(t *testing.T) {
	pl := newTestPlanner(t)
	for _, m := range []Method{BottomUpNoACCons, BottomUpACCons, OptimalACCons} {
		plan, err := pl.Plan(m, 0)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(plan.On) != 0 {
			t.Fatalf("%v zero-load plan powers %d machines, want 0", m, len(plan.On))
		}
		if m.ACControl() && float64(plan.TAcC) != pl.Profile().TAcMaxC {
			t.Fatalf("%v empty-room supply %v, want warmest %v", m, plan.TAcC, pl.Profile().TAcMaxC)
		}
		if !m.ACControl() && plan.TAcC != pl.FixedTAc() {
			t.Fatalf("%v empty-room supply %v, want fixed %v", m, plan.TAcC, pl.FixedTAc())
		}
	}
}

func TestNoACMethodsUseFixedSupply(t *testing.T) {
	pl := newTestPlanner(t)
	for _, m := range []Method{EvenNoACNoCons, BottomUpNoACNoCons, BottomUpNoACCons} {
		plan, err := pl.Plan(m, 2)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if plan.TAcC != pl.FixedTAc() {
			t.Fatalf("%v supply = %v, want fixed %v", m, plan.TAcC, pl.FixedTAc())
		}
	}
}

func TestACMethodsRaiseSupplyAtLowLoad(t *testing.T) {
	pl := newTestPlanner(t)
	lowLoad, err := pl.Plan(EvenACNoCons, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if lowLoad.TAcC <= pl.FixedTAc() {
		t.Fatalf("AC control supply %v not above fixed %v at low load", lowLoad.TAcC, pl.FixedTAc())
	}
}

func TestAllMethodsProduceValidPlans(t *testing.T) {
	pl := newTestPlanner(t)
	p := pl.Profile()
	for _, m := range AllMethods {
		for _, load := range []float64{0.6, 1.8, 3, 4.2, 5.4} {
			plan, err := pl.Plan(m, load)
			if err != nil {
				t.Fatalf("%v at load %v: %v", m, load, err)
			}
			if err := p.ValidatePlan(plan, load, 1e-6); err != nil {
				t.Fatalf("%v at load %v: invalid plan: %v", m, load, err)
			}
		}
	}
}

func TestOptimalNeverWorseUnderModel(t *testing.T) {
	// Under the model, #6 must not lose to #4/#5 and #8 must not lose
	// to #7 — optimality is exactly what core guarantees.
	pl := newTestPlanner(t)
	p := pl.Profile()
	for _, load := range []float64{0.6, 1.8, 3, 4.2, 5.4} {
		power := make(map[Method]float64, len(AllMethods))
		for _, m := range AllMethods {
			plan, err := pl.Plan(m, load)
			if err != nil {
				t.Fatalf("%v: %v", m, err)
			}
			power[m] = float64(p.PlanPower(plan))
		}
		if power[OptimalACNoCons] > power[EvenACNoCons]+1e-6 ||
			power[OptimalACNoCons] > power[BottomUpACNoCons]+1e-6 {
			t.Fatalf("load %v: #6 (%v W) loses to #4 (%v W) or #5 (%v W)",
				load, power[OptimalACNoCons], power[EvenACNoCons], power[BottomUpACNoCons])
		}
		if power[OptimalACCons] > power[BottomUpACCons]+1e-6 {
			t.Fatalf("load %v: #8 (%v W) loses to #7 (%v W)",
				load, power[OptimalACCons], power[BottomUpACCons])
		}
	}
}

func TestConsolidationHelpsAtLowLoadUnderModel(t *testing.T) {
	pl := newTestPlanner(t)
	p := pl.Profile()
	plan3, err := pl.Plan(BottomUpNoACCons, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := pl.Plan(BottomUpNoACNoCons, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if p.PlanPower(plan3) >= p.PlanPower(plan2) {
		t.Fatalf("consolidation (%v W) not cheaper than no consolidation (%v W) at low load",
			p.PlanPower(plan3), p.PlanPower(plan2))
	}
}

func TestPlanRejectsBadInput(t *testing.T) {
	pl := newTestPlanner(t)
	if _, err := pl.Plan(EvenACNoCons, -1); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := pl.Plan(EvenACNoCons, 100); err == nil {
		t.Fatal("overload accepted")
	}
	if _, err := pl.Plan(Method(0), 1); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestNewPlannerRejectsBadProfile(t *testing.T) {
	p := testProfile()
	p.W1 = -1
	if _, err := NewPlanner(p); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestPlansAreIndependentAllocations(t *testing.T) {
	// Two plans from the same planner must not share backing arrays.
	pl := newTestPlanner(t)
	a, err := pl.Plan(EvenACNoCons, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pl.Plan(EvenACNoCons, 3)
	if err != nil {
		t.Fatal(err)
	}
	a.Loads[0] = math.NaN()
	if math.IsNaN(b.Loads[0]) {
		t.Fatal("plans share load slices")
	}
}
