// Package baseline implements the load-allocation policies the paper
// compares against and the eight-scenario evaluation matrix of Fig. 4:
//
//	#1 Even,      no AC control, no consolidation
//	#2 Bottom-up, no AC control, no consolidation
//	#3 Bottom-up, no AC control, consolidation
//	#4 Even,      AC control,    no consolidation
//	#5 Bottom-up, AC control,    no consolidation
//	#6 Optimal,   AC control,    no consolidation
//	#7 Bottom-up, AC control,    consolidation   (best prior art)
//	#8 Optimal,   AC control,    consolidation   (the paper's solution)
//
// "Even" is standard load balancing. "Bottom-up" is the cool job
// allocation of Bash & Forman (USENIX ATC'07): fill machines up, coolest
// spot first. "Optimal" is the paper's closed form (internal/core).
// Without AC control the supply temperature is pinned at the highest value
// that is safe when every machine runs at full load (paper §IV-B); with AC
// control each method raises the supply as far as its own allocation
// allows.
package baseline

import (
	"fmt"
	"sort"

	"coolopt/internal/core"
	"coolopt/internal/units"
)

// Method identifies one evaluation scenario; the constant values match the
// paper's numbering in Fig. 4.
type Method int

// The eight scenarios of Fig. 4.
const (
	EvenNoACNoCons Method = iota + 1
	BottomUpNoACNoCons
	BottomUpNoACCons
	EvenACNoCons
	BottomUpACNoCons
	OptimalACNoCons
	BottomUpACCons
	OptimalACCons
)

// AllMethods lists the scenarios in paper order.
var AllMethods = []Method{
	EvenNoACNoCons, BottomUpNoACNoCons, BottomUpNoACCons, EvenACNoCons,
	BottomUpACNoCons, OptimalACNoCons, BottomUpACCons, OptimalACCons,
}

// String returns the paper-style label, e.g. "#7 Bottom-up (AC, consolidation)".
func (m Method) String() string {
	switch m {
	case EvenNoACNoCons:
		return "#1 Even (no AC control)"
	case BottomUpNoACNoCons:
		return "#2 Bottom-up (no AC control)"
	case BottomUpNoACCons:
		return "#3 Bottom-up (no AC control, consolidation)"
	case EvenACNoCons:
		return "#4 Even (AC control)"
	case BottomUpACNoCons:
		return "#5 Bottom-up (AC control)"
	case OptimalACNoCons:
		return "#6 Optimal (AC control)"
	case BottomUpACCons:
		return "#7 Bottom-up (AC control, consolidation)"
	case OptimalACCons:
		return "#8 Optimal (AC control, consolidation)"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ACControl reports whether the scenario tunes the supply temperature.
func (m Method) ACControl() bool {
	switch m {
	case EvenNoACNoCons, BottomUpNoACNoCons, BottomUpNoACCons:
		return false
	default:
		return true
	}
}

// Consolidates reports whether the scenario powers machines off.
func (m Method) Consolidates() bool {
	switch m {
	case BottomUpNoACCons, BottomUpACCons, OptimalACCons:
		return true
	default:
		return false
	}
}

// Planner produces executable plans for every scenario against one
// profiled machine room.
type Planner struct {
	profile   *core.Profile
	optimizer *core.Optimizer
	coolOrder []int         // machine IDs coolest-spot first
	fixedTAc  units.Celsius // supply temperature for the no-AC-control scenarios
}

// NewPlanner builds a planner. The cool order ranks machines by their
// modeled idle CPU temperature at a reference supply temperature — the
// measurable proxy for "coolest spot" that the cool-job-allocation
// operators would use. The fixed supply temperature is the highest value
// safe with every machine at full load.
func NewPlanner(p *core.Profile, opts ...core.PreprocessOption) (*Planner, error) {
	snap, err := core.NewSnapshot(p, 0, opts...)
	if err != nil {
		return nil, err
	}
	return NewPlannerOn(snap)
}

// NewPlannerOn builds a planner over an existing frozen snapshot, sharing
// its consolidation tables instead of re-running preprocessing. Like the
// snapshot itself, the returned planner is read-only after construction
// and safe for concurrent Plan calls.
func NewPlannerOn(snap *core.Snapshot) (*Planner, error) {
	return newPlanner(snap.Profile(), core.NewOptimizerFromSnapshot(snap))
}

// NewPlannerOnProfile builds a planner without whole-room consolidation
// tables: every scenario works except #8, which needs the kinetic
// structure and returns an error. This is the construction for pod-only
// serving (rooms past the whole-room table cap), where the hierarchical
// engine path answers #8 instead.
func NewPlannerOnProfile(p *core.Profile) (*Planner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return newPlanner(p, nil)
}

func newPlanner(p *core.Profile, opt *core.Optimizer) (*Planner, error) {
	order := make([]int, p.Size())
	for i := range order {
		order[i] = i
	}
	ref := units.Celsius((p.TAcMinC + p.TAcMaxC) / 2)
	idleTemp := func(i int) float64 { return float64(p.CPUTemp(i, 0, ref)) }
	sort.SliceStable(order, func(a, b int) bool {
		return idleTemp(order[a]) < idleTemp(order[b])
	})

	all := make([]int, p.Size())
	copy(all, order)
	sort.Ints(all)
	full := make([]float64, p.Size())
	for i := range full {
		full[i] = 1
	}
	fixed, err := p.MaxSafeTAc(all, full)
	if err != nil {
		return nil, fmt.Errorf("baseline: no safe fixed supply temperature: %w", err)
	}

	return &Planner{profile: p, optimizer: opt, coolOrder: order, fixedTAc: fixed}, nil
}

// Profile returns the profile the planner plans against.
func (pl *Planner) Profile() *core.Profile { return pl.profile }

// Snapshot returns the frozen model backing the planner, or nil for a
// profile-only planner (NewPlannerOnProfile).
func (pl *Planner) Snapshot() *core.Snapshot {
	if pl.optimizer == nil {
		return nil
	}
	return pl.optimizer.Snapshot()
}

// FixedTAc returns the supply temperature used when AC control is off.
func (pl *Planner) FixedTAc() units.Celsius { return pl.fixedTAc }

// CoolOrder returns machine IDs coolest-spot first.
func (pl *Planner) CoolOrder() []int {
	return append([]int(nil), pl.coolOrder...)
}

// Plan returns the plan for a scenario at the given total load (in
// machine-utilization units).
func (pl *Planner) Plan(m Method, load float64) (*core.Plan, error) {
	p := pl.profile
	n := p.Size()
	if load < 0 || load > float64(n) {
		return nil, fmt.Errorf("baseline: load %v outside [0, %d]", load, n)
	}

	// Zero demand with consolidation: power the whole room off (the
	// CRAC idles at its warmest supply).
	if load == 0 && m.Consolidates() {
		return &core.Plan{Loads: make([]float64, n), TAcC: pl.tAcForOff(m)}, nil
	}

	var plan *core.Plan
	switch m {
	case EvenNoACNoCons, EvenACNoCons:
		plan = pl.evenPlan(load)
	case BottomUpNoACNoCons, BottomUpACNoCons:
		plan = pl.bottomUpPlan(load, false)
	case BottomUpNoACCons, BottomUpACCons:
		plan = pl.bottomUpPlan(load, true)
	case OptimalACNoCons:
		return p.PlanAllOn(load)
	case OptimalACCons:
		if pl.optimizer == nil {
			return nil, fmt.Errorf("baseline: %v requires consolidation tables (profile-only planner; use the hierarchical engine path)", m)
		}
		return pl.optimizer.Plan(load)
	default:
		return nil, fmt.Errorf("baseline: unknown method %d", int(m))
	}

	if m.ACControl() {
		tAc, err := p.MaxSafeTAc(plan.On, plan.Loads)
		if err != nil {
			return nil, fmt.Errorf("baseline: %v infeasible at load %v: %w", m, load, err)
		}
		plan.TAcC = tAc
	} else {
		plan.TAcC = pl.fixedTAc
	}
	return plan, nil
}

// tAcForOff returns the supply command for an empty room: the fixed
// setting for no-AC methods, the warmest allowed otherwise.
func (pl *Planner) tAcForOff(m Method) units.Celsius {
	if !m.ACControl() {
		return pl.fixedTAc
	}
	return units.Celsius(pl.profile.TAcMaxC)
}

// evenPlan spreads the load uniformly over all machines.
func (pl *Planner) evenPlan(load float64) *core.Plan {
	n := pl.profile.Size()
	loads := make([]float64, n)
	on := make([]int, n)
	for i := range on {
		on[i] = i
		loads[i] = load / float64(n)
	}
	return &core.Plan{On: on, Loads: loads}
}

// bottomUpPlan is cool job allocation: fill machines to capacity coolest
// spot first. With consolidation, unused machines are powered off.
func (pl *Planner) bottomUpPlan(load float64, consolidate bool) *core.Plan {
	n := pl.profile.Size()
	loads := make([]float64, n)
	used := make([]bool, n)
	remaining := load
	for _, i := range pl.coolOrder {
		if remaining <= 0 {
			break
		}
		l := remaining
		if l > 1 {
			l = 1
		}
		loads[i] = l
		used[i] = true
		remaining -= l
	}

	var on []int
	for i := 0; i < n; i++ {
		if !consolidate || used[i] {
			on = append(on, i)
		}
	}
	return &core.Plan{On: on, Loads: loads}
}
