// Package ablation quantifies how the paper's headline result — the
// saving of the holistic optimal solution (#8) over cool job allocation
// with consolidation (#7) — depends on the design choices DESIGN.md calls
// out: thermal heterogeneity of the rack, room scale, the cooling plant's
// efficiency (cooling share of total power), and the execution-layer
// safety margin. Each study returns a figures.Figure so cmd/paperbench
// can print it alongside the paper's own figures.
package ablation

import (
	"fmt"

	"coolopt"
	"coolopt/internal/figures"
)

// savingLoads is the load grid over which savings are averaged; the
// extremes are excluded because every method converges there.
var savingLoads = []float64{0.3, 0.5, 0.7, 0.9}

// averageSaving measures the mean #8-vs-#7 saving on a system.
func averageSaving(sys *coolopt.System) (float64, error) {
	var sum float64
	for _, lf := range savingLoads {
		m7, err := sys.Evaluate(coolopt.BottomUpACCons, lf)
		if err != nil {
			return 0, err
		}
		m8, err := sys.Evaluate(coolopt.OptimalACCons, lf)
		if err != nil {
			return 0, err
		}
		sum += float64(m7.TotalW-m8.TotalW) / float64(m7.TotalW) * 100
	}
	return sum / float64(len(savingLoads)), nil
}

// Heterogeneity sweeps the rack's supply-air gradient from uniform to
// steep. The measured saving decomposes into two parts: a
// consolidation-policy component that survives even on a uniform rack
// (the optimizer trades extra idle machines for warmer supply air, which
// coolest-first filling cannot do), plus a spatial-diversity component
// that grows with the gradient — the part that is specifically the
// paper's thermal-aware contribution.
func Heterogeneity(seed int64) (*figures.Figure, error) {
	type level struct {
		name        string
		bottom, top float64
		jitter      float64
	}
	levels := []level{
		{name: "uniform", bottom: 0.85, top: 0.85, jitter: 0},
		{name: "mild", bottom: 0.95, top: 0.75, jitter: 0.03},
		{name: "default", bottom: 0.98, top: 0.60, jitter: 0.07},
		{name: "steep", bottom: 0.99, top: 0.50, jitter: 0.10},
	}
	s := figures.Series{Name: "avg saving #8 vs #7 (%)"}
	notes := []string{"x = heterogeneity level index; legend below"}
	for i, lv := range levels {
		sys, err := coolopt.NewSystem(
			coolopt.WithSeed(seed),
			coolopt.WithGradient(lv.bottom, lv.top),
			coolopt.WithJitter(lv.jitter),
		)
		if err != nil {
			return nil, fmt.Errorf("ablation: heterogeneity %q: %w", lv.name, err)
		}
		saving, err := averageSaving(sys)
		if err != nil {
			return nil, fmt.Errorf("ablation: heterogeneity %q: %w", lv.name, err)
		}
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, saving)
		notes = append(notes, fmt.Sprintf("%d = %s (supply fraction %.2f→%.2f, jitter %.0f%%)",
			i, lv.name, lv.bottom, lv.top, lv.jitter*100))
	}
	return &figures.Figure{
		ID:     "Ablation A",
		Title:  "Saving of #8 over #7 vs rack thermal heterogeneity",
		XLabel: "Level",
		YLabel: "Saving (%)",
		Series: []figures.Series{s},
		Notes:  notes,
	}, nil
}

// Scale grows the room. The paper conjectures that "savings in larger
// systems will be more pronounced, as larger spatial diversity gives rise
// to more opportunities for optimization."
func Scale(seed int64) (*figures.Figure, error) {
	s := figures.Series{Name: "avg saving #8 vs #7 (%)"}
	for _, n := range []int{10, 20, 40} {
		sys, err := coolopt.NewSystem(coolopt.WithSeed(seed), coolopt.WithMachines(n))
		if err != nil {
			return nil, fmt.Errorf("ablation: scale %d: %w", n, err)
		}
		saving, err := averageSaving(sys)
		if err != nil {
			return nil, fmt.Errorf("ablation: scale %d: %w", n, err)
		}
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, saving)
	}
	return &figures.Figure{
		ID:     "Ablation B",
		Title:  "Saving of #8 over #7 vs room size",
		XLabel: "Machines",
		YLabel: "Saving (%)",
		Series: []figures.Series{s},
		Notes:  []string{"tests the paper's conjecture that larger rooms save more"},
	}, nil
}

// CoolingShare scales the CRAC's COP curve. With a very efficient plant
// the cooling side of the bill shrinks and so does the room for joint
// optimization.
func CoolingShare(seed int64) (*figures.Figure, error) {
	saving := figures.Series{Name: "avg saving #8 vs #7 (%)"}
	share := figures.Series{Name: "cooling share of total (%)"}
	for _, scale := range []float64{0.75, 1.0, 1.5, 2.0} {
		sys, err := coolopt.NewSystem(coolopt.WithSeed(seed), coolopt.WithCOPScale(scale))
		if err != nil {
			return nil, fmt.Errorf("ablation: COP scale %v: %w", scale, err)
		}
		sv, err := averageSaving(sys)
		if err != nil {
			return nil, fmt.Errorf("ablation: COP scale %v: %w", scale, err)
		}
		m8, err := sys.Evaluate(coolopt.OptimalACCons, 0.6)
		if err != nil {
			return nil, err
		}
		saving.X = append(saving.X, scale)
		saving.Y = append(saving.Y, sv)
		share.X = append(share.X, scale)
		share.Y = append(share.Y, float64(m8.CoolW)/float64(m8.TotalW)*100)
	}
	return &figures.Figure{
		ID:     "Ablation C",
		Title:  "Saving of #8 over #7 vs cooling-plant efficiency",
		XLabel: "COP scale",
		YLabel: "%",
		Series: []figures.Series{saving, share},
		Notes:  []string{"COP scale > 1 = more efficient plant; cooling share and savings fall together"},
	}, nil
}

// SensorNoise scales the measurement chain and re-runs the whole
// methodology — profiling included — to test its robustness: the paper's
// approach only works if noisy meters and quantized temperature probes
// still identify a usable model.
func SensorNoise(seed int64) (*figures.Figure, error) {
	saving := figures.Series{Name: "avg saving #8 vs #7 (%)"}
	violations := figures.Series{Name: "violations (count)"}
	for _, scale := range []float64{0.25, 1, 3, 6} {
		sys, err := coolopt.NewSystem(
			coolopt.WithSeed(seed),
			coolopt.WithSensorNoise(0.4*scale, 0.8*scale),
		)
		if err != nil {
			return nil, fmt.Errorf("ablation: noise ×%v: %w", scale, err)
		}
		sv, err := averageSaving(sys)
		if err != nil {
			return nil, fmt.Errorf("ablation: noise ×%v: %w", scale, err)
		}
		var bad float64
		for _, lf := range savingLoads {
			m, err := sys.Evaluate(coolopt.OptimalACCons, lf)
			if err != nil {
				return nil, err
			}
			if m.Violated {
				bad++
			}
		}
		saving.X = append(saving.X, scale)
		saving.Y = append(saving.Y, sv)
		violations.X = append(violations.X, scale)
		violations.Y = append(violations.Y, bad)
	}
	return &figures.Figure{
		ID:     "Ablation F",
		Title:  "Methodology robustness vs sensor noise",
		XLabel: "Noise ×",
		YLabel: "% / count",
		Series: []figures.Series{saving, violations},
		Notes:  []string{"the whole pipeline — profiling, calibration, planning — re-runs at each noise level"},
	}, nil
}

// Margin sweeps the execution guard band. Larger margins burn cooling
// power on every method but protect against model error; this study shows
// the cost of the default 2.5 °C choice and where violations begin.
func Margin(seed int64) (*figures.Figure, error) {
	power := figures.Series{Name: "#8 power at 70% load (W)"}
	violations := figures.Series{Name: "violations (0/1)"}
	for _, margin := range []float64{0, 1, 2.5, 4} {
		sys, err := coolopt.NewSystem(coolopt.WithSeed(seed), coolopt.WithSafetyMargin(margin))
		if err != nil {
			return nil, fmt.Errorf("ablation: margin %v: %w", margin, err)
		}
		m, err := sys.Evaluate(coolopt.OptimalACCons, 0.7)
		if err != nil {
			return nil, err
		}
		power.X = append(power.X, margin)
		power.Y = append(power.Y, float64(m.TotalW))
		v := 0.0
		if m.Violated {
			v = 1
		}
		violations.X = append(violations.X, margin)
		violations.Y = append(violations.Y, v)
	}
	return &figures.Figure{
		ID:     "Ablation D",
		Title:  "Guard-band cost: #8 power and T_max violations vs safety margin",
		XLabel: "Margin (°C)",
		YLabel: "W / flag",
		Series: []figures.Series{power, violations},
		Notes:  []string{"the default margin (2.5 °C) is the smallest on this grid with zero violations across the full sweep"},
	}, nil
}
