package ablation

import (
	"testing"
)

func TestHeterogeneitySavingGrowsWithGradient(t *testing.T) {
	fig, err := Heterogeneity(1)
	if err != nil {
		t.Fatalf("Heterogeneity: %v", err)
	}
	ys := fig.Series[0].Y
	if len(ys) != 4 {
		t.Fatalf("levels = %d, want 4", len(ys))
	}
	// The saving decomposes into a consolidation-policy component
	// (present even on a uniform rack, where #8 still trades extra idle
	// machines for warmer supply air) plus a spatial-diversity
	// component that grows with the gradient.
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]-0.5 {
			t.Fatalf("saving not monotone in heterogeneity: %v", ys)
		}
	}
	if ys[3] < ys[0]+2 {
		t.Fatalf("steep gradient adds only %.1f pp over uniform (%v)", ys[3]-ys[0], ys)
	}
	if ys[0] <= 0 {
		t.Fatalf("uniform-rack saving %.1f%% should stay positive (k/T_ac trade)", ys[0])
	}
}

func TestScaleSavingDoesNotCollapse(t *testing.T) {
	fig, err := Scale(1)
	if err != nil {
		t.Fatalf("Scale: %v", err)
	}
	ys := fig.Series[0].Y
	if len(ys) != 3 {
		t.Fatalf("sizes = %d, want 3", len(ys))
	}
	for i, y := range ys {
		if y < 1 {
			t.Fatalf("size index %d: saving %.1f%% below 1%%", i, y)
		}
	}
	// Paper's conjecture: the larger rooms save at least as much as the
	// smallest one (allow a small tolerance for seed noise).
	if ys[2] < ys[0]-2 {
		t.Fatalf("40-machine saving %.1f%% collapsed versus 10-machine %.1f%%", ys[2], ys[0])
	}
}

func TestCoolingShareMonotonicity(t *testing.T) {
	fig, err := CoolingShare(1)
	if err != nil {
		t.Fatalf("CoolingShare: %v", err)
	}
	share := fig.Series[1].Y
	// A more efficient plant must shrink the cooling share.
	if share[len(share)-1] >= share[0] {
		t.Fatalf("cooling share did not fall with COP scale: %v", share)
	}
	saving := fig.Series[0].Y
	// And the joint-optimization saving should shrink with it.
	if saving[len(saving)-1] >= saving[0] {
		t.Fatalf("saving did not fall with COP scale: %v", saving)
	}
}

func TestMarginCostsPower(t *testing.T) {
	fig, err := Margin(1)
	if err != nil {
		t.Fatalf("Margin: %v", err)
	}
	power := fig.Series[0].Y
	// A 4 °C margin must cost more than no margin.
	if power[len(power)-1] <= power[0] {
		t.Fatalf("larger margin did not cost power: %v", power)
	}
	violations := fig.Series[1].Y
	// The default margin's grid point (2.5 °C) must be violation-free.
	if violations[2] != 0 {
		t.Fatalf("default margin shows violations: %v", violations)
	}
}

func TestSensorNoiseRobustness(t *testing.T) {
	fig, err := SensorNoise(1)
	if err != nil {
		t.Fatalf("SensorNoise: %v", err)
	}
	saving := fig.Series[0].Y
	violations := fig.Series[1].Y
	// Even at 6× nominal noise the methodology must keep a positive
	// saving and avoid temperature violations.
	for i := range saving {
		if saving[i] <= 0 {
			t.Fatalf("noise level %d: saving %.1f%% not positive", i, saving[i])
		}
		if violations[i] > 0 {
			t.Fatalf("noise level %d: %v T_max violations", i, violations[i])
		}
	}
}
