package cooling

import (
	"testing"

	"coolopt/internal/mathx"
	"coolopt/internal/units"
)

func testParams() Params {
	return Params{
		Flow:      1.2,
		CAir:      1200,
		COP:       DefaultCOP,
		FanW:      250,
		SupplyMin: 10,
		SupplyMax: 25,
		Gain:      0.02,
	}
}

func TestParamsValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{name: "flow", mutate: func(p *Params) { p.Flow = 0 }},
		{name: "cair", mutate: func(p *Params) { p.CAir = 0 }},
		{name: "fan", mutate: func(p *Params) { p.FanW = -1 }},
		{name: "bounds", mutate: func(p *Params) { p.SupplyMin, p.SupplyMax = 20, 10 }},
		{name: "gain", mutate: func(p *Params) { p.Gain = 0 }},
		{name: "cop", mutate: func(p *Params) { p.COP = COP{A: 0, B: 0, C: -1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := testParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("invalid params accepted")
			}
		})
	}
}

func TestCOPIncreasesWithSupplyTemperature(t *testing.T) {
	prev := DefaultCOP.At(8)
	for temp := 10.0; temp <= 26; temp += 2 {
		cop := DefaultCOP.At(temp)
		if cop <= prev {
			t.Fatalf("COP not increasing at %v °C: %v ≤ %v", temp, cop, prev)
		}
		prev = cop
	}
}

func TestNewRejectsInvalidParams(t *testing.T) {
	p := testParams()
	p.Flow = 0
	if _, err := New(p, 30); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestStepDrivesSupplyDownWhenExhaustHot(t *testing.T) {
	c, err := New(testParams(), 30)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Supply()
	c.Step(35 /* exhaust above set point */, 1)
	if c.Supply() >= before {
		t.Fatalf("supply did not drop: %v → %v", before, c.Supply())
	}
}

func TestStepDrivesSupplyUpWhenExhaustCold(t *testing.T) {
	c, err := New(testParams(), 30)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Supply()
	c.Step(25 /* exhaust below set point */, 1)
	if c.Supply() <= before {
		t.Fatalf("supply did not rise: %v → %v", before, c.Supply())
	}
}

func TestStepRespectsActuationBounds(t *testing.T) {
	c, err := New(testParams(), 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		c.Step(80, 1) // persistently hot exhaust
	}
	if got := c.Supply(); got != testParams().SupplyMin {
		t.Fatalf("supply = %v, want clamp at %v", got, testParams().SupplyMin)
	}
	for i := 0; i < 10000; i++ {
		c.Step(-20, 1) // persistently cold exhaust
	}
	if got := c.Supply(); got != testParams().SupplyMax {
		t.Fatalf("supply = %v, want clamp at %v", got, testParams().SupplyMax)
	}
}

func TestHeatRemoved(t *testing.T) {
	c, err := New(testParams(), 30)
	if err != nil {
		t.Fatal(err)
	}
	supply := c.Supply()
	exhaust := units.Celsius(supply + 2)
	want := testParams().CAir * testParams().Flow * 2
	if got := c.HeatRemoved(exhaust); !mathx.ApproxEqual(float64(got), want, 1e-9) {
		t.Fatalf("HeatRemoved = %v, want %v", got, want)
	}
	if got := c.HeatRemoved(units.Celsius(supply - 5)); got != 0 {
		t.Fatalf("HeatRemoved below supply temp = %v, want 0", got)
	}
}

func TestElectricalPowerIncludesFanFloor(t *testing.T) {
	c, err := New(testParams(), 30)
	if err != nil {
		t.Fatal(err)
	}
	// No heat to remove → only the fan draws power.
	if got := c.ElectricalPower(units.Celsius(c.Supply())); !mathx.ApproxEqual(float64(got), testParams().FanW, 1e-9) {
		t.Fatalf("idle electrical power = %v, want fan %v", got, testParams().FanW)
	}
}

func TestElectricalPowerCheaperAtWarmerSupply(t *testing.T) {
	// Removing the same heat with warmer supply air must cost less —
	// this is the physical effect the paper's optimization exploits.
	p := testParams()
	cold, err := New(p, 30)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := New(p, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the two units to different supply temperatures.
	for i := 0; i < 5000; i++ {
		cold.Step(80, 1)
		warm.Step(-20, 1)
	}
	const q = 1500.0 // Watts of heat in the air stream
	dT := func(c *CRAC) float64 { return q / (p.CAir * p.Flow) }
	pCold := cold.ElectricalPower(units.Celsius(cold.Supply() + dT(cold)))
	pWarm := warm.ElectricalPower(units.Celsius(warm.Supply() + dT(warm)))
	if pWarm >= pCold {
		t.Fatalf("warm supply power %v ≥ cold supply power %v", pWarm, pCold)
	}
}

func TestSetSetPoint(t *testing.T) {
	c, err := New(testParams(), 30)
	if err != nil {
		t.Fatal(err)
	}
	c.SetSetPoint(28)
	if c.SetPoint() != 28 {
		t.Fatalf("SetPoint = %v, want 28", c.SetPoint())
	}
}

func TestControlLoopConvergesOnLinearPlant(t *testing.T) {
	// Close the loop against a toy plant where exhaust = supply + Q/(c·f).
	p := testParams()
	c, err := New(p, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Choose a heat load whose required supply temperature,
	// T_SP − Q/(c·f) = 30 − 8.33 ≈ 21.7 °C, is inside the actuation range.
	const q = 12000.0
	rise := q / (p.CAir * p.Flow)
	var exhaust float64
	for i := 0; i < 20000; i++ {
		exhaust = c.Supply() + rise
		c.Step(exhaust, 1)
	}
	if !mathx.ApproxEqual(exhaust, 30, 1e-3) {
		t.Fatalf("exhaust settled at %v, want set point 30", exhaust)
	}
	if !mathx.ApproxEqual(c.Supply(), 30-rise, 1e-3) {
		t.Fatalf("supply settled at %v, want %v", c.Supply(), 30-rise)
	}
}
