// Package cooling models the machine room's computer-room air conditioner
// (CRAC) — the paper's Liebert Challenger 3000.
//
// Per paper §II-B the unit runs a fixed air flow f_ac and an internal
// control loop that modulates chilled water so the *exhaust* (return) air
// temperature tracks a set point T_SP; the supply temperature T_ac is the
// resulting actuated quantity. The paper models the unit's electrical power
// as P_ac = c·f_ac·(T_SP − T_ac) with c = c_air/η (Eq. 10).
//
// The simulator's ground truth is slightly richer so that the paper's
// linear model is an approximation rather than an identity: electrical
// power is the removed heat divided by a coefficient of performance that
// improves with warmer supply air (the standard quadratic CRAC COP curve),
// plus a constant fan draw. Around an operating point this reduces to the
// paper's affine-in-T_ac cost, which the profiling pipeline calibrates.
package cooling

import (
	"fmt"

	"coolopt/internal/mathx"
	"coolopt/internal/units"
)

// COP is a quadratic coefficient-of-performance curve in the supply air
// temperature: COP(t) = A·t² + B·t + C with t in °C.
type COP struct {
	A float64
	B float64
	C float64
}

// DefaultCOP is the widely used chilled-water CRAC curve
// COP(t) = 0.0068·t² + 0.0008·t + 0.458 (HP Labs, Moore et al.).
var DefaultCOP = COP{A: 0.0068, B: 0.0008, C: 0.458}

// At evaluates the curve at supply temperature t in °C.
func (c COP) At(t float64) float64 {
	return c.A*t*t + c.B*t + c.C
}

// Params configures a CRAC unit.
type Params struct {
	// Flow is the fixed air flow f_ac in m³/s.
	Flow float64
	// CAir is the volumetric heat capacity of air in J/(K·m³).
	CAir float64
	// COP is the ground-truth coefficient-of-performance curve.
	COP COP
	// FanW is the constant fan/blower electrical draw in Watts.
	FanW float64
	// SupplyMin and SupplyMax bound the achievable supply temperature
	// in °C.
	SupplyMin float64
	SupplyMax float64
	// Gain is the integral gain of the exhaust-tracking loop in
	// (°C of supply) per (°C·s of exhaust error).
	Gain float64
}

// Validate checks the configuration.
func (p Params) Validate() error {
	switch {
	case p.Flow <= 0:
		return fmt.Errorf("cooling: Flow = %v, must be positive", p.Flow)
	case p.CAir <= 0:
		return fmt.Errorf("cooling: CAir = %v, must be positive", p.CAir)
	case p.FanW < 0:
		return fmt.Errorf("cooling: FanW = %v, must be non-negative", p.FanW)
	case p.SupplyMin >= p.SupplyMax:
		return fmt.Errorf("cooling: supply bounds [%v, %v] invalid", p.SupplyMin, p.SupplyMax)
	case p.Gain <= 0:
		return fmt.Errorf("cooling: Gain = %v, must be positive", p.Gain)
	}
	if p.COP.At(p.SupplyMin) <= 0 {
		return fmt.Errorf("cooling: COP non-positive at SupplyMin %v °C", p.SupplyMin)
	}
	return nil
}

// CRAC is the stateful cooling unit. Build with New.
type CRAC struct {
	params   Params
	setPoint float64 // exhaust set point T_SP, °C
	supply   float64 // current supply temperature T_ac, °C
}

// New builds a CRAC with the given exhaust set point; the supply
// temperature starts mid-range.
func New(p Params, setPointC float64) (*CRAC, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &CRAC{
		params:   p,
		setPoint: setPointC,
		supply:   (p.SupplyMin + p.SupplyMax) / 2,
	}, nil
}

// Clone returns an independent copy of the unit, including its current
// control-loop state.
func (c *CRAC) Clone() *CRAC {
	cp := *c
	return &cp
}

// Params returns the unit's configuration.
func (c *CRAC) Params() Params { return c.params }

// SetPoint returns the current exhaust set point T_SP in °C.
func (c *CRAC) SetPoint() float64 { return c.setPoint }

// SetSetPoint changes the exhaust set point T_SP; the internal loop will
// converge the exhaust temperature to it over the following steps.
func (c *CRAC) SetSetPoint(tSPC float64) { c.setPoint = tSPC }

// Supply returns the current supply air temperature T_ac in °C.
func (c *CRAC) Supply() float64 { return c.supply }

// Step advances the internal control loop by dt seconds given the measured
// exhaust (return) air temperature. If the exhaust runs above the set point
// the loop lowers the supply temperature, and vice versa, within the
// actuation bounds.
func (c *CRAC) Step(tExhaustC, dt float64) {
	err := tExhaustC - c.setPoint
	c.supply = mathx.Clamp(c.supply-c.params.Gain*err*dt, c.params.SupplyMin, c.params.SupplyMax)
}

// HeatRemoved returns the heat flow currently being extracted from the
// air stream (Eq. 7's control-volume balance): c_air·f_ac·(T_exhaust −
// T_ac), floored at zero.
func (c *CRAC) HeatRemoved(tExhaust units.Celsius) units.JoulesPerSec {
	q := c.params.CAir * c.params.Flow * tExhaust.DeltaTo(units.Celsius(c.supply))
	if q < 0 {
		return 0
	}
	return units.JoulesPerSec(q)
}

// ElectricalPower returns the unit's ground-truth electrical draw for the
// given exhaust temperature: fan power plus removed heat divided by the
// COP at the current supply temperature (the richer truth that Eq. 10
// linearizes).
func (c *CRAC) ElectricalPower(tExhaust units.Celsius) units.Watts {
	cop := c.params.COP.At(c.supply)
	if cop <= 0 {
		// Out of the physical regime; treat as worst case COP of the
		// coldest allowed supply.
		cop = c.params.COP.At(c.params.SupplyMin)
	}
	return units.Watts(c.params.FanW) + units.Watts(float64(c.HeatRemoved(tExhaust))/cop)
}
