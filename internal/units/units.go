// Package units defines the physical dimensions of the paper's model
// (§II, Eqs. 6–10) as distinct Go types, so that the type checker — and
// the cooloptlint units analyzer on top of it — rejects arithmetic that
// mixes a temperature with a power or silently casts one dimension into
// another.
//
// The mapping to the paper's symbols:
//
//	Celsius      T_ac, T_SP, T_i^cpu, γ_i   (Eqs. 7, 8, 10)
//	Watts        P_i, P_ac, W1·L_i, W2      (Eqs. 9, 10, 23)
//	JoulesPerSec Q, the heat flow removed by the CRAC (Eq. 7)
//	Alpha        α_i, the dimensionless supply-coupling (Eq. 8)
//	BetaCPerW    β_i in °C/W, power-to-temperature coupling (Eq. 8)
//
// All types are defined on float64: storage, JSON encodings, and the raw
// numeric machinery (internal/mathx, the kinetic tables) keep plain
// floats, while signatures that realize a paper equation carry the typed
// dimension. Converting to or from float64 is the sanctioned escape hatch
// at those boundaries; converting one unit type *directly into another*
// (e.g. units.Watts(someCelsius)) erases a dimension and is flagged by
// the units analyzer.
package units

// Celsius is a temperature in °C.
type Celsius float64

// Watts is an electrical power in W.
type Watts float64

// JoulesPerSec is a heat flow in J/s. It is numerically the same
// dimension as Watts; keeping the two distinct separates the model's
// electrical draw (what the meter bills) from the thermal load the CRAC
// must move (Eq. 7). Use the Watts method for the sanctioned crossing.
type JoulesPerSec float64

// Alpha is the dimensionless α_i of Eq. 8 coupling the supply
// temperature into a machine's CPU temperature.
type Alpha float64

// BetaCPerW is β_i of Eq. 8 in °C/W: how much one Watt of machine power
// raises its CPU temperature.
type BetaCPerW float64

// Watts converts a heat flow into the electrical power an ideal (COP = 1)
// mover would draw to remove it — the explicit, analyzable crossing
// between the thermal and electrical dimensions.
func (q JoulesPerSec) Watts() Watts { return Watts(q) }

// DeltaTo returns the temperature difference c − other in °C as a plain
// float64, the natural dimension of a differential.
func (c Celsius) DeltaTo(other Celsius) float64 { return float64(c - other) }

// Times applies α to a temperature: α·T in °C (the first term of Eq. 8).
func (a Alpha) Times(t Celsius) Celsius { return Celsius(float64(a) * float64(t)) }

// Times applies β to a power: β·P in °C (the second term of Eq. 8).
func (b BetaCPerW) Times(p Watts) Celsius { return Celsius(float64(b) * float64(p)) }
