package workload

import (
	"context"
	"testing"
	"time"
)

func TestExecutorLifecycle(t *testing.T) {
	e, err := NewExecutor([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	e.Stop()
	e.Stop() // idempotent
	if _, err := e.Submit(context.Background(), Document{}); err == nil {
		t.Fatal("submit after stop accepted")
	}
}

func TestExecutorSubmitBeforeStart(t *testing.T) {
	e, err := NewExecutor([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(context.Background(), Document{}); err == nil {
		t.Fatal("submit before start accepted")
	}
	e.Stop()
}

func TestExecutorProcessesDocuments(t *testing.T) {
	e, err := NewExecutor([]float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const docs = 30
	gen := NewGenerator(1)
	go func() {
		for i := 0; i < docs; i++ {
			if _, err := e.Submit(ctx, gen.Next()); err != nil {
				return
			}
		}
	}()
	seen := 0
	for seen < docs {
		select {
		case r := <-e.Results():
			if r.Words <= 0 {
				t.Fatalf("result with no words: %+v", r)
			}
			seen++
		case <-ctx.Done():
			t.Fatalf("timed out after %d results", seen)
		}
	}
	counts := e.Processed()
	if counts[0]+counts[1] != docs {
		t.Fatalf("processed %v, want total %d", counts, docs)
	}
	// Rate 2:1 placement: machine 0 gets twice the share.
	if counts[0] != 20 || counts[1] != 10 {
		t.Fatalf("counts %v, want [20 10]", counts)
	}
}

func TestExecutorSubmitContextCancel(t *testing.T) {
	// One machine whose queue fills while the worker is busy with a
	// blocked result channel: Submit must respect context cancellation.
	e, err := NewExecutor([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	// Never drain results: the worker blocks after the first document,
	// the queue (capacity 1) fills with the second, and the third
	// Submit must hang until the context ends.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	gen := NewGenerator(2)
	sawCancel := false
	for i := 0; i < 4; i++ {
		if _, err := e.Submit(ctx, gen.Next()); err != nil {
			sawCancel = true
			break
		}
	}
	if !sawCancel {
		t.Fatal("submit never observed the cancelled context")
	}
}

func TestRunCorpus(t *testing.T) {
	counts, err := RunCorpus([]float64{3, 1}, 7, 40, 20*time.Second)
	if err != nil {
		t.Fatalf("RunCorpus: %v", err)
	}
	if counts[0]+counts[1] != 40 {
		t.Fatalf("counts %v, want total 40", counts)
	}
	if counts[0] != 30 || counts[1] != 10 {
		t.Fatalf("counts %v, want [30 10]", counts)
	}
	if _, err := RunCorpus([]float64{1}, 1, 0, time.Second); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := RunCorpus(nil, 1, 5, time.Second); err == nil {
		t.Fatal("empty rates accepted")
	}
}
