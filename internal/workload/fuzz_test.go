package workload

import (
	"strings"
	"testing"
)

// FuzzExtractText hardens the html stripper against arbitrary input —
// scraped corpora are full of malformed markup.
func FuzzExtractText(f *testing.F) {
	for _, seed := range []string{
		"",
		"<p>hello</p>",
		"<script>var x=1;</script>visible",
		"<SCRIPT a=b>x</SCRIPT>y",
		"&amp;&lt;&gt;&quot;&nbsp;&#39;",
		"<p", "a<b>c", "<<>>", "</script>",
		"<style>.x{}</style>",
		"日本語<b>テスト</b>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		text := ExtractText(input) // must not panic
		hist := Histogram(text)    // nor here
		// Tokens never contain separators.
		for w := range hist {
			if strings.ContainsAny(w, " \t\n<>") {
				t.Fatalf("token %q contains separators", w)
			}
			if w != strings.ToLower(w) {
				t.Fatalf("token %q not lowercased", w)
			}
		}
	})
}
