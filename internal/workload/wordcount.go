// Package workload implements the paper's driver application (§IV-A): a
// text-processing job that takes html files as input, extracts meaningful
// text, and produces a word histogram — the batch, compute-bound load the
// central balancer spreads across the rack. It also provides a synthetic
// html corpus generator and a weighted balancer that realizes a load
// allocation as per-machine task streams.
package workload

import (
	"coolopt/internal/clock"
	"fmt"
	"strings"
	"time"
	"unicode"

	"coolopt/internal/mathx"
)

// Document is one html input task.
type Document struct {
	// ID identifies the task within its stream.
	ID int
	// HTML is the raw document body.
	HTML string
}

// ExtractText strips tags from html and returns the visible text. Content
// inside <script> and <style> elements is dropped entirely; the common
// entities &amp; &lt; &gt; &quot; &nbsp; are decoded.
func ExtractText(html string) string {
	var (
		b       strings.Builder
		inTag   bool
		skipTag string // non-empty while inside <script>/<style>
		tag     strings.Builder
	)
	b.Grow(len(html))
	flushTag := func() {
		name := tagName(tag.String())
		tag.Reset()
		switch name {
		case "script", "style":
			skipTag = name
		case "/script", "/style":
			if skipTag != "" && name[1:] == skipTag {
				skipTag = ""
			}
		default:
			// Block-level boundaries separate words.
			b.WriteByte(' ')
		}
	}
	for _, r := range html {
		switch {
		case inTag:
			if r == '>' {
				inTag = false
				flushTag()
			} else {
				tag.WriteRune(r)
			}
		case r == '<':
			inTag = true
		case skipTag == "":
			b.WriteRune(r)
		}
	}
	return decodeEntities(b.String())
}

func tagName(raw string) string {
	raw = strings.TrimSpace(strings.ToLower(raw))
	for i, r := range raw {
		if r != '/' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			return raw[:i]
		}
	}
	return raw
}

var entityReplacer = strings.NewReplacer(
	"&amp;", "&",
	"&lt;", "<",
	"&gt;", ">",
	"&quot;", `"`,
	"&nbsp;", " ",
	"&#39;", "'",
)

func decodeEntities(s string) string { return entityReplacer.Replace(s) }

// Histogram tokenizes text into lowercase words (letter/digit runs) and
// counts occurrences.
func Histogram(text string) map[string]int {
	counts := make(map[string]int)
	var word strings.Builder
	flush := func() {
		if word.Len() > 0 {
			counts[strings.ToLower(word.String())]++
			word.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			word.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return counts
}

// Process runs the full pipeline on one document: extract text, histogram.
func Process(doc Document) map[string]int {
	return Histogram(ExtractText(doc.HTML))
}

// Generator produces a deterministic synthetic html corpus resembling the
// click-stream batch inputs the paper motivates.
type Generator struct {
	rng  *mathx.Rand
	next int
}

// NewGenerator builds a corpus generator for the given seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: mathx.NewRand(seed)}
}

var _vocabulary = []string{
	"data", "center", "energy", "cooling", "load", "server", "rack",
	"thermal", "optimal", "allocation", "cloud", "batch", "stream",
	"click", "histogram", "model", "power", "temperature", "machine",
	"room", "holistic", "consolidation", "steady", "state", "analysis",
}

// Next returns the next synthetic document. Documents vary in length and
// contain nested tags, attributes, a script block, and entities so that
// ExtractText is exercised end to end.
func (g *Generator) Next() Document {
	id := g.next
	g.next++
	var b strings.Builder
	b.WriteString("<html><head><title>doc ")
	b.WriteString(fmt.Sprint(id))
	b.WriteString("</title><script>var x = 1; // not visible text\n</script></head><body>")
	paragraphs := 3 + g.rng.Intn(6)
	for p := 0; p < paragraphs; p++ {
		b.WriteString(`<p class="body">`)
		words := 20 + g.rng.Intn(60)
		for w := 0; w < words; w++ {
			b.WriteString(_vocabulary[g.rng.Intn(len(_vocabulary))])
			if g.rng.Intn(12) == 0 {
				b.WriteString(" &amp; ")
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString("</p>")
	}
	b.WriteString("</body></html>")
	return Document{ID: id, HTML: b.String()}
}

// MeasureCapacity runs the pipeline against generated documents for the
// given wall-clock duration and returns the measured throughput in tasks
// per second — the calibration step the paper performs before profiling
// ("the capacity of a machine was measured before the experiment").
func MeasureCapacity(seed int64, duration time.Duration) (float64, error) {
	return MeasureCapacityClock(seed, duration, clock.Wall)
}

// MeasureCapacityClock is MeasureCapacity against an injected clock, so
// tests can calibrate with a clock.Fake and get reproducible throughput
// numbers instead of hardware-dependent ones.
func MeasureCapacityClock(seed int64, duration time.Duration, clk clock.Clock) (float64, error) {
	if duration <= 0 {
		return 0, fmt.Errorf("workload: duration %v must be positive", duration)
	}
	gen := NewGenerator(seed)
	start := clk.Now()
	var done int
	sink := 0
	for clock.Since(clk, start) < duration {
		h := Process(gen.Next())
		sink += len(h)
		done++
	}
	elapsed := clock.Since(clk, start).Seconds()
	if elapsed <= 0 || done == 0 {
		return 0, fmt.Errorf("workload: no tasks completed")
	}
	_ = sink
	return float64(done) / elapsed, nil
}
