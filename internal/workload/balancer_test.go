package workload

import (
	"math"
	"testing"
	"testing/quick"

	"coolopt/internal/mathx"
)

func TestNewBalancerValidation(t *testing.T) {
	if _, err := NewBalancer(nil); err == nil {
		t.Fatal("empty rates accepted")
	}
	if _, err := NewBalancer([]float64{0, 0}); err == nil {
		t.Fatal("all-zero rates accepted")
	}
	if _, err := NewBalancer([]float64{1, -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestBalancerProportions(t *testing.T) {
	b, err := NewBalancer([]float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		b.Dispatch()
	}
	counts := b.Counts()
	if counts[0] != 3000 || counts[1] != 1000 {
		t.Fatalf("counts = %v, want [3000 1000]", counts)
	}
}

func TestBalancerSkipsZeroRate(t *testing.T) {
	b, err := NewBalancer([]float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := b.Dispatch(); got != 1 {
			t.Fatalf("Dispatch = %d, want 1", got)
		}
	}
}

func TestBalancerSmoothness(t *testing.T) {
	// Smooth WRR with rates 1:1 must alternate rather than batch.
	b, err := NewBalancer([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := b.Dispatch()
	for i := 0; i < 20; i++ {
		cur := b.Dispatch()
		if cur == prev {
			t.Fatalf("dispatch batched machine %d twice in a row", cur)
		}
		prev = cur
	}
}

func TestTotalDispatched(t *testing.T) {
	b, err := NewBalancer([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 33; i++ {
		b.Dispatch()
	}
	if got := b.TotalDispatched(); got != 33 {
		t.Fatalf("TotalDispatched = %d, want 33", got)
	}
}

func TestRatesFromAllocation(t *testing.T) {
	rates, err := RatesFromAllocation([]float64{0.5, 0, 1}, []float64{100, 100, 120})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{50, 0, 120}
	for i := range want {
		if !mathx.ApproxEqual(rates[i], want[i], 1e-12) {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
}

func TestRatesFromAllocationErrors(t *testing.T) {
	if _, err := RatesFromAllocation([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RatesFromAllocation([]float64{-0.1}, []float64{100}); err == nil {
		t.Fatal("negative utilization accepted")
	}
	if _, err := RatesFromAllocation([]float64{0.5}, []float64{0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

// Property: after many dispatches, per-machine shares track the rate
// shares to within one task per machine (the smooth-WRR guarantee).
func TestBalancerTracksSharesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mathx.NewRand(seed)
		n := 2 + rng.Intn(6)
		rates := make([]float64, n)
		total := 0.0
		for i := range rates {
			rates[i] = rng.Uniform(0.1, 10)
			total += rates[i]
		}
		b, err := NewBalancer(rates)
		if err != nil {
			return false
		}
		const tasks = 5000
		for i := 0; i < tasks; i++ {
			b.Dispatch()
		}
		for i, c := range b.Counts() {
			want := rates[i] / total * tasks
			if math.Abs(float64(c)-want) > float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
