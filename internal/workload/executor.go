package workload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Executor actually runs the word-histogram pipeline concurrently: one
// worker goroutine per machine pulls documents from a shared queue
// through the balancer's placement decisions and processes them for
// real. It exists so the repository's workload layer is not just an
// accounting fiction — throughput claims can be demonstrated with live
// goroutines — and it follows the lifecycle rules this codebase holds
// goroutines to: every worker is owned, signalled, and awaited.
type Executor struct {
	balancer *Balancer
	workers  int

	queues  []chan Document
	results chan Result

	stop chan struct{}
	done sync.WaitGroup

	mu        sync.Mutex
	processed []int
	started   bool
	stopped   bool
}

// Result is one processed document.
type Result struct {
	// Machine is the machine that processed the document.
	Machine int
	// DocID identifies the document.
	DocID int
	// Words is the number of distinct words found.
	Words int
}

// NewExecutor builds an executor over per-machine rates (tasks/s). The
// rates drive placement exactly as in NewBalancer.
func NewExecutor(rates []float64) (*Executor, error) {
	balancer, err := NewBalancer(rates)
	if err != nil {
		return nil, err
	}
	n := len(rates)
	e := &Executor{
		balancer:  balancer,
		workers:   n,
		queues:    make([]chan Document, n),
		results:   make(chan Result, 1),
		stop:      make(chan struct{}),
		processed: make([]int, n),
	}
	for i := range e.queues {
		e.queues[i] = make(chan Document, 1)
	}
	return e, nil
}

// Start launches one worker per machine. It may be called once.
func (e *Executor) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return errors.New("workload: executor already started")
	}
	e.started = true
	for i := 0; i < e.workers; i++ {
		e.done.Add(1)
		go e.worker(i)
	}
	return nil
}

// worker processes one machine's queue until the stop signal.
func (e *Executor) worker(machine int) {
	defer e.done.Done()
	for {
		select {
		case <-e.stop:
			return
		case doc := <-e.queues[machine]:
			hist := Process(doc)
			e.mu.Lock()
			e.processed[machine]++
			e.mu.Unlock()
			select {
			case e.results <- Result{Machine: machine, DocID: doc.ID, Words: len(hist)}:
			case <-e.stop:
				return
			}
		}
	}
}

// Submit places one document according to the balancer and blocks until
// the chosen machine's queue accepts it (or the context ends).
func (e *Executor) Submit(ctx context.Context, doc Document) (int, error) {
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return 0, errors.New("workload: executor not running")
	}
	machine := e.balancer.Dispatch()
	e.mu.Unlock()
	select {
	case e.queues[machine] <- doc:
		return machine, nil
	case <-ctx.Done():
		return 0, fmt.Errorf("workload: submit: %w", ctx.Err())
	case <-e.stop:
		return 0, errors.New("workload: executor stopped")
	}
}

// Results exposes the stream of processed documents.
func (e *Executor) Results() <-chan Result { return e.results }

// Processed returns a copy of the per-machine completion counts.
func (e *Executor) Processed() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int(nil), e.processed...)
}

// Stop signals every worker and waits for them to exit. It is
// idempotent.
func (e *Executor) Stop() {
	e.mu.Lock()
	if e.stopped || !e.started {
		e.stopped = true
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.mu.Unlock()
	close(e.stop)
	e.done.Wait()
}

// RunCorpus is a convenience: start, pump count generated documents
// through the executor while draining results, and stop. It returns the
// per-machine completion counts.
func RunCorpus(rates []float64, seed int64, count int, timeout time.Duration) ([]int, error) {
	if count <= 0 {
		return nil, errors.New("workload: corpus count must be positive")
	}
	e, err := NewExecutor(rates)
	if err != nil {
		return nil, err
	}
	if err := e.Start(); err != nil {
		return nil, err
	}
	defer e.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	// Drain results concurrently so workers never block on the result
	// channel.
	drained := make(chan int, 1)
	go func() {
		got := 0
		for range e.Results() {
			got++
			if got == count {
				break
			}
		}
		drained <- got
	}()

	gen := NewGenerator(seed)
	for i := 0; i < count; i++ {
		if _, err := e.Submit(ctx, gen.Next()); err != nil {
			return nil, err
		}
	}
	select {
	case <-drained:
	case <-ctx.Done():
		return nil, fmt.Errorf("workload: corpus drain: %w", ctx.Err())
	}
	return e.Processed(), nil
}
