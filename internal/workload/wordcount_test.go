package workload

import (
	"coolopt/internal/clock"
	"coolopt/internal/mathx"
	"strings"
	"testing"
	"time"
)

func TestExtractTextStripsTags(t *testing.T) {
	got := ExtractText("<p>hello <b>world</b></p>")
	if !strings.Contains(got, "hello") || !strings.Contains(got, "world") {
		t.Fatalf("ExtractText = %q", got)
	}
	if strings.ContainsAny(got, "<>") {
		t.Fatalf("tags leaked into %q", got)
	}
}

func TestExtractTextDropsScriptAndStyle(t *testing.T) {
	html := `<html><script>var hidden = "secret";</script><style>.x{color:red}</style><body>visible</body></html>`
	got := ExtractText(html)
	if strings.Contains(got, "secret") || strings.Contains(got, "color") {
		t.Fatalf("script/style content leaked: %q", got)
	}
	if !strings.Contains(got, "visible") {
		t.Fatalf("visible text missing: %q", got)
	}
}

func TestExtractTextDecodesEntities(t *testing.T) {
	got := ExtractText("<p>fish &amp; chips &lt;now&gt;</p>")
	if !strings.Contains(got, "fish & chips <now>") {
		t.Fatalf("entities not decoded: %q", got)
	}
}

func TestExtractTextScriptWithAttributes(t *testing.T) {
	html := `<script type="text/javascript">skip me</script>after`
	got := ExtractText(html)
	if strings.Contains(got, "skip me") {
		t.Fatalf("attributed script leaked: %q", got)
	}
	if !strings.Contains(got, "after") {
		t.Fatalf("text after script missing: %q", got)
	}
}

func TestHistogramCountsAndLowercases(t *testing.T) {
	h := Histogram("Data data DATA center")
	if h["data"] != 3 {
		t.Fatalf(`h["data"] = %d, want 3`, h["data"])
	}
	if h["center"] != 1 {
		t.Fatalf(`h["center"] = %d, want 1`, h["center"])
	}
	if len(h) != 2 {
		t.Fatalf("histogram has %d entries, want 2: %v", len(h), h)
	}
}

func TestHistogramSplitsOnPunctuation(t *testing.T) {
	h := Histogram("load,load;load. balancing-now")
	if h["load"] != 3 {
		t.Fatalf(`h["load"] = %d, want 3`, h["load"])
	}
	if h["balancing"] != 1 || h["now"] != 1 {
		t.Fatalf("hyphen split failed: %v", h)
	}
}

func TestHistogramEmpty(t *testing.T) {
	if h := Histogram(""); len(h) != 0 {
		t.Fatalf("empty text histogram = %v", h)
	}
}

func TestProcessEndToEnd(t *testing.T) {
	doc := Document{ID: 1, HTML: "<html><body><p>energy energy model</p></body></html>"}
	h := Process(doc)
	if h["energy"] != 2 || h["model"] != 1 {
		t.Fatalf("Process histogram = %v", h)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(7), NewGenerator(7)
	for i := 0; i < 5; i++ {
		da, db := a.Next(), b.Next()
		if da.HTML != db.HTML || da.ID != db.ID {
			t.Fatalf("generators diverged at doc %d", i)
		}
	}
}

func TestGeneratorDocumentsAreProcessable(t *testing.T) {
	g := NewGenerator(3)
	for i := 0; i < 10; i++ {
		doc := g.Next()
		if doc.ID != i {
			t.Fatalf("doc ID = %d, want %d", doc.ID, i)
		}
		h := Process(doc)
		if len(h) == 0 {
			t.Fatalf("doc %d produced empty histogram", i)
		}
		// The script block's identifier must never reach the histogram.
		if _, ok := h["var"]; ok {
			t.Fatalf("script content leaked into histogram of doc %d", i)
		}
	}
}

func TestMeasureCapacity(t *testing.T) {
	tps, err := MeasureCapacity(1, 30*time.Millisecond)
	if err != nil {
		t.Fatalf("MeasureCapacity: %v", err)
	}
	if tps <= 0 {
		t.Fatalf("capacity = %v, want positive", tps)
	}
	if _, err := MeasureCapacity(1, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestMeasureCapacityClockIsDeterministic(t *testing.T) {
	// Against a fake clock the measured throughput is a pure function of
	// the seed and tick, so two runs must agree exactly.
	run := func() float64 {
		clk := clock.NewFake(time.Unix(0, 0), time.Millisecond)
		tps, err := MeasureCapacityClock(3, 100*time.Millisecond, clk)
		if err != nil {
			t.Fatalf("MeasureCapacityClock: %v", err)
		}
		return tps
	}
	a, b := run(), run()
	if !mathx.Same(a, b) {
		t.Fatalf("fake-clock capacity not reproducible: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("capacity = %v, want positive", a)
	}
}
