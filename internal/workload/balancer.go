package workload

import (
	"errors"
	"fmt"
)

// Balancer dispatches a stream of tasks across machines in proportion to
// configured rates, using smooth weighted round-robin so short windows
// already track the target ratios. It realizes the load vector produced by
// an allocation policy as actual task placement — the paper's central load
// balancer for long-lived batch work.
type Balancer struct {
	rates   []float64
	credits []float64
	total   float64
	counts  []int
}

// NewBalancer builds a balancer for the given per-machine task rates
// (tasks/s). Machines with rate 0 never receive tasks; at least one rate
// must be positive.
func NewBalancer(rates []float64) (*Balancer, error) {
	if len(rates) == 0 {
		return nil, errors.New("workload: no machines")
	}
	total := 0.0
	for i, r := range rates {
		if r < 0 {
			return nil, fmt.Errorf("workload: negative rate %v for machine %d", r, i)
		}
		total += r
	}
	if total == 0 {
		return nil, errors.New("workload: all rates are zero")
	}
	b := &Balancer{
		rates:   append([]float64(nil), rates...),
		credits: make([]float64, len(rates)),
		total:   total,
		counts:  make([]int, len(rates)),
	}
	return b, nil
}

// Dispatch assigns the next task and returns the chosen machine index.
func (b *Balancer) Dispatch() int {
	best := -1
	for i, r := range b.rates {
		if r == 0 {
			continue
		}
		b.credits[i] += r
		if best == -1 || b.credits[i] > b.credits[best] {
			best = i
		}
	}
	b.credits[best] -= b.total
	b.counts[best]++
	return best
}

// Counts returns a copy of the per-machine dispatch counts.
func (b *Balancer) Counts() []int {
	return append([]int(nil), b.counts...)
}

// TotalDispatched returns the number of tasks dispatched so far.
func (b *Balancer) TotalDispatched() int {
	sum := 0
	for _, c := range b.counts {
		sum += c
	}
	return sum
}

// RatesFromAllocation converts per-machine utilizations (0–1) and
// capacities (tasks/s) into balancer rates. Machines absent from the on
// set (utilization 0) get rate 0.
func RatesFromAllocation(utilizations, capacities []float64) ([]float64, error) {
	if len(utilizations) != len(capacities) {
		return nil, fmt.Errorf("workload: %d utilizations but %d capacities",
			len(utilizations), len(capacities))
	}
	rates := make([]float64, len(utilizations))
	for i, u := range utilizations {
		if u < 0 {
			return nil, fmt.Errorf("workload: negative utilization %v for machine %d", u, i)
		}
		if capacities[i] <= 0 {
			return nil, fmt.Errorf("workload: non-positive capacity %v for machine %d", capacities[i], i)
		}
		rates[i] = u * capacities[i]
	}
	return rates, nil
}
