package workload

import "testing"

// BenchmarkProcess measures the paper's per-task work: strip one html
// document and histogram its words.
func BenchmarkProcess(b *testing.B) {
	gen := NewGenerator(1)
	docs := make([]Document, 64)
	for i := range docs {
		docs[i] = gen.Next()
	}
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += len(Process(docs[i%len(docs)]))
	}
	_ = sink
}

// BenchmarkDispatch measures the balancer's per-task routing cost.
func BenchmarkDispatch(b *testing.B) {
	rates := make([]float64, 20)
	for i := range rates {
		rates[i] = float64(i + 1)
	}
	bal, err := NewBalancer(rates)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bal.Dispatch()
	}
}
