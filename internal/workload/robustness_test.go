package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

// Malformed and adversarial html must never panic and should degrade
// gracefully — the paper's corpus is scraped pages, which are rarely
// well-formed.
func TestExtractTextMalformedInputs(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "empty", give: ""},
		{name: "unterminated tag", give: "<p>hello <b"},
		{name: "bare angle", give: "3 < 4 and 5 > 2"},
		{name: "unterminated script", give: "<script>var x = 1;"},
		{name: "only tags", give: "<div><span></span></div>"},
		{name: "nested brackets", give: "<<p>>text<</p>>"},
		{name: "stray close", give: "text</script>more"},
		{name: "unicode", give: "<p>données ☃ 日本語</p>"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ExtractText(tt.give) // must not panic
			_ = Histogram(got)          // nor here
		})
	}
}

func TestExtractTextUppercaseScript(t *testing.T) {
	got := ExtractText(`<SCRIPT>hidden()</SCRIPT>visible`)
	if strings.Contains(got, "hidden") {
		t.Fatalf("uppercase script leaked: %q", got)
	}
	if !strings.Contains(got, "visible") {
		t.Fatalf("visible text lost: %q", got)
	}
}

func TestExtractTextStyleWithNewlines(t *testing.T) {
	got := ExtractText("<style>\n.body {\n color: red;\n}\n</style>after")
	if strings.Contains(got, "color") {
		t.Fatalf("style content leaked: %q", got)
	}
	if !strings.Contains(got, "after") {
		t.Fatalf("text after style lost: %q", got)
	}
}

func TestExtractTextTagsActAsWordBoundaries(t *testing.T) {
	h := Histogram(ExtractText("<p>alpha</p><p>beta</p>"))
	if h["alpha"] != 1 || h["beta"] != 1 {
		t.Fatalf("adjacent block elements merged words: %v", h)
	}
	if h["alphabeta"] != 0 {
		t.Fatalf("words ran together: %v", h)
	}
}

// Property: ExtractText never panics and never emits raw tag characters
// outside of decoded entities, for arbitrary byte soup.
func TestExtractTextNoPanicProperty(t *testing.T) {
	f := func(input string) bool {
		got := ExtractText(input)
		// The only way < or > may appear is via an entity we decoded.
		stripped := strings.ReplaceAll(strings.ReplaceAll(got, "<", ""), ">", "")
		hasEntity := strings.Contains(input, "&lt;") || strings.Contains(input, "&gt;")
		if !hasEntity && len(stripped) != len(got) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram totals equal the number of tokens, and re-counting
// a doubled text doubles every count.
func TestHistogramDoublingProperty(t *testing.T) {
	f := func(words []string) bool {
		text := strings.Join(words, " ")
		h1 := Histogram(text)
		h2 := Histogram(text + " " + text)
		for w, c := range h1 {
			if h2[w] != 2*c {
				return false
			}
		}
		return len(h2) == len(h1) || text == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
