package core

import (
	"fmt"
	"math"
)

// This file implements the paper's dual consolidation question,
// maxL(A, P_b, k) (§III-B): given a power budget P_b and a machine count
// k, what is the maximum load the cluster can serve without exceeding the
// budget, and with which machines?
//
// From Eq. 23–24, a k-subset S serving load L draws
//
//	P(S, L) = k·w2 − ρ·t_S + c·f_ac·T_SP + w1·L,
//	t_S     = (Σ_S a − L)/(Σ_S b),
//
// so along the budget boundary P = P_b the load L and the particle time t
// trade linearly: L(t) = (P_b − k·w2 − c·f_ac·T_SP + ρ·t)/w1, increasing
// in t. Feasibility requires the k front-most particles to cover the
// load, Σ x_i(t) ≥ L(t), and the front sum is strictly decreasing in t —
// so the maximum load sits at the unique crossing of the two curves,
// found by scanning the event intervals and solving one linear equation.

// MaxLoadResult is the outcome of a budget query.
type MaxLoadResult struct {
	// Load is the maximum serviceable load in machine-utilization units.
	Load float64
	// Subset lists the chosen machine IDs in ascending order.
	Subset []int
	// T is the particle time at the optimum (supply temperature = w1·T
	// under the model).
	T float64
}

// MaxLoadK answers maxL(A, P_b, k) for exactly k machines, restricted to
// the t ≥ 0 regime like the rest of the particle machinery. It returns
// ErrInfeasible when even zero load exceeds the budget.
func (pp *Preprocessed) MaxLoadK(budgetW float64, k int) (MaxLoadResult, error) {
	load, t, e, err := pp.maxLoadBoundary(budgetW, k)
	if err != nil {
		return MaxLoadResult{}, err
	}
	return MaxLoadResult{Load: load, Subset: pp.frontSet(e, k), T: t}, nil
}

// maxLoadBoundary solves the budget-boundary crossing for exactly k
// machines without materializing the subset — the front set costs
// O(k·lg n) rank searches, so callers that sweep k (MaxLoad) defer it to
// the winning candidate only. Returns the maximum load, the particle time
// and the event interval containing it.
func (pp *Preprocessed) maxLoadBoundary(budgetW float64, k int) (load, t float64, event int, err error) {
	n := len(pp.reduced.Pairs)
	if k < 1 || k > n {
		return 0, 0, 0, fmt.Errorf("core: k = %d outside [1, %d]", k, n)
	}
	r := pp.reduced
	if r.W1 <= 0 || r.Rho <= 0 {
		return 0, 0, 0, fmt.Errorf("core: reduced instance missing W1/Rho")
	}
	// L(t) along the budget boundary.
	loadAt := func(t float64) float64 {
		return (budgetW - float64(k)*r.W2 - r.CoolFactor*r.SetPointC + r.Rho*t) / r.W1
	}
	frontAt := func(e int, t float64) float64 {
		j := pp.pieceFor(k, e)
		return pp.segA[j] - t*pp.segB[j]
	}

	// The crossing g(t) = front(t) − L(t) is strictly decreasing; find
	// the last event with g ≥ 0 and solve inside its interval.
	g := func(e int) float64 { return frontAt(e, pp.events[e]) - loadAt(pp.events[e]) }
	if g(0) < 0 {
		// Budget cannot even cover the configuration at t = 0 for any
		// positive load on this k.
		if loadAt(0) < 0 {
			return 0, 0, 0, fmt.Errorf("%w: budget %v W below the %d-machine floor", ErrInfeasible, budgetW, k)
		}
		// Load is capped by the front sum at t = 0 rather than the
		// budget; serving less than loadAt(0) stays under budget.
		return frontAt(0, 0), 0, 0, nil
	}
	lo, hi := 0, len(pp.events)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if g(mid) >= 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	e := lo
	// Solve segA − t·segB = loadAt(t) inside interval e.
	j := pp.pieceFor(k, e)
	num := pp.segA[j] - (budgetW-float64(k)*r.W2-r.CoolFactor*r.SetPointC)/r.W1
	den := pp.segB[j] + r.Rho/r.W1
	tStar := num / den
	if tStar < pp.events[e] {
		tStar = pp.events[e]
	}
	if e+1 < len(pp.events) && tStar > pp.events[e+1] {
		tStar = pp.events[e+1]
	}
	return loadAt(tStar), tStar, e, nil
}

// MaxLoad answers the budget question over every machine count with a
// physical capacity cap (no machine holds more than one unit): the
// maximum serviceable load and the machine set that achieves it. The
// winning subset is materialized once, after the k sweep — per-k front
// sets would cost Σk = O(n²) rank searches per query.
func (pp *Preprocessed) MaxLoad(budgetW float64) (MaxLoadResult, error) {
	n := len(pp.reduced.Pairs)
	best := MaxLoadResult{Load: math.Inf(-1)}
	bestK, bestE := 0, 0
	for k := 1; k <= n; k++ {
		load, t, e, err := pp.maxLoadBoundary(budgetW, k)
		if err != nil {
			continue
		}
		if load > float64(k) {
			load = float64(k) // capacity cap
		}
		if load > best.Load {
			best = MaxLoadResult{Load: load, T: t}
			bestK, bestE = k, e
		}
	}
	if math.IsInf(best.Load, -1) {
		return MaxLoadResult{}, fmt.Errorf("%w: budget %v W serves no machine count", ErrInfeasible, budgetW)
	}
	if best.Load < 0 {
		best.Load = 0
	}
	best.Subset = pp.frontSet(bestE, bestK)
	return best, nil
}
