package core

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the degraded (avoid-set) half of the recursive
// planner: PlanAvoiding answers "plan this load around these failed
// machines" without falling back to the flat O(n²) pool solver the
// hierarchy exists to avoid. The recursion itself lives in unit.go
// (planTree.selectAvoiding / planAvoiding); this file owns the
// survivor-restricted primitives it composes.
//
// The structure mirrors Plan. Pods untouched by the avoid set reuse
// their kinetic tables and Eq. 21–22 aggregates verbatim; an affected
// pod recomputes survivor-restricted aggregates (A′_j, B′_j, cap′_j) and
// replaces its table lookup with a survivor prefix sweep — survivors
// ordered front-most at the pod's own particle time, every prefix scored
// with the same clamped Eq. 23 objective clampedSelect uses. The
// water-filling split (recursing through interior nodes, whose survivor
// curves are just the clamped sums of their subtrees'), the union
// SolveBounded, and the bounded exchange then run over the mixed set
// exactly as in the healthy path, with the avoid set masked out of every
// move. With one pod the whole query delegates to the flat
// Profile.PlanOver over the survivors, so the single-leaf degraded plan
// is bit-identical to the exact degraded plan.

// podAgg is one leaf's water-filling aggregate: Σ K_i, Σ α_i/β_i, and
// the machine-count capacity, restricted to the machines still in
// service. Interior nodes sum these over their subtrees (Unit.aggOver).
type podAgg struct {
	sumA, sumB, cap float64
}

// canonAvoid validates the avoid list against the room size and returns
// a sorted, deduplicated copy. Out-of-range IDs are an error — a client
// naming a machine the room does not have is working from stale
// inventory, and silently ignoring it would hide that.
func canonAvoid(avoid []int, n int) ([]int, error) {
	if len(avoid) == 0 {
		return nil, nil
	}
	out := append([]int(nil), avoid...)
	sort.Ints(out)
	if out[0] < 0 || out[len(out)-1] >= n {
		bad := out[0]
		if bad >= 0 {
			bad = out[len(out)-1]
		}
		return nil, fmt.Errorf("core: avoid machine %d outside [0, %d)", bad, n)
	}
	dst := out[:1]
	for _, id := range out[1:] {
		if id != dst[len(dst)-1] {
			dst = append(dst, id)
		}
	}
	return dst, nil
}

// survivorPool lists the unblocked machine IDs ascending.
func survivorPool(n int, blocked []bool) []int {
	pool := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !blocked[i] {
			pool = append(pool, i)
		}
	}
	return pool
}

// waterFill is the allocator over explicit aggregates: bisect on the
// surplus parameter s of Eq. 21 so that Σ_j clamp(A_j − s·B_j, 0, cap_j)
// equals the load. The recursive selector runs it at every interior node
// of the planner tree — over healthy leaf aggregates on the main path,
// over survivor-restricted ones on the degraded path. Aggregates with no
// remaining capacity take zero load.
func waterFill(aggs []podAgg, load float64) []float64 {
	out := make([]float64, len(aggs))
	at := func(j int, s float64) float64 {
		if aggs[j].cap <= 0 || aggs[j].sumB <= 0 {
			return 0
		}
		l := aggs[j].sumA - s*aggs[j].sumB
		if l < 0 {
			return 0
		}
		if l > aggs[j].cap {
			return aggs[j].cap
		}
		return l
	}
	total := func(s float64) float64 {
		sum := 0.0
		for j := range aggs {
			sum += at(j, s)
		}
		return sum
	}
	// Bracket: at sLo every pod is at capacity (total ≥ load), at sHi
	// every pod is empty.
	sLo, sHi := math.Inf(1), math.Inf(-1)
	for j := range aggs {
		if aggs[j].cap <= 0 || aggs[j].sumB <= 0 {
			continue
		}
		if v := (aggs[j].sumA - aggs[j].cap) / aggs[j].sumB; v < sLo {
			sLo = v
		}
		if v := aggs[j].sumA / aggs[j].sumB; v > sHi {
			sHi = v
		}
	}
	if math.IsInf(sLo, 1) {
		return out // nothing survives anywhere
	}
	for iter := 0; iter < 100; iter++ {
		mid := (sLo + sHi) / 2
		if total(mid) >= load {
			sLo = mid
		} else {
			sHi = mid
		}
	}
	for j := range aggs {
		out[j] = at(j, sLo)
	}
	return out
}

// survivorSelect picks one affected pod's on-set over its surviving
// machines: survivors ordered front-most at the pod's own particle time
// for its allocated load, then every prefix size k ≥ ⌈load⌉ scored with
// the clamped Eq. 23 objective — the same scoring clampedSelect applies
// to the kinetic tables, restricted to the survivor prefix order. pairs
// and surv are pod-local; the returned indices are pod-local too.
func survivorSelect(pairs []Pair, surv []int, load float64, b clampBounds) ([]int, bool) {
	m := len(surv)
	minK := int(math.Ceil(load - 1e-9))
	if minK < 1 {
		minK = 1
	}
	if minK > m {
		return nil, false
	}
	var allA, allB float64
	for _, i := range surv {
		allA += pairs[i].A
		allB += pairs[i].B
	}
	t0 := (allA - load) / allB
	if t0 < 0 {
		t0 = 0
	}
	order := append([]int(nil), surv...)
	sort.Slice(order, func(x, y int) bool {
		return particleLess(pairs, order[x], order[y], t0)
	})
	var prefA, prefB float64
	bestK := 0
	bestPower := math.Inf(1)
	for k := 1; k <= m; k++ {
		prefA += pairs[order[k-1]].A
		prefB += pairs[order[k-1]].B
		if k < minK {
			continue
		}
		t := (prefA - load) / prefB
		if t < 0 {
			continue
		}
		tAc := b.W1 * t
		if tAc > b.TAcMaxC {
			tAc = b.TAcMaxC
		}
		if tAc < b.TAcMinC {
			continue
		}
		cooling := b.CoolFactor * (b.SetPointC - tAc)
		if cooling < 0 {
			cooling = 0
		}
		power := cooling + b.W1*load + float64(k)*b.W2
		if power < bestPower-1e-9 {
			bestPower, bestK = power, k
		}
	}
	if bestK == 0 {
		return nil, false
	}
	out := append([]int(nil), order[:bestK]...)
	sort.Ints(out)
	return out, true
}

func countBlocked(blocked []bool) int {
	k := 0
	for _, b := range blocked {
		if b {
			k++
		}
	}
	return k
}

// growUnion tops the union up until it can carry the load at a feasible
// supply temperature: while the member count is below ⌈load⌉ or the
// aggregate Eq. 21 supply W1·(ΣA − L)/ΣB sits below the actuator
// minimum, the front-most unused survivor joins. Adding machines only
// raises the optimal supply (each new K_i·β_i/α_i is far above the
// actuation range), so the loop is monotone and SolveBounded succeeds on
// the result whenever any survivor subset is feasible.
func (pt *planTree) growUnion(union []int, load float64, blocked []bool) []int {
	r := pt.room
	n := len(r.Pairs)
	in := make([]bool, n)
	var sumA, sumB float64
	for _, i := range union {
		in[i] = true
		sumA += r.Pairs[i].A
		sumB += r.Pairs[i].B
	}
	minK := int(math.Ceil(load - 1e-9))
	if minK < 1 {
		minK = 1
	}
	feasible := func() bool {
		return len(union) >= minK && pt.profile.W1*(sumA-load)/sumB >= pt.profile.TAcMinC
	}
	if feasible() {
		return union
	}
	t := (sumA - load) / sumB
	if t < 0 {
		t = 0
	}
	rest := make([]int, 0, n-len(union))
	for i := 0; i < n; i++ {
		if !in[i] && (blocked == nil || !blocked[i]) {
			rest = append(rest, i)
		}
	}
	sort.Slice(rest, func(x, y int) bool {
		return particleLess(r.Pairs, rest[x], rest[y], t)
	})
	for _, i := range rest {
		union = append(union, i)
		sumA += r.Pairs[i].A
		sumB += r.Pairs[i].B
		if feasible() {
			break
		}
	}
	return union
}

// PlanAvoiding is the degraded hierarchical plan: consolidation and load
// split over the machines not named in avoid. A nil or empty avoid list
// is the healthy Plan. IDs outside [0, n) are an error; a load beyond
// the survivor count (or below any feasible supply temperature) returns
// ErrInfeasible — the serving layer sheds to the surviving capacity and
// retries. With a single pod the answer is bit-identical to the flat
// degraded solver Profile.PlanOver over the survivors, at every depth.
func (ps *PodSnapshot) PlanAvoiding(load float64, avoid []int) (*Plan, error) {
	return ps.planAvoiding(load, avoid)
}
