//go:build race

package core

// raceEnabled gates the largest test sizes out of race-detector runs:
// the detector's ~10× slowdown turns the n=4096 gap sweep into minutes
// of single-threaded arithmetic that cannot race. Plain `go test` still
// covers it.
const raceEnabled = true
