package core

import (
	"coolopt/internal/mathx"
	"fmt"
	"math"
	"sort"
)

// This file implements the paper's particle-system consolidation machinery
// (§III-B, Algorithms 1–2) in its datacenter-scale form.
//
// Machine i is a particle on a line with initial coordinate a_i = K_i and
// speed −b_i = −α_i/β_i, so x_i(t) = a_i − b_i·t. A subset S of size k can
// serve load L within the power budget corresponding to time t iff
// Σ_S x_i(t) ≥ L (Eq. 26), and the best such subset is always the k
// front-most particles. The total order of particles changes only at the
// O(n²) pairwise passing events.
//
// The paper's Algorithm 1 materializes the order and its prefix sums after
// every event — an O(n³) table built in O(n³ lg n) time, which caps rooms
// at a few hundred machines. This implementation keeps the same query
// semantics on two ideas (see kinetic.go for the construction):
//
//  1. Kinetic order maintenance. Between events only the particles that
//     actually pass each other change relative order, so the sweep repairs
//     the order locally at each event (an O(1)-sized sort per ordinary
//     event, widened into a block sort for ties and simultaneous
//     crossings) instead of re-sorting all n particles — ~O(n² lg n)
//     total, dominated by sorting the event list itself.
//
//  2. Compressed tables. For each subset size k, the maximum k-subset
//     coordinate sum S_k(t) is piecewise linear in t and only changes
//     piece when a crossing straddles rank k, which happens O(n²) times
//     in total across ALL k. Storing those pieces — instead of per-event
//     orders and prefix sums — shrinks the structure from O(n³) to O(n²)
//     while still answering every query of the dense form.
//
// Faithfulness note: the paper maintains the order incrementally with
// curOrder.swap(p, q) per event, which mishandles exact ties and
// simultaneous crossings. Like the dense reference (dense.go), the sweep
// samples each inter-event interval at its midpoint and repairs the order
// with a local sort there, which is robust to both. Algorithm 2's global
// binary search over allStatus sorted by Lmax is implemented in Query
// without materializing allStatus; see QueryExact for the robust variant
// (DESIGN.md §5.1).

// DefaultMaxMachines is the default Preprocess size cap. The event grid
// and the segment tables are O(n²): at the cap they occupy a few hundred
// megabytes. Raise it explicitly with WithMaxMachines when the memory
// budget allows.
const DefaultMaxMachines = 4096

// DenseMaxMachines is the default size cap of the dense reference
// implementation (PreprocessDense), whose tables are O(n³).
const DenseMaxMachines = 512

// preprocessConfig collects the tunables of both Preprocess variants.
type preprocessConfig struct {
	maxMachines int  // 0 = entry point's default
	workers     int  // 0 = runtime.GOMAXPROCS(0)
	retain      bool // keep the sorted crossing list for incremental patching
}

// PreprocessOption configures Preprocess and PreprocessDense.
type PreprocessOption func(*preprocessConfig)

// WithMaxMachines overrides the machine-count cap. Values ≤ 0 keep the
// entry point's default (DefaultMaxMachines for Preprocess,
// DenseMaxMachines for PreprocessDense).
func WithMaxMachines(n int) PreprocessOption {
	return func(cfg *preprocessConfig) { cfg.maxMachines = n }
}

// WithPreprocessWorkers bounds the worker pool used for event generation
// and the event-block sweep. Values ≤ 0 use runtime.GOMAXPROCS(0). The
// result is independent of the worker count for instances whose
// coordinate sums are exact in float64; in general, worker-count changes
// can shift results by ulps (the chunk boundaries re-accumulate prefix
// sums in a different order).
func WithPreprocessWorkers(w int) PreprocessOption {
	return func(cfg *preprocessConfig) { cfg.workers = w }
}

// WithPatchSupport keeps the time-sorted pairwise crossing list alive
// after the sweep, enabling Snapshot.Patch to splice a drifted machine's
// crossings instead of regenerating and re-sorting all O(n²) of them.
// Costs 16 bytes per crossing (~n²/2 of them) of extra residency; tables
// are bit-identical with or without it.
func WithPatchSupport() PreprocessOption {
	return func(cfg *preprocessConfig) { cfg.retain = true }
}

// Status is one row of Algorithm 1's allStatus table: at event time T,
// powering the K front-most particles supports at most LMax load.
type Status struct {
	T    float64
	K    int
	LMax float64
}

// Preprocessed is the compressed output of Algorithm 1, ready to answer
// consolidation queries. For each subset size k it stores the pieces of
// the piecewise-linear function S_k(t) = segA − segB·t (the maximum
// k-subset coordinate sum), keyed by the first event interval each piece
// covers. Orders are reconstructed on demand.
type Preprocessed struct {
	reduced Reduced
	// events holds the sorted distinct event times, starting with 0.
	events []float64
	// Piece arena, grouped by k: pieces of S_k occupy
	// segEvent/segA/segB[segOff[k-1]:segOff[k]], ordered by start event.
	segOff   []int
	segEvent []int32
	segA     []float64
	segB     []float64
	// Persistent front-set arena, grouped by rank: the (event, machine)
	// assignments of rank p occupy posEvent/posID[posOff[p]:posOff[p+1]],
	// ordered by event, starting with the rank's occupant on interval 0.
	// frontSet answers "the k front-most machines on event interval e"
	// with k binary searches here instead of re-sorting the particles —
	// the structure is read-only after Preprocess, so queries are safe
	// for concurrent use without cloning.
	posOff   []int
	posEvent []int32
	posID    []int32
	// crossings is the time-sorted crossing list the sweep consumed,
	// retained only under WithPatchSupport so patch (patch.go) can reuse
	// the undrifted pairs' entries; nil otherwise. Never read by queries.
	crossings []crossing
}

// Preprocess runs the kinetic form of Algorithm 1 on the reduced
// instance. Time is ~O(n² lg n) and the retained tables are O(n²); n is
// capped at DefaultMaxMachines by default (see WithMaxMachines).
func Preprocess(r Reduced, opts ...PreprocessOption) (*Preprocessed, error) {
	cfg := preprocessConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.maxMachines <= 0 {
		cfg.maxMachines = DefaultMaxMachines
	}
	n := len(r.Pairs)
	if n == 0 {
		return nil, fmt.Errorf("core: no pairs")
	}
	if n > cfg.maxMachines {
		return nil, fmt.Errorf("core: preprocess capped at %d machines, got %d (the event grid and segment tables are O(n²) in machines; raise the cap with WithMaxMachines if the memory budget allows)",
			cfg.maxMachines, n)
	}
	for i, p := range r.Pairs {
		if p.B <= 0 {
			return nil, fmt.Errorf("core: pair %d has non-positive speed b = %v", i, p.B)
		}
	}

	events, crossings, bucketEnd := collectEvents(r.Pairs, cfg.workers)
	pp := &Preprocessed{reduced: r, events: events}
	pp.buildSegments(crossings, bucketEnd, cfg.workers)
	if cfg.retain {
		pp.crossings = crossings
	}
	return pp, nil
}

// orderAt returns machine IDs sorted by decreasing coordinate x_i(t),
// breaking coordinate ties by increasing speed b (the particle that will
// lead immediately after t) and then by ID for determinism.
func orderAt(pairs []Pair, t float64) []int {
	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		return particleLess(pairs, order[x], order[y], t)
	})
	return order
}

// particleLess is the strict weak order of particles at time t: by
// decreasing coordinate, ties by increasing speed b, then by ID.
func particleLess(pairs []Pair, i, j int, t float64) bool {
	xi := pairs[i].A - pairs[i].B*t
	xj := pairs[j].A - pairs[j].B*t
	if !mathx.Same(xi, xj) {
		return xi > xj
	}
	if !mathx.Same(pairs[i].B, pairs[j].B) {
		return pairs[i].B < pairs[j].B
	}
	return i < j
}

// sampleTimeOf returns the numerically robust sample point of the order
// on the interval [events[e], events[e+1]): its midpoint (or +0.5 past
// the last event). Sampling exactly at an event time would tie the
// crossing particles' coordinates.
func sampleTimeOf(events []float64, e int) float64 {
	t := events[e]
	if e+1 < len(events) {
		return (t + events[e+1]) / 2
	}
	return t + 0.5
}

func (pp *Preprocessed) sampleTime(e int) float64 { return sampleTimeOf(pp.events, e) }

// Events returns the number of distinct event times (including t = 0).
func (pp *Preprocessed) Events() int { return len(pp.events) }

// StatusCount returns the size of Algorithm 1's allStatus table — the
// number of (event, k) combinations the queries range over. The
// compressed representation answers the same queries without
// materializing the table.
func (pp *Preprocessed) StatusCount() int { return len(pp.events) * len(pp.reduced.Pairs) }

// Pieces returns the number of stored linear pieces across all subset
// sizes — the O(n²) quantity that replaces the dense O(n³) tables.
func (pp *Preprocessed) Pieces() int { return len(pp.segEvent) }

// TableBytes returns the resident size of the retained tables (events,
// segment arena, and persistent front-set arena) in bytes — the memory
// the structure keeps alive after preprocessing, excluding fixed struct
// overhead.
func (pp *Preprocessed) TableBytes() int {
	return len(pp.events)*8 + len(pp.segOff)*8 + len(pp.segEvent)*4 +
		len(pp.segA)*8 + len(pp.segB)*8 +
		len(pp.posOff)*8 + len(pp.posEvent)*4 + len(pp.posID)*4
}

// FrontWrites returns the number of entries in the persistent front-set
// arena — the O(n²) quantity that replaces on-demand order rebuilds.
func (pp *Preprocessed) FrontWrites() int { return len(pp.posID) }

// PatchSupported reports whether the sorted crossing list was retained
// (WithPatchSupport), i.e. whether patch can splice instead of rebuilding.
func (pp *Preprocessed) PatchSupported() bool { return pp.crossings != nil }

// RetainedCrossingBytes returns the extra residency of the retained
// crossing list (zero without WithPatchSupport). Reported separately from
// TableBytes so the committed bench trajectories keep their meaning.
func (pp *Preprocessed) RetainedCrossingBytes() int { return len(pp.crossings) * 16 }

// OrderAtEvent reconstructs the machine IDs by decreasing coordinate on
// the event interval [events[e], events[e+1]) — row e of the dense
// Algorithm 1 table, computed on demand in O(n lg n).
func (pp *Preprocessed) OrderAtEvent(e int) ([]int, error) {
	if e < 0 || e >= len(pp.events) {
		return nil, fmt.Errorf("core: event %d outside [0, %d)", e, len(pp.events))
	}
	return orderAt(pp.reduced.Pairs, pp.sampleTime(e)), nil
}

// pieceFor returns the arena index of the S_k piece covering event
// interval e.
func (pp *Preprocessed) pieceFor(k, e int) int {
	lo, hi := pp.segOff[k-1], pp.segOff[k]-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if int(pp.segEvent[mid]) <= e {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// sumAt evaluates S_k at event time events[e] — the k-prefix coordinate
// sum the dense table stores as prefixA[e][k] − t·prefixB[e][k].
func (pp *Preprocessed) sumAt(k, e int) float64 {
	j := pp.pieceFor(k, e)
	return pp.segA[j] - pp.events[e]*pp.segB[j]
}

// frontSet returns the k front-most machine IDs on event interval e in
// ascending ID order, read from the persistent front-set arena: one
// binary search per rank over that rank's write history, so a query
// allocates only the k-element result and never re-derives particle
// coordinates. Byte-identical to frontSetRebuild (the on-demand
// reference), which the property tests enforce.
func (pp *Preprocessed) frontSet(e, k int) []int {
	subset := make([]int, k)
	for p := 0; p < k; p++ {
		lo, hi := pp.posOff[p], pp.posOff[p+1]-1
		for lo < hi {
			mid := int(uint(lo+hi+1) >> 1)
			if int(pp.posEvent[mid]) <= e {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		subset[p] = int(pp.posID[lo])
	}
	sort.Ints(subset)
	return subset
}

// frontSetRebuild is the pre-arena reference implementation of frontSet:
// re-sort every particle at the interval's sample time and take the k
// front-most. Kept as the ground truth the persistent arena is
// property-tested against.
func (pp *Preprocessed) frontSetRebuild(e, k int) []int {
	order := orderAt(pp.reduced.Pairs, pp.sampleTime(e))
	subset := order[:k:k]
	sort.Ints(subset)
	return subset
}

// Query is Algorithm 2: find the status row with the smallest LMax
// exceeding the load and return the corresponding k front-most machines
// of the order at that row's event time. Without the materialized
// allStatus table the search runs per subset size: S_k over event times
// is non-increasing, so the smallest exceeding value for each k sits at
// the last event time where S_k still exceeds the load; the global answer
// is the minimum across k (ties to the smaller k, matching the dense
// reference's deterministic sort). O(n lg² n) per query.
//
// The paper argues this lookup returns the power-optimal on-set. The
// monotonicity it relies on holds within a fixed k but not always across
// k; QueryExact is the robust variant. Tests quantify the gap.
func (pp *Preprocessed) Query(load float64) (Selection, error) {
	n := len(pp.reduced.Pairs)
	bestVal := math.Inf(1)
	bestK, bestE := 0, 0
	for k := 1; k <= n; k++ {
		if pp.sumAt(k, 0) <= load {
			continue // S_k never exceeds the load (non-increasing over events)
		}
		lo, hi := 0, len(pp.events)-1
		for lo < hi {
			mid := int(uint(lo+hi+1) >> 1)
			if pp.sumAt(k, mid) > load {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		if v := pp.sumAt(k, lo); v < bestVal {
			bestVal, bestK, bestE = v, k, lo
		}
	}
	if math.IsInf(bestVal, 1) {
		return Selection{}, fmt.Errorf("%w: load %v exceeds every status", ErrInfeasible, load)
	}
	subset := pp.frontSet(bestE, bestK)
	t, err := pp.reduced.TValue(subset, load)
	if err != nil {
		return Selection{}, err
	}
	power := float64(bestK)*pp.reduced.W2 - pp.reduced.Rho*t + pp.reduced.Theta(load)
	return Selection{Subset: subset, T: t, Power: power}, nil
}

// QueryExact returns the provably power-optimal on-set of size ≥ minK for
// the given load, restricted (like the paper) to the t ≥ 0 regime.
//
// For each k, the maximum k-subset coordinate sum S_k(t) is continuous,
// strictly decreasing and piecewise linear in t with breakpoints only at
// event times, so the optimal t for that k — the largest t with
// S_k(t) ≥ load — is found by binary-searching the event grid and solving
// one linear equation inside the bracketing interval. The subset is the k
// front-most particles there. Runtime O(n·lg² n) per query after
// preprocessing.
func (pp *Preprocessed) QueryExact(load float64, minK int) (Selection, error) {
	if minK < 1 {
		minK = 1
	}
	n := len(pp.reduced.Pairs)
	best := Selection{Power: math.Inf(1)}
	bestK, bestE := 0, 0
	for k := minK; k <= n; k++ {
		t, e, ok := pp.bestTimeFor(k, load)
		if !ok {
			continue
		}
		power := float64(k)*pp.reduced.W2 - pp.reduced.Rho*t + pp.reduced.Theta(load)
		if power < best.Power-1e-12 || (math.Abs(power-best.Power) <= 1e-12 && k < bestK) {
			best = Selection{T: t, Power: power}
			bestK, bestE = k, e
		}
	}
	if math.IsInf(best.Power, 1) {
		return Selection{}, fmt.Errorf("%w: no feasible subset of size ≥ %d at t ≥ 0", ErrInfeasible, minK)
	}
	best.Subset = pp.frontSet(bestE, bestK)
	return best, nil
}

// QueryExactK returns the power-optimal subset of exactly k machines for
// the given load (t ≥ 0 regime), or ErrInfeasible when no k-subset can
// carry the load at a non-negative t. Callers that need to re-score
// candidate sizes under additional constraints (for example the supply-
// temperature clamp) iterate k themselves with this method.
func (pp *Preprocessed) QueryExactK(load float64, k int) (Selection, error) {
	n := len(pp.reduced.Pairs)
	if k < 1 || k > n {
		return Selection{}, fmt.Errorf("core: k = %d outside [1, %d]", k, n)
	}
	t, e, ok := pp.bestTimeFor(k, load)
	if !ok {
		return Selection{}, fmt.Errorf("%w: no %d-subset carries load %v at t ≥ 0", ErrInfeasible, k, load)
	}
	subset := pp.frontSet(e, k)
	power := float64(k)*pp.reduced.W2 - pp.reduced.Rho*t + pp.reduced.Theta(load)
	return Selection{Subset: subset, T: t, Power: power}, nil
}

// bestTimeFor returns the largest t ≥ 0 at which the k front-most
// particles still carry load, together with the index of the event
// interval containing t. ok is false when even t = 0 is infeasible for
// this k.
func (pp *Preprocessed) bestTimeFor(k int, load float64) (t float64, event int, ok bool) {
	if pp.sumAt(k, 0) < load {
		return 0, 0, false
	}
	// Find the last event whose k-prefix sum still covers the load;
	// sums at event times are non-increasing in the event index.
	lo, hi := 0, len(pp.events)-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if pp.sumAt(k, mid) >= load {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	e := lo
	// Within [events[e], events[e+1]) the k-set is fixed; solve
	// segA − t·segB = load on that piece.
	j := pp.pieceFor(k, e)
	tStar := (pp.segA[j] - load) / pp.segB[j]
	if tStar < pp.events[e] {
		tStar = pp.events[e]
	}
	if e+1 < len(pp.events) && tStar > pp.events[e+1] {
		tStar = pp.events[e+1]
	}
	return tStar, e, true
}
