package core

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the paper's particle-system consolidation machinery
// (§III-B, Algorithms 1–2).
//
// Machine i is a particle on a line with initial coordinate a_i = K_i and
// speed −b_i = −α_i/β_i, so x_i(t) = a_i − b_i·t. A subset S of size k can
// serve load L within the power budget corresponding to time t iff
// Σ_S x_i(t) ≥ L (Eq. 26), and the best such subset is always the k
// front-most particles. The total order of particles changes only at the
// O(n²) pairwise passing events, so pre-computing the order after each
// event (Algorithm 1, O(n³ lg n)) lets a query retrieve the optimal on-set
// in O(lg n) (Algorithm 2).
//
// Faithfulness note: Algorithm 1 in the paper maintains the order
// incrementally with curOrder.swap(p, q) per event. We recompute the order
// at each event time with a full sort instead — same O(n³ lg n) budget,
// but robust to simultaneous crossings and exact ties, which the swap
// formulation mishandles. Algorithm 2's global binary search over
// allStatus sorted by Lmax is implemented verbatim in Query; see
// QueryExact for the robust variant (DESIGN.md §5.1).

// Status is one row of Algorithm 1's allStatus table: at event time T,
// powering the K front-most particles supports at most LMax load.
type Status struct {
	T    float64
	K    int
	LMax float64
}

// Preprocessed is the output of Algorithm 1, ready to answer consolidation
// queries.
type Preprocessed struct {
	reduced Reduced
	// events holds the sorted distinct event times, starting with 0.
	events []float64
	// orders[e] lists machine IDs by decreasing coordinate immediately
	// after events[e].
	orders [][]int
	// prefixA[e][k] and prefixB[e][k] are Σ a and Σ b over the k
	// front-most machines of orders[e] (index 0 holds 0).
	prefixA [][]float64
	prefixB [][]float64
	// statuses is allStatus sorted by increasing LMax (Algorithm 1,
	// line 27).
	statuses []Status
}

// Preprocess runs Algorithm 1 on the reduced instance. Memory is O(n³);
// n is capped at 512 to keep that in check.
func Preprocess(r Reduced) (*Preprocessed, error) {
	n := len(r.Pairs)
	if n == 0 {
		return nil, fmt.Errorf("core: no pairs")
	}
	if n > 512 {
		return nil, fmt.Errorf("core: preprocess capped at 512 machines, got %d (O(n³) table)", n)
	}
	for i, p := range r.Pairs {
		if p.B <= 0 {
			return nil, fmt.Errorf("core: pair %d has non-positive speed b = %v", i, p.B)
		}
	}

	// Algorithm 1, lines 1–9: collect all positive pairwise passing
	// times t_pq = (a_q − a_p)/(b_q − b_p).
	events := []float64{0}
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			db := r.Pairs[q].B - r.Pairs[p].B
			if db == 0 {
				continue // parallel particles never pass
			}
			t := (r.Pairs[q].A - r.Pairs[p].A) / db
			if t > 0 {
				events = append(events, t)
			}
		}
	}
	sort.Float64s(events)
	events = dedupeSorted(events)

	pp := &Preprocessed{
		reduced: r,
		events:  events,
		orders:  make([][]int, len(events)),
		prefixA: make([][]float64, len(events)),
		prefixB: make([][]float64, len(events)),
	}
	pp.statuses = make([]Status, 0, len(events)*n)

	// Algorithm 1, lines 10–26: order after each event and the k-prefix
	// coordinate sums at the event time. The order is constant on the
	// open interval between consecutive events, so it is sampled at the
	// interval midpoint — numerically robust where sampling exactly at
	// the event time would tie the crossing particles' coordinates.
	for e, t := range events {
		sampleT := t + 0.5
		if e+1 < len(events) {
			sampleT = (t + events[e+1]) / 2
		}
		order := orderAt(r.Pairs, sampleT)
		prefA := make([]float64, n+1)
		prefB := make([]float64, n+1)
		for k := 1; k <= n; k++ {
			i := order[k-1]
			prefA[k] = prefA[k-1] + r.Pairs[i].A
			prefB[k] = prefB[k-1] + r.Pairs[i].B
			pp.statuses = append(pp.statuses, Status{
				T:    t,
				K:    k,
				LMax: prefA[k] - t*prefB[k],
			})
		}
		pp.orders[e] = order
		pp.prefixA[e] = prefA
		pp.prefixB[e] = prefB
	}

	// Algorithm 1, line 27: sort allStatus by increasing Lmax.
	sort.Slice(pp.statuses, func(i, j int) bool {
		return pp.statuses[i].LMax < pp.statuses[j].LMax
	})
	return pp, nil
}

// orderAt returns machine IDs sorted by decreasing coordinate x_i(t),
// breaking coordinate ties by increasing speed b (the particle that will
// lead immediately after t) and then by ID for determinism.
func orderAt(pairs []Pair, t float64) []int {
	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		i, j := order[x], order[y]
		xi := pairs[i].A - pairs[i].B*t
		xj := pairs[j].A - pairs[j].B*t
		if xi != xj {
			return xi > xj
		}
		if pairs[i].B != pairs[j].B {
			return pairs[i].B < pairs[j].B
		}
		return i < j
	})
	return order
}

func dedupeSorted(xs []float64) []float64 {
	out := xs[:0]
	for i, v := range xs {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Events returns the number of distinct event times (including t = 0).
func (pp *Preprocessed) Events() int { return len(pp.events) }

// StatusCount returns the size of the allStatus table.
func (pp *Preprocessed) StatusCount() int { return len(pp.statuses) }

// Query is Algorithm 2 verbatim: binary-search allStatus for the first
// entry whose LMax exceeds the load, and return the corresponding k
// front-most machines of the order at that entry's event time.
//
// The paper argues this O(lg n) lookup returns the power-optimal on-set.
// The monotonicity it relies on holds within a fixed k but not always
// across k; QueryExact is the robust variant. Tests quantify the gap.
func (pp *Preprocessed) Query(load float64) (Selection, error) {
	idx := sort.Search(len(pp.statuses), func(i int) bool {
		return pp.statuses[i].LMax > load
	})
	if idx == len(pp.statuses) {
		return Selection{}, fmt.Errorf("%w: load %v exceeds every status", ErrInfeasible, load)
	}
	st := pp.statuses[idx]
	e := pp.eventIndex(st.T)
	subset := append([]int(nil), pp.orders[e][:st.K]...)
	sort.Ints(subset)
	t, err := pp.reduced.TValue(subset, load)
	if err != nil {
		return Selection{}, err
	}
	power := float64(st.K)*pp.reduced.W2 - pp.reduced.Rho*t + pp.reduced.Theta(load)
	return Selection{Subset: subset, T: t, Power: power}, nil
}

// QueryExact returns the provably power-optimal on-set of size ≥ minK for
// the given load, restricted (like the paper) to the t ≥ 0 regime.
//
// For each k, the maximum k-subset coordinate sum S_k(t) is continuous,
// strictly decreasing and piecewise linear in t with breakpoints only at
// event times, so the optimal t for that k — the largest t with
// S_k(t) ≥ load — is found by binary-searching the event grid and solving
// one linear equation inside the bracketing interval. The subset is the k
// front-most particles there. Runtime O(n·lg n) per query after
// preprocessing.
func (pp *Preprocessed) QueryExact(load float64, minK int) (Selection, error) {
	if minK < 1 {
		minK = 1
	}
	n := len(pp.reduced.Pairs)
	best := Selection{Power: math.Inf(1)}
	for k := minK; k <= n; k++ {
		t, e, ok := pp.bestTimeFor(k, load)
		if !ok {
			continue
		}
		power := float64(k)*pp.reduced.W2 - pp.reduced.Rho*t + pp.reduced.Theta(load)
		if power < best.Power-1e-12 || (math.Abs(power-best.Power) <= 1e-12 && k < len(best.Subset)) {
			subset := append([]int(nil), pp.orders[e][:k]...)
			sort.Ints(subset)
			best = Selection{Subset: subset, T: t, Power: power}
		}
	}
	if math.IsInf(best.Power, 1) {
		return Selection{}, fmt.Errorf("%w: no feasible subset of size ≥ %d at t ≥ 0", ErrInfeasible, minK)
	}
	return best, nil
}

// QueryExactK returns the power-optimal subset of exactly k machines for
// the given load (t ≥ 0 regime), or ErrInfeasible when no k-subset can
// carry the load at a non-negative t. Callers that need to re-score
// candidate sizes under additional constraints (for example the supply-
// temperature clamp) iterate k themselves with this method.
func (pp *Preprocessed) QueryExactK(load float64, k int) (Selection, error) {
	n := len(pp.reduced.Pairs)
	if k < 1 || k > n {
		return Selection{}, fmt.Errorf("core: k = %d outside [1, %d]", k, n)
	}
	t, e, ok := pp.bestTimeFor(k, load)
	if !ok {
		return Selection{}, fmt.Errorf("%w: no %d-subset carries load %v at t ≥ 0", ErrInfeasible, k, load)
	}
	subset := append([]int(nil), pp.orders[e][:k]...)
	sort.Ints(subset)
	power := float64(k)*pp.reduced.W2 - pp.reduced.Rho*t + pp.reduced.Theta(load)
	return Selection{Subset: subset, T: t, Power: power}, nil
}

// bestTimeFor returns the largest t ≥ 0 at which the k front-most
// particles still carry load, together with the index of the event
// interval containing t. ok is false when even t = 0 is infeasible for
// this k.
func (pp *Preprocessed) bestTimeFor(k int, load float64) (t float64, event int, ok bool) {
	sumAt := func(e int) float64 {
		return pp.prefixA[e][k] - pp.events[e]*pp.prefixB[e][k]
	}
	if sumAt(0) < load {
		return 0, 0, false
	}
	// Find the last event whose k-prefix sum still covers the load;
	// sums at event times are non-increasing in the event index.
	lo, hi := 0, len(pp.events)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if sumAt(mid) >= load {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	e := lo
	// Within [events[e], events[e+1]) the order is orders[e]; solve
	// prefA − t·prefB = load.
	tStar := (pp.prefixA[e][k] - load) / pp.prefixB[e][k]
	if tStar < pp.events[e] {
		tStar = pp.events[e]
	}
	if e+1 < len(pp.events) && tStar > pp.events[e+1] {
		tStar = pp.events[e+1]
	}
	return tStar, e, true
}

// eventIndex locates an event time recorded during preprocessing.
func (pp *Preprocessed) eventIndex(t float64) int {
	idx := sort.SearchFloat64s(pp.events, t)
	if idx == len(pp.events) || pp.events[idx] != t {
		// Status times always come from the event list; fall back to
		// the interval containing t if floating-point drift crept in.
		if idx > 0 {
			idx--
		}
	}
	return idx
}
