package core

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// This file replaces the fixed "pods above 2048 machines" rule with
// adaptive sizing from a measured calibration curve: `paperbench
// -podsize-sweep` measures build time, table bytes, and optimality gap
// across (room size, pod size, depth) points, persists the winning
// configuration per room size, and NewPodSnapshot (plus the engine's
// hierarchy threshold) consults the curve at construction. The committed
// podsize_calibration.json is embedded so the core package needs no
// filesystem access; regenerate it with `make podsize-sweep`.

//go:embed podsize_calibration.json
var podsizeCalibrationJSON []byte

// CalibrationPoint is one measured row of the pod-sizing trade-off
// curve: for rooms up to N machines, the sweep found PodSize machines
// per pod at the given tree Depth to be the best build-time/table-bytes/
// gap compromise. BuildMS/TableMB/GapWorstPct record the measurement the
// choice was made from (diagnostics; not consulted at construction).
type CalibrationPoint struct {
	N           int     `json:"n"`
	PodSize     int     `json:"pod_size"`
	Depth       int     `json:"depth"`
	BuildMS     float64 `json:"build_ms,omitempty"`
	TableMB     float64 `json:"table_mb,omitempty"`
	GapWorstPct float64 `json:"gap_worst_pct,omitempty"`
}

// Calibration is the persisted pod-sizing curve. HierThreshold is the
// room size at which the serving engine starts preferring the hierarchy
// over the flat exact tables; Points must be sorted by ascending N (the
// parser enforces it).
type Calibration struct {
	HierThreshold int                `json:"hier_threshold"`
	Points        []CalibrationPoint `json:"points"`
}

// ParseCalibration decodes and validates a calibration curve.
func ParseCalibration(data []byte) (*Calibration, error) {
	var c Calibration
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("core: bad calibration: %w", err)
	}
	if c.HierThreshold < 1 {
		return nil, fmt.Errorf("core: bad calibration: hier_threshold %d < 1", c.HierThreshold)
	}
	for i, pt := range c.Points {
		if pt.N < 1 || pt.PodSize < 1 || pt.Depth < 2 {
			return nil, fmt.Errorf("core: bad calibration point %d: n=%d pod_size=%d depth=%d", i, pt.N, pt.PodSize, pt.Depth)
		}
		if i > 0 && pt.N <= c.Points[i-1].N {
			return nil, fmt.Errorf("core: calibration points not ascending at %d (n=%d after n=%d)", i, pt.N, c.Points[i-1].N)
		}
	}
	return &c, nil
}

var (
	calibrationOnce sync.Once
	calibration     *Calibration
)

// DefaultCalibration returns the embedded pod-sizing curve. The embedded
// file is validated at first use; a malformed embed is a build artifact
// error and panics rather than silently degrading to guesses.
func DefaultCalibration() *Calibration {
	calibrationOnce.Do(func() {
		c, err := ParseCalibration(podsizeCalibrationJSON)
		if err != nil {
			panic(err)
		}
		calibration = c
	})
	return calibration
}

// lookup returns the first point covering n (smallest N ≥ n), or the
// last point when n exceeds every measured size — the asymptotic regime
// keeps the largest measured configuration.
func (c *Calibration) lookup(n int) (CalibrationPoint, bool) {
	if len(c.Points) == 0 {
		return CalibrationPoint{}, false
	}
	i := sort.Search(len(c.Points), func(i int) bool { return c.Points[i].N >= n })
	if i == len(c.Points) {
		i = len(c.Points) - 1
	}
	return c.Points[i], true
}

// PodSizeFor returns the calibrated machines-per-pod target for an
// n-machine room (DefaultPodSize when the curve has no points).
func (c *Calibration) PodSizeFor(n int) int {
	pt, ok := c.lookup(n)
	if !ok {
		return DefaultPodSize
	}
	return pt.PodSize
}

// DepthFor returns the calibrated planner-tree depth for an n-machine
// room (2, the classic pod split, when the curve has no points).
func (c *Calibration) DepthFor(n int) int {
	pt, ok := c.lookup(n)
	if !ok {
		return 2
	}
	return pt.Depth
}
