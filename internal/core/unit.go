package core

import (
	"fmt"
	"math"
	"sort"
)

// This file is the recursive planning core shared by every topology the
// package serves: the flat whole-room Snapshot, the two-level pod-sharded
// PodSnapshot, and pods-of-pods trees of any depth. One abstraction —
// the plannable Unit — replaces what used to be two parallel
// implementations of the same five operations (Plan, PlanAvoiding,
// MaxLoad, Consolidate, Patch):
//
//   - A leaf Unit is today's flat planner over its contiguous machine
//     range: per-range kinetic tables (Preprocess) plus the Eq. 21–22
//     aggregates A = Σ K_i, B = Σ α_i/β_i and the share-scaled clamp
//     bounds. The whole-room Snapshot is the degenerate single-leaf tree
//     whose one range is the entire room.
//
//   - An interior Unit owns child units and plans by water-filling its
//     load over the children's aggregates: Eq. 21 says the exact optimum
//     loads machine i at L_i = K_i − s·(α_i/β_i) for one shared surplus
//     s, so a subtree's response to s is the clamped aggregate curve
//     clamp(ΣA − s·ΣB, 0, cap) — a super-machine. Bisecting s over the
//     children (waterFill) and recursing gives each leaf its slice.
//
// The final answer is always exact for the chosen machine set: the leaf
// selections are unioned and the room's closed form (SolveBounded) runs
// once over the union, preceded by the bounded greedy exchange
// (refineUnion) that repairs membership at unit boundaries. The
// optimality gap therefore lives in the subset choice alone, at every
// depth, exactly as DESIGN.md §7 argues for depth 2.
//
// Bit-identity invariants the tests pin down:
//
//   - A single-leaf tree (flat Snapshot, or p = 1 pods) passes the load
//     straight to the leaf — no water-fill runs — so those plans are
//     bit-identical to the historical flat planner.
//   - An interior node with one child passes its load through unchanged,
//     so degenerate splits (chains, groups of one) cannot perturb floats.
//   - A depth-2 tree water-fills once over all leaves with left-to-right
//     summation — exactly the historical splitLoad — so the two-level
//     PodSnapshot is the depth-2 special case of this code path, bit for
//     bit, not a fork.

// Unit is one node of the recursive planner tree. Units are frozen at
// construction and shared lock-free alongside their Snapshot/PodSnapshot
// (the snapshotmut analyzer enforces the deep-freeze outside this
// package); every accessor is read-only and safe for concurrent use.
type Unit struct {
	leaf     *pod    // non-nil iff this is a leaf
	children []*Unit // non-nil iff this is an interior node
	lo, hi   int     // leaf-index range [lo, hi) this subtree covers
}

// IsLeaf reports whether the unit is a leaf (owns kinetic tables) rather
// than an interior allocator node.
func (u *Unit) IsLeaf() bool { return u.leaf != nil }

// Children returns the child units, nil for a leaf. Treat as read-only.
func (u *Unit) Children() []*Unit { return u.children }

// Leaves returns the number of leaf units under (and including) u.
func (u *Unit) Leaves() int { return u.hi - u.lo }

// Machines returns the number of machines the subtree covers.
func (u *Unit) Machines() int {
	if u.leaf != nil {
		return len(u.leaf.ids)
	}
	total := 0
	for _, c := range u.children {
		total += c.Machines()
	}
	return total
}

// Depth returns the number of levels in the subtree: 1 for a leaf, 2 for
// an interior node over leaves (the classic pod split), 3 for pods of
// pods, and so on.
func (u *Unit) Depth() int {
	if u.leaf != nil {
		return 1
	}
	d := 0
	for _, c := range u.children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// buildUnitTree assembles the recursive tree over leaves[lo:hi). depth
// bounds the number of levels: depth ≤ 2 hangs every leaf directly under
// one interior node (the classic two-level split); larger depths insert
// balanced contiguous grouping tiers with fan ≈ P^(1/(depth−1)) children
// per node, so a depth-3 tree over P leaves groups them into ≈√P pods of
// pods. A single leaf is returned as itself — load passes through
// untouched, which is what keeps p = 1 (and every degenerate split) bit
// identical to the flat planner.
func buildUnitTree(leaves []*pod, lo, hi, depth int) *Unit {
	if hi-lo == 1 {
		return &Unit{leaf: leaves[lo], lo: lo, hi: hi}
	}
	u := &Unit{lo: lo, hi: hi}
	if depth <= 2 {
		u.children = make([]*Unit, 0, hi-lo)
		for j := lo; j < hi; j++ {
			u.children = append(u.children, buildUnitTree(leaves, j, j+1, 1))
		}
		return u
	}
	fan := int(math.Ceil(math.Pow(float64(hi-lo), 1/float64(depth-1))))
	if fan < 2 {
		fan = 2
	}
	if fan > hi-lo {
		fan = hi - lo
	}
	base, extra := (hi-lo)/fan, (hi-lo)%fan
	u.children = make([]*Unit, 0, fan)
	start := lo
	for g := 0; g < fan; g++ {
		size := base
		if g < extra {
			size++
		}
		u.children = append(u.children, buildUnitTree(leaves, start, start+size, depth-1))
		start += size
	}
	return u
}

// aggOver sums the per-leaf water-filling aggregates across the subtree,
// left to right — the Eq. 21–22 super-machine an interior node presents
// to its parent. The caller supplies the leaf aggregates (healthy or
// survivor-restricted), so one tree serves both paths.
func (u *Unit) aggOver(aggs []podAgg) podAgg {
	var out podAgg
	for j := u.lo; j < u.hi; j++ {
		out.sumA += aggs[j].sumA
		out.sumB += aggs[j].sumB
		out.cap += aggs[j].cap
	}
	return out
}

// planTree is the shared planning context every frozen topology embeds:
// the room-level reduced instance, the leaf shards in DFS order, and the
// recursive unit tree over them. All planning bodies live here — the
// exported Snapshot/PodSnapshot methods are thin wrappers — which is
// what "one planning code path" means mechanically.
type planTree struct {
	profile *Profile
	room    Reduced
	pods    []*pod // leaf shards, DFS (= ascending machine-range) order
	root    *Unit
	totalB  float64
	// flat selects the historical whole-room Snapshot semantics: a leaf
	// whose clamped table lookup fails is an infeasibility (the exact
	// planner has nowhere to fall back to), and diagnostics name the
	// exact optimizer rather than the hierarchy.
	flat bool
	// depth is the requested tree depth; Patch rebuilds the same shape.
	depth int
}

// healthyAggs returns every leaf's full water-filling aggregate.
func (pt *planTree) healthyAggs() []podAgg {
	aggs := make([]podAgg, len(pt.pods))
	for j, pd := range pt.pods {
		aggs[j] = podAgg{sumA: pd.sumA, sumB: pd.sumB, cap: float64(len(pd.ids))}
	}
	return aggs
}

// selectFor recursively allocates load down the unit tree and gathers
// every leaf's on-set into union (global machine IDs, DFS order):
//
//   - an interior node with one child passes the load through unchanged;
//   - an interior node water-fills over its children's aggregate curves
//     (waterFill — the same bisection at every level) and recurses;
//   - a leaf answers from its kinetic tables (clampedSelect), or from the
//     survivor prefix sweep when the degraded path restricted it
//     (surv[leaf] non-nil).
//
// Allocations at or below the water-fill noise floor (1e-12) prune the
// subtree. aggs holds the per-leaf aggregates the interior curves sum —
// healthy or survivor-restricted — so one recursion serves both paths.
func (pt *planTree) selectFor(u *Unit, load float64, aggs []podAgg, surv [][]int, union *[]int) error {
	if load <= 1e-12 {
		return nil
	}
	if u.leaf != nil {
		pd := u.leaf
		var local []int
		if surv != nil && surv[u.lo] != nil {
			var ok bool
			local, ok = survivorSelect(pd.reduced.Pairs, surv[u.lo], load, pd.bounds)
			if !ok {
				local = append([]int(nil), surv[u.lo]...)
			}
		} else {
			var ok bool
			local, ok = clampedSelect(pd.pre, load, pd.bounds)
			if !ok {
				if pt.flat {
					return fmt.Errorf("%w: no machine subset satisfies load %v within constraints", ErrInfeasible, load)
				}
				local = make([]int, len(pd.ids))
				for i := range local {
					local[i] = i
				}
			}
		}
		for _, li := range local {
			*union = append(*union, pd.ids[li])
		}
		return nil
	}
	if len(u.children) == 1 {
		return pt.selectFor(u.children[0], load, aggs, surv, union)
	}
	childAggs := make([]podAgg, len(u.children))
	for i, c := range u.children {
		childAggs[i] = c.aggOver(aggs)
	}
	allocs := waterFill(childAggs, load)
	for i, c := range u.children {
		if err := pt.selectFor(c, allocs[i], aggs, surv, union); err != nil {
			return err
		}
	}
	return nil
}

// selectUnion returns the healthy on-set for the given room load: the
// recursive allocator splits the load down the tree, each leaf picks its
// clamped power-optimal front set, and the union — repaired by the
// bounded exchange when there is more than one leaf — is returned in
// ascending global-ID order.
func (pt *planTree) selectUnion(load float64) ([]int, error) {
	n := pt.profile.Size()
	if load <= 0 {
		return nil, fmt.Errorf("core: load %v must be positive (power everything off instead)", load)
	}
	if load > float64(n) {
		return nil, fmt.Errorf("%w: load %v exceeds cluster capacity %d", ErrInfeasible, load, n)
	}
	var union []int
	if err := pt.selectFor(pt.root, load, pt.healthyAggs(), nil, &union); err != nil {
		return nil, err
	}
	if len(union) == 0 {
		return nil, fmt.Errorf("%w: no pod accepts any of load %v", ErrInfeasible, load)
	}
	if len(pt.pods) > 1 {
		union = pt.refineUnion(union, load)
	}
	sort.Ints(union)
	return union, nil
}

// plan is the shared Plan body: recursive subset selection followed by
// the room's exact closed form over the union, so the load split and
// supply temperature are exact for the chosen machines and any
// optimality gap lives in the subset choice alone.
func (pt *planTree) plan(load float64) (*Plan, error) {
	union, err := pt.selectUnion(load)
	if err != nil {
		return nil, err
	}
	plan, err := pt.profile.SolveBounded(union, load)
	if err != nil {
		return nil, err
	}
	if err := pt.profile.ValidatePlan(plan, load, 1e-6); err != nil {
		return nil, fmt.Errorf("core: %s produced invalid plan: %w", pt.kind(), err)
	}
	return plan, nil
}

// kind names the planner in diagnostics: the flat exact optimizer and
// the hierarchy keep their historical error strings.
func (pt *planTree) kind() string {
	if pt.flat {
		return "optimizer"
	}
	return "hierarchical optimizer"
}

// selectAvoiding is the degraded analogue of selectUnion: leaf
// aggregates restricted to the survivors, the same recursive water-fill,
// per-leaf selection (tables for untouched leaves, survivor prefix sweep
// for affected ones), and the bounded exchange over the union with the
// avoid set masked out of every add and swap.
func (pt *planTree) selectAvoiding(load float64, blocked []bool) ([]int, error) {
	aggs := make([]podAgg, len(pt.pods))
	survLocal := make([][]int, len(pt.pods))
	for j, pd := range pt.pods {
		agg := podAgg{sumA: pd.sumA, sumB: pd.sumB, cap: float64(len(pd.ids))}
		touched := false
		for li, id := range pd.ids {
			if blocked[id] {
				touched = true
				agg.sumA -= pd.reduced.Pairs[li].A
				agg.sumB -= pd.reduced.Pairs[li].B
				agg.cap--
			}
		}
		if touched {
			surv := make([]int, 0, int(agg.cap))
			for li, id := range pd.ids {
				if !blocked[id] {
					surv = append(surv, li)
				}
			}
			survLocal[j] = surv
		}
		aggs[j] = agg
	}
	var union []int
	if err := pt.selectFor(pt.root, load, aggs, survLocal, &union); err != nil {
		return nil, err
	}
	if len(union) == 0 {
		return nil, fmt.Errorf("%w: no pod accepts any of load %v around %d failures",
			ErrInfeasible, load, countBlocked(blocked))
	}
	union = pt.refineUnionBlocked(union, load, blocked)
	union = pt.growUnion(union, load, blocked)
	sort.Ints(union)
	return union, nil
}

// planAvoiding is the shared PlanAvoiding body: consolidation and load
// split over the machines not named in avoid. A nil or empty avoid list
// is the healthy plan. IDs outside [0, n) are an error; a load beyond
// the survivor count (or below any feasible supply temperature) returns
// ErrInfeasible — the serving layer sheds to the surviving capacity and
// retries. With a single leaf the answer is bit-identical to the flat
// degraded solver Profile.PlanOver over the survivors.
func (pt *planTree) planAvoiding(load float64, avoid []int) (*Plan, error) {
	n := pt.profile.Size()
	av, err := canonAvoid(avoid, n)
	if err != nil {
		return nil, err
	}
	if len(av) == 0 {
		return pt.plan(load)
	}
	if load <= 0 {
		return nil, fmt.Errorf("core: load %v must be positive (power everything off instead)", load)
	}
	m := n - len(av)
	if m == 0 {
		return nil, fmt.Errorf("%w: all %d machines avoided", ErrInfeasible, n)
	}
	if load > float64(m) {
		return nil, fmt.Errorf("%w: load %v exceeds the %d surviving machines", ErrInfeasible, load, m)
	}
	blocked := make([]bool, n)
	for _, i := range av {
		blocked[i] = true
	}
	if len(pt.pods) == 1 {
		plan := pt.profile.PlanOver(survivorPool(n, blocked), load)
		if plan == nil {
			return nil, fmt.Errorf("%w: no feasible plan for load %v over %d survivors", ErrInfeasible, load, m)
		}
		return plan, nil
	}
	union, err := pt.selectAvoiding(load, blocked)
	if err != nil {
		return nil, err
	}
	plan, err := pt.profile.SolveBounded(union, load)
	if err != nil {
		// The union's box repair can pin enough machines to starve the
		// free set; the full survivor pool is the most feasible subset
		// there is, so fall back to it before declaring infeasibility.
		plan, err = pt.profile.SolveBounded(survivorPool(n, blocked), load)
		if err != nil {
			return nil, err
		}
	}
	if err := pt.profile.ValidatePlan(plan, load, 1e-6); err != nil {
		return nil, fmt.Errorf("core: degraded %s produced invalid plan: %w", pt.kind(), err)
	}
	return plan, nil
}

// consolidate is the shared Consolidate body: the on-set from
// selectUnion, topped up deterministically with the front-most unused
// machines when the union is smaller than minK, scored with the room's
// Eq. 23.
func (pt *planTree) consolidate(load float64, minK int) (Selection, error) {
	if minK < 1 {
		minK = 1
	}
	union, err := pt.selectUnion(load)
	if err != nil {
		return Selection{}, err
	}
	if len(union) < minK {
		union, err = pt.topUp(union, load, minK)
		if err != nil {
			return Selection{}, err
		}
	}
	t, err := pt.room.TValue(union, load)
	if err != nil {
		return Selection{}, err
	}
	power, err := pt.room.SubsetPower(union, load)
	if err != nil {
		return Selection{}, err
	}
	return Selection{Subset: union, T: t, Power: power}, nil
}

// topUp grows the union to minK machines by adding the unused machines
// with the largest particle coordinate at the union's t-value — the same
// front-most rule the kinetic tables encode, applied to the leftovers.
// Deterministic: coordinate ties break by ID.
func (pt *planTree) topUp(union []int, load float64, minK int) ([]int, error) {
	n := pt.profile.Size()
	if minK > n {
		return nil, fmt.Errorf("core: minK = %d exceeds %d machines", minK, n)
	}
	t, err := pt.room.TValue(union, load)
	if err != nil {
		return nil, err
	}
	if t < 0 {
		t = 0
	}
	inUnion := make([]bool, n)
	for _, i := range union {
		inUnion[i] = true
	}
	rest := make([]int, 0, n-len(union))
	for i := 0; i < n; i++ {
		if !inUnion[i] {
			rest = append(rest, i)
		}
	}
	sort.Slice(rest, func(x, y int) bool {
		return particleLess(pt.room.Pairs, rest[x], rest[y], t)
	})
	out := append(append([]int(nil), union...), rest[:minK-len(union)]...)
	sort.Ints(out)
	return out, nil
}

// maxLoadUnion gathers every leaf's best subset for its cooling-share of
// the budget, DFS over the tree — the recursive half of maxLoad. Leaves
// the budget cannot serve contribute nothing.
func (pt *planTree) maxLoadUnion(u *Unit, budgetW float64, union *[]int) {
	if u.leaf != nil {
		pd := u.leaf
		res, err := pd.pre.MaxLoad(budgetW * pd.share)
		if err != nil {
			return
		}
		if res.Load > float64(len(res.Subset)) {
			res.Load = float64(len(res.Subset))
		}
		for _, li := range res.Subset {
			*union = append(*union, pd.ids[li])
		}
		return
	}
	for _, c := range u.children {
		pt.maxLoadUnion(c, budgetW, union)
	}
}

// maxLoad is the shared MaxLoad body: each leaf proposes its best subset
// for its cooling-share of the budget, and the room's exact budget
// boundary (Eq. 23–24) is solved once over the union —
//
//	t* = (k·W2 + c·f_ac·T_SP + W1·ΣA − P_b)/(ρ + W1·ΣB),
//	L  = ΣA − t*·ΣB,
//
// clamped into the t ≥ 0 regime and the L ≤ k capacity cap, so the
// reported load never overstates what the union can actually serve under
// the budget.
func (pt *planTree) maxLoad(budgetW float64) (MaxLoadResult, error) {
	var union []int
	pt.maxLoadUnion(pt.root, budgetW, &union)
	if len(union) == 0 {
		return MaxLoadResult{}, fmt.Errorf("%w: budget %v W serves no pod", ErrInfeasible, budgetW)
	}
	sort.Ints(union)
	r := pt.room
	var sumA, sumB float64
	for _, i := range union {
		sumA += r.Pairs[i].A
		sumB += r.Pairs[i].B
	}
	k := float64(len(union))
	t := (k*r.W2 + r.CoolFactor*r.SetPointC + r.W1*sumA - budgetW) / (r.Rho + r.W1*sumB)
	if t < 0 {
		t = 0
	}
	load := sumA - t*sumB
	if load > k {
		load = k // capacity cap; t at the front for the capped load
		t = (sumA - load) / sumB
	}
	if load < 0 {
		return MaxLoadResult{}, fmt.Errorf("%w: budget %v W below the %d-machine floor", ErrInfeasible, budgetW, len(union))
	}
	return MaxLoadResult{Load: load, Subset: union, T: t}, nil
}

// makeLeaf builds one leaf shard over the listed (ascending, contiguous)
// global machine IDs: the pod-local pair slice, the Eq. 21–22 aggregates
// accumulated in ID order, and the share-scaled cooling leverage and
// clamp bounds (share = B_j/B_total; see the podded.go file comment).
// Every construction path — NewPodSnapshot, Patch, and the flat
// Snapshot's single leaf — funnels through this one loop so the sums are
// bit-identical across them.
func makeLeaf(room Reduced, p *Profile, ids []int, totalB float64) *pod {
	var sumA, sumB float64
	pairs := make([]Pair, len(ids))
	for i, id := range ids {
		pairs[i] = room.Pairs[id]
		sumA += pairs[i].A
		sumB += pairs[i].B
	}
	share := sumB / totalB
	return &pod{
		ids:   ids,
		sumA:  sumA,
		sumB:  sumB,
		share: share,
		reduced: Reduced{
			Pairs:      pairs,
			W2:         p.W2,
			Rho:        p.CoolFactor * p.W1 * share,
			CoolFactor: p.CoolFactor * share,
			SetPointC:  p.SetPointC,
			W1:         p.W1,
		},
		bounds: clampBounds{
			W1: p.W1, W2: p.W2,
			CoolFactor: p.CoolFactor * share,
			SetPointC:  p.SetPointC,
			TAcMinC:    p.TAcMinC,
			TAcMaxC:    p.TAcMaxC,
		},
	}
}
