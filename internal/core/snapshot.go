package core

// Snapshot is an immutable view of a profiled machine room: the
// per-machine thermal constants of Eq. 19 (α_i, β_i, γ_i and the derived
// K_i), the room-wide power and cooling models of Eqs. 9–10, and the
// consolidation tables of Algorithms 1–2 in their compressed kinetic form
// with the persistent front-set arena.
//
// A Snapshot is frozen at construction: NewSnapshot deep-copies the
// profile and every query path is read-only, so one Snapshot may be
// shared by any number of goroutines WITHOUT Clone() — it is the model
// half of the plant-model/optimizer split, published to planners by an
// atomic pointer swap (see internal/engine) while the mutable
// System/Simulator side keeps its clone discipline. The clonesafety
// analyzer sanctions capturing a Snapshot in a goroutine for exactly this
// reason.
//
// Internally the Snapshot is the single-leaf degenerate form of the
// recursive planner tree (unit.go): one leaf whose machine range is the
// entire room, with share exactly 1.0, so the shared planning path runs
// no water-fill and stays bit-identical to the historical flat planner.
// Unlike the hierarchical topologies it keeps flat semantics — a failed
// clamped table lookup is an infeasibility rather than a fall-back.
//
// Callers must treat the *Profile returned by Profile() as read-only;
// mutating it would corrupt the precomputed tables it no longer matches.
type Snapshot struct {
	epoch   uint64
	profile *Profile
	pre     *Preprocessed
	tree    planTree
}

// newFlatSnapshot assembles a Snapshot around already-built tables: the
// frozen profile, the single-leaf planner tree over the whole room, and
// the generation tag. NewSnapshot and both Patch paths funnel through it
// so the tree is always consistent with the tables.
func newFlatSnapshot(epoch uint64, p *Profile, pre *Preprocessed) *Snapshot {
	room := pre.reduced
	var totalB float64
	for _, pr := range room.Pairs {
		totalB += pr.B
	}
	ids := make([]int, p.Size())
	for i := range ids {
		ids[i] = i
	}
	leaf := makeLeaf(room, p, ids, totalB)
	leaf.pre = pre
	tree := planTree{
		profile: p,
		room:    room,
		pods:    []*pod{leaf},
		totalB:  totalB,
		flat:    true,
		depth:   1,
	}
	tree.root = buildUnitTree(tree.pods, 0, 1, 1)
	return &Snapshot{epoch: epoch, profile: p, pre: pre, tree: tree}
}

// NewSnapshot validates and deep-copies the profile, runs consolidation
// preprocessing once (forwarding any cap/worker options), and freezes the
// result. epoch tags the snapshot's generation: engines publish
// re-profiled or failure-adjusted snapshots with increasing epochs so
// cached plans from superseded snapshots are never confused with current
// ones.
func NewSnapshot(p *Profile, epoch uint64, opts ...PreprocessOption) (*Snapshot, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	frozen := *p
	frozen.Machines = append([]MachineProfile(nil), p.Machines...)
	pre, err := Preprocess(frozen.Reduce(), opts...)
	if err != nil {
		return nil, err
	}
	return newFlatSnapshot(epoch, &frozen, pre), nil
}

// Epoch returns the snapshot's generation tag.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Size returns the number of machines.
func (s *Snapshot) Size() int { return s.profile.Size() }

// Profile returns the frozen model. Read-only: see the type comment.
func (s *Snapshot) Profile() *Profile { return s.profile }

// Tables returns the consolidation tables (Algorithm 1's compressed
// output); all its query methods are safe for concurrent use.
func (s *Snapshot) Tables() *Preprocessed { return s.pre }

// Root returns the (single-leaf) planner tree. Read-only, safe for
// concurrent use; inspect it for shape, never mutate it.
func (s *Snapshot) Root() *Unit { return s.tree.root }

// Plan returns the minimum-power plan for the given total load (in
// machine-utilization units) with consolidation: machines outside the
// returned on set should be powered off.
//
// For each feasible machine count k ≥ ⌈load⌉ the particle structure yields
// the t-maximizing subset; the candidate's power is scored with the supply
// temperature clamped into the actuation range (the paper's Eq. 23 scores
// the unclamped value, which would over-reward subsets that cannot
// actually raise the supply any further). The load split inside the winner
// comes from SolveBounded. The shared recursive planning path (unit.go)
// degenerates to exactly this for a single leaf.
func (s *Snapshot) Plan(load float64) (*Plan, error) {
	return s.tree.plan(load)
}

// PlanNoConsolidation returns the minimum-power plan that keeps every
// machine powered on (scenarios #4–#6 in the paper's evaluation tree).
func (s *Snapshot) PlanNoConsolidation(load float64) (*Plan, error) {
	return s.profile.PlanAllOn(load)
}

// PlanOver consolidates over prefixes of the given machine pool; see
// Profile.PlanOver.
func (s *Snapshot) PlanOver(pool []int, load float64) *Plan {
	return s.profile.PlanOver(pool, load)
}
