package core

import (
	"errors"
	"strings"
	"testing"

	"coolopt/internal/mathx"
)

// This file is the power-drift half of the incremental-maintenance
// battery. A MachineDelta carrying W1/W2 replaces the room power model
// (Eq. 9), which moves every machine's Eq. 19 boundary K_i at once — so
// Patch must fall back to a full rebuild, and the rebuilt snapshot must
// still be bit-identical to a from-scratch build over the patched
// profile. The validation cases pin the batch grammar: negative
// coefficients, W2 without W1, and disagreeing replacements are refused
// with ErrBadDelta before any table work starts.

// powerBatch attaches a W1/W2 replacement to a thermal drift batch (or
// fabricates a carrier delta when the batch is empty), mirroring what
// profiling.Refresher emits on pooled power-fit drift.
func powerBatch(p *Profile, batch []MachineDelta, w1, w2 float64) []MachineDelta {
	if len(batch) == 0 {
		batch = []MachineDelta{{ID: 0, Machine: p.Machines[0]}}
	}
	out := append([]MachineDelta(nil), batch...)
	out[0].W1, out[0].W2 = w1, w2
	return out
}

// applyPowerBatch mirrors a power-carrying batch onto a plain profile
// copy, the input of the from-scratch rebuild the patch is compared to.
func applyPowerBatch(p *Profile, batch []MachineDelta) *Profile {
	next := applyBatch(p, batch)
	for _, d := range batch {
		if d.W1 > 0 {
			next.W1, next.W2 = d.W1, d.W2
		}
	}
	return next
}

// TestPowerDriftPredicate pins the helper the engine's patch advisor
// routes on.
func TestPowerDriftPredicate(t *testing.T) {
	p := hierProfile(8)
	if PowerDrift(nil) {
		t.Fatal("empty batch reports power drift")
	}
	thermal := []MachineDelta{{ID: 3, Machine: p.Machines[3]}}
	if PowerDrift(thermal) {
		t.Fatal("thermal-only batch reports power drift")
	}
	if !PowerDrift(powerBatch(p, thermal, p.W1*1.04, p.W2)) {
		t.Fatal("W1-carrying batch does not report power drift")
	}
}

// TestPatchPowerDriftFlat: a flat snapshot patched with a power-carrying
// batch must equal a from-scratch build over the patched profile bit for
// bit, keep patch support, and advance the epoch — even though every
// retained crossing was invalidated.
func TestPatchPowerDriftFlat(t *testing.T) {
	const n = 96
	rng := mathx.NewRand(5)
	profile := hierProfile(n)
	cur, err := NewSnapshot(profile, 0, WithPatchSupport(), WithPreprocessWorkers(1))
	if err != nil {
		t.Fatal(err)
	}

	// Epoch 1: pure power drift through a carrier delta (no thermal
	// motion at all). Epoch 2: combined thermal + power drift.
	batches := [][]MachineDelta{
		powerBatch(profile, nil, profile.W1*1.05, profile.W2*0.92),
		powerBatch(profile, driftBatch(rng, profile, 16), profile.W1*1.08, profile.W2*0.9),
	}
	for e, batch := range batches {
		profile = applyPowerBatch(profile, batch)
		next, err := cur.Patch(batch, WithPreprocessWorkers(1))
		if err != nil {
			t.Fatalf("epoch %d: patch: %v", e, err)
		}
		checkFlatAgainstRebuild(t, "flat power drift", next, profile, uint64(e+1))
		if !next.PatchSupported() {
			t.Fatalf("epoch %d: power-drift rebuild lost patch support", e)
		}
		cur = next
	}
}

// TestPatchRebuildMatchesSplice: PatchRebuild (the patch-cost advisor's
// fallback) must be bit-identical to the splice path on a thermal-only
// batch — callers can only tell them apart by the stats counter.
func TestPatchRebuildMatchesSplice(t *testing.T) {
	const n = 96
	rng := mathx.NewRand(7)
	profile := hierProfile(n)
	cur, err := NewSnapshot(profile, 0, WithPatchSupport(), WithPreprocessWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	batch := driftBatch(rng, profile, 16)
	patched := applyBatch(profile, batch)

	spliced, err := cur.Patch(batch, WithPreprocessWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := cur.PatchRebuild(batch, WithPatchSupport(), WithPreprocessWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	checkFlatAgainstRebuild(t, "splice", spliced, patched, 1)
	checkFlatAgainstRebuild(t, "rebuild", rebuilt, patched, 1)
	equalTables(t, "splice vs rebuild", spliced.pre, rebuilt.pre)
	if !rebuilt.PatchSupported() {
		t.Fatal("PatchRebuild dropped patch support")
	}
}

// TestPatchPowerDriftPods: pod tables under power drift rebuild every
// pod (no pod is spared — every particle moved) and match a from-scratch
// build bit for bit, at depth 2 and at depth 3.
func TestPatchPowerDriftPods(t *testing.T) {
	const n, pods = 128, 8
	for _, depth := range []int{2, 3} {
		rng := mathx.NewRand(9)
		profile := hierProfile(n)
		cur, err := NewPodSnapshot(profile, 0, WithPodCount(pods), WithPodDepth(depth), WithPodBuildWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		batch := powerBatch(profile, driftBatch(rng, profile, 4), profile.W1*1.06, profile.W2*0.95)
		profile = applyPowerBatch(profile, batch)
		next, err := cur.Patch(batch, WithPodBuildWorkers(1))
		if err != nil {
			t.Fatalf("depth %d: patch: %v", depth, err)
		}
		want, err := NewPodSnapshot(profile, 1, WithPodCount(pods), WithPodDepth(depth), WithPodBuildWorkers(1))
		if err != nil {
			t.Fatalf("depth %d: rebuild: %v", depth, err)
		}
		if next.Depth() != want.Depth() {
			t.Fatalf("depth %d: patched tree depth %d vs rebuilt %d", depth, next.Depth(), want.Depth())
		}
		for j := range next.pods {
			equalTables(t, "pod power drift", next.pods[j].pre, want.pods[j].pre)
		}
		for _, frac := range []float64{0.1, 0.45, 0.8} {
			load := frac * float64(n)
			gp, gerr := next.Plan(load)
			wp, werr := want.Plan(load)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("depth %d load %v: err %v vs %v", depth, load, gerr, werr)
			}
			if gerr != nil {
				continue
			}
			equalPlans(t, "pod power plan", gp, wp)
		}
	}
}

// TestPatchPowerDriftRejects pins the batch grammar around W1/W2.
func TestPatchPowerDriftRejects(t *testing.T) {
	const n = 32
	p := hierProfile(n)
	snap, err := NewSnapshot(p, 0, WithPatchSupport(), WithPreprocessWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mk   func() []MachineDelta
		want string
	}{
		{"negative W1", func() []MachineDelta {
			return []MachineDelta{{ID: 0, Machine: p.Machines[0], W1: -1}}
		}, "negative power coefficients"},
		{"negative W2", func() []MachineDelta {
			return []MachineDelta{{ID: 0, Machine: p.Machines[0], W1: 52, W2: -3}}
		}, "negative power coefficients"},
		{"W2 without W1", func() []MachineDelta {
			return []MachineDelta{{ID: 0, Machine: p.Machines[0], W2: 30}}
		}, "without W1"},
		{"disagreeing replacements", func() []MachineDelta {
			return []MachineDelta{
				{ID: 0, Machine: p.Machines[0], W1: 55, W2: 30},
				{ID: 1, Machine: p.Machines[1], W1: 56, W2: 30},
			}
		}, "disagrees on power drift"},
	} {
		_, err := snap.Patch(tc.mk(), WithPreprocessWorkers(1))
		if err == nil {
			t.Errorf("%s: patch accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrBadDelta) {
			t.Errorf("%s: error %v is not ErrBadDelta", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Agreement is bit-exact, not approximate: two deltas restating the
	// identical replacement are fine.
	agree := []MachineDelta{
		{ID: 0, Machine: p.Machines[0], W1: 55, W2: 30},
		{ID: 1, Machine: p.Machines[1], W1: 55, W2: 30},
	}
	if _, err := snap.Patch(agree, WithPreprocessWorkers(1)); err != nil {
		t.Errorf("agreeing replacements refused: %v", err)
	}
}
