package core

import "fmt"

// Multipliers holds the Lagrange multipliers of the optimization at the
// closed-form solution (paper §III-A): Lambda for the load-balance
// constraint and Mu[i] for machine i's temperature constraint.
type Multipliers struct {
	// Lambda is λ = c·f_ac·w1 / Σ(α_i/β_i) (Eq. 16), in Watts per unit
	// load — the marginal cost of one more unit of demand.
	Lambda float64
	// Mu is indexed by machine ID (zero for machines outside the on
	// set); µ_i = λ/(β_i·w1) (Eq. 15), in Watts per °C — the marginal
	// cost of tightening machine i's temperature limit.
	Mu []float64
}

// KKT returns the Lagrange multipliers for the given on set. The paper's
// optimality argument rests on every multiplier being strictly positive
// (hence every constraint active); Validate as well as the tests check
// that property.
func (p *Profile) KKT(on []int) (Multipliers, error) {
	if err := p.checkOnSet(on); err != nil {
		return Multipliers{}, err
	}
	var sumAB float64
	for _, i := range on {
		sumAB += p.RatioAB(i)
	}
	lambda := p.CoolFactor * p.W1 / sumAB // Eq. 16 with c·f_ac = CoolFactor
	mu := make([]float64, p.Size())
	for _, i := range on {
		mu[i] = lambda / (p.Machines[i].Beta * p.W1) // Eq. 15
	}
	m := Multipliers{Lambda: lambda, Mu: mu}
	if err := m.validate(on); err != nil {
		return Multipliers{}, err
	}
	return m, nil
}

func (m Multipliers) validate(on []int) error {
	if m.Lambda <= 0 {
		return fmt.Errorf("core: λ = %v not strictly positive", m.Lambda)
	}
	for _, i := range on {
		if m.Mu[i] <= 0 {
			return fmt.Errorf("core: µ[%d] = %v not strictly positive", i, m.Mu[i])
		}
	}
	return nil
}

// StationarityResidual evaluates the KKT stationarity conditions at the
// closed-form solution and returns the largest absolute residual — zero
// (up to floating point) certifies the solution satisfies Eqs. 13–14:
//
//	∂G/∂T_ac = −c·f_ac + Σ µ_i·α_i            (Eq. 13)
//	∂G/∂L_i  =  λ − µ_i·β_i·w1  (+ w1 from the server-power term,
//	            cancelled against the load constraint's sign convention
//	            as in the paper's Lagrangian)                 (Eq. 14)
func (p *Profile) StationarityResidual(on []int) (float64, error) {
	m, err := p.KKT(on)
	if err != nil {
		return 0, err
	}
	// Eq. 13 residual.
	res13 := -p.CoolFactor
	for _, i := range on {
		res13 += m.Mu[i] * p.Machines[i].Alpha
	}
	maxRes := abs(res13)
	// Eq. 14 residual per machine.
	for _, i := range on {
		if r := abs(m.Lambda - m.Mu[i]*p.Machines[i].Beta*p.W1); r > maxRes {
			maxRes = r
		}
	}
	return maxRes, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
