package core

import (
	"errors"
	"testing"
	"testing/quick"

	"coolopt/internal/mathx"
)

func TestPreprocessEventBound(t *testing.T) {
	red := paperExample()
	pp, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	n := len(red.Pairs)
	if maxEvents := n*(n-1)/2 + 1; pp.Events() > maxEvents {
		t.Fatalf("events = %d, bound %d", pp.Events(), maxEvents)
	}
	if want := pp.Events() * n; pp.StatusCount() != want {
		t.Fatalf("statuses = %d, want events×n = %d", pp.StatusCount(), want)
	}
}

func TestPreprocessPaperFigureOne(t *testing.T) {
	// The paper's Figure 1 (n = 4, k = 2): initial coordinate order
	// (3, 1, 4, 2); exactly two events — particle 1 meets 3 at t₁₃ = 1
	// and particle 4 meets 3 at t₃₄ = 3 — giving orders (1, 3, 4, 2)
	// and (1, 4, 3, 2). The construction below realizes exactly that
	// event structure (particle ids are 1-based in the figure, 0-based
	// here): a = (5, 1, 7, 4), b = (1, 4, 3, 2).
	red := Reduced{
		Pairs: []Pair{{A: 5, B: 1}, {A: 1, B: 4}, {A: 7, B: 3}, {A: 4, B: 2}},
		W2:    1, Rho: 1,
	}
	pp, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Events() != 3 { // t = 0 plus the two passings
		t.Fatalf("events = %d, want 3", pp.Events())
	}
	if pp.events[1] != 1 || pp.events[2] != 3 {
		t.Fatalf("event times = %v, want [0 1 3]", pp.events)
	}
	wantOrders := [][]int{
		{2, 0, 3, 1}, // figure: (3, 1, 4, 2)
		{0, 2, 3, 1}, // figure: (1, 3, 4, 2)
		{0, 3, 2, 1}, // figure: (1, 4, 3, 2)
	}
	front := make(map[[2]int]bool)
	for e, want := range wantOrders {
		got, err := pp.OrderAtEvent(e)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order after event %d = %v, want %v", e, got, want)
			}
		}
		pair := [2]int{got[0], got[1]}
		if pair[0] > pair[1] {
			pair[0], pair[1] = pair[1], pair[0]
		}
		front[pair] = true
	}
	// The figure's point: for k = 2 only two distinct front pairs exist
	// across all orders ({3,1}/{1,3} are the same set, then {1,4}),
	// rather than C(4,2) = 6 — so the query needs to consider far fewer
	// combinations than brute force.
	if len(front) != 2 {
		t.Fatalf("distinct front pairs = %d, want 2 (paper Fig. 1)", len(front))
	}
}

func TestPreprocessValidation(t *testing.T) {
	if _, err := Preprocess(Reduced{}); err == nil {
		t.Fatal("empty instance accepted")
	}
	bad := Reduced{Pairs: []Pair{{A: 1, B: 0}}}
	if _, err := Preprocess(bad); err == nil {
		t.Fatal("zero-speed pair accepted")
	}
	big := Reduced{Pairs: make([]Pair, DefaultMaxMachines+1)}
	for i := range big.Pairs {
		big.Pairs[i] = Pair{A: 1, B: 1}
	}
	if _, err := Preprocess(big); err == nil {
		t.Fatal("oversized instance accepted")
	}
	// The cap is an option, not a hard constant.
	small := Reduced{Pairs: make([]Pair, 8)}
	for i := range small.Pairs {
		small.Pairs[i] = Pair{A: float64(i + 1), B: 1}
	}
	if _, err := Preprocess(small, WithMaxMachines(4)); err == nil {
		t.Fatal("lowered cap not enforced")
	}
	if _, err := Preprocess(small, WithMaxMachines(8)); err != nil {
		t.Fatalf("cap raise rejected: %v", err)
	}
	denseBig := Reduced{Pairs: make([]Pair, DenseMaxMachines+1)}
	for i := range denseBig.Pairs {
		denseBig.Pairs[i] = Pair{A: 1, B: 1}
	}
	if _, err := PreprocessDense(denseBig); err == nil {
		t.Fatal("oversized dense instance accepted")
	}
}

func TestQueryExactMatchesBruteForce(t *testing.T) {
	// The headline guarantee of §III-B: the particle algorithm returns
	// the same optimum as exhaustive search (within the t ≥ 0 regime).
	f := func(seed int64) bool {
		rng := mathx.NewRand(seed)
		n := 2 + rng.Intn(8)
		pairs := make([]Pair, n)
		for i := range pairs {
			pairs[i] = Pair{A: rng.Uniform(0.2, 10), B: rng.Uniform(0.2, 5)}
		}
		red := Reduced{Pairs: pairs, W2: rng.Uniform(0, 3), Rho: rng.Uniform(0.2, 3)}
		load := rng.Uniform(0, 4)
		minK := 1 + rng.Intn(n)

		opt, err := red.BruteForce(load, minK)
		if err != nil {
			return true
		}
		if opt.T < 0 {
			// Outside the algorithm's t ≥ 0 domain (paper assumption).
			return true
		}
		pp, err := Preprocess(red)
		if err != nil {
			return false
		}
		got, err := pp.QueryExact(load, minK)
		if err != nil {
			return false
		}
		return mathx.ApproxEqual(got.Power, opt.Power, 1e-6)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQueryExactSubsetIsConsistent(t *testing.T) {
	red := paperExample()
	pp, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := pp.QueryExact(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Subset) < 2 {
		t.Fatalf("subset %v smaller than minK", sel.Subset)
	}
	// Reported power must be reproducible from the subset itself.
	want, err := red.SubsetPower(sel.Subset, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(sel.Power, want, 1e-9) {
		t.Fatalf("power %v, recomputed %v", sel.Power, want)
	}
}

func TestQueryExactBeatsGreedyOnCounterexample(t *testing.T) {
	red := paperExample()
	red.W2 = 100
	pp, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := pp.QueryExact(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := red.GreedyRatio(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Power >= greedy.Power {
		t.Fatalf("exact %v not better than greedy %v", exact.Power, greedy.Power)
	}
}

func TestQueryExactInfeasible(t *testing.T) {
	red := paperExample()
	pp, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	// Σa = 13.2; anything above is unreachable even at t = 0.
	if _, err := pp.QueryExact(20, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestQueryVerbatimNeverBeatsExact(t *testing.T) {
	// Algorithm 2's global Lmax binary search can be suboptimal across
	// k (DESIGN.md §5.1) but must never return something cheaper than
	// the true optimum — that would mean a bug in one of the two.
	rng := mathx.NewRand(23)
	mismatches := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(7)
		pairs := make([]Pair, n)
		for i := range pairs {
			pairs[i] = Pair{A: rng.Uniform(0.2, 10), B: rng.Uniform(0.2, 5)}
		}
		red := Reduced{Pairs: pairs, W2: rng.Uniform(0, 2), Rho: rng.Uniform(0.2, 3)}
		load := rng.Uniform(0, 4)
		pp, err := Preprocess(red)
		if err != nil {
			t.Fatal(err)
		}
		exact, errExact := pp.QueryExact(load, 1)
		verbatim, errVerb := pp.Query(load)
		if errExact != nil || errVerb != nil {
			continue
		}
		if verbatim.Power < exact.Power-1e-6 {
			t.Fatalf("trial %d: verbatim power %v beats exact %v", trial, verbatim.Power, exact.Power)
		}
		if verbatim.Power > exact.Power+1e-6 {
			mismatches++
		}
	}
	t.Logf("verbatim Algorithm 2 suboptimal on %d/%d random instances", mismatches, trials)
}

func TestQueryInfeasible(t *testing.T) {
	red := paperExample()
	pp, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.Query(1e9); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestQueryReturnsFeasibleSelection(t *testing.T) {
	red := paperExample()
	pp, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	for _, load := range []float64{0.1, 0.5, 1, 2, 5, 9} {
		sel, err := pp.Query(load)
		if err != nil {
			t.Fatalf("Query(%v): %v", load, err)
		}
		if len(sel.Subset) == 0 {
			t.Fatalf("Query(%v) returned empty subset", load)
		}
		want, err := red.SubsetPower(sel.Subset, load)
		if err != nil {
			t.Fatal(err)
		}
		if !mathx.ApproxEqual(sel.Power, want, 1e-9) {
			t.Fatalf("Query(%v) power %v, recomputed %v", load, sel.Power, want)
		}
	}
}

func TestPreprocessDeterministic(t *testing.T) {
	red := paperExample()
	a, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	for _, load := range []float64{0.3, 1.7, 4.4} {
		sa, errA := a.QueryExact(load, 1)
		sb, errB := b.QueryExact(load, 1)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("non-deterministic error behaviour at load %v", load)
		}
		if errA != nil {
			continue
		}
		if len(sa.Subset) != len(sb.Subset) {
			t.Fatalf("non-deterministic subsets at load %v: %v vs %v", load, sa.Subset, sb.Subset)
		}
		for i := range sa.Subset {
			if sa.Subset[i] != sb.Subset[i] {
				t.Fatalf("non-deterministic subsets at load %v: %v vs %v", load, sa.Subset, sb.Subset)
			}
		}
	}
}

func TestQueryExactOnProfileReduction(t *testing.T) {
	// End-to-end on a real profile: consolidation plus closed-form
	// solve must produce a valid plan that matches the selection's
	// predicted power (unclamped regime).
	p := testProfile()
	red := p.Reduce()
	pp, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	const load = 3.0
	minK := 3 // ⌈load⌉ — capacity floor
	sel, err := pp.QueryExact(load, minK)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := red.BruteForce(load, minK)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(sel.Power, opt.Power, 1e-6) {
		t.Fatalf("QueryExact power %v, brute force %v", sel.Power, opt.Power)
	}
	plan, err := p.Solve(sel.Subset, load)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Clamped {
		if got := float64(p.PlanPower(plan)); !mathx.ApproxEqual(got, sel.Power, 1e-6) {
			t.Fatalf("plan power %v, selection predicted %v", got, sel.Power)
		}
	}
}
