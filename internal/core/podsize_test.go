package core

import (
	"strings"
	"testing"
)

// TestParseCalibration covers the validation surface of the persisted
// pod-sizing curve: the embedded file must parse, and malformed curves
// (the kind a broken sweep could write) are refused with a message
// naming the offending field.
func TestParseCalibration(t *testing.T) {
	good := `{"hier_threshold": 2048, "points": [
		{"n": 4096, "pod_size": 256, "depth": 2},
		{"n": 262144, "pod_size": 128, "depth": 3, "build_ms": 9000, "table_mb": 700, "gap_worst_pct": 1.2}
	]}`
	c, err := ParseCalibration([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if c.HierThreshold != 2048 || len(c.Points) != 2 {
		t.Fatalf("parsed %+v", c)
	}

	for _, tc := range []struct {
		name, in, wantErr string
	}{
		{"garbage", `{`, "bad calibration"},
		{"zero threshold", `{"hier_threshold": 0, "points": []}`, "hier_threshold"},
		{"bad pod size", `{"hier_threshold": 1, "points": [{"n": 64, "pod_size": 0, "depth": 2}]}`, "bad calibration point"},
		{"depth below 2", `{"hier_threshold": 1, "points": [{"n": 64, "pod_size": 16, "depth": 1}]}`, "bad calibration point"},
		{"not ascending", `{"hier_threshold": 1, "points": [
			{"n": 128, "pod_size": 16, "depth": 2}, {"n": 64, "pod_size": 16, "depth": 2}]}`, "not ascending"},
	} {
		if _, err := ParseCalibration([]byte(tc.in)); err == nil {
			t.Errorf("%s: parsed without error", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestCalibrationLookup pins the lookup semantics: the smallest measured
// room size covering n wins, sizes beyond the last point keep the
// largest measured configuration, and an empty curve falls back to the
// historical defaults.
func TestCalibrationLookup(t *testing.T) {
	c := &Calibration{HierThreshold: 2048, Points: []CalibrationPoint{
		{N: 4096, PodSize: 256, Depth: 2},
		{N: 65536, PodSize: 192, Depth: 2},
		{N: 262144, PodSize: 128, Depth: 3},
	}}
	for _, tc := range []struct {
		n, wantSize, wantDepth int
	}{
		{1, 256, 2},       // below the curve: smallest point covers
		{4096, 256, 2},    // exact hit
		{4097, 192, 2},    // next point up
		{262144, 128, 3},  // largest point
		{1 << 20, 128, 3}, // beyond the curve: asymptotic regime
	} {
		if got := c.PodSizeFor(tc.n); got != tc.wantSize {
			t.Errorf("PodSizeFor(%d) = %d, want %d", tc.n, got, tc.wantSize)
		}
		if got := c.DepthFor(tc.n); got != tc.wantDepth {
			t.Errorf("DepthFor(%d) = %d, want %d", tc.n, got, tc.wantDepth)
		}
	}

	empty := &Calibration{HierThreshold: 2048}
	if got := empty.PodSizeFor(1 << 20); got != DefaultPodSize {
		t.Errorf("empty curve PodSizeFor = %d, want DefaultPodSize %d", got, DefaultPodSize)
	}
	if got := empty.DepthFor(1 << 20); got != 2 {
		t.Errorf("empty curve DepthFor = %d, want 2", got)
	}
}

// TestDefaultCalibrationEmbed asserts the committed embed parses and
// stays consistent with the engine threshold contract: every adaptive
// default NewPodSnapshot derives from it must be a buildable
// configuration (pod size ≥ 1, depth ≥ 2).
func TestDefaultCalibrationEmbed(t *testing.T) {
	c := DefaultCalibration()
	if c.HierThreshold < 1 {
		t.Fatalf("embedded hier_threshold = %d", c.HierThreshold)
	}
	if len(c.Points) == 0 {
		t.Fatal("embedded curve has no points; adaptive sizing would silently degrade to guesses")
	}
	for _, pt := range c.Points {
		if pt.PodSize < 1 || pt.Depth < 2 {
			t.Fatalf("embedded point %+v not buildable", pt)
		}
	}
}

// TestAdaptivePodSizing asserts NewPodSnapshot's zero-option defaults
// actually follow the calibration curve — pod size and tree depth both.
func TestAdaptivePodSizing(t *testing.T) {
	const n = 512
	p := hierProfile(n)
	ps, err := NewPodSnapshot(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultCalibration()
	wantSize := c.PodSizeFor(n)
	if wantSize > n {
		wantSize = n
	}
	wantPods := (n + wantSize - 1) / wantSize
	if ps.Pods() != wantPods {
		t.Fatalf("default pods = %d, want %d (calibrated pod size %d)", ps.Pods(), wantPods, wantSize)
	}
	wantDepth := c.DepthFor(n)
	if wantDepth < 2 {
		wantDepth = 2
	}
	// A small room's tree may collapse below the calibrated depth when
	// there are too few pods to nest, but it must never exceed it.
	if got := ps.Depth(); got > wantDepth {
		t.Fatalf("default depth = %d, want ≤ calibrated %d", got, wantDepth)
	}
}
