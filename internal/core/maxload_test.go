package core

import (
	"math"
	"testing"
	"testing/quick"

	"coolopt/internal/mathx"
)

// bruteMaxLoadK enumerates every k-subset and returns the maximum load
// serviceable within the budget (t ≥ 0 regime), the oracle for MaxLoadK.
func bruteMaxLoadK(r Reduced, budgetW float64, k int) (float64, bool) {
	n := len(r.Pairs)
	best := math.Inf(-1)
	found := false
	for mask := 1; mask < 1<<uint(n); mask++ {
		var sumA, sumB float64
		cnt := 0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sumA += r.Pairs[i].A
				sumB += r.Pairs[i].B
				cnt++
			}
		}
		if cnt != k {
			continue
		}
		// Budget boundary: P(S, L) = P_b with t_S = (ΣA − L)/ΣB.
		// L·(w1 + ρ/ΣB) = P_b − k·w2 − cf·T_SP + ρ·ΣA/ΣB.
		load := (budgetW - float64(k)*r.W2 - r.CoolFactor*r.SetPointC + r.Rho*sumA/sumB) /
			(r.W1 + r.Rho/sumB)
		// The t ≥ 0 regime caps the load at the subset's coordinate
		// sum at t = 0.
		if t := (sumA - load) / sumB; t < 0 {
			load = sumA
			// Confirm the capped point stays within budget.
			if float64(k)*r.W2-r.Rho*0+r.CoolFactor*r.SetPointC+r.W1*load > budgetW+1e-9 {
				continue
			}
		}
		if load > best {
			best = load
			found = true
		}
	}
	return best, found
}

func maxLoadInstance(seed int64) (Reduced, float64) {
	rng := mathx.NewRand(seed)
	n := 2 + rng.Intn(6)
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{A: rng.Uniform(0.5, 3), B: rng.Uniform(1.2, 3)}
	}
	red := Reduced{
		Pairs:      pairs,
		W2:         rng.Uniform(20, 40),
		W1:         rng.Uniform(40, 60),
		CoolFactor: rng.Uniform(50, 150),
		SetPointC:  rng.Uniform(28, 34),
	}
	red.Rho = red.CoolFactor * red.W1
	return red, rng.Uniform(500, 6000)
}

func TestMaxLoadKMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		red, budget := maxLoadInstance(seed)
		pp, err := Preprocess(red)
		if err != nil {
			return false
		}
		for k := 1; k <= len(red.Pairs); k++ {
			want, feasible := bruteMaxLoadK(red, budget, k)
			got, err := pp.MaxLoadK(budget, k)
			if err != nil {
				if feasible && want > 1e-6 {
					return false // algorithm missed a feasible answer
				}
				continue
			}
			if !feasible {
				continue
			}
			if !mathx.ApproxEqual(got.Load, want, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxLoadMonotoneInBudget(t *testing.T) {
	red, _ := maxLoadInstance(5)
	pp, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for budget := 800.0; budget <= 6000; budget += 400 {
		res, err := pp.MaxLoad(budget)
		if err != nil {
			continue
		}
		if res.Load < prev-1e-9 {
			t.Fatalf("max load fell from %v to %v as budget rose to %v", prev, res.Load, budget)
		}
		prev = res.Load
	}
	if prev < 0 {
		t.Fatal("no budget was feasible")
	}
}

func TestMaxLoadCapacityCap(t *testing.T) {
	red, _ := maxLoadInstance(9)
	pp, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pp.MaxLoad(1e9) // unbounded budget
	if err != nil {
		t.Fatal(err)
	}
	if res.Load > float64(len(red.Pairs))+1e-9 {
		t.Fatalf("max load %v exceeds physical capacity %d", res.Load, len(red.Pairs))
	}
}

func TestMaxLoadKValidation(t *testing.T) {
	red, _ := maxLoadInstance(3)
	pp, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.MaxLoadK(1000, 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
	if _, err := pp.MaxLoadK(1000, 99); err == nil {
		t.Fatal("k beyond n accepted")
	}
	bare := Reduced{Pairs: red.Pairs} // no W1/Rho
	ppBare, err := Preprocess(bare)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ppBare.MaxLoadK(1000, 1); err == nil {
		t.Fatal("instance without W1/Rho accepted")
	}
}

// TestMaxLoadRoundTripWithQueryExact ties the primal and dual together:
// the load MaxLoad reports for a budget must cost (about) that budget
// when planned with the primal query.
func TestMaxLoadRoundTripWithQueryExact(t *testing.T) {
	p := testProfile()
	red := p.Reduce()
	pp, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 2500.0
	res, err := pp.MaxLoad(budget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Load <= 0 {
		t.Fatalf("max load = %v", res.Load)
	}
	sel, err := pp.QueryExact(res.Load, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Power > budget*1.001 {
		t.Fatalf("optimal plan for the reported max load costs %v W, budget %v W", sel.Power, budget)
	}
}
