package core

// Optimizer combines the consolidation machinery with the closed-form
// solver into one practical planner: given a total load it decides which
// machines to power on, how to split the load, and what supply temperature
// to command — honouring the physical constraints the paper's raw
// formulation leaves implicit (per-machine capacity L_i ≤ 1 and the supply
// temperature actuation bounds).
//
// Optimizer is a thin veneer over Snapshot kept for API continuity; new
// code that wants to share one preprocessed model across goroutines should
// hold the Snapshot directly.
type Optimizer struct {
	snap *Snapshot
}

// NewOptimizer validates the profile and runs Algorithm 1 once; the
// returned optimizer answers Plan queries in O(n·lg n). Options are
// forwarded to Preprocess (cap and worker-pool overrides).
func NewOptimizer(p *Profile, opts ...PreprocessOption) (*Optimizer, error) {
	snap, err := NewSnapshot(p, 0, opts...)
	if err != nil {
		return nil, err
	}
	return &Optimizer{snap: snap}, nil
}

// NewOptimizerFromSnapshot wraps an existing snapshot without re-running
// preprocessing — the sharing constructor used when the same frozen model
// backs several planners.
func NewOptimizerFromSnapshot(s *Snapshot) *Optimizer { return &Optimizer{snap: s} }

// Snapshot returns the frozen model the optimizer plans against.
func (o *Optimizer) Snapshot() *Snapshot { return o.snap }

// Profile returns the profile the optimizer plans against (read-only).
func (o *Optimizer) Profile() *Profile { return o.snap.Profile() }

// Plan returns the minimum-power plan for the given total load with
// consolidation; see Snapshot.Plan.
func (o *Optimizer) Plan(load float64) (*Plan, error) { return o.snap.Plan(load) }

// PlanNoConsolidation returns the minimum-power plan that keeps every
// machine powered on; see Snapshot.PlanNoConsolidation.
func (o *Optimizer) PlanNoConsolidation(load float64) (*Plan, error) {
	return o.snap.PlanNoConsolidation(load)
}
