package core

import (
	"fmt"
	"math"

	"coolopt/internal/units"
)

// Optimizer combines the consolidation machinery with the closed-form
// solver into one practical planner: given a total load it decides which
// machines to power on, how to split the load, and what supply temperature
// to command — honouring the physical constraints the paper's raw
// formulation leaves implicit (per-machine capacity L_i ≤ 1 and the supply
// temperature actuation bounds).
type Optimizer struct {
	profile *Profile
	pre     *Preprocessed
}

// NewOptimizer validates the profile and runs Algorithm 1 once; the
// returned optimizer answers Plan queries in O(n·lg n). Options are
// forwarded to Preprocess (cap and worker-pool overrides).
func NewOptimizer(p *Profile, opts ...PreprocessOption) (*Optimizer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pre, err := Preprocess(p.Reduce(), opts...)
	if err != nil {
		return nil, err
	}
	return &Optimizer{profile: p, pre: pre}, nil
}

// Profile returns the profile the optimizer plans against.
func (o *Optimizer) Profile() *Profile { return o.profile }

// Plan returns the minimum-power plan for the given total load (in
// machine-utilization units) with consolidation: machines outside the
// returned on set should be powered off.
//
// For each feasible machine count k ≥ ⌈load⌉ the particle structure yields
// the t-maximizing subset; the candidate's power is scored with the supply
// temperature clamped into the actuation range (the paper's Eq. 23 scores
// the unclamped value, which would over-reward subsets that cannot
// actually raise the supply any further). The load split inside the winner
// comes from SolveBounded.
func (o *Optimizer) Plan(load float64) (*Plan, error) {
	p := o.profile
	n := p.Size()
	if load <= 0 {
		return nil, fmt.Errorf("core: load %v must be positive (power everything off instead)", load)
	}
	if load > float64(n) {
		return nil, fmt.Errorf("%w: load %v exceeds cluster capacity %d", ErrInfeasible, load, n)
	}

	minK := int(math.Ceil(load - 1e-9))
	if minK < 1 {
		minK = 1
	}

	type candidate struct {
		subset []int
		power  float64
	}
	best := candidate{power: math.Inf(1)}
	for k := minK; k <= n; k++ {
		sel, err := o.pre.QueryExactK(load, k)
		if err != nil {
			continue
		}
		tAc := p.W1 * sel.T
		if tAc > p.TAcMaxC {
			tAc = p.TAcMaxC
		}
		if tAc < p.TAcMinC {
			continue // even the best k-subset needs colder air than available
		}
		power := float64(p.CoolingPower(units.Celsius(tAc))) + p.W1*load + float64(k)*p.W2
		if power < best.power-1e-9 {
			best = candidate{subset: sel.Subset, power: power}
		}
	}
	if best.subset == nil {
		return nil, fmt.Errorf("%w: no machine subset satisfies load %v within constraints", ErrInfeasible, load)
	}

	plan, err := p.SolveBounded(best.subset, load)
	if err != nil {
		return nil, err
	}
	if err := p.ValidatePlan(plan, load, 1e-6); err != nil {
		return nil, fmt.Errorf("core: optimizer produced invalid plan: %w", err)
	}
	return plan, nil
}

// PlanNoConsolidation returns the minimum-power plan that keeps every
// machine powered on (scenarios #4–#6 in the paper's evaluation tree).
func (o *Optimizer) PlanNoConsolidation(load float64) (*Plan, error) {
	p := o.profile
	on := make([]int, p.Size())
	for i := range on {
		on[i] = i
	}
	plan, err := p.SolveBounded(on, load)
	if err != nil {
		return nil, err
	}
	if err := p.ValidatePlan(plan, load, 1e-6); err != nil {
		return nil, fmt.Errorf("core: optimizer produced invalid plan: %w", err)
	}
	return plan, nil
}
