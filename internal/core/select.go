package core

import "math"

// clampBounds carries the room-level constants the clamped subset scorer
// needs: the Eq. 9 power coefficients, the Eq. 10 cooling model, and the
// supply-temperature actuation range. A Snapshot fills it from its
// Profile; a pod fills it with its share-scaled cooling leverage so that
// per-pod scores sum to the room score (see podded.go).
type clampBounds struct {
	W1, W2     float64
	CoolFactor float64
	SetPointC  float64
	TAcMinC    float64
	TAcMaxC    float64
}

// clampedSelect sweeps subset sizes k ≥ ⌈load⌉ and returns the
// power-optimal front set under the supply-temperature clamp: each k's
// best particle time comes from bestTimeFor, its supply temperature
// tAc = W1·t is clamped into the actuation range (the paper's Eq. 23
// scores the unclamped value, which would over-reward subsets that cannot
// actually raise the supply any further), and the candidate is scored as
// cooling + W1·load + k·W2. The front set is materialized once, for the
// winning k only — per-k front sets would cost Σk = O(n²) rank searches
// per query, the old cold-path wall.
func clampedSelect(pre *Preprocessed, load float64, b clampBounds) ([]int, bool) {
	n := len(pre.reduced.Pairs)
	minK := int(math.Ceil(load - 1e-9))
	if minK < 1 {
		minK = 1
	}
	bestPower := math.Inf(1)
	bestK, bestE := 0, 0
	for k := minK; k <= n; k++ {
		t, e, ok := pre.bestTimeFor(k, load)
		if !ok {
			continue
		}
		tAc := b.W1 * t
		if tAc > b.TAcMaxC {
			tAc = b.TAcMaxC
		}
		if tAc < b.TAcMinC {
			continue // even the best k-subset needs colder air than available
		}
		cooling := b.CoolFactor * (b.SetPointC - tAc)
		if cooling < 0 {
			cooling = 0
		}
		power := cooling + b.W1*load + float64(k)*b.W2
		if power < bestPower-1e-9 {
			bestPower, bestK, bestE = power, k, e
		}
	}
	if bestK == 0 {
		return nil, false
	}
	return pre.frontSet(bestE, bestK), true
}
