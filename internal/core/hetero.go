package core

import (
	"errors"
	"fmt"
	"sort"

	"coolopt/internal/units"
)

// This file generalizes the closed form to heterogeneous hardware — the
// extension the paper names ("future extensions can delve into details
// such as separating CPU and memory consumption"; mixed machine
// generations are the common practical case). Each machine carries its
// own power model P_i = w1_i·L_i + w2_i. The Lagrangian stationarity
// conditions become
//
//	∂G/∂L_i:  w1_i − λ + µ_i·β_i·w1_i = 0  ⇒  µ_i = (λ − w1_i)/(β_i·w1_i)
//	∂G/∂T_ac: Σ µ_i·α_i = c·f_ac,
//
// so λ = (c·f_ac + Σ α_i/β_i) / Σ α_i/(w1_i·β_i) over the temperature-
// tight set. Machines with w1_i ≥ λ have µ_i ≤ 0: their energy per unit
// of work exceeds the marginal system cost, so the optimum parks them at
// zero load with slack temperature. Solving therefore iterates an active
// set: assume everyone tight, compute λ, evict machines with µ_i ≤ 0 or
// negative loads, repeat — convex, so the iteration terminates at the
// global optimum (cross-checked against a derivative-free solver in the
// tests).

// HeteroMachine is one machine of a mixed-hardware room.
type HeteroMachine struct {
	// W1 and W2 are this machine's power model (Eq. 9, per machine).
	W1 float64 `json:"w1"`
	W2 float64 `json:"w2"`
	// Thermal coefficients as in MachineProfile.
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	Gamma float64 `json:"gamma"`
}

// HeteroProfile is the mixed-hardware analogue of Profile.
type HeteroProfile struct {
	CoolFactor float64         `json:"coolFactor"`
	SetPointC  float64         `json:"setPointC"`
	TMaxC      float64         `json:"tMaxC"`
	TAcMinC    float64         `json:"tAcMinC"`
	TAcMaxC    float64         `json:"tAcMaxC"`
	Machines   []HeteroMachine `json:"machines"`
}

// Validate checks the profile.
func (hp *HeteroProfile) Validate() error {
	if hp.CoolFactor <= 0 {
		return fmt.Errorf("core: cool factor = %v, must be positive", hp.CoolFactor)
	}
	if hp.TAcMinC >= hp.TAcMaxC {
		return fmt.Errorf("core: supply bounds [%v, %v] invalid", hp.TAcMinC, hp.TAcMaxC)
	}
	if len(hp.Machines) == 0 {
		return errors.New("core: no machines in hetero profile")
	}
	for i, m := range hp.Machines {
		switch {
		case m.W1 <= 0:
			return fmt.Errorf("core: machine %d w1 = %v, must be positive", i, m.W1)
		case m.W2 < 0:
			return fmt.Errorf("core: machine %d w2 = %v, must be non-negative", i, m.W2)
		case m.Alpha <= 0:
			return fmt.Errorf("core: machine %d alpha = %v, must be positive", i, m.Alpha)
		case m.Beta <= 0:
			return fmt.Errorf("core: machine %d beta = %v, must be positive", i, m.Beta)
		}
		if hp.K(i) <= 0 {
			return fmt.Errorf("core: machine %d infeasible: K = %v ≤ 0", i, hp.K(i))
		}
	}
	return nil
}

// Size returns the number of machines.
func (hp *HeteroProfile) Size() int { return len(hp.Machines) }

// K is the heterogeneous analogue of Eq. 19:
// K_i = (T_max − β_i·w2_i − γ_i)/(β_i·w1_i).
func (hp *HeteroProfile) K(i int) float64 {
	m := hp.Machines[i]
	return (hp.TMaxC - m.Beta*m.W2 - m.Gamma) / (m.Beta * m.W1)
}

// ratio is r_i = α_i/(w1_i·β_i), the coefficient tying T_ac to L_i on the
// temperature boundary.
func (hp *HeteroProfile) ratio(i int) float64 {
	m := hp.Machines[i]
	return m.Alpha / (m.W1 * m.Beta)
}

// ServerPower returns machine i's modeled power at a utilization.
func (hp *HeteroProfile) ServerPower(i int, load float64) units.Watts {
	m := hp.Machines[i]
	return units.Watts(m.W1*load + m.W2)
}

// CPUTemp returns machine i's modeled steady temperature.
func (hp *HeteroProfile) CPUTemp(i int, load float64, tAc units.Celsius) units.Celsius {
	m := hp.Machines[i]
	return units.Alpha(m.Alpha).Times(tAc) +
		units.BetaCPerW(m.Beta).Times(hp.ServerPower(i, load)) +
		units.Celsius(m.Gamma)
}

// CoolingPower is Eq. 10.
func (hp *HeteroProfile) CoolingPower(tAc units.Celsius) units.Watts {
	pw := hp.CoolFactor * (hp.SetPointC - float64(tAc))
	if pw < 0 {
		return 0
	}
	return units.Watts(pw)
}

// PlanPower evaluates a plan under the heterogeneous model.
func (hp *HeteroProfile) PlanPower(pl *Plan) units.Watts {
	total := hp.CoolingPower(pl.TAcC)
	for _, i := range pl.On {
		total += hp.ServerPower(i, pl.Loads[i])
	}
	return total
}

// Solve computes the energy-optimal load split over the on set for a
// mixed-hardware room.
//
// Structure: for a fixed supply temperature T the problem is a linear
// program — serve the load on the cheapest Watts-per-work machines first
// (ascending w1), each machine capped by its thermal headroom
// c_i(T) = min(1, K_i − r_i·T) — and the total cost is convex in T (the
// caps are affine in T and an LP value is convex in its right-hand side).
// Solve therefore trisects T over the feasible range and greedily fills
// at each probe. In the homogeneous interior case the optimum sits where
// the caps exactly absorb the load, every machine lands on its cap (CPU
// at T_max), and the result coincides with the paper's closed form.
func (hp *HeteroProfile) Solve(on []int, totalLoad float64) (*Plan, error) {
	if err := hp.checkOnSet(on); err != nil {
		return nil, err
	}
	if totalLoad < 0 {
		return nil, fmt.Errorf("core: negative total load %v", totalLoad)
	}
	if totalLoad > float64(len(on))+1e-9 {
		return nil, fmt.Errorf("%w: load %v exceeds capacity of %d machines", ErrInfeasible, totalLoad, len(on))
	}

	cap := func(i int, t float64) float64 {
		c := hp.K(i) - hp.ratio(i)*t
		if c < 0 {
			return 0
		}
		if c > 1 {
			return 1
		}
		return c
	}
	capacityAt := func(t float64) float64 {
		sum := 0.0
		for _, i := range on {
			sum += cap(i, t)
		}
		return sum
	}

	// Feasible supply range: capacity is non-increasing in T, so find
	// the highest T that still carries the load.
	if capacityAt(hp.TAcMinC) < totalLoad-1e-12 {
		return nil, fmt.Errorf("%w: load %v exceeds thermal capacity even at the coldest supply", ErrInfeasible, totalLoad)
	}
	lo, hi := hp.TAcMinC, hp.TAcMaxC
	if capacityAt(hi) < totalLoad {
		for iter := 0; iter < 100; iter++ {
			mid := (lo + hi) / 2
			if capacityAt(mid) >= totalLoad {
				lo = mid
			} else {
				hi = mid
			}
		}
		hi = lo // highest feasible supply
	}

	// Cheapest-first fill order: ascending w1, stable by index.
	order := append([]int(nil), on...)
	sort.SliceStable(order, func(a, b int) bool {
		return hp.Machines[order[a]].W1 < hp.Machines[order[b]].W1
	})
	fill := func(t float64) ([]float64, float64) {
		loads := make([]float64, hp.Size())
		remaining := totalLoad
		cost := float64(hp.CoolingPower(units.Celsius(t)))
		for _, i := range order {
			c := cap(i, t)
			l := remaining
			if l > c {
				l = c
			}
			loads[i] = l
			remaining -= l
			cost += float64(hp.ServerPower(i, l))
		}
		return loads, cost
	}

	// Trisect the convex cost over [TAcMin, highest feasible T].
	a, b := hp.TAcMinC, hi
	for iter := 0; iter < 200 && b-a > 1e-10; iter++ {
		m1 := a + (b-a)/3
		m2 := b - (b-a)/3
		_, c1 := fill(m1)
		_, c2 := fill(m2)
		if c1 <= c2 {
			b = m2
		} else {
			a = m1
		}
	}
	tAc := (a + b) / 2
	loads, _ := fill(tAc)

	onCopy := append([]int(nil), on...)
	sort.Ints(onCopy)
	// Clamped means the temperature constraints are not all tight: the
	// room has spare thermal capacity at the chosen supply.
	clamped := capacityAt(tAc) > totalLoad+1e-9
	return &Plan{On: onCopy, Loads: loads, TAcC: units.Celsius(tAc), Clamped: clamped}, nil
}

func (hp *HeteroProfile) checkOnSet(on []int) error {
	if len(on) == 0 {
		return errors.New("core: empty on set")
	}
	seen := make(map[int]bool, len(on))
	for _, i := range on {
		if i < 0 || i >= hp.Size() {
			return fmt.Errorf("core: machine index %d out of range [0, %d)", i, hp.Size())
		}
		if seen[i] {
			return fmt.Errorf("core: duplicate machine index %d", i)
		}
		seen[i] = true
	}
	return nil
}

// Homogeneous converts a Profile into the heterogeneous representation
// (every machine sharing w1/w2), for cross-checking the two solvers.
func (p *Profile) Homogeneous() *HeteroProfile {
	machines := make([]HeteroMachine, p.Size())
	for i, m := range p.Machines {
		machines[i] = HeteroMachine{W1: p.W1, W2: p.W2, Alpha: m.Alpha, Beta: m.Beta, Gamma: m.Gamma}
	}
	return &HeteroProfile{
		CoolFactor: p.CoolFactor,
		SetPointC:  p.SetPointC,
		TMaxC:      p.TMaxC,
		TAcMinC:    p.TAcMinC,
		TAcMaxC:    p.TAcMaxC,
		Machines:   machines,
	}
}
