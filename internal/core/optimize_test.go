package core

import (
	"errors"
	"math"
	"testing"

	"coolopt/internal/mathx"
)

func newTestOptimizer(t *testing.T) *Optimizer {
	t.Helper()
	o, err := NewOptimizer(testProfile())
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	return o
}

func TestNewOptimizerRejectsBadProfile(t *testing.T) {
	p := testProfile()
	p.W1 = 0
	if _, err := NewOptimizer(p); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestOptimizerPlanIsValid(t *testing.T) {
	o := newTestOptimizer(t)
	p := o.Profile()
	for _, load := range []float64{0.5, 1.5, 3, 4.5, 5.5} {
		plan, err := o.Plan(load)
		if err != nil {
			t.Fatalf("Plan(%v): %v", load, err)
		}
		if err := p.ValidatePlan(plan, load, 1e-6); err != nil {
			t.Fatalf("Plan(%v) invalid: %v", load, err)
		}
		if float64(plan.TAcC) < p.TAcMinC-1e-9 || float64(plan.TAcC) > p.TAcMaxC+1e-9 {
			t.Fatalf("Plan(%v) T_ac %v outside bounds", load, plan.TAcC)
		}
		if len(plan.On) < int(math.Ceil(load-1e-9)) {
			t.Fatalf("Plan(%v) powers only %d machines", load, len(plan.On))
		}
	}
}

func TestOptimizerPlanBeatsNaiveSubsets(t *testing.T) {
	// Exhaustively score every subset with the same clamped objective;
	// the optimizer must match the exhaustive minimum.
	o := newTestOptimizer(t)
	p := o.Profile()
	const load = 2.5
	plan, err := o.Plan(load)
	if err != nil {
		t.Fatal(err)
	}
	planPower := float64(p.PlanPower(plan))

	n := p.Size()
	bestPower := math.Inf(1)
	for mask := 1; mask < 1<<uint(n); mask++ {
		var subset []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				subset = append(subset, i)
			}
		}
		if float64(len(subset)) < load {
			continue
		}
		alt, err := p.SolveBounded(subset, load)
		if err != nil {
			continue
		}
		if err := p.ValidatePlan(alt, load, 1e-6); err != nil {
			continue
		}
		if pw := float64(p.PlanPower(alt)); pw < bestPower {
			bestPower = pw
		}
	}
	if planPower > bestPower+1e-6 {
		t.Fatalf("optimizer power %v, exhaustive best %v", planPower, bestPower)
	}
}

func TestOptimizerConsolidatesAtLowLoad(t *testing.T) {
	o := newTestOptimizer(t)
	plan, err := o.Plan(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.On) == o.Profile().Size() {
		t.Fatalf("low-load plan keeps all %d machines on", len(plan.On))
	}
}

func TestOptimizerPlanErrors(t *testing.T) {
	o := newTestOptimizer(t)
	if _, err := o.Plan(0); err == nil {
		t.Fatal("zero load accepted")
	}
	if _, err := o.Plan(100); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPlanNoConsolidationKeepsAllOn(t *testing.T) {
	o := newTestOptimizer(t)
	plan, err := o.PlanNoConsolidation(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.On) != o.Profile().Size() {
		t.Fatalf("on set %v, want all machines", plan.On)
	}
	if err := o.Profile().ValidatePlan(plan, 2, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestPlanNoConsolidationUsesLessOrEqualPowerThanEven(t *testing.T) {
	o := newTestOptimizer(t)
	p := o.Profile()
	for _, load := range []float64{1.2, 3, 5} {
		plan, err := o.PlanNoConsolidation(load)
		if err != nil {
			t.Fatalf("PlanNoConsolidation(%v): %v", load, err)
		}
		even := make([]float64, p.Size())
		on := make([]int, p.Size())
		for i := range on {
			on[i] = i
			even[i] = load / float64(p.Size())
		}
		tAc, err := p.MaxSafeTAc(on, even)
		if err != nil {
			t.Fatalf("MaxSafeTAc: %v", err)
		}
		evenPlan := &Plan{On: on, Loads: even, TAcC: tAc}
		if p.PlanPower(plan) > p.PlanPower(evenPlan)+1e-6 {
			t.Fatalf("load %v: optimal %v W beats… loses to even %v W",
				load, p.PlanPower(plan), p.PlanPower(evenPlan))
		}
	}
}

func TestOptimizerDeterministic(t *testing.T) {
	a := newTestOptimizer(t)
	b := newTestOptimizer(t)
	pa, err := a.Plan(2.7)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Plan(2.7)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(float64(pa.TAcC), float64(pb.TAcC), 1e-12) || len(pa.On) != len(pb.On) {
		t.Fatalf("non-deterministic plans: %+v vs %+v", pa, pb)
	}
	for i := range pa.Loads {
		if !mathx.ApproxEqual(pa.Loads[i], pb.Loads[i], 1e-12) {
			t.Fatalf("non-deterministic loads at %d", i)
		}
	}
}
