package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"coolopt/internal/mathx"
	"coolopt/internal/units"
)

// unclampedLoad returns a total load for which the closed form lands
// strictly inside the actuation range on the full on set of testProfile.
const unclampedLoad = 5.0

func fullOn(p *Profile) []int {
	on := make([]int, p.Size())
	for i := range on {
		on[i] = i
	}
	return on
}

func TestSolveMeetsLoadConstraint(t *testing.T) {
	p := testProfile()
	plan, err := p.Solve(fullOn(p), unclampedLoad)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if got := plan.TotalLoad(); !mathx.ApproxEqual(got, unclampedLoad, 1e-9) {
		t.Fatalf("total load = %v, want %v", got, unclampedLoad)
	}
}

func TestSolvePutsEveryMachineAtTMax(t *testing.T) {
	// Paper Eq. 17: at the optimum all temperature constraints are
	// active — every powered-on CPU sits exactly at T_max.
	p := testProfile()
	plan, err := p.Solve(fullOn(p), unclampedLoad)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if plan.Clamped {
		t.Fatalf("test load should be unclamped, got T_ac = %v", plan.TAcC)
	}
	for _, i := range plan.On {
		temp := float64(p.CPUTemp(i, plan.Loads[i], plan.TAcC))
		if !mathx.ApproxEqual(temp, p.TMaxC, 1e-9) {
			t.Fatalf("machine %d at %v °C, want exactly T_max %v", i, temp, p.TMaxC)
		}
	}
}

func TestSolveMatchesClosedFormEquations(t *testing.T) {
	p := testProfile()
	on := []int{0, 2, 4}
	const load = 2.4
	plan, err := p.Solve(on, load)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	var sumK, sumAB float64
	for _, i := range on {
		sumK += p.K(i)
		sumAB += p.RatioAB(i)
	}
	wantTAc := p.W1 * (sumK - load) / sumAB // Eq. 21
	if !mathx.ApproxEqual(float64(plan.TAcC), wantTAc, 1e-9) {
		t.Fatalf("T_ac = %v, want %v", plan.TAcC, wantTAc)
	}
	for _, i := range on {
		wantL := p.K(i) - (sumK-load)*p.RatioAB(i)/sumAB // Eq. 22
		if !mathx.ApproxEqual(plan.Loads[i], wantL, 1e-9) {
			t.Fatalf("L[%d] = %v, want %v", i, plan.Loads[i], wantL)
		}
	}
}

func TestSolveCoolerMachinesGetMoreLoad(t *testing.T) {
	// The paper's headline insight: the optimum is slightly imbalanced,
	// favouring the machines in cooler spots.
	p := testProfile()
	plan, err := p.Solve(fullOn(p), unclampedLoad)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if plan.Loads[0] <= plan.Loads[5] {
		t.Fatalf("bottom load %v ≤ top load %v", plan.Loads[0], plan.Loads[5])
	}
}

func TestSolveHomogeneousIsEven(t *testing.T) {
	p := testProfile()
	for i := range p.Machines {
		p.Machines[i] = MachineProfile{Alpha: 0.9, Beta: 0.45, Gamma: 3}
	}
	plan, err := p.Solve(fullOn(p), unclampedLoad)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := unclampedLoad / float64(p.Size())
	for _, i := range plan.On {
		if !mathx.ApproxEqual(plan.Loads[i], want, 1e-9) {
			t.Fatalf("homogeneous load[%d] = %v, want %v", i, plan.Loads[i], want)
		}
	}
}

func TestSolveClampsAtLowLoad(t *testing.T) {
	p := testProfile()
	plan, err := p.Solve(fullOn(p), 0.5)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !plan.Clamped || float64(plan.TAcC) != p.TAcMaxC {
		t.Fatalf("low-load plan = %+v, want clamp at T_ac max %v", plan, p.TAcMaxC)
	}
}

func TestSolveInfeasibleLoad(t *testing.T) {
	p := testProfile()
	// A load far beyond ΣK forces a supply temperature below the
	// actuator minimum.
	if _, err := p.Solve(fullOn(p), 50); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("got err %v, want ErrInfeasible", err)
	}
}

func TestSolveInputValidation(t *testing.T) {
	p := testProfile()
	if _, err := p.Solve(nil, 1); err == nil {
		t.Fatal("empty on set accepted")
	}
	if _, err := p.Solve([]int{0, 0}, 1); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, err := p.Solve([]int{9}, 1); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := p.Solve([]int{0}, -1); err == nil {
		t.Fatal("negative load accepted")
	}
}

// TestSolveOptimality verifies the headline claim: no feasible alternative
// allocation over the same on set (with its own best safe T_ac) consumes
// less model power than the closed form.
func TestSolveOptimality(t *testing.T) {
	p := testProfile()
	on := fullOn(p)
	plan, err := p.Solve(on, unclampedLoad)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	optPower := float64(p.PlanPower(plan))

	rng := mathx.NewRand(42)
	for trial := 0; trial < 500; trial++ {
		// Random allocation over the simplex scaled to the load.
		weights := make([]float64, len(on))
		sum := 0.0
		for i := range weights {
			weights[i] = rng.Uniform(0.05, 1)
			sum += weights[i]
		}
		loads := make([]float64, p.Size())
		for i, w := range weights {
			loads[on[i]] = w / sum * unclampedLoad
		}
		tAc, err := p.MaxSafeTAc(on, loads)
		if err != nil {
			continue // alternative infeasible
		}
		alt := &Plan{On: on, Loads: loads, TAcC: tAc}
		if altPower := float64(p.PlanPower(alt)); altPower < optPower-1e-6 {
			t.Fatalf("trial %d: alternative power %v beats optimal %v (loads %v)",
				trial, altPower, optPower, loads)
		}
	}
}

// Property: for random feasible on sets and loads, the plan satisfies the
// temperature constraint with equality on every on machine (unclamped
// case) and carries exactly the requested load.
func TestSolveInvariantsProperty(t *testing.T) {
	p := testProfile()
	f := func(seed int64) bool {
		rng := mathx.NewRand(seed)
		// Random subset of size ≥ 3 to keep unclamped loads reachable.
		perm := rng.Perm(p.Size())
		k := 3 + rng.Intn(p.Size()-2)
		on := perm[:k]
		var sumK, sumAB float64
		for _, i := range on {
			sumK += p.K(i)
			sumAB += p.RatioAB(i)
		}
		// Pick a load that lands T_ac strictly inside the bounds.
		tAc := rng.Uniform(p.TAcMinC+0.5, p.TAcMaxC-0.5)
		load := sumK - tAc*sumAB/p.W1
		if load <= 0 {
			return true
		}
		plan, err := p.Solve(on, load)
		if err != nil {
			return false
		}
		if plan.Clamped {
			return false
		}
		if !mathx.ApproxEqual(plan.TotalLoad(), load, 1e-6) {
			return false
		}
		for _, i := range plan.On {
			if !mathx.ApproxEqual(float64(p.CPUTemp(i, plan.Loads[i], plan.TAcC)), p.TMaxC, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveBoundedRespectsBoxConstraints(t *testing.T) {
	p := testProfile()
	// Push load high enough that the raw closed form would overload the
	// coolest machines past 100 %.
	load := 5.8
	plan, err := p.SolveBounded(fullOn(p), load)
	if err != nil {
		t.Fatalf("SolveBounded: %v", err)
	}
	for i, l := range plan.Loads {
		if l < -1e-9 || l > 1+1e-9 {
			t.Fatalf("load[%d] = %v outside [0, 1]", i, l)
		}
	}
	if !mathx.ApproxEqual(plan.TotalLoad(), load, 1e-6) {
		t.Fatalf("total load = %v, want %v", plan.TotalLoad(), load)
	}
	if err := p.ValidatePlan(plan, load, 1e-6); err != nil {
		t.Fatalf("ValidatePlan: %v", err)
	}
}

func TestSolveBoundedAgreesWithSolveWhenInterior(t *testing.T) {
	p := testProfile()
	a, err := p.Solve(fullOn(p), unclampedLoad)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.SolveBounded(fullOn(p), unclampedLoad)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Loads {
		if !mathx.ApproxEqual(a.Loads[i], b.Loads[i], 1e-9) {
			t.Fatalf("load[%d]: Solve %v vs SolveBounded %v", i, a.Loads[i], b.Loads[i])
		}
	}
	if !mathx.ApproxEqual(float64(a.TAcC), float64(b.TAcC), 1e-9) {
		t.Fatalf("T_ac: Solve %v vs SolveBounded %v", a.TAcC, b.TAcC)
	}
}

func TestSolveBoundedOverCapacity(t *testing.T) {
	p := testProfile()
	if _, err := p.SolveBounded([]int{0, 1}, 2.5); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("got err %v, want ErrInfeasible", err)
	}
}

func TestPlanPowerDecomposition(t *testing.T) {
	p := testProfile()
	plan, err := p.Solve(fullOn(p), unclampedLoad)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(p.CoolingPower(plan.TAcC))
	for _, i := range plan.On {
		want += float64(p.ServerPower(plan.Loads[i]))
	}
	if got := float64(p.PlanPower(plan)); !mathx.ApproxEqual(got, want, 1e-9) {
		t.Fatalf("PlanPower = %v, want %v", got, want)
	}
}

func TestPlanPowerMatchesReducedSubsetPower(t *testing.T) {
	// Cross-check Eqs. 21–22 against Eq. 23: the plan's model power must
	// equal the reduced instance's subset power when T_ac is unclamped.
	p := testProfile()
	red := p.Reduce()
	on := []int{1, 2, 3, 4}
	const load = 3.3
	plan, err := p.Solve(on, load)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Clamped {
		t.Fatalf("expected unclamped plan, got T_ac %v", plan.TAcC)
	}
	want, err := red.SubsetPower(on, load)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(p.PlanPower(plan)); !mathx.ApproxEqual(got, want, 1e-6) {
		t.Fatalf("PlanPower = %v, SubsetPower = %v", got, want)
	}
}

func TestValidatePlanCatchesViolations(t *testing.T) {
	p := testProfile()
	plan, err := p.Solve(fullOn(p), unclampedLoad)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidatePlan(plan, unclampedLoad, 1e-9); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}

	hot := *plan
	hot.TAcC += 2 // overheats every machine past T_max
	if err := p.ValidatePlan(&hot, unclampedLoad, 0); err == nil {
		t.Fatal("overheated plan accepted")
	}

	short := *plan
	short.Loads = plan.Loads[:2]
	if err := p.ValidatePlan(&short, unclampedLoad, 0); err == nil {
		t.Fatal("wrong-length plan accepted")
	}

	offLoaded := *plan
	offLoaded.On = []int{0, 1}
	if err := p.ValidatePlan(&offLoaded, unclampedLoad, 0); err == nil {
		t.Fatal("load on powered-off machine accepted")
	}

	wrongTotal := *plan
	if err := p.ValidatePlan(&wrongTotal, unclampedLoad+1, 0); err == nil {
		t.Fatal("wrong total accepted")
	}
}

func TestValidatePlanRejectsOverUnitLoad(t *testing.T) {
	p := testProfile()
	loads := make([]float64, p.Size())
	loads[0] = 1.5
	plan := &Plan{On: []int{0}, Loads: loads, TAcC: units.Celsius(p.TAcMinC)}
	if err := p.ValidatePlan(plan, 1.5, math.Inf(1)); err == nil {
		t.Fatal("over-unit load accepted")
	}
}
