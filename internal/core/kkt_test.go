package core

import (
	"testing"
	"testing/quick"

	"coolopt/internal/mathx"
)

func TestKKTMultipliersMatchEquations(t *testing.T) {
	p := testProfile()
	on := []int{0, 2, 4}
	m, err := p.KKT(on)
	if err != nil {
		t.Fatalf("KKT: %v", err)
	}
	var sumAB float64
	for _, i := range on {
		sumAB += p.RatioAB(i)
	}
	wantLambda := p.CoolFactor * p.W1 / sumAB
	if !mathx.ApproxEqual(m.Lambda, wantLambda, 1e-12) {
		t.Fatalf("λ = %v, want %v", m.Lambda, wantLambda)
	}
	for _, i := range on {
		want := wantLambda / (p.Machines[i].Beta * p.W1)
		if !mathx.ApproxEqual(m.Mu[i], want, 1e-12) {
			t.Fatalf("µ[%d] = %v, want %v", i, m.Mu[i], want)
		}
	}
	// Machines outside the on set carry no multiplier.
	if m.Mu[1] != 0 || m.Mu[3] != 0 || m.Mu[5] != 0 {
		t.Fatalf("off machines have multipliers: %v", m.Mu)
	}
}

func TestKKTMultipliersStrictlyPositive(t *testing.T) {
	// The paper's §III-A argument: λ and every µ_i are strictly
	// positive, which is what forces every constraint to be active.
	p := testProfile()
	on := []int{0, 1, 2, 3, 4, 5}
	m, err := p.KKT(on)
	if err != nil {
		t.Fatalf("KKT: %v", err)
	}
	if m.Lambda <= 0 {
		t.Fatalf("λ = %v", m.Lambda)
	}
	for _, i := range on {
		if m.Mu[i] <= 0 {
			t.Fatalf("µ[%d] = %v", i, m.Mu[i])
		}
	}
}

func TestStationarityResidualIsZero(t *testing.T) {
	p := testProfile()
	for _, on := range [][]int{{0, 1, 2, 3, 4, 5}, {1, 3, 5}, {0}} {
		res, err := p.StationarityResidual(on)
		if err != nil {
			t.Fatalf("StationarityResidual(%v): %v", on, err)
		}
		if res > 1e-9 {
			t.Fatalf("on set %v: residual %v — KKT conditions not satisfied", on, res)
		}
	}
}

func TestKKTInputValidation(t *testing.T) {
	p := testProfile()
	if _, err := p.KKT(nil); err == nil {
		t.Fatal("empty on set accepted")
	}
	if _, err := p.KKT([]int{99}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// Property: the stationarity residual vanishes for random on sets — the
// closed form always satisfies the first-order optimality system.
func TestStationarityResidualProperty(t *testing.T) {
	p := testProfile()
	f := func(seed int64) bool {
		rng := mathx.NewRand(seed)
		perm := rng.Perm(p.Size())
		k := 1 + rng.Intn(p.Size())
		res, err := p.StationarityResidual(perm[:k])
		return err == nil && res < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLambdaIsMarginalCost verifies λ's economic meaning: the model-power
// difference for one extra unit of load equals λ plus the direct server
// cost w1 (total marginal cost of demand).
func TestLambdaIsMarginalCost(t *testing.T) {
	p := testProfile()
	on := []int{0, 1, 2, 3, 4, 5}
	m, err := p.KKT(on)
	if err != nil {
		t.Fatal(err)
	}
	const (
		load = 4.8
		dL   = 1e-6
	)
	p1, err := p.Solve(on, load)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.Solve(on, load+dL)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Clamped || p2.Clamped {
		t.Fatal("test loads must be unclamped")
	}
	marginal := float64(p.PlanPower(p2)-p.PlanPower(p1)) / dL
	if !mathx.ApproxEqual(marginal, m.Lambda+p.W1, 1e-3) {
		t.Fatalf("marginal cost %v, want λ + w1 = %v", marginal, m.Lambda+p.W1)
	}
}
