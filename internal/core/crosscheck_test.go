package core

import (
	"fmt"
	"testing"

	"coolopt/internal/mathx"
	"coolopt/internal/units"
)

// modelPower evaluates the paper's objective for an arbitrary allocation
// over the on set, with the supply temperature set to the best value that
// allocation allows (the highest safe one, clamped to the actuation
// range). Because the safe supply is a min of affine functions of the
// loads, this objective is convex in the loads — so a projected
// subgradient method converges to the global optimum and provides an
// independent check of the closed form.
func modelPower(p *Profile, on []int, loads []float64) float64 {
	tAc := p.TAcMaxC
	for _, i := range on {
		m := p.Machines[i]
		limit := (p.TMaxC - m.Beta*float64(p.ServerPower(loads[i])) - m.Gamma) / m.Alpha
		if limit < tAc {
			tAc = limit
		}
	}
	total := p.CoolingPower(units.Celsius(tAc))
	for _, i := range on {
		total += p.ServerPower(loads[i])
	}
	return float64(total)
}

// numericOptimum minimizes the (convex, piecewise-linear) objective with
// a derivative-free pairwise-exchange pattern search: repeatedly move δ
// load between machine pairs whenever it lowers the true objective,
// halving δ when no exchange helps. Load moves preserve ΣL exactly, and
// convexity guarantees convergence to the global optimum.
func numericOptimum(p *Profile, on []int, load float64) []float64 {
	loads := make([]float64, p.Size())
	for _, i := range on {
		loads[i] = load / float64(len(on))
	}
	best := modelPower(p, on, loads)
	for delta := load / 4; delta > 1e-9; {
		improved := false
		for _, i := range on {
			for _, j := range on {
				if i == j {
					continue
				}
				loads[i] += delta
				loads[j] -= delta
				if cand := modelPower(p, on, loads); cand < best-1e-12 {
					best = cand
					improved = true
				} else {
					loads[i] -= delta
					loads[j] += delta
				}
			}
		}
		if !improved {
			delta /= 2
		}
	}
	return loads
}

// TestClosedFormMatchesNumericOptimum is the independent global check of
// Eqs. 21–22: a convex solver run on the same objective must land on the
// same power (and essentially the same allocation).
func TestClosedFormMatchesNumericOptimum(t *testing.T) {
	p := testProfile()
	tests := []struct {
		name string
		on   []int
		load float64
	}{
		{name: "full set mid load", on: []int{0, 1, 2, 3, 4, 5}, load: 5.0},
		{name: "full set high load", on: []int{0, 1, 2, 3, 4, 5}, load: 5.6},
		{name: "subset", on: []int{0, 2, 3, 5}, load: 3.2},
		{name: "pair", on: []int{1, 4}, load: 1.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			plan, err := p.Solve(tt.on, tt.load)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			closedPower := modelPower(p, tt.on, plan.Loads)
			numLoads := numericOptimum(p, tt.on, tt.load)
			numPower := modelPower(p, tt.on, numLoads)

			if closedPower > numPower+1e-4 {
				t.Fatalf("closed form %.6f W worse than numeric optimum %.6f W", closedPower, numPower)
			}
			if numPower > closedPower+0.01*closedPower {
				t.Fatalf("numeric solver stuck: %.3f W vs closed form %.3f W", numPower, closedPower)
			}
			// Where the supply is unclamped, the allocations themselves
			// should agree closely.
			if !plan.Clamped {
				for _, i := range tt.on {
					if !mathx.ApproxEqual(plan.Loads[i], numLoads[i], 0.02) {
						t.Fatalf("machine %d: closed %.4f vs numeric %.4f", i, plan.Loads[i], numLoads[i])
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Kinetic vs dense Algorithm 1.
//
// The compressed kinetic Preprocess must be indistinguishable from the
// dense full-sort reference at the Selection level — byte for byte. The
// generators below draw every coefficient from a coarse dyadic grid
// (exact binary fractions), so all prefix sums are exact in float64 and
// the two implementations' different accumulation orders cannot drift
// even by an ulp; the coarse grid also makes duplicated speeds, duplicated
// whole pairs, and simultaneous multi-way crossings common, which is
// exactly the regime where naive kinetic swapping breaks.
// ---------------------------------------------------------------------------

// gridReduced draws a consolidation instance on a dyadic grid.
func gridReduced(rng *mathx.Rand, n int) Reduced {
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{
			A: float64(1+rng.Intn(256)) / 16.0, // (0, 16], step 1/16
			B: float64(1+rng.Intn(24)) / 8.0,   // (0, 3], step 1/8 — few choices → ties
		}
	}
	// Duplicate whole pairs to force exactly simultaneous crossings.
	for d := 0; d < n/4; d++ {
		pairs[rng.Intn(n)] = pairs[rng.Intn(n)]
	}
	return Reduced{
		Pairs:      pairs,
		W2:         float64(rng.Intn(9)) / 4.0,
		Rho:        float64(1+rng.Intn(8)) / 4.0,
		CoolFactor: 1,
		SetPointC:  float64(rng.Intn(8)) / 2.0,
		W1:         float64(1+rng.Intn(8)) / 4.0,
	}
}

func identicalSelection(t *testing.T, label string, a, b Selection, errA, errB error) {
	t.Helper()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("%s: error mismatch: kinetic %v, dense %v", label, errA, errB)
	}
	if errA != nil {
		return
	}
	if len(a.Subset) != len(b.Subset) {
		t.Fatalf("%s: subsets %v vs %v", label, a.Subset, b.Subset)
	}
	for i := range a.Subset {
		if a.Subset[i] != b.Subset[i] {
			t.Fatalf("%s: subsets %v vs %v", label, a.Subset, b.Subset)
		}
	}
	if a.T != b.T || a.Power != b.Power {
		t.Fatalf("%s: (T, Power) = (%v, %v) vs (%v, %v)", label, a.T, a.Power, b.T, b.Power)
	}
}

// TestKineticMatchesDenseByteForByte is the headline equivalence check:
// on exact-grid instances up to n = 64 (duplicated speeds, duplicated
// pairs, simultaneous crossings included), every query of the compressed
// kinetic structure returns byte-identical Selections to the dense
// full-sort reference.
func TestKineticMatchesDenseByteForByte(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 12
	}
	for trial := 0; trial < trials; trial++ {
		rng := mathx.NewRand(int64(1000 + trial))
		n := 2 + rng.Intn(63)
		red := gridReduced(rng, n)
		kin, err := Preprocess(red)
		if err != nil {
			t.Fatalf("trial %d: kinetic: %v", trial, err)
		}
		den, err := PreprocessDense(red)
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		if kin.Events() != den.Events() {
			t.Fatalf("trial %d: %d events vs dense %d", trial, kin.Events(), den.Events())
		}
		if kin.Pieces() > kin.StatusCount() {
			t.Fatalf("trial %d: %d pieces exceed the dense status count %d", trial, kin.Pieces(), kin.StatusCount())
		}
		for e := 0; e < kin.Events(); e += 1 + kin.Events()/8 {
			ko, _ := kin.OrderAtEvent(e)
			do, _ := den.OrderAtEvent(e)
			for i := range ko {
				if ko[i] != do[i] {
					t.Fatalf("trial %d: order at event %d: %v vs %v", trial, e, ko, do)
				}
			}
		}
		loads := []float64{0.0625, 0.5, 1, float64(n) / 4, float64(n) / 2, float64(n), 4 * float64(n)}
		for _, load := range loads {
			kq, kerr := kin.Query(load)
			dq, derr := den.Query(load)
			identicalSelection(t, fmt.Sprintf("trial %d Query(%v)", trial, load), kq, dq, kerr, derr)

			for _, minK := range []int{1, 1 + n/3, n} {
				ke, kerr := kin.QueryExact(load, minK)
				de, derr := den.QueryExact(load, minK)
				identicalSelection(t, fmt.Sprintf("trial %d QueryExact(%v, %d)", trial, load, minK), ke, de, kerr, derr)
			}
			k := 1 + rng.Intn(n)
			kk, kerr := kin.QueryExactK(load, k)
			dk, derr := den.QueryExactK(load, k)
			identicalSelection(t, fmt.Sprintf("trial %d QueryExactK(%v, %d)", trial, load, k), kk, dk, kerr, derr)
		}
	}
}

// TestKineticMatchesBruteForce pits the kinetic structure against the
// exhaustive oracle on small exact-grid instances (n ≤ 12). Powers agree
// to 1e-9; subsets are revalidated by recomputing their power from
// scratch (distinct optimal subsets can tie under duplicated pairs).
func TestKineticMatchesBruteForce(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		rng := mathx.NewRand(int64(5000 + trial))
		n := 2 + rng.Intn(11)
		red := gridReduced(rng, n)
		kin, err := Preprocess(red)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		load := float64(rng.Intn(4*n)+1) / 8.0
		minK := 1 + rng.Intn(n)
		opt, oerr := red.BruteForce(load, minK)
		got, gerr := kin.QueryExact(load, minK)
		if oerr != nil && got.T >= 0 {
			if gerr == nil {
				t.Fatalf("trial %d: kinetic feasible where brute force is not", trial)
			}
			continue
		}
		if oerr != nil || opt.T < 0 {
			continue // outside the t ≥ 0 regime the structure covers
		}
		if gerr != nil {
			t.Fatalf("trial %d: kinetic infeasible, brute force found %v", trial, opt.Subset)
		}
		if !mathx.ApproxEqual(got.Power, opt.Power, 1e-9) {
			t.Fatalf("trial %d: power %v vs brute force %v", trial, got.Power, opt.Power)
		}
		recomputed, err := red.SubsetPower(got.Subset, load)
		if err != nil {
			t.Fatalf("trial %d: invalid subset %v: %v", trial, got.Subset, err)
		}
		if recomputed != got.Power {
			t.Fatalf("trial %d: reported power %v, subset recomputes to %v", trial, got.Power, recomputed)
		}
	}
}

// TestKineticWorkerCountInvariance: the parallel event sweep must produce
// the same structure regardless of how many workers carve up the event
// blocks (on exact-grid instances the guarantee is bitwise).
func TestKineticWorkerCountInvariance(t *testing.T) {
	rng := mathx.NewRand(77)
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.Intn(57)
		red := gridReduced(rng, n)
		ref, err := Preprocess(red, WithPreprocessWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 7} {
			alt, err := Preprocess(red, WithPreprocessWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			if ref.Pieces() != alt.Pieces() || ref.Events() != alt.Events() {
				t.Fatalf("trial %d: workers=%d changed shape: %d/%d pieces, %d/%d events",
					trial, w, ref.Pieces(), alt.Pieces(), ref.Events(), alt.Events())
			}
			for _, load := range []float64{0.25, float64(n) / 4, float64(n) / 2} {
				a, errA := ref.QueryExact(load, 1)
				b, errB := alt.QueryExact(load, 1)
				identicalSelection(t, fmt.Sprintf("trial %d workers=%d load=%v", trial, w, load), a, b, errA, errB)
			}
		}
	}
}

// TestModelPowerConsistentWithPlanPower ties the cross-check objective to
// the library's own accounting at the plan point.
func TestModelPowerConsistentWithPlanPower(t *testing.T) {
	p := testProfile()
	on := []int{0, 1, 2, 3, 4, 5}
	plan, err := p.Solve(on, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := modelPower(p, on, plan.Loads), float64(p.PlanPower(plan)); !mathx.ApproxEqual(got, want, 1e-6) {
		t.Fatalf("modelPower %.6f vs PlanPower %.6f", got, want)
	}
}
