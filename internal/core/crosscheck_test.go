package core

import (
	"testing"

	"coolopt/internal/mathx"
)

// modelPower evaluates the paper's objective for an arbitrary allocation
// over the on set, with the supply temperature set to the best value that
// allocation allows (the highest safe one, clamped to the actuation
// range). Because the safe supply is a min of affine functions of the
// loads, this objective is convex in the loads — so a projected
// subgradient method converges to the global optimum and provides an
// independent check of the closed form.
func modelPower(p *Profile, on []int, loads []float64) float64 {
	tAc := p.TAcMaxC
	for _, i := range on {
		m := p.Machines[i]
		limit := (p.TMaxC - m.Beta*p.ServerPower(loads[i]) - m.Gamma) / m.Alpha
		if limit < tAc {
			tAc = limit
		}
	}
	total := p.CoolingPower(tAc)
	for _, i := range on {
		total += p.ServerPower(loads[i])
	}
	return total
}

// numericOptimum minimizes the (convex, piecewise-linear) objective with
// a derivative-free pairwise-exchange pattern search: repeatedly move δ
// load between machine pairs whenever it lowers the true objective,
// halving δ when no exchange helps. Load moves preserve ΣL exactly, and
// convexity guarantees convergence to the global optimum.
func numericOptimum(p *Profile, on []int, load float64) []float64 {
	loads := make([]float64, p.Size())
	for _, i := range on {
		loads[i] = load / float64(len(on))
	}
	best := modelPower(p, on, loads)
	for delta := load / 4; delta > 1e-9; {
		improved := false
		for _, i := range on {
			for _, j := range on {
				if i == j {
					continue
				}
				loads[i] += delta
				loads[j] -= delta
				if cand := modelPower(p, on, loads); cand < best-1e-12 {
					best = cand
					improved = true
				} else {
					loads[i] -= delta
					loads[j] += delta
				}
			}
		}
		if !improved {
			delta /= 2
		}
	}
	return loads
}

// TestClosedFormMatchesNumericOptimum is the independent global check of
// Eqs. 21–22: a convex solver run on the same objective must land on the
// same power (and essentially the same allocation).
func TestClosedFormMatchesNumericOptimum(t *testing.T) {
	p := testProfile()
	tests := []struct {
		name string
		on   []int
		load float64
	}{
		{name: "full set mid load", on: []int{0, 1, 2, 3, 4, 5}, load: 5.0},
		{name: "full set high load", on: []int{0, 1, 2, 3, 4, 5}, load: 5.6},
		{name: "subset", on: []int{0, 2, 3, 5}, load: 3.2},
		{name: "pair", on: []int{1, 4}, load: 1.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			plan, err := p.Solve(tt.on, tt.load)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			closedPower := modelPower(p, tt.on, plan.Loads)
			numLoads := numericOptimum(p, tt.on, tt.load)
			numPower := modelPower(p, tt.on, numLoads)

			if closedPower > numPower+1e-4 {
				t.Fatalf("closed form %.6f W worse than numeric optimum %.6f W", closedPower, numPower)
			}
			if numPower > closedPower+0.01*closedPower {
				t.Fatalf("numeric solver stuck: %.3f W vs closed form %.3f W", numPower, closedPower)
			}
			// Where the supply is unclamped, the allocations themselves
			// should agree closely.
			if !plan.Clamped {
				for _, i := range tt.on {
					if !mathx.ApproxEqual(plan.Loads[i], numLoads[i], 0.02) {
						t.Fatalf("machine %d: closed %.4f vs numeric %.4f", i, plan.Loads[i], numLoads[i])
					}
				}
			}
		})
	}
}

// TestModelPowerConsistentWithPlanPower ties the cross-check objective to
// the library's own accounting at the plan point.
func TestModelPowerConsistentWithPlanPower(t *testing.T) {
	p := testProfile()
	on := []int{0, 1, 2, 3, 4, 5}
	plan, err := p.Solve(on, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := modelPower(p, on, plan.Loads), p.PlanPower(plan); !mathx.ApproxEqual(got, want, 1e-6) {
		t.Fatalf("modelPower %.6f vs PlanPower %.6f", got, want)
	}
}
