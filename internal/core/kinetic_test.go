package core

import (
	"strings"
	"testing"

	"coolopt/internal/mathx"
)

// TestKineticSimultaneousCrossing builds the worst case for naive kinetic
// swapping: every particle passes through the same point (1, 5), so all
// C(n,2) crossings collapse into one simultaneous event and the order
// reverses wholesale. The repair pass must handle it like the full sort.
func TestKineticSimultaneousCrossing(t *testing.T) {
	n := 9
	pairs := make([]Pair, n)
	for i := range pairs {
		b := float64(i + 1)
		pairs[i] = Pair{A: 5 + b, B: b} // x_i(1) = 5 for every i
	}
	red := Reduced{Pairs: pairs, W2: 0.5, Rho: 1}
	kin, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	if kin.Events() != 2 { // t = 0 and the single pile-up at t = 1
		t.Fatalf("events = %d, want 2", kin.Events())
	}
	den, err := PreprocessDense(red)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		ko, _ := kin.OrderAtEvent(e)
		do, _ := den.OrderAtEvent(e)
		for i := range ko {
			if ko[i] != do[i] {
				t.Fatalf("order at event %d: %v vs dense %v", e, ko, do)
			}
		}
	}
	for _, load := range []float64{0.5, 3, 6, 20} {
		kq, kerr := kin.QueryExact(load, 1)
		dq, derr := den.QueryExact(load, 1)
		if (kerr == nil) != (derr == nil) {
			t.Fatalf("load %v: error mismatch %v vs %v", load, kerr, derr)
		}
		if kerr == nil && (kq.Power != dq.Power || kq.T != dq.T) {
			t.Fatalf("load %v: (%v, %v) vs dense (%v, %v)", load, kq.Power, kq.T, dq.Power, dq.T)
		}
	}
}

// TestKineticIdenticalPairs: identical machines never pass each other, so
// the structure degenerates to a single event interval.
func TestKineticIdenticalPairs(t *testing.T) {
	red := Reduced{Pairs: []Pair{{A: 2, B: 1}, {A: 2, B: 1}, {A: 2, B: 1}}, W2: 1, Rho: 1}
	kin, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	if kin.Events() != 1 {
		t.Fatalf("events = %d, want 1", kin.Events())
	}
	sel, err := kin.QueryExact(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Subset) != 2 { // 2 machines cover load 3 at t > 0... checked below
		// any k with k·2 ≥ 3 is feasible; the optimum depends on W2/Rho —
		// just require validity.
		if got, err := red.SubsetPower(sel.Subset, 3); err != nil || got != sel.Power {
			t.Fatalf("invalid selection %v (power %v, recomputed %v, err %v)", sel.Subset, sel.Power, got, err)
		}
	}
}

// TestKineticCapErrorMessage pins the documented cap error: it must name
// the O(n²) tables (not the dense form's O(n³)) and point at the option.
func TestKineticCapErrorMessage(t *testing.T) {
	big := Reduced{Pairs: make([]Pair, DefaultMaxMachines+1)}
	for i := range big.Pairs {
		big.Pairs[i] = Pair{A: 1, B: 1}
	}
	_, err := Preprocess(big)
	if err == nil {
		t.Fatal("oversized instance accepted")
	}
	msg := err.Error()
	if strings.Contains(msg, "n³") {
		t.Fatalf("cap error still claims O(n³) tables: %q", msg)
	}
	for _, want := range []string{"O(n²)", "WithMaxMachines"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("cap error %q missing %q", msg, want)
		}
	}
}

// TestPreprocessDatacenterScale is the acceptance check that the kinetic
// structure reaches n = 4096 — an order of magnitude past the seed's
// 512-machine cap — and still answers valid queries.
func TestPreprocessDatacenterScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second 4096-machine build")
	}
	rng := mathx.NewRand(42)
	n := DefaultMaxMachines
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{
			A: float64(1+rng.Intn(4096)) / 256.0,
			B: float64(1+rng.Intn(1024)) / 256.0,
		}
	}
	red := Reduced{Pairs: pairs, W2: 1, Rho: 2}
	kin, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	// O(n²) compression: the piece count must stay within the crossing
	// budget, far below the dense form's events × n statuses.
	if kin.Pieces() > kin.StatusCount()/8 {
		t.Fatalf("pieces = %d, not an asymptotic win over %d statuses", kin.Pieces(), kin.StatusCount())
	}
	for _, load := range []float64{1, 64, 512, 2048} {
		sel, err := kin.QueryExact(load, 1)
		if err != nil {
			t.Fatalf("QueryExact(%v): %v", load, err)
		}
		got, err := red.SubsetPower(sel.Subset, load)
		if err != nil {
			t.Fatal(err)
		}
		if got != sel.Power {
			t.Fatalf("QueryExact(%v): power %v, subset recomputes to %v", load, sel.Power, got)
		}
	}
}
