package core

import (
	"testing"
	"testing/quick"

	"coolopt/internal/mathx"

	"coolopt/internal/units"
)

// testHeteroProfile mixes two hardware generations: efficient new
// machines and power-hungry old ones.
func testHeteroProfile() *HeteroProfile {
	return &HeteroProfile{
		CoolFactor: 70,
		SetPointC:  30,
		TMaxC:      58,
		TAcMinC:    8,
		TAcMaxC:    25,
		Machines: []HeteroMachine{
			{W1: 50, W2: 35, Alpha: 0.96, Beta: 0.44, Gamma: 1.2},
			{W1: 50, W2: 35, Alpha: 0.90, Beta: 0.45, Gamma: 3.0},
			{W1: 80, W2: 50, Alpha: 0.93, Beta: 0.40, Gamma: 2.1}, // old generation
			{W1: 80, W2: 50, Alpha: 0.85, Beta: 0.42, Gamma: 4.0}, // old generation
			{W1: 50, W2: 35, Alpha: 0.83, Beta: 0.47, Gamma: 5.1},
		},
	}
}

func TestHeteroValidate(t *testing.T) {
	if err := testHeteroProfile().Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*HeteroProfile)
	}{
		{name: "cool factor", mutate: func(h *HeteroProfile) { h.CoolFactor = 0 }},
		{name: "bounds", mutate: func(h *HeteroProfile) { h.TAcMinC, h.TAcMaxC = 25, 8 }},
		{name: "no machines", mutate: func(h *HeteroProfile) { h.Machines = nil }},
		{name: "bad w1", mutate: func(h *HeteroProfile) { h.Machines[0].W1 = 0 }},
		{name: "bad w2", mutate: func(h *HeteroProfile) { h.Machines[0].W2 = -1 }},
		{name: "bad alpha", mutate: func(h *HeteroProfile) { h.Machines[0].Alpha = 0 }},
		{name: "bad beta", mutate: func(h *HeteroProfile) { h.Machines[0].Beta = 0 }},
		{name: "infeasible K", mutate: func(h *HeteroProfile) { h.Machines[0].Gamma = 1000 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := testHeteroProfile()
			tt.mutate(h)
			if err := h.Validate(); err == nil {
				t.Fatal("invalid profile accepted")
			}
		})
	}
}

func TestHeteroMatchesHomogeneousSolver(t *testing.T) {
	// With identical w1/w2 everywhere, the heterogeneous solver must
	// reproduce the paper's closed form exactly.
	p := testProfile()
	hp := p.Homogeneous()
	on := []int{0, 1, 2, 3, 4, 5}
	const load = 5.0
	want, err := p.Solve(on, load)
	if err != nil {
		t.Fatal(err)
	}
	got, err := hp.Solve(on, load)
	if err != nil {
		t.Fatalf("hetero Solve: %v", err)
	}
	if !mathx.ApproxEqual(float64(got.TAcC), float64(want.TAcC), 1e-9) {
		t.Fatalf("T_ac: hetero %v vs homogeneous %v", got.TAcC, want.TAcC)
	}
	for i := range want.Loads {
		if !mathx.ApproxEqual(got.Loads[i], want.Loads[i], 1e-9) {
			t.Fatalf("load[%d]: hetero %v vs homogeneous %v", i, got.Loads[i], want.Loads[i])
		}
	}
}

func TestHeteroSolveBasicInvariants(t *testing.T) {
	hp := testHeteroProfile()
	on := []int{0, 1, 2, 3, 4}
	for _, load := range []float64{1.0, 2.5, 4.0} {
		plan, err := hp.Solve(on, load)
		if err != nil {
			t.Fatalf("Solve(%v): %v", load, err)
		}
		if !mathx.ApproxEqual(plan.TotalLoad(), load, 1e-9) {
			t.Fatalf("load %v: total %v", load, plan.TotalLoad())
		}
		for _, i := range on {
			if plan.Loads[i] < -1e-9 || plan.Loads[i] > 1+1e-9 {
				t.Fatalf("load %v: L[%d] = %v out of box", load, i, plan.Loads[i])
			}
			if temp := float64(hp.CPUTemp(i, plan.Loads[i], plan.TAcC)); temp > hp.TMaxC+1e-6 {
				t.Fatalf("load %v: machine %d at %v °C", load, i, temp)
			}
		}
	}
}

func TestHeteroParksInefficientMachines(t *testing.T) {
	// Make the old generation catastrophically inefficient: at light
	// load the optimum gives it nothing.
	hp := testHeteroProfile()
	hp.Machines[2].W1 = 400
	hp.Machines[3].W1 = 400
	plan, err := hp.Solve([]int{0, 1, 2, 3, 4}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Loads[2] > 1e-9 || plan.Loads[3] > 1e-9 {
		t.Fatalf("inefficient machines loaded: %v", plan.Loads)
	}
}

func TestHeteroSolveInputValidation(t *testing.T) {
	hp := testHeteroProfile()
	if _, err := hp.Solve(nil, 1); err == nil {
		t.Fatal("empty on set accepted")
	}
	if _, err := hp.Solve([]int{0, 0}, 1); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, err := hp.Solve([]int{9}, 1); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := hp.Solve([]int{0}, -1); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := hp.Solve([]int{0, 1}, 5); err == nil {
		t.Fatal("over-capacity load accepted")
	}
}

// heteroModelPower is the true objective with the best safe supply for an
// allocation.
func heteroModelPower(hp *HeteroProfile, on []int, loads []float64) float64 {
	tAc := hp.TAcMaxC
	for _, i := range on {
		m := hp.Machines[i]
		limit := (hp.TMaxC - m.Beta*float64(hp.ServerPower(i, loads[i])) - m.Gamma) / m.Alpha
		if limit < tAc {
			tAc = limit
		}
	}
	if tAc < hp.TAcMinC {
		tAc = hp.TAcMinC
	}
	total := hp.CoolingPower(units.Celsius(tAc))
	for _, i := range on {
		total += hp.ServerPower(i, loads[i])
	}
	return float64(total)
}

// heteroNumericOptimum runs box-constrained pairwise-exchange pattern
// search (loads stay in [0, 1]).
func heteroNumericOptimum(hp *HeteroProfile, on []int, load float64) []float64 {
	loads := make([]float64, hp.Size())
	for _, i := range on {
		loads[i] = load / float64(len(on))
	}
	best := heteroModelPower(hp, on, loads)
	for delta := load / 4; delta > 1e-9; {
		improved := false
		for _, i := range on {
			for _, j := range on {
				if i == j {
					continue
				}
				if loads[i]+delta > 1 || loads[j]-delta < 0 {
					continue
				}
				loads[i] += delta
				loads[j] -= delta
				if cand := heteroModelPower(hp, on, loads); cand < best-1e-12 {
					best = cand
					improved = true
				} else {
					loads[i] -= delta
					loads[j] += delta
				}
			}
		}
		if !improved {
			delta /= 2
		}
	}
	return loads
}

// TestHeteroMatchesNumericOptimum is the global-optimality cross-check
// for the mixed-hardware active-set solver.
func TestHeteroMatchesNumericOptimum(t *testing.T) {
	hp := testHeteroProfile()
	on := []int{0, 1, 2, 3, 4}
	for _, load := range []float64{1.2, 2.2, 3.4, 4.2} {
		plan, err := hp.Solve(on, load)
		if err != nil {
			t.Fatalf("Solve(%v): %v", load, err)
		}
		closed := heteroModelPower(hp, on, plan.Loads)
		numeric := heteroModelPower(hp, on, heteroNumericOptimum(hp, on, load))
		if closed > numeric+1e-4 {
			t.Fatalf("load %v: active-set %v W worse than numeric %v W", load, closed, numeric)
		}
	}
}

// Property: random mixed-hardware instances — the active-set solution is
// never beaten by the numeric solver.
func TestHeteroNumericProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mathx.NewRand(seed)
		n := 3 + rng.Intn(4)
		machines := make([]HeteroMachine, n)
		for i := range machines {
			machines[i] = HeteroMachine{
				W1:    rng.Uniform(40, 120),
				W2:    rng.Uniform(25, 55),
				Alpha: rng.Uniform(0.8, 1.0),
				Beta:  rng.Uniform(0.40, 0.50),
				Gamma: rng.Uniform(0.5, 6),
			}
		}
		hp := &HeteroProfile{
			CoolFactor: rng.Uniform(50, 150),
			SetPointC:  31,
			TMaxC:      58,
			TAcMinC:    5,
			TAcMaxC:    25,
			Machines:   machines,
		}
		if hp.Validate() != nil {
			return true
		}
		on := make([]int, n)
		for i := range on {
			on[i] = i
		}
		load := rng.Uniform(0.3, 0.8) * float64(n)
		plan, err := hp.Solve(on, load)
		if err != nil {
			return true // infeasible instances are allowed
		}
		if !mathx.ApproxEqual(plan.TotalLoad(), load, 1e-6) {
			return false
		}
		closed := heteroModelPower(hp, on, plan.Loads)
		numeric := heteroModelPower(hp, on, heteroNumericOptimum(hp, on, load))
		return closed <= numeric+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
