package core

import (
	"context"
	"errors"
	"math"
	"testing"
)

// concentratedAvoid fails f consecutive machines starting inside one pod
// region; spreadAvoid strides the failures evenly across the room. The
// two shapes bound the degraded planner's behavior: concentrated bursts
// gut one pod's aggregates, spread bursts touch every pod a little.
func concentratedAvoid(n, f int) []int {
	start := n / 3
	out := make([]int, f)
	for i := range out {
		out[i] = start + i
	}
	return out
}

func spreadAvoid(n, f int) []int {
	out := make([]int, f)
	for i := range out {
		out[i] = (i * n) / f
	}
	return out
}

// TestPlanAvoidingSinglePodBitIdentical is the degraded p = 1 property:
// with one pod PlanAvoiding must reproduce the flat degraded solver
// (Profile.PlanOver over the survivors) bit for bit.
func TestPlanAvoidingSinglePodBitIdentical(t *testing.T) {
	const n = 64
	p := hierProfile(n)
	hier, err := NewPodSnapshot(p, 0, WithPodCount(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, avoid := range [][]int{{3}, {0, 1, 2, 3}, concentratedAvoid(n, 8), spreadAvoid(n, 8)} {
		blocked := make([]bool, n)
		for _, i := range avoid {
			blocked[i] = true
		}
		pool := survivorPool(n, blocked)
		for _, frac := range []float64{0.1, 0.4, 0.8} {
			load := frac * float64(len(pool))
			want := p.PlanOver(pool, load)
			if want == nil {
				t.Fatalf("flat degraded plan infeasible at load %v avoid %v", load, avoid)
			}
			got, err := hier.PlanAvoiding(load, avoid)
			if err != nil {
				t.Fatalf("PlanAvoiding(%v, %v): %v", load, avoid, err)
			}
			if len(got.On) != len(want.On) {
				t.Fatalf("load %v avoid %v: on sets sized %d vs %d", load, avoid, len(got.On), len(want.On))
			}
			for i := range got.On {
				if got.On[i] != want.On[i] {
					t.Fatalf("load %v avoid %v: on[%d] = %d vs %d", load, avoid, i, got.On[i], want.On[i])
				}
			}
			for i := range got.Loads {
				if math.Float64bits(got.Loads[i]) != math.Float64bits(want.Loads[i]) {
					t.Fatalf("load %v avoid %v: machine %d load not bit-identical", load, avoid, i)
				}
			}
			if math.Float64bits(float64(got.TAcC)) != math.Float64bits(float64(want.TAcC)) {
				t.Fatalf("load %v avoid %v: TAcC %v vs %v", load, avoid, got.TAcC, want.TAcC)
			}
		}
	}
}

// TestPlanAvoidingGapBound measures the degraded hierarchical plan
// against the exact degraded solver across avoid-set sizes, burst
// shapes, and loads, and enforces the same bound as the healthy path:
// mean ≤ 1 %, worst ≤ 5 %. Negative gaps (the hierarchy beating the
// prefix-sweep reference, which is itself a heuristic over pool
// prefixes) count as zero. Every plan must also keep the avoided
// machines off and validate against the model.
func TestPlanAvoidingGapBound(t *testing.T) {
	sizes := []int{256, 512}
	if !testing.Short() && !raceEnabled {
		sizes = append(sizes, 1024)
	}
	for _, n := range sizes {
		p := hierProfile(n)
		hier, err := NewPodSnapshot(p, 0, WithPodSize(hierPodSize(n)))
		if err != nil {
			t.Fatal(err)
		}
		var sum, worst float64
		var count int
		for _, f := range []int{1, 8, n / 16, n / 8} {
			for _, shape := range []func(int, int) []int{concentratedAvoid, spreadAvoid} {
				avoid := shape(n, f)
				blocked := make([]bool, n)
				for _, i := range avoid {
					blocked[i] = true
				}
				pool := survivorPool(n, blocked)
				for _, frac := range []float64{0.15, 0.4, 0.65, 0.9} {
					load := frac * float64(len(pool))
					want := p.PlanOver(pool, load)
					if want == nil {
						t.Fatalf("n=%d f=%d: flat degraded plan infeasible at load %v", n, f, load)
					}
					got, err := hier.PlanAvoiding(load, avoid)
					if err != nil {
						t.Fatalf("n=%d f=%d load %v: %v", n, f, load, err)
					}
					for _, i := range got.On {
						if blocked[i] {
							t.Fatalf("n=%d f=%d load %v: avoided machine %d is on", n, f, load, i)
						}
					}
					if err := p.ValidatePlan(got, load, 1e-6); err != nil {
						t.Fatalf("n=%d f=%d load %v: invalid plan: %v", n, f, load, err)
					}
					gap := float64(p.PlanPower(got)-p.PlanPower(want)) / float64(p.PlanPower(want))
					if gap < 0 {
						gap = 0
					}
					if gap > worst {
						worst = gap
					}
					sum += gap
					count++
				}
			}
		}
		mean := sum / float64(count)
		t.Logf("n=%d pods=%d: degraded gap mean %.4f%% worst %.4f%% over %d cases",
			n, hier.Pods(), 100*mean, 100*worst, count)
		if worst > 0.05 {
			t.Fatalf("n=%d: worst degraded gap %.4f%% exceeds 5%%", n, 100*worst)
		}
		if mean > 0.01 {
			t.Fatalf("n=%d: mean degraded gap %.4f%% exceeds 1%%", n, 100*mean)
		}
	}
}

// TestPlanAvoidingValidation covers the degraded input edges: empty
// avoid delegates to Plan, out-of-range IDs are rejected, duplicate IDs
// collapse, and loads beyond the survivor count are ErrInfeasible so the
// serving layer knows to shed.
func TestPlanAvoidingValidation(t *testing.T) {
	const n = 64
	p := hierProfile(n)
	hier, err := NewPodSnapshot(p, 0, WithPodSize(16))
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := hier.Plan(20)
	if err != nil {
		t.Fatal(err)
	}
	viaNil, err := hier.PlanAvoiding(20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaNil.On) != len(healthy.On) {
		t.Fatalf("PlanAvoiding(load, nil) picked %d machines, Plan picked %d", len(viaNil.On), len(healthy.On))
	}
	for i := range viaNil.Loads {
		if math.Float64bits(viaNil.Loads[i]) != math.Float64bits(healthy.Loads[i]) {
			t.Fatalf("PlanAvoiding(load, nil) differs from Plan at machine %d", i)
		}
	}

	if _, err := hier.PlanAvoiding(10, []int{-1}); err == nil {
		t.Fatal("negative avoid ID accepted")
	}
	if _, err := hier.PlanAvoiding(10, []int{n}); err == nil {
		t.Fatal("avoid ID ≥ n accepted")
	}
	dup, err := hier.PlanAvoiding(10, []int{5, 5, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range dup.On {
		if i == 5 || i == 9 {
			t.Fatalf("avoided machine %d is on", i)
		}
	}
	if _, err := hier.PlanAvoiding(float64(n)-1, spreadAvoid(n, 8)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("load beyond survivors: err = %v, want ErrInfeasible", err)
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	if _, err := hier.PlanAvoiding(1, all); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("all machines avoided: err = %v, want ErrInfeasible", err)
	}
	if _, err := hier.PlanAvoiding(0, []int{3}); err == nil {
		t.Fatal("zero load accepted")
	}
}

// TestPlanAvoidingDeterministic: same inputs, same plan, across repeated
// calls (the degraded path shares the healthy path's determinism
// obligations — it serves from concurrent request handlers).
func TestPlanAvoidingDeterministic(t *testing.T) {
	const n = 256
	hier, err := NewPodSnapshot(hierProfile(n), 0, WithPodSize(32))
	if err != nil {
		t.Fatal(err)
	}
	avoid := concentratedAvoid(n, 24)
	first, err := hier.PlanAvoiding(120, avoid)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		again, err := hier.PlanAvoiding(120, avoid)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.On) != len(first.On) {
			t.Fatalf("rep %d: on-set size %d vs %d", rep, len(again.On), len(first.On))
		}
		for i := range again.Loads {
			if math.Float64bits(again.Loads[i]) != math.Float64bits(first.Loads[i]) {
				t.Fatalf("rep %d: machine %d load differs", rep, i)
			}
		}
	}
}

// TestPlanOverCtx checks the cancellable flat degraded sweep: a live
// context reproduces PlanOver exactly, a cancelled one stops with the
// context's error.
func TestPlanOverCtx(t *testing.T) {
	const n = 64
	p := hierProfile(n)
	pool := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if i%7 != 0 {
			pool = append(pool, i)
		}
	}
	want := p.PlanOver(pool, 30)
	got, err := p.PlanOverCtx(context.Background(), pool, 30)
	if err != nil {
		t.Fatal(err)
	}
	if want == nil || got == nil {
		t.Fatalf("plans nil: %v vs %v", want, got)
	}
	for i := range got.Loads {
		if math.Float64bits(got.Loads[i]) != math.Float64bits(want.Loads[i]) {
			t.Fatalf("machine %d: PlanOverCtx differs from PlanOver", i)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.PlanOverCtx(ctx, pool, 30); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep: err = %v, want context.Canceled", err)
	}
}

// TestHierarchicalMaxLoadGapBound quantifies the pod-composed budget
// query against the exact table answer across a budget sweep: the
// shortfall (exact load − hierarchical load, relative) must stay within
// the same mean ≤ 1 % / worst ≤ 5 % bound the Plan gap is held to.
func TestHierarchicalMaxLoadGapBound(t *testing.T) {
	const n = 256
	p := hierProfile(n)
	exact, err := NewSnapshot(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := NewPodSnapshot(p, 0, WithPodSize(hierPodSize(n)))
	if err != nil {
		t.Fatal(err)
	}
	var sum, worst float64
	var count int
	unit := float64(n) * (52 + 34)
	for _, frac := range []float64{0.2, 0.3, 0.45, 0.6, 0.75, 0.9, 1.0} {
		budget := frac*unit + 150*21
		want, err := exact.Tables().MaxLoad(budget)
		if err != nil {
			t.Fatalf("exact maxload(%v): %v", budget, err)
		}
		got, err := hier.MaxLoad(budget)
		if err != nil {
			t.Fatalf("hierarchical maxload(%v): %v", budget, err)
		}
		if got.Load > want.Load*(1+1e-9)+1e-9 {
			t.Fatalf("budget %v: hierarchical load %v beats exact %v", budget, got.Load, want.Load)
		}
		gap := (want.Load - got.Load) / want.Load
		if gap < 0 {
			gap = 0
		}
		if gap > worst {
			worst = gap
		}
		sum += gap
		count++
	}
	mean := sum / float64(count)
	t.Logf("n=%d pods=%d: maxload gap mean %.4f%% worst %.4f%%", n, hier.Pods(), 100*mean, 100*worst)
	if worst > 0.05 {
		t.Fatalf("worst maxload gap %.4f%% exceeds 5%%", 100*worst)
	}
	if mean > 0.01 {
		t.Fatalf("mean maxload gap %.4f%% exceeds 1%%", 100*mean)
	}
}

// TestHierarchicalConsolidateGapBound quantifies the hierarchical
// consolidation answer against the exact tables, with the same mean
// ≤ 1 % / worst ≤ 5 % gate. The comparison metric is the clamped room
// power of each subset — the raw Selection.Power is the paper's
// unclamped Eq. 23 score, which rewards supply temperatures the
// actuator cannot reach and so is not comparable across selectors that
// clamp differently. A negative gap (the exact tables' unclamped pick
// costing more once clamped) counts as zero.
func TestHierarchicalConsolidateGapBound(t *testing.T) {
	const n = 256
	p := hierProfile(n)
	exact, err := NewSnapshot(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := NewPodSnapshot(p, 0, WithPodSize(hierPodSize(n)))
	if err != nil {
		t.Fatal(err)
	}
	room := p.Reduce()
	clampedPower := func(subset []int, load float64) float64 {
		var sumA, sumB float64
		for _, i := range subset {
			sumA += room.Pairs[i].A
			sumB += room.Pairs[i].B
		}
		t := (sumA - load) / sumB
		tAc := p.W1 * t
		if tAc > p.TAcMaxC {
			tAc = p.TAcMaxC
		}
		if tAc < p.TAcMinC {
			tAc = p.TAcMinC // subsets below the actuator floor cannot really serve; score at the floor
		}
		cooling := p.CoolFactor * (p.SetPointC - tAc)
		if cooling < 0 {
			cooling = 0
		}
		return cooling + p.W1*load + float64(len(subset))*p.W2
	}
	var sum, worst float64
	var count int
	for _, frac := range []float64{0.05, 0.15, 0.3, 0.5, 0.7, 0.85} {
		load := frac * float64(n)
		// minK = ⌈load⌉ keeps both selectors on subsets that can
		// physically carry the load; the raw tables otherwise return
		// unclamped-score winners below capacity at high loads.
		minK := int(math.Ceil(load))
		want, err := exact.Tables().QueryExact(load, minK)
		if err != nil {
			t.Fatalf("exact consolidate(%v): %v", load, err)
		}
		got, err := hier.Consolidate(load, minK)
		if err != nil {
			t.Fatalf("hierarchical consolidate(%v): %v", load, err)
		}
		wantW := clampedPower(want.Subset, load)
		gotW := clampedPower(got.Subset, load)
		gap := (gotW - wantW) / wantW
		if gap < 0 {
			gap = 0
		}
		if gap > worst {
			worst = gap
		}
		sum += gap
		count++
	}
	mean := sum / float64(count)
	t.Logf("n=%d pods=%d: consolidate gap mean %.4f%% worst %.4f%%", n, hier.Pods(), 100*mean, 100*worst)
	if worst > 0.05 {
		t.Fatalf("worst consolidate gap %.4f%% exceeds 5%%", 100*worst)
	}
	if mean > 0.01 {
		t.Fatalf("mean consolidate gap %.4f%% exceeds 1%%", 100*mean)
	}
}

// TestPodBuildCheck exercises the injectable build guard: a failing
// check fails the whole build with the pod named, a passing check is
// invisible.
func TestPodBuildCheck(t *testing.T) {
	p := hierProfile(64)
	boom := errors.New("injected build failure")
	_, err := NewPodSnapshot(p, 0, WithPodSize(16), WithPodBuildCheck(func(pod int) error {
		if pod == 2 {
			return boom
		}
		return nil
	}))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	ok, err := NewPodSnapshot(p, 0, WithPodSize(16), WithPodBuildCheck(func(int) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	if ok.Pods() != 4 {
		t.Fatalf("pods = %d, want 4", ok.Pods())
	}
}
