package core

import (
	"math"
	"testing"
)

// This file is the differential battery for the recursive planner tree:
// depth-3 (and deeper) trees against the depth-2 classic and the exact
// whole-room planner. The contract has two regimes — at degenerate
// splits (one pod, or a nesting that reduces to the flat pod list) the
// tree must reproduce the reference bit for bit, and at genuine nestings
// the recursive water-fill must stay inside the same optimality-gap
// envelope the flat pod split declares (mean ≤ 1 %, worst ≤ 5 %).

// TestUnitTreeShape pins the deterministic tree builder: balanced
// contiguous groups, fan ≈ P^(1/(depth−1)), every leaf reachable, and
// Depth reporting the longest root-to-leaf path.
func TestUnitTreeShape(t *testing.T) {
	p := hierProfile(64)
	ps, err := NewPodSnapshot(p, 0, WithPodCount(16), WithPodDepth(3))
	if err != nil {
		t.Fatal(err)
	}
	root := ps.Root()
	if root.IsLeaf() {
		t.Fatal("16-pod depth-3 root is a leaf")
	}
	if got := root.Depth(); got != 3 {
		t.Fatalf("Depth() = %d, want 3", got)
	}
	if got := ps.Depth(); got != 3 {
		t.Fatalf("PodSnapshot.Depth() = %d, want 3", got)
	}
	if got := len(root.Children()); got != 4 {
		t.Fatalf("root fan-out = %d, want 4 (= 16^(1/2))", got)
	}
	leaves, machines := 0, 0
	for _, c := range root.Children() {
		if c.IsLeaf() {
			t.Fatalf("depth-3 child over %d leaves is a leaf unit", c.Leaves())
		}
		if got := len(c.Children()); got != 4 {
			t.Fatalf("child fan-out = %d, want 4", got)
		}
		leaves += c.Leaves()
		machines += c.Machines()
	}
	if leaves != 16 {
		t.Fatalf("children cover %d leaves, want 16", leaves)
	}
	if machines != 64 {
		t.Fatalf("children cover %d machines, want 64", machines)
	}

	// Depth 2 keeps the historical shape: every pod a direct child.
	flat2, err := NewPodSnapshot(p, 0, WithPodCount(16), WithPodDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(flat2.Root().Children()); got != 16 {
		t.Fatalf("depth-2 root fan-out = %d, want 16", got)
	}
	if got := flat2.Depth(); got != 2 {
		t.Fatalf("depth-2 Depth() = %d, want 2", got)
	}
}

// TestDepth3SinglePodMatchesExact is the p = 1 equivalence property at
// depth 3: a single pod collapses the tree to one leaf regardless of the
// requested depth, so the planner must reproduce the flat whole-room
// planner bit for bit — the degenerate-split half of the contract.
func TestDepth3SinglePodMatchesExact(t *testing.T) {
	const n = 64
	p := hierProfile(n)
	exact, err := NewSnapshot(p, 0, WithPreprocessWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	hier, err := NewPodSnapshot(p, 0, WithPodCount(1), WithPodDepth(3))
	if err != nil {
		t.Fatal(err)
	}
	if !hier.Root().IsLeaf() {
		t.Fatal("single-pod depth-3 root is not a leaf unit")
	}
	for _, frac := range []float64{0.03, 0.1, 0.25, 0.5, 0.75, 0.9} {
		load := frac * n
		want, err := exact.Plan(load)
		if err != nil {
			t.Fatalf("exact plan load %v: %v", load, err)
		}
		got, err := hier.Plan(load)
		if err != nil {
			t.Fatalf("depth-3 plan load %v: %v", load, err)
		}
		equalPlans(t, "single-pod depth 3", got, want)
	}
}

// TestDepth3TwoPodsMatchesDepth2 is the second degenerate split: two
// pods under a depth-3 request build groups of one leaf each, which the
// tree builder collapses back to leaf units — the tree is structurally
// the depth-2 tree, and every plan must match it bit for bit.
func TestDepth3TwoPodsMatchesDepth2(t *testing.T) {
	const n = 128
	p := hierProfile(n)
	d2, err := NewPodSnapshot(p, 0, WithPodCount(2), WithPodDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	d3, err := NewPodSnapshot(p, 0, WithPodCount(2), WithPodDepth(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := d3.Depth(); got != 2 {
		t.Fatalf("two-pod depth-3 tree has depth %d, want the collapsed 2", got)
	}
	for _, frac := range []float64{0.05, 0.2, 0.5, 0.85} {
		load := frac * n
		want, err := d2.Plan(load)
		if err != nil {
			t.Fatalf("depth-2 plan load %v: %v", load, err)
		}
		got, err := d3.Plan(load)
		if err != nil {
			t.Fatalf("depth-3 plan load %v: %v", load, err)
		}
		equalPlans(t, "two-pod depth 3 vs depth 2", got, want)
	}
}

// TestDeepTreeGapBound is the genuine-nesting half of the battery:
// depth-3 and depth-4 trees over real pod counts, measured against the
// exact planner across a load sweep, must stay inside the declared
// envelope (mean ≤ 1 %, worst ≤ 5 %) and never beat the exact optimum.
// The depth-2 gap is measured alongside so a future regression that
// widens nesting's cost over the flat split shows up in the logs.
func TestDeepTreeGapBound(t *testing.T) {
	sizes := []int{256, 1024}
	if !testing.Short() && !raceEnabled {
		sizes = append(sizes, 4096)
	}
	for _, n := range sizes {
		p := hierProfile(n)
		exact, err := NewSnapshot(p, 0, WithMaxMachines(n))
		if err != nil {
			t.Fatal(err)
		}
		for _, depth := range []int{2, 3, 4} {
			hier, err := NewPodSnapshot(p, 0, WithPodSize(hierPodSize(n)), WithPodDepth(depth))
			if err != nil {
				t.Fatal(err)
			}
			var sum, worst float64
			var count int
			for _, frac := range []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9} {
				load := frac * float64(n)
				want, err := exact.Plan(load)
				if err != nil {
					t.Fatalf("n=%d exact plan load %v: %v", n, load, err)
				}
				got, err := hier.Plan(load)
				if err != nil {
					t.Fatalf("n=%d depth=%d plan load %v: %v", n, depth, load, err)
				}
				if err := p.ValidatePlan(got, load, 1e-6); err != nil {
					t.Fatalf("n=%d depth=%d load %v: invalid plan: %v", n, depth, load, err)
				}
				exactW := float64(p.PlanPower(want))
				gap := (float64(p.PlanPower(got)) - exactW) / exactW
				if gap < -1e-9 {
					t.Fatalf("n=%d depth=%d load %v: tree beats exact by %v", n, depth, load, -gap)
				}
				if gap > worst {
					worst = gap
				}
				sum += gap
				count++
			}
			mean := sum / float64(count)
			t.Logf("n=%d depth=%d (tree depth %d, %d pods): gap mean %.4f%% worst %.4f%%",
				n, depth, hier.Depth(), hier.Pods(), 100*mean, 100*worst)
			if worst > 0.05 {
				t.Fatalf("n=%d depth=%d: worst gap %.4f%% exceeds 5%%", n, depth, 100*worst)
			}
			if mean > 0.01 {
				t.Fatalf("n=%d depth=%d: mean gap %.4f%% exceeds 1%%", n, depth, 100*mean)
			}
		}
	}
}

// TestPlanAvoidingDepth3 extends the degraded battery to nested trees:
// depth-3 PlanAvoiding must keep avoided machines off, validate against
// the model, and stay inside the degraded gap envelope versus the flat
// survivor sweep — the same contract the depth-2 path declares.
func TestPlanAvoidingDepth3(t *testing.T) {
	const n = 256
	p := hierProfile(n)
	hier, err := NewPodSnapshot(p, 0, WithPodSize(hierPodSize(n)), WithPodDepth(3))
	if err != nil {
		t.Fatal(err)
	}
	if hier.Depth() != 3 {
		t.Fatalf("tree depth %d, want 3", hier.Depth())
	}
	var sum, worst float64
	var count int
	for _, f := range []int{1, 8, n / 16} {
		for _, shape := range []func(int, int) []int{concentratedAvoid, spreadAvoid} {
			avoid := shape(n, f)
			blocked := make([]bool, n)
			for _, i := range avoid {
				blocked[i] = true
			}
			pool := survivorPool(n, blocked)
			for _, frac := range []float64{0.15, 0.4, 0.65, 0.9} {
				load := frac * float64(len(pool))
				want := p.PlanOver(pool, load)
				if want == nil {
					t.Fatalf("f=%d: flat degraded plan infeasible at load %v", f, load)
				}
				got, err := hier.PlanAvoiding(load, avoid)
				if err != nil {
					t.Fatalf("f=%d load %v: %v", f, load, err)
				}
				for _, i := range got.On {
					if blocked[i] {
						t.Fatalf("f=%d load %v: avoided machine %d is on", f, load, i)
					}
				}
				if err := p.ValidatePlan(got, load, 1e-6); err != nil {
					t.Fatalf("f=%d load %v: invalid plan: %v", f, load, err)
				}
				gap := float64(p.PlanPower(got)-p.PlanPower(want)) / float64(p.PlanPower(want))
				if gap < 0 {
					gap = 0
				}
				if gap > worst {
					worst = gap
				}
				sum += gap
				count++
			}
		}
	}
	mean := sum / float64(count)
	t.Logf("n=%d depth 3: degraded gap mean %.4f%% worst %.4f%% over %d cases",
		n, 100*mean, 100*worst, count)
	if worst > 0.05 {
		t.Fatalf("worst degraded gap %.4f%% exceeds 5%%", 100*worst)
	}
	if mean > 0.01 {
		t.Fatalf("mean degraded gap %.4f%% exceeds 1%%", 100*mean)
	}
}

// TestDeepTreeMaxLoadAndConsolidate covers the remaining query surface
// at depth 3: MaxLoad inverts Plan within the hierarchy's usual
// tolerance and Consolidate honors the minimum-machine floor.
func TestDeepTreeMaxLoadAndConsolidate(t *testing.T) {
	const n = 256
	p := hierProfile(n)
	hier, err := NewPodSnapshot(p, 0, WithPodSize(hierPodSize(n)), WithPodDepth(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		load := frac * n
		plan, err := hier.Plan(load)
		if err != nil {
			t.Fatalf("plan load %v: %v", load, err)
		}
		budget := float64(p.PlanPower(plan))
		got, err := hier.MaxLoad(budget)
		if err != nil {
			t.Fatalf("maxload budget %v: %v", budget, err)
		}
		if got.Load < load*(1-0.05) {
			t.Fatalf("MaxLoad(%v) = %v, below the load %v that fit the budget", budget, got.Load, load)
		}
		minK := len(plan.On) + 4
		cons, err := hier.Consolidate(load, minK)
		if err != nil {
			t.Fatalf("consolidate load %v minK %d: %v", load, minK, err)
		}
		if len(cons.Subset) < minK {
			t.Fatalf("consolidate kept %d machines, want ≥ %d", len(cons.Subset), minK)
		}
		for i := 1; i < len(cons.Subset); i++ {
			if cons.Subset[i] <= cons.Subset[i-1] {
				t.Fatalf("consolidate load %v: subset not strictly ascending at %d", load, i)
			}
		}
	}
}

// FuzzNestedSplitPlan fuzzes the tree builder and planner over random
// nested splits: any (pod size, depth) shape over a small room must
// produce a model-valid plan whose power stays within the worst-case
// envelope of the exact optimum, and degenerate shapes must not crash.
func FuzzNestedSplitPlan(f *testing.F) {
	f.Add(uint(16), uint(3), uint(50))
	f.Add(uint(1), uint(2), uint(10))
	f.Add(uint(7), uint(4), uint(90))
	f.Add(uint(31), uint(5), uint(5))
	f.Add(uint(96), uint(3), uint(75))

	const n = 96
	p := hierProfile(n)
	exact, err := NewSnapshot(p, 0, WithPreprocessWorkers(1))
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, podSize, depth, loadPct uint) {
		ps := int(podSize%uint(n)) + 1
		d := int(depth%5) + 1 // 1..5; NewPodSnapshot clamps below 2
		frac := 0.05 + 0.9*float64(loadPct%101)/100
		hier, err := NewPodSnapshot(p, 0, WithPodSize(ps), WithPodDepth(d))
		if err != nil {
			t.Fatalf("build pod_size=%d depth=%d: %v", ps, d, err)
		}
		load := frac * n
		want, err := exact.Plan(load)
		if err != nil {
			t.Skip("load outside the exact planner's feasible band")
		}
		got, err := hier.Plan(load)
		if err != nil {
			t.Fatalf("pod_size=%d depth=%d load %v: %v", ps, d, load, err)
		}
		if err := p.ValidatePlan(got, load, 1e-6); err != nil {
			t.Fatalf("pod_size=%d depth=%d load %v: invalid plan: %v", ps, d, load, err)
		}
		exactW := float64(p.PlanPower(want))
		gap := (float64(p.PlanPower(got)) - exactW) / exactW
		// A negative gap counts as zero: the exact planner optimizes the
		// paper's unclamped Eq. 23 score, so in the supply-clamp regime a
		// differently refined subset can genuinely cost less once clamped
		// (same convention as TestHierarchicalConsolidateGapBound).
		if gap < 0 {
			gap = 0
		}
		// The 1 %/5 % envelope is an empirical gate on the curated
		// configurations (TestDeepTreeGapBound, the calibration curve) —
		// it is not a theorem over arbitrary splits, and fuzzed shapes
		// like a 2-pod room or 8-machine pods under a low load genuinely
		// land in the 5–8 % band. The fuzz property is therefore validity
		// plus a catastrophe backstop: no shape may cost more than 15 %
		// over the exact optimum, because the bounded-exchange refinement
		// is supposed to claw back exactly the pathological unions.
		if gap > 0.15 {
			t.Fatalf("pod_size=%d depth=%d load %v: gap %.4f%% exceeds the 15%% backstop", ps, d, load, 100*gap)
		}
		if math.IsNaN(float64(got.TAcC)) {
			t.Fatalf("pod_size=%d depth=%d load %v: NaN supply", ps, d, load)
		}
	})
}
