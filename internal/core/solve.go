package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"coolopt/internal/units"
)

// Plan is an executable control decision: which machines run, at what
// utilization, and what supply temperature the CRAC should produce.
type Plan struct {
	// On lists the powered-on machine IDs in ascending order.
	On []int
	// Loads is indexed by machine ID; machines that are off have load 0.
	Loads []float64
	// TAcC is the commanded CRAC supply temperature in °C.
	TAcC units.Celsius
	// Clamped reports that the unconstrained optimum asked for a supply
	// temperature outside the actuation bounds and TAcC was clamped.
	Clamped bool
}

// TotalLoad returns Σ L_i.
func (pl *Plan) TotalLoad() float64 {
	sum := 0.0
	for _, l := range pl.Loads {
		sum += l
	}
	return sum
}

// ErrInfeasible is returned when no plan can satisfy the constraints.
var ErrInfeasible = errors.New("core: infeasible")

// Solve computes the paper's closed-form optimal load distribution
// (Eqs. 21–22) over the given set of powered-on machines for total load
// totalLoad (in machine-utilization units, so a 20-machine rack at 50 %
// means totalLoad = 10).
//
// The returned plan puts every powered-on machine exactly at T_max — the
// property that makes the solution optimal under the model. Solve is
// faithful to the paper: it does not enforce 0 ≤ L_i ≤ 1 (see SolveBounded
// for the repaired variant) but it does clamp T_ac into the actuation
// bounds, recomputing nothing else, and flags the clamp.
func (p *Profile) Solve(on []int, totalLoad float64) (*Plan, error) {
	if err := p.checkOnSet(on); err != nil {
		return nil, err
	}
	if totalLoad < 0 {
		return nil, fmt.Errorf("core: negative total load %v", totalLoad)
	}

	// Σ K_i and Σ α_i/β_i over the on set.
	var sumK, sumAB float64
	for _, i := range on {
		sumK += p.K(i)
		sumAB += p.RatioAB(i)
	}

	// Eq. 21: T_ac = w1·(Σ K_i − L)/Σ(α_i/β_i).
	tAc := p.W1 * (sumK - totalLoad) / sumAB
	clamped := false
	if tAc > p.TAcMaxC {
		tAc = p.TAcMaxC
		clamped = true
	}
	if tAc < p.TAcMinC {
		// Even the coldest supply cannot keep every CPU at T_max
		// with this load on this set.
		return nil, fmt.Errorf("%w: optimal supply %.2f °C below actuator minimum %.2f °C",
			ErrInfeasible, p.W1*(sumK-totalLoad)/sumAB, p.TAcMinC)
	}

	loads := make([]float64, p.Size())
	surplus := sumK - totalLoad
	for _, i := range on {
		// Eq. 22: L_i = K_i − (Σ K_j − L)·(α_i/β_i)/Σ(α_j/β_j).
		loads[i] = p.K(i) - surplus*p.RatioAB(i)/sumAB
	}

	onCopy := append([]int(nil), on...)
	sort.Ints(onCopy)
	return &Plan{On: onCopy, Loads: loads, TAcC: units.Celsius(tAc), Clamped: clamped}, nil
}

// SolveBounded runs Solve and then repairs any allocation that violates
// the physical box constraints 0 ≤ L_i ≤ 1, which the paper's closed form
// does not enforce. Machines pushed below 0 are pinned at 0, machines
// pushed above 1 are pinned at 1, and the closed form is re-solved over
// the remaining free machines with the residual load — the standard
// active-set treatment of box constraints on a problem whose KKT system is
// the paper's. Pinned-at-zero machines remain powered on (deciding to turn
// them off is consolidation's job).
func (p *Profile) SolveBounded(on []int, totalLoad float64) (*Plan, error) {
	if err := p.checkOnSet(on); err != nil {
		return nil, err
	}
	if totalLoad > float64(len(on))+1e-9 {
		return nil, fmt.Errorf("%w: load %v exceeds capacity of %d machines", ErrInfeasible, totalLoad, len(on))
	}

	pinned := make(map[int]float64)
	free := append([]int(nil), on...)
	for iter := 0; iter <= len(on); iter++ {
		residual := totalLoad
		for _, v := range pinned {
			residual -= v
		}
		if len(free) == 0 {
			break
		}
		if residual < 0 {
			residual = 0
		}
		plan, err := p.Solve(free, residual)
		if err != nil {
			return nil, err
		}
		violated := false
		for _, i := range free {
			if plan.Loads[i] < -1e-12 {
				pinned[i] = 0
				violated = true
			} else if plan.Loads[i] > 1+1e-12 {
				pinned[i] = 1
				violated = true
			}
		}
		if !violated {
			for i, v := range pinned {
				plan.Loads[i] = v
			}
			plan.On = append([]int(nil), on...)
			sort.Ints(plan.On)
			// Pinned machines may sit above T_max at the free-set
			// T_ac; lower T_ac to the max safe value if needed.
			safe, err := p.MaxSafeTAc(plan.On, plan.Loads)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
			}
			if safe < plan.TAcC {
				plan.TAcC = safe
				plan.Clamped = true
			}
			return plan, nil
		}
		next := free[:0]
		for _, i := range free {
			if _, ok := pinned[i]; !ok {
				next = append(next, i)
			}
		}
		free = next
	}

	// Everything pinned: feasible only if the pins absorb the load.
	loads := make([]float64, p.Size())
	var sum float64
	for i, v := range pinned {
		loads[i] = v
		sum += v
	}
	if math.Abs(sum-totalLoad) > 1e-6 {
		return nil, fmt.Errorf("%w: box constraints cannot absorb load %v", ErrInfeasible, totalLoad)
	}
	onCopy := append([]int(nil), on...)
	sort.Ints(onCopy)
	safe, err := p.MaxSafeTAc(onCopy, loads)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	return &Plan{On: onCopy, Loads: loads, TAcC: safe, Clamped: true}, nil
}

// PlanAllOn returns the minimum-power plan that keeps every machine
// powered on (scenarios #4–#6 in the paper's evaluation tree), validated
// against the model.
func (p *Profile) PlanAllOn(load float64) (*Plan, error) {
	on := make([]int, p.Size())
	for i := range on {
		on[i] = i
	}
	plan, err := p.SolveBounded(on, load)
	if err != nil {
		return nil, err
	}
	if err := p.ValidatePlan(plan, load, 1e-6); err != nil {
		return nil, fmt.Errorf("core: optimizer produced invalid plan: %w", err)
	}
	return plan, nil
}

// PlanOver consolidates over prefixes of the given machine pool: the
// closed form is solved for every on-count k ≥ ⌈load⌉ over pool[:k] and
// the cheapest feasible plan under the model wins (the profiled machines
// are near-homogeneous, so which k pool members run matters far less than
// how many). This is the flat degraded planner's workhorse: the pool is
// the surviving set after failures, which the precomputed whole-room
// tables cannot answer for directly. Returns nil when no prefix is
// feasible.
func (p *Profile) PlanOver(pool []int, load float64) *Plan {
	plan, _ := p.PlanOverCtx(context.Background(), pool, load)
	return plan
}

// PlanOverCtx is PlanOver with cooperative cancellation: the prefix
// sweep is O(|pool|) closed-form solves — seconds at datacenter scale —
// so a serving deadline must be able to cut it short. The context is
// checked between solves; on cancellation the error is ctx.Err(). An
// exhausted sweep with no feasible prefix returns (nil, nil), exactly
// like PlanOver.
func (p *Profile) PlanOverCtx(ctx context.Context, pool []int, load float64) (*Plan, error) {
	var (
		best  *Plan
		bestW float64
		minOn = int(math.Ceil(load - 1e-9))
	)
	if minOn < 1 {
		minOn = 1
	}
	for k := minOn; k <= len(pool); k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		plan, err := p.SolveBounded(pool[:k], load)
		if err != nil {
			continue
		}
		w := float64(p.PlanPower(plan))
		if best == nil || w < bestW {
			best, bestW = plan, w
		}
	}
	return best, nil
}

// PlanPower returns the plan's total power under the paper's model
// (Eq. 23): CRAC power at the plan's supply temperature plus Σ(W1·L_i+W2)
// over the powered-on machines.
func (p *Profile) PlanPower(pl *Plan) units.Watts {
	total := p.CoolingPower(pl.TAcC)
	for _, i := range pl.On {
		total += p.ServerPower(pl.Loads[i])
	}
	return total
}

// ValidatePlan checks a plan against the model: loads within [0, 1], the
// load constraint met, and every powered-on machine at or below T_max at
// the plan's supply temperature. slack is the allowed temperature
// overshoot in °C (0 for strict).
func (p *Profile) ValidatePlan(pl *Plan, totalLoad, slack float64) error {
	if len(pl.Loads) != p.Size() {
		return fmt.Errorf("core: plan has %d loads for %d machines", len(pl.Loads), p.Size())
	}
	sum := 0.0
	onSet := make(map[int]bool, len(pl.On))
	for _, i := range pl.On {
		onSet[i] = true
	}
	for i, l := range pl.Loads {
		if !onSet[i] {
			if l != 0 {
				return fmt.Errorf("core: machine %d is off but has load %v", i, l)
			}
			continue
		}
		if l < -1e-9 || l > 1+1e-9 {
			return fmt.Errorf("core: machine %d load %v outside [0, 1]", i, l)
		}
		if temp := float64(p.CPUTemp(i, l, pl.TAcC)); temp > p.TMaxC+slack {
			return fmt.Errorf("core: machine %d at %.2f °C exceeds T_max %.2f °C", i, temp, p.TMaxC)
		}
		sum += l
	}
	if math.Abs(sum-totalLoad) > 1e-6 {
		return fmt.Errorf("core: plan carries load %v, want %v", sum, totalLoad)
	}
	return nil
}

func (p *Profile) checkOnSet(on []int) error {
	if len(on) == 0 {
		return errors.New("core: empty on set")
	}
	seen := make(map[int]bool, len(on))
	for _, i := range on {
		if i < 0 || i >= p.Size() {
			return fmt.Errorf("core: machine index %d out of range [0, %d)", i, p.Size())
		}
		if seen[i] {
			return fmt.Errorf("core: duplicate machine index %d", i)
		}
		seen[i] = true
	}
	return nil
}
