package core

import (
	"errors"
	"math"
	"testing"

	"coolopt/internal/mathx"
)

// paperExample is the counterexample from §III-B footnote 1 that defeats
// both simple heuristics: A = {(10,7), (2,3), (1,2), (0.2,1.34)}.
func paperExample() Reduced {
	return Reduced{
		Pairs: []Pair{{A: 10, B: 7}, {A: 2, B: 3}, {A: 1, B: 2}, {A: 0.2, B: 1.34}},
		W2:    0.5,
		Rho:   1,
	}
}

func TestReduceMatchesProfile(t *testing.T) {
	p := testProfile()
	red := p.Reduce()
	if len(red.Pairs) != p.Size() {
		t.Fatalf("Reduce produced %d pairs for %d machines", len(red.Pairs), p.Size())
	}
	for i, pair := range red.Pairs {
		if !mathx.ApproxEqual(pair.A, p.K(i), 1e-12) {
			t.Fatalf("pair %d A = %v, want K = %v", i, pair.A, p.K(i))
		}
		if !mathx.ApproxEqual(pair.B, p.RatioAB(i), 1e-12) {
			t.Fatalf("pair %d B = %v, want α/β = %v", i, pair.B, p.RatioAB(i))
		}
	}
	if !mathx.ApproxEqual(red.Rho, p.CoolFactor*p.W1, 1e-12) {
		t.Fatalf("Rho = %v, want %v", red.Rho, p.CoolFactor*p.W1)
	}
}

func TestTValue(t *testing.T) {
	red := paperExample()
	got, err := red.TValue([]int{0, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// (10 + 1 − 1)/(7 + 2) = 10/9.
	if !mathx.ApproxEqual(got, 10.0/9.0, 1e-12) {
		t.Fatalf("TValue = %v, want 10/9", got)
	}
	if _, err := red.TValue(nil, 1); err == nil {
		t.Fatal("empty subset accepted")
	}
	if _, err := red.TValue([]int{9}, 1); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestSubsetPowerFormula(t *testing.T) {
	red := paperExample()
	red.CoolFactor = 2
	red.SetPointC = 3
	red.W1 = 4
	const load = 1.0
	subset := []int{0, 1}
	tVal, err := red.TValue(subset, load)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*red.W2 - red.Rho*tVal + red.Theta(load)
	got, err := red.SubsetPower(subset, load)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(got, want, 1e-12) {
		t.Fatalf("SubsetPower = %v, want %v", got, want)
	}
	if !mathx.ApproxEqual(red.Theta(load), 2*3+4*1, 1e-12) {
		t.Fatalf("Theta = %v, want 10", red.Theta(load))
	}
}

func TestBruteForceTwoMachinesByHand(t *testing.T) {
	// Pairs (4,1) and (2,2); w2=1, rho=1, load=1.
	// {0}: t=3, P=1−3=−2. {1}: t=0.5, P=0.5. {0,1}: t=5/3, P≈0.33.
	red := Reduced{Pairs: []Pair{{A: 4, B: 1}, {A: 2, B: 2}}, W2: 1, Rho: 1}
	sel, err := red.BruteForce(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Subset) != 1 || sel.Subset[0] != 0 {
		t.Fatalf("subset = %v, want [0]", sel.Subset)
	}
	if !mathx.ApproxEqual(sel.Power, -2, 1e-12) {
		t.Fatalf("power = %v, want -2", sel.Power)
	}
}

func TestBruteForceRespectsMinK(t *testing.T) {
	red := Reduced{Pairs: []Pair{{A: 4, B: 1}, {A: 2, B: 2}}, W2: 1, Rho: 1}
	sel, err := red.BruteForce(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Subset) != 2 {
		t.Fatalf("subset = %v, want both machines", sel.Subset)
	}
	if _, err := red.BruteForce(1, 3); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("minK beyond n: err = %v, want ErrInfeasible", err)
	}
}

func TestBruteForceLimits(t *testing.T) {
	if _, err := (Reduced{}).BruteForce(1, 1); err == nil {
		t.Fatal("empty instance accepted")
	}
	big := Reduced{Pairs: make([]Pair, 25), W2: 1, Rho: 1}
	if _, err := big.BruteForce(1, 1); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestGreedyRatioFailsOnPaperCounterexample(t *testing.T) {
	// With k forced to 2 and load 0.5, sorting by a/b picks {0, 1}
	// (t = 1.15) while the optimum is {0, 2} (t = 10.5/9 ≈ 1.1667).
	red := paperExample()
	red.W2 = 100 // make larger k prohibitively expensive → k = 2 chosen
	const load = 0.5
	greedy, err := red.GreedyRatio(load, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := red.BruteForce(load, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy.Subset) != 2 || len(opt.Subset) != 2 {
		t.Fatalf("expected k=2 solutions, got greedy %v opt %v", greedy.Subset, opt.Subset)
	}
	if greedy.Power <= opt.Power+1e-9 {
		t.Fatalf("GreedyRatio power %v did not lose to optimal %v — counterexample broken",
			greedy.Power, opt.Power)
	}
	if opt.Subset[0] != 0 || opt.Subset[1] != 2 {
		t.Fatalf("optimal subset = %v, want [0 2]", opt.Subset)
	}
}

func TestHeuristicsNeverBeatBruteForce(t *testing.T) {
	rng := mathx.NewRand(7)
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(7)
		pairs := make([]Pair, n)
		for i := range pairs {
			pairs[i] = Pair{A: rng.Uniform(0.1, 10), B: rng.Uniform(0.1, 5)}
		}
		red := Reduced{Pairs: pairs, W2: rng.Uniform(0, 3), Rho: rng.Uniform(0.1, 3)}
		load := rng.Uniform(0, 5)
		minK := 1 + rng.Intn(n)
		opt, err := red.BruteForce(load, minK)
		if err != nil {
			t.Fatalf("trial %d: brute force: %v", trial, err)
		}
		for name, sel := range map[string]func(float64, int) (Selection, error){
			"ratio":    red.GreedyRatio,
			"adaptive": red.GreedyAdaptive,
		} {
			got, err := sel(load, minK)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if got.Power < opt.Power-1e-9 {
				t.Fatalf("trial %d: %s power %v beats brute force %v",
					trial, name, got.Power, opt.Power)
			}
		}
	}
}

func TestGreedyAdaptiveIsSometimesSuboptimal(t *testing.T) {
	// The footnote claims no guarantee of global optimality for the
	// adaptive heuristic either; confirm it actually loses on some
	// random instance (otherwise it would secretly be exact).
	rng := mathx.NewRand(11)
	failures := 0
	for trial := 0; trial < 400; trial++ {
		n := 4 + rng.Intn(4)
		pairs := make([]Pair, n)
		for i := range pairs {
			pairs[i] = Pair{A: rng.Uniform(0.1, 10), B: rng.Uniform(0.1, 5)}
		}
		red := Reduced{Pairs: pairs, W2: rng.Uniform(0.5, 3), Rho: 1}
		load := rng.Uniform(0, 4)
		minK := 2 + rng.Intn(n-1)
		opt, err := red.BruteForce(load, minK)
		if err != nil {
			continue
		}
		got, err := red.GreedyAdaptive(load, minK)
		if err != nil {
			continue
		}
		if got.Power > opt.Power+1e-9 {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("GreedyAdaptive matched brute force on every instance — expected documented failures")
	}
}

func TestGreedyInputValidation(t *testing.T) {
	var empty Reduced
	if _, err := empty.GreedyRatio(1, 1); err == nil {
		t.Fatal("empty instance accepted by GreedyRatio")
	}
	if _, err := empty.GreedyAdaptive(1, 1); err == nil {
		t.Fatal("empty instance accepted by GreedyAdaptive")
	}
}

func TestSubsetPowerMatchesBruteForceReport(t *testing.T) {
	red := paperExample()
	sel, err := red.BruteForce(1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := red.SubsetPower(sel.Subset, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel.Power-want) > 1e-12 {
		t.Fatalf("reported power %v, recomputed %v", sel.Power, want)
	}
}
