package core

import (
	"errors"
	"fmt"
	"sort"

	"coolopt/internal/mathx"
)

// This file implements incremental snapshot maintenance: rebuilding a
// frozen Snapshot / PodSnapshot after a few machines' Eq. 8 coefficients
// (and hence their Eq. 19 particle parameters K_i and α_i/β_i) drift,
// without resweeping the whole room.
//
// The contract is strict bit-identity: Patch must produce exactly the
// bytes a from-scratch NewSnapshot/NewPodSnapshot over the patched
// profile would — tables, arena ranks, and every plan computed on them.
// That rules out value-level shortcuts (float sums are order-dependent,
// so "subtract the old A, add the new one" drifts by ulps) and dictates
// the structure-level one used here:
//
//   - Flat tables. A drifted machine changes only the crossing times of
//     the ~n pairs it participates in; the other ~n²/2 crossing times are
//     computed from unchanged inputs and are bit-identical. With the
//     sorted crossing list retained (WithPatchSupport), Patch filters out
//     the drifted pairs' entries, regenerates and sorts only the k·n new
//     ones, merges the two sorted lists in O(n²) — skipping both the
//     O(n²) pair generation and the dominant O(n² lg n) full sort — and
//     re-runs the standard sweep. The sweep's output depends only on the
//     sorted time sequence and the per-event crossing sets (span merging
//     is order-independent inside an event), so the result matches a
//     fresh build bit for bit. This path cuts the constant, not the
//     asymptotics: the sweep itself is still O(n²) — which is why the
//     engine's patch-cost advisor (internal/engine) consults
//     RetainedCrossings and switches to PatchRebuild when the splice
//     would lose to the fresh build.
//
//   - Pod tables. This is the fast path, and the reason the hierarchy
//     pays twice: a drifted machine sits in exactly one pod leaf, so only
//     that leaf's O((n/p)²) kinetic tables rebuild; every other leaf's
//     segment and front-set arenas are shared with the old snapshot by
//     reference. The Eq. 21–22 aggregates (A_j, B_j, shares, the
//     share-scaled cooling leverage Rho_j) are all O(n) scalars
//     re-derived with the exact loops NewPodSnapshot runs, so they too
//     are bit-identical — shares shift for every pod when any machine's
//     B drifts, but the kinetic tables depend only on the pod's own
//     pairs, which is why sharing the untouched arenas is safe. The
//     planner tree is rebuilt to the receiver's shape (same leaves, same
//     depth) over the new leaves.
//
//   - Power-model drift. A batch may carry replacement room W1/W2
//     (Eq. 9) coefficients alongside the per-machine thermal fits. K_i
//     depends on W1 and W2 for every machine, so power drift moves every
//     particle at once: no crossing survives and no pod is untouched.
//     Both Patch paths detect this (PowerDrift) and rebuild everything —
//     still bit-identical to a fresh build over the patched profile,
//     just without the incremental discount.

// MachineDelta is one machine's re-profiled Eq. 8 coefficients, the unit
// of drift the recursive-least-squares refresher (internal/profiling)
// emits and Patch consumes.
type MachineDelta struct {
	// ID is the machine whose coefficients drifted.
	ID int `json:"id"`
	// Machine carries the full replacement coefficients (not increments),
	// so a delta batch is idempotent to apply.
	Machine MachineProfile `json:"machine"`
	// W1, W2 optionally carry replacement room power-model coefficients
	// (Eq. 9: P_i = W1·L_i + W2). Zero W1 means "no power drift in this
	// delta"; a delta with W1 > 0 replaces both coefficients. Every delta
	// in a batch that carries power drift must agree on the values.
	W1 float64 `json:"w1,omitempty"`
	W2 float64 `json:"w2,omitempty"`
}

// PowerDrift reports whether the batch carries replacement Eq. 9 power
// coefficients (any delta with W1 set) in addition to the per-machine
// thermal fits. Power drift forces full table rebuilds: every K_i moves.
func PowerDrift(drifted []MachineDelta) bool {
	for _, d := range drifted {
		if d.W1 != 0 {
			return true
		}
	}
	return false
}

// ErrBadDelta reports a drift batch Patch refuses to apply: a machine ID
// outside the room, the same machine drifted twice in one batch,
// inconsistent or invalid power-model coefficients, or coefficients that
// fail profile validation (non-positive α/β, K ≤ 0). Wrap-compare with
// errors.Is.
var ErrBadDelta = errors.New("core: bad drift delta")

// applyDeltas returns a validated deep copy of p with the deltas applied,
// plus the sorted drifted IDs and whether the batch replaced the room
// power model. An empty batch yields a plain copy.
func applyDeltas(p *Profile, drifted []MachineDelta) (*Profile, []int, bool, error) {
	frozen := *p
	frozen.Machines = append([]MachineProfile(nil), p.Machines...)
	ids := make([]int, 0, len(drifted))
	seen := make(map[int]bool, len(drifted))
	powerDrift := false
	for _, d := range drifted {
		if d.ID < 0 || d.ID >= len(frozen.Machines) {
			return nil, nil, false, fmt.Errorf("%w: machine %d outside [0, %d)", ErrBadDelta, d.ID, len(frozen.Machines))
		}
		if seen[d.ID] {
			return nil, nil, false, fmt.Errorf("%w: machine %d drifted twice in one batch", ErrBadDelta, d.ID)
		}
		seen[d.ID] = true
		frozen.Machines[d.ID] = d.Machine
		ids = append(ids, d.ID)
		switch {
		case d.W1 < 0 || d.W2 < 0:
			return nil, nil, false, fmt.Errorf("%w: machine %d carries negative power coefficients W1=%v W2=%v", ErrBadDelta, d.ID, d.W1, d.W2)
		case d.W1 == 0 && d.W2 != 0:
			return nil, nil, false, fmt.Errorf("%w: machine %d sets W2=%v without W1 (power drift replaces both)", ErrBadDelta, d.ID, d.W2)
		case d.W1 > 0:
			// Bit-exact on purpose: deltas in one batch must restate the
			// identical replacement coefficients, not approximately agree.
			if powerDrift && (!mathx.Same(frozen.W1, d.W1) || !mathx.Same(frozen.W2, d.W2)) {
				return nil, nil, false, fmt.Errorf("%w: machine %d disagrees on power drift (W1=%v W2=%v vs W1=%v W2=%v)",
					ErrBadDelta, d.ID, d.W1, d.W2, frozen.W1, frozen.W2)
			}
			frozen.W1, frozen.W2 = d.W1, d.W2
			powerDrift = true
		}
	}
	if err := frozen.Validate(); err != nil {
		return nil, nil, false, fmt.Errorf("%w: patched profile rejected: %w", ErrBadDelta, err)
	}
	sort.Ints(ids)
	return &frozen, ids, powerDrift, nil
}

// Patch returns a new deep-frozen snapshot with the drifted machines'
// coefficients replaced and the consolidation tables updated, tagged with
// the next epoch. The result is byte-for-byte identical to
// NewSnapshot(patched profile, epoch+1, same options) — the differential
// battery in patch_test.go enforces this — but skips the O(n²) pair
// generation and the O(n² lg n) crossing sort when the receiver retained
// its crossing list (WithPatchSupport); without retention, or when the
// batch carries power-model drift (every crossing moves), it falls back
// to a full rebuild. An empty batch shares the receiver's tables
// outright. Options forward to the rebuild exactly like NewSnapshot's;
// the worker count must match the original build's for bit-identity
// (worker-count changes can shift results by ulps either way).
func (s *Snapshot) Patch(drifted []MachineDelta, opts ...PreprocessOption) (*Snapshot, error) {
	p2, ids, powerDrift, err := applyDeltas(s.profile, drifted)
	if err != nil {
		return nil, err
	}
	epoch := s.epoch + 1
	if len(ids) == 0 {
		return newFlatSnapshot(epoch, p2, s.pre), nil
	}
	cfg := preprocessConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if powerDrift || !s.pre.PatchSupported() {
		pre, err := Preprocess(p2.Reduce(), s.rebuildOpts(opts)...)
		if err != nil {
			return nil, err
		}
		return newFlatSnapshot(epoch, p2, pre), nil
	}
	pre, err := s.pre.patch(p2.Reduce(), ids, cfg)
	if err != nil {
		return nil, err
	}
	return newFlatSnapshot(epoch, p2, pre), nil
}

// PatchRebuild applies a drift batch like Patch but never splices: the
// tables always rebuild from scratch. Splice and rebuild agree bit for
// bit (the differential battery proves it), so the engine's patch-cost
// advisor switches between them freely — at large n the splice's
// filter-and-merge over ~n²/2 retained crossings costs more than the
// fresh build it was meant to avoid.
func (s *Snapshot) PatchRebuild(drifted []MachineDelta, opts ...PreprocessOption) (*Snapshot, error) {
	p2, ids, _, err := applyDeltas(s.profile, drifted)
	if err != nil {
		return nil, err
	}
	epoch := s.epoch + 1
	if len(ids) == 0 {
		return newFlatSnapshot(epoch, p2, s.pre), nil
	}
	pre, err := Preprocess(p2.Reduce(), s.rebuildOpts(opts)...)
	if err != nil {
		return nil, err
	}
	return newFlatSnapshot(epoch, p2, pre), nil
}

// rebuildOpts wraps caller options for a full-rebuild patch path so the
// result stays self-sustaining regardless of what the caller passed: the
// room always fits the preprocessing cap, and a receiver that retained
// its crossing list keeps retention across the rebuild. Caller options
// come last and still override.
func (s *Snapshot) rebuildOpts(opts []PreprocessOption) []PreprocessOption {
	out := []PreprocessOption{WithMaxMachines(s.profile.Size())}
	if s.pre.PatchSupported() {
		out = append(out, WithPatchSupport())
	}
	return append(out, opts...)
}

// PatchSupported reports whether the snapshot retained its crossing list
// (built with WithPatchSupport), i.e. whether Patch splices incrementally
// instead of rebuilding from scratch.
func (s *Snapshot) PatchSupported() bool { return s.pre.PatchSupported() }

// RetainedCrossings returns the length of the retained sorted crossing
// list — zero when the tables were built without WithPatchSupport. This
// is the quantity a splice-patch must filter and merge, so it is the
// input to the engine's patch-versus-rebuild cost advisor.
func (pp *Preprocessed) RetainedCrossings() int { return len(pp.crossings) }

// patch rebuilds the tables for r2 — the receiver's reduced instance with
// the listed machines' pairs replaced — by splicing the crossing list:
// keep the (bit-identical) crossings of undrifted pairs, regenerate the
// k·n crossings with a drifted endpoint, merge, and re-run the standard
// sweep. The caller guarantees the receiver retained its crossings.
func (pp *Preprocessed) patch(r2 Reduced, ids []int, cfg preprocessConfig) (*Preprocessed, error) {
	pairs := r2.Pairs
	n := len(pairs)
	driftedMask := make([]bool, n)
	for _, id := range ids {
		// Undrifted pairs passed this check at the original build.
		if pairs[id].B <= 0 {
			return nil, fmt.Errorf("core: pair %d has non-positive speed b = %v", id, pairs[id].B)
		}
		driftedMask[id] = true
	}

	kept := make([]crossing, 0, len(pp.crossings))
	for _, c := range pp.crossings {
		if driftedMask[c.p] || driftedMask[c.q] {
			continue
		}
		kept = append(kept, c)
	}

	// Regenerate with collectEvents' exact arithmetic (p < q, same
	// division) so every time is what a fresh generation would produce.
	// A pair of two drifted machines is generated once, from the smaller.
	fresh := make([]crossing, 0, len(ids)*n)
	for _, id := range ids {
		for j := 0; j < n; j++ {
			if j == id || (driftedMask[j] && j < id) {
				continue
			}
			p, q := id, j
			if q < p {
				p, q = q, p
			}
			db := pairs[q].B - pairs[p].B
			if db == 0 {
				continue // parallel particles never pass
			}
			t := (pairs[q].A - pairs[p].A) / db
			if t > 0 {
				fresh = append(fresh, crossing{t: t, p: int32(p), q: int32(q)})
			}
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].t < fresh[j].t })

	// Merge the two sorted lists. The merged order can permute exact-time
	// ties relative to a fresh full sort, which is harmless: grouping
	// depends only on the time sequence and the sweep only on each
	// event's crossing set.
	merged := make([]crossing, 0, len(kept)+len(fresh))
	i, j := 0, 0
	for i < len(kept) && j < len(fresh) {
		if kept[i].t <= fresh[j].t {
			merged = append(merged, kept[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	merged = append(merged, kept[i:]...)
	merged = append(merged, fresh[j:]...)

	events, bucketEnd := groupCrossings(merged)
	out := &Preprocessed{reduced: r2, events: events, crossings: merged}
	out.buildSegments(merged, bucketEnd, cfg.workers)
	return out, nil
}

// Patch returns a new deep-frozen pod snapshot with the drifted machines'
// coefficients replaced, tagged with the next epoch. Only the pods
// containing drifted machines rebuild their kinetic tables — all of them
// when the batch carries power-model drift, since every K_i moves — and
// every other pod shares its segment and front-set arenas with the
// receiver, with the cheap Eq. 21–22 aggregates (sums, shares,
// share-scaled cooling leverage) re-derived for all pods with
// NewPodSnapshot's exact loops. The planner tree is rebuilt to the
// receiver's shape (same leaves, same depth). The result is byte-for-byte
// identical to NewPodSnapshot(patched profile, epoch+1,
// WithPodCount(ps.Pods()), WithPodDepth(receiver's depth)). The partition
// is inherited from the receiver — WithPodSize/WithPodCount/WithPodDepth
// options are ignored; WithPodBuildWorkers and WithPodBuildCheck apply to
// the touched-pod rebuilds.
func (ps *PodSnapshot) Patch(drifted []MachineDelta, opts ...PodOption) (*PodSnapshot, error) {
	p2, ids, powerDrift, err := applyDeltas(ps.profile, drifted)
	if err != nil {
		return nil, err
	}
	cfg := podConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}

	out := &PodSnapshot{epoch: ps.epoch + 1, planTree: planTree{profile: p2, depth: ps.depth}}
	out.room = p2.Reduce()
	for _, pr := range out.room.Pairs {
		out.totalB += pr.B
	}
	driftedMask := make([]bool, p2.Size())
	for _, id := range ids {
		driftedMask[id] = true
	}

	var touched []int
	out.pods = make([]*pod, 0, len(ps.pods))
	for j, old := range ps.pods {
		// makeLeaf re-derives the aggregates with the same loop
		// NewPodSnapshot runs, so the sums accumulate in the same order.
		npd := makeLeaf(out.room, p2, old.ids, out.totalB)
		rebuild := powerDrift
		if !rebuild {
			for _, id := range old.ids {
				if driftedMask[id] {
					rebuild = true
					break
				}
			}
		}
		if rebuild {
			touched = append(touched, j)
		} else {
			// The kinetic tables depend only on the pod's pairs, all
			// unchanged here — share the arenas, re-head the reduced
			// scalars (the share did change).
			pre := *old.pre
			pre.reduced = npd.reduced
			npd.pre = &pre
		}
		out.pods = append(out.pods, npd)
	}
	out.root = buildUnitTree(out.pods, 0, len(out.pods), out.depth)
	if err := out.buildPodsFor(touched, cfg.workers, cfg.buildCheck); err != nil {
		return nil, err
	}
	return out, nil
}

// PodIndex returns the index of the pod containing machine id. Pods
// partition the room into contiguous ascending ranges, so this is a
// binary search over the range starts.
func (ps *PodSnapshot) PodIndex(id int) (int, error) {
	if id < 0 || id >= ps.profile.Size() {
		return 0, fmt.Errorf("core: machine %d outside [0, %d)", id, ps.profile.Size())
	}
	j := sort.Search(len(ps.pods), func(j int) bool {
		ids := ps.pods[j].ids
		return ids[len(ids)-1] >= id
	})
	return j, nil
}
