package core

import (
	"errors"
	"fmt"
	"sort"
)

// This file implements incremental snapshot maintenance: rebuilding a
// frozen Snapshot / PodSnapshot after a few machines' Eq. 8 coefficients
// (and hence their Eq. 19 particle parameters K_i and α_i/β_i) drift,
// without resweeping the whole room.
//
// The contract is strict bit-identity: Patch must produce exactly the
// bytes a from-scratch NewSnapshot/NewPodSnapshot over the patched
// profile would — tables, arena ranks, and every plan computed on them.
// That rules out value-level shortcuts (float sums are order-dependent,
// so "subtract the old A, add the new one" drifts by ulps) and dictates
// the structure-level one used here:
//
//   - Flat tables. A drifted machine changes only the crossing times of
//     the ~n pairs it participates in; the other ~n²/2 crossing times are
//     computed from unchanged inputs and are bit-identical. With the
//     sorted crossing list retained (WithPatchSupport), Patch filters out
//     the drifted pairs' entries, regenerates and sorts only the k·n new
//     ones, merges the two sorted lists in O(n²) — skipping both the
//     O(n²) pair generation and the dominant O(n² lg n) full sort — and
//     re-runs the standard sweep. The sweep's output depends only on the
//     sorted time sequence and the per-event crossing sets (span merging
//     is order-independent inside an event), so the result matches a
//     fresh build bit for bit. This path cuts the constant, not the
//     asymptotics: the sweep itself is still O(n²).
//
//   - Pod tables. This is the fast path, and the reason the hierarchy
//     pays twice: a drifted machine sits in exactly one pod, so only that
//     pod's O((n/p)²) kinetic tables rebuild; every other pod's segment
//     and front-set arenas are shared with the old snapshot by reference.
//     The Eq. 21–22 aggregates (A_j, B_j, shares, the share-scaled
//     cooling leverage Rho_j) are all O(n) scalars re-derived with the
//     exact loops NewPodSnapshot runs, so they too are bit-identical —
//     shares shift for every pod when any machine's B drifts, but the
//     kinetic tables depend only on the pod's own pairs, which is why
//     sharing the untouched arenas is safe.

// MachineDelta is one machine's re-profiled Eq. 8 coefficients, the unit
// of drift the recursive-least-squares refresher (internal/profiling)
// emits and Patch consumes.
type MachineDelta struct {
	// ID is the machine whose coefficients drifted.
	ID int `json:"id"`
	// Machine carries the full replacement coefficients (not increments),
	// so a delta batch is idempotent to apply.
	Machine MachineProfile `json:"machine"`
}

// ErrBadDelta reports a drift batch Patch refuses to apply: a machine ID
// outside the room, the same machine drifted twice in one batch, or
// coefficients that fail profile validation (non-positive α/β, K ≤ 0).
// Wrap-compare with errors.Is.
var ErrBadDelta = errors.New("core: bad drift delta")

// applyDeltas returns a validated deep copy of p with the deltas applied,
// plus the sorted drifted IDs. An empty batch yields a plain copy.
func applyDeltas(p *Profile, drifted []MachineDelta) (*Profile, []int, error) {
	frozen := *p
	frozen.Machines = append([]MachineProfile(nil), p.Machines...)
	ids := make([]int, 0, len(drifted))
	seen := make(map[int]bool, len(drifted))
	for _, d := range drifted {
		if d.ID < 0 || d.ID >= len(frozen.Machines) {
			return nil, nil, fmt.Errorf("%w: machine %d outside [0, %d)", ErrBadDelta, d.ID, len(frozen.Machines))
		}
		if seen[d.ID] {
			return nil, nil, fmt.Errorf("%w: machine %d drifted twice in one batch", ErrBadDelta, d.ID)
		}
		seen[d.ID] = true
		frozen.Machines[d.ID] = d.Machine
		ids = append(ids, d.ID)
	}
	if err := frozen.Validate(); err != nil {
		return nil, nil, fmt.Errorf("%w: patched profile rejected: %w", ErrBadDelta, err)
	}
	sort.Ints(ids)
	return &frozen, ids, nil
}

// Patch returns a new deep-frozen snapshot with the drifted machines'
// coefficients replaced and the consolidation tables updated, tagged with
// the next epoch. The result is byte-for-byte identical to
// NewSnapshot(patched profile, epoch+1, same options) — the differential
// battery in patch_test.go enforces this — but skips the O(n²) pair
// generation and the O(n² lg n) crossing sort when the receiver retained
// its crossing list (WithPatchSupport); without retention it falls back
// to a full rebuild. An empty batch shares the receiver's tables
// outright. Options forward to the rebuild exactly like NewSnapshot's;
// the worker count must match the original build's for bit-identity
// (worker-count changes can shift results by ulps either way).
func (s *Snapshot) Patch(drifted []MachineDelta, opts ...PreprocessOption) (*Snapshot, error) {
	p2, ids, err := applyDeltas(s.profile, drifted)
	if err != nil {
		return nil, err
	}
	epoch := s.epoch + 1
	if len(ids) == 0 {
		return &Snapshot{epoch: epoch, profile: p2, pre: s.pre}, nil
	}
	cfg := preprocessConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if !s.pre.PatchSupported() {
		pre, err := Preprocess(p2.Reduce(), opts...)
		if err != nil {
			return nil, err
		}
		return &Snapshot{epoch: epoch, profile: p2, pre: pre}, nil
	}
	pre, err := s.pre.patch(p2.Reduce(), ids, cfg)
	if err != nil {
		return nil, err
	}
	return &Snapshot{epoch: epoch, profile: p2, pre: pre}, nil
}

// PatchSupported reports whether the snapshot retained its crossing list
// (built with WithPatchSupport), i.e. whether Patch splices incrementally
// instead of rebuilding from scratch.
func (s *Snapshot) PatchSupported() bool { return s.pre.PatchSupported() }

// patch rebuilds the tables for r2 — the receiver's reduced instance with
// the listed machines' pairs replaced — by splicing the crossing list:
// keep the (bit-identical) crossings of undrifted pairs, regenerate the
// k·n crossings with a drifted endpoint, merge, and re-run the standard
// sweep. The caller guarantees the receiver retained its crossings.
func (pp *Preprocessed) patch(r2 Reduced, ids []int, cfg preprocessConfig) (*Preprocessed, error) {
	pairs := r2.Pairs
	n := len(pairs)
	driftedMask := make([]bool, n)
	for _, id := range ids {
		// Undrifted pairs passed this check at the original build.
		if pairs[id].B <= 0 {
			return nil, fmt.Errorf("core: pair %d has non-positive speed b = %v", id, pairs[id].B)
		}
		driftedMask[id] = true
	}

	kept := make([]crossing, 0, len(pp.crossings))
	for _, c := range pp.crossings {
		if driftedMask[c.p] || driftedMask[c.q] {
			continue
		}
		kept = append(kept, c)
	}

	// Regenerate with collectEvents' exact arithmetic (p < q, same
	// division) so every time is what a fresh generation would produce.
	// A pair of two drifted machines is generated once, from the smaller.
	fresh := make([]crossing, 0, len(ids)*n)
	for _, id := range ids {
		for j := 0; j < n; j++ {
			if j == id || (driftedMask[j] && j < id) {
				continue
			}
			p, q := id, j
			if q < p {
				p, q = q, p
			}
			db := pairs[q].B - pairs[p].B
			if db == 0 {
				continue // parallel particles never pass
			}
			t := (pairs[q].A - pairs[p].A) / db
			if t > 0 {
				fresh = append(fresh, crossing{t: t, p: int32(p), q: int32(q)})
			}
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].t < fresh[j].t })

	// Merge the two sorted lists. The merged order can permute exact-time
	// ties relative to a fresh full sort, which is harmless: grouping
	// depends only on the time sequence and the sweep only on each
	// event's crossing set.
	merged := make([]crossing, 0, len(kept)+len(fresh))
	i, j := 0, 0
	for i < len(kept) && j < len(fresh) {
		if kept[i].t <= fresh[j].t {
			merged = append(merged, kept[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	merged = append(merged, kept[i:]...)
	merged = append(merged, fresh[j:]...)

	events, bucketEnd := groupCrossings(merged)
	out := &Preprocessed{reduced: r2, events: events, crossings: merged}
	out.buildSegments(merged, bucketEnd, cfg.workers)
	return out, nil
}

// Patch returns a new deep-frozen pod snapshot with the drifted machines'
// coefficients replaced, tagged with the next epoch. Only the pods
// containing drifted machines rebuild their kinetic tables; every other
// pod shares its segment and front-set arenas with the receiver, with the
// cheap Eq. 21–22 aggregates (sums, shares, share-scaled cooling
// leverage) re-derived for all pods with NewPodSnapshot's exact loops.
// The result is byte-for-byte identical to NewPodSnapshot(patched
// profile, epoch+1, WithPodCount(ps.Pods())). The partition is inherited
// from the receiver — WithPodSize/WithPodCount options are ignored;
// WithPodBuildWorkers and WithPodBuildCheck apply to the touched-pod
// rebuilds.
func (ps *PodSnapshot) Patch(drifted []MachineDelta, opts ...PodOption) (*PodSnapshot, error) {
	p2, ids, err := applyDeltas(ps.profile, drifted)
	if err != nil {
		return nil, err
	}
	cfg := podConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}

	out := &PodSnapshot{epoch: ps.epoch + 1, profile: p2, room: p2.Reduce()}
	for _, pr := range out.room.Pairs {
		out.totalB += pr.B
	}
	driftedMask := make([]bool, p2.Size())
	for _, id := range ids {
		driftedMask[id] = true
	}

	var touched []int
	out.pods = make([]*pod, 0, len(ps.pods))
	for j, old := range ps.pods {
		// Re-derive the aggregates with the same loop NewPodSnapshot runs
		// so the sums accumulate in the same order.
		var sumA, sumB float64
		pairs := make([]Pair, len(old.ids))
		rebuild := false
		for i, id := range old.ids {
			pairs[i] = out.room.Pairs[id]
			sumA += pairs[i].A
			sumB += pairs[i].B
			if driftedMask[id] {
				rebuild = true
			}
		}
		share := sumB / out.totalB
		npd := &pod{
			ids:   old.ids,
			sumA:  sumA,
			sumB:  sumB,
			share: share,
			reduced: Reduced{
				Pairs:      pairs,
				W2:         p2.W2,
				Rho:        p2.CoolFactor * p2.W1 * share,
				CoolFactor: p2.CoolFactor * share,
				SetPointC:  p2.SetPointC,
				W1:         p2.W1,
			},
			bounds: clampBounds{
				W1: p2.W1, W2: p2.W2,
				CoolFactor: p2.CoolFactor * share,
				SetPointC:  p2.SetPointC,
				TAcMinC:    p2.TAcMinC,
				TAcMaxC:    p2.TAcMaxC,
			},
		}
		if rebuild {
			touched = append(touched, j)
		} else {
			// The kinetic tables depend only on the pod's pairs, all
			// unchanged here — share the arenas, re-head the reduced
			// scalars (the share did change).
			pre := *old.pre
			pre.reduced = npd.reduced
			npd.pre = &pre
		}
		out.pods = append(out.pods, npd)
	}
	if err := out.buildPodsFor(touched, cfg.workers, cfg.buildCheck); err != nil {
		return nil, err
	}
	return out, nil
}

// PodIndex returns the index of the pod containing machine id. Pods
// partition the room into contiguous ascending ranges, so this is a
// binary search over the range starts.
func (ps *PodSnapshot) PodIndex(id int) (int, error) {
	if id < 0 || id >= ps.profile.Size() {
		return 0, fmt.Errorf("core: machine %d outside [0, %d)", id, ps.profile.Size())
	}
	j := sort.Search(len(ps.pods), func(j int) bool {
		ids := ps.pods[j].ids
		return ids[len(ids)-1] >= id
	})
	return j, nil
}
