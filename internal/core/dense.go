package core

import (
	"coolopt/internal/mathx"
	"fmt"
	"math"
	"sort"
)

// This file retains the seed's dense materialization of Algorithm 1 — a
// full re-sort at every event and O(n³) order/prefix/status tables — as
// the correctness oracle and performance baseline for the compressed
// kinetic implementation in particle.go/kinetic.go. Cross-check tests
// assert that both produce byte-identical selections; benchmarks compare
// their time and resident table memory.

// DensePreprocessed is the dense output of Algorithm 1 (the paper's
// literal tables). Prefer Preprocessed for anything beyond a few hundred
// machines.
type DensePreprocessed struct {
	reduced Reduced
	// events holds the sorted distinct event times, starting with 0.
	events []float64
	// orders[e] lists machine IDs by decreasing coordinate immediately
	// after events[e].
	orders [][]int
	// prefixA[e][k] and prefixB[e][k] are Σ a and Σ b over the k
	// front-most machines of orders[e] (index 0 holds 0).
	prefixA [][]float64
	prefixB [][]float64
	// statuses is allStatus sorted by increasing LMax (Algorithm 1,
	// line 27), with deterministic (LMax, K, T) tie-breaking.
	statuses []Status
}

// PreprocessDense runs the dense form of Algorithm 1 on the reduced
// instance: O(n³ lg n) time and O(n³) memory, capped at DenseMaxMachines
// by default (see WithMaxMachines).
func PreprocessDense(r Reduced, opts ...PreprocessOption) (*DensePreprocessed, error) {
	cfg := preprocessConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.maxMachines <= 0 {
		cfg.maxMachines = DenseMaxMachines
	}
	n := len(r.Pairs)
	if n == 0 {
		return nil, fmt.Errorf("core: no pairs")
	}
	if n > cfg.maxMachines {
		return nil, fmt.Errorf("core: dense preprocess capped at %d machines, got %d (the dense tables are O(n³) in machines; use Preprocess, or raise the cap with WithMaxMachines if the memory budget allows)",
			cfg.maxMachines, n)
	}
	for i, p := range r.Pairs {
		if p.B <= 0 {
			return nil, fmt.Errorf("core: pair %d has non-positive speed b = %v", i, p.B)
		}
	}

	// Algorithm 1, lines 1–9: collect all positive pairwise passing
	// times t_pq = (a_q − a_p)/(b_q − b_p).
	events := []float64{0}
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			db := r.Pairs[q].B - r.Pairs[p].B
			if db == 0 {
				continue // parallel particles never pass
			}
			t := (r.Pairs[q].A - r.Pairs[p].A) / db
			if t > 0 {
				events = append(events, t)
			}
		}
	}
	sort.Float64s(events)
	events = dedupeSorted(events)

	pp := &DensePreprocessed{
		reduced: r,
		events:  events,
		orders:  make([][]int, len(events)),
		prefixA: make([][]float64, len(events)),
		prefixB: make([][]float64, len(events)),
	}
	pp.statuses = make([]Status, 0, len(events)*n)

	// Algorithm 1, lines 10–26: order after each event and the k-prefix
	// coordinate sums at the event time. The order is constant on the
	// open interval between consecutive events, so it is sampled at the
	// interval midpoint — numerically robust where sampling exactly at
	// the event time would tie the crossing particles' coordinates.
	for e, t := range events {
		order := orderAt(r.Pairs, sampleTimeOf(events, e))
		prefA := make([]float64, n+1)
		prefB := make([]float64, n+1)
		for k := 1; k <= n; k++ {
			i := order[k-1]
			prefA[k] = prefA[k-1] + r.Pairs[i].A
			prefB[k] = prefB[k-1] + r.Pairs[i].B
			pp.statuses = append(pp.statuses, Status{
				T:    t,
				K:    k,
				LMax: prefA[k] - t*prefB[k],
			})
		}
		pp.orders[e] = order
		pp.prefixA[e] = prefA
		pp.prefixB[e] = prefB
	}

	// Algorithm 1, line 27: sort allStatus by increasing Lmax, with
	// deterministic tie-breaking so the compressed implementation can be
	// cross-checked byte for byte.
	sort.Slice(pp.statuses, func(i, j int) bool {
		si, sj := pp.statuses[i], pp.statuses[j]
		if !mathx.Same(si.LMax, sj.LMax) {
			return si.LMax < sj.LMax
		}
		if si.K != sj.K {
			return si.K < sj.K
		}
		return si.T < sj.T
	})
	return pp, nil
}

func dedupeSorted(xs []float64) []float64 {
	out := xs[:0]
	for i, v := range xs {
		if i == 0 || !mathx.Same(v, out[len(out)-1]) {
			out = append(out, v)
		}
	}
	return out
}

// Events returns the number of distinct event times (including t = 0).
func (pp *DensePreprocessed) Events() int { return len(pp.events) }

// StatusCount returns the size of the allStatus table.
func (pp *DensePreprocessed) StatusCount() int { return len(pp.statuses) }

// TableBytes returns the resident size of the retained tables (events,
// orders, prefix sums, statuses) in bytes, excluding slice-header
// overhead.
func (pp *DensePreprocessed) TableBytes() int {
	total := len(pp.events) * 8
	for e := range pp.orders {
		total += len(pp.orders[e])*8 + len(pp.prefixA[e])*8 + len(pp.prefixB[e])*8
	}
	total += len(pp.statuses) * 24
	return total
}

// OrderAtEvent returns the stored machine order on event interval e.
func (pp *DensePreprocessed) OrderAtEvent(e int) ([]int, error) {
	if e < 0 || e >= len(pp.events) {
		return nil, fmt.Errorf("core: event %d outside [0, %d)", e, len(pp.events))
	}
	return append([]int(nil), pp.orders[e]...), nil
}

// Query is Algorithm 2 verbatim: binary-search allStatus for the first
// entry whose LMax exceeds the load, and return the corresponding k
// front-most machines of the order at that entry's event time.
func (pp *DensePreprocessed) Query(load float64) (Selection, error) {
	idx := sort.Search(len(pp.statuses), func(i int) bool {
		return pp.statuses[i].LMax > load
	})
	if idx == len(pp.statuses) {
		return Selection{}, fmt.Errorf("%w: load %v exceeds every status", ErrInfeasible, load)
	}
	st := pp.statuses[idx]
	e := pp.eventIndex(st.T)
	subset := append([]int(nil), pp.orders[e][:st.K]...)
	sort.Ints(subset)
	t, err := pp.reduced.TValue(subset, load)
	if err != nil {
		return Selection{}, err
	}
	power := float64(st.K)*pp.reduced.W2 - pp.reduced.Rho*t + pp.reduced.Theta(load)
	return Selection{Subset: subset, T: t, Power: power}, nil
}

// QueryExact returns the provably power-optimal on-set of size ≥ minK for
// the given load, restricted (like the paper) to the t ≥ 0 regime. See
// Preprocessed.QueryExact.
func (pp *DensePreprocessed) QueryExact(load float64, minK int) (Selection, error) {
	if minK < 1 {
		minK = 1
	}
	n := len(pp.reduced.Pairs)
	best := Selection{Power: math.Inf(1)}
	for k := minK; k <= n; k++ {
		t, e, ok := pp.bestTimeFor(k, load)
		if !ok {
			continue
		}
		power := float64(k)*pp.reduced.W2 - pp.reduced.Rho*t + pp.reduced.Theta(load)
		if power < best.Power-1e-12 || (math.Abs(power-best.Power) <= 1e-12 && k < len(best.Subset)) {
			subset := append([]int(nil), pp.orders[e][:k]...)
			sort.Ints(subset)
			best = Selection{Subset: subset, T: t, Power: power}
		}
	}
	if math.IsInf(best.Power, 1) {
		return Selection{}, fmt.Errorf("%w: no feasible subset of size ≥ %d at t ≥ 0", ErrInfeasible, minK)
	}
	return best, nil
}

// QueryExactK returns the power-optimal subset of exactly k machines for
// the given load (t ≥ 0 regime). See Preprocessed.QueryExactK.
func (pp *DensePreprocessed) QueryExactK(load float64, k int) (Selection, error) {
	n := len(pp.reduced.Pairs)
	if k < 1 || k > n {
		return Selection{}, fmt.Errorf("core: k = %d outside [1, %d]", k, n)
	}
	t, e, ok := pp.bestTimeFor(k, load)
	if !ok {
		return Selection{}, fmt.Errorf("%w: no %d-subset carries load %v at t ≥ 0", ErrInfeasible, k, load)
	}
	subset := append([]int(nil), pp.orders[e][:k]...)
	sort.Ints(subset)
	power := float64(k)*pp.reduced.W2 - pp.reduced.Rho*t + pp.reduced.Theta(load)
	return Selection{Subset: subset, T: t, Power: power}, nil
}

// bestTimeFor returns the largest t ≥ 0 at which the k front-most
// particles still carry load, together with the index of the event
// interval containing t. ok is false when even t = 0 is infeasible for
// this k.
func (pp *DensePreprocessed) bestTimeFor(k int, load float64) (t float64, event int, ok bool) {
	sumAt := func(e int) float64 {
		return pp.prefixA[e][k] - pp.events[e]*pp.prefixB[e][k]
	}
	if sumAt(0) < load {
		return 0, 0, false
	}
	// Find the last event whose k-prefix sum still covers the load;
	// sums at event times are non-increasing in the event index.
	lo, hi := 0, len(pp.events)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if sumAt(mid) >= load {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	e := lo
	// Within [events[e], events[e+1]) the order is orders[e]; solve
	// prefA − t·prefB = load.
	tStar := (pp.prefixA[e][k] - load) / pp.prefixB[e][k]
	if tStar < pp.events[e] {
		tStar = pp.events[e]
	}
	if e+1 < len(pp.events) && tStar > pp.events[e+1] {
		tStar = pp.events[e+1]
	}
	return tStar, e, true
}

// eventIndex locates an event time recorded during preprocessing.
func (pp *DensePreprocessed) eventIndex(t float64) int {
	idx := sort.SearchFloat64s(pp.events, t)
	if idx == len(pp.events) || !mathx.Same(pp.events[idx], t) {
		// Status times always come from the event list; fall back to
		// the interval containing t if floating-point drift crept in.
		if idx > 0 {
			idx--
		}
	}
	return idx
}
