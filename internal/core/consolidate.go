package core

import (
	"coolopt/internal/mathx"
	"fmt"
	"math"
	"sort"
)

// Pair is the reduced per-machine description of paper §III-B:
// a_i = K_i and b_i = α_i/β_i. Consolidation works entirely on pairs.
type Pair struct {
	A float64 `json:"a"`
	B float64 `json:"b"`
}

// Reduced is the consolidation instance extracted from a profile. Given a
// subset S with |S| = k serving load L, the model's total power is
//
//	P(S) = k·W2 − Rho·t_S + Theta(L),  t_S = (Σ_S a_i − L)/(Σ_S b_i)
//
// (paper Eqs. 23–24), so minimizing power for fixed k means maximizing
// t_S — the select(A, k, L) problem.
type Reduced struct {
	Pairs []Pair
	// W2 is the per-machine idle power in Watts.
	W2 float64
	// Rho = CoolFactor·W1 in Watts per t-unit.
	Rho float64
	// CoolFactor and SetPointC are carried along to evaluate Theta.
	CoolFactor float64
	SetPointC  float64
	W1         float64
}

// Reduce extracts the consolidation instance from a profile.
func (p *Profile) Reduce() Reduced {
	pairs := make([]Pair, p.Size())
	for i := range pairs {
		pairs[i] = Pair{A: p.K(i), B: p.RatioAB(i)}
	}
	return Reduced{
		Pairs:      pairs,
		W2:         p.W2,
		Rho:        p.CoolFactor * p.W1,
		CoolFactor: p.CoolFactor,
		SetPointC:  p.SetPointC,
		W1:         p.W1,
	}
}

// Theta returns θ = c·f_ac·T_SP + w1·L, the subset-independent part of
// Eq. 23.
func (r Reduced) Theta(load float64) float64 {
	return r.CoolFactor*r.SetPointC + r.W1*load
}

// TValue returns t_S for the given subset and load. The subset must be
// non-empty.
func (r Reduced) TValue(subset []int, load float64) (float64, error) {
	if len(subset) == 0 {
		return 0, fmt.Errorf("core: empty subset")
	}
	var sumA, sumB float64
	for _, i := range subset {
		if i < 0 || i >= len(r.Pairs) {
			return 0, fmt.Errorf("core: index %d out of range", i)
		}
		sumA += r.Pairs[i].A
		sumB += r.Pairs[i].B
	}
	return (sumA - load) / sumB, nil
}

// SubsetPower returns the model's total power for a subset serving load
// (Eq. 23).
func (r Reduced) SubsetPower(subset []int, load float64) (float64, error) {
	t, err := r.TValue(subset, load)
	if err != nil {
		return 0, err
	}
	return float64(len(subset))*r.W2 - r.Rho*t + r.Theta(load), nil
}

// Selection is the outcome of a consolidation algorithm.
type Selection struct {
	// Subset lists the chosen machine IDs in ascending order.
	Subset []int
	// T is the subset's t-value at the given load.
	T float64
	// Power is the model's total power (Eq. 23).
	Power float64
}

// BruteForce enumerates every subset of size ≥ minK — O(n·2ⁿ), the naive
// algorithm §III-B dismisses — and returns the power-optimal selection.
// It is the oracle the fast algorithms are tested against and only
// accepts n ≤ 24. minK lets callers enforce the physical capacity floor
// k ≥ ⌈load⌉ (each machine holds at most one utilization unit); pass 1 for
// the paper's uncapacitated formulation.
func (r Reduced) BruteForce(load float64, minK int) (Selection, error) {
	n := len(r.Pairs)
	if n == 0 {
		return Selection{}, fmt.Errorf("core: no pairs")
	}
	if n > 24 {
		return Selection{}, fmt.Errorf("core: brute force limited to 24 machines, got %d", n)
	}
	if minK < 1 {
		minK = 1
	}
	best := Selection{Power: math.Inf(1)}
	found := false
	for mask := 1; mask < 1<<uint(n); mask++ {
		var sumA, sumB float64
		k := 0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sumA += r.Pairs[i].A
				sumB += r.Pairs[i].B
				k++
			}
		}
		if k < minK {
			continue
		}
		t := (sumA - load) / sumB
		power := float64(k)*r.W2 - r.Rho*t + r.Theta(load)
		if power < best.Power-1e-12 || (math.Abs(power-best.Power) <= 1e-12 && k < len(best.Subset)) {
			subset := make([]int, 0, k)
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					subset = append(subset, i)
				}
			}
			best = Selection{Subset: subset, T: t, Power: power}
			found = true
		}
	}
	if !found {
		return Selection{}, fmt.Errorf("%w: no subset of size ≥ %d", ErrInfeasible, minK)
	}
	return best, nil
}

// GreedyRatio is the first footnote-1 heuristic: sort machines by
// decreasing a_i/b_i and take the first k, for each feasible k, keeping
// the cheapest. The paper's counterexample shows it is not optimal.
func (r Reduced) GreedyRatio(load float64, minK int) (Selection, error) {
	n := len(r.Pairs)
	if n == 0 {
		return Selection{}, fmt.Errorf("core: no pairs")
	}
	if minK < 1 {
		minK = 1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		rx := r.Pairs[order[x]].A / r.Pairs[order[x]].B
		ry := r.Pairs[order[y]].A / r.Pairs[order[y]].B
		if !mathx.Same(rx, ry) {
			return rx > ry
		}
		return order[x] < order[y]
	})
	return r.bestPrefix(order, load, minK)
}

// GreedyAdaptive is the second footnote-1 heuristic: start from the
// machine with the largest a_i/b_i, then repeatedly add the machine that
// maximizes the resulting t, recording the best stop point ≥ minK.
func (r Reduced) GreedyAdaptive(load float64, minK int) (Selection, error) {
	n := len(r.Pairs)
	if n == 0 {
		return Selection{}, fmt.Errorf("core: no pairs")
	}
	if minK < 1 {
		minK = 1
	}
	used := make([]bool, n)
	first := 0
	for i := 1; i < n; i++ {
		if r.Pairs[i].A/r.Pairs[i].B > r.Pairs[first].A/r.Pairs[first].B {
			first = i
		}
	}
	used[first] = true
	sumA, sumB := r.Pairs[first].A, r.Pairs[first].B
	chosen := []int{first}

	best := Selection{Power: math.Inf(1)}
	record := func() {
		k := len(chosen)
		if k < minK {
			return
		}
		t := (sumA - load) / sumB
		power := float64(k)*r.W2 - r.Rho*t + r.Theta(load)
		if power < best.Power {
			subset := append([]int(nil), chosen...)
			sort.Ints(subset)
			best = Selection{Subset: subset, T: t, Power: power}
		}
	}
	record()
	for len(chosen) < n {
		bestNext, bestT := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			t := (sumA + r.Pairs[i].A - load) / (sumB + r.Pairs[i].B)
			if t > bestT {
				bestT = t
				bestNext = i
			}
		}
		used[bestNext] = true
		sumA += r.Pairs[bestNext].A
		sumB += r.Pairs[bestNext].B
		chosen = append(chosen, bestNext)
		record()
	}
	if math.IsInf(best.Power, 1) {
		return Selection{}, fmt.Errorf("%w: no subset of size ≥ %d", ErrInfeasible, minK)
	}
	return best, nil
}

// bestPrefix evaluates every prefix of the given machine order with length
// ≥ minK and returns the cheapest.
func (r Reduced) bestPrefix(order []int, load float64, minK int) (Selection, error) {
	best := Selection{Power: math.Inf(1)}
	var sumA, sumB float64
	for k := 1; k <= len(order); k++ {
		i := order[k-1]
		sumA += r.Pairs[i].A
		sumB += r.Pairs[i].B
		if k < minK {
			continue
		}
		t := (sumA - load) / sumB
		power := float64(k)*r.W2 - r.Rho*t + r.Theta(load)
		if power < best.Power {
			subset := append([]int(nil), order[:k]...)
			sort.Ints(subset)
			best = Selection{Subset: subset, T: t, Power: power}
		}
	}
	if math.IsInf(best.Power, 1) {
		return Selection{}, fmt.Errorf("%w: no prefix of size ≥ %d", ErrInfeasible, minK)
	}
	return best, nil
}
