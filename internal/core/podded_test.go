package core

import (
	"math"
	"testing"
)

// hierProfile builds a heterogeneous room in the paper's parameter regime
// with deterministic per-machine jitter, large enough that pods see
// genuinely different machine mixes.
func hierProfile(n int) *Profile {
	machines := make([]MachineProfile, n)
	for i := range machines {
		h := float64(i) / float64(n)
		jitter := 0.05 * math.Sin(float64(i)*2.399963)
		machines[i] = MachineProfile{
			Alpha: 1.0,
			Beta:  0.46 * (1 + 0.1*h + jitter),
			Gamma: 0.5 + 2.2*h - 10*jitter,
		}
	}
	return &Profile{
		W1: 52, W2: 34, CoolFactor: 150, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}
}

// hierPodSize keeps p = 16 pods at the sizes the gap bound is declared
// for (p = 4 below 256 machines, where 16 pods would be degenerate).
func hierPodSize(n int) int {
	if n < 256 {
		return n / 4
	}
	return n / 16
}

// TestPodSnapshotSinglePodMatchesExact is the p = 1 equivalence property:
// one pod means the allocator hands the whole load to the whole room and
// the pod's scoring bounds are the profile's own, so the hierarchical
// planner must reproduce the flat planner bit for bit.
func TestPodSnapshotSinglePodMatchesExact(t *testing.T) {
	const n = 64
	p := hierProfile(n)
	exact, err := NewSnapshot(p, 0, WithPreprocessWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	hier, err := NewPodSnapshot(p, 0, WithPodCount(1), WithPodBuildWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if hier.Pods() != 1 {
		t.Fatalf("pod count = %d, want 1", hier.Pods())
	}
	for _, frac := range []float64{0.03, 0.1, 0.25, 0.5, 0.75, 0.9} {
		load := frac * n
		want, err := exact.Plan(load)
		if err != nil {
			t.Fatalf("exact plan load %v: %v", load, err)
		}
		got, err := hier.Plan(load)
		if err != nil {
			t.Fatalf("hierarchical plan load %v: %v", load, err)
		}
		if len(got.On) != len(want.On) {
			t.Fatalf("load %v: on sets sized %d vs %d", load, len(got.On), len(want.On))
		}
		for i := range got.On {
			if got.On[i] != want.On[i] {
				t.Fatalf("load %v: on[%d] = %d vs %d", load, i, got.On[i], want.On[i])
			}
		}
		for i := range got.Loads {
			if math.Float64bits(got.Loads[i]) != math.Float64bits(want.Loads[i]) {
				t.Fatalf("load %v: machine %d load %v vs %v (not bit-identical)",
					load, i, got.Loads[i], want.Loads[i])
			}
		}
		if math.Float64bits(float64(got.TAcC)) != math.Float64bits(float64(want.TAcC)) {
			t.Fatalf("load %v: TAcC %v vs %v", load, got.TAcC, want.TAcC)
		}
	}
}

// TestHierarchicalGapBound measures the hierarchical planner's optimality
// gap against the exact planner across a load sweep and enforces the
// declared bound: mean ≤ 1 %, worst case ≤ 5 %, and the hierarchy never
// beats the exact optimum (which would mean the exact planner is broken).
func TestHierarchicalGapBound(t *testing.T) {
	sizes := []int{64, 256, 1024}
	if !testing.Short() && !raceEnabled {
		sizes = append(sizes, 4096)
	}
	for _, n := range sizes {
		p := hierProfile(n)
		exact, err := NewSnapshot(p, 0, WithMaxMachines(n))
		if err != nil {
			t.Fatal(err)
		}
		hier, err := NewPodSnapshot(p, 0, WithPodSize(hierPodSize(n)))
		if err != nil {
			t.Fatal(err)
		}
		var sum, worst float64
		var count int
		for _, frac := range []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9} {
			load := frac * float64(n)
			want, err := exact.Plan(load)
			if err != nil {
				t.Fatalf("n=%d exact plan load %v: %v", n, load, err)
			}
			got, err := hier.Plan(load)
			if err != nil {
				t.Fatalf("n=%d hierarchical plan load %v: %v", n, load, err)
			}
			exactW := float64(p.PlanPower(want))
			hierW := float64(p.PlanPower(got))
			gap := (hierW - exactW) / exactW
			if gap < -1e-9 {
				t.Fatalf("n=%d load %v: hierarchical %v W beats exact %v W", n, load, hierW, exactW)
			}
			if gap > worst {
				worst = gap
			}
			sum += gap
			count++
		}
		mean := sum / float64(count)
		t.Logf("n=%d pods=%d: gap mean %.4f%% worst %.4f%%", n, hier.Pods(), 100*mean, 100*worst)
		if worst > 0.05 {
			t.Fatalf("n=%d: worst gap %.4f%% exceeds 5%%", n, 100*worst)
		}
		if mean > 0.01 {
			t.Fatalf("n=%d: mean gap %.4f%% exceeds 1%%", n, 100*mean)
		}
	}
}

// TestPodBuildWorkerInvariance is the determinism property: pod tables
// must be byte-identical regardless of how many outer workers built them,
// because each pod's inner sweep is single-threaded.
func TestPodBuildWorkerInvariance(t *testing.T) {
	const n = 256
	p := hierProfile(n)
	base, err := NewPodSnapshot(p, 0, WithPodSize(32), WithPodBuildWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		other, err := NewPodSnapshot(p, 0, WithPodSize(32), WithPodBuildWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base.Pods() != other.Pods() {
			t.Fatalf("workers=%d: %d pods vs %d", workers, other.Pods(), base.Pods())
		}
		for j := range base.pods {
			a, b := base.pods[j].pre, other.pods[j].pre
			if len(a.events) != len(b.events) || len(a.segA) != len(b.segA) ||
				len(a.posID) != len(b.posID) {
				t.Fatalf("workers=%d pod %d: table shapes differ", workers, j)
			}
			for i := range a.events {
				if math.Float64bits(a.events[i]) != math.Float64bits(b.events[i]) {
					t.Fatalf("workers=%d pod %d: event %d differs", workers, j, i)
				}
			}
			for i := range a.segA {
				if math.Float64bits(a.segA[i]) != math.Float64bits(b.segA[i]) ||
					math.Float64bits(a.segB[i]) != math.Float64bits(b.segB[i]) ||
					a.segEvent[i] != b.segEvent[i] {
					t.Fatalf("workers=%d pod %d: segment %d differs", workers, j, i)
				}
			}
			for i := range a.posID {
				if a.posID[i] != b.posID[i] || a.posEvent[i] != b.posEvent[i] {
					t.Fatalf("workers=%d pod %d: front-arena entry %d differs", workers, j, i)
				}
			}
		}
	}
}

// TestHierarchicalMaxLoad checks the composed budget query: never better
// than the exact answer, self-consistent with the power model, and not
// far behind.
func TestHierarchicalMaxLoad(t *testing.T) {
	const n = 256
	p := hierProfile(n)
	exact, err := NewSnapshot(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := NewPodSnapshot(p, 0, WithPodSize(16))
	if err != nil {
		t.Fatal(err)
	}
	room := p.Reduce()
	for _, budget := range []float64{
		0.2 * float64(n) * (52 + 34),
		0.5 * float64(n) * (52 + 34),
		float64(n)*(52+34) + 150*21,
	} {
		want, err := exact.Tables().MaxLoad(budget)
		if err != nil {
			t.Fatalf("exact maxload(%v): %v", budget, err)
		}
		got, err := hier.MaxLoad(budget)
		if err != nil {
			t.Fatalf("hierarchical maxload(%v): %v", budget, err)
		}
		if got.Load > want.Load*(1+1e-9)+1e-9 {
			t.Fatalf("budget %v: hierarchical load %v beats exact %v", budget, got.Load, want.Load)
		}
		if got.Load < 0.8*want.Load {
			t.Fatalf("budget %v: hierarchical load %v under 80%% of exact %v", budget, got.Load, want.Load)
		}
		power, err := room.SubsetPower(got.Subset, got.Load)
		if err != nil {
			t.Fatal(err)
		}
		if power > budget*(1+1e-9)+1e-6 {
			t.Fatalf("budget %v: reported point draws %v W", budget, power)
		}
		for i := 1; i < len(got.Subset); i++ {
			if got.Subset[i] <= got.Subset[i-1] {
				t.Fatalf("budget %v: subset not strictly ascending at %d", budget, i)
			}
		}
	}
}

// TestPodConsolidateTopUp checks the minK floor: when the hierarchical
// union is smaller than minK the result is topped up deterministically.
func TestPodConsolidateTopUp(t *testing.T) {
	const n = 64
	hier, err := NewPodSnapshot(hierProfile(n), 0, WithPodSize(16))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := hier.Consolidate(2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Subset) != 40 {
		t.Fatalf("consolidate(2, minK=40) picked %d machines", len(sel.Subset))
	}
	for i := 1; i < len(sel.Subset); i++ {
		if sel.Subset[i] <= sel.Subset[i-1] {
			t.Fatalf("subset not strictly ascending at %d", i)
		}
	}
	if math.IsNaN(sel.Power) || math.IsInf(sel.Power, 0) {
		t.Fatalf("power = %v", sel.Power)
	}
	again, err := hier.Consolidate(2, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sel.Subset {
		if sel.Subset[i] != again.Subset[i] {
			t.Fatal("top-up not deterministic")
		}
	}
}

// TestPodSnapshotValidation covers the input edges: bad loads, pod-count
// clamping, and the epoch tag.
func TestPodSnapshotValidation(t *testing.T) {
	hier, err := NewPodSnapshot(hierProfile(8), 9, WithPodCount(1000))
	if err != nil {
		t.Fatal(err)
	}
	if hier.Epoch() != 9 {
		t.Fatalf("epoch = %d, want 9", hier.Epoch())
	}
	if hier.Pods() != 8 {
		t.Fatalf("pod count %d not clamped to 8 machines", hier.Pods())
	}
	if _, err := hier.Plan(0); err == nil {
		t.Fatal("zero load accepted")
	}
	if _, err := hier.Plan(-3); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := hier.Plan(9); err == nil {
		t.Fatal("over-capacity load accepted")
	}
	if hier.Events() <= 0 || hier.TableBytes() <= 0 {
		t.Fatal("introspection accessors empty")
	}
	if _, err := NewPodSnapshot(&Profile{}, 0); err == nil {
		t.Fatal("invalid profile accepted")
	}
}
