//go:build !race

package core

// raceEnabled is false outside race-detector runs; see race_on_test.go.
const raceEnabled = false
