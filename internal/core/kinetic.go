package core

import (
	"coolopt/internal/mathx"
	"runtime"
	"sort"
	"sync"
)

// This file is the construction side of the compressed Preprocessed
// structure: pairwise passing-event generation, and the kinetic sweep
// that maintains the particle order incrementally across events while
// recording, for every subset size k, the linear pieces of the maximum
// k-subset coordinate sum S_k(t).
//
// The sweep is organized in independent event blocks so it parallelizes:
// each worker seeds its block with one full sort at the block's first
// interval midpoint (the ground-truth order there), then walks its events
// applying local repair sorts. Blocks are stitched back in event order,
// so the output is deterministic regardless of scheduling.

// crossing records that particles p and q pass each other at time t.
type crossing struct {
	t    float64
	p, q int32
}

// segPiece is one linear piece of S_k: from event interval `event`
// onward (until the next piece), S_k(t) = a − b·t.
type segPiece struct {
	event int32
	a, b  float64
}

// posWrite records that rank `pos` of the particle order is occupied by
// machine `id` from event interval `event` onward (until the rank's next
// write). The writes of one block arrive in event order; stitched per
// rank they form the persistent front-set arena that lets queries read
// any event's k front-most machines without re-sorting the particles.
type posWrite struct {
	event int32
	pos   int32
	id    int32
}

// sweepWorkers resolves the worker-count option.
func sweepWorkers(w int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// collectEvents generates every positive pairwise passing time
// t_pq = (a_q − a_p)/(b_q − b_p) (Algorithm 1, lines 1–9), sorts them,
// and groups simultaneous crossings. It returns the distinct event times
// (starting with 0), the time-sorted crossing records, and bucketEnd,
// where the crossings of event e>0 are crossings[bucketEnd[e-1]:bucketEnd[e]]
// (bucketEnd[0] = 0).
func collectEvents(pairs []Pair, workers int) (events []float64, crossings []crossing, bucketEnd []int) {
	n := len(pairs)
	workers = sweepWorkers(workers)
	if workers > n {
		workers = n
	}

	// Generate in parallel over contiguous row ranges of p, balanced by
	// pair count (row p contributes n−1−p pairs).
	chunks := make([][2]int, 0, workers)
	target := n * (n - 1) / 2 / workers
	lo, acc := 0, 0
	for p := 0; p < n; p++ {
		acc += n - 1 - p
		if acc >= target && len(chunks) < workers-1 {
			chunks = append(chunks, [2]int{lo, p + 1})
			lo, acc = p+1, 0
		}
	}
	chunks = append(chunks, [2]int{lo, n})

	parts := make([][]crossing, len(chunks))
	var wg sync.WaitGroup
	for c, ch := range chunks {
		wg.Add(1)
		go func(c, pLo, pHi int) {
			defer wg.Done()
			cap := 0
			for p := pLo; p < pHi; p++ {
				cap += n - 1 - p
			}
			out := make([]crossing, 0, cap)
			for p := pLo; p < pHi; p++ {
				ap, bp := pairs[p].A, pairs[p].B
				for q := p + 1; q < n; q++ {
					db := pairs[q].B - bp
					if db == 0 {
						continue // parallel particles never pass
					}
					t := (pairs[q].A - ap) / db
					if t > 0 {
						out = append(out, crossing{t: t, p: int32(p), q: int32(q)})
					}
				}
			}
			parts[c] = out
		}(c, ch[0], ch[1])
	}
	wg.Wait()

	total := 0
	for _, part := range parts {
		total += len(part)
	}
	crossings = make([]crossing, 0, total)
	for _, part := range parts {
		crossings = append(crossings, part...)
	}
	sort.Slice(crossings, func(i, j int) bool { return crossings[i].t < crossings[j].t })

	events, bucketEnd = groupCrossings(crossings)
	return events, crossings, bucketEnd
}

// groupCrossings buckets a time-sorted crossing list into events: crossings
// whose times are indistinguishable from the bucket's first time
// (mathx.Same) share one event. The grouping depends only on the sorted
// time sequence — never on the order of equal-time entries — which is what
// lets the incremental patch path (patch.go) splice a merged list and
// still reproduce a fresh build bit for bit.
func groupCrossings(crossings []crossing) (events []float64, bucketEnd []int) {
	events = make([]float64, 1, len(crossings)+1)
	bucketEnd = make([]int, 1, len(crossings)+1)
	for i := 0; i < len(crossings); {
		t := crossings[i].t
		j := i + 1
		for j < len(crossings) && mathx.Same(crossings[j].t, t) {
			j++
		}
		events = append(events, t)
		bucketEnd = append(bucketEnd, j)
		i = j
	}
	return events, bucketEnd
}

// buildSegments runs the kinetic sweep over all events and assembles the
// per-k piece arena. Event blocks are processed by a bounded worker pool
// and stitched in event order, so the result does not depend on
// scheduling.
func (pp *Preprocessed) buildSegments(crossings []crossing, bucketEnd []int, workers int) {
	n := len(pp.reduced.Pairs)
	pairs := pp.reduced.Pairs
	nEvents := len(pp.events) - 1 // events to sweep (event 0 is the initial order)

	// The initial pieces: prefix sums of the order on interval 0.
	order0 := orderAt(pairs, pp.sampleTime(0))
	prefA0 := make([]float64, n+1)
	prefB0 := make([]float64, n+1)
	for k := 1; k <= n; k++ {
		i := order0[k-1]
		prefA0[k] = prefA0[k-1] + pairs[i].A
		prefB0[k] = prefB0[k-1] + pairs[i].B
	}

	// Split the events into contiguous blocks, one per worker, each at
	// least minBlockEvents long so the per-block O(n lg n) seeding sort
	// stays amortized.
	const minBlockEvents = 256
	workers = sweepWorkers(workers)
	numBlocks := workers
	if mx := (nEvents + minBlockEvents - 1) / minBlockEvents; numBlocks > mx {
		numBlocks = mx
	}
	if numBlocks < 1 {
		numBlocks = 1
	}
	blockOut := make([][][]segPiece, numBlocks)
	blockWrites := make([][]posWrite, numBlocks)
	var wg sync.WaitGroup
	for blk := 0; blk < numBlocks; blk++ {
		lo := 1 + blk*nEvents/numBlocks
		hi := 1 + (blk+1)*nEvents/numBlocks
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(blk, lo, hi int) {
			defer wg.Done()
			blockOut[blk], blockWrites[blk] = sweepBlock(pairs, pp.events, crossings, bucketEnd, lo, hi)
		}(blk, lo, hi)
	}
	wg.Wait()

	// Stitch: initial piece plus the block outputs in event order,
	// dropping pieces whose coefficients did not actually change.
	counts := make([]int, n)
	for k := 0; k < n; k++ {
		counts[k] = 1
		for _, out := range blockOut {
			if out != nil {
				counts[k] += len(out[k])
			}
		}
	}
	total := 0
	pp.segOff = make([]int, n+1)
	for k := 0; k < n; k++ {
		pp.segOff[k] = total
		total += counts[k]
	}
	pp.segOff[n] = total
	pp.segEvent = make([]int32, 0, total)
	pp.segA = make([]float64, 0, total)
	pp.segB = make([]float64, 0, total)
	for k := 0; k < n; k++ {
		pp.segOff[k] = len(pp.segEvent)
		pp.segEvent = append(pp.segEvent, 0)
		pp.segA = append(pp.segA, prefA0[k+1])
		pp.segB = append(pp.segB, prefB0[k+1])
		for _, out := range blockOut {
			if out == nil {
				continue
			}
			for _, piece := range out[k] {
				last := len(pp.segA) - 1
				if mathx.Same(piece.a, pp.segA[last]) && mathx.Same(piece.b, pp.segB[last]) {
					continue
				}
				pp.segEvent = append(pp.segEvent, piece.event)
				pp.segA = append(pp.segA, piece.a)
				pp.segB = append(pp.segB, piece.b)
			}
		}
	}
	pp.segOff[n] = len(pp.segEvent)
	pp.buildFrontArena(order0, blockWrites)
}

// buildFrontArena assembles the persistent front-set structure from the
// initial order and the per-block rank writes. For each rank p the arena
// holds the (event, machine) assignments in event order, starting with the
// rank's occupant on interval 0; frontSet answers queries with one binary
// search per rank instead of re-sorting all n particles.
func (pp *Preprocessed) buildFrontArena(order0 []int, blockWrites [][]posWrite) {
	n := len(order0)
	counts := make([]int, n)
	for p := range counts {
		counts[p] = 1 // the initial occupant at event 0
	}
	for _, writes := range blockWrites {
		for _, w := range writes {
			counts[w.pos]++
		}
	}
	pp.posOff = make([]int, n+1)
	total := 0
	for p := 0; p < n; p++ {
		pp.posOff[p] = total
		total += counts[p]
	}
	pp.posOff[n] = total
	pp.posEvent = make([]int32, total)
	pp.posID = make([]int32, total)

	next := make([]int, n)
	for p := 0; p < n; p++ {
		next[p] = pp.posOff[p]
		pp.posEvent[next[p]] = 0
		pp.posID[next[p]] = int32(order0[p])
		next[p]++
	}
	// Blocks cover disjoint ascending event ranges and each block's writes
	// are in event order, so appending in block order keeps every rank's
	// entries sorted by event. A rank repaired twice at the same event
	// (overlapping widened spans) keeps only the final occupant.
	for _, writes := range blockWrites {
		for _, w := range writes {
			p := w.pos
			if j := next[p] - 1; pp.posEvent[j] == w.event {
				pp.posID[j] = w.id
				continue
			}
			pp.posEvent[next[p]] = w.event
			pp.posID[next[p]] = w.id
			next[p]++
		}
	}
	// Overwrites leave unused capacity at the tail of a rank's range;
	// compact so binary searches see exactly the live entries.
	needCompact := false
	for p := 0; p < n; p++ {
		if next[p] != pp.posOff[p+1] {
			needCompact = true
			break
		}
	}
	if needCompact {
		off := make([]int, n+1)
		events := make([]int32, 0, total)
		ids := make([]int32, 0, total)
		for p := 0; p < n; p++ {
			off[p] = len(events)
			events = append(events, pp.posEvent[pp.posOff[p]:next[p]]...)
			ids = append(ids, pp.posID[pp.posOff[p]:next[p]]...)
		}
		off[n] = len(events)
		pp.posOff, pp.posEvent, pp.posID = off, events, ids
	}
}

// sweepBlock processes events [lo, hi): it seeds the particle order with
// a full sort at interval lo−1's midpoint, then for each event repairs
// the order locally around the crossing particles and records both the
// subset-size boundaries whose prefix sums changed and the rank writes
// feeding the persistent front-set arena.
func sweepBlock(pairs []Pair, events []float64, crossings []crossing, bucketEnd []int, lo, hi int) ([][]segPiece, []posWrite) {
	n := len(pairs)
	out := make([][]segPiece, n)
	var writes []posWrite

	order := orderAt(pairs, sampleTimeOf(events, lo-1))
	pos := make([]int, n)
	for i, id := range order {
		pos[id] = i
	}
	prefA := make([]float64, n+1)
	prefB := make([]float64, n+1)
	for k := 1; k <= n; k++ {
		i := order[k-1]
		prefA[k] = prefA[k-1] + pairs[i].A
		prefB[k] = prefB[k-1] + pairs[i].B
	}

	type span struct{ s, t int }
	var spans []span
	for e := lo; e < hi; e++ {
		bucket := crossings[bucketEnd[e-1]:bucketEnd[e]]
		sampleT := sampleTimeOf(events, e)

		// Positions touched by this event's crossings. A crossing's two
		// particles are adjacent in exact arithmetic, but simultaneous
		// multi-way crossings (and near-ties split across float-distinct
		// event times) can leave them further apart — covering the whole
		// position range and merging overlapping ranges is the repair
		// pass that keeps the sweep robust where the paper's plain
		// curOrder.swap(p, q) breaks.
		spans = spans[:0]
		for _, c := range bucket {
			s, t := pos[c.p], pos[c.q]
			if s > t {
				s, t = t, s
			}
			spans = append(spans, span{s, t})
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].s < spans[j].s })

		for si := 0; si < len(spans); {
			s, t := spans[si].s, spans[si].t
			si++
			for si < len(spans) && spans[si].s <= t {
				if spans[si].t > t {
					t = spans[si].t
				}
				si++
			}

			// Re-sort the block at this interval's midpoint; if the
			// sorted block is out of order with a neighbour (possible
			// only under floating-point near-ties), widen and repeat.
			for {
				seg := order[s : t+1]
				sort.Slice(seg, func(x, y int) bool {
					return particleLess(pairs, seg[x], seg[y], sampleT)
				})
				grew := false
				if s > 0 && particleLess(pairs, order[s], order[s-1], sampleT) {
					s--
					grew = true
				}
				if t+1 < n && particleLess(pairs, order[t+1], order[t], sampleT) {
					t++
					grew = true
				}
				if !grew {
					break
				}
			}
			// Before pos is refreshed it still maps machines to their
			// pre-repair ranks, so rank i changed occupant exactly when
			// the machine now at i came from elsewhere.
			for i := s; i <= t; i++ {
				if pos[order[i]] != i {
					writes = append(writes, posWrite{event: int32(e), pos: int32(i), id: int32(order[i])})
				}
			}
			for i := s; i <= t; i++ {
				pos[order[i]] = i
			}

			// Only boundaries strictly inside the block can change:
			// the k-sets for k ≤ s and k > t are untouched.
			for k := s + 1; k <= t; k++ {
				id := order[k-1]
				newA := prefA[k-1] + pairs[id].A
				newB := prefB[k-1] + pairs[id].B
				if mathx.Same(newA, prefA[k]) && mathx.Same(newB, prefB[k]) {
					continue
				}
				prefA[k], prefB[k] = newA, newB
				ks := out[k-1]
				if m := len(ks); m > 0 && ks[m-1].event == int32(e) {
					ks[m-1].a, ks[m-1].b = newA, newB
				} else {
					out[k-1] = append(ks, segPiece{event: int32(e), a: newA, b: newB})
				}
			}
		}
	}
	return out, writes
}
