package core

import (
	"errors"
	"math"
	"testing"

	"coolopt/internal/mathx"
)

// FuzzSnapshotPatch drives randomized and degenerate drift batches
// through both Patch paths and holds the differential line: every
// accepted batch must reproduce the from-scratch rebuild byte for byte
// (tables and plans, including degraded plans avoiding a drifted
// machine), and every malformed batch must be rejected with ErrBadDelta
// while leaving the receiver fully usable.
//
// The corpus seeds the degenerate shapes the issue calls out explicitly:
// zero-delta patch, all-machines drift, sign-flipping α/β, duplicate
// machine IDs, and drift on an avoided machine.
func FuzzSnapshotPatch(f *testing.F) {
	// seed, drift count, corruption mode, avoided machine.
	f.Add(int64(1), uint8(1), uint8(0), uint8(3))   // single-machine drift
	f.Add(int64(2), uint8(16), uint8(0), uint8(0))  // mid-size batch
	f.Add(int64(3), uint8(0), uint8(0), uint8(5))   // zero-delta patch
	f.Add(int64(4), uint8(255), uint8(0), uint8(9)) // all-machines drift (clipped)
	f.Add(int64(5), uint8(4), uint8(1), uint8(2))   // sign-flipped alpha
	f.Add(int64(6), uint8(4), uint8(2), uint8(2))   // sign-flipped beta
	f.Add(int64(7), uint8(4), uint8(3), uint8(7))   // duplicate machine IDs
	f.Add(int64(8), uint8(4), uint8(4), uint8(1))   // out-of-range ID
	f.Add(int64(9), uint8(3), uint8(0), uint8(0))   // drift on the avoided machine

	const n, pods = 32, 4
	base := hierProfile(n)
	flat, err := NewSnapshot(base, 0, WithPatchSupport(), WithPreprocessWorkers(1))
	if err != nil {
		f.Fatal(err)
	}
	podded, err := NewPodSnapshot(base, 0, WithPodCount(pods), WithPodBuildWorkers(1))
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, seed int64, k uint8, mode uint8, avoidRaw uint8) {
		rng := mathx.NewRand(seed)
		batch := driftBatch(rng, base, int(k))
		switch mode % 5 {
		case 1: // sign-flip alpha
			if len(batch) == 0 {
				return
			}
			batch[0].Machine.Alpha = -batch[0].Machine.Alpha
		case 2: // sign-flip beta
			if len(batch) == 0 {
				return
			}
			batch[0].Machine.Beta = -batch[0].Machine.Beta
		case 3: // duplicate machine IDs
			if len(batch) == 0 {
				return
			}
			batch = append(batch, batch[0])
		case 4: // out-of-range ID
			batch = append(batch, MachineDelta{ID: n + int(k), Machine: base.Machines[0]})
		}

		gotFlat, errFlat := flat.Patch(batch, WithPreprocessWorkers(1))
		gotPods, errPods := podded.Patch(batch, WithPodBuildWorkers(1))
		if (errFlat == nil) != (errPods == nil) {
			t.Fatalf("paths disagree on acceptance: flat %v, pods %v", errFlat, errPods)
		}

		if errFlat != nil {
			// Malformed input contract: typed rejection, and a plain
			// rebuild of the same deltas must reject too (or the batch had
			// duplicates/range errors a rebuild cannot even express).
			if !errors.Is(errFlat, ErrBadDelta) {
				t.Fatalf("flat rejection not ErrBadDelta: %v", errFlat)
			}
			if !errors.Is(errPods, ErrBadDelta) {
				t.Fatalf("pods rejection not ErrBadDelta: %v", errPods)
			}
			// The receiver must stay usable after a rejected batch.
			if _, err := flat.Plan(0.4 * n); err != nil {
				t.Fatalf("flat receiver broken after rejection: %v", err)
			}
			return
		}

		patched := applyBatch(base, batch)
		checkFlatAgainstRebuild(t, "fuzz flat", gotFlat, patched, 1)
		wantPods, err := NewPodSnapshot(patched, 1, WithPodCount(pods), WithPodBuildWorkers(1))
		if err != nil {
			t.Fatalf("pod rebuild: %v", err)
		}
		for j := range gotPods.pods {
			equalTables(t, "fuzz pod", gotPods.pods[j].pre, wantPods.pods[j].pre)
		}

		// Drift on an avoided machine: degraded planning over the patched
		// snapshot must match the rebuild bit for bit and never power the
		// avoided machine, drifted or not.
		avoid := int(avoidRaw) % n
		pool := make([]int, 0, n-1)
		for i := 0; i < n; i++ {
			if i != avoid {
				pool = append(pool, i)
			}
		}
		gp := gotFlat.PlanOver(pool, 0.4*n)
		wp, err := NewSnapshot(patched, 1, WithPreprocessWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		wplan := wp.PlanOver(pool, 0.4*n)
		if (gp == nil) != (wplan == nil) {
			t.Fatalf("degraded plans disagree: %v vs %v", gp, wplan)
		}
		if gp != nil {
			equalPlans(t, "fuzz degraded", gp, wplan)
			for _, i := range gp.On {
				if i == avoid {
					t.Fatalf("degraded plan powered avoided machine %d", avoid)
				}
				if math.Signbit(gp.Loads[i]) {
					t.Fatalf("machine %d carries negative load", i)
				}
			}
		}
	})
}
