package core

import (
	"fmt"
	"math"
	"sync"
)

// This file implements the pod-sharded form of the paper's consolidation
// machinery for rooms beyond the O(n²) whole-room tables. The planning
// bodies themselves live in unit.go — PodSnapshot is one topology of the
// recursive plannable-unit tree; this file owns construction, the
// parallel table build, and the room-level union refinement helpers.
//
// The room is partitioned into contiguous pods (the tree's leaves). Each
// pod builds its own kinetic front-set tables over its n_j machines —
// p·(n/p)² events instead of n², so the build parallelizes across pods
// and the event set shrinks by ~p. Queries compose hierarchically:
//
//  1. The recursive water-filling allocator (planTree.selectFor) splits
//     the room load L down the tree using the pod aggregates
//     A_j = Σ K_i and B_j = Σ α_i/β_i. Eq. 21–22 say the exact optimum
//     loads machine i at L_i = K_i − s·(α_i/β_i) for a common surplus
//     parameter s = (Σ K − L)/Σ(α/β); summed over a pod that is
//     L_j = A_j − s·B_j — so the exact split is itself a water-filling
//     over the pod aggregates, and the allocator recovers it (up to the
//     [0, n_j] capacity clamps) by bisecting on s. An interior node of a
//     deeper tree presents the same clamped curve summed over its
//     subtree, so the identical bisection runs at every level.
//
//  2. Each pod solves its own select(A_j, k_j, L_j) over its local
//     tables. The pod scores candidates with share-scaled cooling
//     leverage: linearizing the room t_S = (Σ a − L)/(Σ b) around pod j's
//     contribution gives ∂t/∂(pod j) ≈ share_j/B_j with
//     share_j = B_j/B_total, so the pod sees Rho_j = share_j·ρ and
//     CoolFactor_j = share_j·c·f_ac. Without the scaling every pod would
//     believe it owns the whole room's cooling reward and over-provision
//     machines by ~√p. Shares are room-level at every depth.
//
//  3. The per-pod subsets are unioned and the room's exact closed form
//     (SolveBounded, Eqs. 21–22 with box repair) runs once over the
//     union, so the load split and supply temperature are exact for the
//     chosen set. The optimality gap comes only from the subset choice —
//     a pod may keep a machine that a colder machine in another pod
//     should have displaced — and is bounded and measured rather than
//     compounded (DESIGN.md §7, §11).
//
// Pods are built in parallel but each pod's own Preprocess runs
// single-threaded, so the resulting tables are byte-identical regardless
// of the outer worker count — the property tests enforce this.

// DefaultPodSize is the default machines-per-pod target when no
// calibration point overrides it. 256 keeps each pod's O(n_j²) tables in
// cache while yielding p = 16 pods at the whole-room cap of 4096
// machines.
const DefaultPodSize = 256

// podConfig collects NewPodSnapshot's tunables.
type podConfig struct {
	podSize    int             // target machines per pod; 0 = calibration/DefaultPodSize
	podCount   int             // explicit pod count; 0 = derive from podSize
	depth      int             // tree depth; 0 = calibration (2 for modest rooms)
	workers    int             // outer build workers; 0 = runtime default
	buildCheck func(int) error // per-pod build guard; nil = none
}

// PodOption configures NewPodSnapshot.
type PodOption func(*podConfig)

// WithPodSize sets the target machines per pod (values ≤ 0 pick the
// calibrated size for the room, DefaultPodSize when no point matches).
// The partition balances sizes within one machine.
func WithPodSize(m int) PodOption {
	return func(cfg *podConfig) { cfg.podSize = m }
}

// WithPodCount forces an explicit pod count, overriding WithPodSize.
// Values ≤ 0 keep the size-derived count.
func WithPodCount(p int) PodOption {
	return func(cfg *podConfig) { cfg.podCount = p }
}

// WithPodDepth sets the planner-tree depth: 2 is the classic one-level
// pod split, 3 groups the pods into ≈√p pods of pods, and so on. Values
// ≤ 0 pick the calibrated depth for the room size (2 for every room the
// committed curve considers shallow enough). Degenerate shapes (one pod,
// chains) collapse to the flat planner bit for bit.
func WithPodDepth(d int) PodOption {
	return func(cfg *podConfig) { cfg.depth = d }
}

// WithPodBuildWorkers bounds the outer worker pool that builds pod tables
// in parallel. Values ≤ 0 use runtime.GOMAXPROCS(0). The tables are
// byte-identical across worker counts: each pod's inner sweep is
// single-threaded, only the scheduling of whole pods varies.
func WithPodBuildWorkers(w int) PodOption {
	return func(cfg *podConfig) { cfg.workers = w }
}

// WithPodBuildCheck installs a guard invoked (from the build workers,
// keyed by pod index — keep it concurrency-safe) before each pod's
// kinetic sweep; a non-nil error fails the whole build. Fault injection
// uses it to rehearse pod-table build failures deterministically; the
// serving layer must keep answering off the previously installed state.
func WithPodBuildCheck(check func(pod int) error) PodOption {
	return func(cfg *podConfig) { cfg.buildCheck = check }
}

// pod is one leaf of the planner tree: a contiguous ID range with its
// own kinetic tables and share-scaled scoring bounds.
type pod struct {
	ids     []int // global machine IDs, ascending
	reduced Reduced
	pre     *Preprocessed
	sumA    float64 // A_j = Σ K_i over the pod
	sumB    float64 // B_j = Σ α_i/β_i over the pod
	share   float64 // B_j / B_total
	bounds  clampBounds
}

// PodSnapshot is the hierarchical analogue of Snapshot: an immutable,
// concurrently-queryable view of a machine room whose consolidation
// tables are sharded into pod leaves under a recursive planner tree
// (unit.go). It trades a bounded optimality gap for a near-linear build
// and a per-query cost of p·O((n/p)·lg²(n/p)) instead of O(n·lg² n)
// over a p×-larger event set — which is what lifts the whole-room
// DefaultMaxMachines cap. Depth 2 is the classic pod split; depth 3
// groups the pods into pods of pods for fleet-scale rooms.
type PodSnapshot struct {
	epoch uint64
	planTree
}

// NewPodSnapshot validates and deep-copies the profile, partitions it
// into pod leaves, builds every leaf's kinetic tables in parallel, and
// assembles the recursive planner tree over them. epoch tags the
// snapshot's generation exactly like NewSnapshot.
func NewPodSnapshot(p *Profile, epoch uint64, opts ...PodOption) (*PodSnapshot, error) {
	cfg := podConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	frozen := *p
	frozen.Machines = append([]MachineProfile(nil), p.Machines...)

	n := frozen.Size()
	if cfg.podSize <= 0 {
		if cfg.podCount <= 0 {
			cfg.podSize = DefaultCalibration().PodSizeFor(n)
		} else {
			cfg.podSize = DefaultPodSize
		}
	}
	depth := cfg.depth
	if depth <= 0 {
		depth = DefaultCalibration().DepthFor(n)
	}
	if depth < 2 {
		depth = 2
	}
	count := cfg.podCount
	if count <= 0 {
		count = (n + cfg.podSize - 1) / cfg.podSize
	}
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}

	ps := &PodSnapshot{epoch: epoch, planTree: planTree{profile: &frozen, depth: depth}}
	ps.room = frozen.Reduce()
	for _, pr := range ps.room.Pairs {
		ps.totalB += pr.B
	}

	// Balanced contiguous partition: the first n mod count pods carry one
	// extra machine.
	base, extra := n/count, n%count
	start := 0
	for j := 0; j < count; j++ {
		size := base
		if j < extra {
			size++
		}
		ids := make([]int, size)
		for i := range ids {
			ids[i] = start + i
		}
		start += size
		ps.pods = append(ps.pods, makeLeaf(ps.room, &frozen, ids, ps.totalB))
	}
	ps.root = buildUnitTree(ps.pods, 0, count, depth)

	if err := ps.buildPods(cfg.workers, cfg.buildCheck); err != nil {
		return nil, err
	}
	return ps, nil
}

// buildPods runs Preprocess for every pod on an outer worker pool. Each
// pod's inner sweep is pinned to one worker so the tables are
// byte-identical across outer worker counts.
func (ps *PodSnapshot) buildPods(workers int, check func(int) error) error {
	all := make([]int, len(ps.pods))
	for j := range all {
		all[j] = j
	}
	return ps.buildPodsFor(all, workers, check)
}

// buildPodsFor runs Preprocess for the listed pods only, on the same
// outer worker pool as buildPods. Patch uses it to rebuild just the pods
// containing drifted machines while the rest share their tables.
func (ps *PodSnapshot) buildPodsFor(podIdx []int, workers int, check func(int) error) error {
	if len(podIdx) == 0 {
		return nil
	}
	workers = sweepWorkers(workers)
	if workers > len(podIdx) {
		workers = len(podIdx)
	}
	jobs := make(chan int)
	errs := make([]error, len(podIdx))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				j := podIdx[i]
				pd := ps.pods[j]
				if check != nil {
					if err := check(j); err != nil {
						errs[i] = fmt.Errorf("core: pod %d: %w", j, err)
						continue
					}
				}
				pre, err := Preprocess(pd.reduced,
					WithMaxMachines(len(pd.ids)), WithPreprocessWorkers(1))
				if err != nil {
					errs[i] = fmt.Errorf("core: pod %d: %w", j, err)
					continue
				}
				pd.pre = pre
			}
		}()
	}
	for i := range podIdx {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Epoch returns the snapshot's generation tag.
func (ps *PodSnapshot) Epoch() uint64 { return ps.epoch }

// Size returns the number of machines.
func (ps *PodSnapshot) Size() int { return ps.profile.Size() }

// Pods returns the number of pod leaves.
func (ps *PodSnapshot) Pods() int { return len(ps.pods) }

// Depth returns the planner tree's actual depth: 1 for a single leaf
// (p = 1), 2 for the classic pod split, 3 for pods of pods.
func (ps *PodSnapshot) Depth() int { return ps.root.Depth() }

// Root returns the recursive planner tree. Read-only, safe for
// concurrent use; inspect it for shape, never mutate it.
func (ps *PodSnapshot) Root() *Unit { return ps.root }

// Profile returns the frozen model. Read-only, exactly like
// Snapshot.Profile.
func (ps *PodSnapshot) Profile() *Profile { return ps.profile }

// Events returns the total number of event times across all pods — the
// quantity the sharding shrinks from O(n²) to Σ O(n_j²).
func (ps *PodSnapshot) Events() int {
	total := 0
	for _, pd := range ps.pods {
		total += pd.pre.Events()
	}
	return total
}

// TableBytes returns the resident size of all pod tables in bytes.
func (ps *PodSnapshot) TableBytes() int {
	total := 0
	for _, pd := range ps.pods {
		total += pd.pre.TableBytes()
	}
	return total
}

// Select returns the hierarchical on-set for the given room load: the
// recursive allocator splits the load down the planner tree, each pod
// picks its clamped power-optimal front set for its slice, and the union
// (ascending global IDs) is returned. A pod whose clamp admits no subset
// falls back to powering its whole shard — always capacity-feasible for
// the clamped slice.
func (ps *PodSnapshot) Select(load float64) ([]int, error) {
	return ps.selectUnion(load)
}

// Plan returns the hierarchical plan for the given total load: recursive
// subset selection (Select) followed by the room's exact closed form
// over the union, so the load split and supply temperature are exact for
// the chosen machines and any optimality gap lives in the subset choice
// alone.
func (ps *PodSnapshot) Plan(load float64) (*Plan, error) {
	return ps.plan(load)
}

// Consolidate answers select(A, k ≥ minK, L) hierarchically: the on-set
// from Select, topped up deterministically with the front-most unused
// machines when the union is smaller than minK, scored with the room's
// Eq. 23.
func (ps *PodSnapshot) Consolidate(load float64, minK int) (Selection, error) {
	return ps.consolidate(load, minK)
}

// MaxLoad answers the budget question hierarchically: each pod proposes
// its best subset for its cooling-share of the budget (DFS over the
// planner tree), and the room's exact budget boundary (Eq. 23–24) is
// solved once over the union.
func (ps *PodSnapshot) MaxLoad(budgetW float64) (MaxLoadResult, error) {
	return ps.maxLoad(budgetW)
}

// refineUnion is a bounded greedy exchange pass over the pod union. The
// per-pod selections are each front-optimal at their own pod time, but
// the room optimum is a front set at one shared time, so membership at
// the pod boundaries can be off by a few machines. Under Eq. 23 a
// single add/remove move re-scores in O(1):
//
//	add m:    t' = t + x_m(t)/(ΣB + b_m)
//	remove m: t' = t − x_m(t)/(ΣB − b_m)
//
// so the pass repeatedly applies the best strictly-improving move under
// the clamped room score until none remains or the iteration budget runs
// out. Starting from the exact optimum no move improves (front sets are
// optimal per §III-B), which keeps the single-leaf path untouched; from
// a pod union the pass closes most of the boundary gap at O(n) per move.
func (pt *planTree) refineUnion(union []int, load float64) []int {
	return pt.refineUnionBlocked(union, load, nil)
}

// refineUnionBlocked is refineUnion with an optional avoid mask: blocked
// machines never enter the union through an add or swap move. The
// degraded path passes its avoid set; the healthy path passes nil.
func (pt *planTree) refineUnionBlocked(union []int, load float64, blocked []bool) []int {
	r := pt.room
	p := pt.profile
	n := len(r.Pairs)
	in := make([]bool, n)
	var sumA, sumB float64
	for _, i := range union {
		in[i] = true
		sumA += r.Pairs[i].A
		sumB += r.Pairs[i].B
	}
	k := len(union)
	minK := int(math.Ceil(load - 1e-9))
	if minK < 1 {
		minK = 1
	}
	// score is the clamped room power of a candidate aggregate, the same
	// objective clampedSelect ranks subset sizes with.
	score := func(k int, sumA, sumB float64) (float64, bool) {
		t := (sumA - load) / sumB
		if t < 0 {
			return 0, false
		}
		tAc := p.W1 * t
		if tAc > p.TAcMaxC {
			tAc = p.TAcMaxC
		}
		if tAc < p.TAcMinC {
			return 0, false
		}
		cooling := p.CoolFactor * (p.SetPointC - tAc)
		if cooling < 0 {
			cooling = 0
		}
		return cooling + p.W1*load + float64(k)*p.W2, true
	}
	cur, ok := score(k, sumA, sumB)
	if !ok {
		return union // leave infeasible aggregates to SolveBounded's diagnostics
	}
	maxMoves := 4*len(pt.pods) + 8
	for move := 0; move < maxMoves; move++ {
		t := (sumA - load) / sumB
		// Best addition: the unused machine with the largest coordinate;
		// best removal: the used machine with the smallest. Ascending scan
		// with strict comparisons keeps ties deterministic.
		addIdx, remIdx := -1, -1
		var addX, remX float64
		for i := 0; i < n; i++ {
			x := r.Pairs[i].A - t*r.Pairs[i].B
			if in[i] {
				if remIdx < 0 || x < remX {
					remIdx, remX = i, x
				}
			} else if blocked != nil && blocked[i] {
				continue
			} else if addIdx < 0 || x > addX {
				addIdx, addX = i, x
			}
		}
		bestIdx, bestAdd := -1, false
		bestPower := cur
		if addIdx >= 0 {
			if w, ok := score(k+1, sumA+r.Pairs[addIdx].A, sumB+r.Pairs[addIdx].B); ok && w < bestPower-1e-9 {
				bestIdx, bestAdd, bestPower = addIdx, true, w
			}
		}
		if remIdx >= 0 && k > minK {
			if w, ok := score(k-1, sumA-r.Pairs[remIdx].A, sumB-r.Pairs[remIdx].B); ok && w < bestPower-1e-9 {
				bestIdx, bestAdd, bestPower = remIdx, false, w
			}
		}
		// Same-k swap: when the count is right but membership at a pod
		// boundary is wrong, neither single move pays (add charges W2,
		// remove loses coverage) yet trading the back-most member for the
		// front-most outsider strictly raises t.
		swap := false
		if addIdx >= 0 && remIdx >= 0 && addIdx != remIdx {
			swapA := sumA - r.Pairs[remIdx].A + r.Pairs[addIdx].A
			swapB := sumB - r.Pairs[remIdx].B + r.Pairs[addIdx].B
			if w, ok := score(k, swapA, swapB); ok && w < bestPower-1e-9 {
				swap, bestPower = true, w
			}
		}
		switch {
		case swap:
			in[remIdx], in[addIdx] = false, true
			sumA += r.Pairs[addIdx].A - r.Pairs[remIdx].A
			sumB += r.Pairs[addIdx].B - r.Pairs[remIdx].B
		case bestIdx < 0:
			return unionFromMask(in, k)
		case bestAdd:
			in[bestIdx] = true
			sumA += r.Pairs[bestIdx].A
			sumB += r.Pairs[bestIdx].B
			k++
		default:
			in[bestIdx] = false
			sumA -= r.Pairs[bestIdx].A
			sumB -= r.Pairs[bestIdx].B
			k--
		}
		cur = bestPower
	}
	return unionFromMask(in, k)
}

// unionFromMask materializes a membership mask as ascending machine IDs.
func unionFromMask(in []bool, k int) []int {
	out := make([]int, 0, k)
	for i, used := range in {
		if used {
			out = append(out, i)
		}
	}
	return out
}
