package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file implements the two-level (pod-sharded) form of the paper's
// consolidation machinery for rooms beyond the O(n²) whole-room tables.
//
// The room is partitioned into contiguous pods. Each pod builds its own
// kinetic front-set tables over its n_j machines — p·(n/p)² events
// instead of n², so the build parallelizes across pods and the event set
// shrinks by ~p. Queries compose hierarchically:
//
//  1. A top-level water-filling allocator splits the room load L across
//     pods using the pod aggregates A_j = Σ K_i and B_j = Σ α_i/β_i.
//     Eq. 21–22 say the exact optimum loads machine i at
//     L_i = K_i − s·(α_i/β_i) for a common surplus parameter
//     s = (Σ K − L)/Σ(α/β); summed over a pod that is
//     L_j = A_j − s·B_j — so the exact split is itself a water-filling
//     over the pod aggregates, and the allocator recovers it (up to the
//     [0, n_j] capacity clamps) by bisecting on s.
//
//  2. Each pod solves its own select(A_j, k_j, L_j) over its local
//     tables. The pod scores candidates with share-scaled cooling
//     leverage: linearizing the room t_S = (Σ a − L)/(Σ b) around pod j's
//     contribution gives ∂t/∂(pod j) ≈ share_j/B_j with
//     share_j = B_j/B_total, so the pod sees Rho_j = share_j·ρ and
//     CoolFactor_j = share_j·c·f_ac. Without the scaling every pod would
//     believe it owns the whole room's cooling reward and over-provision
//     machines by ~√p.
//
//  3. The per-pod subsets are unioned and the room's exact closed form
//     (SolveBounded, Eqs. 21–22 with box repair) runs once over the
//     union, so the load split and supply temperature are exact for the
//     chosen set. The optimality gap comes only from the subset choice —
//     a pod may keep a machine that a colder machine in another pod
//     should have displaced — and is bounded and measured rather than
//     compounded (DESIGN.md §7).
//
// Pods are built in parallel but each pod's own Preprocess runs
// single-threaded, so the resulting tables are byte-identical regardless
// of the outer worker count — the property tests enforce this.

// DefaultPodSize is the default machines-per-pod target. 256 keeps each
// pod's O(n_j²) tables in cache while yielding p = 16 pods at the
// whole-room cap of 4096 machines.
const DefaultPodSize = 256

// podConfig collects NewPodSnapshot's tunables.
type podConfig struct {
	podSize    int             // target machines per pod; 0 = DefaultPodSize
	podCount   int             // explicit pod count; 0 = derive from podSize
	workers    int             // outer build workers; 0 = runtime default
	buildCheck func(int) error // per-pod build guard; nil = none
}

// PodOption configures NewPodSnapshot.
type PodOption func(*podConfig)

// WithPodSize sets the target machines per pod (values ≤ 0 keep
// DefaultPodSize). The partition balances sizes within one machine.
func WithPodSize(m int) PodOption {
	return func(cfg *podConfig) { cfg.podSize = m }
}

// WithPodCount forces an explicit pod count, overriding WithPodSize.
// Values ≤ 0 keep the size-derived count.
func WithPodCount(p int) PodOption {
	return func(cfg *podConfig) { cfg.podCount = p }
}

// WithPodBuildWorkers bounds the outer worker pool that builds pod tables
// in parallel. Values ≤ 0 use runtime.GOMAXPROCS(0). The tables are
// byte-identical across worker counts: each pod's inner sweep is
// single-threaded, only the scheduling of whole pods varies.
func WithPodBuildWorkers(w int) PodOption {
	return func(cfg *podConfig) { cfg.workers = w }
}

// WithPodBuildCheck installs a guard invoked (from the build workers,
// keyed by pod index — keep it concurrency-safe) before each pod's
// kinetic sweep; a non-nil error fails the whole build. Fault injection
// uses it to rehearse pod-table build failures deterministically; the
// serving layer must keep answering off the previously installed state.
func WithPodBuildCheck(check func(pod int) error) PodOption {
	return func(cfg *podConfig) { cfg.buildCheck = check }
}

// pod is one shard of the room: a contiguous ID range with its own
// kinetic tables and share-scaled scoring bounds.
type pod struct {
	ids     []int // global machine IDs, ascending
	reduced Reduced
	pre     *Preprocessed
	sumA    float64 // A_j = Σ K_i over the pod
	sumB    float64 // B_j = Σ α_i/β_i over the pod
	share   float64 // B_j / B_total
	bounds  clampBounds
}

// PodSnapshot is the two-level analogue of Snapshot: an immutable,
// concurrently-queryable view of a machine room whose consolidation
// tables are sharded into pods. It trades a bounded optimality gap for a
// near-linear build and a per-query cost of p·O((n/p)·lg²(n/p)) instead
// of O(n·lg² n) over a p×-larger event set — which is what lifts the
// whole-room DefaultMaxMachines cap.
type PodSnapshot struct {
	epoch   uint64
	profile *Profile
	room    Reduced
	pods    []*pod
	totalB  float64
}

// NewPodSnapshot validates and deep-copies the profile, partitions it
// into pods, and builds every pod's kinetic tables in parallel. epoch
// tags the snapshot's generation exactly like NewSnapshot.
func NewPodSnapshot(p *Profile, epoch uint64, opts ...PodOption) (*PodSnapshot, error) {
	cfg := podConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.podSize <= 0 {
		cfg.podSize = DefaultPodSize
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	frozen := *p
	frozen.Machines = append([]MachineProfile(nil), p.Machines...)

	n := frozen.Size()
	count := cfg.podCount
	if count <= 0 {
		count = (n + cfg.podSize - 1) / cfg.podSize
	}
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}

	ps := &PodSnapshot{epoch: epoch, profile: &frozen, room: frozen.Reduce()}
	for _, pr := range ps.room.Pairs {
		ps.totalB += pr.B
	}

	// Balanced contiguous partition: the first n mod count pods carry one
	// extra machine.
	base, extra := n/count, n%count
	start := 0
	for j := 0; j < count; j++ {
		size := base
		if j < extra {
			size++
		}
		ids := make([]int, size)
		for i := range ids {
			ids[i] = start + i
		}
		start += size

		var sumA, sumB float64
		pairs := make([]Pair, size)
		for i, id := range ids {
			pairs[i] = ps.room.Pairs[id]
			sumA += pairs[i].A
			sumB += pairs[i].B
		}
		// The pod's reduced instance scales the cooling leverage by its
		// share; see the file comment.
		share := sumB / ps.totalB
		ps.pods = append(ps.pods, &pod{
			ids:   ids,
			sumA:  sumA,
			sumB:  sumB,
			share: share,
			reduced: Reduced{
				Pairs:      pairs,
				W2:         frozen.W2,
				Rho:        frozen.CoolFactor * frozen.W1 * share,
				CoolFactor: frozen.CoolFactor * share,
				SetPointC:  frozen.SetPointC,
				W1:         frozen.W1,
			},
			bounds: clampBounds{
				W1: frozen.W1, W2: frozen.W2,
				CoolFactor: frozen.CoolFactor * share,
				SetPointC:  frozen.SetPointC,
				TAcMinC:    frozen.TAcMinC,
				TAcMaxC:    frozen.TAcMaxC,
			},
		})
	}

	if err := ps.buildPods(cfg.workers, cfg.buildCheck); err != nil {
		return nil, err
	}
	return ps, nil
}

// buildPods runs Preprocess for every pod on an outer worker pool. Each
// pod's inner sweep is pinned to one worker so the tables are
// byte-identical across outer worker counts.
func (ps *PodSnapshot) buildPods(workers int, check func(int) error) error {
	all := make([]int, len(ps.pods))
	for j := range all {
		all[j] = j
	}
	return ps.buildPodsFor(all, workers, check)
}

// buildPodsFor runs Preprocess for the listed pods only, on the same
// outer worker pool as buildPods. Patch uses it to rebuild just the pods
// containing drifted machines while the rest share their tables.
func (ps *PodSnapshot) buildPodsFor(podIdx []int, workers int, check func(int) error) error {
	if len(podIdx) == 0 {
		return nil
	}
	workers = sweepWorkers(workers)
	if workers > len(podIdx) {
		workers = len(podIdx)
	}
	jobs := make(chan int)
	errs := make([]error, len(podIdx))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				j := podIdx[i]
				pd := ps.pods[j]
				if check != nil {
					if err := check(j); err != nil {
						errs[i] = fmt.Errorf("core: pod %d: %w", j, err)
						continue
					}
				}
				pre, err := Preprocess(pd.reduced,
					WithMaxMachines(len(pd.ids)), WithPreprocessWorkers(1))
				if err != nil {
					errs[i] = fmt.Errorf("core: pod %d: %w", j, err)
					continue
				}
				pd.pre = pre
			}
		}()
	}
	for i := range podIdx {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Epoch returns the snapshot's generation tag.
func (ps *PodSnapshot) Epoch() uint64 { return ps.epoch }

// Size returns the number of machines.
func (ps *PodSnapshot) Size() int { return ps.profile.Size() }

// Pods returns the number of pods.
func (ps *PodSnapshot) Pods() int { return len(ps.pods) }

// Profile returns the frozen model. Read-only, exactly like
// Snapshot.Profile.
func (ps *PodSnapshot) Profile() *Profile { return ps.profile }

// Events returns the total number of event times across all pods — the
// quantity the sharding shrinks from O(n²) to Σ O(n_j²).
func (ps *PodSnapshot) Events() int {
	total := 0
	for _, pd := range ps.pods {
		total += pd.pre.Events()
	}
	return total
}

// TableBytes returns the resident size of all pod tables in bytes.
func (ps *PodSnapshot) TableBytes() int {
	total := 0
	for _, pd := range ps.pods {
		total += pd.pre.TableBytes()
	}
	return total
}

// splitLoad is the top-level water-filling allocator: bisect on the
// surplus parameter s of Eq. 21 so that Σ_j clamp(A_j − s·B_j, 0, n_j)
// equals the room load (waterFill, shared with the degraded path). With
// one pod the split is trivially exact, which makes the p = 1 hierarchy
// byte-identical to the flat planner.
func (ps *PodSnapshot) splitLoad(load float64) []float64 {
	if len(ps.pods) == 1 {
		return []float64{load}
	}
	aggs := make([]podAgg, len(ps.pods))
	for j, pd := range ps.pods {
		aggs[j] = podAgg{sumA: pd.sumA, sumB: pd.sumB, cap: float64(len(pd.ids))}
	}
	return waterFill(aggs, load)
}

// Select returns the hierarchical on-set for the given room load: the
// allocator splits the load, each pod picks its clamped power-optimal
// front set for its slice, and the union (ascending global IDs) is
// returned. A pod whose clamp admits no subset falls back to powering its
// whole shard — always capacity-feasible for the clamped slice.
func (ps *PodSnapshot) Select(load float64) ([]int, error) {
	n := ps.profile.Size()
	if load <= 0 {
		return nil, fmt.Errorf("core: load %v must be positive (power everything off instead)", load)
	}
	if load > float64(n) {
		return nil, fmt.Errorf("%w: load %v exceeds cluster capacity %d", ErrInfeasible, load, n)
	}
	shares := ps.splitLoad(load)
	var union []int
	for j, pd := range ps.pods {
		lj := shares[j]
		if lj <= 1e-12 {
			continue
		}
		local, ok := clampedSelect(pd.pre, lj, pd.bounds)
		if !ok {
			local = make([]int, len(pd.ids))
			for i := range local {
				local[i] = i
			}
		}
		for _, li := range local {
			union = append(union, pd.ids[li])
		}
	}
	if len(union) == 0 {
		return nil, fmt.Errorf("%w: no pod accepts any of load %v", ErrInfeasible, load)
	}
	if len(ps.pods) > 1 {
		union = ps.refineUnion(union, load)
	}
	sort.Ints(union)
	return union, nil
}

// refineUnion is a bounded greedy exchange pass over the pod union. The
// per-pod selections are each front-optimal at their own pod time, but
// the room optimum is a front set at one shared time, so membership at
// the pod boundaries can be off by a few machines. Under Eq. 23 a
// single add/remove move re-scores in O(1):
//
//	add m:    t' = t + x_m(t)/(ΣB + b_m)
//	remove m: t' = t − x_m(t)/(ΣB − b_m)
//
// so the pass repeatedly applies the best strictly-improving move under
// the clamped room score until none remains or the iteration budget runs
// out. Starting from the exact optimum no move improves (front sets are
// optimal per §III-B), which keeps the p = 1 path untouched; from a pod
// union the pass closes most of the boundary gap at O(n) per move.
func (ps *PodSnapshot) refineUnion(union []int, load float64) []int {
	return ps.refineUnionBlocked(union, load, nil)
}

// refineUnionBlocked is refineUnion with an optional avoid mask: blocked
// machines never enter the union through an add or swap move. The
// degraded path passes its avoid set; the healthy path passes nil.
func (ps *PodSnapshot) refineUnionBlocked(union []int, load float64, blocked []bool) []int {
	r := ps.room
	p := ps.profile
	n := len(r.Pairs)
	in := make([]bool, n)
	var sumA, sumB float64
	for _, i := range union {
		in[i] = true
		sumA += r.Pairs[i].A
		sumB += r.Pairs[i].B
	}
	k := len(union)
	minK := int(math.Ceil(load - 1e-9))
	if minK < 1 {
		minK = 1
	}
	// score is the clamped room power of a candidate aggregate, the same
	// objective clampedSelect ranks subset sizes with.
	score := func(k int, sumA, sumB float64) (float64, bool) {
		t := (sumA - load) / sumB
		if t < 0 {
			return 0, false
		}
		tAc := p.W1 * t
		if tAc > p.TAcMaxC {
			tAc = p.TAcMaxC
		}
		if tAc < p.TAcMinC {
			return 0, false
		}
		cooling := p.CoolFactor * (p.SetPointC - tAc)
		if cooling < 0 {
			cooling = 0
		}
		return cooling + p.W1*load + float64(k)*p.W2, true
	}
	cur, ok := score(k, sumA, sumB)
	if !ok {
		return union // leave infeasible aggregates to SolveBounded's diagnostics
	}
	maxMoves := 4*len(ps.pods) + 8
	for move := 0; move < maxMoves; move++ {
		t := (sumA - load) / sumB
		// Best addition: the unused machine with the largest coordinate;
		// best removal: the used machine with the smallest. Ascending scan
		// with strict comparisons keeps ties deterministic.
		addIdx, remIdx := -1, -1
		var addX, remX float64
		for i := 0; i < n; i++ {
			x := r.Pairs[i].A - t*r.Pairs[i].B
			if in[i] {
				if remIdx < 0 || x < remX {
					remIdx, remX = i, x
				}
			} else if blocked != nil && blocked[i] {
				continue
			} else if addIdx < 0 || x > addX {
				addIdx, addX = i, x
			}
		}
		bestIdx, bestAdd := -1, false
		bestPower := cur
		if addIdx >= 0 {
			if w, ok := score(k+1, sumA+r.Pairs[addIdx].A, sumB+r.Pairs[addIdx].B); ok && w < bestPower-1e-9 {
				bestIdx, bestAdd, bestPower = addIdx, true, w
			}
		}
		if remIdx >= 0 && k > minK {
			if w, ok := score(k-1, sumA-r.Pairs[remIdx].A, sumB-r.Pairs[remIdx].B); ok && w < bestPower-1e-9 {
				bestIdx, bestAdd, bestPower = remIdx, false, w
			}
		}
		// Same-k swap: when the count is right but membership at a pod
		// boundary is wrong, neither single move pays (add charges W2,
		// remove loses coverage) yet trading the back-most member for the
		// front-most outsider strictly raises t.
		swap := false
		if addIdx >= 0 && remIdx >= 0 && addIdx != remIdx {
			swapA := sumA - r.Pairs[remIdx].A + r.Pairs[addIdx].A
			swapB := sumB - r.Pairs[remIdx].B + r.Pairs[addIdx].B
			if w, ok := score(k, swapA, swapB); ok && w < bestPower-1e-9 {
				swap, bestPower = true, w
			}
		}
		switch {
		case swap:
			in[remIdx], in[addIdx] = false, true
			sumA += r.Pairs[addIdx].A - r.Pairs[remIdx].A
			sumB += r.Pairs[addIdx].B - r.Pairs[remIdx].B
		case bestIdx < 0:
			return unionFromMask(in, k)
		case bestAdd:
			in[bestIdx] = true
			sumA += r.Pairs[bestIdx].A
			sumB += r.Pairs[bestIdx].B
			k++
		default:
			in[bestIdx] = false
			sumA -= r.Pairs[bestIdx].A
			sumB -= r.Pairs[bestIdx].B
			k--
		}
		cur = bestPower
	}
	return unionFromMask(in, k)
}

// unionFromMask materializes a membership mask as ascending machine IDs.
func unionFromMask(in []bool, k int) []int {
	out := make([]int, 0, k)
	for i, used := range in {
		if used {
			out = append(out, i)
		}
	}
	return out
}

// Plan returns the two-level plan for the given total load: hierarchical
// subset selection (Select) followed by the room's exact closed form over
// the union, so the load split and supply temperature are exact for the
// chosen machines and any optimality gap lives in the subset choice
// alone.
func (ps *PodSnapshot) Plan(load float64) (*Plan, error) {
	union, err := ps.Select(load)
	if err != nil {
		return nil, err
	}
	plan, err := ps.profile.SolveBounded(union, load)
	if err != nil {
		return nil, err
	}
	if err := ps.profile.ValidatePlan(plan, load, 1e-6); err != nil {
		return nil, fmt.Errorf("core: hierarchical optimizer produced invalid plan: %w", err)
	}
	return plan, nil
}

// Consolidate answers select(A, k ≥ minK, L) hierarchically: the on-set
// from Select, topped up deterministically with the front-most unused
// machines when the union is smaller than minK, scored with the room's
// Eq. 23.
func (ps *PodSnapshot) Consolidate(load float64, minK int) (Selection, error) {
	if minK < 1 {
		minK = 1
	}
	union, err := ps.Select(load)
	if err != nil {
		return Selection{}, err
	}
	if len(union) < minK {
		union, err = ps.topUp(union, load, minK)
		if err != nil {
			return Selection{}, err
		}
	}
	t, err := ps.room.TValue(union, load)
	if err != nil {
		return Selection{}, err
	}
	power, err := ps.room.SubsetPower(union, load)
	if err != nil {
		return Selection{}, err
	}
	return Selection{Subset: union, T: t, Power: power}, nil
}

// topUp grows the union to minK machines by adding the unused machines
// with the largest particle coordinate at the union's t-value — the same
// front-most rule the flat tables encode, applied to the leftovers.
// Deterministic: coordinate ties break by ID.
func (ps *PodSnapshot) topUp(union []int, load float64, minK int) ([]int, error) {
	n := ps.profile.Size()
	if minK > n {
		return nil, fmt.Errorf("core: minK = %d exceeds %d machines", minK, n)
	}
	t, err := ps.room.TValue(union, load)
	if err != nil {
		return nil, err
	}
	if t < 0 {
		t = 0
	}
	inUnion := make([]bool, n)
	for _, i := range union {
		inUnion[i] = true
	}
	rest := make([]int, 0, n-len(union))
	for i := 0; i < n; i++ {
		if !inUnion[i] {
			rest = append(rest, i)
		}
	}
	sort.Slice(rest, func(x, y int) bool {
		return particleLess(ps.room.Pairs, rest[x], rest[y], t)
	})
	out := append(append([]int(nil), union...), rest[:minK-len(union)]...)
	sort.Ints(out)
	return out, nil
}

// MaxLoad answers the budget question hierarchically: each pod proposes
// its best subset for its cooling-share of the budget, and the room's
// exact budget boundary (Eq. 23–24) is solved once over the union —
//
//	t* = (k·W2 + c·f_ac·T_SP + W1·ΣA − P_b)/(ρ + W1·ΣB),
//	L  = ΣA − t*·ΣB,
//
// clamped into the t ≥ 0 regime and the L ≤ k capacity cap, so the
// reported load never overstates what the union can actually serve under
// the budget.
func (ps *PodSnapshot) MaxLoad(budgetW float64) (MaxLoadResult, error) {
	var union []int
	for _, pd := range ps.pods {
		res, err := pd.pre.MaxLoad(budgetW * pd.share)
		if err != nil {
			continue
		}
		if res.Load > float64(len(res.Subset)) {
			res.Load = float64(len(res.Subset))
		}
		for _, li := range res.Subset {
			union = append(union, pd.ids[li])
		}
	}
	if len(union) == 0 {
		return MaxLoadResult{}, fmt.Errorf("%w: budget %v W serves no pod", ErrInfeasible, budgetW)
	}
	sort.Ints(union)
	r := ps.room
	var sumA, sumB float64
	for _, i := range union {
		sumA += r.Pairs[i].A
		sumB += r.Pairs[i].B
	}
	k := float64(len(union))
	t := (k*r.W2 + r.CoolFactor*r.SetPointC + r.W1*sumA - budgetW) / (r.Rho + r.W1*sumB)
	if t < 0 {
		t = 0
	}
	load := sumA - t*sumB
	if load > k {
		load = k // capacity cap; t at the front for the capped load
		t = (sumA - load) / sumB
	}
	if load < 0 {
		return MaxLoadResult{}, fmt.Errorf("%w: budget %v W below the %d-machine floor", ErrInfeasible, budgetW, len(union))
	}
	return MaxLoadResult{Load: load, Subset: union, T: t}, nil
}
