package core

import (
	"errors"
	"math"
	"testing"

	"coolopt/internal/mathx"
)

// This file is the differential half of the incremental-maintenance
// contract: across randomized drift sequences, Patch must reproduce a
// from-scratch rebuild of the patched profile byte for byte — tables,
// arena ranks, aggregates, and the plans computed on them. "Incremental
// equals rebuild" is exactly the kind of invariant that silently rots, so
// the battery runs chained epochs (each patch applied on top of the
// previous patch's output, never on a fresh rebuild) to catch drift that
// compounds.

// driftBatch picks k distinct machines and perturbs their Eq. 8
// coefficients within the validity envelope (α, β > 0 and K_i > 0 for
// the paper-regime rooms the battery uses).
func driftBatch(rng *mathx.Rand, p *Profile, k int) []MachineDelta {
	n := p.Size()
	if k > n {
		k = n
	}
	ids := rng.Perm(n)[:k]
	out := make([]MachineDelta, 0, k)
	for _, id := range ids {
		m := p.Machines[id]
		m.Alpha *= rng.Uniform(0.97, 1.03)
		m.Beta *= rng.Uniform(0.95, 1.05)
		m.Gamma += rng.Uniform(-0.5, 0.5)
		out = append(out, MachineDelta{ID: id, Machine: m})
	}
	return out
}

// applyBatch mirrors a drift batch onto a plain profile copy, the input
// of the from-scratch rebuild the patch is compared against.
func applyBatch(p *Profile, batch []MachineDelta) *Profile {
	next := *p
	next.Machines = append([]MachineProfile(nil), p.Machines...)
	for _, d := range batch {
		next.Machines[d.ID] = d.Machine
	}
	return &next
}

// bitsEqualFloats fails the test at the first float slice entry whose bits
// differ.
func bitsEqualFloats(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %v vs %v (not bit-identical)", label, i, got[i], want[i])
		}
	}
}

func equalInts(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %d vs %d", label, i, got[i], want[i])
		}
	}
}

func equalInt32s(t *testing.T, label string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %d vs %d", label, i, got[i], want[i])
		}
	}
}

// equalTables asserts every retained query structure is byte-identical:
// event grid, segment-piece arena, and persistent front-set arena. The
// retained crossing list is deliberately NOT compared — a patch's merge
// may permute exact-time ties relative to a fresh full sort, which the
// sweep provably cannot observe; the t-sequence equality is implied by
// the event grid.
func equalTables(t *testing.T, label string, got, want *Preprocessed) {
	t.Helper()
	bitsEqualFloats(t, label+" events", got.events, want.events)
	equalInts(t, label+" segOff", got.segOff, want.segOff)
	equalInt32s(t, label+" segEvent", got.segEvent, want.segEvent)
	bitsEqualFloats(t, label+" segA", got.segA, want.segA)
	bitsEqualFloats(t, label+" segB", got.segB, want.segB)
	equalInts(t, label+" posOff", got.posOff, want.posOff)
	equalInt32s(t, label+" posEvent", got.posEvent, want.posEvent)
	equalInt32s(t, label+" posID", got.posID, want.posID)
	gp, wp := got.reduced.Pairs, want.reduced.Pairs
	if len(gp) != len(wp) {
		t.Fatalf("%s pairs: length %d vs %d", label, len(gp), len(wp))
	}
	for i := range gp {
		if math.Float64bits(gp[i].A) != math.Float64bits(wp[i].A) ||
			math.Float64bits(gp[i].B) != math.Float64bits(wp[i].B) {
			t.Fatalf("%s pair %d = %+v vs %+v", label, i, gp[i], wp[i])
		}
	}
}

// equalPlans asserts two plans are byte-identical: on set, per-machine
// load split, and supply temperature.
func equalPlans(t *testing.T, label string, got, want *Plan) {
	t.Helper()
	equalInts(t, label+" on", got.On, want.On)
	bitsEqualFloats(t, label+" loads", got.Loads, want.Loads)
	if math.Float64bits(float64(got.TAcC)) != math.Float64bits(float64(want.TAcC)) {
		t.Fatalf("%s TAcC %v vs %v", label, got.TAcC, want.TAcC)
	}
}

// checkFlatAgainstRebuild compares a patched snapshot against a fresh
// NewSnapshot over the same profile: tables and a plan sweep.
func checkFlatAgainstRebuild(t *testing.T, label string, got *Snapshot, p *Profile, epoch uint64) {
	t.Helper()
	want, err := NewSnapshot(p, epoch, WithPreprocessWorkers(1))
	if err != nil {
		t.Fatalf("%s rebuild: %v", label, err)
	}
	if got.Epoch() != epoch {
		t.Fatalf("%s epoch = %d, want %d", label, got.Epoch(), epoch)
	}
	equalTables(t, label, got.pre, want.pre)
	n := p.Size()
	for _, frac := range []float64{0.1, 0.45, 0.8} {
		load := frac * float64(n)
		gp, gerr := got.Plan(load)
		wp, werr := want.Plan(load)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("%s load %v: err %v vs %v", label, load, gerr, werr)
		}
		if gerr != nil {
			continue
		}
		equalPlans(t, label, gp, wp)
	}
}

// TestPatchMatchesRebuildFlat is the flat differential battery: chained
// randomized drift epochs with k ∈ {1, 16, all} against from-scratch
// rebuilds, across multiple seeds.
func TestPatchMatchesRebuildFlat(t *testing.T) {
	const n = 96
	epochs := 50
	if testing.Short() || raceEnabled {
		epochs = 12
	}
	ks := []int{1, 16, 256} // 256 clips to n: the all-machines drift case
	for _, seed := range []int64{1, 2, 3} {
		rng := mathx.NewRand(seed)
		profile := hierProfile(n)
		cur, err := NewSnapshot(profile, 0, WithPatchSupport(), WithPreprocessWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		if !cur.PatchSupported() {
			t.Fatal("WithPatchSupport did not retain crossings")
		}
		for e := 0; e < epochs; e++ {
			batch := driftBatch(rng, profile, ks[e%len(ks)])
			profile = applyBatch(profile, batch)
			next, err := cur.Patch(batch, WithPreprocessWorkers(1))
			if err != nil {
				t.Fatalf("seed %d epoch %d: patch: %v", seed, e, err)
			}
			checkFlatAgainstRebuild(t, "flat", next, profile, uint64(e+1))
			if !next.PatchSupported() {
				t.Fatalf("seed %d epoch %d: patched snapshot lost patch support", seed, e)
			}
			cur = next
		}
	}
}

// TestPatchMatchesRebuildPods is the pod-level differential battery:
// chained drift epochs against from-scratch NewPodSnapshot rebuilds,
// comparing every pod's tables, aggregates, and the hierarchical plans.
func TestPatchMatchesRebuildPods(t *testing.T) {
	const n, pods = 128, 8
	epochs := 50
	if testing.Short() || raceEnabled {
		epochs = 12
	}
	ks := []int{1, 16, 256}
	for _, seed := range []int64{1, 2, 3} {
		rng := mathx.NewRand(seed)
		profile := hierProfile(n)
		cur, err := NewPodSnapshot(profile, 0, WithPodCount(pods), WithPodBuildWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < epochs; e++ {
			batch := driftBatch(rng, profile, ks[e%len(ks)])
			profile = applyBatch(profile, batch)
			next, err := cur.Patch(batch, WithPodBuildWorkers(1))
			if err != nil {
				t.Fatalf("seed %d epoch %d: patch: %v", seed, e, err)
			}
			want, err := NewPodSnapshot(profile, uint64(e+1), WithPodCount(pods), WithPodBuildWorkers(1))
			if err != nil {
				t.Fatalf("seed %d epoch %d: rebuild: %v", seed, e, err)
			}
			if next.Epoch() != uint64(e+1) {
				t.Fatalf("epoch = %d, want %d", next.Epoch(), e+1)
			}
			if next.Pods() != want.Pods() {
				t.Fatalf("pods = %d, want %d", next.Pods(), want.Pods())
			}
			if math.Float64bits(next.totalB) != math.Float64bits(want.totalB) {
				t.Fatalf("totalB %v vs %v", next.totalB, want.totalB)
			}
			for j := range next.pods {
				g, w := next.pods[j], want.pods[j]
				equalInts(t, "pod ids", g.ids, w.ids)
				if math.Float64bits(g.sumA) != math.Float64bits(w.sumA) ||
					math.Float64bits(g.sumB) != math.Float64bits(w.sumB) ||
					math.Float64bits(g.share) != math.Float64bits(w.share) {
					t.Fatalf("pod %d aggregates (%v,%v,%v) vs (%v,%v,%v)",
						j, g.sumA, g.sumB, g.share, w.sumA, w.sumB, w.share)
				}
				equalTables(t, "pod tables", g.pre, w.pre)
				if math.Float64bits(g.reduced.Rho) != math.Float64bits(w.reduced.Rho) ||
					math.Float64bits(g.reduced.CoolFactor) != math.Float64bits(w.reduced.CoolFactor) {
					t.Fatalf("pod %d reduced scalars differ", j)
				}
				if math.Float64bits(g.pre.reduced.Rho) != math.Float64bits(w.pre.reduced.Rho) {
					t.Fatalf("pod %d shared table head kept a stale Rho", j)
				}
			}
			for _, frac := range []float64{0.1, 0.45, 0.8} {
				load := frac * float64(n)
				gp, gerr := next.Plan(load)
				wp, werr := want.Plan(load)
				if (gerr == nil) != (werr == nil) {
					t.Fatalf("load %v: err %v vs %v", load, gerr, werr)
				}
				if gerr != nil {
					continue
				}
				equalPlans(t, "pod plan", gp, wp)
			}
			cur = next
		}
	}
}

// TestPatchMatchesRebuildLarge runs one differential epoch at the
// whole-room cap (n = 4096, k = 16 drifted) for both table forms. Gated
// out of race runs like the other n = 4096 sweeps: the detector's ~10×
// slowdown buys nothing on single-threaded arithmetic.
func TestPatchMatchesRebuildLarge(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("n=4096 differential skipped in -short/-race runs")
	}
	const n, k = 4096, 16
	profile := hierProfile(n)
	rng := mathx.NewRand(11)
	batch := driftBatch(rng, profile, k)
	patched := applyBatch(profile, batch)

	// Worker counts pinned to 1 on the flat path: block boundaries shift
	// prefix-sum accumulation order, so cross-worker-count bit-identity is
	// not part of the contract (see WithPreprocessWorkers).
	flat, err := NewSnapshot(profile, 0, WithPatchSupport(), WithPreprocessWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := flat.Patch(batch, WithPreprocessWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	checkFlatAgainstRebuild(t, "flat n=4096", got, patched, 1)

	pods, err := NewPodSnapshot(profile, 0, WithPodCount(16))
	if err != nil {
		t.Fatal(err)
	}
	gotPods, err := pods.Patch(batch)
	if err != nil {
		t.Fatal(err)
	}
	wantPods, err := NewPodSnapshot(patched, 1, WithPodCount(16))
	if err != nil {
		t.Fatal(err)
	}
	for j := range gotPods.pods {
		equalTables(t, "pod n=4096", gotPods.pods[j].pre, wantPods.pods[j].pre)
	}
	for _, frac := range []float64{0.1, 0.45, 0.8} {
		load := frac * float64(n)
		gp, gerr := gotPods.Plan(load)
		wp, werr := wantPods.Plan(load)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("load %v: err %v vs %v", load, gerr, werr)
		}
		if gerr != nil {
			continue
		}
		equalPlans(t, "pod plan n=4096", gp, wp)
	}
}

// TestPatchSharesUntouchedPodArenas pins the perf contract structurally:
// a pod without drifted machines must share its table arenas with the
// receiver by reference, not rebuild them.
func TestPatchSharesUntouchedPodArenas(t *testing.T) {
	const n, pods = 128, 8
	profile := hierProfile(n)
	cur, err := NewPodSnapshot(profile, 0, WithPodCount(pods), WithPodBuildWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	m := profile.Machines[3]
	m.Gamma += 0.25
	next, err := cur.Patch([]MachineDelta{{ID: 3, Machine: m}})
	if err != nil {
		t.Fatal(err)
	}
	pj, err := next.PodIndex(3)
	if err != nil {
		t.Fatal(err)
	}
	for j := range next.pods {
		shared := &next.pods[j].pre.segA[0] == &cur.pods[j].pre.segA[0]
		if j == pj {
			if shared {
				t.Fatalf("drifted pod %d shares its segment arena with the receiver", j)
			}
			continue
		}
		if !shared {
			t.Fatalf("untouched pod %d rebuilt its segment arena", j)
		}
		if next.pods[j].pre == cur.pods[j].pre {
			t.Fatalf("untouched pod %d shares the table head (stale reduced scalars)", j)
		}
	}
}

// TestPatchZeroDeltaSharesTables pins the empty-batch fast path: the
// tables are shared outright and only the epoch advances.
func TestPatchZeroDeltaSharesTables(t *testing.T) {
	s, err := NewSnapshot(hierProfile(32), 7, WithPatchSupport(), WithPreprocessWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	next, err := s.Patch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch() != 8 {
		t.Fatalf("epoch = %d, want 8", next.Epoch())
	}
	if next.pre != s.pre {
		t.Fatal("zero-delta patch rebuilt the tables")
	}
}

// TestPatchWithoutRetentionFallsBack pins the fallback: a snapshot built
// without WithPatchSupport still patches correctly via a full rebuild.
func TestPatchWithoutRetentionFallsBack(t *testing.T) {
	profile := hierProfile(48)
	s, err := NewSnapshot(profile, 0, WithPreprocessWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.PatchSupported() {
		t.Fatal("retention on without WithPatchSupport")
	}
	batch := driftBatch(mathx.NewRand(9), profile, 4)
	next, err := s.Patch(batch, WithPreprocessWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	checkFlatAgainstRebuild(t, "fallback", next, applyBatch(profile, batch), 1)
}

// TestPatchRejectsBadDeltas pins the typed-error contract for batches
// Patch must refuse.
func TestPatchRejectsBadDeltas(t *testing.T) {
	profile := hierProfile(16)
	s, err := NewSnapshot(profile, 0, WithPatchSupport(), WithPreprocessWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPodSnapshot(profile, 0, WithPodCount(4), WithPodBuildWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	good := profile.Machines[0]
	bad := good
	bad.Beta = -1
	cases := map[string][]MachineDelta{
		"out of range":  {{ID: 16, Machine: good}},
		"negative id":   {{ID: -1, Machine: good}},
		"duplicate id":  {{ID: 2, Machine: good}, {ID: 2, Machine: good}},
		"invalid coeff": {{ID: 0, Machine: bad}},
	}
	for name, batch := range cases {
		if _, err := s.Patch(batch); !errors.Is(err, ErrBadDelta) {
			t.Fatalf("flat %s: err = %v, want ErrBadDelta", name, err)
		}
		if _, err := ps.Patch(batch); !errors.Is(err, ErrBadDelta) {
			t.Fatalf("pods %s: err = %v, want ErrBadDelta", name, err)
		}
	}
}

// TestPodIndex pins the partition lookup used to route drift to pods.
func TestPodIndex(t *testing.T) {
	ps, err := NewPodSnapshot(hierProfile(100), 0, WithPodCount(7), WithPodBuildWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 100; id++ {
		j, err := ps.PodIndex(id)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, mid := range ps.pods[j].ids {
			if mid == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("machine %d not in reported pod %d", id, j)
		}
	}
	if _, err := ps.PodIndex(100); err == nil {
		t.Fatal("out-of-range PodIndex succeeded")
	}
	if _, err := ps.PodIndex(-1); err == nil {
		t.Fatal("negative PodIndex succeeded")
	}
}
