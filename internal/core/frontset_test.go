package core

import (
	"fmt"
	"math"
	"testing"

	"coolopt/internal/mathx"
)

// smoothReduced mirrors the scaling-benchmark instance: deterministic
// per-machine jitter with no exact ties, the regime the datacenter-scale
// structure actually serves.
func smoothReduced(n int) Reduced {
	pairs := make([]Pair, n)
	for i := range pairs {
		h := float64(i) / float64(n-1)
		jitter := 0.05 * math.Sin(float64(i)*2.399963)
		beta := 0.46 * (1 + 0.1*h + jitter)
		gamma := 0.5 + 2.2*h - 10*jitter
		pairs[i] = Pair{
			A: (65 - beta*34 - gamma) / (beta * 52),
			B: 1.0 / beta,
		}
	}
	return Reduced{Pairs: pairs, W2: 34, Rho: 150 * 52, CoolFactor: 150, SetPointC: 31, W1: 52}
}

// checkFrontSetsIdentical compares the persistent front-set arena against
// the on-demand rebuild for the given (event, k) query points.
func checkFrontSetsIdentical(t *testing.T, label string, pp *Preprocessed, events, ks []int) {
	t.Helper()
	for _, e := range events {
		for _, k := range ks {
			got := pp.frontSet(e, k)
			want := pp.frontSetRebuild(e, k)
			if len(got) != len(want) {
				t.Fatalf("%s: frontSet(e=%d, k=%d) = %v, want %v", label, e, k, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: frontSet(e=%d, k=%d) = %v, want %v", label, e, k, got, want)
				}
			}
		}
	}
}

// TestPersistentFrontSetMatchesRebuild is the satellite property test:
// across n ∈ {64, 256, 1024}, the persistent front-set arena returns
// byte-identical subsets to the frontSet rebuild the queries used before
// — on tie-heavy exact-grid instances at the small sizes (exhaustively at
// n = 64) and on the smooth scaling instance at n = 1024 (sampled).
func TestPersistentFrontSetMatchesRebuild(t *testing.T) {
	rng := mathx.NewRand(20260806)

	// Tie-heavy adversarial instances: duplicated speeds and whole pairs
	// force simultaneous crossings, the regime where incremental order
	// maintenance historically breaks.
	trials := 20
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		red := gridReduced(rng, 64)
		pp, err := Preprocess(red)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		events := make([]int, pp.Events())
		ks := make([]int, len(red.Pairs))
		for e := range events {
			events[e] = e
		}
		for k := range ks {
			ks[k] = k + 1
		}
		checkFrontSetsIdentical(t, fmt.Sprintf("grid n=64 trial %d", trial), pp, events, ks)
	}

	for _, n := range []int{256, 1024} {
		if testing.Short() && n > 256 {
			break
		}
		var red Reduced
		if n == 256 {
			red = gridReduced(rng, n)
		} else {
			red = smoothReduced(n)
		}
		pp, err := Preprocess(red)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Sample: every k at a spread of events, every event boundary
		// region at a spread of ks, plus random probes.
		events := []int{0, 1, pp.Events() / 3, pp.Events() / 2, pp.Events() - 2, pp.Events() - 1}
		ks := make([]int, 0, n)
		for k := 1; k <= n; k++ {
			ks = append(ks, k)
		}
		checkFrontSetsIdentical(t, fmt.Sprintf("n=%d all-k", n), pp, events, ks)

		randEvents := make([]int, 40)
		randKs := make([]int, 8)
		for i := range randEvents {
			randEvents[i] = rng.Intn(pp.Events())
		}
		for i := range randKs {
			randKs[i] = 1 + rng.Intn(n)
		}
		checkFrontSetsIdentical(t, fmt.Sprintf("n=%d sampled", n), pp, randEvents, randKs)
	}
}

// TestFrontArenaWriteBudget pins the arena's size class: the number of
// persistent writes stays O(n²) — within a small constant of the crossing
// count — so the structure does not reintroduce the dense form's O(n³)
// memory.
func TestFrontArenaWriteBudget(t *testing.T) {
	red := smoothReduced(256)
	pp, err := Preprocess(red)
	if err != nil {
		t.Fatal(err)
	}
	n := len(red.Pairs)
	crossings := n * (n - 1) / 2
	if pp.FrontWrites() > 3*crossings+n {
		t.Fatalf("front arena has %d writes for %d crossings; expected ≤ %d",
			pp.FrontWrites(), crossings, 3*crossings+n)
	}
}
