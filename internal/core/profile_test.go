package core

import (
	"testing"

	"coolopt/internal/mathx"
	"coolopt/internal/units"
)

// testProfile returns a 6-machine heterogeneous profile with a realistic
// bottom-cool / top-warm gradient. Constants are chosen so the temperature
// constraint binds inside the actuation range at moderate-to-high loads.
func testProfile() *Profile {
	return &Profile{
		W1:         50,
		W2:         35,
		CoolFactor: 70,
		SetPointC:  30,
		TMaxC:      58,
		TAcMinC:    8,
		TAcMaxC:    25,
		Machines: []MachineProfile{
			{Alpha: 0.96, Beta: 0.44, Gamma: 1.2},
			{Alpha: 0.93, Beta: 0.45, Gamma: 2.1},
			{Alpha: 0.90, Beta: 0.45, Gamma: 3.0},
			{Alpha: 0.87, Beta: 0.46, Gamma: 3.9},
			{Alpha: 0.83, Beta: 0.47, Gamma: 5.1},
			{Alpha: 0.80, Beta: 0.48, Gamma: 6.0},
		},
	}
}

func TestProfileValidate(t *testing.T) {
	if err := testProfile().Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{name: "w1", mutate: func(p *Profile) { p.W1 = 0 }},
		{name: "w2", mutate: func(p *Profile) { p.W2 = -1 }},
		{name: "cool factor", mutate: func(p *Profile) { p.CoolFactor = 0 }},
		{name: "bounds", mutate: func(p *Profile) { p.TAcMinC, p.TAcMaxC = 25, 8 }},
		{name: "no machines", mutate: func(p *Profile) { p.Machines = nil }},
		{name: "bad alpha", mutate: func(p *Profile) { p.Machines[2].Alpha = 0 }},
		{name: "bad beta", mutate: func(p *Profile) { p.Machines[2].Beta = -1 }},
		{name: "infeasible K", mutate: func(p *Profile) { p.Machines[0].Gamma = 100 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := testProfile()
			tt.mutate(p)
			if err := p.Validate(); err == nil {
				t.Fatal("invalid profile accepted")
			}
		})
	}
}

func TestKMatchesDefinition(t *testing.T) {
	p := testProfile()
	for i := range p.Machines {
		m := p.Machines[i]
		want := (p.TMaxC - m.Beta*p.W2 - m.Gamma) / (m.Beta * p.W1)
		if got := p.K(i); !mathx.ApproxEqual(got, want, 1e-12) {
			t.Fatalf("K(%d) = %v, want %v", i, got, want)
		}
		// K_i is the load at which T_cpu = T_max when T_ac = 0 °C.
		if temp := float64(p.CPUTemp(i, p.K(i), 0)); !mathx.ApproxEqual(temp, p.TMaxC, 1e-9) {
			t.Fatalf("CPUTemp(%d, K, 0) = %v, want T_max %v", i, temp, p.TMaxC)
		}
	}
}

func TestCoolerMachinesHaveLargerK(t *testing.T) {
	// Machine 0 (bottom, coolest) must support more load than machine 5
	// (top, warmest).
	p := testProfile()
	if p.K(0) <= p.K(5) {
		t.Fatalf("K(0) = %v ≤ K(5) = %v", p.K(0), p.K(5))
	}
}

func TestServerPower(t *testing.T) {
	p := testProfile()
	if got := p.ServerPower(0); got != 35 {
		t.Fatalf("idle power = %v, want 35", got)
	}
	if got := p.ServerPower(1); got != 85 {
		t.Fatalf("full power = %v, want 85", got)
	}
}

func TestCoolingPower(t *testing.T) {
	p := testProfile()
	if got := float64(p.CoolingPower(20)); !mathx.ApproxEqual(got, 70*10, 1e-12) {
		t.Fatalf("CoolingPower(20) = %v, want 700", got)
	}
	if got := p.CoolingPower(35); got != 0 {
		t.Fatalf("CoolingPower above set point = %v, want 0", got)
	}
}

func TestCPUTempAffine(t *testing.T) {
	p := testProfile()
	m := p.Machines[1]
	load, tAc := 0.6, 18.0
	want := m.Alpha*tAc + m.Beta*(p.W1*load+p.W2) + m.Gamma
	if got := float64(p.CPUTemp(1, load, units.Celsius(tAc))); !mathx.ApproxEqual(got, want, 1e-12) {
		t.Fatalf("CPUTemp = %v, want %v", got, want)
	}
}

func TestMaxSafeTAc(t *testing.T) {
	p := testProfile()
	on := []int{0, 1, 2, 3, 4, 5}
	loads := []float64{1, 1, 1, 1, 1, 1}
	got, err := p.MaxSafeTAc(on, loads)
	if err != nil {
		t.Fatalf("MaxSafeTAc: %v", err)
	}
	// At the returned temperature every machine is at or below T_max and
	// at least one machine is exactly at T_max (otherwise it wasn't max).
	atLimit := false
	for _, i := range on {
		temp := float64(p.CPUTemp(i, loads[i], got))
		if temp > p.TMaxC+1e-9 {
			t.Fatalf("machine %d at %v exceeds T_max", i, temp)
		}
		if mathx.ApproxEqual(temp, p.TMaxC, 1e-9) {
			atLimit = true
		}
	}
	if !atLimit && float64(got) < p.TAcMaxC {
		t.Fatal("MaxSafeTAc left headroom without hitting the actuation bound")
	}
}

func TestMaxSafeTAcEmptyOnSet(t *testing.T) {
	p := testProfile()
	got, err := p.MaxSafeTAc(nil, make([]float64, p.Size()))
	if err != nil {
		t.Fatalf("MaxSafeTAc: %v", err)
	}
	if float64(got) != p.TAcMaxC {
		t.Fatalf("empty on set safe T_ac = %v, want max %v", got, p.TAcMaxC)
	}
}

func TestMaxSafeTAcErrors(t *testing.T) {
	p := testProfile()
	if _, err := p.MaxSafeTAc([]int{0}, []float64{1}); err == nil {
		t.Fatal("short loads accepted")
	}
	if _, err := p.MaxSafeTAc([]int{99}, make([]float64, p.Size())); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	// A machine that cannot be kept under T_max even at the coldest
	// supply must surface an error.
	hot := testProfile()
	hot.TAcMinC = 24.9
	loads := []float64{1, 1, 1, 1, 1, 1}
	if _, err := hot.MaxSafeTAc([]int{5}, loads); err == nil {
		t.Fatal("unreachable safe temperature accepted")
	}
}
