// Package core implements the paper's contribution: the closed-form
// energy-optimal load distribution across a set of powered-on machines
// (paper §III-A, Eqs. 19/21/22) and the guaranteed-optimal consolidation
// algorithms that pick which machines to power on (paper §III-B,
// Algorithms 1–2).
//
// The package operates purely on the paper's profiled model:
//
//	P_i      = W1·L_i + W2                    server power    (Eq. 9)
//	T_i^cpu  = α_i·T_ac + β_i·P_i + γ_i       CPU temperature (Eq. 8)
//	P_ac     = c·f_ac·(T_SP − T_ac)           cooling power   (Eq. 10)
//
// with load L_i expressed as a utilization fraction in [0, 1] and
// temperatures in °C. Where the coefficients come from (profiling a real
// or simulated rack) is the business of internal/profiling.
//
//coolopt:deterministic
package core

import (
	"errors"
	"fmt"

	"coolopt/internal/units"
)

// MachineProfile holds the per-machine thermal coefficients of paper Eq. 8.
type MachineProfile struct {
	// Alpha is the dimensionless coefficient coupling the CRAC supply
	// temperature to this machine's CPU temperature.
	Alpha float64 `json:"alpha"`
	// Beta is the coefficient of machine power in K/W.
	Beta float64 `json:"beta"`
	// Gamma is the affine offset in °C.
	Gamma float64 `json:"gamma"`
}

// Validate checks physical plausibility of the coefficients.
func (m MachineProfile) Validate() error {
	if m.Alpha <= 0 {
		return fmt.Errorf("core: alpha = %v, must be positive", m.Alpha)
	}
	if m.Beta <= 0 {
		return fmt.Errorf("core: beta = %v, must be positive", m.Beta)
	}
	return nil
}

// Profile is everything the optimizer needs to know about a machine room:
// the shared power model, the cooling cost model, the constraint, and one
// thermal profile per machine.
type Profile struct {
	// W1 is the load-dependent power coefficient in Watts per unit
	// utilization; W2 is the idle power in Watts (Eq. 9). The paper's
	// machines are identical hardware, so these are cluster-wide.
	W1 float64 `json:"w1"`
	W2 float64 `json:"w2"`

	// CoolFactor is c·f_ac = c_air·f_ac/η in W/K: the Watts of cooling
	// power saved per °C the supply temperature is raised (Eq. 10).
	CoolFactor float64 `json:"coolFactor"`
	// SetPointC is the CRAC exhaust set point T_SP in °C, a constant of
	// the room in the paper's formulation.
	SetPointC float64 `json:"setPointC"`

	// TMaxC is the maximum allowed CPU temperature in °C.
	TMaxC float64 `json:"tMaxC"`
	// TAcMinC and TAcMaxC bound the achievable supply temperature in
	// °C. The paper leaves these implicit; Solve clamps into them.
	TAcMinC float64 `json:"tAcMinC"`
	TAcMaxC float64 `json:"tAcMaxC"`

	// Machines lists the per-machine thermal profiles; index is machine
	// ID.
	Machines []MachineProfile `json:"machines"`
}

// Validate checks the profile.
func (p *Profile) Validate() error {
	if p.W1 <= 0 {
		return fmt.Errorf("core: W1 = %v, must be positive", p.W1)
	}
	if p.W2 < 0 {
		return fmt.Errorf("core: W2 = %v, must be non-negative", p.W2)
	}
	if p.CoolFactor <= 0 {
		return fmt.Errorf("core: cool factor = %v, must be positive", p.CoolFactor)
	}
	if p.TAcMinC >= p.TAcMaxC {
		return fmt.Errorf("core: supply bounds [%v, %v] invalid", p.TAcMinC, p.TAcMaxC)
	}
	if len(p.Machines) == 0 {
		return errors.New("core: no machines in profile")
	}
	for i, m := range p.Machines {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("core: machine %d: %w", i, err)
		}
		if k := p.K(i); k <= 0 {
			return fmt.Errorf("core: machine %d infeasible: K = %v ≤ 0 (cannot stay under T_max even idle)", i, k)
		}
	}
	return nil
}

// Size returns the number of machines.
func (p *Profile) Size() int { return len(p.Machines) }

// K returns K_i = (T_max − β_i·W2 − γ_i)/(β_i·W1) from paper Eq. 19: the
// utilization machine i could sustain at T_ac = 0 °C while sitting exactly
// at T_max.
func (p *Profile) K(i int) float64 {
	m := p.Machines[i]
	return (p.TMaxC - m.Beta*p.W2 - m.Gamma) / (m.Beta * p.W1)
}

// RatioAB returns b_i = α_i/β_i in W/K, the per-machine cooling
// sensitivity used throughout §III.
func (p *Profile) RatioAB(i int) float64 {
	m := p.Machines[i]
	return m.Alpha / m.Beta
}

// LoadCap returns the utilization machine i can sustain at the given
// supply temperature while staying at or below T_max, clamped into the
// physical range: cap_i = clamp(K_i − (α_i/β_i)·T_ac/W1, 0, 1), paper
// Eq. 20. This is each machine's thermal slack — the currency degraded
// and safe-mode planners shed load in.
func (p *Profile) LoadCap(i int, tAc units.Celsius) float64 {
	c := p.K(i) - p.RatioAB(i)*float64(tAc)/p.W1
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// CapacityAt sums the Eq. 20 load caps of the pooled machines at the
// given supply temperature: the total load the pool can carry without any
// CPU exceeding T_max.
func (p *Profile) CapacityAt(pool []int, tAc units.Celsius) float64 {
	var capacity float64
	for _, i := range pool {
		capacity += p.LoadCap(i, tAc)
	}
	return capacity
}

// ServerPower returns the modeled power of one machine at the given
// utilization (Eq. 9).
func (p *Profile) ServerPower(load float64) units.Watts {
	return units.Watts(p.W1*load + p.W2)
}

// CoolingPower returns the modeled CRAC power for a supply temperature
// (Eq. 10); it is floored at zero for supply temperatures above the set
// point.
func (p *Profile) CoolingPower(tAc units.Celsius) units.Watts {
	pw := p.CoolFactor * (p.SetPointC - float64(tAc))
	if pw < 0 {
		return 0
	}
	return units.Watts(pw)
}

// CPUTemp returns the modeled steady CPU temperature of machine i at the
// given utilization and supply temperature (Eq. 8).
func (p *Profile) CPUTemp(i int, load float64, tAc units.Celsius) units.Celsius {
	m := p.Machines[i]
	return units.Alpha(m.Alpha).Times(tAc) +
		units.BetaCPerW(m.Beta).Times(p.ServerPower(load)) +
		units.Celsius(m.Gamma)
}

// MaxSafeTAc returns the highest supply temperature (within the actuation
// bounds) at which every listed machine stays at or below T_max when
// running the given per-machine utilizations. This is how the baseline
// scenarios without our optimizer choose T_ac (paper §IV-B). The indices
// in on select machines; loads is indexed by machine ID.
func (p *Profile) MaxSafeTAc(on []int, loads []float64) (units.Celsius, error) {
	if len(loads) != p.Size() {
		return 0, fmt.Errorf("core: %d loads for %d machines", len(loads), p.Size())
	}
	if len(on) == 0 {
		return units.Celsius(p.TAcMaxC), nil
	}
	best := p.TAcMaxC
	for _, i := range on {
		if i < 0 || i >= p.Size() {
			return 0, fmt.Errorf("core: machine index %d out of range", i)
		}
		m := p.Machines[i]
		// α_i·T_ac + β_i·P_i + γ_i ≤ T_max  ⇒  T_ac ≤ (T_max − β_i·P_i − γ_i)/α_i.
		limit := (p.TMaxC - m.Beta*float64(p.ServerPower(loads[i])) - m.Gamma) / m.Alpha
		if limit < best {
			best = limit
		}
	}
	if best < p.TAcMinC {
		return units.Celsius(p.TAcMinC), fmt.Errorf("core: no safe supply temperature within bounds (needs %v °C)", best)
	}
	return units.Celsius(best), nil
}
