package mathx

import "testing"

// BenchmarkLeastSquares measures the regression at the thermal-profiling
// problem size (125 observations × 3 coefficients).
func BenchmarkLeastSquares(b *testing.B) {
	rng := NewRand(1)
	const rows = 125
	design := make([][]float64, rows)
	ys := make([]float64, rows)
	for i := range design {
		x1, x2 := rng.Uniform(10, 25), rng.Uniform(30, 90)
		design[i] = []float64{x1, x2, 1}
		ys[i] = 0.9*x1 + 0.45*x2 + 3 + rng.Normal(0, 0.2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(design, ys); err != nil {
			b.Fatal(err)
		}
	}
}
