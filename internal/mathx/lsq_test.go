package mathx

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSolveLinearIdentity(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	b := []float64{3, -7}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !ApproxEqual(x[0], 3, 1e-12) || !ApproxEqual(x[1], -7, 1e-12) {
		t.Fatalf("got %v, want [3 -7]", x)
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	// 2x + y = 5; x - y = 1 → x=2, y=1.
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !ApproxEqual(x[0], 2, 1e-9) || !ApproxEqual(x[1], 1, 1e-9) {
		t.Fatalf("got %v, want [2 1]", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{4, 9}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !ApproxEqual(x[0], 9, 1e-12) || !ApproxEqual(x[1], 4, 1e-12) {
		t.Fatalf("got %v, want [9 4]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); !errors.Is(err, ErrSingular) {
		t.Fatalf("got err %v, want ErrSingular", err)
	}
}

func TestSolveLinearDimensionErrors(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Fatal("empty system should error")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("rhs length mismatch should error")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("non-square matrix should error")
	}
}

func TestLeastSquaresExactLine(t *testing.T) {
	// y = 3x + 2 with no noise must be recovered exactly.
	xs := []float64{0, 1, 2, 3, 4, 5}
	design := make([][]float64, len(xs))
	ys := make([]float64, len(xs))
	for i, x := range xs {
		design[i] = []float64{x, 1}
		ys[i] = 3*x + 2
	}
	beta, err := LeastSquares(design, ys)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if !ApproxEqual(beta[0], 3, 1e-9) || !ApproxEqual(beta[1], 2, 1e-9) {
		t.Fatalf("got %v, want [3 2]", beta)
	}
}

func TestLeastSquaresTwoRegressors(t *testing.T) {
	// z = 1.5x − 2y + 4 over a grid.
	var design [][]float64
	var ys []float64
	for x := 0.0; x < 4; x++ {
		for y := 0.0; y < 4; y++ {
			design = append(design, []float64{x, y, 1})
			ys = append(ys, 1.5*x-2*y+4)
		}
	}
	beta, err := LeastSquares(design, ys)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	want := []float64{1.5, -2, 4}
	for i := range want {
		if !ApproxEqual(beta[i], want[i], 1e-9) {
			t.Fatalf("beta[%d] = %v, want %v", i, beta[i], want[i])
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Fatal("no observations should error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("underdetermined system should error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged design matrix should error")
	}
}

func TestFitLineRecoversCoefficients(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = -0.5*x + 7
	}
	slope, intercept, err := FitLine(xs, ys)
	if err != nil {
		t.Fatalf("FitLine: %v", err)
	}
	if !ApproxEqual(slope, -0.5, 1e-9) || !ApproxEqual(intercept, 7, 1e-9) {
		t.Fatalf("got slope %v intercept %v, want -0.5 and 7", slope, intercept)
	}
}

func TestFitLineLengthMismatch(t *testing.T) {
	if _, _, err := FitLine([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

// Property: a line fit through noiseless points on y = m·x + c recovers
// (m, c) for arbitrary finite m and c.
func TestFitLinePropertyExactRecovery(t *testing.T) {
	f := func(m, c float64) bool {
		if math.IsNaN(m) || math.IsInf(m, 0) || math.Abs(m) > 1e6 {
			return true // constrain to a numerically sane domain
		}
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e6 {
			return true
		}
		xs := []float64{-2, -1, 0, 1, 2, 3}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = m*x + c
		}
		slope, intercept, err := FitLine(xs, ys)
		if err != nil {
			return false
		}
		return ApproxEqual(slope, m, 1e-6) && ApproxEqual(intercept, c, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveLinear(a, a·x) recovers x for random diagonally dominant
// 3×3 systems (diagonal dominance guarantees non-singularity).
func TestSolveLinearPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRand(seed)
		const n = 3
		a := make([][]float64, n)
		aCopy := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			aCopy[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Uniform(-1, 1)
			}
			a[i][i] += 5 // enforce diagonal dominance
			copy(aCopy[i], a[i])
		}
		want := []float64{rng.Uniform(-10, 10), rng.Uniform(-10, 10), rng.Uniform(-10, 10)}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += aCopy[i][j] * want[j]
			}
		}
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if !ApproxEqual(got[i], want[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
