package mathx

import "testing"

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give the same stream")
		}
	}
}

func TestRandUniformRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestRandNormalMoments(t *testing.T) {
	r := NewRand(123)
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(10, 2)
	}
	if m := Mean(xs); m < 9.9 || m > 10.1 {
		t.Fatalf("sample mean = %v, want ≈10", m)
	}
	if s := StdDev(xs); s < 1.9 || s > 2.1 {
		t.Fatalf("sample stddev = %v, want ≈2", s)
	}
}

func TestRandForkIndependence(t *testing.T) {
	r := NewRand(99)
	f1 := r.Fork()
	f2 := r.Fork()
	same := true
	for i := 0; i < 20; i++ {
		if f1.Float64() != f2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("forked generators produced identical streams")
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(5)
	p := r.Perm(10)
	seen := make(map[int]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Perm missing elements: %v", p)
	}
}
