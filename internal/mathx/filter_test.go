package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewLowPassValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		if _, err := NewLowPass(alpha); err == nil {
			t.Fatalf("NewLowPass(%v) should error", alpha)
		}
	}
	if _, err := NewLowPass(1); err != nil {
		t.Fatalf("NewLowPass(1): %v", err)
	}
}

func TestLowPassPrimesOnFirstSample(t *testing.T) {
	f, err := NewLowPass(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Update(42); got != 42 {
		t.Fatalf("first sample = %v, want 42", got)
	}
}

func TestLowPassConvergesToConstant(t *testing.T) {
	f, err := NewLowPass(0.2)
	if err != nil {
		t.Fatal(err)
	}
	f.Update(0)
	var got float64
	for i := 0; i < 200; i++ {
		got = f.Update(10)
	}
	if !ApproxEqual(got, 10, 1e-6) {
		t.Fatalf("filter settled at %v, want 10", got)
	}
	if !ApproxEqual(f.Value(), got, 1e-12) {
		t.Fatalf("Value() = %v, want %v", f.Value(), got)
	}
}

func TestLowPassAlphaOneIsIdentity(t *testing.T) {
	f, err := NewLowPass(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{3, -8, 12.5} {
		if got := f.Update(v); got != v {
			t.Fatalf("alpha=1 Update(%v) = %v", v, got)
		}
	}
}

func TestLowPassReset(t *testing.T) {
	f, err := NewLowPass(0.5)
	if err != nil {
		t.Fatal(err)
	}
	f.Update(100)
	f.Reset()
	if got := f.Update(7); got != 7 {
		t.Fatalf("after reset first sample = %v, want 7", got)
	}
}

func TestSmooth(t *testing.T) {
	out, err := Smooth([]float64{0, 10, 10, 10}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 5, 7.5, 8.75}
	for i := range want {
		if !ApproxEqual(out[i], want[i], 1e-12) {
			t.Fatalf("Smooth[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if _, err := Smooth(nil, 0); err == nil {
		t.Fatal("invalid alpha should error")
	}
}

func TestSettleDetector(t *testing.T) {
	d, err := NewSettleDetector(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Ramp: diffs of 1.0 exceed the band.
	for _, v := range []float64{0, 1, 2, 3} {
		if d.Update(v) {
			t.Fatal("detector settled during ramp")
		}
	}
	// Flat tail: settles after 3 consecutive in-band diffs.
	settled := false
	for i, v := range []float64{3.1, 3.15, 3.1, 3.12} {
		settled = d.Update(v)
		if settled && i < 2 {
			t.Fatalf("settled too early at sample %d", i)
		}
	}
	if !settled {
		t.Fatal("detector never settled on flat signal")
	}
}

func TestSettleDetectorReset(t *testing.T) {
	d, err := NewSettleDetector(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Update(0)
	d.Update(0)
	d.Update(0)
	d.Reset()
	if d.Update(100) {
		t.Fatal("first sample after reset should not settle")
	}
}

func TestSettleDetectorValidation(t *testing.T) {
	if _, err := NewSettleDetector(0, 3); err == nil {
		t.Fatal("zero band should error")
	}
	if _, err := NewSettleDetector(1, 0); err == nil {
		t.Fatal("zero count should error")
	}
}

// Property: the low-pass output is always within the [min, max] envelope of
// the samples seen so far (it is a convex combination of inputs).
func TestLowPassEnvelopeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRand(seed)
		lp, err := NewLowPass(0.3)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 64; i++ {
			v := rng.Uniform(-1000, 1000)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			out := lp.Update(v)
			if out < lo-1e-9 || out > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
