package mathx

import "math/rand"

// Rand wraps math/rand with the handful of draws the simulator needs, always
// seeded explicitly so every experiment in the repository is reproducible.
type Rand struct {
	src *rand.Rand
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{src: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform draw in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Uniform returns a uniform draw in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Normal returns a Gaussian draw with the given mean and standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// Intn returns a uniform integer in [0, n).
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Fork derives a new independent generator from this one; use it to give
// each simulated component its own stream without coupling their draws.
func (r *Rand) Fork() *Rand {
	return NewRand(r.src.Int63())
}
