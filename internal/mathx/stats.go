package mathx

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	sum := 0.0
	for _, v := range xs {
		d := v - mu
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// RMSE returns the root-mean-square error between two equally long series.
func RMSE(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, errors.New("mathx: series length mismatch")
	}
	if len(pred) == 0 {
		return 0, errors.New("mathx: empty series")
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - obs[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}

// RSquared returns the coefficient of determination of pred against obs.
// A perfect fit returns 1; a fit no better than the mean returns 0.
func RSquared(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, errors.New("mathx: series length mismatch")
	}
	if len(pred) == 0 {
		return 0, errors.New("mathx: empty series")
	}
	mu := Mean(obs)
	var ssRes, ssTot float64
	for i := range obs {
		r := obs[i] - pred[i]
		t := obs[i] - mu
		ssRes += r * r
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1, nil
		}
		return 0, errors.New("mathx: zero variance in observations")
	}
	return 1 - ssRes/ssTot, nil
}

// MaxAbsError returns the largest absolute difference between two series.
func MaxAbsError(pred, obs []float64) (float64, error) {
	if len(pred) != len(obs) {
		return 0, errors.New("mathx: series length mismatch")
	}
	maxErr := 0.0
	for i := range pred {
		if d := math.Abs(pred[i] - obs[i]); d > maxErr {
			maxErr = d
		}
	}
	return maxErr, nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("mathx: empty series")
	}
	if p < 0 || p > 100 {
		return 0, errors.New("mathx: percentile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Clamp limits v to the inclusive range [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Same reports whether a and b are bit-for-bit the same float value
// (with 0 == -0 and NaN != NaN, i.e. plain ==). It exists so deliberate
// exact comparisons — deterministic tie-breaking in sort predicates,
// dedup of event times, detecting a frozen sensor repeating the exact
// same reading — are greppable and visibly intentional. For comparing
// computed quantities use ApproxEqual; cooloptlint's floatcmp analyzer
// flags raw ==/!= on floats precisely to force that choice.
func Same(a, b float64) bool { return a == b }

// ApproxEqual reports whether a and b are within tol of each other, where
// tol is interpreted as an absolute tolerance for small magnitudes and a
// relative tolerance otherwise.
func ApproxEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}
