package mathx

import "errors"

// LowPass is a single-pole exponential low-pass filter, the smoothing the
// paper applies to the 1 Hz power-meter and lm-sensors traces before
// plotting (Figs. 2–3). The zero value is unusable; build with NewLowPass.
type LowPass struct {
	alpha  float64
	state  float64
	primed bool
}

// NewLowPass builds a filter with smoothing factor alpha in (0, 1]; alpha=1
// passes the signal through unchanged, smaller values smooth harder.
func NewLowPass(alpha float64) (*LowPass, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, errors.New("mathx: low-pass alpha must be in (0, 1]")
	}
	return &LowPass{alpha: alpha}, nil
}

// Update feeds one sample and returns the filtered value.
func (f *LowPass) Update(sample float64) float64 {
	if !f.primed {
		f.state = sample
		f.primed = true
		return f.state
	}
	f.state += f.alpha * (sample - f.state)
	return f.state
}

// Value returns the current filter output (the last Update result).
func (f *LowPass) Value() float64 { return f.state }

// Reset clears the filter state so the next sample re-primes it.
func (f *LowPass) Reset() {
	f.state = 0
	f.primed = false
}

// Smooth applies a low-pass filter with the given alpha over a whole series
// and returns the filtered copy.
func Smooth(xs []float64, alpha float64) ([]float64, error) {
	f, err := NewLowPass(alpha)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = f.Update(v)
	}
	return out, nil
}

// SettleDetector reports steady state once a signal has stayed within a band
// for a configured number of consecutive samples. The profiling experiments
// use it to decide when a CPU temperature has stabilized (the paper waits
// ~200 s per load level).
type SettleDetector struct {
	band    float64
	needed  int
	last    float64
	stable  int
	started bool
}

// NewSettleDetector builds a detector that declares steady state after
// consecutive samples whose successive differences stay within band.
func NewSettleDetector(band float64, consecutive int) (*SettleDetector, error) {
	if band <= 0 {
		return nil, errors.New("mathx: settle band must be positive")
	}
	if consecutive <= 0 {
		return nil, errors.New("mathx: settle count must be positive")
	}
	return &SettleDetector{band: band, needed: consecutive}, nil
}

// Update feeds one sample and reports whether the signal is now settled.
func (d *SettleDetector) Update(sample float64) bool {
	if !d.started {
		d.started = true
		d.last = sample
		return false
	}
	diff := sample - d.last
	if diff < 0 {
		diff = -diff
	}
	d.last = sample
	if diff <= d.band {
		d.stable++
	} else {
		d.stable = 0
	}
	return d.stable >= d.needed
}

// Reset clears the detector state.
func (d *SettleDetector) Reset() {
	d.started = false
	d.stable = 0
	d.last = 0
}
