// Package mathx provides the small numerical substrate used across coolopt:
// dense linear least squares, Gaussian elimination, low-pass filters,
// summary statistics, and a deterministic RNG wrapper.
//
// Everything here is stdlib-only and sized for the problem dimensions that
// appear in the paper (regressions with 2–3 coefficients, racks with tens to
// hundreds of machines); no attempt is made to compete with a real BLAS.
//
//coolopt:deterministic
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: singular system")

// SolveLinear solves the square system a·x = b in place using Gaussian
// elimination with partial pivoting. a is row-major with n rows of n columns.
// a and b are clobbered; the solution is returned in a fresh slice.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, errors.New("mathx: empty system")
	}
	if len(b) != n {
		return nil, fmt.Errorf("mathx: dimension mismatch: %d rows, %d rhs", n, len(b))
	}
	for _, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("mathx: non-square matrix: row has %d columns, want %d", len(row), n)
		}
	}

	for col := 0; col < n; col++ {
		// Partial pivot: move the row with the largest magnitude entry up.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]

		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}

	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// LeastSquares fits coefficients beta minimizing ||X·beta − y||² via the
// normal equations XᵀX·beta = Xᵀy. X is row-major: one row per observation,
// one column per regressor (include a column of ones for an intercept).
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	m := len(x)
	if m == 0 {
		return nil, errors.New("mathx: no observations")
	}
	if len(y) != m {
		return nil, fmt.Errorf("mathx: %d rows but %d targets", m, len(y))
	}
	n := len(x[0])
	if n == 0 {
		return nil, errors.New("mathx: no regressors")
	}
	if m < n {
		return nil, fmt.Errorf("mathx: underdetermined: %d observations for %d coefficients", m, n)
	}

	xtx := make([][]float64, n)
	for i := range xtx {
		xtx[i] = make([]float64, n)
	}
	xty := make([]float64, n)
	for r, row := range x {
		if len(row) != n {
			return nil, fmt.Errorf("mathx: ragged design matrix at row %d", r)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[r]
		}
	}
	// Mirror the upper triangle; the normal matrix is symmetric.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	return SolveLinear(xtx, xty)
}

// FitLine fits y = slope·x + intercept by ordinary least squares.
func FitLine(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("mathx: %d xs but %d ys", len(xs), len(ys))
	}
	design := make([][]float64, len(xs))
	for i, v := range xs {
		design[i] = []float64{v, 1}
	}
	beta, err := LeastSquares(design, ys)
	if err != nil {
		return 0, 0, err
	}
	return beta[0], beta[1], nil
}
