package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "single", give: []float64{5}, want: 5},
		{name: "symmetric", give: []float64{-1, 1}, want: 0},
		{name: "typical", give: []float64{1, 2, 3, 4}, want: 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); !ApproxEqual(got, tt.want, 1e-12) {
				t.Fatalf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !ApproxEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !ApproxEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Fatalf("Variance of single sample = %v, want 0", got)
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatalf("RMSE: %v", err)
	}
	if got != 0 {
		t.Fatalf("RMSE of identical series = %v, want 0", got)
	}
	got, err = RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatalf("RMSE: %v", err)
	}
	if !ApproxEqual(got, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("RMSE = %v, want sqrt(12.5)", got)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Fatal("empty series should error")
	}
}

func TestRSquared(t *testing.T) {
	obs := []float64{1, 2, 3, 4, 5}
	perfect, err := RSquared(obs, obs)
	if err != nil {
		t.Fatalf("RSquared: %v", err)
	}
	if !ApproxEqual(perfect, 1, 1e-12) {
		t.Fatalf("perfect fit R² = %v, want 1", perfect)
	}
	meanPred := []float64{3, 3, 3, 3, 3}
	atMean, err := RSquared(meanPred, obs)
	if err != nil {
		t.Fatalf("RSquared: %v", err)
	}
	if !ApproxEqual(atMean, 0, 1e-12) {
		t.Fatalf("mean predictor R² = %v, want 0", atMean)
	}
	if _, err := RSquared([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestMaxAbsError(t *testing.T) {
	got, err := MaxAbsError([]float64{1, 5, 2}, []float64{1, 2, 2})
	if err != nil {
		t.Fatalf("MaxAbsError: %v", err)
	}
	if got != 3 {
		t.Fatalf("MaxAbsError = %v, want 3", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 15},
		{p: 100, want: 50},
		{p: 50, want: 35},
		{p: 25, want: 20},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !ApproxEqual(got, tt.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("empty series should error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Fatal("negative percentile should error")
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 10); got != 5 {
		t.Fatalf("Clamp inside = %v", got)
	}
	if got := Clamp(-5, 0, 10); got != 0 {
		t.Fatalf("Clamp below = %v", got)
	}
	if got := Clamp(15, 0, 10); got != 10 {
		t.Fatalf("Clamp above = %v", got)
	}
}

// Property: shifting every sample by a constant shifts the mean by that
// constant and leaves the variance unchanged.
func TestMeanVarianceShiftProperty(t *testing.T) {
	f := func(seed int64, shiftRaw float64) bool {
		if math.IsNaN(shiftRaw) || math.IsInf(shiftRaw, 0) {
			return true
		}
		shift := math.Mod(shiftRaw, 1e6)
		rng := NewRand(seed)
		xs := make([]float64, 16)
		shifted := make([]float64, 16)
		for i := range xs {
			xs[i] = rng.Uniform(-100, 100)
			shifted[i] = xs[i] + shift
		}
		meanOK := ApproxEqual(Mean(shifted), Mean(xs)+shift, 1e-6)
		varOK := ApproxEqual(Variance(shifted), Variance(xs), 1e-6)
		return meanOK && varOK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile output is always within [min, max] of the data and
// is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRand(seed)
		xs := make([]float64, 10)
		for i := range xs {
			xs[i] = rng.Uniform(-50, 50)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(xs, p)
			if err != nil {
				return false
			}
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
