package roomapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// postSeq issues a POST carrying a sequence token and returns the status
// and raw body.
func postSeq(t *testing.T, url, seq string, body any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if seq != "" {
		req.Header.Set(SeqHeader, seq)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func TestDuplicateAdvanceExecutesOnce(t *testing.T) {
	ts := newTestServer(t)

	s1, b1 := postSeq(t, ts.URL+"/v1/advance", "7", AdvanceRequest{Seconds: 30})
	if s1 != http.StatusOK {
		t.Fatalf("first advance: HTTP %d", s1)
	}
	s2, b2 := postSeq(t, ts.URL+"/v1/advance", "7", AdvanceRequest{Seconds: 30})
	if s2 != http.StatusOK {
		t.Fatalf("duplicate advance: HTTP %d", s2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("duplicate advance replayed a different body: %s vs %s", b1, b2)
	}
	var info RoomInfo
	if getJSON(t, ts.URL+"/v1/room", &info); info.TimeS != 30 {
		t.Fatalf("room at %v s after a duplicated 30 s advance, want 30", info.TimeS)
	}
}

func TestStaleTokenRejected(t *testing.T) {
	ts := newTestServer(t)
	if s, _ := postSeq(t, ts.URL+"/v1/advance", "9", AdvanceRequest{Seconds: 1}); s != http.StatusOK {
		t.Fatalf("advance: HTTP %d", s)
	}
	if s, _ := postSeq(t, ts.URL+"/v1/advance", "4", AdvanceRequest{Seconds: 1}); s != http.StatusConflict {
		t.Fatalf("stale token: HTTP %d, want 409", s)
	}
	if s, _ := postSeq(t, ts.URL+"/v1/advance", "banana", AdvanceRequest{Seconds: 1}); s != http.StatusBadRequest {
		t.Fatalf("garbage token: HTTP %d, want 400", s)
	}
}

func TestUntokenedRequestsStillExecute(t *testing.T) {
	ts := newTestServer(t)
	for i := 0; i < 2; i++ {
		if s, _ := postSeq(t, ts.URL+"/v1/advance", "", AdvanceRequest{Seconds: 10}); s != http.StatusOK {
			t.Fatalf("untokened advance %d: HTTP %d", i, s)
		}
	}
	var info RoomInfo
	if getJSON(t, ts.URL+"/v1/room", &info); info.TimeS != 20 {
		t.Fatalf("room at %v s after two untokened 10 s advances, want 20", info.TimeS)
	}
}

func TestDuplicateFailedCommandReplaysFailure(t *testing.T) {
	ts := newTestServer(t)
	// Powering off machine 0 then loading it fails; the duplicate must
	// replay the recorded 400, not re-evaluate.
	if s, _ := postSeq(t, ts.URL+"/v1/machines/0/power", "1", SetPowerRequest{On: false}); s != http.StatusNoContent {
		t.Fatal("power off failed")
	}
	s1, _ := postSeq(t, ts.URL+"/v1/machines/0/load", "2", SetLoadRequest{Utilization: 0.5})
	s2, _ := postSeq(t, ts.URL+"/v1/machines/0/load", "2", SetLoadRequest{Utilization: 0.5})
	if s1 != http.StatusBadRequest || s2 != http.StatusBadRequest {
		t.Fatalf("statuses %d, %d; want 400, 400", s1, s2)
	}
}
