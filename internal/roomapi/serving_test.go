package roomapi

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"coolopt/internal/core"
	"coolopt/internal/engine"
	"coolopt/internal/sim"
)

// newServingServer backs the planning endpoints with an engine over a
// small synthetic snapshot — the simulated room only serves the control
// plane, so the planning model does not need to match it.
func newServingServer(t *testing.T) *httptest.Server {
	t.Helper()
	room, err := sim.NewDefault(1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	machines := make([]core.MachineProfile, n)
	for i := range machines {
		h := float64(i) / float64(n)
		machines[i] = core.MachineProfile{Alpha: 1, Beta: 0.46 * (1 + 0.1*h), Gamma: 0.5 + 2.2*h}
	}
	snap, err := core.NewSnapshot(&core.Profile{
		W1: 52, W2: 34, CoolFactor: 150, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}, 0, core.WithMaxMachines(n))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(room, WithEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestPlanEndpoint(t *testing.T) {
	ts := newServingServer(t)
	var plan PlanResult
	if code := getJSON(t, ts.URL+"/v1/plan?load=3", &plan); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(plan.On) == 0 || plan.TAcC <= 0 {
		t.Fatalf("empty plan: %+v", plan)
	}
	if plan.Method != 8 {
		t.Fatalf("method defaulted to %d, want 8", plan.Method)
	}
	if plan.Cached || plan.Shared {
		t.Fatalf("first query claims reuse: %+v", plan)
	}
	var again PlanResult
	if code := getJSON(t, ts.URL+"/v1/plan?load=3", &again); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !again.Cached {
		t.Fatal("identical query not served from the plan cache")
	}
}

func TestPlanEndpointDegraded(t *testing.T) {
	ts := newServingServer(t)
	var plan PlanResult
	if code := getJSON(t, ts.URL+"/v1/plan?load=2&avoid=0,3", &plan); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !plan.Degraded {
		t.Fatalf("avoid-list plan not marked degraded: %+v", plan)
	}
	for _, id := range plan.On {
		if id == 0 || id == 3 {
			t.Fatalf("failed machine %d powered on", id)
		}
	}
}

func TestPlanEndpointSafeMode(t *testing.T) {
	ts := newServingServer(t)
	var plan PlanResult
	url := ts.URL + "/v1/plan?load=50&safe=true&supply=20&margin=2"
	if code := getJSON(t, url, &plan); code != 200 {
		t.Fatalf("status %d", code)
	}
	if plan.ShedLoad <= 0 || plan.Capacity <= 0 {
		t.Fatalf("oversized safe-mode demand did not shed: %+v", plan)
	}
	if len(plan.On) != 8 {
		t.Fatalf("safe mode consolidated: %d machines on", len(plan.On))
	}
}

func TestPlanEndpointErrors(t *testing.T) {
	ts := newServingServer(t)
	for _, bad := range []string{
		"/v1/plan?load=abc",
		"/v1/plan?load=3&method=x",
		"/v1/plan?load=3&avoid=1,zap",
		"/v1/plan?load=3&supply=hot",
		"/v1/plan?load=3&margin=wide",
		"/v1/consolidate?load=abc",
		"/v1/consolidate?load=3&mink=x",
		"/v1/maxload?budget=abc",
	} {
		if code := getJSON(t, ts.URL+bad, nil); code != 400 {
			t.Errorf("GET %s: status %d, want 400", bad, code)
		}
	}
	// An infeasible demand is well-formed but unanswerable.
	if code := getJSON(t, ts.URL+"/v1/plan?load=1000", nil); code != 422 {
		t.Errorf("infeasible load: status %d, want 422", code)
	}
}

func TestPlanEndpointsWithoutEngine(t *testing.T) {
	ts := newTestServer(t)
	for _, path := range []string{"/v1/plan?load=1", "/v1/consolidate?load=1", "/v1/maxload?budget=100"} {
		if code := getJSON(t, ts.URL+path, nil); code != 501 {
			t.Errorf("GET %s without engine: status %d, want 501", path, code)
		}
	}
}

// newHierServingServer installs both an exact snapshot and a pod
// decomposition, so mode=exact and mode=hier are both answerable.
func newHierServingServer(t *testing.T) *httptest.Server {
	t.Helper()
	room, err := sim.NewDefault(1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	machines := make([]core.MachineProfile, n)
	for i := range machines {
		h := float64(i) / float64(n)
		machines[i] = core.MachineProfile{Alpha: 1, Beta: 0.46 * (1 + 0.1*h), Gamma: 0.5 + 2.2*h}
	}
	p := &core.Profile{
		W1: 52, W2: 34, CoolFactor: 150, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}
	snap, err := core.NewSnapshot(p, 0, core.WithMaxMachines(n))
	if err != nil {
		t.Fatal(err)
	}
	pods, err := core.NewPodSnapshot(p, 0, core.WithPodCount(4))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.FromSnapshots(snap, pods)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(room, WithEngine(eng))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestPlanEndpointMode(t *testing.T) {
	ts := newHierServingServer(t)
	var hier PlanResult
	if code := getJSON(t, ts.URL+"/v1/plan?load=3&mode=hier", &hier); code != 200 {
		t.Fatalf("mode=hier status %d", code)
	}
	if !hier.Hierarchical {
		t.Fatalf("mode=hier answer not marked hierarchical: %+v", hier)
	}
	var exact PlanResult
	if code := getJSON(t, ts.URL+"/v1/plan?load=3&mode=exact", &exact); code != 200 {
		t.Fatalf("mode=exact status %d", code)
	}
	if exact.Hierarchical {
		t.Fatalf("mode=exact answer marked hierarchical: %+v", exact)
	}
	if code := getJSON(t, ts.URL+"/v1/plan?load=3&mode=sideways", nil); code != 400 {
		t.Fatalf("bad mode status %d, want 400", code)
	}
	// mode only applies to the consolidating optimum; on an exact-only
	// server the pod mode is a client error.
	exactOnly := newServingServer(t)
	if code := getJSON(t, exactOnly.URL+"/v1/plan?load=3&mode=hier", nil); code != 422 {
		t.Fatalf("mode=hier without pods: status %d, want 422", code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := newHierServingServer(t)
	var st engine.Stats
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != 200 {
		t.Fatalf("status %d", code)
	}
	if st.Machines != 8 || st.Pods != 4 || st.CacheCapacity <= 0 {
		t.Fatalf("stats shape: %+v", st)
	}
	if st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("fresh server reports traffic: %+v", st)
	}
	getJSON(t, ts.URL+"/v1/plan?load=3", nil)
	getJSON(t, ts.URL+"/v1/plan?load=3", nil)
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != 200 {
		t.Fatalf("status %d", code)
	}
	if st.CacheMisses != 1 || st.CacheHits != 1 || st.CacheEntries != 1 {
		t.Fatalf("after one repeated query: %+v", st)
	}
	if code := getJSON(t, newTestServer(t).URL+"/v1/stats", nil); code != 501 {
		t.Fatalf("stats without engine: status %d, want 501", code)
	}
}

func TestConsolidateAndMaxLoadEndpoints(t *testing.T) {
	ts := newServingServer(t)
	var sel ConsolidateResult
	if code := getJSON(t, ts.URL+"/v1/consolidate?load=4&mink=5", &sel); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(sel.Subset) < 5 {
		t.Fatalf("mink=5 ignored: %+v", sel)
	}
	var ml MaxLoadResult
	budget := fmt.Sprintf("%d", 8*(52+34)+150*21)
	if code := getJSON(t, ts.URL+"/v1/maxload?budget="+budget, &ml); code != 200 {
		t.Fatalf("status %d", code)
	}
	if ml.Load <= 0 || len(ml.Subset) == 0 {
		t.Fatalf("generous budget unanswered: %+v", ml)
	}
}
