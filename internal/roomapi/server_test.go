package roomapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"coolopt/internal/sim"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	room, err := sim.NewDefault(1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(room)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, dst any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil && resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any) int {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Fatal("nil room accepted")
	}
}

func TestRoomEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var info RoomInfo
	if code := getJSON(t, ts.URL+"/v1/room", &info); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if info.Machines != 20 {
		t.Fatalf("machines = %d", info.Machines)
	}
}

func TestSensorsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var snap Sensors
	if code := getJSON(t, ts.URL+"/v1/sensors", &snap); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(snap.Machines) != 20 {
		t.Fatalf("machines = %d", len(snap.Machines))
	}
	for _, m := range snap.Machines {
		if !m.On {
			t.Fatalf("machine %d reported off at boot", m.ID)
		}
	}
	if snap.CRAC.SetPointC != sim.DefaultSetPointC {
		t.Fatalf("set point = %v", snap.CRAC.SetPointC)
	}
}

func TestSetLoadAndPower(t *testing.T) {
	ts := newTestServer(t)
	if code := postJSON(t, ts.URL+"/v1/machines/3/load", SetLoadRequest{Utilization: 0.5}); code != http.StatusNoContent {
		t.Fatalf("set load status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/machines/3/power", SetPowerRequest{On: false}); code != http.StatusNoContent {
		t.Fatalf("set power status %d", code)
	}
	// Loading a powered-off machine is a client error.
	if code := postJSON(t, ts.URL+"/v1/machines/3/load", SetLoadRequest{Utilization: 0.5}); code != http.StatusBadRequest {
		t.Fatalf("load on off machine: status %d", code)
	}
	var snap Sensors
	getJSON(t, ts.URL+"/v1/sensors", &snap)
	if snap.Machines[3].On {
		t.Fatal("machine 3 still on")
	}
}

func TestSetLoadValidation(t *testing.T) {
	ts := newTestServer(t)
	if code := postJSON(t, ts.URL+"/v1/machines/3/load", SetLoadRequest{Utilization: 2}); code != http.StatusBadRequest {
		t.Fatalf("overload status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/machines/99/load", SetLoadRequest{Utilization: 0.5}); code != http.StatusNotFound {
		t.Fatalf("bad id status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/machines/x/load", SetLoadRequest{}); code != http.StatusBadRequest {
		t.Fatalf("non-numeric id status %d", code)
	}
}

func TestSetPointEndpoint(t *testing.T) {
	ts := newTestServer(t)
	if code := postJSON(t, ts.URL+"/v1/crac/setpoint", SetPointRequest{SetPointC: 26}); code != http.StatusNoContent {
		t.Fatalf("status %d", code)
	}
	var state CRACState
	if code := getJSON(t, ts.URL+"/v1/crac", &state); code != http.StatusOK {
		t.Fatalf("get crac status %d", code)
	}
	if state.SetPointC != 26 {
		t.Fatalf("set point = %v", state.SetPointC)
	}
	if code := postJSON(t, ts.URL+"/v1/crac/setpoint", SetPointRequest{SetPointC: 200}); code != http.StatusBadRequest {
		t.Fatalf("insane set point status %d", code)
	}
}

func TestAdvanceEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var before, after RoomInfo
	getJSON(t, ts.URL+"/v1/room", &before)
	resp, err := http.Post(ts.URL+"/v1/advance", "application/json",
		bytes.NewReader([]byte(`{"seconds": 60}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advance status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	if after.TimeS < before.TimeS+60 {
		t.Fatalf("time %v → %v, want +60", before.TimeS, after.TimeS)
	}
	if code := postJSON(t, ts.URL+"/v1/advance", AdvanceRequest{Seconds: -1}); code != http.StatusBadRequest {
		t.Fatalf("negative advance status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/advance", AdvanceRequest{Seconds: 1e9}); code != http.StatusBadRequest {
		t.Fatalf("huge advance status %d", code)
	}
}

func TestMalformedJSON(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/crac/setpoint", "application/json",
		bytes.NewReader([]byte(`{"nope": true}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status %d", resp.StatusCode)
	}
}
