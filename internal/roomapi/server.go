package roomapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"coolopt/internal/machineroom"
)

// maxAdvanceSeconds caps one /v1/advance call so a stray client cannot
// wedge the server in a near-endless integration loop.
const maxAdvanceSeconds = 24 * 3600

// Server serves one machine room over HTTP. All room access is
// serialized by an internal mutex, so a single simulator instance can
// back it safely. Build with NewServer; it implements http.Handler.
//
// Mutating endpoints honor the SeqHeader idempotency token: the server
// remembers the most recent token and its recorded response, and a
// request re-presenting that token gets the recording back without
// re-executing. One slot suffices for the intended topology — a single
// controller that never pipelines commands — and a token older than the
// remembered one is answered 409, since its command has been superseded.
// Tokens are scoped per client ("<client>:<seq>"), so a newly connected
// controller starting its counter over is a fresh command stream, not a
// stale replay.
type Server struct {
	mu   sync.Mutex
	room machineroom.Room
	mux  *http.ServeMux

	seqValid  bool
	seqClient string
	seq       uint64
	seqStatus int
	seqBody   []byte // recorded JSON response; nil for 204
}

var _ http.Handler = (*Server)(nil)

// NewServer wraps a room.
func NewServer(room machineroom.Room) (*Server, error) {
	if room == nil {
		return nil, fmt.Errorf("roomapi: nil room")
	}
	s := &Server{room: room, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/room", s.handleRoom)
	s.mux.HandleFunc("GET /v1/sensors", s.handleSensors)
	s.mux.HandleFunc("POST /v1/machines/{id}/load", s.handleSetLoad)
	s.mux.HandleFunc("POST /v1/machines/{id}/power", s.handleSetPower)
	s.mux.HandleFunc("GET /v1/crac", s.handleCRAC)
	s.mux.HandleFunc("POST /v1/crac/setpoint", s.handleSetPoint)
	s.mux.HandleFunc("POST /v1/advance", s.handleAdvance)
	return s, nil
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleRoom(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	info := RoomInfo{Machines: s.room.Size(), TimeS: s.room.Time()}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleSensors(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	snap := Sensors{
		TimeS:    s.room.Time(),
		Machines: make([]MachineSensors, s.room.Size()),
		CRAC: CRACState{
			SetPointC: s.room.SetPoint(),
			SupplyC:   s.room.Supply(),
			ReturnC:   s.room.ReturnTemp(),
			PowerW:    s.room.MeasuredCRACPower(),
		},
	}
	for i := range snap.Machines {
		snap.Machines[i] = MachineSensors{
			ID:       i,
			On:       s.room.IsOn(i),
			CPUTempC: s.room.MeasuredCPUTemp(i),
			PowerW:   s.room.MeasuredServerPower(i),
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleSetLoad(w http.ResponseWriter, r *http.Request) {
	id, ok := machineID(w, r, s.roomSize())
	if !ok {
		return
	}
	var req SetLoadRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mutate(w, r, func() (int, any) {
		if err := s.room.SetLoad(id, req.Utilization); err != nil {
			return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
		}
		return http.StatusNoContent, nil
	})
}

func (s *Server) handleSetPower(w http.ResponseWriter, r *http.Request) {
	id, ok := machineID(w, r, s.roomSize())
	if !ok {
		return
	}
	var req SetPowerRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mutate(w, r, func() (int, any) {
		if err := s.room.SetPower(id, req.On); err != nil {
			return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
		}
		return http.StatusNoContent, nil
	})
}

func (s *Server) handleCRAC(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	state := CRACState{
		SetPointC: s.room.SetPoint(),
		SupplyC:   s.room.Supply(),
		ReturnC:   s.room.ReturnTemp(),
		PowerW:    s.room.MeasuredCRACPower(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, state)
}

func (s *Server) handleSetPoint(w http.ResponseWriter, r *http.Request) {
	var req SetPointRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.SetPointC < -20 || req.SetPointC > 60 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("set point %v °C outside sanity range", req.SetPointC))
		return
	}
	s.mutate(w, r, func() (int, any) {
		s.room.SetSetPoint(req.SetPointC)
		return http.StatusNoContent, nil
	})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req AdvanceRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Seconds <= 0 || req.Seconds > maxAdvanceSeconds {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("advance of %v s outside (0, %d]", req.Seconds, maxAdvanceSeconds))
		return
	}
	s.mutate(w, r, func() (int, any) {
		s.room.Run(req.Seconds)
		return http.StatusOK, RoomInfo{Machines: s.room.Size(), TimeS: s.room.Time()}
	})
}

// mutate executes a state-changing command under the room lock with
// idempotent-replay support: a request re-presenting the last executed
// SeqHeader token gets the recorded response back without executing, a
// token older than the last is rejected 409, and requests without a
// token (or with a fresh one) execute normally. The executed response —
// success or failure — is recorded, so a duplicate of a failed command
// fails identically instead of executing.
func (s *Server) mutate(w http.ResponseWriter, r *http.Request, exec func() (int, any)) {
	raw := r.Header.Get(SeqHeader)
	var (
		client string
		seq    uint64
		hasSeq bool
	)
	if raw != "" {
		// Tokens are "<client>:<seq>" (or a bare number, an empty
		// client). The client scope keeps a freshly connected
		// controller's counter from colliding with its predecessor's.
		seqStr := raw
		if k := strings.LastIndexByte(raw, ':'); k >= 0 {
			client, seqStr = raw[:k], raw[k+1:]
		}
		parsed, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s token %q", SeqHeader, raw))
			return
		}
		seq, hasSeq = parsed, true
	}

	s.mu.Lock()
	if hasSeq && s.seqValid && client == s.seqClient {
		if seq == s.seq {
			status, body := s.seqStatus, s.seqBody
			s.mu.Unlock()
			writeRecorded(w, status, body)
			return
		}
		if seq < s.seq {
			last := s.seq
			s.mu.Unlock()
			writeError(w, http.StatusConflict,
				fmt.Errorf("stale %s token %d (last executed %d)", SeqHeader, seq, last))
			return
		}
	}
	status, v := exec()
	var body []byte
	if v != nil {
		body, _ = json.Marshal(v)
	}
	if hasSeq {
		s.seqValid, s.seqClient, s.seq, s.seqStatus, s.seqBody = true, client, seq, status, body
	}
	s.mu.Unlock()
	writeRecorded(w, status, body)
}

// writeRecorded writes a response from its recorded form.
func writeRecorded(w http.ResponseWriter, status int, body []byte) {
	if body == nil {
		w.WriteHeader(status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func (s *Server) roomSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.room.Size()
}

func machineID(w http.ResponseWriter, r *http.Request, size int) (int, bool) {
	raw := r.PathValue("id")
	id, err := strconv.Atoi(strings.TrimSpace(raw))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad machine id %q", raw))
		return 0, false
	}
	if id < 0 || id >= size {
		writeError(w, http.StatusNotFound, fmt.Errorf("machine %d out of range [0, %d)", id, size))
		return 0, false
	}
	return id, true
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding static wire types cannot fail; a broken connection is
	// the client's problem.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
