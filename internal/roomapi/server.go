package roomapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"coolopt/internal/baseline"
	"coolopt/internal/clock"
	"coolopt/internal/engine"
	"coolopt/internal/machineroom"
)

// maxAdvanceSeconds caps one /v1/advance call so a stray client cannot
// wedge the server in a near-endless integration loop.
const maxAdvanceSeconds = 24 * 3600

// Server serves one machine room over HTTP. Build with NewServer; it
// implements http.Handler.
//
// Mutating endpoints are serialized by an internal mutex. Read endpoints
// are served from a generation-stamped view: every executed mutation
// bumps a generation counter, and the first read after a mutation
// rebuilds the view under the lock while later reads return it straight
// from an atomic pointer. Reads therefore never serialize behind a long
// /v1/advance — they serve the last settled state — and repeated sensor
// polls between mutations return one consistent snapshot instead of
// draining the room's measurement-noise streams.
//
// With WithEngine, the server additionally exposes the planning surface
// (/v1/plan, /v1/consolidate, /v1/maxload) straight off the engine's
// immutable snapshot; planning never touches the room or its lock.
//
// Mutating endpoints honor the SeqHeader idempotency token: the server
// remembers the most recent token and its recorded response, and a
// request re-presenting that token gets the recording back without
// re-executing. One slot suffices for the intended topology — a single
// controller that never pipelines commands — and a token older than the
// remembered one is answered 409, since its command has been superseded.
// Tokens are scoped per client ("<client>:<seq>"), so a newly connected
// controller starting its counter over is a fresh command stream, not a
// stale replay.
type Server struct {
	mu     sync.Mutex
	room   machineroom.Room
	mux    *http.ServeMux
	engine *engine.Engine

	clk        clock.Clock
	lat        *latencySet
	reqTimeout time.Duration

	gen  atomic.Uint64 // bumped after every executed mutation
	view atomic.Pointer[view]

	seqValid  bool
	seqClient string
	seq       uint64
	seqStatus int
	seqBody   []byte // recorded JSON response; nil for 204
}

// view is one settled read snapshot of the room.
type view struct {
	gen     uint64
	info    RoomInfo
	sensors Sensors
	crac    CRACState
}

var _ http.Handler = (*Server)(nil)

// Option configures NewServer.
type Option func(*Server)

// WithEngine attaches a plan-serving engine, enabling the /v1/plan,
// /v1/consolidate, and /v1/maxload endpoints.
func WithEngine(e *engine.Engine) Option {
	return func(s *Server) { s.engine = e }
}

// WithClock substitutes the time source behind the per-endpoint latency
// histograms (default: the wall clock). Tests inject a clock.Fake so
// quantiles are exact and replayable.
func WithClock(c clock.Clock) Option {
	return func(s *Server) { s.clk = c }
}

// WithRequestTimeout caps every planning request's server-side compute
// at d: the engine context is the client's request context bounded by
// this deadline, so one slow degraded sweep cannot hold a connection
// (or an in-flight slot) forever. A blown deadline is answered 503 +
// Retry-After. Zero (the default) means only the client's own deadline
// applies.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.reqTimeout = d }
}

// NewServer wraps a room.
func NewServer(room machineroom.Room, opts ...Option) (*Server, error) {
	if room == nil {
		return nil, fmt.Errorf("roomapi: nil room")
	}
	s := &Server{room: room, mux: http.NewServeMux(), clk: clock.Wall, lat: newLatencySet()}
	for _, opt := range opts {
		opt(s)
	}
	// Every serving route is wrapped with latency recording; the probe
	// endpoints are not — they are polled constantly and would drown the
	// histograms without telling anyone anything.
	for route, h := range map[string]http.HandlerFunc{
		"GET /v1/room":                 s.handleRoom,
		"GET /v1/sensors":              s.handleSensors,
		"POST /v1/machines/{id}/load":  s.handleSetLoad,
		"POST /v1/machines/{id}/power": s.handleSetPower,
		"GET /v1/crac":                 s.handleCRAC,
		"POST /v1/crac/setpoint":       s.handleSetPoint,
		"POST /v1/advance":             s.handleAdvance,
		"GET /v1/plan":                 s.handlePlan,
		"GET /v1/consolidate":          s.handleConsolidate,
		"GET /v1/maxload":              s.handleMaxLoad,
		"GET /v1/stats":                s.handleStats,
	} {
		s.mux.HandleFunc(route, s.timed(route, h))
	}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	return s, nil
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// currentView returns the read snapshot for the current generation,
// rebuilding it under the lock only when a mutation has landed since the
// last build. A long-running mutation does not block readers: the
// generation only bumps when it completes, so readers keep serving the
// previous settled view.
func (s *Server) currentView() *view {
	g := s.gen.Load()
	if v := s.view.Load(); v != nil && v.gen == g {
		return v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Reload under the lock: another reader may have rebuilt, or a
	// mutation may have landed while we waited.
	g = s.gen.Load()
	if v := s.view.Load(); v != nil && v.gen == g {
		return v
	}
	v := s.buildView(g)
	s.view.Store(v)
	return v
}

// buildView reads the room once; the caller holds s.mu.
func (s *Server) buildView(gen uint64) *view {
	crac := CRACState{
		SetPointC: s.room.SetPoint(),
		SupplyC:   s.room.Supply(),
		ReturnC:   s.room.ReturnTemp(),
		PowerW:    s.room.MeasuredCRACPower(),
	}
	v := &view{
		gen:  gen,
		info: RoomInfo{Machines: s.room.Size(), TimeS: s.room.Time()},
		sensors: Sensors{
			TimeS:    s.room.Time(),
			Machines: make([]MachineSensors, s.room.Size()),
			CRAC:     crac,
		},
		crac: crac,
	}
	for i := range v.sensors.Machines {
		v.sensors.Machines[i] = MachineSensors{
			ID:       i,
			On:       s.room.IsOn(i),
			CPUTempC: s.room.MeasuredCPUTemp(i),
			PowerW:   s.room.MeasuredServerPower(i),
		}
	}
	return v
}

func (s *Server) handleRoom(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.currentView().info)
}

func (s *Server) handleSensors(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.currentView().sensors)
}

func (s *Server) handleCRAC(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.currentView().crac)
}

func (s *Server) handleSetLoad(w http.ResponseWriter, r *http.Request) {
	id, ok := machineID(w, r, s.roomSize())
	if !ok {
		return
	}
	var req SetLoadRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mutate(w, r, func() (int, any) {
		if err := s.room.SetLoad(id, req.Utilization); err != nil {
			return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
		}
		return http.StatusNoContent, nil
	})
}

func (s *Server) handleSetPower(w http.ResponseWriter, r *http.Request) {
	id, ok := machineID(w, r, s.roomSize())
	if !ok {
		return
	}
	var req SetPowerRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mutate(w, r, func() (int, any) {
		if err := s.room.SetPower(id, req.On); err != nil {
			return http.StatusBadRequest, ErrorResponse{Error: err.Error()}
		}
		return http.StatusNoContent, nil
	})
}

func (s *Server) handleSetPoint(w http.ResponseWriter, r *http.Request) {
	var req SetPointRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.SetPointC < -20 || req.SetPointC > 60 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("set point %v °C outside sanity range", req.SetPointC))
		return
	}
	s.mutate(w, r, func() (int, any) {
		s.room.SetSetPoint(req.SetPointC)
		return http.StatusNoContent, nil
	})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req AdvanceRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Seconds <= 0 || req.Seconds > maxAdvanceSeconds {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("advance of %v s outside (0, %d]", req.Seconds, maxAdvanceSeconds))
		return
	}
	s.mutate(w, r, func() (int, any) {
		s.room.Run(req.Seconds)
		return http.StatusOK, RoomInfo{Machines: s.room.Size(), TimeS: s.room.Time()}
	})
}

// handlePlan serves Engine.Plan: ?load=<units> with optional
// &method=<1-8>, &mode=exact|hier, &avoid=<id,id,...>, &safe=true,
// &supply=<°C>, &margin=<°C>. Served straight off the engine's
// snapshot — no room lock.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if s.engine == nil {
		writeError(w, http.StatusNotImplemented, errors.New("no planning engine configured"))
		return
	}
	q := r.URL.Query()
	load, err := strconv.ParseFloat(q.Get("load"), 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad load %q", q.Get("load")))
		return
	}
	req := engine.Request{Load: load}
	if raw := q.Get("method"); raw != "" {
		m, err := strconv.Atoi(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad method %q", raw))
			return
		}
		req.Method = baseline.Method(m)
	}
	switch q.Get("mode") {
	case "", "auto":
	case "exact":
		req.Mode = engine.ModeExact
	case "hier":
		req.Mode = engine.ModeHier
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad mode %q (want exact or hier)", q.Get("mode")))
		return
	}
	if raw := q.Get("avoid"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad avoid list %q", raw))
				return
			}
			req.Avoid = append(req.Avoid, id)
		}
	}
	req.Safe = q.Get("safe") == "true"
	if raw := q.Get("supply"); raw != "" {
		if req.AchievedSupplyC, err = strconv.ParseFloat(raw, 64); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad supply %q", raw))
			return
		}
	}
	if raw := q.Get("margin"); raw != "" {
		if req.MarginC, err = strconv.ParseFloat(raw, 64); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad margin %q", raw))
			return
		}
	}
	ctx := r.Context()
	if s.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.reqTimeout)
		defer cancel()
	}
	resp, err := s.engine.Plan(ctx, req)
	if err != nil {
		writePlanError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PlanResult{
		Epoch:        resp.Epoch,
		Method:       int(resp.Method),
		On:           resp.Plan.On,
		Loads:        resp.Plan.Loads,
		TAcC:         float64(resp.Plan.TAcC),
		ShedLoad:     resp.ShedLoad,
		Capacity:     resp.Capacity,
		Degraded:     resp.Degraded,
		Cached:       resp.Cached,
		Shared:       resp.Shared,
		Hierarchical: resp.Hierarchical,
	})
}

// handleConsolidate serves the raw consolidation query:
// ?load=<units>&mink=<k>.
func (s *Server) handleConsolidate(w http.ResponseWriter, r *http.Request) {
	if s.engine == nil {
		writeError(w, http.StatusNotImplemented, errors.New("no planning engine configured"))
		return
	}
	q := r.URL.Query()
	load, err := strconv.ParseFloat(q.Get("load"), 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad load %q", q.Get("load")))
		return
	}
	minK := 1
	if raw := q.Get("mink"); raw != "" {
		if minK, err = strconv.Atoi(raw); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad mink %q", raw))
			return
		}
	}
	sel, err := s.engine.Consolidate(load, minK)
	if err != nil {
		writePlanError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ConsolidateResult{
		Epoch: s.engine.Epoch(), Subset: sel.Subset, T: sel.T, PowerW: sel.Power,
	})
}

// handleMaxLoad serves the dual budget query: ?budget=<W>.
func (s *Server) handleMaxLoad(w http.ResponseWriter, r *http.Request) {
	if s.engine == nil {
		writeError(w, http.StatusNotImplemented, errors.New("no planning engine configured"))
		return
	}
	budget, err := strconv.ParseFloat(r.URL.Query().Get("budget"), 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad budget %q", r.URL.Query().Get("budget")))
		return
	}
	res, err := s.engine.MaxLoad(budget)
	if err != nil {
		writePlanError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MaxLoadResult{
		Epoch: s.engine.Epoch(), Load: res.Load, Subset: res.Subset, T: res.T,
	})
}

// handleStats serves the engine's serving counters (GET /v1/stats): the
// engine.Stats fields verbatim — cache hit/miss/eviction counts,
// overload/breaker state, the installed snapshot's shape — plus the
// per-endpoint latency digests under "latency".
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	if s.engine == nil {
		writeError(w, http.StatusNotImplemented, errors.New("no planning engine configured"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		engine.Stats
		Latency map[string]LatencySummary `json:"latency"`
	}{s.engine.Stats(), s.lat.summaries()})
}

// mutate executes a state-changing command under the room lock with
// idempotent-replay support: a request re-presenting the last executed
// SeqHeader token gets the recorded response back without executing, a
// token older than the last is rejected 409, and requests without a
// token (or with a fresh one) execute normally. The executed response —
// success or failure — is recorded, so a duplicate of a failed command
// fails identically instead of executing. Every executed command bumps
// the read generation, invalidating the cached read view.
func (s *Server) mutate(w http.ResponseWriter, r *http.Request, exec func() (int, any)) {
	raw := r.Header.Get(SeqHeader)
	var (
		client string
		seq    uint64
		hasSeq bool
	)
	if raw != "" {
		// Tokens are "<client>:<seq>" (or a bare number, an empty
		// client). The client scope keeps a freshly connected
		// controller's counter from colliding with its predecessor's.
		seqStr := raw
		if k := strings.LastIndexByte(raw, ':'); k >= 0 {
			client, seqStr = raw[:k], raw[k+1:]
		}
		parsed, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s token %q", SeqHeader, raw))
			return
		}
		seq, hasSeq = parsed, true
	}

	s.mu.Lock()
	if hasSeq && s.seqValid && client == s.seqClient {
		if seq == s.seq {
			status, body := s.seqStatus, s.seqBody
			s.mu.Unlock()
			writeRecorded(w, status, body)
			return
		}
		if seq < s.seq {
			last := s.seq
			s.mu.Unlock()
			writeError(w, http.StatusConflict,
				fmt.Errorf("stale %s token %d (last executed %d)", SeqHeader, seq, last))
			return
		}
	}
	status, v := exec()
	s.gen.Add(1)
	var body []byte
	if v != nil {
		body, _ = json.Marshal(v)
	}
	if hasSeq {
		s.seqValid, s.seqClient, s.seq, s.seqStatus, s.seqBody = true, client, seq, status, body
	}
	s.mu.Unlock()
	writeRecorded(w, status, body)
}

// writeRecorded writes a response from its recorded form.
func writeRecorded(w http.ResponseWriter, status int, body []byte) {
	if body == nil {
		w.WriteHeader(status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func (s *Server) roomSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.room.Size()
}

// RoomLocked runs f on the underlying room under the server's mutation
// lock. It exists for in-process sidecars that must read live sensors
// concurrently with HTTP traffic — pland's continuous re-profiler
// samples through it — without racing a /v1/setload or /v1/advance
// executing on another connection. Keep f short: it holds the same lock
// every mutating endpoint takes.
func (s *Server) RoomLocked(f func(machineroom.Room)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(s.room)
}

func machineID(w http.ResponseWriter, r *http.Request, size int) (int, bool) {
	raw := r.PathValue("id")
	id, err := strconv.Atoi(strings.TrimSpace(raw))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad machine id %q", raw))
		return 0, false
	}
	if id < 0 || id >= size {
		writeError(w, http.StatusNotFound, fmt.Errorf("machine %d out of range [0, %d)", id, size))
		return 0, false
	}
	return id, true
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding static wire types cannot fail; a broken connection is
	// the client's problem.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
