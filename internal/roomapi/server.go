package roomapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"coolopt/internal/machineroom"
)

// maxAdvanceSeconds caps one /v1/advance call so a stray client cannot
// wedge the server in a near-endless integration loop.
const maxAdvanceSeconds = 24 * 3600

// Server serves one machine room over HTTP. All room access is
// serialized by an internal mutex, so a single simulator instance can
// back it safely. Build with NewServer; it implements http.Handler.
type Server struct {
	mu   sync.Mutex
	room machineroom.Room
	mux  *http.ServeMux
}

var _ http.Handler = (*Server)(nil)

// NewServer wraps a room.
func NewServer(room machineroom.Room) (*Server, error) {
	if room == nil {
		return nil, fmt.Errorf("roomapi: nil room")
	}
	s := &Server{room: room, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/room", s.handleRoom)
	s.mux.HandleFunc("GET /v1/sensors", s.handleSensors)
	s.mux.HandleFunc("POST /v1/machines/{id}/load", s.handleSetLoad)
	s.mux.HandleFunc("POST /v1/machines/{id}/power", s.handleSetPower)
	s.mux.HandleFunc("GET /v1/crac", s.handleCRAC)
	s.mux.HandleFunc("POST /v1/crac/setpoint", s.handleSetPoint)
	s.mux.HandleFunc("POST /v1/advance", s.handleAdvance)
	return s, nil
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleRoom(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	info := RoomInfo{Machines: s.room.Size(), TimeS: s.room.Time()}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleSensors(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	snap := Sensors{
		TimeS:    s.room.Time(),
		Machines: make([]MachineSensors, s.room.Size()),
		CRAC: CRACState{
			SetPointC: s.room.SetPoint(),
			SupplyC:   s.room.Supply(),
			ReturnC:   s.room.ReturnTemp(),
			PowerW:    s.room.MeasuredCRACPower(),
		},
	}
	for i := range snap.Machines {
		snap.Machines[i] = MachineSensors{
			ID:       i,
			On:       s.room.IsOn(i),
			CPUTempC: s.room.MeasuredCPUTemp(i),
			PowerW:   s.room.MeasuredServerPower(i),
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleSetLoad(w http.ResponseWriter, r *http.Request) {
	id, ok := machineID(w, r, s.roomSize())
	if !ok {
		return
	}
	var req SetLoadRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	err := s.room.SetLoad(id, req.Utilization)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSetPower(w http.ResponseWriter, r *http.Request) {
	id, ok := machineID(w, r, s.roomSize())
	if !ok {
		return
	}
	var req SetPowerRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	err := s.room.SetPower(id, req.On)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleCRAC(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	state := CRACState{
		SetPointC: s.room.SetPoint(),
		SupplyC:   s.room.Supply(),
		ReturnC:   s.room.ReturnTemp(),
		PowerW:    s.room.MeasuredCRACPower(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, state)
}

func (s *Server) handleSetPoint(w http.ResponseWriter, r *http.Request) {
	var req SetPointRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.SetPointC < -20 || req.SetPointC > 60 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("set point %v °C outside sanity range", req.SetPointC))
		return
	}
	s.mu.Lock()
	s.room.SetSetPoint(req.SetPointC)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req AdvanceRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Seconds <= 0 || req.Seconds > maxAdvanceSeconds {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("advance of %v s outside (0, %d]", req.Seconds, maxAdvanceSeconds))
		return
	}
	s.mu.Lock()
	s.room.Run(req.Seconds)
	info := RoomInfo{Machines: s.room.Size(), TimeS: s.room.Time()}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) roomSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.room.Size()
}

func machineID(w http.ResponseWriter, r *http.Request, size int) (int, bool) {
	raw := r.PathValue("id")
	id, err := strconv.Atoi(strings.TrimSpace(raw))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad machine id %q", raw))
		return 0, false
	}
	if id < 0 || id >= size {
		writeError(w, http.StatusNotFound, fmt.Errorf("machine %d out of range [0, %d)", id, size))
		return 0, false
	}
	return id, true
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding static wire types cannot fail; a broken connection is
	// the client's problem.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
