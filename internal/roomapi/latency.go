package roomapi

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"

	"coolopt/internal/clock"
	"coolopt/internal/engine"
)

// retryAfterSeconds is the backoff hint stamped on every 503. Overload
// is transient by construction — a bounded in-flight window draining, a
// snapshot install finishing, a breaker window expiring — so a short
// fixed hint beats trying to predict the drain time.
const retryAfterSeconds = "1"

// writePlanError maps a planning-engine error onto the HTTP surface:
//
//   - a bad avoid list is the client's fault → 400;
//   - overload shedding and blown deadlines are transient server
//     pressure → 503 with Retry-After, the contract the ISSUE's chaos
//     scenario asserts (never a hang, never a 500);
//   - everything else (infeasible, no planning path) is a well-formed
//     request the installed state cannot satisfy → 422.
func writePlanError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, engine.ErrBadAvoid):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, engine.ErrOverloaded), errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

// latBuckets is the histogram resolution: bucket i counts requests that
// finished in < 2^i µs, so 40 buckets span sub-microsecond to ~18 min.
const latBuckets = 40

// latHist is one endpoint's latency histogram. Power-of-two microsecond
// buckets trade ≤2× quantile error for fixed memory and zero
// allocation on the hot path — the same resolution serving dashboards
// use.
type latHist struct {
	count   uint64
	buckets [latBuckets]uint64
}

func (h *latHist) observe(d time.Duration) {
	us := d.Microseconds()
	idx := 0
	for us > 0 && idx < latBuckets-1 {
		us >>= 1
		idx++
	}
	h.buckets[idx]++
	h.count++
}

// quantile returns the q-quantile's bucket upper bound in milliseconds.
func (h *latHist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q*float64(h.count) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return float64(uint64(1)<<uint(i)) / 1000.0
		}
	}
	return float64(uint64(1)<<uint(latBuckets-1)) / 1000.0
}

// latencySet holds per-endpoint histograms keyed by route pattern.
type latencySet struct {
	mu    sync.Mutex
	hists map[string]*latHist
}

func newLatencySet() *latencySet {
	return &latencySet{hists: make(map[string]*latHist)}
}

func (ls *latencySet) observe(route string, d time.Duration) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	h := ls.hists[route]
	if h == nil {
		h = &latHist{}
		ls.hists[route] = h
	}
	h.observe(d)
}

func (ls *latencySet) summaries() map[string]LatencySummary {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	out := make(map[string]LatencySummary, len(ls.hists))
	for route, h := range ls.hists {
		out[route] = LatencySummary{
			Count: h.count,
			P50Ms: h.quantile(0.50),
			P95Ms: h.quantile(0.95),
			P99Ms: h.quantile(0.99),
		}
	}
	return out
}

// timed wraps a handler with latency recording against the server's
// clock (injectable, so histogram tests replay deterministically).
func (s *Server) timed(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.clk.Now()
		h(w, r)
		s.lat.observe(route, clock.Since(s.clk, start))
	}
}

// handleHealthz is the liveness probe: the process answers, full stop.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResult{Status: "ok"})
}

// handleReadyz is the readiness probe: 200 when the engine is serving
// at full capability (snapshot installed, no install in flight, breaker
// closed), 503 + Retry-After with the reason otherwise. A room-only
// server (no engine) is always ready.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.engine == nil {
		writeJSON(w, http.StatusOK, ReadyResult{Ready: true})
		return
	}
	if ready, reason := s.engine.Ready(); !ready {
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeJSON(w, http.StatusServiceUnavailable, ReadyResult{Ready: false, Reason: reason})
		return
	}
	writeJSON(w, http.StatusOK, ReadyResult{Ready: true})
}
