package roomapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"coolopt/internal/clock"
	"coolopt/internal/core"
	"coolopt/internal/engine"
	"coolopt/internal/sim"
)

// newOverloadServer builds a serving server whose engine and server
// options the test controls, returning both handles.
func newOverloadServer(t *testing.T, engOpts []engine.Option, srvOpts []Option) (*engine.Engine, *httptest.Server) {
	t.Helper()
	room, err := sim.NewDefault(1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	machines := make([]core.MachineProfile, n)
	for i := range machines {
		h := float64(i) / float64(n)
		machines[i] = core.MachineProfile{Alpha: 1, Beta: 0.46 * (1 + 0.1*h), Gamma: 0.5 + 2.2*h}
	}
	snap, err := core.NewSnapshot(&core.Profile{
		W1: 52, W2: 34, CoolFactor: 150, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}, 0, core.WithMaxMachines(n))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.FromSnapshot(snap, engOpts...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(room, append([]Option{WithEngine(eng)}, srvOpts...)...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return eng, ts
}

func doGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestPlanBadAvoidIs400: an avoid list naming machines outside the room
// is the client's fault, not a planning failure.
func TestPlanBadAvoidIs400(t *testing.T) {
	ts := newServingServer(t)
	for _, q := range []string{"avoid=99", "avoid=-1", "avoid=2,42"} {
		if code := getJSON(t, ts.URL+"/v1/plan?load=3&"+q, nil); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, code)
		}
	}
	// A valid avoid list still answers degraded.
	var plan PlanResult
	if code := getJSON(t, ts.URL+"/v1/plan?load=3&avoid=2,5", &plan); code != http.StatusOK {
		t.Fatalf("valid avoid: status %d", code)
	}
	if !plan.Degraded {
		t.Fatal("valid avoid answered non-degraded")
	}
}

// TestOverloadIs503WithRetryAfter: a shed cache miss surfaces as 503
// with a Retry-After hint; cache hits keep serving 200 throughout.
func TestOverloadIs503WithRetryAfter(t *testing.T) {
	eng, ts := newOverloadServer(t, nil, nil)
	if code := getJSON(t, ts.URL+"/v1/plan?load=3", nil); code != http.StatusOK {
		t.Fatalf("prime: status %d", code)
	}
	done := eng.BeginInstall()
	resp := doGet(t, ts.URL+"/v1/plan?load=5")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("miss during install: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var cached PlanResult
	if code := getJSON(t, ts.URL+"/v1/plan?load=3", &cached); code != http.StatusOK || !cached.Cached {
		t.Fatalf("cache hit during install: status %d cached=%t", code, cached.Cached)
	}
	done()
	if code := getJSON(t, ts.URL+"/v1/plan?load=5", nil); code != http.StatusOK {
		t.Fatalf("after install: status %d", code)
	}
}

// TestRequestTimeoutIs503: a compute that outlives the server-side
// deadline is cut off and answered 503 + Retry-After, not left hanging.
func TestRequestTimeoutIs503(t *testing.T) {
	hook := engine.WithComputeHook(func(ctx context.Context) { <-ctx.Done() })
	_, ts := newOverloadServer(t, []engine.Option{hook},
		[]Option{WithRequestTimeout(5 * time.Millisecond)})
	resp := doGet(t, ts.URL+"/v1/plan?load=3")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestHealthzAndReadyz: liveness always answers; readiness follows the
// engine's install gate and carries the reason while not ready.
func TestHealthzAndReadyz(t *testing.T) {
	eng, ts := newOverloadServer(t, nil, nil)
	var health HealthResult
	if code := getJSON(t, ts.URL+"/v1/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, health)
	}
	var ready ReadyResult
	if code := getJSON(t, ts.URL+"/v1/readyz", &ready); code != http.StatusOK || !ready.Ready {
		t.Fatalf("readyz: %d %+v", code, ready)
	}
	done := eng.BeginInstall()
	resp := doGet(t, ts.URL+"/v1/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during install: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("unready 503 without Retry-After")
	}
	// Liveness is unaffected by the install.
	if code := getJSON(t, ts.URL+"/v1/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz during install: %d", code)
	}
	done()
	if code := getJSON(t, ts.URL+"/v1/readyz", &ready); code != http.StatusOK || !ready.Ready {
		t.Fatalf("readyz after install: %d %+v", code, ready)
	}
	// A room-only server is always ready.
	if code := getJSON(t, newTestServer(t).URL+"/v1/readyz", &ready); code != http.StatusOK || !ready.Ready {
		t.Fatalf("room-only readyz: %d %+v", code, ready)
	}
}

// TestStatsLatencyHistograms: with a fake clock ticking 1 ms per read,
// every timed request observes exactly one tick, so the quantiles are
// deterministic.
func TestStatsLatencyHistograms(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0), time.Millisecond)
	_, ts := newOverloadServer(t, nil, []Option{WithClock(fake)})
	for i := 0; i < 4; i++ {
		if code := getJSON(t, ts.URL+"/v1/plan?load=3", nil); code != http.StatusOK {
			t.Fatalf("plan %d: status %d", i, code)
		}
	}
	var stats struct {
		engine.Stats
		Latency map[string]LatencySummary `json:"latency"`
	}
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	sum, ok := stats.Latency["GET /v1/plan"]
	if !ok {
		t.Fatalf("no latency entry for GET /v1/plan: %v", stats.Latency)
	}
	if sum.Count != 4 {
		t.Fatalf("plan count = %d, want 4", sum.Count)
	}
	// One 1 ms tick lands in the 1.024 ms bucket at every quantile.
	if sum.P50Ms != 1.024 || sum.P95Ms != 1.024 || sum.P99Ms != 1.024 {
		t.Fatalf("quantiles = %v/%v/%v, want 1.024 each", sum.P50Ms, sum.P95Ms, sum.P99Ms)
	}
	if stats.Ready != true || stats.Breaker != "closed" {
		t.Fatalf("engine stats not embedded: %+v", stats.Stats)
	}
}
