// Package roomapi serves a machine room over HTTP/JSON — the control
// plane a deployed installation exposes to the central optimizer. The
// API mirrors machineroom.Room one-to-one so internal/roomclient can
// implement that interface remotely:
//
//	GET  /v1/room                      room metadata and clock
//	GET  /v1/sensors                   bulk sensor snapshot
//	POST /v1/machines/{id}/load        {"utilization": 0.5}
//	POST /v1/machines/{id}/power       {"on": true}
//	GET  /v1/crac                      CRAC state
//	POST /v1/crac/setpoint             {"setPointC": 24}
//	POST /v1/advance                   {"seconds": 100}
//
// The /v1/advance verb exists because the reference server hosts a
// simulated room (a virtual testbed) whose time is virtual; against real
// hardware an implementation would accept it as a plain wall-clock wait.
//
// When the server is built with WithEngine, three planning endpoints
// serve queries straight off the engine's immutable snapshot, never
// touching the room or its lock:
//
//	GET /v1/plan?load=12.5[&method=8][&mode=exact|hier][&avoid=3,7][&safe=true][&supply=22][&margin=2.5]
//	GET /v1/consolidate?load=12.5[&mink=13]
//	GET /v1/maxload?budget=5000
//	GET /v1/stats                      cache and snapshot counters
//
// The package carries the errcontract marker: sentinel comparisons,
// unwrapped error causes, and silently dropped error returns are lint
// errors here, because the 503/422/400 mapping in writePlanError relies
// on errors.Is seeing the engine's sentinels through every wrap layer.
//
//coolopt:errcontract
package roomapi

// RoomInfo describes the room (GET /v1/room).
type RoomInfo struct {
	Machines int     `json:"machines"`
	TimeS    float64 `json:"timeS"`
}

// MachineSensors is one machine's readout within a sensor snapshot.
type MachineSensors struct {
	ID       int     `json:"id"`
	On       bool    `json:"on"`
	CPUTempC float64 `json:"cpuTempC"`
	PowerW   float64 `json:"powerW"`
}

// Sensors is the bulk snapshot (GET /v1/sensors).
type Sensors struct {
	TimeS    float64          `json:"timeS"`
	Machines []MachineSensors `json:"machines"`
	CRAC     CRACState        `json:"crac"`
}

// CRACState is the cooling unit's state (GET /v1/crac).
type CRACState struct {
	SetPointC float64 `json:"setPointC"`
	SupplyC   float64 `json:"supplyC"`
	ReturnC   float64 `json:"returnC"`
	PowerW    float64 `json:"powerW"`
}

// SetLoadRequest is the body of POST /v1/machines/{id}/load.
type SetLoadRequest struct {
	Utilization float64 `json:"utilization"`
}

// SetPowerRequest is the body of POST /v1/machines/{id}/power.
type SetPowerRequest struct {
	On bool `json:"on"`
}

// SetPointRequest is the body of POST /v1/crac/setpoint.
type SetPointRequest struct {
	SetPointC float64 `json:"setPointC"`
}

// AdvanceRequest is the body of POST /v1/advance.
type AdvanceRequest struct {
	Seconds float64 `json:"seconds"`
}

// PlanResult is a served plan (GET /v1/plan).
type PlanResult struct {
	// Epoch identifies the engine snapshot that produced the plan.
	Epoch uint64 `json:"epoch"`
	// Method is the planning scenario after defaulting (1–8, Fig. 4).
	Method int `json:"method"`
	// On lists powered-on machine IDs; Loads is indexed by machine ID.
	On    []int     `json:"on"`
	Loads []float64 `json:"loads"`
	// TAcC is the commanded supply temperature in °C.
	TAcC float64 `json:"tAcC"`
	// ShedLoad is demand (machine-units) not carried because capacity
	// ran out; Capacity is the pool capacity the shed was computed
	// against.
	ShedLoad float64 `json:"shedLoad,omitempty"`
	Capacity float64 `json:"capacity,omitempty"`
	// Degraded reports the plan was computed around failed machines;
	// Cached/Shared report cache hits and single-flight coalescing;
	// Hierarchical reports the pod-sharded planner answered.
	Degraded     bool `json:"degraded,omitempty"`
	Cached       bool `json:"cached,omitempty"`
	Shared       bool `json:"shared,omitempty"`
	Hierarchical bool `json:"hierarchical,omitempty"`
}

// ConsolidateResult is a raw consolidation answer (GET /v1/consolidate).
type ConsolidateResult struct {
	Epoch  uint64  `json:"epoch"`
	Subset []int   `json:"subset"`
	T      float64 `json:"t"`
	PowerW float64 `json:"powerW"`
}

// MaxLoadResult is a budget-query answer (GET /v1/maxload).
type MaxLoadResult struct {
	Epoch  uint64  `json:"epoch"`
	Load   float64 `json:"load"`
	Subset []int   `json:"subset"`
	T      float64 `json:"t"`
}

// LatencySummary is one endpoint's serving-latency digest inside
// GET /v1/stats. Quantiles are bucket upper bounds from a power-of-two
// microsecond histogram (≤2× resolution), reported in milliseconds.
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`
}

// HealthResult is the liveness answer (GET /v1/healthz).
type HealthResult struct {
	Status string `json:"status"`
}

// ReadyResult is the readiness answer (GET /v1/readyz). Reason is set
// only when not ready (snapshot install in flight, breaker open).
type ReadyResult struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
}

// ErrorResponse carries an API error.
type ErrorResponse struct {
	Error string `json:"error"`
}

// SeqHeader is the idempotency-token header mutating requests may carry.
// A client stamps each POST with a token it never reuses for a different
// command; if the server has already executed that token it replays the
// recorded response instead of executing again, so a retried POST (the
// client saw a timeout or reset but the server had applied the command)
// cannot advance the room twice. See Server for the replay window.
const SeqHeader = "Coolopt-Seq"
