package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"coolopt/internal/core"
)

// expireCtx is a hand-rolled context whose deadline "fires" when the
// test says so — request-counted breaker tests need deadline-exceeded
// computes without touching the wall clock.
type expireCtx struct {
	context.Context
	done    chan struct{}
	mu      sync.Mutex
	expired bool
}

func newExpireCtx() *expireCtx {
	return &expireCtx{Context: context.Background(), done: make(chan struct{})}
}

func (c *expireCtx) Done() <-chan struct{} { return c.done }

func (c *expireCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.expired {
		return context.DeadlineExceeded
	}
	return nil
}

func (c *expireCtx) expire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.expired {
		c.expired = true
		close(c.done)
	}
}

// TestDegradedHierarchicalRouting: with hierarchy active the avoid path
// must answer through the pod planner (Degraded && Hierarchical), keep
// the avoided machines off, and never fall back to the flat pool sweep.
func TestDegradedHierarchicalRouting(t *testing.T) {
	const n = 64
	e, err := FromPodSnapshot(testPods(t, n, 0))
	if err != nil {
		t.Fatal(err)
	}
	avoid := []int{3, 17, 18, 40}
	resp, err := e.Plan(context.Background(), Request{Load: 20, Avoid: avoid})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || !resp.Hierarchical {
		t.Fatalf("Degraded=%t Hierarchical=%t, want both", resp.Degraded, resp.Hierarchical)
	}
	blocked := map[int]bool{3: true, 17: true, 18: true, 40: true}
	for _, i := range resp.Plan.On {
		if blocked[i] {
			t.Fatalf("avoided machine %d is on", i)
		}
	}
	// Mode pinning: hier on a snap+pods engine routes the same way even
	// below the auto threshold.
	both, err := FromSnapshots(testSnapshot(t, n, 0), testPods(t, n, 0))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = both.Plan(context.Background(), Request{Load: 20, Avoid: avoid, Mode: ModeHier})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || !resp.Hierarchical {
		t.Fatalf("pinned hier: Degraded=%t Hierarchical=%t", resp.Degraded, resp.Hierarchical)
	}
	// Auto below threshold on a snap+pods engine stays exact (flat
	// degraded sweep) — the routing must not regress the small-room path.
	resp, err = both.Plan(context.Background(), Request{Load: 21, Avoid: avoid})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Hierarchical {
		t.Fatalf("auto small room: Degraded=%t Hierarchical=%t, want flat", resp.Degraded, resp.Hierarchical)
	}
}

// TestDegradedHierarchicalShedding: demand beyond the surviving pool
// sheds to the survivors' Eq. 20 capacity through the pod path.
func TestDegradedHierarchicalShedding(t *testing.T) {
	const n = 32
	e, err := FromPodSnapshot(testPods(t, n, 0))
	if err != nil {
		t.Fatal(err)
	}
	avoid := make([]int, 8)
	for i := range avoid {
		avoid[i] = i * 4
	}
	resp, err := e.Plan(context.Background(), Request{Load: float64(n) - 2, Avoid: avoid, MarginC: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || !resp.Hierarchical {
		t.Fatalf("Degraded=%t Hierarchical=%t", resp.Degraded, resp.Hierarchical)
	}
	if resp.ShedLoad <= 0 {
		t.Fatalf("ShedLoad = %v, want > 0 with %d survivors for load %v", resp.ShedLoad, n-len(avoid), float64(n)-2)
	}
	if resp.Capacity <= 0 || resp.Capacity > float64(n-len(avoid)) {
		t.Fatalf("Capacity = %v outside (0, %d]", resp.Capacity, n-len(avoid))
	}
	got := resp.Plan.TotalLoad()
	if diff := got - resp.Capacity; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("plan carries %v, want the shed capacity %v", got, resp.Capacity)
	}
}

// TestBadAvoidRejected: out-of-range avoid IDs are a typed client error,
// not a silent drop.
func TestBadAvoidRejected(t *testing.T) {
	e := testEngine(t, 16)
	for _, avoid := range [][]int{{-1}, {16}, {3, 99}} {
		_, err := e.Plan(context.Background(), Request{Load: 4, Avoid: avoid})
		if !errors.Is(err, ErrBadAvoid) {
			t.Fatalf("avoid %v: err = %v, want ErrBadAvoid", avoid, err)
		}
	}
	// In-range duplicates still fine.
	if _, err := e.Plan(context.Background(), Request{Load: 4, Avoid: []int{5, 5, 2}}); err != nil {
		t.Fatalf("valid avoid rejected: %v", err)
	}
}

// TestModeMismatchIsNoPath: pinning a path the installed state cannot
// serve is ErrNoPath — the FromSnapshots pod-only hole answers typed
// instead of panicking or silently degrading.
func TestModeMismatchIsNoPath(t *testing.T) {
	podOnly, err := FromPodSnapshot(testPods(t, 16, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := podOnly.Plan(context.Background(), Request{Load: 4, Mode: ModeExact}); !errors.Is(err, ErrNoPath) {
		t.Fatalf("exact on pod-only: err = %v, want ErrNoPath", err)
	}
	snapOnly := testEngine(t, 16)
	if _, err := snapOnly.Plan(context.Background(), Request{Load: 4, Mode: ModeHier}); !errors.Is(err, ErrNoPath) {
		t.Fatalf("hier without pods: err = %v, want ErrNoPath", err)
	}
	// And the pod-only engine must answer every avoid/safe shape.
	if _, err := podOnly.Plan(context.Background(), Request{Load: 4, Avoid: []int{2}}); err != nil {
		t.Fatalf("pod-only avoid: %v", err)
	}
	if _, err := podOnly.Plan(context.Background(), Request{Load: 4, Safe: true, AchievedSupplyC: 18}); err != nil {
		t.Fatalf("pod-only safe: %v", err)
	}
}

// TestMaxInFlightSheds: with a bound of 1, a second concurrent cache
// miss is shed with ErrOverloaded while the first computes; cache hits
// keep serving.
func TestMaxInFlightSheds(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var gate atomic.Bool
	hook := func(context.Context) {
		if gate.Load() {
			entered <- struct{}{}
			<-release
		}
	}
	e, err := FromSnapshots(testSnapshot(t, 16, 0), nil, WithMaxInFlight(1), WithComputeHook(hook))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Prime one cache entry while the gate is open.
	if _, err := e.Plan(ctx, Request{Load: 2}); err != nil {
		t.Fatal(err)
	}
	gate.Store(true)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Plan(ctx, Request{Load: 5}); err != nil {
			t.Errorf("blocked compute: %v", err)
		}
	}()
	<-entered // the first miss is inside compute
	if _, err := e.Plan(ctx, Request{Load: 9}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second miss: err = %v, want ErrOverloaded", err)
	}
	resp, err := e.Plan(ctx, Request{Load: 2})
	if err != nil || !resp.Cached {
		t.Fatalf("cache hit during overload: resp=%+v err=%v", resp, err)
	}
	s := e.Stats()
	if s.InFlight != 1 || s.MaxInFlight != 1 || s.ShedOverload == 0 {
		t.Fatalf("stats during overload: %+v", s)
	}
	gate.Store(false)
	close(release)
	wg.Wait()
	if _, err := e.Plan(ctx, Request{Load: 9}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestInstallGateSheds: between BeginInstall and its done func, cache
// misses shed with ErrOverloaded, hits serve, and Ready reports the
// install; done restores service.
func TestInstallGateSheds(t *testing.T) {
	e := testEngine(t, 16)
	ctx := context.Background()
	if _, err := e.Plan(ctx, Request{Load: 3}); err != nil {
		t.Fatal(err)
	}
	if ready, _ := e.Ready(); !ready {
		t.Fatal("not ready before install")
	}
	done := e.BeginInstall()
	if ready, reason := e.Ready(); ready || reason == "" {
		t.Fatalf("Ready() = %t %q during install", ready, reason)
	}
	if !e.Stats().Installing {
		t.Fatal("Stats.Installing false during install")
	}
	if _, err := e.Plan(ctx, Request{Load: 7}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("miss during install: err = %v, want ErrOverloaded", err)
	}
	resp, err := e.Plan(ctx, Request{Load: 3})
	if err != nil || !resp.Cached {
		t.Fatalf("hit during install: resp=%+v err=%v", resp, err)
	}
	done()
	done() // idempotent
	if ready, _ := e.Ready(); !ready {
		t.Fatal("not ready after done()")
	}
	if _, err := e.Plan(ctx, Request{Load: 7}); err != nil {
		t.Fatalf("after done: %v", err)
	}
}

// TestBreakerTripShedsAndRecovers drives the full request-counted
// breaker cycle: three deadline-exceeded computes trip it open, the
// open window sheds breakerOpenFor misses, the next miss is the
// half-open probe, and a successful probe closes it again.
func TestBreakerTripShedsAndRecovers(t *testing.T) {
	entered := make(chan struct{}, 1)
	var block atomic.Bool
	hook := func(ctx context.Context) {
		if block.Load() {
			entered <- struct{}{}
			<-ctx.Done()
		}
	}
	e, err := FromSnapshots(testSnapshot(t, 16, 0), nil, WithComputeHook(hook))
	if err != nil {
		t.Fatal(err)
	}
	block.Store(true)
	for i := 0; i < breakerTripAfter; i++ {
		ctx := newExpireCtx()
		go func() {
			<-entered
			ctx.expire()
		}()
		if _, err := e.Plan(ctx, Request{Load: 1 + float64(i)}); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("blocked compute %d: err = %v, want DeadlineExceeded", i, err)
		}
	}
	block.Store(false)
	if ready, reason := e.Ready(); ready || reason != "breaker open" {
		t.Fatalf("Ready() = %t %q after trip", ready, reason)
	}
	if s := e.Stats(); s.Breaker != "open" || s.Ready {
		t.Fatalf("stats after trip: breaker=%q ready=%t", s.Breaker, s.Ready)
	}
	// The open window sheds exactly breakerOpenFor misses.
	for i := 0; i < breakerOpenFor; i++ {
		_, err := e.Plan(context.Background(), Request{Load: 4 + float64(i)*0.5})
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("open shed %d: err = %v, want ErrOverloaded", i, err)
		}
	}
	if ready, reason := e.Ready(); ready || reason != "breaker half-open" {
		t.Fatalf("Ready() = %t %q after the open window", ready, reason)
	}
	// The next miss is the probe; it computes and closes the breaker.
	resp, err := e.Plan(context.Background(), Request{Load: 3.5})
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if resp.Plan == nil {
		t.Fatal("probe returned no plan")
	}
	if ready, _ := e.Ready(); !ready {
		t.Fatal("breaker did not close after a successful probe")
	}
	if s := e.Stats(); s.Breaker != "closed" || !s.Ready {
		t.Fatalf("stats after recovery: breaker=%q ready=%t", s.Breaker, s.Ready)
	}
}

// TestBreakerReopensOnFailedProbe: a probe that also blows its deadline
// re-opens the breaker for a fresh shed window.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	entered := make(chan struct{}, 1)
	var block atomic.Bool
	hook := func(ctx context.Context) {
		if block.Load() {
			entered <- struct{}{}
			<-ctx.Done()
		}
	}
	e, err := FromSnapshots(testSnapshot(t, 16, 0), nil, WithComputeHook(hook))
	if err != nil {
		t.Fatal(err)
	}
	deadline := func(load float64) error {
		ctx := newExpireCtx()
		go func() {
			<-entered
			ctx.expire()
		}()
		_, err := e.Plan(ctx, Request{Load: load})
		return err
	}
	block.Store(true)
	for i := 0; i < breakerTripAfter; i++ {
		if err := deadline(1 + float64(i)); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("trip %d: %v", i, err)
		}
	}
	for i := 0; i < breakerOpenFor; i++ {
		if _, err := e.Plan(context.Background(), Request{Load: 4 + float64(i)*0.5}); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("open shed %d: %v", i, err)
		}
	}
	// Half-open: the probe fails its deadline too → open again.
	if err := deadline(12.5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("failed probe: %v", err)
	}
	if ready, reason := e.Ready(); ready || reason != "breaker open" {
		t.Fatalf("Ready() = %t %q after failed probe", ready, reason)
	}
	block.Store(false)
	// Full shed window again before the next probe may close it.
	for i := 0; i < breakerOpenFor; i++ {
		if _, err := e.Plan(context.Background(), Request{Load: 5 + float64(i)*0.55}); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("reopened shed %d: %v", i, err)
		}
	}
	if _, err := e.Plan(context.Background(), Request{Load: 6.25}); err != nil {
		t.Fatalf("second probe: %v", err)
	}
	if ready, _ := e.Ready(); !ready {
		t.Fatal("breaker did not close after the second probe")
	}
}

// TestInstallDuringTrafficKeepsTyped: InstallHierarchical's own state
// build runs under the install gate; a pod-build failure via the
// injectable check leaves the old state serving.
func TestFailedInstallKeepsServing(t *testing.T) {
	e := testEngine(t, 16)
	ctx := context.Background()
	if _, err := e.Plan(ctx, Request{Load: 4}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected pod build failure")
	_, err := core.NewPodSnapshot(testProfile(16), 1,
		core.WithPodSize(4), core.WithPodBuildCheck(func(int) error { return boom }))
	if !errors.Is(err, boom) {
		t.Fatalf("pod build: err = %v, want injected failure", err)
	}
	// The failed build never reached Install; the engine still serves
	// epoch 0 and stays ready.
	resp, err := e.Plan(ctx, Request{Load: 4.5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 0 {
		t.Fatalf("epoch = %d, want 0", resp.Epoch)
	}
	if ready, _ := e.Ready(); !ready {
		t.Fatal("engine not ready after an aborted external build")
	}
}
