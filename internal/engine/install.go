package engine

import (
	"errors"
	"fmt"

	"coolopt/internal/core"
)

// This file is the pipelined half of the install path. The classic
// Install/InstallHierarchical run the state build in line, which is why
// they gate admission (BeginInstall) for their whole duration — at
// n = 4096 that is seconds of shedding. The pipeline splits the work:
//
//	PrepareInstall / PreparePatch   build the full serving state off the
//	                                hot path (planner, epoch, tables) —
//	                                readers keep serving the old state;
//	CommitInstall                   an O(1) epoch-checked pointer swap
//	                                plus cache drop, with no admission
//	                                gate and no readiness flap.
//
// Every prepared state remembers the live epoch it was derived from and
// the commit refuses (ErrStaleInstall) if another install published in
// between, so two concurrent re-profilers can never silently clobber each
// other's generation. InstallPatch wraps the prepare/commit pair in an
// internal re-validation loop, which is the fix for the stale-planner
// window that previously pushed the retry burden onto callers (see
// TestInstallHierarchicalEpochMismatch).

// ErrStaleInstall reports a prepared install refused at commit because
// the engine's live epoch moved past the one the preparation was based
// on. Re-prepare against the new state and commit again (InstallPatch
// does this automatically). Wrap-compare with errors.Is.
var ErrStaleInstall = errors.New("engine: prepared install is stale")

// installRetries bounds InstallPatch's internal re-prepare loop. Losing
// the epoch race this many times in a row means another installer is
// livelocking us; surface it instead of spinning.
const installRetries = 4

// patchSpliceBudget is the retained-crossing count above which the flat
// splice-patch is predicted to lose to a from-scratch rebuild. The
// splice filters and merges the full retained list (O(n²) work
// proportional to RetainedCrossings) and then re-runs the same sweep a
// rebuild would, so once the retained list is large enough the filter
// and merge cost more than the fresh pair generation and sort they
// replace — measured on this hardware the crossover sits between n=2048
// (~2M retained, splice still ahead) and n=4096 (~8M retained, splice
// ~20% slower than the rebuild; see ROADMAP). A var so tests can pin the
// decision both ways.
var patchSpliceBudget = 4 << 20

// patchWouldLose is the flat patch-cost advisor: true when the retained
// crossing list is past the measured splice-versus-rebuild crossover.
func patchWouldLose(retainedCrossings int) bool {
	return retainedCrossings > patchSpliceBudget
}

// PreparedInstall is a fully built serving state waiting for its O(1)
// commit. It pins the snapshots and the scenario planner, so holding one
// is as heavy as holding the snapshots themselves.
type PreparedInstall struct {
	st      *state
	base    uint64
	patched bool
}

// Epoch returns the generation the commit will publish.
func (p *PreparedInstall) Epoch() uint64 { return p.st.epoch }

// BaseEpoch returns the live generation the preparation was derived
// from; CommitInstall refuses if the engine has moved past it.
func (p *PreparedInstall) BaseEpoch() uint64 { return p.base }

// Snapshot returns the prepared exact snapshot, or nil in pod-only mode.
func (p *PreparedInstall) Snapshot() *core.Snapshot { return p.st.snap }

// Pods returns the prepared pod tables, or nil.
func (p *PreparedInstall) Pods() *core.PodSnapshot { return p.st.pods }

// Patched reports whether the prepared tables came from an incremental
// Patch rather than a from-scratch build (stats accounting).
func (p *PreparedInstall) Patched() bool { return p.patched }

// PrepareInstall builds the serving state for externally constructed
// snapshots (either may be nil, not both; epochs must agree) without
// touching the live state or the admission gate — call it from a worker
// while the engine keeps serving. The commit will require the engine to
// still be on the epoch it is on now.
func (e *Engine) PrepareInstall(snap *core.Snapshot, pods *core.PodSnapshot) (*PreparedInstall, error) {
	base := e.state.Load().epoch
	st, err := newState(snap, pods)
	if err != nil {
		return nil, err
	}
	return &PreparedInstall{st: st, base: base}, nil
}

// PreparePatch builds the next generation by incrementally patching the
// live state's snapshots with a drift batch: the exact tables splice
// their retained crossing list when the live snapshot carries one
// (WithPatchSupport — the patched result always does, so the path is
// self-sustaining), and pod tables rebuild only the pods containing
// drifted machines. Invalid batches are refused with core.ErrBadDelta.
// The live state keeps serving untouched throughout.
//
// Two cases force a from-scratch rebuild (still bit-identical to the
// splice, so callers cannot tell except by the stats):
//
//   - power-model drift (core.PowerDrift): replacement W1/W2 move every
//     particle, so no retained crossing survives and no pod is spared;
//   - the flat patch-cost advisor (patchWouldLose): past the measured
//     crossover the splice's filter-and-merge over the retained list is
//     slower than the rebuild it was meant to avoid — counted in
//     Stats.PatchFallbackRebuilds.
func (e *Engine) PreparePatch(drifted []core.MachineDelta) (*PreparedInstall, error) {
	cur := e.state.Load()
	var (
		snap *core.Snapshot
		pods *core.PodSnapshot
		err  error
	)
	powerDrift := core.PowerDrift(drifted)
	patched := cur.snap == nil || cur.snap.PatchSupported()
	if cur.snap != nil {
		switch {
		case powerDrift:
			// Every K_i moves; Patch detects this itself and rebuilds.
			patched = false
			snap, err = cur.snap.Patch(drifted, core.WithPatchSupport())
		case cur.snap.PatchSupported() && patchWouldLose(cur.snap.Tables().RetainedCrossings()):
			patched = false
			e.mu.Lock()
			e.patchFallbackRebuilds++
			e.mu.Unlock()
			snap, err = cur.snap.PatchRebuild(drifted,
				core.WithMaxMachines(cur.snap.Size()), core.WithPatchSupport())
		default:
			snap, err = cur.snap.Patch(drifted, core.WithPatchSupport())
		}
		if err != nil {
			return nil, err
		}
	}
	if cur.pods != nil {
		pods, err = cur.pods.Patch(drifted)
		if err != nil {
			return nil, err
		}
		if powerDrift {
			patched = false
		}
	}
	st, err := newState(snap, pods)
	if err != nil {
		return nil, err
	}
	return &PreparedInstall{
		st:      st,
		base:    cur.epoch,
		patched: patched,
	}, nil
}

// CommitInstall publishes a prepared state: an epoch-checked pointer swap
// plus plan-cache drop under the engine mutex, nothing else. It returns
// ErrStaleInstall (and publishes nothing) when another install moved the
// live epoch past the preparation's base. No admission gate is taken —
// the commit has no build window to shed around, so readiness never
// flaps.
func (e *Engine) CommitInstall(p *PreparedInstall) error {
	return e.publishIfEpoch(p.st, p.base, p.patched)
}

// InstallPatch applies a drift batch end to end: prepare off the live
// state, commit, and on an epoch race re-prepare against the newly
// published state instead of surfacing ErrStaleInstall to the caller —
// drift deltas are absolute coefficients, so re-deriving against a newer
// generation is always valid. Returns the published epoch.
//
// Concurrent InstallPatch calls serialize on an internal mutex (racing
// the prepare would only burn duplicate table builds); the retry loop
// below absorbs interference from full Install/CommitInstall callers,
// which do not serialize with patches.
func (e *Engine) InstallPatch(drifted []core.MachineDelta) (uint64, error) {
	e.patchMu.Lock()
	defer e.patchMu.Unlock()
	var lastErr error
	for attempt := 0; attempt < installRetries; attempt++ {
		prep, err := e.PreparePatch(drifted)
		if err != nil {
			return 0, err
		}
		if err := e.CommitInstall(prep); err != nil {
			if errors.Is(err, ErrStaleInstall) {
				lastErr = err
				continue
			}
			return 0, err
		}
		return prep.Epoch(), nil
	}
	return 0, fmt.Errorf("engine: lost the install epoch race %d times: %w", installRetries, lastErr)
}
