// Package engine is the concurrent plan-serving layer between the frozen
// model (core.Snapshot) and whatever consumes plans — the hardened
// controller, the HTTP serving surface, and load-generation benchmarks.
//
// The design is the plant-model/optimizer split MPC controllers draw: the
// mutable simulator keeps its Clone() discipline, while planning runs
// entirely on an immutable Snapshot published through an RCU-style atomic
// pointer. Readers never lock; a re-profile or failure-driven model change
// swaps the pointer with Install and in-flight queries simply finish
// against the snapshot they started on. A single-flight, bounded plan
// cache keyed by (snapshot epoch, request) coalesces identical concurrent
// queries — under serving load many clients ask for the same (method,
// load) point, and one solve can answer all of them.
//
//coolopt:deterministic
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"coolopt/internal/baseline"
	"coolopt/internal/core"
	"coolopt/internal/units"
)

// cacheCap bounds the plan cache; beyond it the oldest entries are
// evicted FIFO. Plans are small (two slices of n), so this is a few MB
// even at datacenter scale.
const cacheCap = 512

// Request describes one planning query.
type Request struct {
	// Method selects the planning scenario; the zero value means the
	// paper's solution (#8, consolidation + AC control).
	Method baseline.Method
	// Load is the total demand in machine-utilization units.
	Load float64
	// Avoid lists machine IDs to plan around (detected failures). A
	// non-empty list routes the query to the degraded planner.
	Avoid []int
	// Safe asks for a CRAC-safe-mode plan: no consolidation, loads
	// shed to what AchievedSupplyC can carry.
	Safe bool
	// AchievedSupplyC is the supply temperature the room actually
	// delivers (°C), used only when Safe is set: a stuck CRAC makes the
	// commanded value meaningless.
	AchievedSupplyC float64
	// MarginC is the thermal cushion (°C) added to the supply
	// temperature when computing shed capacity.
	MarginC float64
}

// normalize defaults the method and canonicalizes the avoid list (sorted,
// deduplicated copy) so equivalent requests share a cache key.
func (r Request) normalize() Request {
	if r.Method == 0 {
		r.Method = baseline.OptimalACCons
	}
	if len(r.Avoid) > 0 {
		avoid := append([]int(nil), r.Avoid...)
		sort.Ints(avoid)
		out := avoid[:1]
		for _, i := range avoid[1:] {
			if i != out[len(out)-1] {
				out = append(out, i)
			}
		}
		r.Avoid = out
	}
	return r
}

// key is the cache / single-flight identity of a normalized request under
// one snapshot epoch. Floats are keyed by their bit patterns: the cache
// must distinguish loads that differ in the last ulp, not judge numeric
// closeness.
func (r Request) key(epoch uint64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%d|%x|%t|%x|%x", epoch, int(r.Method),
		math.Float64bits(r.Load), r.Safe,
		math.Float64bits(r.AchievedSupplyC), math.Float64bits(r.MarginC))
	for _, i := range r.Avoid {
		fmt.Fprintf(&sb, "|%d", i)
	}
	return sb.String()
}

// Response is a served plan plus the accounting the caller needs to act
// on it. The embedded Plan is shared with the cache: treat it as
// read-only.
type Response struct {
	// Plan is the control decision.
	Plan *core.Plan
	// Method is the scenario that produced it (after defaulting).
	Method baseline.Method
	// Epoch identifies the snapshot the plan was computed against.
	Epoch uint64
	// Degraded reports the plan was computed around failed machines.
	Degraded bool
	// ShedLoad is the demand (machine-units) the plan does NOT carry
	// because capacity ran out; zero when demand is fully served.
	ShedLoad float64
	// Capacity is the pool capacity the shed was computed against;
	// meaningful only when ShedLoad > 0.
	Capacity float64
	// Cached reports the response came from the plan cache; Shared that
	// it was coalesced onto a concurrent identical query.
	Cached bool
	Shared bool
}

// state is the RCU payload: one frozen snapshot plus the scenario planner
// built on it. Both are read-only after construction.
type state struct {
	snap    *core.Snapshot
	planner *baseline.Planner
}

// flight is one in-progress computation that concurrent identical
// requests wait on.
type flight struct {
	done chan struct{}
	resp *Response
	err  error
}

// Engine serves plans off an atomically swappable snapshot.
type Engine struct {
	state atomic.Pointer[state]

	mu       sync.Mutex
	cache    map[string]*Response
	order    []string // FIFO eviction order of cache keys
	inflight map[string]*flight
}

// New builds an engine serving the given planner's snapshot.
func New(pl *baseline.Planner) *Engine {
	e := &Engine{
		cache:    make(map[string]*Response),
		inflight: make(map[string]*flight),
	}
	e.state.Store(&state{snap: pl.Snapshot(), planner: pl})
	return e
}

// FromSnapshot builds an engine directly on a frozen snapshot,
// constructing the scenario planner over it.
func FromSnapshot(snap *core.Snapshot) (*Engine, error) {
	pl, err := baseline.NewPlannerOn(snap)
	if err != nil {
		return nil, err
	}
	return New(pl), nil
}

// Install publishes a new snapshot: the scenario planner is rebuilt on
// it, the (snapshot, planner) pair swaps in atomically, and the plan
// cache is dropped. Queries already running finish against the snapshot
// they loaded; new queries see the new one.
func (e *Engine) Install(snap *core.Snapshot) error {
	pl, err := baseline.NewPlannerOn(snap)
	if err != nil {
		return err
	}
	e.state.Store(&state{snap: snap, planner: pl})
	e.mu.Lock()
	e.cache = make(map[string]*Response)
	e.order = e.order[:0]
	e.mu.Unlock()
	return nil
}

// Snapshot returns the currently installed snapshot.
func (e *Engine) Snapshot() *core.Snapshot { return e.state.Load().snap }

// Epoch returns the installed snapshot's epoch.
func (e *Engine) Epoch() uint64 { return e.state.Load().snap.Epoch() }

// Planner returns the scenario planner over the installed snapshot.
func (e *Engine) Planner() *baseline.Planner { return e.state.Load().planner }

// Plan answers one planning query. It is safe for any number of
// concurrent callers; identical queries are coalesced and answers are
// cached until the snapshot changes.
func (e *Engine) Plan(ctx context.Context, req Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if req.Load < 0 {
		return nil, fmt.Errorf("engine: negative load %v", req.Load)
	}
	st := e.state.Load()
	req = req.normalize()
	key := req.key(st.snap.Epoch())

	e.mu.Lock()
	if hit, ok := e.cache[key]; ok {
		e.mu.Unlock()
		r := *hit
		r.Cached = true
		return &r, nil
	}
	if f, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			r := *f.resp
			r.Shared = true
			return &r, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	e.inflight[key] = f
	e.mu.Unlock()

	resp, err := e.compute(st, req)
	f.resp, f.err = resp, err
	close(f.done)

	e.mu.Lock()
	delete(e.inflight, key)
	if err == nil {
		e.store(key, resp)
	}
	e.mu.Unlock()

	if err != nil {
		return nil, err
	}
	r := *resp
	return &r, nil
}

// store inserts into the bounded cache; the caller holds e.mu.
func (e *Engine) store(key string, resp *Response) {
	if _, ok := e.cache[key]; ok {
		return
	}
	for len(e.cache) >= cacheCap && len(e.order) > 0 {
		delete(e.cache, e.order[0])
		e.order = e.order[1:]
	}
	e.cache[key] = resp
	e.order = append(e.order, key)
}

// compute solves one normalized request against one state.
func (e *Engine) compute(st *state, req Request) (*Response, error) {
	resp := &Response{Method: req.Method, Epoch: st.snap.Epoch()}
	switch {
	case req.Safe:
		if err := e.safePlan(st, req, resp); err != nil {
			return nil, err
		}
	case len(req.Avoid) > 0:
		if err := e.degradedPlan(st, req, resp); err != nil {
			return nil, err
		}
	default:
		plan, err := st.planner.Plan(req.Method, req.Load)
		if err != nil {
			return nil, err
		}
		resp.Plan = plan
	}
	return resp, nil
}

// survivors returns 0..n−1 minus the (sorted) avoid list.
func survivors(n int, avoid []int) []int {
	pool := make([]int, 0, n)
	next := 0
	for i := 0; i < n; i++ {
		for next < len(avoid) && avoid[next] < i {
			next++
		}
		if next < len(avoid) && avoid[next] == i {
			continue
		}
		pool = append(pool, i)
	}
	return pool
}

// degradedPlan re-runs the paper's closed form over the surviving
// machines. If even the full surviving set cannot carry the demand, the
// excess is shed to the pool's Eq. 20 capacity at the coldest supply
// (with the thermal cushion).
func (e *Engine) degradedPlan(st *state, req Request, resp *Response) error {
	resp.Degraded = true
	p := st.snap.Profile()
	pool := survivors(p.Size(), req.Avoid)
	if len(pool) == 0 {
		return errors.New("engine: no surviving machines")
	}
	if plan := st.snap.PlanOver(pool, req.Load); plan != nil {
		resp.Plan = plan
		return nil
	}
	capacity := p.CapacityAt(pool, units.Celsius(p.TAcMinC+req.MarginC))
	plan := st.snap.PlanOver(pool, capacity)
	if plan == nil {
		return fmt.Errorf("engine: no feasible degraded plan even after shedding to %.2f units", capacity)
	}
	resp.Plan = plan
	resp.ShedLoad = req.Load - capacity
	resp.Capacity = capacity
	return nil
}

// safePlan plans for a CRAC that no longer answers commands: no
// consolidation (concentration is what needs cold air), loads sized to
// what the achieved supply temperature can carry. Unlike an even spread,
// the shed is slack-weighted: each machine gets load in proportion to its
// own Eq. 20 cap at the achieved supply, so thermally tight machines
// (high α_i/β_i, low K_i) are unloaded first and no machine is pushed
// past its cap.
func (e *Engine) safePlan(st *state, req Request, resp *Response) error {
	p := st.snap.Profile()
	pool := survivors(p.Size(), req.Avoid)
	if len(pool) == 0 {
		return errors.New("engine: no surviving machines")
	}
	supply := units.Celsius(req.AchievedSupplyC + req.MarginC)
	caps := make([]float64, len(pool))
	var capacity float64
	for j, i := range pool {
		caps[j] = p.LoadCap(i, supply)
		capacity += caps[j]
	}
	carried := req.Load
	if carried > capacity {
		carried = capacity
		resp.ShedLoad = req.Load - capacity
		resp.Capacity = capacity
	}
	loads := make([]float64, p.Size())
	if capacity > 0 {
		scale := carried / capacity
		for j, i := range pool {
			loads[i] = caps[j] * scale
		}
	}
	resp.Plan = &core.Plan{On: pool, Loads: loads, TAcC: units.Celsius(p.TAcMinC)}
	return nil
}

// MaxLoad answers the paper's dual budget question maxL(A, P_b) off the
// installed snapshot: the maximum serviceable load under a power budget
// and the machine set achieving it.
func (e *Engine) MaxLoad(budgetW float64) (core.MaxLoadResult, error) {
	return e.state.Load().snap.Tables().MaxLoad(budgetW)
}

// Consolidate answers the consolidation query directly: the best subset
// of at least minK machines for the given load (Eq. 23 scoring).
func (e *Engine) Consolidate(load float64, minK int) (core.Selection, error) {
	return e.state.Load().snap.Tables().QueryExact(load, minK)
}
