// Package engine is the concurrent plan-serving layer between the frozen
// model (core.Snapshot / core.PodSnapshot) and whatever consumes plans —
// the hardened controller, the HTTP serving surface, and load-generation
// benchmarks.
//
// The design is the plant-model/optimizer split MPC controllers draw: the
// mutable simulator keeps its Clone() discipline, while planning runs
// entirely on immutable snapshots published through an RCU-style atomic
// pointer. Readers never lock; a re-profile or failure-driven model change
// swaps the pointer with Install/InstallHierarchical and in-flight queries
// simply finish against the state they started on. A single-flight,
// bounded LRU plan cache keyed by (snapshot epoch, request) coalesces
// identical concurrent queries — under serving load many clients ask for
// the same (method, load) point, and one solve can answer all of them.
//
// Rooms past the whole-room table threshold serve the paper's method #8
// through the two-level pod planner (core.PodSnapshot) with its bounded
// optimality gap; smaller rooms keep the exact tables. Requests can pin
// either path with Request.Mode.
//
//coolopt:deterministic
//coolopt:errcontract
package engine

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"coolopt/internal/baseline"
	"coolopt/internal/core"
	"coolopt/internal/units"
)

// cacheCap bounds the plan cache; beyond it the least-recently-used
// entries are evicted. Plans are small (two slices of n), so this is a
// few MB even at datacenter scale.
const cacheCap = 512

// HierThreshold is the room size at and above which auto mode serves the
// paper's method #8 hierarchically when pod tables are installed. Below
// it the exact whole-room tables are fast enough that the bounded gap
// buys nothing.
const HierThreshold = 2048

// PlanMode selects the consolidation path for the paper's method #8.
type PlanMode int

const (
	// ModeAuto (the zero value) picks hierarchically when pod tables are
	// installed and the room is at least HierThreshold machines (or the
	// engine is pod-only).
	ModeAuto PlanMode = iota
	// ModeExact forces the whole-room tables.
	ModeExact
	// ModeHier forces the two-level pod planner.
	ModeHier
)

// Request describes one planning query.
type Request struct {
	// Method selects the planning scenario; the zero value means the
	// paper's solution (#8, consolidation + AC control).
	Method baseline.Method
	// Load is the total demand in machine-utilization units.
	Load float64
	// Mode pins the exact or hierarchical consolidation path for method
	// #8; the zero value picks automatically. Other methods ignore it.
	Mode PlanMode
	// Avoid lists machine IDs to plan around (detected failures). A
	// non-empty list routes the query to the degraded planner.
	Avoid []int
	// Safe asks for a CRAC-safe-mode plan: no consolidation, loads
	// shed to what AchievedSupplyC can carry.
	Safe bool
	// AchievedSupplyC is the supply temperature the room actually
	// delivers (°C), used only when Safe is set: a stuck CRAC makes the
	// commanded value meaningless.
	AchievedSupplyC float64
	// MarginC is the thermal cushion (°C) added to the supply
	// temperature when computing shed capacity.
	MarginC float64
}

// normalize defaults the method and canonicalizes the avoid list (sorted,
// deduplicated copy) so equivalent requests share a cache key.
func (r Request) normalize() Request {
	if r.Method == 0 {
		r.Method = baseline.OptimalACCons
	}
	if r.Method != baseline.OptimalACCons {
		r.Mode = ModeAuto // mode only disambiguates #8; canonicalize the rest
	}
	if len(r.Avoid) > 0 {
		avoid := append([]int(nil), r.Avoid...)
		sort.Ints(avoid)
		out := avoid[:1]
		for _, i := range avoid[1:] {
			if i != out[len(out)-1] {
				out = append(out, i)
			}
		}
		r.Avoid = out
	}
	return r
}

// key is the cache / single-flight identity of a normalized request under
// one snapshot epoch. By default the load is quantized to 0.1 % of the
// pool capacity so near-identical requests coalesce onto hot cache
// entries: the first request in a bucket computes with its exact load and
// its answer serves the whole bucket (an error of at most one bucket of
// capacity). With exact keys (WithExactCacheKeys) floats are keyed by
// their bit patterns — the cache then distinguishes loads that differ in
// the last ulp, which bit-exactness tests rely on. All other float fields
// are always keyed bit-exact.
func (r Request) key(epoch uint64, machines int, exact bool) string {
	var sb strings.Builder
	if exact {
		fmt.Fprintf(&sb, "%d|%d|%d|x%x|%t|%x|%x", epoch, int(r.Method), int(r.Mode),
			math.Float64bits(r.Load), r.Safe,
			math.Float64bits(r.AchievedSupplyC), math.Float64bits(r.MarginC))
	} else {
		fmt.Fprintf(&sb, "%d|%d|%d|q%d|%t|%x|%x", epoch, int(r.Method), int(r.Mode),
			quantizeLoad(r.Load, machines), r.Safe,
			math.Float64bits(r.AchievedSupplyC), math.Float64bits(r.MarginC))
	}
	for _, i := range r.Avoid {
		fmt.Fprintf(&sb, "|%d", i)
	}
	return sb.String()
}

// quantizeLoad buckets a load to 0.1 % of the pool capacity (machines ×
// one utilization unit). Positive loads below half a bucket round up to
// bucket 1 rather than colliding with the all-off bucket 0.
func quantizeLoad(load float64, machines int) int64 {
	q := 0.001 * float64(machines)
	if q <= 0 {
		return int64(math.Float64bits(load)) // degenerate pool; fall back to bits
	}
	b := int64(math.Round(load / q))
	if b == 0 && load > 0 {
		b = 1
	}
	return b
}

// Response is a served plan plus the accounting the caller needs to act
// on it. The embedded Plan is shared with the cache: treat it as
// read-only.
type Response struct {
	// Plan is the control decision.
	Plan *core.Plan
	// Method is the scenario that produced it (after defaulting).
	Method baseline.Method
	// Epoch identifies the snapshot the plan was computed against.
	Epoch uint64
	// Hierarchical reports the plan came from the two-level pod planner
	// (bounded optimality gap) rather than the exact tables.
	Hierarchical bool
	// Degraded reports the plan was computed around failed machines.
	Degraded bool
	// ShedLoad is the demand (machine-units) the plan does NOT carry
	// because capacity ran out; zero when demand is fully served.
	ShedLoad float64
	// Capacity is the pool capacity the shed was computed against;
	// meaningful only when ShedLoad > 0.
	Capacity float64
	// Cached reports the response came from the plan cache; Shared that
	// it was coalesced onto a concurrent identical query.
	Cached bool
	Shared bool
}

// Stats is a point-in-time view of the engine's cache and topology,
// surfaced by pland's /v1/stats.
type Stats struct {
	// CacheHits, CacheMisses, CacheEvictions and CacheShared count plan
	// cache hits, computed misses, LRU evictions, and queries coalesced
	// onto a concurrent identical computation since the engine started.
	CacheHits      uint64 `json:"cacheHits"`
	CacheMisses    uint64 `json:"cacheMisses"`
	CacheEvictions uint64 `json:"cacheEvictions"`
	CacheShared    uint64 `json:"cacheShared"`
	// CacheEntries and CacheCapacity describe the current cache.
	CacheEntries  int `json:"cacheEntries"`
	CacheCapacity int `json:"cacheCapacity"`
	// QuantizedKeys reports load-bucketed cache keys (the default).
	QuantizedKeys bool `json:"quantizedKeys"`
	// Epoch and Machines describe the installed model; Pods is zero
	// without pod tables. Hierarchical reports whether auto mode serves
	// method #8 through the pod planner.
	Epoch        uint64 `json:"epoch"`
	Machines     int    `json:"machines"`
	Pods         int    `json:"pods"`
	Hierarchical bool   `json:"hierarchical"`
	// Overload protection: InFlight is the current computation count,
	// MaxInFlight the admission bound (0 = unbounded), ShedOverload the
	// requests refused with ErrOverloaded, Breaker the breaker state
	// (closed / open / half-open), Installing whether a snapshot
	// build/install is in progress, and Ready the /v1/readyz verdict.
	InFlight     int    `json:"inFlight"`
	MaxInFlight  int    `json:"maxInFlight"`
	ShedOverload uint64 `json:"shedOverload"`
	Breaker      string `json:"breaker"`
	Installing   bool   `json:"installing"`
	Ready        bool   `json:"ready"`
	// Install accounting: Installs counts every published generation,
	// PipelinedInstalls the ones committed through the
	// PrepareInstall/CommitInstall pipeline (install.go), split into
	// PatchInstalls (incremental Snapshot.Patch builds) and
	// RebuildInstalls (from-scratch builds). StaleInstalls counts prepared
	// generations refused at commit because another install won the epoch
	// race.
	Installs          uint64 `json:"installs"`
	PipelinedInstalls uint64 `json:"pipelinedInstalls"`
	PatchInstalls     uint64 `json:"patchInstalls"`
	RebuildInstalls   uint64 `json:"rebuildInstalls"`
	StaleInstalls     uint64 `json:"staleInstalls"`
}

// state is the RCU payload: the frozen model — exact tables, pod tables,
// or both under one epoch — plus the scenario planner built on it. All of
// it is read-only after construction.
type state struct {
	profile *core.Profile
	snap    *core.Snapshot    // nil in pod-only mode
	pods    *core.PodSnapshot // nil without pod tables
	planner *baseline.Planner
	epoch   uint64
}

// autoHier reports whether auto mode routes method #8 hierarchically.
func (st *state) autoHier() bool {
	return st.pods != nil && (st.snap == nil || st.profile.Size() >= HierThreshold)
}

// flight is one in-progress computation that concurrent identical
// requests wait on.
type flight struct {
	done chan struct{}
	resp *Response
	err  error
}

// cacheEntry is one LRU cache slot.
type cacheEntry struct {
	key  string
	resp *Response
}

// Engine serves plans off an atomically swappable snapshot.
type Engine struct {
	state atomic.Pointer[state]

	exactKeys   bool
	maxInFlight int                       // admission bound; ≤ 0 = unbounded
	computeHook func(ctx context.Context) // fault-injection / test hook

	installing atomic.Int32 // > 0 while a snapshot build/install runs

	// patchMu serializes InstallPatch callers among themselves: a patch
	// prepare costs milliseconds, so letting two re-profilers race the
	// epoch check would burn duplicate builds and can livelock the
	// bounded retry loop. Full Install/PrepareInstall callers do not
	// take it — their interference is what the retry loop is for.
	patchMu sync.Mutex

	mu       sync.Mutex
	cache    map[string]*list.Element
	lru      *list.List // front = most recently used
	inflight map[string]*flight

	hits, misses, evictions, shared uint64
	shedOverload                    uint64

	// Install accounting (see Stats); guarded by mu.
	installs          uint64
	pipelinedInstalls uint64
	patchInstalls     uint64
	rebuildInstalls   uint64
	staleInstalls     uint64

	// Request-counted breaker (overload.go); guarded by mu.
	breakerState    int
	breakerFails    int
	breakerShedLeft int
	breakerProbing  bool
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithExactCacheKeys keys the plan cache by the load's exact bit pattern
// instead of the default 0.1 %-of-capacity buckets. Bit-exactness tests
// and workloads that must never serve a neighbouring load's plan use
// this.
func WithExactCacheKeys() Option {
	return func(e *Engine) { e.exactKeys = true }
}

// New builds an engine serving the given planner's snapshot.
func New(pl *baseline.Planner, opts ...Option) *Engine {
	e := newEngine(opts)
	snap := pl.Snapshot()
	e.state.Store(&state{
		profile: pl.Profile(), snap: snap, planner: pl, epoch: snap.Epoch(),
	})
	return e
}

func newEngine(opts []Option) *Engine {
	e := &Engine{
		cache:    make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*flight),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// FromSnapshot builds an engine directly on a frozen snapshot,
// constructing the scenario planner over it.
func FromSnapshot(snap *core.Snapshot, opts ...Option) (*Engine, error) {
	return FromSnapshots(snap, nil, opts...)
}

// FromPodSnapshot builds a pod-only engine: every scenario planner path
// that needs whole-room tables serves through the hierarchical planner
// instead. This is the construction for rooms past the whole-room table
// cap.
func FromPodSnapshot(pods *core.PodSnapshot, opts ...Option) (*Engine, error) {
	return FromSnapshots(nil, pods, opts...)
}

// FromSnapshots builds an engine over an exact snapshot, pod tables, or
// both published as one epoch. At least one must be non-nil and their
// epochs must agree.
func FromSnapshots(snap *core.Snapshot, pods *core.PodSnapshot, opts ...Option) (*Engine, error) {
	st, err := newState(snap, pods)
	if err != nil {
		return nil, err
	}
	e := newEngine(opts)
	e.state.Store(st)
	return e, nil
}

func newState(snap *core.Snapshot, pods *core.PodSnapshot) (*state, error) {
	if snap == nil && pods == nil {
		return nil, errors.New("engine: need an exact snapshot, pod tables, or both")
	}
	if snap != nil && pods != nil && snap.Epoch() != pods.Epoch() {
		return nil, fmt.Errorf("engine: snapshot epoch %d and pod epoch %d must be installed as one generation",
			snap.Epoch(), pods.Epoch())
	}
	var (
		pl  *baseline.Planner
		err error
	)
	if snap != nil {
		pl, err = baseline.NewPlannerOn(snap)
	} else {
		pl, err = baseline.NewPlannerOnProfile(pods.Profile())
	}
	if err != nil {
		return nil, err
	}
	st := &state{snap: snap, pods: pods, planner: pl, profile: pl.Profile()}
	if snap != nil {
		st.epoch = snap.Epoch()
	} else {
		st.epoch = pods.Epoch()
	}
	return st, nil
}

// Install publishes a new exact snapshot (dropping any pod tables): the
// scenario planner is rebuilt on it, the state swaps in atomically, and
// the plan cache is dropped. Queries already running finish against the
// state they loaded; new queries see the new one.
func (e *Engine) Install(snap *core.Snapshot) error {
	return e.InstallHierarchical(snap, nil)
}

// InstallHierarchical publishes an exact snapshot and prebuilt pod tables
// (either may be nil, not both) as one atomic generation; the plan cache
// is dropped. While the install's own state build runs, cache misses are
// shed with ErrOverloaded; wrap a slow out-of-engine snapshot build in
// BeginInstall to extend that window over the expensive part.
func (e *Engine) InstallHierarchical(snap *core.Snapshot, pods *core.PodSnapshot) error {
	done := e.BeginInstall()
	defer done()
	st, err := newState(snap, pods)
	if err != nil {
		return err
	}
	e.publish(st)
	return nil
}

// publish swaps in a fully built state and drops the plan cache. All
// publications funnel through here (and publishIfEpoch) under e.mu, so
// concurrent installers serialize; readers stay lock-free on the atomic
// pointer. The swap is O(1) — the commit half of the install pipeline —
// so it deliberately does NOT take the BeginInstall gate: shedding exists
// to protect long in-line builds, and a prebuilt commit has no build
// window, which is what keeps readiness from flapping on patch-sized
// installs.
func (e *Engine) publish(st *state) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.publishLocked(st)
}

// publishLocked is publish with e.mu already held.
func (e *Engine) publishLocked(st *state) {
	e.state.Store(st)
	e.cache = make(map[string]*list.Element)
	e.lru.Init()
	e.installs++
}

// publishIfEpoch publishes st only if the live generation still equals
// base — the compare-and-swap the pipelined path (install.go) commits
// through, so a prepared install that lost an epoch race is refused
// instead of silently clobbering a newer generation.
func (e *Engine) publishIfEpoch(st *state, base uint64, patched bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur := e.state.Load().epoch; cur != base {
		e.staleInstalls++
		return fmt.Errorf("%w: prepared against epoch %d but epoch %d is live", ErrStaleInstall, base, cur)
	}
	e.publishLocked(st)
	e.pipelinedInstalls++
	if patched {
		e.patchInstalls++
	} else {
		e.rebuildInstalls++
	}
	return nil
}

// Snapshot returns the currently installed exact snapshot, or nil for a
// pod-only engine.
func (e *Engine) Snapshot() *core.Snapshot { return e.state.Load().snap }

// Pods returns the currently installed pod tables, or nil.
func (e *Engine) Pods() *core.PodSnapshot { return e.state.Load().pods }

// Epoch returns the installed generation.
func (e *Engine) Epoch() uint64 { return e.state.Load().epoch }

// Planner returns the scenario planner over the installed state.
func (e *Engine) Planner() *baseline.Planner { return e.state.Load().planner }

// Stats returns a point-in-time view of the cache counters and the
// installed topology.
func (e *Engine) Stats() Stats {
	st := e.state.Load()
	s := Stats{
		CacheCapacity: cacheCap,
		QuantizedKeys: !e.exactKeys,
		Epoch:         st.epoch,
		Machines:      st.profile.Size(),
		Hierarchical:  st.autoHier(),
		MaxInFlight:   e.maxInFlight,
		Installing:    e.installing.Load() > 0,
	}
	if st.pods != nil {
		s.Pods = st.pods.Pods()
	}
	e.mu.Lock()
	s.CacheHits, s.CacheMisses = e.hits, e.misses
	s.CacheEvictions, s.CacheShared = e.evictions, e.shared
	s.CacheEntries = len(e.cache)
	s.InFlight = len(e.inflight)
	s.ShedOverload = e.shedOverload
	s.Installs, s.PipelinedInstalls = e.installs, e.pipelinedInstalls
	s.PatchInstalls, s.RebuildInstalls = e.patchInstalls, e.rebuildInstalls
	s.StaleInstalls = e.staleInstalls
	s.Breaker = breakerName(e.breakerState)
	s.Ready = !s.Installing && e.breakerState == brClosed
	e.mu.Unlock()
	return s
}

// Plan answers one planning query. It is safe for any number of
// concurrent callers; identical queries are coalesced and answers are
// cached until the snapshot changes.
func (e *Engine) Plan(ctx context.Context, req Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if req.Load < 0 {
		return nil, fmt.Errorf("engine: negative load %v", req.Load)
	}
	st := e.state.Load()
	req = req.normalize()
	if len(req.Avoid) > 0 {
		n := st.profile.Size()
		if bad := req.Avoid[len(req.Avoid)-1]; bad >= n {
			return nil, fmt.Errorf("%w: machine %d outside [0, %d)", ErrBadAvoid, bad, n)
		}
		if bad := req.Avoid[0]; bad < 0 {
			return nil, fmt.Errorf("%w: machine %d outside [0, %d)", ErrBadAvoid, bad, n)
		}
	}
	if req.Mode == ModeHier && st.pods == nil {
		return nil, fmt.Errorf("%w: hierarchical mode requested but no pod tables installed", ErrNoPath)
	}
	if req.Mode == ModeExact && st.snap == nil {
		return nil, fmt.Errorf("%w: exact mode requested but the engine is pod-only", ErrNoPath)
	}
	key := req.key(st.epoch, st.profile.Size(), e.exactKeys)

	e.mu.Lock()
	if el, ok := e.cache[key]; ok {
		e.lru.MoveToFront(el)
		e.hits++
		e.mu.Unlock()
		r := *el.Value.(*cacheEntry).resp
		r.Cached = true
		return &r, nil
	}
	if f, ok := e.inflight[key]; ok {
		e.shared++
		e.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			r := *f.resp
			r.Shared = true
			return &r, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := e.admitLocked(); err != nil {
		e.mu.Unlock()
		return nil, err
	}
	f := &flight{done: make(chan struct{})}
	e.inflight[key] = f
	e.misses++
	e.mu.Unlock()

	resp, err := e.compute(ctx, st, req)
	f.resp, f.err = resp, err
	close(f.done)

	e.mu.Lock()
	delete(e.inflight, key)
	e.noteComputeLocked(err)
	if err == nil {
		e.store(key, resp)
	}
	e.mu.Unlock()

	if err != nil {
		return nil, err
	}
	r := *resp
	return &r, nil
}

// store inserts into the bounded LRU cache; the caller holds e.mu.
func (e *Engine) store(key string, resp *Response) {
	if el, ok := e.cache[key]; ok {
		e.lru.MoveToFront(el)
		return
	}
	for len(e.cache) >= cacheCap {
		oldest := e.lru.Back()
		if oldest == nil {
			break
		}
		e.lru.Remove(oldest)
		delete(e.cache, oldest.Value.(*cacheEntry).key)
		e.evictions++
	}
	e.cache[key] = e.lru.PushFront(&cacheEntry{key: key, resp: resp})
}

// compute solves one normalized request against one state. The context
// carries the request deadline: the flat degraded sweep checks it
// between closed-form solves, and the fault-injection hook (if any) may
// block on it.
func (e *Engine) compute(ctx context.Context, st *state, req Request) (*Response, error) {
	if e.computeHook != nil {
		e.computeHook(ctx)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp := &Response{Method: req.Method, Epoch: st.epoch}
	switch {
	case req.Safe:
		if err := e.safePlan(st, req, resp); err != nil {
			return nil, err
		}
	case len(req.Avoid) > 0:
		if err := e.degradedPlan(ctx, st, req, resp); err != nil {
			return nil, err
		}
	case req.Method == baseline.OptimalACCons && req.Load > 0 && st.useHier(req.Mode):
		plan, err := st.pods.Plan(req.Load)
		if err != nil {
			return nil, err
		}
		resp.Plan = plan
		resp.Hierarchical = true
	default:
		plan, err := st.planner.Plan(req.Method, req.Load)
		if err != nil {
			return nil, err
		}
		resp.Plan = plan
	}
	return resp, nil
}

// useHier resolves the consolidation path for method #8 under this state.
func (st *state) useHier(mode PlanMode) bool {
	switch mode {
	case ModeHier:
		return true
	case ModeExact:
		return false
	default:
		return st.autoHier()
	}
}

// survivors returns 0..n−1 minus the (sorted) avoid list.
func survivors(n int, avoid []int) []int {
	pool := make([]int, 0, n)
	next := 0
	for i := 0; i < n; i++ {
		for next < len(avoid) && avoid[next] < i {
			next++
		}
		if next < len(avoid) && avoid[next] == i {
			continue
		}
		pool = append(pool, i)
	}
	return pool
}

// degradedPlan plans around the avoid set. With hierarchy active
// (pinned, auto above the threshold, or pod-only) the pod-local
// PlanAvoiding answers: untouched pods reuse their tables, affected pods
// re-solve survivor-restricted, and the flat O(n²) pool sweep never
// runs. Otherwise the paper's closed form re-runs over the survivors
// (context-cancellable). Either way, when even the full surviving set
// cannot carry the demand the excess is shed to the pool's Eq. 20
// capacity at the coldest supply (with the thermal cushion).
func (e *Engine) degradedPlan(ctx context.Context, st *state, req Request, resp *Response) error {
	resp.Degraded = true
	p := st.profile
	pool := survivors(p.Size(), req.Avoid)
	if len(pool) == 0 {
		return errors.New("engine: no surviving machines")
	}
	if st.useHier(req.Mode) {
		resp.Hierarchical = true
		plan, err := st.pods.PlanAvoiding(req.Load, req.Avoid)
		if err == nil {
			resp.Plan = plan
			return nil
		}
		if !errors.Is(err, core.ErrInfeasible) {
			return err
		}
		capacity := p.CapacityAt(pool, units.Celsius(p.TAcMinC+req.MarginC))
		if capacity <= 0 || capacity >= req.Load {
			return err // infeasibility was not demand-driven; shedding cannot help
		}
		plan, shedErr := st.pods.PlanAvoiding(capacity, req.Avoid)
		if shedErr != nil {
			return fmt.Errorf("engine: no feasible degraded plan even after shedding to %.2f units: %w", capacity, shedErr)
		}
		resp.Plan = plan
		resp.ShedLoad = req.Load - capacity
		resp.Capacity = capacity
		return nil
	}
	plan, err := p.PlanOverCtx(ctx, pool, req.Load)
	if err != nil {
		return err
	}
	if plan != nil {
		resp.Plan = plan
		return nil
	}
	capacity := p.CapacityAt(pool, units.Celsius(p.TAcMinC+req.MarginC))
	plan, err = p.PlanOverCtx(ctx, pool, capacity)
	if err != nil {
		return err
	}
	if plan == nil {
		return fmt.Errorf("engine: no feasible degraded plan even after shedding to %.2f units", capacity)
	}
	resp.Plan = plan
	resp.ShedLoad = req.Load - capacity
	resp.Capacity = capacity
	return nil
}

// safePlan plans for a CRAC that no longer answers commands: no
// consolidation (concentration is what needs cold air), loads sized to
// what the achieved supply temperature can carry. Unlike an even spread,
// the shed is slack-weighted: each machine gets load in proportion to its
// own Eq. 20 cap at the achieved supply, so thermally tight machines
// (high α_i/β_i, low K_i) are unloaded first and no machine is pushed
// past its cap.
func (e *Engine) safePlan(st *state, req Request, resp *Response) error {
	p := st.profile
	pool := survivors(p.Size(), req.Avoid)
	if len(pool) == 0 {
		return errors.New("engine: no surviving machines")
	}
	supply := units.Celsius(req.AchievedSupplyC + req.MarginC)
	caps := make([]float64, len(pool))
	var capacity float64
	for j, i := range pool {
		caps[j] = p.LoadCap(i, supply)
		capacity += caps[j]
	}
	carried := req.Load
	if carried > capacity {
		carried = capacity
		resp.ShedLoad = req.Load - capacity
		resp.Capacity = capacity
	}
	loads := make([]float64, p.Size())
	if capacity > 0 {
		scale := carried / capacity
		for j, i := range pool {
			loads[i] = caps[j] * scale
		}
	}
	resp.Plan = &core.Plan{On: pool, Loads: loads, TAcC: units.Celsius(p.TAcMinC)}
	return nil
}

// MaxLoad answers the paper's dual budget question maxL(A, P_b) off the
// installed state: the maximum serviceable load under a power budget and
// the machine set achieving it. Above the hierarchy threshold (or
// pod-only) the composed pod query answers with its bounded gap.
func (e *Engine) MaxLoad(budgetW float64) (core.MaxLoadResult, error) {
	st := e.state.Load()
	if st.autoHier() {
		return st.pods.MaxLoad(budgetW)
	}
	return st.snap.Tables().MaxLoad(budgetW)
}

// Consolidate answers the consolidation query directly: the best subset
// of at least minK machines for the given load (Eq. 23 scoring), served
// hierarchically above the threshold.
func (e *Engine) Consolidate(load float64, minK int) (core.Selection, error) {
	st := e.state.Load()
	if st.autoHier() {
		return st.pods.Consolidate(load, minK)
	}
	return st.snap.Tables().QueryExact(load, minK)
}
