package engine

import (
	"context"
	"math"
	"sync"
	"testing"

	"coolopt/internal/baseline"
	"coolopt/internal/core"
	"coolopt/internal/units"
)

// testProfile builds a small heterogeneous room in the paper's parameter
// regime (Table I-ish constants, jittered per-machine fits).
func testProfile(n int) *core.Profile {
	machines := make([]core.MachineProfile, n)
	for i := range machines {
		h := float64(i) / float64(n)
		machines[i] = core.MachineProfile{
			Alpha: 1.0,
			Beta:  0.46 * (1 + 0.1*h),
			Gamma: 0.5 + 2.2*h,
		}
	}
	return &core.Profile{
		W1: 52, W2: 34, CoolFactor: 150, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}
}

func testSnapshot(t *testing.T, n int, epoch uint64) *core.Snapshot {
	t.Helper()
	snap, err := core.NewSnapshot(testProfile(n), epoch, core.WithMaxMachines(n))
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return snap
}

func testEngine(t *testing.T, n int) *Engine {
	t.Helper()
	e, err := FromSnapshot(testSnapshot(t, n, 0))
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return e
}

func TestPlanMatchesPlanner(t *testing.T) {
	e := testEngine(t, 12)
	ctx := context.Background()
	for _, load := range []float64{1.5, 4, 8.25} {
		resp, err := e.Plan(ctx, Request{Load: load})
		if err != nil {
			t.Fatalf("load %v: %v", load, err)
		}
		want, err := e.Planner().Plan(baseline.OptimalACCons, load)
		if err != nil {
			t.Fatalf("direct solve load %v: %v", load, err)
		}
		if len(resp.Plan.On) != len(want.On) {
			t.Fatalf("load %v: engine turned on %d machines, planner %d", load, len(resp.Plan.On), len(want.On))
		}
		if math.Abs(float64(resp.Plan.TAcC-want.TAcC)) > 1e-12 {
			t.Fatalf("load %v: TAcC %v vs %v", load, resp.Plan.TAcC, want.TAcC)
		}
		if math.Abs(resp.Plan.TotalLoad()-want.TotalLoad()) > 1e-9 {
			t.Fatalf("load %v: total %v vs %v", load, resp.Plan.TotalLoad(), want.TotalLoad())
		}
	}
}

func TestCacheHitAndEpochStamp(t *testing.T) {
	e := testEngine(t, 10)
	ctx := context.Background()
	first, err := e.Plan(ctx, Request{Load: 5})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Shared {
		t.Fatalf("first query claims reuse: %+v", first)
	}
	if first.Epoch != 0 {
		t.Fatalf("epoch = %d, want 0", first.Epoch)
	}
	second, err := e.Plan(ctx, Request{Load: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical query not served from cache")
	}
	if math.Abs(second.Plan.TotalLoad()-first.Plan.TotalLoad()) > 1e-12 {
		t.Fatal("cached plan differs from original")
	}
	// The zero method and the explicit paper method are the same query.
	third, err := e.Plan(ctx, Request{Load: 5, Method: baseline.OptimalACCons})
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Fatal("defaulted method missed the cache")
	}
}

func TestInstallSwapsSnapshotAndDropsCache(t *testing.T) {
	e := testEngine(t, 10)
	ctx := context.Background()
	if _, err := e.Plan(ctx, Request{Load: 5}); err != nil {
		t.Fatal(err)
	}
	if err := e.Install(testSnapshot(t, 10, 7)); err != nil {
		t.Fatal(err)
	}
	if e.Epoch() != 7 {
		t.Fatalf("epoch = %d, want 7", e.Epoch())
	}
	resp, err := e.Plan(ctx, Request{Load: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("cache survived a snapshot install")
	}
	if resp.Epoch != 7 {
		t.Fatalf("plan stamped with epoch %d, want 7", resp.Epoch)
	}
}

func TestDegradedPlanAvoidsFailedMachines(t *testing.T) {
	e := testEngine(t, 10)
	resp, err := e.Plan(context.Background(), Request{Load: 3, Avoid: []int{2, 5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("avoid-list query not marked degraded")
	}
	for _, id := range resp.Plan.On {
		if id == 2 || id == 5 {
			t.Fatalf("failed machine %d powered on", id)
		}
	}
	if resp.ShedLoad > 0 {
		t.Fatalf("light load shed %v", resp.ShedLoad)
	}
	if math.Abs(resp.Plan.TotalLoad()-3) > 1e-9 {
		t.Fatalf("degraded plan carries %v, want 3", resp.Plan.TotalLoad())
	}
}

func TestDegradedPlanShedsWhenOverCapacity(t *testing.T) {
	e := testEngine(t, 6)
	avoid := []int{0, 1, 2, 3}
	resp, err := e.Plan(context.Background(), Request{Load: 5, Avoid: avoid, MarginC: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ShedLoad <= 0 || resp.Capacity <= 0 {
		t.Fatalf("5 units on 2 survivors should shed: %+v", resp)
	}
	if math.Abs(resp.ShedLoad-(5-resp.Capacity)) > 1e-9 {
		t.Fatalf("shed %v inconsistent with capacity %v", resp.ShedLoad, resp.Capacity)
	}
}

func TestSafePlanRespectsPerMachineCaps(t *testing.T) {
	e := testEngine(t, 8)
	const supply, margin = 22.0, 2.0
	resp, err := e.Plan(context.Background(), Request{
		Load: 20, Safe: true, AchievedSupplyC: supply, MarginC: margin,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := e.Snapshot().Profile()
	if len(resp.Plan.On) != p.Size() {
		t.Fatalf("safe mode consolidated: %d of %d machines on", len(resp.Plan.On), p.Size())
	}
	var capacity float64
	for i, l := range resp.Plan.Loads {
		cap := p.LoadCap(i, units.Celsius(supply+margin))
		capacity += cap
		if l > cap+1e-9 {
			t.Fatalf("machine %d loaded to %v past its Eq. 20 cap %v", i, l, cap)
		}
	}
	if resp.ShedLoad <= 0 {
		t.Fatalf("20 units on 8 machines should shed: %+v", resp)
	}
	if math.Abs(resp.Plan.TotalLoad()-capacity) > 1e-9 {
		t.Fatalf("safe plan carries %v, capacity is %v", resp.Plan.TotalLoad(), capacity)
	}
}

func TestRejectsBadRequests(t *testing.T) {
	e := testEngine(t, 6)
	if _, err := e.Plan(context.Background(), Request{Load: -1}); err == nil {
		t.Fatal("negative load accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Plan(ctx, Request{Load: 1}); err == nil {
		t.Fatal("canceled context accepted")
	}
	if _, err := e.Plan(context.Background(), Request{Load: 1, Avoid: []int{0, 1, 2, 3, 4, 5}}); err == nil {
		t.Fatal("empty survivor pool accepted")
	}
}

func TestMaxLoadAndConsolidate(t *testing.T) {
	e := testEngine(t, 8)
	sel, err := e.Consolidate(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Subset) < 4 {
		t.Fatalf("consolidation picked %d machines for 4 units", len(sel.Subset))
	}
	ml, err := e.MaxLoad(8*(52+34) + 150*21)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Load <= 0 {
		t.Fatalf("generous budget yields max load %v", ml.Load)
	}
}

// TestConcurrentPlanDuringInstall is the race check the serving layer is
// built around: many goroutines hammer Plan while the main goroutine
// keeps installing fresh snapshots with increasing epochs. Run with
// -race this verifies readers never observe a torn (snapshot, planner)
// pair; the epoch stamp proves each answer came from some installed
// snapshot.
func TestConcurrentPlanDuringInstall(t *testing.T) {
	const (
		workers  = 8
		queries  = 60
		installs = 20
	)
	e := testEngine(t, 12)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	maxEpoch := make(chan uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var top uint64
			for q := 0; q < queries; q++ {
				load := 1 + float64((w*queries+q)%40)/4
				req := Request{Load: load}
				switch q % 3 {
				case 1:
					req.Avoid = []int{w % 12}
				case 2:
					req.Safe = true
					req.AchievedSupplyC = 20
					req.MarginC = 2
				}
				resp, err := e.Plan(ctx, req)
				if err != nil {
					errs <- err
					return
				}
				if resp.Epoch > top {
					top = resp.Epoch
				}
				if resp.Plan == nil || len(resp.Plan.On) == 0 {
					errs <- context.DeadlineExceeded // impossible marker
					return
				}
			}
			maxEpoch <- top
		}(w)
	}
	for i := 1; i <= installs; i++ {
		if err := e.Install(testSnapshot(t, 12, uint64(i))); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
	wg.Wait()
	close(errs)
	close(maxEpoch)
	if err := <-errs; err != nil {
		t.Fatalf("concurrent plan: %v", err)
	}
	if e.Epoch() != installs {
		t.Fatalf("final epoch %d, want %d", e.Epoch(), installs)
	}
	for top := range maxEpoch {
		if top > installs {
			t.Fatalf("worker saw epoch %d beyond any installed snapshot", top)
		}
	}
}
