package engine

import (
	"context"
	"math"
	"sync"
	"testing"

	"coolopt/internal/baseline"
	"coolopt/internal/core"
	"coolopt/internal/units"
)

// testProfile builds a small heterogeneous room in the paper's parameter
// regime (Table I-ish constants, jittered per-machine fits).
func testProfile(n int) *core.Profile {
	machines := make([]core.MachineProfile, n)
	for i := range machines {
		h := float64(i) / float64(n)
		machines[i] = core.MachineProfile{
			Alpha: 1.0,
			Beta:  0.46 * (1 + 0.1*h),
			Gamma: 0.5 + 2.2*h,
		}
	}
	return &core.Profile{
		W1: 52, W2: 34, CoolFactor: 150, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}
}

func testSnapshot(t *testing.T, n int, epoch uint64) *core.Snapshot {
	t.Helper()
	snap, err := core.NewSnapshot(testProfile(n), epoch, core.WithMaxMachines(n))
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return snap
}

func testEngine(t *testing.T, n int) *Engine {
	t.Helper()
	e, err := FromSnapshot(testSnapshot(t, n, 0))
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return e
}

func TestPlanMatchesPlanner(t *testing.T) {
	e := testEngine(t, 12)
	ctx := context.Background()
	for _, load := range []float64{1.5, 4, 8.25} {
		resp, err := e.Plan(ctx, Request{Load: load})
		if err != nil {
			t.Fatalf("load %v: %v", load, err)
		}
		want, err := e.Planner().Plan(baseline.OptimalACCons, load)
		if err != nil {
			t.Fatalf("direct solve load %v: %v", load, err)
		}
		if len(resp.Plan.On) != len(want.On) {
			t.Fatalf("load %v: engine turned on %d machines, planner %d", load, len(resp.Plan.On), len(want.On))
		}
		if math.Abs(float64(resp.Plan.TAcC-want.TAcC)) > 1e-12 {
			t.Fatalf("load %v: TAcC %v vs %v", load, resp.Plan.TAcC, want.TAcC)
		}
		if math.Abs(resp.Plan.TotalLoad()-want.TotalLoad()) > 1e-9 {
			t.Fatalf("load %v: total %v vs %v", load, resp.Plan.TotalLoad(), want.TotalLoad())
		}
	}
}

func TestCacheHitAndEpochStamp(t *testing.T) {
	e := testEngine(t, 10)
	ctx := context.Background()
	first, err := e.Plan(ctx, Request{Load: 5})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Shared {
		t.Fatalf("first query claims reuse: %+v", first)
	}
	if first.Epoch != 0 {
		t.Fatalf("epoch = %d, want 0", first.Epoch)
	}
	second, err := e.Plan(ctx, Request{Load: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical query not served from cache")
	}
	if math.Abs(second.Plan.TotalLoad()-first.Plan.TotalLoad()) > 1e-12 {
		t.Fatal("cached plan differs from original")
	}
	// The zero method and the explicit paper method are the same query.
	third, err := e.Plan(ctx, Request{Load: 5, Method: baseline.OptimalACCons})
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Fatal("defaulted method missed the cache")
	}
}

func TestInstallSwapsSnapshotAndDropsCache(t *testing.T) {
	e := testEngine(t, 10)
	ctx := context.Background()
	if _, err := e.Plan(ctx, Request{Load: 5}); err != nil {
		t.Fatal(err)
	}
	if err := e.Install(testSnapshot(t, 10, 7)); err != nil {
		t.Fatal(err)
	}
	if e.Epoch() != 7 {
		t.Fatalf("epoch = %d, want 7", e.Epoch())
	}
	resp, err := e.Plan(ctx, Request{Load: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("cache survived a snapshot install")
	}
	if resp.Epoch != 7 {
		t.Fatalf("plan stamped with epoch %d, want 7", resp.Epoch)
	}
}

func TestDegradedPlanAvoidsFailedMachines(t *testing.T) {
	e := testEngine(t, 10)
	resp, err := e.Plan(context.Background(), Request{Load: 3, Avoid: []int{2, 5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("avoid-list query not marked degraded")
	}
	for _, id := range resp.Plan.On {
		if id == 2 || id == 5 {
			t.Fatalf("failed machine %d powered on", id)
		}
	}
	if resp.ShedLoad > 0 {
		t.Fatalf("light load shed %v", resp.ShedLoad)
	}
	if math.Abs(resp.Plan.TotalLoad()-3) > 1e-9 {
		t.Fatalf("degraded plan carries %v, want 3", resp.Plan.TotalLoad())
	}
}

func TestDegradedPlanShedsWhenOverCapacity(t *testing.T) {
	e := testEngine(t, 6)
	avoid := []int{0, 1, 2, 3}
	resp, err := e.Plan(context.Background(), Request{Load: 5, Avoid: avoid, MarginC: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ShedLoad <= 0 || resp.Capacity <= 0 {
		t.Fatalf("5 units on 2 survivors should shed: %+v", resp)
	}
	if math.Abs(resp.ShedLoad-(5-resp.Capacity)) > 1e-9 {
		t.Fatalf("shed %v inconsistent with capacity %v", resp.ShedLoad, resp.Capacity)
	}
}

func TestSafePlanRespectsPerMachineCaps(t *testing.T) {
	e := testEngine(t, 8)
	const supply, margin = 22.0, 2.0
	resp, err := e.Plan(context.Background(), Request{
		Load: 20, Safe: true, AchievedSupplyC: supply, MarginC: margin,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := e.Snapshot().Profile()
	if len(resp.Plan.On) != p.Size() {
		t.Fatalf("safe mode consolidated: %d of %d machines on", len(resp.Plan.On), p.Size())
	}
	var capacity float64
	for i, l := range resp.Plan.Loads {
		cap := p.LoadCap(i, units.Celsius(supply+margin))
		capacity += cap
		if l > cap+1e-9 {
			t.Fatalf("machine %d loaded to %v past its Eq. 20 cap %v", i, l, cap)
		}
	}
	if resp.ShedLoad <= 0 {
		t.Fatalf("20 units on 8 machines should shed: %+v", resp)
	}
	if math.Abs(resp.Plan.TotalLoad()-capacity) > 1e-9 {
		t.Fatalf("safe plan carries %v, capacity is %v", resp.Plan.TotalLoad(), capacity)
	}
}

func TestRejectsBadRequests(t *testing.T) {
	e := testEngine(t, 6)
	if _, err := e.Plan(context.Background(), Request{Load: -1}); err == nil {
		t.Fatal("negative load accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Plan(ctx, Request{Load: 1}); err == nil {
		t.Fatal("canceled context accepted")
	}
	if _, err := e.Plan(context.Background(), Request{Load: 1, Avoid: []int{0, 1, 2, 3, 4, 5}}); err == nil {
		t.Fatal("empty survivor pool accepted")
	}
}

func TestMaxLoadAndConsolidate(t *testing.T) {
	e := testEngine(t, 8)
	sel, err := e.Consolidate(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Subset) < 4 {
		t.Fatalf("consolidation picked %d machines for 4 units", len(sel.Subset))
	}
	ml, err := e.MaxLoad(8*(52+34) + 150*21)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Load <= 0 {
		t.Fatalf("generous budget yields max load %v", ml.Load)
	}
}

// TestConcurrentPlanDuringInstall is the race check the serving layer is
// built around: many goroutines hammer Plan while the main goroutine
// keeps installing fresh snapshots with increasing epochs. Run with
// -race this verifies readers never observe a torn (snapshot, planner)
// pair; the epoch stamp proves each answer came from some installed
// snapshot.
func TestConcurrentPlanDuringInstall(t *testing.T) {
	const (
		workers  = 8
		queries  = 60
		installs = 20
	)
	e := testEngine(t, 12)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	maxEpoch := make(chan uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var top uint64
			for q := 0; q < queries; q++ {
				load := 1 + float64((w*queries+q)%40)/4
				req := Request{Load: load}
				switch q % 3 {
				case 1:
					req.Avoid = []int{w % 12}
				case 2:
					req.Safe = true
					req.AchievedSupplyC = 20
					req.MarginC = 2
				}
				resp, err := e.Plan(ctx, req)
				if err != nil {
					errs <- err
					return
				}
				if resp.Epoch > top {
					top = resp.Epoch
				}
				if resp.Plan == nil || len(resp.Plan.On) == 0 {
					errs <- context.DeadlineExceeded // impossible marker
					return
				}
			}
			maxEpoch <- top
		}(w)
	}
	for i := 1; i <= installs; i++ {
		if err := e.Install(testSnapshot(t, 12, uint64(i))); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
	wg.Wait()
	close(errs)
	close(maxEpoch)
	if err := <-errs; err != nil {
		t.Fatalf("concurrent plan: %v", err)
	}
	if e.Epoch() != installs {
		t.Fatalf("final epoch %d, want %d", e.Epoch(), installs)
	}
	for top := range maxEpoch {
		if top > installs {
			t.Fatalf("worker saw epoch %d beyond any installed snapshot", top)
		}
	}
}

func testPods(t *testing.T, n int, epoch uint64) *core.PodSnapshot {
	t.Helper()
	pods, err := core.NewPodSnapshot(testProfile(n), epoch, core.WithPodSize(n/4))
	if err != nil {
		t.Fatalf("pod snapshot: %v", err)
	}
	return pods
}

func TestCacheLRUAndStats(t *testing.T) {
	e := testEngine(t, 10)
	ctx := context.Background()
	const distinct = 600 // past cacheCap, one per quantization bucket
	for i := 0; i < distinct; i++ {
		if _, err := e.Plan(ctx, Request{Load: 0.5 + float64(i)*0.01}); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.CacheMisses != distinct {
		t.Fatalf("misses = %d, want %d", s.CacheMisses, distinct)
	}
	if s.CacheEvictions != distinct-uint64(s.CacheCapacity) {
		t.Fatalf("evictions = %d with capacity %d", s.CacheEvictions, s.CacheCapacity)
	}
	if s.CacheEntries != s.CacheCapacity {
		t.Fatalf("entries = %d, want full cache %d", s.CacheEntries, s.CacheCapacity)
	}
	// The most recent insert must still be resident; the very first load
	// must have been evicted (LRU order).
	resp, err := e.Plan(ctx, Request{Load: 0.5 + float64(distinct-1)*0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("most recent entry evicted")
	}
	resp, err = e.Plan(ctx, Request{Load: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("oldest entry survived past capacity")
	}
	if got := e.Stats(); got.CacheHits != 1 {
		t.Fatalf("hits = %d, want 1", got.CacheHits)
	}
	if got := e.Stats(); !got.QuantizedKeys || got.Machines != 10 || got.Pods != 0 {
		t.Fatalf("stats topology wrong: %+v", got)
	}
}

// TestLRUTouchPreventsEviction distinguishes LRU from the old FIFO: an
// entry re-read right before the cache overflows must survive, the
// untouched next-oldest must go.
func TestLRUTouchPreventsEviction(t *testing.T) {
	e := testEngine(t, 10)
	ctx := context.Background()
	load := func(i int) float64 { return 0.5 + float64(i)*0.01 }
	for i := 0; i < 512; i++ {
		if _, err := e.Plan(ctx, Request{Load: load(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if resp, err := e.Plan(ctx, Request{Load: load(0)}); err != nil || !resp.Cached {
		t.Fatalf("warm-up read of oldest entry: cached=%v err=%v", resp != nil && resp.Cached, err)
	}
	if _, err := e.Plan(ctx, Request{Load: load(512)}); err != nil {
		t.Fatal(err)
	}
	if resp, err := e.Plan(ctx, Request{Load: load(0)}); err != nil || !resp.Cached {
		t.Fatal("touched entry evicted: cache is not LRU")
	}
	if resp, err := e.Plan(ctx, Request{Load: load(1)}); err != nil || resp.Cached {
		t.Fatal("untouched next-oldest entry survived over the touched one")
	}
}

func TestQuantizedKeysCoalesceNearbyLoads(t *testing.T) {
	e := testEngine(t, 10) // bucket = 0.1 % of 10 machines = 0.01 units
	ctx := context.Background()
	first, err := e.Plan(ctx, Request{Load: 5})
	if err != nil {
		t.Fatal(err)
	}
	near, err := e.Plan(ctx, Request{Load: 5.001})
	if err != nil {
		t.Fatal(err)
	}
	if !near.Cached {
		t.Fatal("load within one bucket missed the cache")
	}
	if math.Abs(near.Plan.TotalLoad()-first.Plan.TotalLoad()) > 1e-12 {
		t.Fatal("coalesced response differs from the bucket's first plan")
	}
	far, err := e.Plan(ctx, Request{Load: 5.02})
	if err != nil {
		t.Fatal(err)
	}
	if far.Cached {
		t.Fatal("load two buckets away hit the cache")
	}
}

func TestExactCacheKeysOption(t *testing.T) {
	e, err := FromSnapshot(testSnapshot(t, 10, 0), WithExactCacheKeys())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := e.Plan(ctx, Request{Load: 5}); err != nil {
		t.Fatal(err)
	}
	resp, err := e.Plan(ctx, Request{Load: 5.001})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("exact keys served a neighbouring load's plan")
	}
	if math.Abs(resp.Plan.TotalLoad()-5.001) > 1e-9 {
		t.Fatalf("exact-key plan carries %v, want 5.001", resp.Plan.TotalLoad())
	}
	if e.Stats().QuantizedKeys {
		t.Fatal("stats claim quantized keys on an exact-key engine")
	}
}

func TestHierarchicalModeSelection(t *testing.T) {
	const n = 64
	e, err := FromSnapshots(testSnapshot(t, n, 3), testPods(t, n, 3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Below HierThreshold auto mode stays exact.
	auto, err := e.Plan(ctx, Request{Load: 10})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Hierarchical {
		t.Fatalf("auto mode went hierarchical at n=%d < %d", n, HierThreshold)
	}
	hier, err := e.Plan(ctx, Request{Load: 10, Mode: ModeHier})
	if err != nil {
		t.Fatal(err)
	}
	if !hier.Hierarchical {
		t.Fatal("ModeHier did not use the pod planner")
	}
	if hier.Epoch != 3 || auto.Epoch != 3 {
		t.Fatalf("epochs %d/%d, want 3", hier.Epoch, auto.Epoch)
	}
	// The two paths answer the same question; power gap is bounded.
	p := e.Planner().Profile()
	exactW := float64(p.PlanPower(auto.Plan))
	hierW := float64(p.PlanPower(hier.Plan))
	if hierW < exactW-1e-6 || hierW > exactW*1.05 {
		t.Fatalf("hierarchical power %v vs exact %v outside bound", hierW, exactW)
	}
	exact, err := e.Plan(ctx, Request{Load: 10, Mode: ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Hierarchical {
		t.Fatal("ModeExact answered hierarchically")
	}
}

func TestPodOnlyEngine(t *testing.T) {
	e, err := FromPodSnapshot(testPods(t, 64, 5))
	if err != nil {
		t.Fatal(err)
	}
	if e.Snapshot() != nil {
		t.Fatal("pod-only engine claims an exact snapshot")
	}
	if e.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", e.Epoch())
	}
	ctx := context.Background()
	resp, err := e.Plan(ctx, Request{Load: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Hierarchical {
		t.Fatal("pod-only default plan not hierarchical")
	}
	if _, err := e.Plan(ctx, Request{Load: 10, Mode: ModeExact}); err == nil {
		t.Fatal("ModeExact accepted on a pod-only engine")
	}
	// Non-#8 scenarios run off the profile-only planner.
	if _, err := e.Plan(ctx, Request{Load: 10, Method: baseline.EvenACNoCons}); err != nil {
		t.Fatalf("baseline scenario on pod-only engine: %v", err)
	}
	// Degraded and safe paths work without whole-room tables.
	if _, err := e.Plan(ctx, Request{Load: 3, Avoid: []int{2}}); err != nil {
		t.Fatalf("degraded plan: %v", err)
	}
	if _, err := e.Plan(ctx, Request{Load: 3, Safe: true, AchievedSupplyC: 20, MarginC: 2}); err != nil {
		t.Fatalf("safe plan: %v", err)
	}
	if ml, err := e.MaxLoad(64*(52+34) + 150*21); err != nil || ml.Load <= 0 {
		t.Fatalf("pod-only maxload: %v %v", ml, err)
	}
	if sel, err := e.Consolidate(4, 1); err != nil || len(sel.Subset) < 4 {
		t.Fatalf("pod-only consolidate: %v %v", sel, err)
	}
	if s := e.Stats(); !s.Hierarchical || s.Pods != 4 {
		t.Fatalf("pod-only stats: %+v", s)
	}
}

func TestInstallHierarchicalEpochMismatch(t *testing.T) {
	e := testEngine(t, 10)
	if err := e.InstallHierarchical(testSnapshot(t, 10, 1), testPods(t, 10, 2)); err == nil {
		t.Fatal("mismatched epochs installed as one generation")
	}
	if err := e.InstallHierarchical(nil, nil); err == nil {
		t.Fatal("empty install accepted")
	}
	if err := e.InstallHierarchical(testSnapshot(t, 10, 4), testPods(t, 10, 4)); err != nil {
		t.Fatal(err)
	}
	if e.Epoch() != 4 || e.Pods() == nil {
		t.Fatalf("hierarchical install not published: epoch %d", e.Epoch())
	}
}

// TestConcurrentPlanDuringHierarchicalInstall is the hierarchy analogue
// of the serving-layer race check: workers mix exact, auto and pinned
// hierarchical queries while the main goroutine keeps installing
// (snapshot, pods) generations. Run with -race this verifies readers
// never observe a torn state and every answer is stamped with some
// installed epoch.
func TestConcurrentPlanDuringHierarchicalInstall(t *testing.T) {
	const (
		workers  = 8
		queries  = 40
		installs = 10
		n        = 16
	)
	e, err := FromSnapshots(testSnapshot(t, n, 0), testPods(t, n, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				req := Request{Load: 1 + float64((w*queries+q)%48)/4}
				switch q % 3 {
				case 1:
					req.Mode = ModeHier
				case 2:
					req.Avoid = []int{w % n}
				}
				resp, err := e.Plan(ctx, req)
				if err != nil {
					errs <- err
					return
				}
				if resp.Epoch > installs {
					errs <- context.DeadlineExceeded // impossible marker
					return
				}
			}
		}(w)
	}
	for i := 1; i <= installs; i++ {
		if err := e.InstallHierarchical(testSnapshot(t, n, uint64(i)), testPods(t, n, uint64(i))); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatalf("concurrent hierarchical plan: %v", err)
	}
	if e.Epoch() != installs {
		t.Fatalf("final epoch %d, want %d", e.Epoch(), installs)
	}
}
