package engine

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"coolopt/internal/core"
)

// driftOne builds a single-machine drift batch against the engine's live
// profile.
func driftOne(t *testing.T, e *Engine, id int, dGamma float64) []core.MachineDelta {
	t.Helper()
	st := e.state.Load()
	m := st.profile.Machines[id]
	m.Gamma += dGamma
	return []core.MachineDelta{{ID: id, Machine: m}}
}

func patchedEngine(t *testing.T, n int) *Engine {
	t.Helper()
	snap, err := core.NewSnapshot(testProfile(n), 0, core.WithPatchSupport())
	if err != nil {
		t.Fatal(err)
	}
	e, err := FromSnapshot(snap, WithExactCacheKeys())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPrepareCommitInstall(t *testing.T) {
	e := testEngine(t, 12)
	prep, err := e.PrepareInstall(testSnapshot(t, 12, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if prep.BaseEpoch() != 0 || prep.Epoch() != 1 || prep.Patched() {
		t.Fatalf("prepared base=%d epoch=%d patched=%t", prep.BaseEpoch(), prep.Epoch(), prep.Patched())
	}
	if e.Epoch() != 0 {
		t.Fatalf("prepare published early: epoch %d", e.Epoch())
	}
	if err := e.CommitInstall(prep); err != nil {
		t.Fatal(err)
	}
	if e.Epoch() != 1 {
		t.Fatalf("epoch = %d after commit, want 1", e.Epoch())
	}
	s := e.Stats()
	if s.Installs != 1 || s.PipelinedInstalls != 1 || s.RebuildInstalls != 1 || s.PatchInstalls != 0 {
		t.Fatalf("install stats %+v", s)
	}
}

func TestCommitInstallStale(t *testing.T) {
	e := testEngine(t, 12)
	a, err := e.PrepareInstall(testSnapshot(t, 12, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.PrepareInstall(testSnapshot(t, 12, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CommitInstall(a); err != nil {
		t.Fatal(err)
	}
	if err := e.CommitInstall(b); !errors.Is(err, ErrStaleInstall) {
		t.Fatalf("second commit err = %v, want ErrStaleInstall", err)
	}
	if e.Epoch() != 1 || e.Snapshot() != a.Snapshot() {
		t.Fatal("stale commit disturbed the live state")
	}
	if s := e.Stats(); s.StaleInstalls != 1 || s.Installs != 1 {
		t.Fatalf("install stats %+v", s)
	}
}

// TestInstallPipelineEpochRace is the regression for the stale-planner
// window: InstallHierarchical's epoch-mismatch handling forced callers to
// retry manually, while the pipelined path re-validates internally. A
// preparation that lost the race must be refused at commit, and
// InstallPatch must absorb the race by re-preparing.
func TestInstallPipelineEpochRace(t *testing.T) {
	e := patchedEngine(t, 12)
	prep, err := e.PreparePatch(driftOne(t, e, 3, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	// Another installer wins the race before our commit.
	if _, err := e.InstallPatch(driftOne(t, e, 5, -0.1)); err != nil {
		t.Fatal(err)
	}
	if err := e.CommitInstall(prep); !errors.Is(err, ErrStaleInstall) {
		t.Fatalf("commit after lost race err = %v, want ErrStaleInstall", err)
	}
	// The internal loop re-prepares against the new generation and lands.
	epoch, err := e.InstallPatch(driftOne(t, e, 3, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || e.Epoch() != 2 {
		t.Fatalf("epoch = %d (installed %d), want 2", e.Epoch(), epoch)
	}
}

// TestPreparePatchMatchesRebuildServing proves the pipeline serves the
// same answers a from-scratch install over the drifted profile would.
func TestPreparePatchMatchesRebuildServing(t *testing.T) {
	const n = 24
	e := patchedEngine(t, n)
	batch := driftOne(t, e, 7, 0.35)
	prep, err := e.PreparePatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !prep.Patched() {
		t.Fatal("retained-crossings engine did not take the patch path")
	}
	if err := e.CommitInstall(prep); err != nil {
		t.Fatal(err)
	}

	p2 := *e.state.Load().profile
	ref, err := core.NewSnapshot(&p2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FromSnapshot(ref, WithExactCacheKeys())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, load := range []float64{2.5, 8, 14} {
		got, err := e.Plan(ctx, Request{Load: load})
		if err != nil {
			t.Fatalf("load %v: %v", load, err)
		}
		exp, err := want.Plan(ctx, Request{Load: load})
		if err != nil {
			t.Fatalf("load %v rebuild: %v", load, err)
		}
		if got.Epoch != 1 {
			t.Fatalf("load %v: epoch %d, want 1", load, got.Epoch)
		}
		for i := range got.Plan.Loads {
			if math.Float64bits(got.Plan.Loads[i]) != math.Float64bits(exp.Plan.Loads[i]) {
				t.Fatalf("load %v machine %d: %v vs %v", load, i, got.Plan.Loads[i], exp.Plan.Loads[i])
			}
		}
	}
	if s := e.Stats(); s.PatchInstalls != 1 || s.RebuildInstalls != 0 {
		t.Fatalf("install stats %+v", s)
	}
}

// TestPreparePatchHierarchical covers both-table and pod-only engines:
// the patch pipeline must keep the snapshot/pod epochs in lockstep.
func TestPreparePatchHierarchical(t *testing.T) {
	const n = 16
	both, err := FromSnapshots(testSnapshot(t, n, 0), testPods(t, n, 0))
	if err != nil {
		t.Fatal(err)
	}
	podOnly, err := FromPodSnapshot(testPods(t, n, 0))
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range map[string]*Engine{"both": both, "podOnly": podOnly} {
		epoch, err := e.InstallPatch(driftOne(t, e, 2, 0.15))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if epoch != 1 || e.Epoch() != 1 {
			t.Fatalf("%s: epoch %d, want 1", name, e.Epoch())
		}
		if e.Pods() == nil || e.Pods().Epoch() != 1 {
			t.Fatalf("%s: pod tables not advanced", name)
		}
		if name == "both" && (e.Snapshot() == nil || e.Snapshot().Epoch() != 1) {
			t.Fatal("both: exact tables not advanced")
		}
		if _, err := e.Plan(context.Background(), Request{Load: 6}); err != nil {
			t.Fatalf("%s: serving after patch: %v", name, err)
		}
	}
}

func TestPreparePatchRejectsBadBatch(t *testing.T) {
	e := patchedEngine(t, 8)
	bad := driftOne(t, e, 0, 0)
	bad[0].Machine.Beta = -1
	if _, err := e.PreparePatch(bad); !errors.Is(err, core.ErrBadDelta) {
		t.Fatalf("err = %v, want core.ErrBadDelta", err)
	}
	if _, err := e.InstallPatch(bad); !errors.Is(err, core.ErrBadDelta) {
		t.Fatalf("InstallPatch err = %v, want core.ErrBadDelta", err)
	}
	if e.Epoch() != 0 {
		t.Fatal("rejected batch moved the epoch")
	}
}

// TestCommitKeepsReady pins the no-flap contract: the pipelined commit
// never takes the admission gate, so readiness holds through the whole
// prepare/commit cycle — unlike the in-line install path, whose gate is
// exactly what sheds fresh computes during long builds.
func TestCommitKeepsReady(t *testing.T) {
	e := patchedEngine(t, 12)
	if ok, why := e.Ready(); !ok {
		t.Fatalf("engine not ready at boot: %s", why)
	}
	prep, err := e.PreparePatch(driftOne(t, e, 1, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := e.Ready(); !ok {
		t.Fatalf("prepare flapped readiness: %s", why)
	}
	if err := e.CommitInstall(prep); err != nil {
		t.Fatal(err)
	}
	if ok, why := e.Ready(); !ok {
		t.Fatalf("commit flapped readiness: %s", why)
	}
	if s := e.Stats(); s.Installing {
		t.Fatal("pipelined commit reported as installing")
	}
}

// TestCommitDropsCache: a committed generation must invalidate the plan
// cache so no served plan mixes epochs.
func TestCommitDropsCache(t *testing.T) {
	e := patchedEngine(t, 12)
	ctx := context.Background()
	if _, err := e.Plan(ctx, Request{Load: 5}); err != nil {
		t.Fatal(err)
	}
	again, err := e.Plan(ctx, Request{Load: 5})
	if err != nil || !again.Cached {
		t.Fatalf("expected warm cache: %v %v", again, err)
	}
	if _, err := e.InstallPatch(driftOne(t, e, 4, 0.25)); err != nil {
		t.Fatal(err)
	}
	fresh, err := e.Plan(ctx, Request{Load: 5})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached || fresh.Epoch != 1 {
		t.Fatalf("post-commit plan served stale: cached=%t epoch=%d", fresh.Cached, fresh.Epoch)
	}
}

// TestConcurrentInstallPatch races two installers; the internal
// re-validation loop must land both without surfacing ErrStaleInstall,
// and the final epoch must account for every committed generation.
func TestConcurrentInstallPatch(t *testing.T) {
	const rounds = 8
	e := patchedEngine(t, 12)
	var wg sync.WaitGroup
	errs := make(chan error, 2*rounds)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := e.InstallPatch(driftOne(t, e, id, 0.01)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := e.Stats()
	if e.Epoch() != 2*rounds || s.PipelinedInstalls != 2*rounds {
		t.Fatalf("epoch %d, stats %+v, want %d commits", e.Epoch(), s, 2*rounds)
	}
}
