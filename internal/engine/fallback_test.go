package engine

import (
	"context"
	"math"
	"testing"

	"coolopt/internal/core"
)

// TestPatchFallbackRebuild pins the flat patch-cost advisor end to end:
// with the splice budget forced to zero every prepare predicts the
// splice loses, so PreparePatch must take the PatchRebuild path, count
// it in Stats.PatchFallbackRebuilds, report the install as a rebuild —
// and still serve answers bit-identical to the splice it replaced.
func TestPatchFallbackRebuild(t *testing.T) {
	const n = 24
	defer func(old int) { patchSpliceBudget = old }(patchSpliceBudget)

	patchSpliceBudget = 0 // every retained list is "too big"
	viaRebuild := patchedEngine(t, n)
	batch := driftOne(t, viaRebuild, 7, 0.3)

	prep, err := viaRebuild.PreparePatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Patched() {
		t.Fatal("advisor-forced rebuild still reported as patched")
	}
	if !prep.Snapshot().PatchSupported() {
		t.Fatal("fallback rebuild dropped patch support")
	}
	if err := viaRebuild.CommitInstall(prep); err != nil {
		t.Fatal(err)
	}
	s := viaRebuild.Stats()
	if s.PatchFallbackRebuilds != 1 {
		t.Fatalf("PatchFallbackRebuilds = %d, want 1", s.PatchFallbackRebuilds)
	}
	if s.PatchInstalls != 0 || s.RebuildInstalls != 1 {
		t.Fatalf("install stats %+v: fallback must account as a rebuild", s)
	}

	// Same batch through the splice path on a twin engine.
	patchSpliceBudget = 1 << 30
	viaSplice := patchedEngine(t, n)
	if _, err := viaSplice.InstallPatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := viaSplice.Stats(); got.PatchFallbackRebuilds != 0 {
		t.Fatalf("splice path bumped the fallback counter: %d", got.PatchFallbackRebuilds)
	}

	ctx := context.Background()
	for _, load := range []float64{2.5, 8, 14} {
		a, err := viaRebuild.Plan(ctx, Request{Load: load})
		if err != nil {
			t.Fatalf("load %v rebuild: %v", load, err)
		}
		b, err := viaSplice.Plan(ctx, Request{Load: load})
		if err != nil {
			t.Fatalf("load %v splice: %v", load, err)
		}
		for i := range a.Plan.Loads {
			if math.Float64bits(a.Plan.Loads[i]) != math.Float64bits(b.Plan.Loads[i]) {
				t.Fatalf("load %v machine %d: rebuild %v vs splice %v",
					load, i, a.Plan.Loads[i], b.Plan.Loads[i])
			}
		}
	}
}

// TestStatsPodDepth: a pod-only engine over a depth-3 planner tree must
// surface that depth in /v1/stats so operators can tell which tree shape
// is live.
func TestStatsPodDepth(t *testing.T) {
	const n = 64
	pods, err := core.NewPodSnapshot(testProfile(n), 0,
		core.WithPodCount(16), core.WithPodDepth(3))
	if err != nil {
		t.Fatal(err)
	}
	e, err := FromPodSnapshot(pods)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats(); got.PodDepth != pods.Depth() || got.PodDepth != 3 {
		t.Fatalf("Stats().PodDepth = %d, want %d", got.PodDepth, pods.Depth())
	}
}
