package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// This file is the engine's overload protection: typed serving errors, a
// bounded in-flight computation limit, an install gate, and a breaker
// that stops feeding compute work to a path that keeps blowing its
// deadline. All of it counts requests, never the clock — the engine is a
// deterministic package, and request-counted state machines replay
// identically under test.
//
// Shedding order under pressure (DESIGN.md §8): cache hits and coalesced
// waits are always served — they cost nothing to answer — and only cache
// misses that would start a fresh computation are shed with
// ErrOverloaded. The serving layer translates that to HTTP 503 +
// Retry-After; clients with stale-tolerant needs keep getting cached
// plans for the hot loads throughout.

// Typed serving errors. Wrap-compare with errors.Is.
var (
	// ErrOverloaded reports the engine refused to start a new
	// computation: too many in flight, a snapshot install in progress, or
	// the breaker open after repeated deadline failures. The request was
	// not attempted; retrying after a backoff is safe.
	ErrOverloaded = errors.New("engine: overloaded")
	// ErrNoPath reports the request pinned a planning path the installed
	// state cannot serve (hierarchical without pod tables, exact on a
	// pod-only engine). Retrying is pointless until a different snapshot
	// is installed.
	ErrNoPath = errors.New("engine: no planning path")
	// ErrBadAvoid reports an avoid list naming a machine outside the
	// room — the client's inventory is stale.
	ErrBadAvoid = errors.New("engine: avoid list names a machine outside the room")
)

// Breaker states. The machine is request-counted: it trips after
// breakerTripAfter consecutive compute deadline failures, sheds the next
// breakerOpenFor cache misses, then lets exactly one probe through; the
// probe's outcome closes or re-opens it.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

const (
	// breakerTripAfter is how many consecutive deadline-exceeded computes
	// open the breaker.
	breakerTripAfter = 3
	// breakerOpenFor is how many cache misses are shed while open before
	// a half-open probe is allowed.
	breakerOpenFor = 16
)

func breakerName(state int) string {
	switch state {
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// WithMaxInFlight bounds concurrent plan computations: a cache miss
// arriving while k computations are already running is shed with
// ErrOverloaded instead of queued. Coalesced waiters on an existing
// flight do not count — they add no compute. Values ≤ 0 mean unbounded
// (the default).
func WithMaxInFlight(k int) Option {
	return func(e *Engine) { e.maxInFlight = k }
}

// WithComputeHook installs a function invoked at the start of every plan
// computation with the request context. Fault injection and tests use it
// to hold computations (until the context's deadline, for breaker
// rehearsals) or to count them; nil is the default no-op.
func WithComputeHook(hook func(ctx context.Context)) Option {
	return func(e *Engine) { e.computeHook = hook }
}

// BeginInstall marks a slow snapshot build as in progress: until the
// returned func is called, cache misses are shed with ErrOverloaded
// (hits and coalesced waits still serve) and Ready reports false. Use it
// around an out-of-engine NewSnapshot/NewPodSnapshot build feeding a
// later InstallHierarchical; the install methods take the gate
// themselves for their own (shorter) state build. The returned func is
// idempotent.
func (e *Engine) BeginInstall() (done func()) {
	e.installing.Add(1)
	var once sync.Once
	return func() { once.Do(func() { e.installing.Add(-1) }) }
}

// Ready reports whether the engine is serving at full capability: a
// snapshot is installed, no install is in flight, and the breaker is
// closed. The reason is empty when ready; /v1/readyz surfaces it.
func (e *Engine) Ready() (bool, string) {
	if e.installing.Load() > 0 {
		return false, "snapshot install in flight"
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.breakerState != brClosed {
		return false, "breaker " + breakerName(e.breakerState)
	}
	return true, ""
}

// admitLocked decides whether a cache miss may start a computation; the
// caller holds e.mu. A nil return admits the request (and, in the
// half-open state, claims the probe slot).
func (e *Engine) admitLocked() error {
	if e.installing.Load() > 0 {
		e.shedOverload++
		return fmt.Errorf("%w: snapshot install in flight", ErrOverloaded)
	}
	if e.maxInFlight > 0 && len(e.inflight) >= e.maxInFlight {
		e.shedOverload++
		return fmt.Errorf("%w: %d computations in flight", ErrOverloaded, len(e.inflight))
	}
	switch e.breakerState {
	case brOpen:
		e.breakerShedLeft--
		if e.breakerShedLeft <= 0 {
			e.breakerState = brHalfOpen
			e.breakerProbing = false
		}
		e.shedOverload++
		return fmt.Errorf("%w: breaker open after repeated compute deadline failures", ErrOverloaded)
	case brHalfOpen:
		if e.breakerProbing {
			e.shedOverload++
			return fmt.Errorf("%w: breaker half-open with a probe in flight", ErrOverloaded)
		}
		e.breakerProbing = true
	}
	return nil
}

// noteComputeLocked feeds one compute outcome to the breaker; the caller
// holds e.mu. Deadline failures count toward tripping (and re-open from
// a half-open probe); any completed compute — success or a prompt model
// error — closes the breaker; a client cancellation is neutral, it only
// releases the probe slot.
func (e *Engine) noteComputeLocked(err error) {
	switch {
	case err != nil && errors.Is(err, context.DeadlineExceeded):
		e.breakerFails++
		if e.breakerState == brHalfOpen || e.breakerFails >= breakerTripAfter {
			e.breakerState = brOpen
			e.breakerShedLeft = breakerOpenFor
			e.breakerProbing = false
		}
	case err != nil && errors.Is(err, context.Canceled):
		e.breakerProbing = false
	default:
		e.breakerFails = 0
		e.breakerState = brClosed
		e.breakerProbing = false
	}
}
