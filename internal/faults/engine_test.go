package faults

import (
	"strings"
	"testing"

	"coolopt/internal/core"
	"coolopt/internal/engine"
)

func burstProfile(n int) *core.Profile {
	machines := make([]core.MachineProfile, n)
	for i := range machines {
		h := float64(i) / float64(n)
		machines[i] = core.MachineProfile{Alpha: 1, Beta: 0.46 * (1 + 0.1*h), Gamma: 0.5 + 2.2*h}
	}
	return &core.Profile{
		W1: 52, W2: 34, CoolFactor: 150, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}
}

func TestBurstShapes(t *testing.T) {
	const n = 64
	for _, f := range []int{1, 2, 8, 16, n} {
		for name, burst := range map[string][]int{
			"concentrated": ConcentratedBurst(n, f),
			"spread":       SpreadBurst(n, f),
		} {
			if len(burst) != f {
				t.Fatalf("%s(%d, %d): %d machines", name, n, f, len(burst))
			}
			seen := make(map[int]bool, f)
			for _, id := range burst {
				if id < 0 || id >= n {
					t.Fatalf("%s(%d, %d): machine %d outside the room", name, n, f, id)
				}
				if seen[id] {
					t.Fatalf("%s(%d, %d): duplicate machine %d", name, n, f, id)
				}
				seen[id] = true
			}
		}
	}
	// Concentrated lands contiguously; spread never does (for f ≥ 2
	// well below n).
	conc := ConcentratedBurst(64, 8)
	for i := 1; i < len(conc); i++ {
		if conc[i] != conc[i-1]+1 {
			t.Fatalf("concentrated burst not contiguous: %v", conc)
		}
	}
	spread := SpreadBurst(64, 8)
	for i := 1; i < len(spread); i++ {
		if spread[i] == spread[i-1]+1 {
			t.Fatalf("spread burst has adjacent machines: %v", spread)
		}
	}
	// Oversized bursts clamp to the room.
	if got := len(ConcentratedBurst(8, 100)); got != 8 {
		t.Fatalf("oversized concentrated burst: %d machines", got)
	}
}

func TestFailPodBuild(t *testing.T) {
	_, err := core.NewPodSnapshot(burstProfile(32), 0, core.WithPodCount(4), FailPodBuild(2))
	if err == nil || !strings.Contains(err.Error(), "injected build failure in pod 2") {
		t.Fatalf("err = %v, want the injected pod-2 failure", err)
	}
	// Other pods build fine when the failing pod is out of range.
	if _, err := core.NewPodSnapshot(burstProfile(32), 0, core.WithPodCount(4), FailPodBuild(99)); err != nil {
		t.Fatalf("non-matching injection broke the build: %v", err)
	}
}

func TestSlowInstallGatesEngine(t *testing.T) {
	pods, err := core.NewPodSnapshot(burstProfile(32), 0, core.WithPodCount(4))
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.FromPodSnapshot(pods)
	if err != nil {
		t.Fatal(err)
	}
	release := SlowInstall(e)
	if ready, _ := e.Ready(); ready {
		t.Fatal("engine ready while the slow install holds the gate")
	}
	release()
	release() // idempotent
	if ready, _ := e.Ready(); !ready {
		t.Fatal("engine not ready after release")
	}
}
