package faults

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"coolopt/internal/sim"
)

func newSim(t *testing.T) *sim.Simulator {
	t.Helper()
	s, err := sim.NewDefault(1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseJSON(t *testing.T) {
	spec := `{"events": [
		{"kind": "machine_crash", "atS": 600, "durationS": 900, "machine": 3},
		{"kind": "sensor_stuck", "atS": 300, "machine": 7},
		{"kind": "net_500", "fromRequest": 40, "requests": 10}
	]}`
	s, err := ParseJSON(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 3 || len(s.Physical()) != 2 || len(s.Network()) != 1 {
		t.Fatalf("split = %d physical / %d network", len(s.Physical()), len(s.Network()))
	}
	if !s.HasNetwork() {
		t.Fatal("HasNetwork = false")
	}

	bad := []string{
		`{}`,
		`{"events": [{"kind": "warp_core_breach", "atS": 1}]}`,
		`{"events": [{"kind": "machine_crash", "atS": -5}]}`,
		`{"events": [{"kind": "sensor_spike", "atS": 1, "machine": 0}]}`,
		`{"events": [{"kind": "crac_lag", "atS": 1}]}`,
		`{"events": [{"kind": "net_timeout", "fromRequest": 1, "requests": 2}]}`,
		`{"events": [{"kind": "net_500", "fromRequest": 0, "requests": 2}]}`,
		`{"events": [{"kind": "machine_crash", "atS": 1, "unknownField": true}]}`,
	}
	for _, spec := range bad {
		if _, err := ParseJSON(strings.NewReader(spec)); err == nil {
			t.Errorf("accepted %s", spec)
		}
	}
}

func TestValidateMachineBound(t *testing.T) {
	s := &Schedule{Events: []Event{{Kind: MachineCrash, AtS: 1, Machine: 25}}}
	if err := s.Validate(20); err == nil {
		t.Fatal("machine 25 accepted for a 20-machine room")
	}
	if err := s.Validate(0); err != nil {
		t.Fatalf("unbounded validation rejected: %v", err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random(7, 20, 4000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(7, 20, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c, err := Random(8, 20, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	var crash, stuck *Event
	for i := range a.Events {
		switch a.Events[i].Kind {
		case MachineCrash:
			crash = &a.Events[i]
		case SensorStuck:
			stuck = &a.Events[i]
		}
	}
	if crash == nil || stuck == nil {
		t.Fatal("random schedule missing crash or stuck event")
	}
	if crash.Machine == stuck.Machine {
		t.Fatal("crash and stuck sensor hit the same machine")
	}
}

func TestMachineCrashAndFailToPowerOn(t *testing.T) {
	room, err := NewRoom(newSim(t), &Schedule{Events: []Event{
		{Kind: MachineCrash, AtS: 10, DurationS: 50, Machine: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	room.Run(5)
	if !room.IsOn(4) {
		t.Fatal("machine 4 off before crash onset")
	}
	room.Run(10)
	if room.IsOn(4) {
		t.Fatal("machine 4 still on after crash onset")
	}
	if err := room.SetPower(4, true); err == nil {
		t.Fatal("crashed machine accepted power-on")
	}
	if err := room.SetPower(3, true); err != nil {
		t.Fatalf("healthy machine refused power-on: %v", err)
	}
	room.Run(60) // past the crash window
	if err := room.SetPower(4, true); err != nil {
		t.Fatalf("recovered machine refused power-on: %v", err)
	}
}

func TestSensorFaults(t *testing.T) {
	room, err := NewRoom(newSim(t), &Schedule{Events: []Event{
		{Kind: SensorStuck, AtS: 5, DurationS: 20, Machine: 1},
		{Kind: SensorSpike, AtS: 5, DurationS: 20, Machine: 2, SpikeC: 30},
		{Kind: SensorDropout, AtS: 5, DurationS: 20, Machine: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < room.Size(); i++ {
		if err := room.SetLoad(i, 0.8); err != nil {
			t.Fatal(err)
		}
	}
	room.Run(10)

	frozen := room.MeasuredCPUTemp(1)
	healthy0 := room.MeasuredCPUTemp(0)
	if spiked := room.MeasuredCPUTemp(2); spiked < healthy0+20 {
		t.Fatalf("spiked sensor reads %v, healthy neighbour %v", spiked, healthy0)
	}
	if got := room.MeasuredCPUTemp(3); got != 0 {
		t.Fatalf("dropped-out sensor reads %v", got)
	}
	room.Run(10)
	if got := room.MeasuredCPUTemp(1); got != frozen {
		t.Fatalf("stuck sensor moved: %v then %v", frozen, got)
	}
	room.Run(10) // windows over: readings live again
	if got := room.MeasuredCPUTemp(3); got == 0 {
		t.Fatal("sensor 3 still dropped out after its window")
	}
}

func TestCRACRefuseAndLag(t *testing.T) {
	room, err := NewRoom(newSim(t), &Schedule{Events: []Event{
		{Kind: CRACRefuse, AtS: 0, DurationS: 30},
		{Kind: CRACLag, AtS: 40, DurationS: 30, LagS: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	before := room.SetPoint()
	room.Run(5)
	room.SetSetPoint(before - 4)
	if got := room.SetPoint(); got != before {
		t.Fatalf("refused command changed set point to %v", got)
	}
	if room.DroppedSetPoints() != 1 {
		t.Fatalf("DroppedSetPoints = %d", room.DroppedSetPoints())
	}

	room.Run(40) // into the lag window (t = 45)
	room.SetSetPoint(before - 6)
	if got := room.SetPoint(); got != before {
		t.Fatalf("lagged command applied immediately: %v", got)
	}
	room.Run(15) // past the 10 s lag
	if got := room.SetPoint(); got != before-6 {
		t.Fatalf("lagged command not applied: %v", got)
	}
}

func TestMiddlewareRequestWindows(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, `"ok"`)
	})
	var slept time.Duration
	h := Middleware(inner, &Schedule{Events: []Event{
		{Kind: NetError, FromRequest: 2, Requests: 2},
		{Kind: NetTimeout, FromRequest: 5, Requests: 1, HoldS: 3},
	}}, func(d time.Duration) { slept += d })

	ts := httptest.NewServer(h)
	defer ts.Close()

	wantStatus := []int{200, 500, 500, 200, 503, 200}
	for i, want := range wantStatus {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i+1, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("request %d: status %d, want %d", i+1, resp.StatusCode, want)
		}
	}
	if slept != 3*time.Second {
		t.Fatalf("net_timeout held for %v", slept)
	}

	var body map[string]string
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&body); err == nil && body["error"] != "" {
		t.Fatalf("request past all windows still faulted: %v", body)
	}
}

func TestMiddlewareReset(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h := Middleware(inner, &Schedule{Events: []Event{
		{Kind: NetReset, FromRequest: 1, Requests: 1},
	}}, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()

	if resp, err := http.Get(ts.URL); err == nil {
		resp.Body.Close()
		t.Fatal("reset request succeeded")
	}
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("second request: %v", err)
	}
	resp.Body.Close()
}
