package faults

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Middleware wraps an http.Handler (typically a roomapi.Server) with the
// schedule's network faults. Requests are counted from 1 in arrival
// order; an event affects the half-open range
// [FromRequest, FromRequest+Requests). Counting requests rather than
// wall-clock time keeps HTTP-level injection deterministic: the Nth
// request always sees the same fate, however fast the client runs.
//
// The sleep function exists so tests can compress net_timeout holds; pass
// nil for time.Sleep.
func Middleware(next http.Handler, sched *Schedule, sleep func(time.Duration)) http.Handler {
	if sleep == nil {
		sleep = time.Sleep
	}
	events := sched.Network()
	var (
		mu    sync.Mutex
		count int
	)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		count++
		n := count
		var hit *Event
		for i := range events {
			e := &events[i]
			if n >= e.FromRequest && n < e.FromRequest+e.Requests {
				hit = e
				break
			}
		}
		mu.Unlock()

		if hit == nil {
			next.ServeHTTP(w, r)
			return
		}
		switch hit.Kind {
		case NetError:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "faults: injected 500"})
		case NetTimeout:
			sleep(time.Duration(hit.HoldS * float64(time.Second)))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "faults: injected slow response"})
		case NetReset:
			// net/http aborts the connection when a handler panics with
			// ErrAbortHandler: the client sees a mid-flight reset.
			panic(http.ErrAbortHandler)
		}
	})
}
