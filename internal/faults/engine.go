package faults

import (
	"fmt"

	"coolopt/internal/core"
	"coolopt/internal/engine"
)

// Engine-layer injectors: where room.go breaks the physical plant and
// middleware.go breaks the transport, these break the plan-serving layer
// itself — slow snapshot installs, pod-table builds that die partway,
// and the failure-burst shapes the degraded planner must absorb.

// SlowInstall holds the engine's install gate open, simulating a
// minutes-long snapshot build feeding a later InstallHierarchical: cache
// misses shed with engine.ErrOverloaded and /v1/readyz reports not
// ready until the returned release func is called. Release is
// idempotent.
func SlowInstall(e *engine.Engine) (release func()) {
	return e.BeginInstall()
}

// FailPodBuild returns a pod option whose build check fails pod number
// pod with a recognizable error — the injection for a pod-table build
// that dies partway through, which must leave the engine's previous
// snapshot serving untouched.
func FailPodBuild(pod int) core.PodOption {
	return core.WithPodBuildCheck(func(j int) error {
		if j == pod {
			return fmt.Errorf("faults: injected build failure in pod %d", pod)
		}
		return nil
	})
}

// ConcentratedBurst returns f failed machine IDs packed contiguously
// starting at n/3 — the shape of a rack losing power, which lands every
// failure in one or two pods and forces deep survivor-restricted
// recomputation there.
func ConcentratedBurst(n, f int) []int {
	if f > n {
		f = n
	}
	out := make([]int, f)
	start := n / 3
	for i := range out {
		out[i] = (start + i) % n
	}
	return out
}

// SpreadBurst returns f failed machine IDs striped evenly across the
// room — the shape of a bad firmware rollout, which touches every pod a
// little and exercises the water-filling split over many perturbed
// aggregates.
func SpreadBurst(n, f int) []int {
	if f > n {
		f = n
	}
	out := make([]int, f)
	for i := range out {
		out[i] = i * n / f
	}
	return out
}
