package faults

import (
	"fmt"
	"sync"

	"coolopt/internal/machineroom"
	"coolopt/internal/sim"
)

// Room wraps a simulator and applies a schedule's physical faults on the
// room clock: crashed machines drop off and refuse to power back on,
// faulty sensors lie, and the CRAC actuator lags or ignores commands.
//
// All methods are serialized by an internal mutex, so a Room may back a
// roomapi.Server while a chaos harness reads ground truth concurrently —
// every access to the underlying simulator goes through the same lock.
type Room struct {
	mu    sync.Mutex
	inner *sim.Simulator

	events  []Event // physical events, onset-ordered
	crashed []bool  // fired machine_crash onsets (one-shot power-off)

	stuckVal   map[int]float64 // frozen reading per stuck sensor
	pendingSet []lagged        // set-point commands delayed by crac_lag
	droppedSet int             // set-point commands lost to crac_refuse
}

type lagged struct {
	applyAtS float64
	value    float64
}

var _ machineroom.Room = (*Room)(nil)

// NewRoom wraps a simulator with the schedule's physical faults.
func NewRoom(inner *sim.Simulator, sched *Schedule) (*Room, error) {
	if inner == nil {
		return nil, fmt.Errorf("faults: nil simulator")
	}
	if sched == nil {
		sched = &Schedule{}
	}
	if err := sched.Validate(inner.Size()); err != nil {
		return nil, err
	}
	events := sched.Physical()
	return &Room{
		inner:    inner,
		events:   events,
		crashed:  make([]bool, len(events)),
		stuckVal: make(map[int]float64),
	}, nil
}

// Size returns the number of machines.
func (r *Room) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner.Size()
}

// Time returns the room clock in seconds.
func (r *Room) Time() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner.Time()
}

// SetLoad assigns a utilization to a machine.
func (r *Room) SetLoad(i int, util float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner.SetLoad(i, util)
}

// SetPower switches a machine on or off. Powering on a crashed machine
// fails until its crash window ends — the fail-to-power-on fault.
func (r *Room) SetPower(i int, on bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if on {
		now := r.inner.Time()
		for _, e := range r.events {
			if e.Kind == MachineCrash && e.Machine == i && e.activeAt(now) {
				return fmt.Errorf("faults: machine %d does not respond to power-on", i)
			}
		}
	}
	return r.inner.SetPower(i, on)
}

// IsOn reports a machine's power state.
func (r *Room) IsOn(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner.IsOn(i)
}

// SetSetPoint moves the CRAC exhaust set point — unless a crac_refuse
// window is active (the command is lost) or a crac_lag window is active
// (the command applies LagS later).
func (r *Room) SetSetPoint(tSPC float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.inner.Time()
	for _, e := range r.events {
		switch e.Kind {
		case CRACRefuse:
			if e.activeAt(now) {
				r.droppedSet++
				return
			}
		case CRACLag:
			if e.activeAt(now) {
				r.pendingSet = append(r.pendingSet, lagged{applyAtS: now + e.LagS, value: tSPC})
				return
			}
		}
	}
	r.inner.SetSetPoint(tSPC)
}

// SetPoint returns the last set point the CRAC actually accepted, so a
// controller can detect refused commands from the read-back mismatch.
func (r *Room) SetPoint() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner.SetPoint()
}

// Supply returns the CRAC supply temperature.
func (r *Room) Supply() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner.Supply()
}

// ReturnTemp returns the exhaust air temperature.
func (r *Room) ReturnTemp() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner.ReturnTemp()
}

// MeasuredCPUTemp returns machine i's CPU reading with sensor faults
// applied: stuck sensors freeze, spiked sensors read high, dropped-out
// sensors read zero. Overlapping events apply in onset order, first match
// wins.
func (r *Room) MeasuredCPUTemp(i int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.inner.Time()
	for _, e := range r.events {
		if e.Machine != i || !e.activeAt(now) {
			continue
		}
		switch e.Kind {
		case SensorStuck:
			v, ok := r.stuckVal[i]
			if !ok {
				if e.StuckAtC != 0 {
					v = e.StuckAtC
				} else {
					v = r.inner.MeasuredCPUTemp(i)
				}
				r.stuckVal[i] = v
			}
			return v
		case SensorSpike:
			return r.inner.MeasuredCPUTemp(i) + e.SpikeC
		case SensorDropout:
			return 0
		}
	}
	return r.inner.MeasuredCPUTemp(i)
}

// MeasuredServerPower returns machine i's power-meter reading.
func (r *Room) MeasuredServerPower(i int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner.MeasuredServerPower(i)
}

// MeasuredCRACPower returns the cooling unit's metered power.
func (r *Room) MeasuredCRACPower() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner.MeasuredCRACPower()
}

// Step advances the room by one step, firing any faults whose onset has
// arrived: crash onsets force the machine off, and lagged set-point
// commands whose delay expired are applied.
func (r *Room) Step() {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.inner.Time()

	for idx, e := range r.events {
		if e.Kind == MachineCrash && !r.crashed[idx] && now >= e.AtS {
			r.crashed[idx] = true
			// A crash is an uncommanded power loss; the simulator's
			// SetPower(off) models exactly that (load drops instantly).
			_ = r.inner.SetPower(e.Machine, false)
		}
	}

	kept := r.pendingSet[:0]
	for _, p := range r.pendingSet {
		if now >= p.applyAtS {
			r.inner.SetSetPoint(p.value)
		} else {
			kept = append(kept, p)
		}
	}
	r.pendingSet = kept

	r.inner.Step()
}

// Run advances the room by the given number of seconds, one step at a
// time so fault onsets land on the right tick.
func (r *Room) Run(seconds float64) {
	if seconds <= 0 {
		return
	}
	target := r.Time() + seconds
	for {
		before := r.Time()
		if before >= target-1e-9 {
			return
		}
		r.Step()
		if r.Time() <= before {
			return // zero-dt safety net
		}
	}
}

// DroppedSetPoints counts set-point commands lost to crac_refuse windows.
func (r *Room) DroppedSetPoints() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.droppedSet
}

// MaxTrueCPUTemp returns the hottest ground-truth CPU temperature —
// chaos-harness instrumentation, never visible to policies.
func (r *Room) MaxTrueCPUTemp() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner.MaxTrueCPUTemp()
}

// TrueTotalPower returns the room's ground-truth total draw in Watts.
func (r *Room) TrueTotalPower() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner.TrueTotalPower()
}

// Load returns machine i's current true utilization.
func (r *Room) Load(i int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner.Load(i)
}
