// Package faults is the deterministic fault-injection subsystem. A
// Schedule declares, up front, every way the room will misbehave during a
// run — machines crashing and refusing to power back on, sensors sticking
// or spiking, the CRAC actuator lagging or dropping commands, and the
// network between controller and room failing — so a chaos experiment is
// exactly reproducible: the same schedule against the same seeds produces
// the same run, byte for byte.
//
// Physical faults are applied by wrapping the simulator in a faults.Room
// (see room.go); transport faults are applied by wrapping the roomapi
// handler in faults.Middleware (see middleware.go). The split mirrors
// reality: a stuck sensor corrupts what every reader sees, while a flaky
// switch only corrupts one controller's view of the room.
//
//coolopt:deterministic
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"coolopt/internal/mathx"
)

// Kind names one failure mode.
type Kind string

// The supported failure modes. Physical kinds key off the room clock
// (AtS/DurationS); network kinds key off the request counter
// (FromRequest/Requests) so HTTP-level injection is deterministic
// regardless of timing.
const (
	// MachineCrash powers machine Machine off at AtS; power-on requests
	// fail until the window ends (fail-to-power-on).
	MachineCrash Kind = "machine_crash"
	// SensorStuck freezes machine Machine's CPU-temperature reading at
	// the value observed at AtS (or StuckAtC if non-zero).
	SensorStuck Kind = "sensor_stuck"
	// SensorSpike adds SpikeC to machine Machine's CPU-temperature
	// reading during the window.
	SensorSpike Kind = "sensor_spike"
	// SensorDropout makes machine Machine's CPU-temperature reading
	// return 0 during the window.
	SensorDropout Kind = "sensor_dropout"
	// CRACLag delays set-point commands by LagS during the window.
	CRACLag Kind = "crac_lag"
	// CRACRefuse silently drops set-point commands during the window;
	// reads still report the last accepted set point, so a controller
	// can detect the refusal from the command/read-back mismatch.
	CRACRefuse Kind = "crac_refuse"
	// NetError answers Requests consecutive HTTP requests starting at
	// FromRequest with status 500.
	NetError Kind = "net_500"
	// NetTimeout holds Requests consecutive responses for HoldS seconds
	// (long enough to trip a client timeout) before answering 503.
	NetTimeout Kind = "net_timeout"
	// NetReset aborts the connection mid-response for Requests
	// consecutive requests.
	NetReset Kind = "net_reset"
)

// Event is one scheduled fault.
type Event struct {
	Kind Kind `json:"kind"`

	// AtS is the room-clock onset in seconds (physical kinds).
	AtS float64 `json:"atS,omitempty"`
	// DurationS is the window length in seconds; 0 means "until the end
	// of the run" (physical kinds).
	DurationS float64 `json:"durationS,omitempty"`
	// Machine is the target machine (machine and sensor kinds).
	Machine int `json:"machine,omitempty"`
	// StuckAtC overrides the frozen reading for sensor_stuck; zero
	// freezes at the value observed at onset.
	StuckAtC float64 `json:"stuckAtC,omitempty"`
	// SpikeC is the additive reading error for sensor_spike.
	SpikeC float64 `json:"spikeC,omitempty"`
	// LagS is the actuation delay for crac_lag.
	LagS float64 `json:"lagS,omitempty"`

	// FromRequest is the 1-based index of the first affected HTTP
	// request (network kinds).
	FromRequest int `json:"fromRequest,omitempty"`
	// Requests is how many consecutive requests the fault affects
	// (network kinds).
	Requests int `json:"requests,omitempty"`
	// HoldS is how long net_timeout holds the response, in seconds.
	HoldS float64 `json:"holdS,omitempty"`
}

// Physical reports whether the event manipulates the room itself rather
// than the transport.
func (e Event) Physical() bool {
	switch e.Kind {
	case NetError, NetTimeout, NetReset:
		return false
	default:
		return true
	}
}

// activeAt reports whether a physical event's window covers room time t.
func (e Event) activeAt(t float64) bool {
	if t < e.AtS {
		return false
	}
	return e.DurationS <= 0 || t < e.AtS+e.DurationS
}

// validate checks one event's fields.
func (e Event) validate(idx int) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("faults: event %d (%s): %s", idx, e.Kind, fmt.Sprintf(format, args...))
	}
	switch e.Kind {
	case MachineCrash, SensorStuck, SensorSpike, SensorDropout:
		if e.AtS < 0 {
			return fail("negative onset %v s", e.AtS)
		}
		if e.Machine < 0 {
			return fail("negative machine %d", e.Machine)
		}
		if e.Kind == SensorSpike && e.SpikeC == 0 {
			return fail("zero spike")
		}
	case CRACLag:
		if e.AtS < 0 {
			return fail("negative onset %v s", e.AtS)
		}
		if e.LagS <= 0 {
			return fail("lag %v s must be positive", e.LagS)
		}
	case CRACRefuse:
		if e.AtS < 0 {
			return fail("negative onset %v s", e.AtS)
		}
	case NetError, NetTimeout, NetReset:
		if e.FromRequest < 1 {
			return fail("fromRequest %d must be ≥ 1", e.FromRequest)
		}
		if e.Requests < 1 {
			return fail("requests %d must be ≥ 1", e.Requests)
		}
		if e.Kind == NetTimeout && e.HoldS <= 0 {
			return fail("holdS %v must be positive", e.HoldS)
		}
	default:
		return fmt.Errorf("faults: event %d: unknown kind %q", idx, e.Kind)
	}
	return nil
}

// Schedule is an ordered set of fault events.
type Schedule struct {
	Events []Event `json:"events"`
}

// Validate checks every event. maxMachines bounds machine indices; pass 0
// to skip the bound (e.g. before the room size is known).
func (s *Schedule) Validate(maxMachines int) error {
	for i, e := range s.Events {
		if err := e.validate(i); err != nil {
			return err
		}
		if maxMachines > 0 && e.Physical() {
			switch e.Kind {
			case MachineCrash, SensorStuck, SensorSpike, SensorDropout:
				if e.Machine >= maxMachines {
					return fmt.Errorf("faults: event %d (%s): machine %d out of range [0, %d)",
						i, e.Kind, e.Machine, maxMachines)
				}
			}
		}
	}
	return nil
}

// Physical returns the events applied by a faults.Room, onset-ordered.
func (s *Schedule) Physical() []Event {
	var out []Event
	for _, e := range s.Events {
		if e.Physical() {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].AtS < out[b].AtS })
	return out
}

// Network returns the events applied by faults.Middleware, ordered by
// first affected request.
func (s *Schedule) Network() []Event {
	var out []Event
	for _, e := range s.Events {
		if !e.Physical() {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].FromRequest < out[b].FromRequest })
	return out
}

// HasNetwork reports whether the schedule contains transport faults.
func (s *Schedule) HasNetwork() bool { return len(s.Network()) > 0 }

// Rebase returns a copy of the schedule with every physical onset shifted
// by startS, turning run-relative onsets ("the crash happens 120 s into
// the replay") into room-clock onsets. A room that has already lived
// through profiling carries a large clock, so replay tooling rebases
// schedules against the clock at run start. Network events count requests,
// not seconds, and are copied unchanged.
func (s *Schedule) Rebase(startS float64) *Schedule {
	out := &Schedule{Events: append([]Event(nil), s.Events...)}
	for i := range out.Events {
		if out.Events[i].Physical() {
			out.Events[i].AtS += startS
		}
	}
	return out
}

// ParseJSON reads a schedule like
//
//	{"events": [
//	  {"kind": "machine_crash", "atS": 600, "durationS": 900, "machine": 3},
//	  {"kind": "sensor_stuck",  "atS": 300, "machine": 7},
//	  {"kind": "net_500",       "fromRequest": 40, "requests": 10}
//	]}
//
// and validates it (machine bounds are checked later, against the room).
func ParseJSON(r io.Reader) (*Schedule, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faults: parse schedule: %w", err)
	}
	if len(s.Events) == 0 {
		return nil, fmt.Errorf("faults: schedule has no events")
	}
	if err := s.Validate(0); err != nil {
		return nil, err
	}
	return &s, nil
}

// Random synthesizes a seeded chaos schedule for an n-machine room over
// durationS seconds: one machine crash, one stuck sensor, one spike, one
// CRAC refusal window, and one short network blackout, with onsets and
// targets drawn deterministically from the seed. Two calls with equal
// arguments return identical schedules.
func Random(seed int64, n int, durationS float64) (*Schedule, error) {
	if n < 2 {
		return nil, fmt.Errorf("faults: need ≥ 2 machines, got %d", n)
	}
	if durationS < 600 {
		return nil, fmt.Errorf("faults: duration %v s too short for a chaos schedule", durationS)
	}
	rng := mathx.NewRand(seed)
	at := func(loFrac, hiFrac float64) float64 {
		return float64(int(rng.Uniform(loFrac*durationS, hiFrac*durationS)))
	}
	crashed := rng.Intn(n)
	stuck := rng.Intn(n - 1)
	if stuck >= crashed {
		stuck++ // distinct from the crashed machine
	}
	s := &Schedule{Events: []Event{
		{Kind: MachineCrash, AtS: at(0.15, 0.3), DurationS: durationS * 0.3, Machine: crashed},
		{Kind: SensorStuck, AtS: at(0.1, 0.2), DurationS: durationS * 0.4, Machine: stuck},
		{Kind: SensorSpike, AtS: at(0.5, 0.6), DurationS: 120, Machine: rng.Intn(n), SpikeC: 25},
		{Kind: CRACRefuse, AtS: at(0.65, 0.75), DurationS: durationS * 0.15},
		{Kind: NetError, FromRequest: 30 + rng.Intn(40), Requests: 10},
	}}
	if err := s.Validate(n); err != nil {
		return nil, err
	}
	return s, nil
}
