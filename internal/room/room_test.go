package room

import (
	"testing"
	"testing/quick"

	"coolopt/internal/mathx"
	"coolopt/internal/power"
	"coolopt/internal/thermal"
)

func TestGenRackDefaults(t *testing.T) {
	r, err := GenRack(DefaultRackSpec())
	if err != nil {
		t.Fatalf("GenRack: %v", err)
	}
	if r.Size() != 20 {
		t.Fatalf("Size = %d, want 20", r.Size())
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGenRackDeterministic(t *testing.T) {
	a, err := GenRack(DefaultRackSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenRack(DefaultRackSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Machines {
		if a.Machines[i] != b.Machines[i] {
			t.Fatalf("machine %d differs across identical specs", i)
		}
	}
}

func TestGenRackBottomCoolerThanTop(t *testing.T) {
	// The paper's testbed has its coolest spots at the bottom of the
	// rack; with equal supply temperature, lower machines must get a
	// larger share of supply air (on average across jitter).
	r, err := GenRack(DefaultRackSpec())
	if err != nil {
		t.Fatal(err)
	}
	n := r.Size()
	bottom := mathx.Mean([]float64{
		r.Machines[0].SupplyFraction,
		r.Machines[1].SupplyFraction,
		r.Machines[2].SupplyFraction,
	})
	top := mathx.Mean([]float64{
		r.Machines[n-1].SupplyFraction,
		r.Machines[n-2].SupplyFraction,
		r.Machines[n-3].SupplyFraction,
	})
	if bottom <= top {
		t.Fatalf("bottom supply fraction %v ≤ top %v", bottom, top)
	}
}

func TestGenRackValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*RackSpec)
	}{
		{name: "zero size", mutate: func(s *RackSpec) { s.N = 0 }},
		{name: "bad bottom frac", mutate: func(s *RackSpec) { s.SupplyFracBottom = 0 }},
		{name: "bad top frac", mutate: func(s *RackSpec) { s.SupplyFracTop = 1.5 }},
		{name: "bad jitter", mutate: func(s *RackSpec) { s.Jitter = 0.9 }},
		{name: "bad power", mutate: func(s *RackSpec) { s.PowerBase = power.Model{} }},
		{name: "bad capacity", mutate: func(s *RackSpec) { s.CapacityTPS = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := DefaultRackSpec()
			tt.mutate(&spec)
			if _, err := GenRack(spec); err == nil {
				t.Fatal("invalid spec accepted")
			}
		})
	}
}

func TestInletTempBlends(t *testing.T) {
	m := Machine{SupplyFraction: 0.8}
	got := m.InletTemp(15, 30)
	if !mathx.ApproxEqual(got, 0.8*15+0.2*30, 1e-12) {
		t.Fatalf("InletTemp = %v", got)
	}
}

func TestTrueAlphaGammaConsistentWithInlet(t *testing.T) {
	m := Machine{SupplyFraction: 0.85}
	const returnC = 32.0
	alpha, gamma := m.TrueAlphaGamma(returnC)
	for _, supply := range []float64{12, 16, 20} {
		want := m.InletTemp(supply, returnC)
		if got := alpha*supply + gamma; !mathx.ApproxEqual(got, want, 1e-12) {
			t.Fatalf("affine map gives %v, inlet gives %v", got, want)
		}
	}
}

func TestMixReturnAllBypass(t *testing.T) {
	got, err := MixReturn([]float64{0, 0}, []float64{50, 60}, 1.0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(got, 15, 1e-12) {
		t.Fatalf("all-bypass return = %v, want supply 15", got)
	}
}

func TestMixReturnWeightsByFlow(t *testing.T) {
	// One machine at 0.3 m³/s and 40 °C, bypass 0.7 m³/s at 10 °C.
	got, err := MixReturn([]float64{0.3}, []float64{40}, 1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.3*40 + 0.7*10) / 1.0
	if !mathx.ApproxEqual(got, want, 1e-12) {
		t.Fatalf("MixReturn = %v, want %v", got, want)
	}
}

func TestMixReturnOversubscribedFlow(t *testing.T) {
	// Machines pull more air than the CRAC moves: return sees outlets only.
	got, err := MixReturn([]float64{1, 1}, []float64{30, 50}, 1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.ApproxEqual(got, 40, 1e-12) {
		t.Fatalf("MixReturn = %v, want 40", got)
	}
}

func TestMixReturnErrors(t *testing.T) {
	if _, err := MixReturn([]float64{1}, []float64{1, 2}, 1, 10); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := MixReturn([]float64{-1}, []float64{1}, 1, 10); err == nil {
		t.Fatal("negative flow should error")
	}
}

func TestRackValidateCatchesCorruption(t *testing.T) {
	r, err := GenRack(DefaultRackSpec())
	if err != nil {
		t.Fatal(err)
	}
	r.Machines[3].SupplyFraction = 2
	if err := r.Validate(); err == nil {
		t.Fatal("corrupted rack accepted")
	}
	var empty Rack
	if err := empty.Validate(); err == nil {
		t.Fatal("empty rack accepted")
	}
	r2, err := GenRack(DefaultRackSpec())
	if err != nil {
		t.Fatal(err)
	}
	r2.Machines[0].ID = 7
	if err := r2.Validate(); err == nil {
		t.Fatal("mis-indexed rack accepted")
	}
	r3, err := GenRack(DefaultRackSpec())
	if err != nil {
		t.Fatal(err)
	}
	r3.Machines[0].Thermal = thermal.Params{}
	if err := r3.Validate(); err == nil {
		t.Fatal("invalid thermal params accepted")
	}
}

// Property: MixReturn always lies within the envelope of its inputs
// (outlet temperatures and supply temperature) — mixing cannot create
// temperatures outside the blend.
func TestMixReturnEnvelopeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mathx.NewRand(seed)
		n := 1 + rng.Intn(8)
		flows := make([]float64, n)
		temps := make([]float64, n)
		lo, hi := 1e9, -1e9
		supply := rng.Uniform(10, 20)
		if supply < lo {
			lo = supply
		}
		if supply > hi {
			hi = supply
		}
		var total float64
		for i := range flows {
			flows[i] = rng.Uniform(0, 0.05)
			temps[i] = rng.Uniform(20, 60)
			total += flows[i]
			if temps[i] < lo {
				lo = temps[i]
			}
			if temps[i] > hi {
				hi = temps[i]
			}
		}
		cracFlow := total + rng.Uniform(0, 0.5)
		got, err := MixReturn(flows, temps, cracFlow, supply)
		if err != nil {
			return false
		}
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
