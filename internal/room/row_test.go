package room

import (
	"testing"

	"coolopt/internal/mathx"
)

func TestGenRowDefaults(t *testing.T) {
	row, err := GenRow(DefaultRowSpec())
	if err != nil {
		t.Fatalf("GenRow: %v", err)
	}
	spec := DefaultRowSpec()
	if row.Size() != spec.Racks*spec.Base.N {
		t.Fatalf("Size = %d, want %d", row.Size(), spec.Racks*spec.Base.N)
	}
	if err := row.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGenRowFarRacksGetLessSupply(t *testing.T) {
	row, err := GenRow(DefaultRowSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultRowSpec()
	n := spec.Base.N
	avg := func(rack int) float64 {
		sum := 0.0
		for i := rack * n; i < (rack+1)*n; i++ {
			sum += row.Machines[i].SupplyFraction
		}
		return sum / float64(n)
	}
	if !(avg(0) > avg(1) && avg(1) > avg(2)) {
		t.Fatalf("supply fractions not decaying with rack distance: %v %v %v",
			avg(0), avg(1), avg(2))
	}
	if diff := avg(0) - avg(1); !mathx.ApproxEqual(diff, spec.SupplyDecayPerRack, 0.25) {
		t.Fatalf("per-rack decay %v, want ≈%v", diff, spec.SupplyDecayPerRack)
	}
}

func TestGenRowRacksDifferByJitterSeed(t *testing.T) {
	row, err := GenRow(DefaultRowSpec())
	if err != nil {
		t.Fatal(err)
	}
	n := DefaultRowSpec().Base.N
	// Same slot in different racks must not be identical (different
	// jitter streams), beyond the deterministic decay.
	a := row.Machines[3].Thermal.Flow
	b := row.Machines[n+3].Thermal.Flow
	if a == b {
		t.Fatal("racks share jitter streams")
	}
}

func TestGenRowValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*RowSpec)
	}{
		{name: "no racks", mutate: func(s *RowSpec) { s.Racks = 0 }},
		{name: "negative decay", mutate: func(s *RowSpec) { s.SupplyDecayPerRack = -1 }},
		{name: "zero rack size", mutate: func(s *RowSpec) { s.Base.N = 0 }},
		{name: "starving decay", mutate: func(s *RowSpec) { s.Racks = 10; s.SupplyDecayPerRack = 0.2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := DefaultRowSpec()
			tt.mutate(&spec)
			if _, err := GenRow(spec); err == nil {
				t.Fatal("invalid row spec accepted")
			}
		})
	}
}

func TestRackOf(t *testing.T) {
	tests := []struct {
		id, per, want int
	}{
		{id: 0, per: 20, want: 0},
		{id: 19, per: 20, want: 0},
		{id: 20, per: 20, want: 1},
		{id: 59, per: 20, want: 2},
		{id: 5, per: 0, want: 0},
	}
	for _, tt := range tests {
		if got := RackOf(tt.id, tt.per); got != tt.want {
			t.Fatalf("RackOf(%d, %d) = %d, want %d", tt.id, tt.per, got, tt.want)
		}
	}
}
