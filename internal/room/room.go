// Package room models the machine-room air paths around a rack: how cool
// supply air from the CRAC reaches each machine's inlet, and how the
// machines' hot outlets mix into the single return stream the CRAC sees.
//
// The paper (Eq. 7) captures a machine's position with an affine inlet map
// T_i^in = α_i·T_ac + γ_i. Our ground truth realizes that map physically:
// each inlet draws a position-dependent blend of supply air and
// recirculated room air, T_i^in = a_i·T_ac + (1−a_i)·T_return. While the
// CRAC holds the return stream near its set point, the blend is affine in
// T_ac with α_i = a_i and γ_i ≈ (1−a_i)·T_SP — which is exactly what the
// profiling pipeline estimates. When operating conditions drift, γ_i drifts
// too; that residual is the modeling error the paper accepts.
//
// The testbed's rack is supplied from the ceiling, yet the paper observes
// the *bottom* of the rack is the cooler spot (§IV-B); the cold stream
// falls and pools low while the upper slots entrain more recirculated hot
// air. GenRack reproduces that profile: supply fraction a_i decreases with
// height.
package room

import (
	"fmt"

	"coolopt/internal/mathx"
	"coolopt/internal/power"
	"coolopt/internal/thermal"
)

// Machine is one computing unit in the rack with its ground-truth physics.
type Machine struct {
	// ID is the machine's index in the rack, 0 at the bottom.
	ID int
	// Height is the normalized slot height in [0, 1], 0 at the bottom.
	Height float64
	// SupplyFraction a_i is the fraction of this machine's intake drawn
	// directly from the CRAC supply stream; the rest is recirculated
	// room air.
	SupplyFraction float64
	// Thermal holds the unit's lumped-RC constants.
	Thermal thermal.Params
	// Power holds the unit's ground-truth electrical behaviour.
	Power power.Truth
	// CapacityTPS is the unit's application capacity in tasks per
	// second at 100 % utilization (paper §IV-A measures this for the
	// html word-histogram workload).
	CapacityTPS float64
}

// InletTemp returns the machine's intake air temperature in °C given the
// CRAC supply temperature and the current recirculated (return) air
// temperature.
func (m Machine) InletTemp(supplyC, returnC float64) float64 {
	return m.SupplyFraction*supplyC + (1-m.SupplyFraction)*returnC
}

// TrueAlphaGamma returns the effective affine inlet coefficients (α_i, γ_i)
// of paper Eq. 7 when the return stream sits at returnC — the values a
// perfect profiler would recover.
func (m Machine) TrueAlphaGamma(returnC float64) (alpha, gamma float64) {
	return m.SupplyFraction, (1 - m.SupplyFraction) * returnC
}

// Rack is an ordered set of machines, index 0 at the bottom.
type Rack struct {
	Machines []Machine
}

// Size returns the number of machines in the rack.
func (r *Rack) Size() int { return len(r.Machines) }

// Validate checks every machine's physical parameters.
func (r *Rack) Validate() error {
	if len(r.Machines) == 0 {
		return fmt.Errorf("room: empty rack")
	}
	for i, m := range r.Machines {
		if m.ID != i {
			return fmt.Errorf("room: machine %d has ID %d", i, m.ID)
		}
		if m.SupplyFraction <= 0 || m.SupplyFraction > 1 {
			return fmt.Errorf("room: machine %d supply fraction %v out of (0, 1]", i, m.SupplyFraction)
		}
		if m.CapacityTPS <= 0 {
			return fmt.Errorf("room: machine %d capacity %v must be positive", i, m.CapacityTPS)
		}
		if err := m.Thermal.Validate(); err != nil {
			return fmt.Errorf("room: machine %d: %w", i, err)
		}
		if err := m.Power.Validate(); err != nil {
			return fmt.Errorf("room: machine %d: %w", i, err)
		}
	}
	return nil
}

// MixReturn returns the temperature in °C of the CRAC's return stream: the
// flow-weighted mix of all running machines' outlet air plus the bypass
// flow that short-circuits from supply to return. flows and outletC list
// the per-machine outtake flows (m³/s; zero for machines that are off) and
// outlet temperatures; cracFlow is the CRAC's total fixed flow.
func MixReturn(flows, outletC []float64, cracFlow, supplyC float64) (float64, error) {
	if len(flows) != len(outletC) {
		return 0, fmt.Errorf("room: %d flows but %d outlet temps", len(flows), len(outletC))
	}
	var sumFlow, sumHeat float64
	for i, f := range flows {
		if f < 0 {
			return 0, fmt.Errorf("room: negative flow %v at machine %d", f, i)
		}
		sumFlow += f
		sumHeat += f * outletC[i]
	}
	if sumFlow > cracFlow {
		// More air moves through the machines than the CRAC supplies;
		// the surplus recirculates, so the return sees only the
		// machine outlets.
		return sumHeat / sumFlow, nil
	}
	bypass := cracFlow - sumFlow
	return (sumHeat + bypass*supplyC) / cracFlow, nil
}

// RackSpec parameterizes GenRack. Zero values select the defaults used for
// the paper's 20-machine testbed reproduction (see DefaultRackSpec).
type RackSpec struct {
	// N is the number of machines.
	N int
	// Seed drives the per-machine parameter jitter.
	Seed int64
	// SupplyFracBottom and SupplyFracTop set the supply-fraction
	// gradient from the bottom slot to the top slot.
	SupplyFracBottom float64
	SupplyFracTop    float64
	// Jitter is the relative standard deviation applied to per-machine
	// physical parameters (manufacturing and placement variation).
	Jitter float64
	// PowerBase is the nominal affine power model shared by all
	// machines (they are identical hardware in the paper).
	PowerBase power.Model
	// CapacityTPS is the nominal application capacity per machine.
	CapacityTPS float64
}

// DefaultRackSpec returns the 20-machine configuration matching the
// paper's testbed scale: Dell R210-class machines (~35 W idle, ~85 W at
// full load) with a pronounced bottom-cool / top-warm inlet gradient.
func DefaultRackSpec() RackSpec {
	return RackSpec{
		N:                20,
		Seed:             1,
		SupplyFracBottom: 0.98,
		SupplyFracTop:    0.60,
		Jitter:           0.07,
		PowerBase:        power.Model{W1: 50, W2: 35},
		CapacityTPS:      120,
	}
}

// GenRack builds a rack of n machines with a height-dependent inlet
// gradient and seeded per-machine jitter.
func GenRack(spec RackSpec) (*Rack, error) {
	if spec.N <= 0 {
		return nil, fmt.Errorf("room: rack size %d must be positive", spec.N)
	}
	if spec.SupplyFracBottom <= 0 || spec.SupplyFracBottom > 1 ||
		spec.SupplyFracTop <= 0 || spec.SupplyFracTop > 1 {
		return nil, fmt.Errorf("room: supply fractions (%v, %v) out of (0, 1]",
			spec.SupplyFracBottom, spec.SupplyFracTop)
	}
	if spec.Jitter < 0 || spec.Jitter > 0.5 {
		return nil, fmt.Errorf("room: jitter %v out of [0, 0.5]", spec.Jitter)
	}
	if err := spec.PowerBase.Validate(); err != nil {
		return nil, err
	}
	if spec.CapacityTPS <= 0 {
		return nil, fmt.Errorf("room: capacity %v must be positive", spec.CapacityTPS)
	}

	rng := mathx.NewRand(spec.Seed)
	jit := func(nominal float64) float64 {
		if spec.Jitter == 0 {
			return nominal
		}
		return nominal * (1 + rng.Normal(0, spec.Jitter))
	}

	machines := make([]Machine, spec.N)
	for i := range machines {
		height := 0.0
		if spec.N > 1 {
			height = float64(i) / float64(spec.N-1)
		}
		frac := spec.SupplyFracBottom + (spec.SupplyFracTop-spec.SupplyFracBottom)*height
		frac = mathx.Clamp(jit(frac), 0.5, 1)
		// Upper machines sit in slightly warmer, thinner streams and
		// pull marginally less air.
		flow := jit(0.010 * (1 - 0.1*height))
		machines[i] = Machine{
			ID:             i,
			Height:         height,
			SupplyFraction: frac,
			Thermal: thermal.Params{
				NuCPU: jit(120),
				NuBox: jit(60),
				Theta: jit(2.5),
				Flow:  flow,
				CAir:  thermal.CAirDefault,
			},
			Power: power.Truth{
				Base:     spec.PowerBase,
				Curve:    2,
				LeakPerK: 0.05,
				LeakRefC: 45,
				StandbyW: 2,
			},
			CapacityTPS: jit(spec.CapacityTPS),
		}
	}
	r := &Rack{Machines: machines}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}
