package room

import "fmt"

// RowSpec describes a row of racks at increasing distance from the CRAC.
// The paper's solution "addressed load distribution at the machine level
// (as well as selection of those machines to power on) within or across
// racks"; GenRow builds the across-racks case: every rack carries the
// usual bottom-to-top gradient, and racks farther from the cooling unit
// receive a weaker share of supply air overall.
type RowSpec struct {
	// Racks is the number of racks in the row.
	Racks int
	// Base is the per-rack template (its N is machines per rack).
	Base RackSpec
	// SupplyDecayPerRack is subtracted from every machine's supply
	// fraction for each rack of distance from the CRAC (default 0.06).
	SupplyDecayPerRack float64
}

// DefaultRowSpec returns a 3-rack row of the default racks.
func DefaultRowSpec() RowSpec {
	base := DefaultRackSpec()
	return RowSpec{
		Racks:              3,
		Base:               base,
		SupplyDecayPerRack: 0.06,
	}
}

// GenRow builds the combined machine population of a rack row. Machines
// are numbered rack-major: rack r occupies IDs [r·N, (r+1)·N). RackOf
// recovers the rack index.
func GenRow(spec RowSpec) (*Rack, error) {
	if spec.Racks <= 0 {
		return nil, fmt.Errorf("room: row needs at least one rack, got %d", spec.Racks)
	}
	if spec.SupplyDecayPerRack < 0 {
		return nil, fmt.Errorf("room: supply decay %v must be non-negative", spec.SupplyDecayPerRack)
	}
	perRack := spec.Base.N
	if perRack <= 0 {
		return nil, fmt.Errorf("room: rack size %d must be positive", perRack)
	}
	decayTotal := spec.SupplyDecayPerRack * float64(spec.Racks-1)
	if spec.Base.SupplyFracTop-decayTotal <= 0.05 {
		return nil, fmt.Errorf("room: decay %v starves the far rack of supply air", spec.SupplyDecayPerRack)
	}

	var all []Machine
	for r := 0; r < spec.Racks; r++ {
		rackSpec := spec.Base
		rackSpec.Seed = spec.Base.Seed + int64(r)*1009
		rackSpec.SupplyFracBottom -= spec.SupplyDecayPerRack * float64(r)
		rackSpec.SupplyFracTop -= spec.SupplyDecayPerRack * float64(r)
		rack, err := GenRack(rackSpec)
		if err != nil {
			return nil, fmt.Errorf("room: rack %d: %w", r, err)
		}
		for _, m := range rack.Machines {
			m.ID = len(all)
			all = append(all, m)
		}
	}
	row := &Rack{Machines: all}
	if err := row.Validate(); err != nil {
		return nil, err
	}
	return row, nil
}

// RackOf returns the rack index of machine id in a row built with
// machinesPerRack machines per rack.
func RackOf(id, machinesPerRack int) int {
	if machinesPerRack <= 0 {
		return 0
	}
	return id / machinesPerRack
}
