package profiling

import (
	"math"
	"sync"
	"testing"

	"coolopt/internal/sim"
	"coolopt/internal/units"
)

// sharedResult caches one full profiling run; the protocol simulates hours
// of testbed time, so tests share it.
var (
	resultOnce sync.Once
	sharedRes  *Result
	sharedErr  error
)

func profiledResult(t *testing.T) *Result {
	t.Helper()
	resultOnce.Do(func() {
		s, err := sim.NewDefault(1)
		if err != nil {
			sharedErr = err
			return
		}
		sharedRes, sharedErr = Run(Config{Sim: s})
	})
	if sharedErr != nil {
		t.Fatalf("profiling run: %v", sharedErr)
	}
	return sharedRes
}

func TestRunRejectsNilSim(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil simulator accepted")
	}
}

func TestPowerModelRecoversTruth(t *testing.T) {
	res := profiledResult(t)
	p := res.Profile
	// Ground truth is W1=50 plus a small curvature and leakage the
	// affine fit absorbs; W2=35.
	if p.W1 < 45 || p.W1 > 62 {
		t.Fatalf("w1 = %v, outside plausible band around truth 50", p.W1)
	}
	if p.W2 < 30 || p.W2 > 40 {
		t.Fatalf("w2 = %v, outside plausible band around truth 35", p.W2)
	}
	if res.PowerFit.R2 < 0.99 {
		t.Fatalf("power fit R² = %v — the paper's Fig. 2 shows a near-perfect fit", res.PowerFit.R2)
	}
}

func TestThermalModelFitsEveryMachine(t *testing.T) {
	res := profiledResult(t)
	if len(res.ThermalFits) != len(res.Profile.Machines) {
		t.Fatalf("%d thermal fits for %d machines", len(res.ThermalFits), len(res.Profile.Machines))
	}
	for i, fit := range res.ThermalFits {
		if fit.R2 < 0.99 {
			t.Fatalf("machine %d thermal R² = %v, want ≥ 0.99 (paper: a few percent error)", i, fit.R2)
		}
		if fit.RMSE > 1.0 {
			t.Fatalf("machine %d thermal RMSE = %v °C", i, fit.RMSE)
		}
	}
}

func TestThermalBetaTracksGroundTruth(t *testing.T) {
	res := profiledResult(t)
	s, err := sim.NewDefault(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range res.Profile.Machines {
		truth := s.Rack().Machines[i].Thermal.Beta()
		if rel := math.Abs(m.Beta-truth) / truth; rel > 0.10 {
			t.Fatalf("machine %d β = %v vs truth %v (%.1f%% off)", i, m.Beta, truth, rel*100)
		}
	}
}

func TestThermalGammaReflectsRackPosition(t *testing.T) {
	// Higher machines ingest more hot-aisle air; their fitted offset γ
	// must trend upward with height.
	res := profiledResult(t)
	ms := res.Profile.Machines
	n := len(ms)
	bottom := (ms[0].Gamma + ms[1].Gamma + ms[2].Gamma) / 3
	top := (ms[n-1].Gamma + ms[n-2].Gamma + ms[n-3].Gamma) / 3
	if bottom >= top {
		t.Fatalf("bottom γ avg %v ≥ top γ avg %v", bottom, top)
	}
}

func TestCoolingModelFitsAndIsExploitable(t *testing.T) {
	res := profiledResult(t)
	p := res.Profile
	if p.CoolFactor <= 0 {
		t.Fatalf("cool factor = %v", p.CoolFactor)
	}
	if res.CoolingFit.R2 < 0.9 {
		t.Fatalf("cooling fit R² = %v", res.CoolingFit.R2)
	}
	// Raising the supply by 1 °C must be worth a nontrivial number of
	// Watts — otherwise the joint optimization has nothing to trade.
	if p.CoolFactor < 10 || p.CoolFactor > 200 {
		t.Fatalf("cool factor %v W/K outside plausible band", p.CoolFactor)
	}
}

func TestCalibrationCommandsDesiredSupply(t *testing.T) {
	// The §IV-B loop: pick a desired T_ac, compute the set point via the
	// calibration, run the room, and verify the supply lands close.
	res := profiledResult(t)
	s, err := sim.NewDefault(99) // different noise seed than profiling
	if err != nil {
		t.Fatal(err)
	}
	const level = 0.6
	for i := 0; i < s.Size(); i++ {
		if err := s.SetLoad(i, level); err != nil {
			t.Fatal(err)
		}
	}
	predictedW := units.Watts(float64(s.Size()) * (res.Profile.W1*level + res.Profile.W2))
	const desired = 19.0
	s.SetSetPoint(float64(res.Calibration.SetPointFor(desired, predictedW)))
	s.Run(4000)
	if diff := math.Abs(s.Supply() - desired); diff > 0.4 {
		t.Fatalf("commanded supply %v °C, got %v (off by %v)", desired, s.Supply(), diff)
	}
}

func TestFitReportSeriesAligned(t *testing.T) {
	res := profiledResult(t)
	if len(res.PowerFit.Measured) != len(res.PowerFit.Predicted) {
		t.Fatal("power fit series misaligned")
	}
	if len(res.PowerFit.Measured) == 0 {
		t.Fatal("power fit series empty")
	}
	for _, fit := range res.ThermalFits {
		if len(fit.Measured) != len(fit.Predicted) || len(fit.Measured) == 0 {
			t.Fatalf("%s series invalid", fit.Label)
		}
	}
}

func TestProfileFeedsOptimizer(t *testing.T) {
	res := profiledResult(t)
	if err := res.Profile.Validate(); err != nil {
		t.Fatalf("fitted profile invalid: %v", err)
	}
	// K_i must be ≥ 1: every machine can run at full load at a 0 °C
	// supply without violating T_max under the fitted model.
	for i := range res.Profile.Machines {
		if k := res.Profile.K(i); k < 1 {
			t.Fatalf("machine %d K = %v < 1", i, k)
		}
	}
}

func TestSetPointForIsAffine(t *testing.T) {
	c := SetPointCalibration{OffsetPerWatt: 0.003, OffsetBase: 0.1}
	got := float64(c.SetPointFor(20, 1000))
	if math.Abs(got-23.1) > 1e-12 {
		t.Fatalf("SetPointFor = %v, want 23.1", got)
	}
}
