package profiling

import (
	"errors"
	"fmt"
	"math"

	"coolopt/internal/core"
	"coolopt/internal/machineroom"
)

// This file is the online counterpart of the batch thermal fit
// (profileThermal): instead of dedicating the room to a sweep, a
// Refresher rides along live traffic, folding every streaming sensor read
// into per-machine recursive-least-squares estimates of the Eq. 8
// coefficients T_cpu = α·T_ac + β·P + γ, and emitting core.MachineDelta
// batches when a machine's fit drifts from the installed profile. Those
// batches feed the engine's incremental install pipeline
// (Engine.InstallPatch), which is what makes continuous re-profiling
// under load affordable: a drift batch costs a patch, not a resweep.

// DefaultForgetting is the RLS forgetting factor λ: the effective memory
// is ~1/(1−λ) samples, so 0.995 averages over the last ≈200 reads —
// long enough to smooth sensor noise, short enough to track real drift.
const DefaultForgetting = 0.995

// rlsInitVar seeds the covariance diagonal; a large value means "no
// prior", letting the first few samples dominate.
const rlsInitVar = 1e4

// CoeffRLS is a 3-parameter recursive least squares estimator for one
// machine's Eq. 8 coefficients, with exponential forgetting. The design
// row is x = [T_ac, P_i, 1] and the target is T_cpu — identical to the
// batch fit's regression, so with λ = 1 and no drift the two agree.
type CoeffRLS struct {
	lambda float64
	theta  [3]float64    // [α, β, γ]
	p      [3][3]float64 // covariance
	count  int

	// Excitation tracking for the conditioning guard: a fit over samples
	// that never varied the supply (or the power) cannot separate α (or β)
	// from γ, no matter how many samples it saw.
	minSupply, maxSupply float64
	minPower, maxPower   float64
}

// NewCoeffRLS builds an estimator with forgetting factor lambda; values
// outside (0, 1] fall back to DefaultForgetting.
func NewCoeffRLS(lambda float64) *CoeffRLS {
	if lambda <= 0 || lambda > 1 {
		lambda = DefaultForgetting
	}
	r := &CoeffRLS{lambda: lambda}
	for i := 0; i < 3; i++ {
		r.p[i][i] = rlsInitVar
	}
	return r
}

// Observe folds one sensor read into the estimate: the supply
// temperature, the machine's metered power, and its CPU temperature.
func (r *CoeffRLS) Observe(supplyC, powerW, cpuC float64) {
	if r.count == 0 {
		r.minSupply, r.maxSupply = supplyC, supplyC
		r.minPower, r.maxPower = powerW, powerW
	} else {
		r.minSupply = math.Min(r.minSupply, supplyC)
		r.maxSupply = math.Max(r.maxSupply, supplyC)
		r.minPower = math.Min(r.minPower, powerW)
		r.maxPower = math.Max(r.maxPower, powerW)
	}
	r.count++

	x := [3]float64{supplyC, powerW, 1}
	// px = P·x (P stays symmetric throughout).
	var px [3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			px[i] += r.p[i][j] * x[j]
		}
	}
	denom := r.lambda
	for i := 0; i < 3; i++ {
		denom += x[i] * px[i]
	}
	var k [3]float64
	for i := 0; i < 3; i++ {
		k[i] = px[i] / denom
	}
	residual := cpuC
	for i := 0; i < 3; i++ {
		residual -= r.theta[i] * x[i]
	}
	for i := 0; i < 3; i++ {
		r.theta[i] += k[i] * residual
	}
	// P ← (P − k·(P·x)ᵀ)/λ
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r.p[i][j] = (r.p[i][j] - k[i]*px[j]) / r.lambda
		}
	}
}

// Samples returns the number of reads folded in so far.
func (r *CoeffRLS) Samples() int { return r.count }

// Conditioned reports whether the observed excitation separates the
// coefficients: the supply and power readings must each have spread at
// least the given amounts across the samples seen.
func (r *CoeffRLS) Conditioned(minSupplySpreadC, minPowerSpreadW float64) bool {
	return r.count > 0 &&
		r.maxSupply-r.minSupply >= minSupplySpreadC &&
		r.maxPower-r.minPower >= minPowerSpreadW
}

// Coeffs returns the current estimate as a machine profile.
func (r *CoeffRLS) Coeffs() core.MachineProfile {
	return core.MachineProfile{Alpha: r.theta[0], Beta: r.theta[1], Gamma: r.theta[2]}
}

// RefreshConfig drives a Refresher. Zero values select sane defaults.
type RefreshConfig struct {
	// Room is the machine room whose sensors are sampled.
	Room machineroom.Room
	// Reference is the installed profile drift is measured against; its
	// machine coefficients are copied at construction and advanced on
	// every emitted delta.
	Reference *core.Profile
	// Lambda is the RLS forgetting factor (default DefaultForgetting).
	Lambda float64
	// MinSamples gates emission: a machine's fit is not trusted before
	// this many reads (default 64).
	MinSamples int
	// RelTol is the relative coefficient drift that triggers a delta
	// (default 0.02, i.e. 2 %).
	RelTol float64
	// MinSupplySpreadC and MinPowerSpreadW are the conditioning
	// thresholds (defaults 0.5 °C and 5 W): without that much excitation
	// the regression cannot separate α, β and γ, and the fit is ignored
	// no matter how far it sits from the reference.
	MinSupplySpreadC float64
	MinPowerSpreadW  float64
	// Loads optionally supplies each machine's current utilization (in
	// machine units). When set, the refresher also pools (utilization,
	// metered power) samples across the room into a shared Eq. 9 power
	// fit (PowerRLS) and attaches drifted W1/W2 to its delta batches, so
	// InstallPatch refreshes both halves of Eq. 8. Nil keeps the
	// historical thermal-only behavior.
	Loads func(i int) float64
	// MinUtilSpread is the power fit's conditioning threshold (default
	// 0.2 machine units of utilization spread across the samples seen).
	MinUtilSpread float64
}

// Refresher folds streaming sensor reads into per-machine RLS fits and
// turns sustained, well-conditioned coefficient drift into
// core.MachineDelta batches for the install pipeline.
type Refresher struct {
	room machineroom.Room
	cfg  RefreshConfig
	ref  []core.MachineProfile
	fits []*CoeffRLS

	// Pooled power-model fit; nil without a Loads provider. refW1/refW2
	// advance on every emitted power drift, like ref does for machines.
	powerFit     *PowerRLS
	refW1, refW2 float64
}

// NewRefresher validates the config and builds a refresher with one RLS
// estimator per machine.
func NewRefresher(cfg RefreshConfig) (*Refresher, error) {
	if cfg.Room == nil {
		return nil, errors.New("profiling: nil room")
	}
	if cfg.Reference == nil {
		return nil, errors.New("profiling: nil reference profile")
	}
	if cfg.Room.Size() != cfg.Reference.Size() {
		return nil, fmt.Errorf("profiling: room has %d machines, reference %d",
			cfg.Room.Size(), cfg.Reference.Size())
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 64
	}
	if cfg.RelTol <= 0 {
		cfg.RelTol = 0.02
	}
	if cfg.MinSupplySpreadC <= 0 {
		cfg.MinSupplySpreadC = 0.5
	}
	if cfg.MinPowerSpreadW <= 0 {
		cfg.MinPowerSpreadW = 5
	}
	if cfg.MinUtilSpread <= 0 {
		cfg.MinUtilSpread = 0.2
	}
	rf := &Refresher{
		room:  cfg.Room,
		cfg:   cfg,
		ref:   append([]core.MachineProfile(nil), cfg.Reference.Machines...),
		fits:  make([]*CoeffRLS, cfg.Room.Size()),
		refW1: cfg.Reference.W1,
		refW2: cfg.Reference.W2,
	}
	for i := range rf.fits {
		rf.fits[i] = NewCoeffRLS(cfg.Lambda)
	}
	if cfg.Loads != nil {
		rf.powerFit = NewPowerRLS(cfg.Lambda)
	}
	return rf, nil
}

// Observe takes one sensor sweep of the room — supply temperature plus
// every powered-on machine's power meter and CPU sensor — and folds it
// into the per-machine fits. Powered-off machines produce no thermal
// signal and are skipped.
func (rf *Refresher) Observe() {
	supply := rf.room.Supply()
	for i := 0; i < rf.room.Size(); i++ {
		if !rf.room.IsOn(i) {
			continue
		}
		power := rf.room.MeasuredServerPower(i)
		rf.fits[i].Observe(supply, power, rf.room.MeasuredCPUTemp(i))
		if rf.powerFit != nil {
			// Pooled Eq. 9 fit: every on machine contributes, idle ones
			// included — a (0, P) sample is exactly what pins the W2 floor.
			rf.powerFit.Observe(rf.cfg.Loads(i), power)
		}
	}
}

// relDrift measures |a−b| against the larger coefficient magnitude,
// floored at 1 so near-zero coefficients (γ routinely crosses zero) use
// an absolute scale instead of exploding the ratio.
func relDrift(a, b float64) float64 {
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) / scale
}

// Drifted returns the machines whose well-conditioned, sufficiently
// sampled fits moved past RelTol from the reference, as a patch-ready
// delta batch; nil when nothing drifted. Emitted machines advance the
// reference to the fitted coefficients so the same drift is not
// re-emitted every call. Fits that would not survive profile validation
// (e.g. a transient negative β estimate) are held back rather than
// emitted.
func (rf *Refresher) Drifted() []core.MachineDelta {
	var out []core.MachineDelta
	for i, fit := range rf.fits {
		if fit.Samples() < rf.cfg.MinSamples ||
			!fit.Conditioned(rf.cfg.MinSupplySpreadC, rf.cfg.MinPowerSpreadW) {
			continue
		}
		m := fit.Coeffs()
		if m.Validate() != nil {
			continue
		}
		ref := rf.ref[i]
		if relDrift(m.Alpha, ref.Alpha) <= rf.cfg.RelTol &&
			relDrift(m.Beta, ref.Beta) <= rf.cfg.RelTol &&
			relDrift(m.Gamma, ref.Gamma) <= rf.cfg.RelTol {
			continue
		}
		rf.ref[i] = m
		out = append(out, core.MachineDelta{ID: i, Machine: m})
	}
	if w1, w2, ok := rf.powerDrift(); ok {
		if len(out) == 0 {
			// Power-only drift still needs a carrier delta; restating
			// machine 0's reference coefficients is a no-op thermally.
			out = append(out, core.MachineDelta{ID: 0, Machine: rf.ref[0]})
		}
		// One carrier is enough: Patch applies batch-level W1/W2 once.
		out[0].W1, out[0].W2 = w1, w2
		rf.refW1, rf.refW2 = w1, w2
	}
	return out
}

// powerDrift reports whether the pooled Eq. 9 fit is trustworthy and has
// moved past RelTol from the installed coefficients. Fits that would not
// survive profile validation (W1 ≤ 0, negative W2) are held back.
func (rf *Refresher) powerDrift() (w1, w2 float64, ok bool) {
	if rf.powerFit == nil ||
		rf.powerFit.Samples() < rf.cfg.MinSamples ||
		!rf.powerFit.Conditioned(rf.cfg.MinUtilSpread) {
		return 0, 0, false
	}
	w1, w2 = rf.powerFit.Coeffs()
	if w1 <= 0 || w2 < 0 {
		return 0, 0, false
	}
	if relDrift(w1, rf.refW1) <= rf.cfg.RelTol && relDrift(w2, rf.refW2) <= rf.cfg.RelTol {
		return 0, 0, false
	}
	return w1, w2, true
}
