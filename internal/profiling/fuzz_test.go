package profiling

import (
	"strings"
	"testing"
)

// FuzzReadDocument hardens the profile-document parser: arbitrary bytes
// must either parse into a valid profile or be rejected, never panic.
func FuzzReadDocument(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"profile":{"w1":-1}}`)
	f.Add(`{"profile":{"w1":50,"w2":35,"coolFactor":70,"setPointC":30,` +
		`"tMaxC":58,"tAcMinC":8,"tAcMaxC":25,` +
		`"machines":[{"alpha":0.9,"beta":0.45,"gamma":3}]},` +
		`"calibration":{"offsetPerWatt":0.003,"offsetBase":0.1}}`)
	f.Add(`not json at all`)
	f.Add(`{"profile":{"machines":[{"alpha":1e308,"beta":1e-308}]}}`)
	f.Fuzz(func(t *testing.T, input string) {
		doc, err := ReadDocument(strings.NewReader(input))
		if err != nil {
			return
		}
		// Anything accepted must be a usable profile.
		if err := doc.Profile.Validate(); err != nil {
			t.Fatalf("accepted invalid profile: %v", err)
		}
	})
}
